// Quickstart: encrypt and decrypt a message with the PASTA HHE-enabling
// stream cipher — the minimal use of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/ff"
	"repro/internal/pasta"
)

func main() {
	// 1. Pick a parameter set: PASTA-4 over the 17-bit prime 65,537 (the
	//    paper's headline configuration).
	params := pasta.MustParams(pasta.Pasta4, ff.P17)
	fmt.Println("parameters:", params)

	// 2. Generate a secret key (2t = 64 field elements).
	key, err := pasta.NewRandomKey(params)
	if err != nil {
		log.Fatal(err)
	}
	cipher, err := pasta.NewCipher(params, key)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Encrypt a message of field elements. The nonce is public but
	//    must be unique per key.
	message := ff.Vec{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	const nonce = 2024
	ct, err := cipher.Encrypt(nonce, message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message:   ", message)
	fmt.Println("ciphertext:", ct)

	// 4. Decrypt.
	back, err := cipher.Decrypt(nonce, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decrypted: ", back)
	if !back.Equal(message) {
		log.Fatal("roundtrip failed")
	}
	fmt.Println("roundtrip OK ✓")

	// 5. The same keystream the hardware accelerator would produce:
	ks := cipher.KeyStream(nonce, 0)
	fmt.Printf("keystream block 0 (first 4): %v…\n", ks[:4])

	// 6. For data that arrives incrementally (sensor readings, frames),
	//    the Stream API consumes keystream contiguously across calls and
	//    produces exactly the bulk ciphertext.
	s := cipher.EncryptStream(nonce)
	chunked := ff.NewVec(len(message))
	if err := s.Process(chunked[:7], message[:7]); err != nil {
		log.Fatal(err)
	}
	if err := s.Process(chunked[7:], message[7:]); err != nil {
		log.Fatal(err)
	}
	if !chunked.Equal(ct) {
		log.Fatal("stream and bulk ciphertexts differ")
	}
	fmt.Printf("stream API matches bulk Encrypt after %d elements ✓\n", s.Position())
}
