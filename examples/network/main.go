// Network runs the Fig. 1 HHE protocol over a real TCP connection on the
// loopback interface, with every message serialized through the library's
// wire formats — measuring exactly the traffic split the paper's
// communication argument rests on: a heavy one-time setup (FHE keys +
// encrypted PASTA key) followed by symmetric-ciphertext data messages
// with no FHE expansion.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

func main() {
	params, err := hhe.NewToyParams(2, 1)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	serverDone := make(chan error, 1)
	go func() { serverDone <- runServer(ln, params) }()

	if err := runClient(ln.Addr().String(), params); err != nil {
		log.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
}

// frame I/O: 4-byte little-endian length prefix.
func send(w io.Writer, payload []byte) (int, error) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return n + 4, err
}

func recv(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("frame too large: %d", n)
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func runClient(addr string, params hhe.Params) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	key, err := pasta.NewRandomKey(params.Pasta)
	if err != nil {
		return err
	}
	client, err := hhe.NewClient(params, key, []byte("network-demo"))
	if err != nil {
		return err
	}
	ctx := client.Context()
	keys := client.EvalKeys()

	// --- one-time setup traffic ---------------------------------------------
	setupBytes := 0
	pkBlob, err := keys.PK.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	n, err := send(conn, pkBlob)
	if err != nil {
		return err
	}
	setupBytes += n
	rlkBlob, err := keys.RLK.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	if n, err = send(conn, rlkBlob); err != nil {
		return err
	}
	setupBytes += n
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys.Key)))
	if n, err = send(conn, cnt[:]); err != nil {
		return err
	}
	setupBytes += n
	for _, ct := range keys.Key {
		blob, err := ct.MarshalBinary(ctx)
		if err != nil {
			return err
		}
		if n, err = send(conn, blob); err != nil {
			return err
		}
		setupBytes += n
	}
	fmt.Printf("[client] one-time setup sent: %d bytes (FHE pk + rlk + Enc(K))\n", setupBytes)

	// --- steady-state data traffic -------------------------------------------
	messages := []ff.Vec{{1111, 2222}, {3333, 4444}, {55, 65000}}
	dataBytes := 0
	for blk, msg := range messages {
		symCt, err := client.EncryptBlock(1, uint64(blk), msg)
		if err != nil {
			return err
		}
		packed, err := ff.PackBits(symCt, params.Pasta.Mod.Bits())
		if err != nil {
			return err
		}
		if n, err = send(conn, packed); err != nil {
			return err
		}
		dataBytes += n
	}
	fmt.Printf("[client] %d data blocks sent: %d bytes total (%.1f bytes/element — no FHE expansion)\n",
		len(messages), dataBytes, float64(dataBytes)/float64(2*len(messages)))

	// --- receive the homomorphic computation result ---------------------------
	blob, err := recv(conn)
	if err != nil {
		return err
	}
	fmt.Printf("[client] result ciphertext received: %d bytes\n", len(blob))
	resCt, err := ctx.UnmarshalCiphertext(blob)
	if err != nil {
		return err
	}
	sum := client.DecryptResult([]*bfv.Ciphertext{resCt})
	mod := params.Pasta.Mod
	want := mod.Add(mod.Add(messages[0][0], messages[1][0]), messages[2][0])
	fmt.Printf("[client] decrypted homomorphic sum of first elements: %d (want %d)\n", sum[0], want)
	if sum[0] != want {
		return fmt.Errorf("wrong result")
	}
	fmt.Println("[client] protocol complete ✓")
	return nil
}

func runServer(ln net.Listener, params hhe.Params) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	ctx, err := bfv.NewContext(params.BFV)
	if err != nil {
		return err
	}
	// --- receive setup ---------------------------------------------------------
	pkBlob, err := recv(conn)
	if err != nil {
		return err
	}
	pk, err := ctx.UnmarshalPublicKey(pkBlob)
	if err != nil {
		return err
	}
	rlkBlob, err := recv(conn)
	if err != nil {
		return err
	}
	rlk, err := ctx.UnmarshalRelinKey(rlkBlob)
	if err != nil {
		return err
	}
	cntBuf, err := recv(conn)
	if err != nil {
		return err
	}
	nKeys := binary.LittleEndian.Uint32(cntBuf)
	encKey := make(hhe.EncryptedKey, nKeys)
	for i := range encKey {
		blob, err := recv(conn)
		if err != nil {
			return err
		}
		if encKey[i], err = ctx.UnmarshalCiphertext(blob); err != nil {
			return err
		}
	}
	server, err := hhe.NewServer(params, ctx, hhe.EvalKeys{PK: pk, RLK: rlk, Key: encKey})
	if err != nil {
		return err
	}
	fmt.Println("[server] setup complete; PASTA key received homomorphically encrypted")

	// --- trans-cipher incoming blocks and compute on them ----------------------
	var acc *bfv.Ciphertext
	for blk := 0; blk < 3; blk++ {
		packed, err := recv(conn)
		if err != nil {
			return err
		}
		symCt, err := ff.UnpackBits(packed, params.Pasta.T, params.Pasta.Mod.Bits())
		if err != nil {
			return err
		}
		fheCts, err := server.Transcipher(1, uint64(blk), symCt)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = fheCts[0]
		} else {
			acc = ctx.Add(acc, fheCts[0])
		}
	}
	fmt.Println("[server] trans-ciphered 3 blocks and summed their first elements under encryption")

	blob, err := acc.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	if _, err := send(conn, blob); err != nil {
		return err
	}
	return nil
}
