// Network runs the Fig. 1 HHE protocol over a real TCP connection on the
// loopback interface, with every message serialized through the library's
// wire formats — measuring exactly the traffic split the paper's
// communication argument rests on: a heavy one-time setup (FHE keys +
// encrypted PASTA key) followed by symmetric-ciphertext data messages
// with no FHE expansion.
//
// Frames ride the versioned internal/wire codec (magic + version +
// length, bounded payloads) — the same framing the hheserver serving
// tier speaks — and both ends run under I/O deadlines, so a stalled or
// misbehaving peer fails the demo instead of hanging it.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
	"repro/internal/wire"
)

const ioTimeout = 30 * time.Second

func main() {
	params, err := hhe.NewToyParams(2, 1)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	serverDone := make(chan error, 1)
	go func() { serverDone <- runServer(ln, params) }()

	if err := runClient(ln.Addr().String(), params); err != nil {
		log.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
}

// peer wraps a connection with the wire codec and a rolling deadline:
// every frame exchange must make progress within ioTimeout.
type peer struct {
	conn  net.Conn
	codec *wire.Codec
}

func newPeer(conn net.Conn) *peer {
	c := wire.NewCodec(conn)
	c.MaxPayload = 64 << 20 // FHE key blobs are large
	return &peer{conn: conn, codec: c}
}

// send writes one blob frame and returns the bytes on the wire.
func (p *peer) send(payload []byte) (int, error) {
	if err := p.conn.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return 0, err
	}
	if err := p.codec.WriteBlob(payload); err != nil {
		return 0, err
	}
	return wire.HeaderSize + len(payload), nil
}

func (p *peer) recv() ([]byte, error) {
	if err := p.conn.SetReadDeadline(time.Now().Add(ioTimeout)); err != nil {
		return nil, err
	}
	return p.codec.ReadBlob()
}

func runClient(addr string, params hhe.Params) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	p := newPeer(conn)

	key, err := pasta.NewRandomKey(params.Pasta)
	if err != nil {
		return err
	}
	client, err := hhe.NewClient(params, key, []byte("network-demo"))
	if err != nil {
		return err
	}
	ctx := client.Context()
	keys := client.EvalKeys()

	// --- one-time setup traffic ---------------------------------------------
	setupBytes := 0
	pkBlob, err := keys.PK.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	n, err := p.send(pkBlob)
	if err != nil {
		return err
	}
	setupBytes += n
	rlkBlob, err := keys.RLK.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	if n, err = p.send(rlkBlob); err != nil {
		return err
	}
	setupBytes += n
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys.Key)))
	if n, err = p.send(cnt[:]); err != nil {
		return err
	}
	setupBytes += n
	for _, ct := range keys.Key {
		blob, err := ct.MarshalBinary(ctx)
		if err != nil {
			return err
		}
		if n, err = p.send(blob); err != nil {
			return err
		}
		setupBytes += n
	}
	fmt.Printf("[client] one-time setup sent: %d bytes (FHE pk + rlk + Enc(K))\n", setupBytes)

	// --- steady-state data traffic -------------------------------------------
	messages := []ff.Vec{{1111, 2222}, {3333, 4444}, {55, 65000}}
	dataBytes := 0
	for blk, msg := range messages {
		symCt, err := client.EncryptBlock(1, uint64(blk), msg)
		if err != nil {
			return err
		}
		packed, err := ff.PackBits(symCt, params.Pasta.Mod.Bits())
		if err != nil {
			return err
		}
		if n, err = p.send(packed); err != nil {
			return err
		}
		dataBytes += n
	}
	fmt.Printf("[client] %d data blocks sent: %d bytes total (%.1f bytes/element — no FHE expansion)\n",
		len(messages), dataBytes, float64(dataBytes)/float64(2*len(messages)))

	// --- receive the homomorphic computation result ---------------------------
	blob, err := p.recv()
	if err != nil {
		return err
	}
	fmt.Printf("[client] result ciphertext received: %d bytes\n", len(blob))
	resCt, err := ctx.UnmarshalCiphertext(blob)
	if err != nil {
		return err
	}
	sum := client.DecryptResult([]*bfv.Ciphertext{resCt})
	mod := params.Pasta.Mod
	want := mod.Add(mod.Add(messages[0][0], messages[1][0]), messages[2][0])
	fmt.Printf("[client] decrypted homomorphic sum of first elements: %d (want %d)\n", sum[0], want)
	if sum[0] != want {
		return fmt.Errorf("wrong result")
	}
	fmt.Println("[client] protocol complete ✓")
	return nil
}

func runServer(ln net.Listener, params hhe.Params) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	p := newPeer(conn)

	ctx, err := bfv.NewContext(params.BFV)
	if err != nil {
		return err
	}
	// --- receive setup ---------------------------------------------------------
	pkBlob, err := p.recv()
	if err != nil {
		return err
	}
	pk, err := ctx.UnmarshalPublicKey(pkBlob)
	if err != nil {
		return err
	}
	rlkBlob, err := p.recv()
	if err != nil {
		return err
	}
	rlk, err := ctx.UnmarshalRelinKey(rlkBlob)
	if err != nil {
		return err
	}
	cntBuf, err := p.recv()
	if err != nil {
		return err
	}
	if len(cntBuf) != 4 {
		return fmt.Errorf("key-count frame: %d bytes, want 4", len(cntBuf))
	}
	nKeys := binary.LittleEndian.Uint32(cntBuf)
	if nKeys > uint32(2*params.Pasta.T) {
		return fmt.Errorf("implausible encrypted-key count %d", nKeys)
	}
	encKey := make(hhe.EncryptedKey, nKeys)
	for i := range encKey {
		blob, err := p.recv()
		if err != nil {
			return err
		}
		if encKey[i], err = ctx.UnmarshalCiphertext(blob); err != nil {
			return err
		}
	}
	server, err := hhe.NewServer(params, ctx, hhe.EvalKeys{PK: pk, RLK: rlk, Key: encKey})
	if err != nil {
		return err
	}
	fmt.Println("[server] setup complete; PASTA key received homomorphically encrypted")

	// --- trans-cipher incoming blocks and compute on them ----------------------
	var acc *bfv.Ciphertext
	for blk := 0; blk < 3; blk++ {
		packed, err := p.recv()
		if err != nil {
			return err
		}
		symCt, err := ff.UnpackBits(packed, params.Pasta.T, params.Pasta.Mod.Bits())
		if err != nil {
			return err
		}
		fheCts, err := server.Transcipher(1, uint64(blk), symCt)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = fheCts[0]
		} else {
			acc = ctx.Add(acc, fheCts[0])
		}
	}
	fmt.Println("[server] trans-ciphered 3 blocks and summed their first elements under encryption")

	blob, err := acc.MarshalBinary(ctx)
	if err != nil {
		return err
	}
	if _, err := p.send(blob); err != nil {
		return err
	}
	return nil
}
