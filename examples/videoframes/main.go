// Videoframes reproduces the paper's application benchmark (Sec. V):
// a surveillance camera encrypts grayscale video frames with PASTA-4 and
// streams them to a cloud server over a 5G link. It encrypts a synthetic
// QQVGA frame end to end with the real cipher, then prints the Fig. 8
// frame-rate model for all resolutions and bandwidths.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/eval"
	"repro/internal/ff"
	"repro/internal/pasta"
)

func main() {
	params := pasta.MustParams(pasta.Pasta4, ff.P17)
	key, err := pasta.NewRandomKey(params)
	if err != nil {
		log.Fatal(err)
	}
	cipher, err := pasta.NewCipher(params, key)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize one QQVGA frame (160×120 grayscale, a gradient with a
	// moving blob — content does not matter to the cipher).
	res := eval.Resolutions[0]
	frame := make(ff.Vec, res.Pixels())
	for y := 0; y < res.Height; y++ {
		for x := 0; x < res.Width; x++ {
			v := uint64((x + 2*y) % 251)
			if dx, dy := x-80, y-60; dx*dx+dy*dy < 400 {
				v = 255
			}
			frame[y*res.Width+x] = v
		}
	}

	// Encrypt the frame block by block, exactly as the SoC peripheral
	// streams it. The CTR blocks are independent, so Encrypt fans the
	// frame out across all cores (tune with WithParallelism).
	cipher = cipher.WithParallelism(runtime.GOMAXPROCS(0))
	const nonce = 1
	start := time.Now()
	ct, err := cipher.Encrypt(nonce, frame)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	blocks := cipher.NumBlocks(len(frame))
	fmt.Printf("encrypted one %s frame: %d pixels in %d PASTA blocks\n",
		res.Name, len(frame), blocks)
	fmt.Printf("software engine: %v per frame (%.0f pixels/s on %d worker(s))\n",
		elapsed.Round(time.Microsecond),
		float64(len(frame))/elapsed.Seconds(), runtime.GOMAXPROCS(0))
	fmt.Printf("ciphertext bytes on the wire: %d (vs %d for one RISE ciphertext)\n",
		blocks*eval.TWCiphertextBytesPerBlock, eval.RISE.CiphertextBytes)

	back, err := cipher.Decrypt(nonce, ct)
	if err != nil {
		log.Fatal(err)
	}
	if !back.Equal(frame) {
		log.Fatal("frame roundtrip failed")
	}
	fmt.Println("frame decrypts correctly ✓")
	fmt.Println()

	// Fig. 8: achievable frame rates using the ASIC encryption latency
	// from Table II (1.59 µs per block).
	rows, err := eval.Fig8(1.59, false)
	if err != nil {
		log.Fatal(err)
	}
	eval.RenderFig8(os.Stdout, rows)
}
