// Accelerator drives the cycle-accurate cryptoprocessor model next to
// the software reference: it encrypts the same block on both, checks
// bit-exact agreement, and prints the Fig. 3-style schedule showing the
// XOF, matrix engine, and vector ALU overlapping.
package main

import (
	"fmt"
	"log"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

func main() {
	params := pasta.MustParams(pasta.Pasta4, ff.P17)
	key, err := pasta.NewRandomKey(params)
	if err != nil {
		log.Fatal(err)
	}

	// Software reference.
	cipher, err := pasta.NewCipher(params, key)
	if err != nil {
		log.Fatal(err)
	}

	// Hardware model with tracing enabled.
	accel, err := hw.NewAccelerator(params, key)
	if err != nil {
		log.Fatal(err)
	}
	accel.TraceEnabled = true

	msg := ff.NewVec(params.T)
	for i := range msg {
		msg[i] = uint64(i * i)
	}
	const nonce, counter = 5, 0

	res, err := accel.EncryptBlock(nonce, counter, msg)
	if err != nil {
		log.Fatal(err)
	}
	want, err := cipher.EncryptBlock(nonce, counter, msg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Ciphertext.Equal(want) {
		log.Fatal("hardware and software ciphertexts differ")
	}

	fmt.Printf("%s — one block in %d cycles\n", params, res.Stats.Cycles)
	fmt.Printf("  FPGA @75MHz: %5.1f µs   ASIC @1GHz: %4.2f µs   (paper Table II: 21.2 / 1.59 µs)\n",
		hw.Microseconds(res.Stats.Cycles, hw.FPGAHz),
		hw.Microseconds(res.Stats.Cycles, hw.ASICHz))
	fmt.Printf("  Keccak permutations: %d (paper budget: ≈60)\n", res.Stats.Permutations)
	fmt.Println("  hardware ciphertext == software ciphertext ✓")
	fmt.Println("\nschedule milestones (Fig. 3: units overlap the XOF stream):")
	for _, ev := range res.Trace {
		fmt.Println("  ", ev)
	}
}
