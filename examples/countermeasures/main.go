// Countermeasures explores the paper's future-scope security questions
// (Sec. VI): it reproduces the SASTA-style single-fault observable on the
// cryptoprocessor model, shows temporal redundancy detecting the fault,
// and prints the modeled cost of each countermeasure alongside the
// naive-Keccak design ablation.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/eval"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

func main() {
	params := pasta.MustParams(pasta.Pasta4, ff.P17)
	key, err := pasta.NewRandomKey(params)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. The SASTA observable -------------------------------------------
	fmt.Println("1. Single-fault analysis (SASTA threat model)")
	lastLayer := params.AffineLayers() - 1
	_, _, delta, err := hw.FaultDemo(params, key, 7, 0,
		hw.FaultSpec{Layer: lastLayer, Element: 3, Mask: 1})
	if err != nil {
		log.Fatal(err)
	}
	nonzero := 0
	for _, d := range delta {
		if d != 0 {
			nonzero++
		}
	}
	fmt.Printf("   fault in the FINAL affine layer: keystream Δ has %d nonzero element(s)\n", nonzero)
	fmt.Println("   → the fault bypasses every S-box; the attacker sees a structured,")
	fmt.Println("     linearly propagated difference — the leakage SASTA exploits.")

	_, _, delta2, err := hw.FaultDemo(params, key, 7, 0,
		hw.FaultSpec{Layer: 1, Element: 3, Mask: 1})
	if err != nil {
		log.Fatal(err)
	}
	nonzero2 := 0
	for _, d := range delta2 {
		if d != 0 {
			nonzero2++
		}
	}
	fmt.Printf("   fault in an EARLY affine layer: Δ has %d/%d nonzero elements (full diffusion)\n\n",
		nonzero2, params.T)

	// --- 2. Detection by temporal redundancy -------------------------------
	fmt.Println("2. Temporal redundancy (compute twice, compare)")
	acc, err := hw.NewAccelerator(params, key)
	if err != nil {
		log.Fatal(err)
	}
	msg := make(ff.Vec, params.T)
	acc.Fault = &hw.FaultSpec{Layer: 2, Element: 1, Mask: 5}
	if _, err := acc.RedundantEncryptBlock(7, 0, msg); err != nil {
		fmt.Printf("   injected transient fault → %v\n\n", err)
	} else {
		log.Fatal("fault went undetected")
	}

	// --- 3. Countermeasure cost table ---------------------------------------
	rows, err := eval.CountermeasureCosts(eval.PaperResults.CyclesPasta4)
	if err != nil {
		log.Fatal(err)
	}
	eval.RenderCountermeasures(os.Stdout, rows)

	// --- 4. Design ablation: the paper's Keccak optimization ----------------
	fmt.Println("\n4. Ablation: parallel-squeeze Keccak vs naive single buffer")
	fast, _ := hw.NewAccelerator(params, key)
	slow, _ := hw.NewAccelerator(params, key)
	slow.NaiveKeccak = true
	rf, err := fast.KeyStream(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := slow.KeyStream(1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   parallel squeeze: %d cycles | naive: %d cycles (%.2f×)\n",
		rf.Stats.Cycles, rs.Stats.Cycles, float64(rs.Stats.Cycles)/float64(rf.Stats.Cycles))
	fmt.Println("   → Sec. IV-B: \"the clock cycle almost doubles for a naive Keccak\"")
}
