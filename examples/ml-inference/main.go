// ML-inference demonstrates the paper's motivating use case (Sec. IV-C ❶:
// "ML inference applications encrypting low amounts of data, e.g. 32
// coefficients"): a client sends a small sensor feature vector under
// cheap PASTA encryption; the server trans-ciphers it and evaluates a
// linear model — weighted sum plus bias — entirely on encrypted data; the
// client decrypts only the score.
package main

import (
	"fmt"
	"log"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

func main() {
	params, err := hhe.NewToyParams(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	mod := params.Pasta.Mod

	// The model (public to the server): score = Σ w_i·x_i + b (mod p).
	weights := ff.Vec{3, 7, 2, 11}
	bias := uint64(500)

	// --- client ----------------------------------------------------------
	key, err := pasta.NewRandomKey(params.Pasta)
	if err != nil {
		log.Fatal(err)
	}
	client, err := hhe.NewClient(params, key, []byte("ml-demo"))
	if err != nil {
		log.Fatal(err)
	}
	server, err := hhe.NewServer(params, client.Context(), client.EvalKeys())
	if err != nil {
		log.Fatal(err)
	}

	features := ff.Vec{120, 45, 210, 9} // e.g. normalized sensor readings
	const nonce = 3
	symCt, err := client.EncryptBlock(nonce, 0, features)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] features %v sent as a %d-element PASTA block (%d bytes on the wire)\n",
		features, len(symCt), ff.PackedSize(len(symCt), mod.Bits()))

	// --- server: trans-cipher, then evaluate the model homomorphically ----
	fheCts, err := server.Transcipher(nonce, 0, symCt)
	if err != nil {
		log.Fatal(err)
	}
	ctx := client.Context()
	var score *bfv.Ciphertext
	for i, w := range weights {
		term := ctx.MulScalar(fheCts[i], w)
		if score == nil {
			score = term
		} else {
			score = ctx.Add(score, term)
		}
	}
	score = ctx.AddPlain(score, ctx.EncodeScalar(bias))
	fmt.Println("[server] evaluated Σ wᵢ·xᵢ + b on encrypted features")

	// --- client decrypts only the score ------------------------------------
	got := client.DecryptResult([]*bfv.Ciphertext{score})[0]
	want := bias
	for i := range weights {
		want = mod.Add(want, mod.Mul(weights[i], features[i]))
	}
	fmt.Printf("[client] decrypted score: %d (plaintext check: %d)\n", got, want)
	if got != want {
		log.Fatal("score mismatch")
	}

	// --- the latency argument of Sec. IV-C ❶ --------------------------------
	fmt.Println("\nWhy HHE for this workload (paper Sec. IV-C ❶):")
	fmt.Println("  FHE client encryption of ≤4096 coefficients: ≈1,884 µs — regardless of payload")
	fmt.Println("  PASTA-4 block on the paper's accelerator:       21.2 µs (FPGA) / 1.59 µs (ASIC)")
	fmt.Println("  → ≈89× less client latency for small inference payloads, and no ciphertext expansion.")
}
