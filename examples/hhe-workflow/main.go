// HHE workflow: the full Fig. 1 protocol on a reduced PASTA instance —
// the client ships its homomorphically encrypted PASTA key once, then
// sends cheap symmetric ciphertexts; the server trans-ciphers them into
// FHE ciphertexts and computes on the encrypted data without ever seeing
// the plaintext.
package main

import (
	"fmt"
	"log"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

func main() {
	// Reduced PASTA instance (t = 2, 2 rounds) so textbook BFV depth
	// stays tractable; the circuit code is identical for full PASTA.
	params, err := hhe.NewToyParams(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PASTA instance:", params.Pasta)
	fmt.Printf("BFV instance:   N=%d, %d ciphertext primes, t=%d\n",
		params.BFV.N, len(params.BFV.Qs), params.BFV.T)

	// --- client setup -----------------------------------------------------
	key, err := pasta.NewRandomKey(params.Pasta)
	if err != nil {
		log.Fatal(err)
	}
	client, err := hhe.NewClient(params, key, []byte("demo-seed"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n[client] transporting homomorphically encrypted PASTA key (one-time)…")
	server, err := hhe.NewServer(params, client.Context(), client.EvalKeys())
	if err != nil {
		log.Fatal(err)
	}

	// --- client encrypts sensor readings symmetrically ---------------------
	reading1 := ff.Vec{1500, 2700} // e.g. two sensor values
	reading2 := ff.Vec{300, 41}
	const nonce = 99
	ct1, err := client.EncryptBlock(nonce, 0, reading1)
	if err != nil {
		log.Fatal(err)
	}
	ct2, err := client.EncryptBlock(nonce, 1, reading2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] sent symmetric ciphertexts (%d field elements each, no FHE expansion)\n", len(ct1))

	// --- server trans-ciphers and computes ---------------------------------
	fmt.Println("[server] homomorphically evaluating PASTA decryption…")
	fhe1, err := server.Transcipher(nonce, 0, ct1)
	if err != nil {
		log.Fatal(err)
	}
	fhe2, err := server.Transcipher(nonce, 1, ct2)
	if err != nil {
		log.Fatal(err)
	}
	// Compute on encrypted data: elementwise sum of the two readings.
	ctx := client.Context()
	sum0 := ctx.Add(fhe1[0], fhe2[0])
	sum1 := ctx.Add(fhe1[1], fhe2[1])
	fmt.Println("[server] computed encrypted sums without seeing any plaintext")

	// --- client decrypts the result ----------------------------------------
	result := client.DecryptResult([]*bfv.Ciphertext{sum0, sum1})
	fmt.Println("[client] decrypted result:", result)

	mod := params.Pasta.Mod
	want := ff.Vec{mod.Add(reading1[0], reading2[0]), mod.Add(reading1[1], reading2[1])}
	if !result.Equal(want) {
		log.Fatalf("expected %v", want)
	}
	fmt.Println("matches the plaintext computation ✓")
}
