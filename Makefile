# Make targets for the repro. `make ci` is what a pipeline should run:
# vet + build + the full test suite under the race detector + a one-shot
# benchmark pass that exercises every benchmark (including the
# allocation-free keystream engine) without burning CI minutes.

GO ?= go

.PHONY: all build vet test race bench bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run with allocation reporting (slow; for numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rot in benchmark code.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: vet build race bench-smoke

clean:
	$(GO) clean ./...
	rm -f repro.test
