# Make targets for the repro. `make ci` is what a pipeline should run:
# vet + build + the full test suite under the race detector + a one-shot
# benchmark pass that exercises every benchmark (including the
# allocation-free keystream engine) without burning CI minutes.

GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json fuzz-smoke metrics-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run with allocation reporting (slow; for numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rot in benchmark code.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable benchmark reports: the RLWE/BFV fast-path numbers
# (NTT, polynomial products, encryption) and the PASTA keystream numbers,
# each as JSON via cmd/benchjson for CI diffing.
bench-json:
	$(GO) test -run '^$$' -bench 'NTT|MulPolyInto|BFVEncrypt|PKEEncrypt|Table3PKE' -benchmem \
		./internal/rlwe ./internal/bfv . | $(GO) run ./cmd/benchjson -out BENCH_rlwe.json
	$(GO) test -run '^$$' -bench 'Table2CPUSoftware|KeyStream' -benchmem \
		./internal/pasta . | $(GO) run ./cmd/benchjson -out BENCH_pasta.json

# Short fuzz runs of the differential harnesses: the lazy NTT product
# against the schoolbook oracle, and the structured modular reductions
# against the generic one.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMulPoly -fuzztime 5s ./internal/rlwe
	$(GO) test -run '^$$' -fuzz FuzzDotLazyAgainstNaive -fuzztime 5s ./internal/ff

# End-to-end check of the observability layer: a short co-simulation must
# emit a JSON metrics snapshot on stdout.
metrics-smoke:
	$(GO) run ./cmd/socsim -blocks 2 -metrics -

ci: vet build race bench-smoke

clean:
	$(GO) clean ./...
	rm -f repro.test
