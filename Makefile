# Make targets for the repro. `make ci` is what a pipeline should run:
# vet + build + the full test suite under the race detector + a one-shot
# benchmark pass that exercises every benchmark (including the
# allocation-free keystream engine) without burning CI minutes.

GO ?= go

.PHONY: all build vet fmt-check test race bench bench-smoke bench-json bench-guard fuzz-smoke metrics-smoke backends-smoke cipher-smoke server-smoke tls-smoke transcipher-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean (CI gate; run `gofmt -w .` to fix).
fmt-check:
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run with allocation reporting (slow; for numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rot in benchmark code.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable benchmark reports: the RLWE/BFV fast-path numbers
# (NTT, polynomial products, encryption) and the PASTA keystream numbers,
# each as JSON via cmd/benchjson for CI diffing.
bench-json:
	$(GO) test -run '^$$' -bench 'NTT|MulPolyInto|BFVEncrypt|PKEEncrypt|Table3PKE' -benchmem \
		./internal/rlwe ./internal/bfv . | $(GO) run ./cmd/benchjson -out BENCH_rlwe.json
	$(GO) test -run '^$$' -bench 'Table2CPUSoftware|KeyStream|MastaKeystream|AccelKeystream|AccelFarm|BackendDispatch|ServerThroughput|ServerOverhead|TranscipherBlock' -benchmem \
		./internal/pasta ./internal/masta ./internal/backend ./internal/hw ./internal/server ./internal/transcipher . | $(GO) run ./cmd/benchjson -out BENCH_pasta.json

# Allocation-regression gate on the serving-tier hot path: the
# end-to-end encrypt round trip (client encode → server decode →
# dispatch → reply → client decode) must stay within the committed
# allocs/op budgets. ServerThroughput runs the real PASTA-4 cipher;
# ServerOverhead isolates the request pipeline on a free keystream;
# AccelKeystream holds the event-driven accelerator engine to its
# allocation-free steady state (one alloc: the returned keystream).
bench-guard:
	$(GO) test -run '^$$' -bench 'ServerThroughput$$|ServerOverhead' -benchmem -benchtime 0.5s \
		./internal/server | $(GO) run ./cmd/benchjson \
		-max-allocs 'ServerThroughput$$=4,ServerOverhead$$=3' -out /dev/null
	$(GO) test -run '^$$' -bench 'AccelKeystream' -benchmem -benchtime 0.2s \
		./internal/hw | $(GO) run ./cmd/benchjson \
		-max-allocs 'AccelKeystream/.*event$$=1' -out /dev/null

# Short fuzz runs of the differential harnesses: the lazy NTT product
# against the schoolbook oracle, the structured modular reductions
# against the generic one, the wire decoder, and the event-driven
# accelerator engine against the per-cycle oracle.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMulPoly -fuzztime 5s ./internal/rlwe
	$(GO) test -run '^$$' -fuzz FuzzDotLazyAgainstNaive -fuzztime 5s ./internal/ff
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 5s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzAccelEventStep -fuzztime 5s ./internal/hw

# End-to-end check of the observability layer: a short co-simulation must
# emit a JSON metrics snapshot on stdout.
metrics-smoke:
	$(GO) run ./cmd/socsim -blocks 2 -metrics -

# Cross-backend differential check on the reduced instance (PASTA-4,
# t = 32): software, accelerator model, and SoC co-simulation must emit
# bit-identical keystream and ciphertext. The full suite (plus PASTA-3)
# runs under `make test`/`make race`; this target is the fast CI gate.
backends-smoke:
	$(GO) test -run 'TestCrossBackendDifferential/PASTA-4' -v ./internal/backend

# Conformance over the full cipher × backend matrix: every registered
# cipher family (PASTA, HERA, MASTA, plus any test-local Register) on
# every registered substrate, with typed skip-with-reason for pairs the
# capability probes refuse. This is the registry's CI gate: a new
# cipher package is covered the moment its init calls cipher.Register.
cipher-smoke:
	$(GO) test -run 'TestConformance|TestCrossBackendDifferential|TestSoftwareZeroAlloc|TestDummyCipher' -v ./internal/backend

# End-to-end check of the serving tier: bring an hheserver up in-process,
# run a client round-trip, provoke an overload rejection, scrape the
# /metrics endpoint, and shut down cleanly.
server-smoke:
	$(GO) test -run TestServerSmoke -count=1 -v ./cmd/hheserver

# Transport-security gate: serve over TLS from a self-signed PEM pair,
# reject a plaintext client, replay a captured Encrypt frame (must be
# refused with CodeReplay), and resume a parked session by token across
# a reconnect.
tls-smoke:
	$(GO) test -run TestTLSSmoke -count=1 -v ./cmd/hheserver

# Networked transciphering gate: a keyless session enrolls BFV eval keys
# over real TCP in chunks and transciphers symmetric PASTA ciphertext
# into BFV ciphertexts bit-identical to the local PackedServer oracle,
# while concurrent keystream sessions keep their latency (the heavy pool
# is segregated from the keystream path).
transcipher-smoke:
	$(GO) test -run 'TestTranscipherE2E|TestTranscipherDoesNotBlockKeystream' -count=1 -v ./internal/server

ci: vet fmt-check build race backends-smoke cipher-smoke server-smoke tls-smoke transcipher-smoke bench-smoke

clean:
	$(GO) clean ./...
	rm -f repro.test
