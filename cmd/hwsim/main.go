// Command hwsim runs one keystream block on a selectable execution
// backend and reports its statistics. On the default accel backend (the
// cycle-accurate cryptoprocessor model) it prints cycle counts, unit
// utilization, and — with -trace — the Fig. 3 schedule milestones; on
// the software or soc backends it prints the generic backend counters,
// which makes it a quick way to confirm all substrates agree on the
// same block.
//
// Usage:
//
//	hwsim [-backend software|accel|soc] [-variant pasta3|pasta4] [-w 17|33|54|60]
//	      [-nonce N] [-counter N] [-trace] [-verify] [-metrics file|-]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

func main() {
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	width := flag.Uint("w", 17, "modulus bit width: 17, 33, 54 or 60")
	nonce := flag.Uint64("nonce", 0, "nonce")
	counter := flag.Uint64("counter", 0, "block counter")
	trace := flag.Bool("trace", false, "print the schedule trace (Fig. 3; accel backend only)")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the run to this file (view with GTKWave; accel backend only)")
	verify := flag.Bool("verify", true, "check the keystream against the software reference")
	keySeed := flag.String("key-seed", "hwsim", "deterministic key seed")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameAccel)
	flag.Parse()

	if err := run(*variant, *width, *nonce, *counter, *trace, *verify, *keySeed, *vcdPath, common.Backend); err != nil {
		cli.Exit("hwsim", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("hwsim", err)
	}
}

func run(variant string, width uint, nonce, counter uint64, trace, verify bool, keySeed, vcdPath, backendName string) error {
	b, err := cli.OpenPasta(backendName, variant, width, keySeed, 0)
	if err != nil {
		return err
	}
	defer b.Close()

	// The schedule trace and waveform capture are properties of the
	// cycle-accurate model; the other substrates have nothing to record.
	var acc *hw.Accelerator
	ab, isAccel := b.(*backend.AccelBackend)
	if isAccel {
		acc = ab.Accelerator()
		acc.TraceEnabled = trace
		if vcdPath != "" {
			acc.Waveform = &hw.Waveform{}
		}
	} else if trace || vcdPath != "" {
		return fmt.Errorf("-trace and -vcd require the %s backend (got %s)", backend.NameAccel, backendName)
	}

	ks := ff.NewVec(b.BlockSize())
	if err := b.KeyStreamInto(context.Background(), ks, nonce, counter); err != nil {
		return err
	}

	fmt.Printf("%s backend  ω=%d  nonce=%d  counter=%d\n", b.Name(), width, nonce, counter)
	if isAccel {
		res := ab.LastResult()
		fmt.Printf("cycles: %d  (FPGA 75MHz: %.1f µs, ASIC 1GHz: %.2f µs, SoC 100MHz: %.1f µs)\n",
			res.Stats.Cycles,
			hw.Microseconds(res.Stats.Cycles, hw.FPGAHz),
			hw.Microseconds(res.Stats.Cycles, hw.ASICHz),
			hw.Microseconds(res.Stats.Cycles, hw.RISCVHz))
		fmt.Printf("keccak permutations: %d  words drawn: %d  kept: %d (%.1f%% acceptance)\n",
			res.Stats.Permutations, res.Stats.WordsDrawn, res.Stats.WordsKept,
			100*float64(res.Stats.WordsKept)/float64(res.Stats.WordsDrawn))

		util := res.Stats.Utilization()
		names := make([]string, 0, len(util))
		for k := range util {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return util[names[i]] > util[names[j]] })
		fmt.Println("unit utilization:")
		for _, n := range names {
			fmt.Printf("  %-8s %5.1f%%\n", n, 100*util[n])
		}

		if trace {
			fmt.Println("schedule trace:")
			for _, ev := range res.Trace {
				fmt.Println(" ", ev)
			}
		}

		if vcdPath != "" {
			f, err := os.Create(vcdPath)
			if err != nil {
				return err
			}
			if err := acc.Waveform.WriteVCD(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("waveform: %d cycles written to %s\n", acc.Waveform.Cycles(), vcdPath)
		}
	} else {
		st := b.Stats()
		fmt.Printf("blocks: %d  elements: %d  core cycles: %d  accel cycles: %d\n",
			st.Blocks, st.Elements, st.CoreCycles, st.AccelCycles)
	}

	if verify {
		v, err := cli.ParseVariant(variant)
		if err != nil {
			return err
		}
		par := pasta.MustParams(v, ff.StandardModuli[width])
		ref, err := pasta.NewCipher(par, pasta.KeyFromSeed(par, keySeed))
		if err != nil {
			return err
		}
		if ks.Equal(ref.KeyStream(nonce, counter)) {
			fmt.Printf("verify: %s keystream matches software reference ✓\n", b.Name())
		} else {
			return fmt.Errorf("verify FAILED: keystream mismatch")
		}
	}
	return nil
}
