// Command hwsim runs one keystream block on a selectable execution
// backend and reports its statistics. On the default accel backend (the
// cycle-accurate cryptoprocessor model) it prints cycle counts, unit
// utilization, and — with -trace — the Fig. 3 schedule milestones; on
// the software or soc backends it prints the generic backend counters,
// which makes it a quick way to confirm all substrates agree on the
// same block.
//
// Usage:
//
//	hwsim [-backend software|accel|soc] [-cipher pasta|hera|masta]
//	      [-variant pasta3|pasta4] [-w 17|33|54|60]
//	      [-nonce N] [-counter N] [-step-mode auto|event|cycle|both] [-accel-units N]
//	      [-trace] [-verify] [-metrics file|-]
//
// -cipher selects the registered cipher family (default pasta); the
// capability probes decide which substrates can run it, so e.g.
// software-only families are refused by the accel and soc backends with
// a typed error instead of wrong numbers.
//
// -step-mode selects how the accel backend advances modelled time: the
// event-driven fast-forward engine ("event"), the per-cycle oracle
// ("cycle"), or "both", which runs the block through each engine, checks
// that the modelled cycle counts match bit-exactly, and reports the
// wall-clock speedup of event-driven stepping.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/ff"
	"repro/internal/hw"
)

func main() {
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	width := flag.Uint("w", 17, "modulus bit width: 17, 33, 54 or 60")
	nonce := flag.Uint64("nonce", 0, "nonce")
	counter := flag.Uint64("counter", 0, "block counter")
	stepMode := flag.String("step-mode", "auto", "accel time stepping: auto, event, cycle, or both (compare engines)")
	trace := flag.Bool("trace", false, "print the schedule trace (Fig. 3; accel backend only)")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the run to this file (view with GTKWave; accel backend only)")
	verify := flag.Bool("verify", true, "check the keystream against the software reference")
	keySeed := flag.String("key-seed", "hwsim", "deterministic key seed")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameAccel)
	flag.Parse()

	if err := run(common.CipherName(), *variant, *width, *nonce, *counter, *trace, *verify, *keySeed, *vcdPath, *stepMode, common.Backend, common.AccelUnits); err != nil {
		cli.Exit("hwsim", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("hwsim", err)
	}
}

func run(cipherName, variant string, width uint, nonce, counter uint64, trace, verify bool, keySeed, vcdPath, stepMode, backendName string, accelUnits int) error {
	params, err := cli.CipherParams(cipherName, variant, width)
	if err != nil {
		return err
	}
	b, err := cli.OpenCipher(backendName, cipherName, params, keySeed, 0, accelUnits)
	if err != nil {
		return err
	}
	defer b.Close()

	// The schedule trace, waveform capture, and step-mode selection are
	// properties of the PASTA cryptoprocessor model; the other substrates
	// (and the accel backend's non-PASTA datapaths) have nothing to
	// record.
	var acc *hw.Accelerator
	ab, isAccel := b.(*backend.AccelBackend)
	if isAccel {
		acc = ab.Accelerator() // nil for non-PASTA accel datapaths
	}
	hasModel := acc != nil
	if hasModel {
		acc.TraceEnabled = trace
		if vcdPath != "" {
			acc.Waveform = &hw.Waveform{}
		}
	} else if trace || vcdPath != "" {
		return fmt.Errorf("-trace and -vcd require the PASTA model on the %s backend (got %s on %s)",
			backend.NameAccel, cipherName, backendName)
	}

	if stepMode != "" && stepMode != "auto" && !hasModel {
		return fmt.Errorf("-step-mode requires the PASTA model on the %s backend (got %s on %s)",
			backend.NameAccel, cipherName, backendName)
	}
	if stepMode == "both" {
		if err := compareSteppings(ab, nonce, counter); err != nil {
			return err
		}
	} else if hasModel {
		m, err := hw.ParseStepMode(stepMode)
		if err != nil {
			return err
		}
		ab.SetStepMode(m)
	}

	ks := ff.NewVec(b.BlockSize())
	if err := b.KeyStreamInto(context.Background(), ks, nonce, counter); err != nil {
		return err
	}

	fmt.Printf("%s backend  %s  ω=%d  nonce=%d  counter=%d\n", b.Name(), cipherName, width, nonce, counter)
	if hasModel {
		res := ab.LastResult()
		fmt.Printf("cycles: %d  (FPGA 75MHz: %.1f µs, ASIC 1GHz: %.2f µs, SoC 100MHz: %.1f µs)\n",
			res.Stats.Cycles,
			hw.Microseconds(res.Stats.Cycles, hw.FPGAHz),
			hw.Microseconds(res.Stats.Cycles, hw.ASICHz),
			hw.Microseconds(res.Stats.Cycles, hw.RISCVHz))
		fmt.Printf("keccak permutations: %d  words drawn: %d  kept: %d (%.1f%% acceptance)\n",
			res.Stats.Permutations, res.Stats.WordsDrawn, res.Stats.WordsKept,
			100*float64(res.Stats.WordsKept)/float64(res.Stats.WordsDrawn))

		util := res.Stats.Utilization()
		names := make([]string, 0, len(util))
		for k := range util {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return util[names[i]] > util[names[j]] })
		fmt.Println("unit utilization:")
		for _, n := range names {
			fmt.Printf("  %-8s %5.1f%%\n", n, 100*util[n])
		}

		if trace {
			fmt.Println("schedule trace:")
			for _, ev := range res.Trace {
				fmt.Println(" ", ev)
			}
		}

		if vcdPath != "" {
			f, err := os.Create(vcdPath)
			if err != nil {
				return err
			}
			if err := acc.Waveform.WriteVCD(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("waveform: %d cycles written to %s\n", acc.Waveform.Cycles(), vcdPath)
		}
	} else {
		st := b.Stats()
		fmt.Printf("blocks: %d  elements: %d  core cycles: %d  accel cycles: %d\n",
			st.Blocks, st.Elements, st.CoreCycles, st.AccelCycles)
	}

	if verify {
		ref, err := cli.ReferenceKeystream(cipherName, params, keySeed, nonce, counter, 1)
		if err != nil {
			return err
		}
		if ks.Equal(ref) {
			fmt.Printf("verify: %s keystream matches software reference ✓\n", b.Name())
		} else {
			return fmt.Errorf("verify FAILED: keystream mismatch")
		}
	}
	return nil
}

// compareSteppings runs the same block through the event-driven engine
// and the per-cycle oracle, requires the modelled cycle counts to match
// bit-exactly, and reports the wall-clock speedup of event stepping —
// the check behind the event engine's equivalence claim, runnable on any
// instance from the command line.
func compareSteppings(ab *backend.AccelBackend, nonce, counter uint64) error {
	const reps = 5
	ctx := context.Background()
	ks := ff.NewVec(ab.BlockSize())
	measure := func(m hw.StepMode) (hw.Result, time.Duration, ff.Vec, error) {
		ab.SetStepMode(m)
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := ab.KeyStreamInto(ctx, ks, nonce, counter); err != nil {
				return hw.Result{}, 0, nil, err
			}
		}
		return ab.LastResult(), time.Since(start) / reps, ks.Clone(), nil
	}
	evRes, evTime, evKS, err := measure(hw.StepEvent)
	if err != nil {
		return err
	}
	cyRes, cyTime, cyKS, err := measure(hw.StepCycle)
	if err != nil {
		return err
	}
	ab.SetStepMode(hw.StepAuto)
	if evRes.Stats != cyRes.Stats {
		return fmt.Errorf("step-mode both: STATS MISMATCH\n event: %+v\n cycle: %+v", evRes.Stats, cyRes.Stats)
	}
	if !evKS.Equal(cyKS) {
		return fmt.Errorf("step-mode both: keystream mismatch between engines")
	}
	fmt.Printf("step-mode both: modelled cycles match ✓ (%d cycles, all unit counters identical)\n",
		evRes.Stats.Cycles)
	fmt.Printf("  event: %v/block   cycle: %v/block   speedup: %.1f×\n",
		evTime.Round(time.Microsecond), cyTime.Round(time.Microsecond),
		float64(cyTime)/float64(evTime))
	return nil
}
