// Command hwsim runs the cycle-accurate cryptoprocessor model for one
// keystream block and reports cycle statistics, unit utilization, and —
// with -trace — the Fig. 3 schedule milestones.
//
// Usage:
//
//	hwsim [-variant pasta3|pasta4] [-w 17|33|54|60] [-nonce N] [-counter N] [-trace] [-verify] [-metrics file|-]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/pasta"
)

func main() {
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	width := flag.Uint("w", 17, "modulus bit width: 17, 33, 54 or 60")
	nonce := flag.Uint64("nonce", 0, "nonce")
	counter := flag.Uint64("counter", 0, "block counter")
	trace := flag.Bool("trace", false, "print the schedule trace (Fig. 3)")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the run to this file (view with GTKWave)")
	verify := flag.Bool("verify", true, "check the keystream against the software reference")
	keySeed := flag.String("key-seed", "hwsim", "deterministic key seed")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file after the run (\"-\" = stdout)")
	flag.Parse()

	if err := run(*variant, *width, *nonce, *counter, *trace, *verify, *keySeed, *vcdPath); err != nil {
		fmt.Fprintln(os.Stderr, "hwsim:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := obs.WriteSnapshot(obs.Default(), *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "hwsim:", err)
			os.Exit(1)
		}
	}
}

func run(variant string, width uint, nonce, counter uint64, trace, verify bool, keySeed, vcdPath string) error {
	mod, ok := ff.StandardModuli[width]
	if !ok {
		return fmt.Errorf("unsupported width %d (have 17, 33, 54, 60)", width)
	}
	var v pasta.Variant
	switch variant {
	case "pasta3":
		v = pasta.Pasta3
	case "pasta4":
		v = pasta.Pasta4
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	par := pasta.MustParams(v, mod)
	key := pasta.KeyFromSeed(par, keySeed)
	acc, err := hw.NewAccelerator(par, key)
	if err != nil {
		return err
	}
	acc.TraceEnabled = trace
	if vcdPath != "" {
		acc.Waveform = &hw.Waveform{}
	}

	res, err := acc.KeyStream(nonce, counter)
	if err != nil {
		return err
	}

	fmt.Printf("%s  ω=%d  nonce=%d  counter=%d\n", par, width, nonce, counter)
	fmt.Printf("cycles: %d  (FPGA 75MHz: %.1f µs, ASIC 1GHz: %.2f µs, SoC 100MHz: %.1f µs)\n",
		res.Stats.Cycles,
		hw.Microseconds(res.Stats.Cycles, hw.FPGAHz),
		hw.Microseconds(res.Stats.Cycles, hw.ASICHz),
		hw.Microseconds(res.Stats.Cycles, hw.RISCVHz))
	fmt.Printf("keccak permutations: %d  words drawn: %d  kept: %d (%.1f%% acceptance)\n",
		res.Stats.Permutations, res.Stats.WordsDrawn, res.Stats.WordsKept,
		100*float64(res.Stats.WordsKept)/float64(res.Stats.WordsDrawn))

	util := res.Stats.Utilization()
	names := make([]string, 0, len(util))
	for k := range util {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return util[names[i]] > util[names[j]] })
	fmt.Println("unit utilization:")
	for _, n := range names {
		fmt.Printf("  %-8s %5.1f%%\n", n, 100*util[n])
	}

	if trace {
		fmt.Println("schedule trace:")
		for _, ev := range res.Trace {
			fmt.Println(" ", ev)
		}
	}

	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		if err := acc.Waveform.WriteVCD(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("waveform: %d cycles written to %s\n", acc.Waveform.Cycles(), vcdPath)
	}

	if verify {
		ref, err := pasta.NewCipher(par, key)
		if err != nil {
			return err
		}
		if res.KeyStream.Equal(ref.KeyStream(nonce, counter)) {
			fmt.Println("verify: hardware keystream matches software reference ✓")
		} else {
			return fmt.Errorf("verify FAILED: keystream mismatch")
		}
	}
	return nil
}
