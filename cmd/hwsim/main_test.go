package main

import "testing"

func TestRunPasta4(t *testing.T) {
	if err := run("pasta", "pasta4", 17, 0, 0, false, true, "test", "", "auto", "accel", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("pasta", "pasta4", 17, 1, 2, true, true, "test", "", "auto", "accel", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWideModulus(t *testing.T) {
	if err := run("pasta", "pasta4", 33, 0, 0, false, true, "test", "", "auto", "accel", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run("pasta", "pasta9", 17, 0, 0, false, false, "t", "", "auto", "accel", 1); err == nil {
		t.Fatal("bad variant accepted")
	}
	if err := run("pasta", "pasta4", 19, 0, 0, false, false, "t", "", "auto", "accel", 1); err == nil {
		t.Fatal("bad width accepted")
	}
}

// TestRunAllBackends drives the same block through every registered
// substrate with -verify on: each run checks its keystream against the
// software reference, so a pass means all backends agree bit-for-bit.
func TestRunAllBackends(t *testing.T) {
	for _, name := range []string{"software", "accel", "soc"} {
		if err := run("pasta", "pasta4", 17, 3, 1, false, true, "test", "", "auto", name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run("pasta", "pasta4", 17, 0, 0, false, false, "t", "", "auto", "fpga", 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// Trace capture is a property of the cycle-accurate model.
	if err := run("pasta", "pasta4", 17, 0, 0, true, false, "t", "", "auto", "software", 1); err == nil {
		t.Fatal("-trace on the software backend accepted")
	}
}

// TestRunStepModes pins the -step-mode plumbing: explicit engine
// selection works, "both" runs the cross-engine comparison, non-accel
// backends reject the flag, and bad spellings fail.
func TestRunStepModes(t *testing.T) {
	for _, mode := range []string{"event", "cycle", "both"} {
		if err := run("pasta", "pasta4", 17, 0, 0, false, true, "test", "", mode, "accel", 1); err != nil {
			t.Fatalf("step-mode %s: %v", mode, err)
		}
	}
	if err := run("pasta", "pasta4", 17, 0, 0, false, false, "t", "", "event", "software", 1); err == nil {
		t.Fatal("-step-mode on the software backend accepted")
	}
	if err := run("pasta", "pasta4", 17, 0, 0, false, false, "t", "", "warp", "accel", 1); err == nil {
		t.Fatal("bad step mode accepted")
	}
}

// TestRunFarm drives a multi-unit run end to end with -verify.
func TestRunFarm(t *testing.T) {
	if err := run("pasta", "pasta4", 17, 0, 0, false, true, "test", "", "auto", "accel", 4); err != nil {
		t.Fatal(err)
	}
}

// TestRunCipherFamilies exercises the -cipher axis: HERA runs (and
// verifies) on the accelerator model, the software-only MASTA family
// runs on the software backend but is refused by the capability probes
// on the hardware substrates, and unknown names fail.
func TestRunCipherFamilies(t *testing.T) {
	if err := run("hera", "pasta4", 17, 0, 0, false, true, "test", "", "auto", "accel", 1); err != nil {
		t.Fatalf("hera on accel: %v", err)
	}
	if err := run("masta", "pasta4", 17, 0, 0, false, true, "test", "", "auto", "software", 1); err != nil {
		t.Fatalf("masta on software: %v", err)
	}
	if err := run("masta", "pasta4", 17, 0, 0, false, false, "t", "", "auto", "accel", 1); err == nil {
		t.Fatal("software-only masta accepted on the accel backend")
	}
	if err := run("rasta", "pasta4", 17, 0, 0, false, false, "t", "", "auto", "software", 1); err == nil {
		t.Fatal("unknown cipher accepted")
	}
}
