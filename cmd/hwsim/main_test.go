package main

import "testing"

func TestRunPasta4(t *testing.T) {
	if err := run("pasta4", 17, 0, 0, false, true, "test", "", "accel"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("pasta4", 17, 1, 2, true, true, "test", "", "accel"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWideModulus(t *testing.T) {
	if err := run("pasta4", 33, 0, 0, false, true, "test", "", "accel"); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run("pasta9", 17, 0, 0, false, false, "t", "", "accel"); err == nil {
		t.Fatal("bad variant accepted")
	}
	if err := run("pasta4", 19, 0, 0, false, false, "t", "", "accel"); err == nil {
		t.Fatal("bad width accepted")
	}
}

// TestRunAllBackends drives the same block through every registered
// substrate with -verify on: each run checks its keystream against the
// software reference, so a pass means all backends agree bit-for-bit.
func TestRunAllBackends(t *testing.T) {
	for _, name := range []string{"software", "accel", "soc"} {
		if err := run("pasta4", 17, 3, 1, false, true, "test", "", name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run("pasta4", 17, 0, 0, false, false, "t", "", "fpga"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// Trace capture is a property of the cycle-accurate model.
	if err := run("pasta4", 17, 0, 0, true, false, "t", "", "software"); err == nil {
		t.Fatal("-trace on the software backend accepted")
	}
}
