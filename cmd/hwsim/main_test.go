package main

import "testing"

func TestRunPasta4(t *testing.T) {
	if err := run("pasta4", 17, 0, 0, false, true, "test", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("pasta4", 17, 1, 2, true, true, "test", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWideModulus(t *testing.T) {
	if err := run("pasta4", 33, 0, 0, false, true, "test", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run("pasta9", 17, 0, 0, false, false, "t", ""); err == nil {
		t.Fatal("bad variant accepted")
	}
	if err := run("pasta4", 19, 0, 0, false, false, "t", ""); err == nil {
		t.Fatal("bad width accepted")
	}
}
