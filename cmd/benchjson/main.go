// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON report, so CI can diff benchmark
// runs without scraping the fixed-width text format.
//
// Usage:
//
//	go test -run '^$' -bench NTT -benchmem ./internal/rlwe | benchjson -out BENCH_rlwe.json
//
// Each benchmark line becomes one record carrying the operation name,
// the -cpu count parsed from the trailing "-N" suffix, ns/op, B/op,
// allocs/op, and any custom metrics (cycles/block, µs/enc, ...).
//
// -max-allocs turns the converter into a regression gate: it takes
// comma-separated <op-regex>=<n> pairs and exits nonzero when any
// matching result reports more than n allocs/op (or when a pattern
// matches nothing — a renamed benchmark must not silently disarm the
// guard). `make bench-guard` uses this to hold the serving-tier hot
// path to its committed allocation budget.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Op          string             `json:"op"`                // benchmark name without -N cpu suffix
	Pkg         string             `json:"pkg,omitempty"`     // import path from the pkg: header
	CPUs        int                `json:"cpus"`              // GOMAXPROCS from the -N suffix (1 if absent)
	Iterations  int64              `json:"iterations"`        // b.N
	NsPerOp     float64            `json:"ns_per_op"`         // wall time
	BytesPerOp  float64            `json:"bytes_per_op"`      // -benchmem; -1 when not reported
	AllocsPerOp float64            `json:"allocs_per_op"`     // -benchmem; -1 when not reported
	Metrics     map[string]float64 `json:"metrics,omitempty"` // b.ReportMetric extras
}

// Report is the top-level JSON document.
type Report struct {
	HostCPU string   `json:"host_cpu,omitempty"` // cpu: header, if present
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	maxAllocs := flag.String("max-allocs", "",
		"comma-separated op-regex=N pairs; fail if a matching result exceeds N allocs/op")
	flag.Parse()

	report, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(report.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *maxAllocs != "" {
		if err := guardAllocs(report, *maxAllocs); err != nil {
			fatal(err)
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(report.Results), *out)
	}
}

// parseBench consumes go test -bench output. Header lines (pkg:, cpu:)
// set context for the benchmark lines that follow; everything else
// (PASS, ok, test log noise) is skipped.
func parseBench(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.HostCPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseLine parses a single benchmark result line:
//
//	BenchmarkNTT/N=8192/lazy-4   2000   501234 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false // a name with no measurements (e.g. -v chatter)
	}
	res := Result{BytesPerOp: -1, AllocsPerOp: -1, Metrics: map[string]float64{}}
	res.Op, res.CPUs = splitCPUSuffix(fields[0])

	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters

	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			res.Metrics[unit] = v
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, true
}

// splitCPUSuffix strips the trailing "-N" GOMAXPROCS marker the testing
// package appends when N != 1 (and under -cpu). Sub-benchmark names may
// themselves contain dashes, so only a trailing all-digit run counts.
func splitCPUSuffix(name string) (string, int) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return name[:i], n
		}
	}
	return name, 1
}

// guardAllocs enforces -max-allocs: every pattern must match at least
// one result that reported allocations, and every match must stay
// within its budget.
func guardAllocs(rep Report, spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		pattern, limitStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad -max-allocs entry %q (want op-regex=N)", pair)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return fmt.Errorf("bad -max-allocs pattern %q: %v", pattern, err)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			return fmt.Errorf("bad -max-allocs limit %q: %v", limitStr, err)
		}
		matched := false
		for _, res := range rep.Results {
			if !re.MatchString(res.Op) || res.AllocsPerOp < 0 {
				continue
			}
			matched = true
			if res.AllocsPerOp > limit {
				return fmt.Errorf("allocation budget exceeded: %s reports %.0f allocs/op (budget %.0f)",
					res.Op, res.AllocsPerOp, limit)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %s within budget: %.0f ≤ %.0f allocs/op\n",
				res.Op, res.AllocsPerOp, limit)
		}
		if !matched {
			return fmt.Errorf("-max-allocs pattern %q matched no result with allocation data (run with -benchmem?)", pattern)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
