package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/rlwe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNTT/N=8192/lazy-4         	    2437	    492110 ns/op	       0 B/op	       0 allocs/op
BenchmarkNTT/N=8192/oracle         	     696	   1713694 ns/op
BenchmarkMulPolyInto-2             	     100	  10000000 ns/op	       5 B/op	       0 allocs/op
PASS
ok  	repro/internal/rlwe	4.213s
pkg: repro
BenchmarkTable3PKEBaseline-4       	       8	 141000000 ns/op	      3441.4 µs/enc	         0.8402 µs/elem(2^12)
ok  	repro	2.001s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HostCPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("host cpu = %q", rep.HostCPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(rep.Results))
	}

	r := rep.Results[0]
	if r.Op != "BenchmarkNTT/N=8192/lazy" || r.CPUs != 4 {
		t.Errorf("result 0: op=%q cpus=%d", r.Op, r.CPUs)
	}
	if r.Pkg != "repro/internal/rlwe" {
		t.Errorf("result 0: pkg=%q", r.Pkg)
	}
	if r.Iterations != 2437 || r.NsPerOp != 492110 {
		t.Errorf("result 0: iters=%d ns=%v", r.Iterations, r.NsPerOp)
	}
	if r.AllocsPerOp != 0 || r.BytesPerOp != 0 {
		t.Errorf("result 0: allocs=%v bytes=%v", r.AllocsPerOp, r.BytesPerOp)
	}

	// No -N suffix → 1 CPU; no -benchmem → sentinel -1.
	r = rep.Results[1]
	if r.Op != "BenchmarkNTT/N=8192/oracle" || r.CPUs != 1 {
		t.Errorf("result 1: op=%q cpus=%d", r.Op, r.CPUs)
	}
	if r.AllocsPerOp != -1 || r.BytesPerOp != -1 {
		t.Errorf("result 1: allocs=%v bytes=%v", r.AllocsPerOp, r.BytesPerOp)
	}

	// Custom metrics from b.ReportMetric, and the second pkg: header.
	r = rep.Results[3]
	if r.Pkg != "repro" {
		t.Errorf("result 3: pkg=%q", r.Pkg)
	}
	if got := r.Metrics["µs/enc"]; got != 3441.4 {
		t.Errorf("result 3: µs/enc=%v", got)
	}
	if got := r.Metrics["µs/elem(2^12)"]; got != 0.8402 {
		t.Errorf("result 3: µs/elem=%v", got)
	}
}

func TestSplitCPUSuffix(t *testing.T) {
	cases := []struct {
		in   string
		op   string
		cpus int
	}{
		{"BenchmarkNTT-8", "BenchmarkNTT", 8},
		{"BenchmarkNTT", "BenchmarkNTT", 1},
		{"BenchmarkNTT/N=1024", "BenchmarkNTT/N=1024", 1},
		{"BenchmarkFoo/sub-case-2", "BenchmarkFoo/sub-case", 2},
	}
	for _, c := range cases {
		op, cpus := splitCPUSuffix(c.in)
		if op != c.op || cpus != c.cpus {
			t.Errorf("splitCPUSuffix(%q) = %q,%d; want %q,%d", c.in, op, cpus, c.op, c.cpus)
		}
	}
}

func TestParseBenchSkipsNoise(t *testing.T) {
	rep, err := parseBench(strings.NewReader("random text\nBenchmarkBroken abc\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("got %d results from noise, want 0", len(rep.Results))
	}
}
