// Command hhebench regenerates every table and figure of the paper's
// evaluation section from the reproduction's models.
//
// Usage:
//
//	hhebench [-experiment all|table1|table2|table3|fig7|fig8|claims|schemes|bitwidth|
//	          communication|energy|countermeasures|software|transcipher] [-nonces N]
//	         [-enc-cap] [-backend software|accel|soc] [-cipher pasta|hera|masta]
//	         [-metrics file|-] [-debug-addr host:port]
//
// The -backend flag selects the execution substrate for the "software"
// (throughput) experiment; the modelled tables always sample the
// substrates they reproduce. The throughput experiment sweeps every
// registered cipher family the substrate can run (MASTA vs PASTA vs
// HERA on one axis); -cipher narrows it to a single family.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/eval"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/obs"
	"repro/internal/pasta"
	"repro/internal/transcipher"
)

// experiments is the canonical list the -experiment flag accepts (besides
// "all" and comma-separated combinations). The flag help and the
// unknown-experiment error are both derived from it so they cannot drift.
var experiments = []string{
	"table1", "table2", "table3", "fig7", "fig8", "claims", "schemes",
	"bitwidth", "communication", "energy", "countermeasures", "software",
	"transcipher",
}

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, "+strings.Join(experiments, ", ")+" (comma-separated to combine)")
	nonces := flag.Int("nonces", 5, "nonce samples for cycle averaging (Table II)")
	encCap := flag.Bool("enc-cap", false, "include client encryption throughput as a cap in Fig. 8")
	workers := flag.Int("workers", 0, "goroutines for the software experiment (0 = GOMAXPROCS)")
	blocks := flag.Int("blocks", 256, "CTR blocks per measurement in the software experiment")
	measurePKE := flag.Bool("measure-pke", true, "measure the software RLWE PKE baseline on this host for Table III (adds a few seconds of setup)")
	pkeIters := flag.Int("pke-iters", 8, "encryptions to average for the measured PKE baseline")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs for every experiment into this directory")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics, /debug/vars and /debug/pprof on this address while the benchmarks run")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameSoftware)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hhebench: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	defer func() {
		if err := common.Finish(); err != nil {
			fatal(err)
		}
	}()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		err := eval.WriteAllCSV(func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		}, *nonces)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hhebench: wrote CSVs to %s\n", *csvDir)
	}

	selected := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	out := os.Stdout
	var t2 []eval.Table2Row
	needT2 := want("table2") || want("table3") || want("claims") || want("energy")
	if needT2 {
		rows, err := eval.Table2(*nonces)
		if err != nil {
			fatal(err)
		}
		t2 = rows
	}

	ran := false
	if want("table1") {
		eval.RenderTable1(out, eval.Table1())
		fmt.Fprintln(out)
		ran = true
	}
	if want("table2") {
		eval.RenderTable2(out, t2)
		fmt.Fprintln(out)
		ran = true
	}
	if want("table3") {
		// The software baseline row is measured, not assumed: the prior
		// works' exact workload (N = 2^13, three moduli) run on this
		// repository's lazy-NTT RLWE substrate.
		var sw *eval.PKEBaseline
		if *measurePKE {
			row, err := eval.MeasurePKEBaseline(8192, 55, 3, *pkeIters, *workers)
			if err != nil {
				fatal(err)
			}
			sw = &row
		}
		rows, err := eval.Table3WithSoftware(t2, sw)
		if err != nil {
			fatal(err)
		}
		eval.RenderTable3(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("fig7") {
		d, err := eval.Fig7()
		if err != nil {
			fatal(err)
		}
		eval.RenderFig7(out, d)
		fmt.Fprintln(out)
		ran = true
	}
	if want("fig8") {
		rows, err := eval.Fig8(1.59, *encCap)
		if err != nil {
			fatal(err)
		}
		eval.RenderFig8(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("claims") {
		eval.RenderClaims(out, eval.ComputeClaims(t2))
		fmt.Fprintln(out)
		ran = true
	}
	if want("schemes") {
		rows, err := eval.SchemeComparison(ff.P17)
		if err != nil {
			fatal(err)
		}
		eval.RenderSchemes(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("bitwidth") {
		rows, err := eval.BitwidthStudy()
		if err != nil {
			fatal(err)
		}
		eval.RenderBitwidth(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("communication") {
		rows, err := eval.Expansion(1 << 12)
		if err != nil {
			fatal(err)
		}
		eval.RenderExpansion(out, rows)
		small, err := eval.Expansion(32)
		if err != nil {
			fatal(err)
		}
		eval.RenderExpansion(out, small)
		fmt.Fprintln(out)
		ran = true
	}
	if want("energy") {
		rows, err := eval.EnergyRows(t2)
		if err != nil {
			fatal(err)
		}
		eval.RenderEnergy(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("countermeasures") {
		rows, err := eval.CountermeasureCosts(eval.PaperResults.CyclesPasta4)
		if err != nil {
			fatal(err)
		}
		eval.RenderCountermeasures(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("software") {
		// nil = the full cipher registry (PASTA-3/4, HERA, MASTA, …);
		// -cipher narrows the sweep to one family. Families the selected
		// substrate cannot run are skipped by the capability probes.
		var ciphers []string
		if common.Cipher != "" {
			ciphers = []string{common.Cipher}
		}
		rows, err := eval.ThroughputCiphers(common.Backend, ciphers, *workers, *blocks, common.AccelUnits)
		if err != nil {
			fatal(err)
		}
		eval.RenderSoftware(out, rows)
		fmt.Fprintln(out)
		ran = true
	}
	if want("transcipher") {
		if err := runTranscipher(out); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (want all, %s)", *experiment, strings.Join(experiments, ", ")))
	}
}

// runTranscipher measures the serving tier's transciphering engine
// in-process: eval-key enrollment, a cold homomorphic PASTA decryption
// of one block, and the Enc(KS)-cached repeat of the same block.
func runTranscipher(out io.Writer) error {
	par, err := hhe.NewToyParams(4, 2)
	if err != nil {
		return err
	}
	key := pasta.KeyFromSeed(par.Pasta, "hhebench-transcipher")
	client, err := hhe.NewClient(par, key, []byte{7})
	if err != nil {
		return err
	}
	blob, err := client.EvalKeysBlob()
	if err != nil {
		return err
	}
	svc := transcipher.New(transcipher.Config{Budget: time.Hour})
	defer svc.Close()

	readyCh := make(chan error, 1)
	enrollStart := time.Now()
	_, deferred, err := svc.AcceptChunk(1, par.Pasta, 0, uint64(len(blob)), blob,
		func(_ transcipher.UploadState, err error) { readyCh <- err })
	if err != nil {
		return err
	}
	if deferred {
		if err := <-readyCh; err != nil {
			return err
		}
	}
	enroll := time.Since(enrollStart)

	sym, err := client.EncryptBlock(5, 0, ff.Vec{1, 2, 3, 4})
	if err != nil {
		return err
	}
	evalOnce := func() (time.Duration, error) {
		done := make(chan error, 1)
		start := time.Now()
		err := svc.Transcipher(1, 5, 0, []ff.Vec{sym},
			func(_ []byte, err error) { done <- err })
		if err != nil {
			return 0, err
		}
		if err := <-done; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	cold, err := evalOnce()
	if err != nil {
		return err
	}
	warm, err := evalOnce()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Transciphering tier (toy PASTA t=%d, %d rounds):\n",
		par.Pasta.T, par.Pasta.Rounds)
	fmt.Fprintf(out, "  eval-key blob      %d bytes\n", len(blob))
	fmt.Fprintf(out, "  enroll (build)     %v\n", enroll.Round(time.Millisecond))
	fmt.Fprintf(out, "  cold block eval    %v\n", cold.Round(time.Millisecond))
	fmt.Fprintf(out, "  Enc(KS) cache hit  %v\n", warm.Round(10*time.Microsecond))
	fmt.Fprintf(out, "  EWMA eval estimate %.1f ms\n", svc.EvalMSEstimate())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hhebench:", err)
	os.Exit(1)
}
