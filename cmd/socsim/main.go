// Command socsim co-simulates the RISC-V SoC (Ibex-like core + PASTA
// peripheral) encrypting a multi-block message, reporting the cycle
// breakdown behind the RISC-V column of Table II. With -backend it can
// run the same message through the software engine or the bare
// accelerator model instead, to confirm every substrate produces the
// same ciphertext.
//
// Usage:
//
//	socsim [-backend software|accel|soc] [-cipher pasta|hera|masta]
//	       [-blocks N] [-nonce N]
//	       [-variant pasta3|pasta4] [-irq] [-metrics file|-]
//
// -cipher selects the registered cipher family (default pasta). The
// detailed co-simulation path (retired instructions, WFI cycles) exists
// for the PASTA peripheral only; other families go through the generic
// backend, whose capability probes refuse substrates that cannot run
// them.
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
	"repro/internal/soc"
)

func main() {
	blocks := flag.Int("blocks", 4, "number of blocks to encrypt")
	nonce := flag.Uint64("nonce", 1, "nonce")
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	irq := flag.Bool("irq", false, "use the interrupt-driven (WFI) driver instead of status polling (soc backend only)")
	keySeed := flag.String("key-seed", "socsim", "deterministic key seed")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameSoC)
	flag.Parse()

	if err := run(*blocks, *nonce, common.CipherName(), *variant, *keySeed, *irq, common.Backend, common.AccelUnits); err != nil {
		cli.Exit("socsim", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("socsim", err)
	}
}

func run(blocks int, nonce uint64, cipherName, variant, keySeed string, irq bool, backendName string, accelUnits int) error {
	if blocks < 1 {
		return fmt.Errorf("-blocks must be ≥ 1")
	}
	if irq && backendName != backend.NameSoC {
		return fmt.Errorf("-irq requires the %s backend (got %s)", backend.NameSoC, backendName)
	}
	params, err := cli.CipherParams(cipherName, variant, 17)
	if err != nil {
		return err
	}
	inst, refEng, err := cli.ReferenceEngine(cipherName, params, keySeed)
	if err != nil {
		return err
	}

	msg := ff.NewVec(blocks * inst.Block)
	for i := range msg {
		msg[i] = uint64(i) % inst.Mod.P()
	}

	var ct ff.Vec
	if backendName == backend.NameSoC && cipherName == backend.DefaultCipher {
		// The direct driver path keeps the co-simulation detail (retired
		// instructions, WFI sleep cycles) that the generic backend
		// Stats() deliberately flattens. It speaks to the PASTA
		// peripheral; other families take the generic path below, where
		// the capability probes arbitrate substrate support.
		par := inst.Params.(pasta.Params)
		key := pasta.KeyFromSeed(par, keySeed)
		encrypt := soc.EncryptBlocks
		if irq {
			encrypt = soc.EncryptBlocksIRQ
		}
		var stats soc.RunStats
		ct, stats, err = encrypt(par, key, nonce, msg)
		if err != nil {
			return err
		}
		fmt.Printf("%s on the 100 MHz RISC-V SoC\n", par)
		fmt.Printf("blocks:            %d (%d elements)\n", stats.Blocks, len(msg))
		fmt.Printf("core cycles:       %d (%d instructions retired)\n", stats.CoreCycles, stats.Instructions)
		fmt.Printf("accelerator cycles:%d (%.1f%% of total)\n", stats.AccelCycles,
			100*float64(stats.AccelCycles)/float64(stats.CoreCycles))
		fmt.Printf("per block:         %d cycles = %.1f µs (paper Table II: 15.9 µs for PASTA-4)\n",
			stats.CyclesPerBlock(), hw.Microseconds(stats.CyclesPerBlock(), hw.RISCVHz))
		fmt.Printf("total:             %.1f µs\n", stats.Microseconds)
		if irq {
			fmt.Printf("WFI sleep:         %d cycles (%.1f%% of runtime clock-gated)\n",
				stats.WaitCycles, 100*float64(stats.WaitCycles)/float64(stats.CoreCycles))
		}
	} else {
		b, err := cli.OpenCipher(backendName, cipherName, params, keySeed, 0, accelUnits)
		if err != nil {
			return err
		}
		defer b.Close()
		ct, err = b.Encrypt(context.Background(), nonce, msg)
		if err != nil {
			return err
		}
		st := b.Stats()
		fmt.Printf("%s on the %s backend\n", inst.Label, b.Name())
		fmt.Printf("blocks:            %d (%d elements)\n", st.Blocks, st.Elements)
		if st.AccelCycles > 0 {
			fmt.Printf("accelerator cycles:%d (%.1f µs at 75 MHz FPGA)\n", st.AccelCycles,
				hw.Microseconds(st.AccelCycles, hw.FPGAHz))
		}
	}

	// Verify against the registry's sequential reference engine:
	// ciphertext is the additive mask of the oracle keystream.
	want := ff.NewVec(len(msg))
	for b := 0; b < blocks; b++ {
		if err := refEng.KeyStreamInto(want[b*inst.Block:(b+1)*inst.Block], nonce, uint64(b)); err != nil {
			return err
		}
	}
	for i := range want {
		want[i] = inst.Mod.Add(msg[i], want[i])
	}
	if ct.Equal(want) {
		fmt.Println("verify: ciphertext matches software reference ✓")
	} else {
		return fmt.Errorf("verify FAILED: ciphertext mismatch")
	}
	return nil
}
