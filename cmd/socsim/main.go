// Command socsim co-simulates the RISC-V SoC (Ibex-like core + PASTA
// peripheral) encrypting a multi-block message, reporting the cycle
// breakdown behind the RISC-V column of Table II.
//
// Usage:
//
//	socsim [-blocks N] [-nonce N] [-variant pasta3|pasta4] [-metrics file|-]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/pasta"
	"repro/internal/soc"
)

func main() {
	blocks := flag.Int("blocks", 4, "number of blocks to encrypt")
	nonce := flag.Uint64("nonce", 1, "nonce")
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	irq := flag.Bool("irq", false, "use the interrupt-driven (WFI) driver instead of status polling")
	keySeed := flag.String("key-seed", "socsim", "deterministic key seed")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file after the run (\"-\" = stdout)")
	flag.Parse()

	if err := run(*blocks, *nonce, *variant, *keySeed, *irq); err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := obs.WriteSnapshot(obs.Default(), *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			os.Exit(1)
		}
	}
}

func run(blocks int, nonce uint64, variant, keySeed string, irq bool) error {
	if blocks < 1 {
		return fmt.Errorf("-blocks must be ≥ 1")
	}
	var v pasta.Variant
	switch variant {
	case "pasta3":
		v = pasta.Pasta3
	case "pasta4":
		v = pasta.Pasta4
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	par := pasta.MustParams(v, ff.P17)
	key := pasta.KeyFromSeed(par, keySeed)

	msg := ff.NewVec(blocks * par.T)
	for i := range msg {
		msg[i] = uint64(i) % par.Mod.P()
	}
	encrypt := soc.EncryptBlocks
	if irq {
		encrypt = soc.EncryptBlocksIRQ
	}
	ct, stats, err := encrypt(par, key, nonce, msg)
	if err != nil {
		return err
	}

	// Verify against the reference cipher.
	ref, err := pasta.NewCipher(par, key)
	if err != nil {
		return err
	}
	want, err := ref.Encrypt(nonce, msg)
	if err != nil {
		return err
	}
	ok := ct.Equal(want)

	fmt.Printf("%s on the 100 MHz RISC-V SoC\n", par)
	fmt.Printf("blocks:            %d (%d elements)\n", stats.Blocks, len(msg))
	fmt.Printf("core cycles:       %d (%d instructions retired)\n", stats.CoreCycles, stats.Instructions)
	fmt.Printf("accelerator cycles:%d (%.1f%% of total)\n", stats.AccelCycles,
		100*float64(stats.AccelCycles)/float64(stats.CoreCycles))
	fmt.Printf("per block:         %d cycles = %.1f µs (paper Table II: 15.9 µs for PASTA-4)\n",
		stats.CyclesPerBlock(), hw.Microseconds(stats.CyclesPerBlock(), hw.RISCVHz))
	fmt.Printf("total:             %.1f µs\n", stats.Microseconds)
	if irq {
		fmt.Printf("WFI sleep:         %d cycles (%.1f%% of runtime clock-gated)\n",
			stats.WaitCycles, 100*float64(stats.WaitCycles)/float64(stats.CoreCycles))
	}
	if ok {
		fmt.Println("verify: SoC ciphertext matches software reference ✓")
	} else {
		return fmt.Errorf("verify FAILED: ciphertext mismatch")
	}
	return nil
}
