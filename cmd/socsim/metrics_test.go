package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestMetricsSnapshotCoversAllLayers: one co-simulated run touches every
// instrumented layer — the software engine (the reference-cipher verify),
// the cycle-accurate accelerator, and the SoC peripheral — and the
// written snapshot must show nonzero activity for each.
func TestMetricsSnapshotCoversAllLayers(t *testing.T) {
	if err := run(2, 9, "pasta", "pasta4", "metrics-test", true, "soc", 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := obs.WriteSnapshot(obs.Default(), path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, c := range []string{
		"pasta.blocks",                            // software engine (reference verify)
		"hw.runs", "hw.cycles", "hw.permutations", // accelerator
		"soc.blocks", "soc.dma_read_words", "soc.dma_write_words", // peripheral
	} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %q = %d after a run, want > 0", c, snap.Counters[c])
		}
	}
	if h, ok := snap.Histograms["hw.run_cycles"]; !ok || h.Count == 0 {
		t.Error("hw.run_cycles histogram empty after a run")
	}
}
