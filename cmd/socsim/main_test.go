package main

import "testing"

func TestRunTwoBlocks(t *testing.T) {
	if err := run(2, 1, "pasta", "pasta4", "test", true, "soc", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run(0, 1, "pasta", "pasta4", "t", false, "soc", 1); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if err := run(1, 1, "pasta", "pasta9", "t", false, "soc", 1); err == nil {
		t.Fatal("bad variant accepted")
	}
}

// TestRunOtherBackends routes the message through the registry instead
// of the direct driver; each run verifies the ciphertext against the
// software reference, so a pass proves the substrates agree.
func TestRunOtherBackends(t *testing.T) {
	for _, name := range []string{"software", "accel"} {
		if err := run(2, 1, "pasta", "pasta4", "test", false, name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run(1, 1, "pasta", "pasta4", "t", true, "software", 1); err == nil {
		t.Fatal("-irq on a non-soc backend accepted")
	}
	if err := run(1, 1, "pasta", "pasta4", "t", false, "fpga", 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestRunCipherFamilies: non-PASTA families take the generic backend
// path — MASTA verifies on the software backend, is refused on the SoC
// (no peripheral), and HERA runs on the accelerator model.
func TestRunCipherFamilies(t *testing.T) {
	if err := run(2, 1, "masta", "pasta4", "test", false, "software", 1); err != nil {
		t.Fatalf("masta on software: %v", err)
	}
	if err := run(1, 1, "masta", "pasta4", "t", false, "soc", 1); err == nil {
		t.Fatal("software-only masta accepted on the soc backend")
	}
	if err := run(2, 1, "hera", "pasta4", "test", false, "accel", 1); err != nil {
		t.Fatalf("hera on accel: %v", err)
	}
}
