package main

import "testing"

func TestRunTwoBlocks(t *testing.T) {
	if err := run(2, 1, "pasta4", "test", true, "soc", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run(0, 1, "pasta4", "t", false, "soc", 1); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if err := run(1, 1, "pasta9", "t", false, "soc", 1); err == nil {
		t.Fatal("bad variant accepted")
	}
}

// TestRunOtherBackends routes the message through the registry instead
// of the direct driver; each run verifies the ciphertext against the
// software reference, so a pass proves the substrates agree.
func TestRunOtherBackends(t *testing.T) {
	for _, name := range []string{"software", "accel"} {
		if err := run(2, 1, "pasta4", "test", false, name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run(1, 1, "pasta4", "t", true, "software", 1); err == nil {
		t.Fatal("-irq on a non-soc backend accepted")
	}
	if err := run(1, 1, "pasta4", "t", false, "fpga", 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
