package main

import "testing"

func TestRunTwoBlocks(t *testing.T) {
	if err := run(2, 1, "pasta4", "test", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidArgs(t *testing.T) {
	if err := run(0, 1, "pasta4", "t", false); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if err := run(1, 1, "pasta9", "t", false); err == nil {
		t.Fatal("bad variant accepted")
	}
}
