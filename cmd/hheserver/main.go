// Command hheserver runs the HHE edge serving tier (internal/server): a
// TCP service speaking the internal/wire protocol that lets many clients
// register PASTA sessions — symmetric key plus the opaque FHE key
// registration blob of the Fig. 1 protocol — and stream encrypt and
// keystream requests against a selectable execution backend.
//
// Usage:
//
//	hheserver [-addr :8765] [-backend software|accel|soc]
//	          [-cipher pasta|hera|masta]
//	          [-debug-addr :8766] [-workers N] [-queue N]
//	          [-batch-window 2ms] [-max-sessions N] [-rate N] [-burst N]
//	          [-request-timeout 10s] [-idle-timeout 2m]
//	          [-write-timeout 10s] [-metrics file|-]
//	          [-tls-cert cert.pem -tls-key key.pem] [-tls-client-ca ca.pem]
//	          [-resume-window 1m]
//	          [-transcipher-workers N] [-transcipher-queue N]
//	          [-transcipher-budget 30s] [-transcipher-cache N]
//	          [-max-eval-keys 256MiB]
//
// Sessions negotiate their cipher family per tenant in SessionOpen;
// -cipher only sets the default family applied to clients that do not
// name one (the capability probes still arbitrate which families the
// selected backend can actually run).
//
// The server also hosts the transciphering tier: sessions opened without
// a symmetric key may upload a BFV eval-key blob (chunked, resumable, up
// to -max-eval-keys) and submit symmetric PASTA ciphertexts, which the
// tier converts to BFV ciphertexts by evaluating the PASTA decryption
// circuit homomorphically. Circuit evaluations run on a dedicated heavy
// pool (-transcipher-workers/-transcipher-queue), segregated from the
// µs-scale keystream path; when the estimated backlog exceeds
// -transcipher-budget, requests are refused with a Retry-After hint.
// -transcipher-cache bounds the per-session Enc(KS) block cache that
// makes repeat offsets cheap.
//
// With -tls-cert/-tls-key the listener speaks TLS, so symmetric keys and
// resumption tokens never cross the wire in plaintext; -tls-client-ca
// additionally demands and verifies client certificates (mTLS).
// -resume-window parks disconnected sessions for the given duration so
// reconnecting clients can resume by token instead of re-uploading key
// blobs; 0 evicts on disconnect.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, queued
// work completes, connections are torn down, and — with -metrics — the
// final observability snapshot is written. The drain also prints an I/O
// summary: requests served, reply frames per vectored write (the outbox
// coalescing ratio), bytes written, and the frame-buffer pool hit rate.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8765", "TCP listen address")
	debugAddr := flag.String("debug-addr", "", "HTTP debug/metrics listen address (empty = off)")
	workers := flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "scheduler queue bound (0 = default 256)")
	batchWindow := flag.Duration("batch-window", 0, "max wait before a partial stream batch flushes (0 = default 2ms)")
	maxSessions := flag.Int("max-sessions", 0, "live session cap (0 = default 1024)")
	rate := flag.Float64("rate", 0, "per-session rate limit in elements/second (0 = off)")
	burst := flag.Float64("burst", 0, "rate-limit burst in elements (0 = one second of rate)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline (0 = default 10s)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection idle deadline (0 = default 2m)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-flush reply write deadline (0 = default 10s)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	tlsCert := flag.String("tls-cert", "", "TLS certificate PEM file (with -tls-key, serves TLS)")
	tlsKey := flag.String("tls-key", "", "TLS private key PEM file")
	tlsClientCA := flag.String("tls-client-ca", "", "client CA PEM file; set to require client certificates (mTLS)")
	resumeWindow := flag.Duration("resume-window", time.Minute, "how long a disconnected session stays resumable by token (0 = evict on disconnect)")
	tcWorkers := flag.Int("transcipher-workers", 0, "transcipher tier heavy worker pool size (0 = default 1)")
	tcQueue := flag.Int("transcipher-queue", 0, "transcipher tier pending-job bound (0 = default 16)")
	tcBudget := flag.Duration("transcipher-budget", 0, "estimated transcipher backlog at which new circuit evaluations are refused with Retry-After (0 = default 30s)")
	tcCache := flag.Int("transcipher-cache", 0, "per-session Enc(KS) block cache capacity (0 = default 32)")
	maxEvalKeys := flag.String("max-eval-keys", "", "cap on a session's assembled eval-key upload, e.g. 256MiB or 64M (empty = default 256MiB)")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameSoftware)
	flag.Parse()

	maxEvalKeysBytes, err := cli.ParseSize(*maxEvalKeys)
	if err != nil {
		cli.Exit("hheserver", err)
	}

	tlsCfg, err := buildTLSConfig(*tlsCert, *tlsKey, *tlsClientCA)
	if err != nil {
		cli.Exit("hheserver", err)
	}
	if err := run(*addr, *debugAddr, *drainTimeout, server.Config{
		Backend:        common.Backend,
		DefaultCipher:  common.Cipher,
		Workers:        *workers,
		AccelUnits:     common.AccelUnits,
		QueueBound:     *queue,
		BatchWindow:    *batchWindow,
		MaxSessions:    *maxSessions,
		RatePerSec:     *rate,
		RateBurst:      *burst,
		RequestTimeout: *requestTimeout,
		IdleTimeout:    *idleTimeout,
		WriteTimeout:   *writeTimeout,
		TLS:            tlsCfg,
		ResumeWindow:   *resumeWindow,

		TranscipherWorkers:     *tcWorkers,
		TranscipherQueue:       *tcQueue,
		TranscipherBudget:      *tcBudget,
		TranscipherCacheBlocks: *tcCache,
		MaxEvalKeysBytes:       maxEvalKeysBytes,
	}); err != nil {
		cli.Exit("hheserver", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("hheserver", err)
	}
}

// buildTLSConfig assembles the server TLS configuration from PEM file
// flags. Both of cert/key or neither must be given; a client CA makes
// client certificates mandatory (mTLS) and requires TLS to be on.
func buildTLSConfig(certFile, keyFile, clientCAFile string) (*tls.Config, error) {
	if certFile == "" && keyFile == "" {
		if clientCAFile != "" {
			return nil, fmt.Errorf("-tls-client-ca requires -tls-cert and -tls-key")
		}
		return nil, nil
	}
	if certFile == "" || keyFile == "" {
		return nil, fmt.Errorf("-tls-cert and -tls-key must be set together")
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("load TLS key pair: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if clientCAFile != "" {
		pem, err := os.ReadFile(clientCAFile)
		if err != nil {
			return nil, fmt.Errorf("read client CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("client CA %s: no certificates found", clientCAFile)
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

func run(addr, debugAddr string, drainTimeout time.Duration, cfg server.Config) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	if debugAddr != "" {
		dbg, err := obs.ServeDebug(debugAddr, obs.Default())
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("hheserver: debug endpoint on http://%s/metrics\n", dbg.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveDone := make(chan error, 1)
	go func() {
		fmt.Printf("hheserver: serving %s sessions on %s\n", srv.Backend(), addr)
		serveDone <- srv.ListenAndServe(addr)
	}()

	select {
	case err := <-serveDone:
		return err
	case sig := <-sigCh:
		fmt.Printf("hheserver: %v, draining (budget %v)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-serveDone; err != nil {
			return err
		}
		fmt.Println("hheserver: drained")
		printIOSummary()
		return nil
	}
}

// printIOSummary reports the serving tier's I/O efficiency at drain:
// how many reply frames each vectored write carried and how often the
// shared frame-buffer pool was hit instead of the allocator.
func printIOSummary() {
	r := obs.Default()
	requests := r.Counter("server.requests.total").Value()
	flushes := r.Counter("server.write.flushes").Value()
	frames := r.Counter("server.write.frames").Value()
	bytes := r.Counter("server.write.bytes").Value()
	get := r.Counter("wire.pool.get").Value()
	miss := r.Counter("wire.pool.miss").Value()
	oversize := r.Counter("wire.pool.oversize").Value()

	coalesce := 0.0
	if flushes > 0 {
		coalesce = float64(frames) / float64(flushes)
	}
	hitRate := 0.0
	if get > 0 {
		hitRate = float64(get-miss-oversize) / float64(get) * 100
	}
	fmt.Printf("hheserver: served %d requests; %d reply frames in %d writes (%.2f frames/write, %d bytes); buffer pool %.1f%% hit\n",
		requests, frames, flushes, coalesce, bytes, hitRate)
}
