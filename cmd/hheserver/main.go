// Command hheserver runs the HHE edge serving tier (internal/server): a
// TCP service speaking the internal/wire protocol that lets many clients
// register PASTA sessions — symmetric key plus the opaque FHE key
// registration blob of the Fig. 1 protocol — and stream encrypt and
// keystream requests against a selectable execution backend.
//
// Usage:
//
//	hheserver [-addr :8765] [-backend software|accel|soc]
//	          [-debug-addr :8766] [-workers N] [-queue N]
//	          [-batch-window 2ms] [-max-sessions N] [-rate N] [-burst N]
//	          [-request-timeout 10s] [-idle-timeout 2m] [-metrics file|-]
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, queued
// work completes, connections are torn down, and — with -metrics — the
// final observability snapshot is written.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8765", "TCP listen address")
	debugAddr := flag.String("debug-addr", "", "HTTP debug/metrics listen address (empty = off)")
	workers := flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "scheduler queue bound (0 = default 256)")
	batchWindow := flag.Duration("batch-window", 0, "max wait before a partial stream batch flushes (0 = default 2ms)")
	maxSessions := flag.Int("max-sessions", 0, "live session cap (0 = default 1024)")
	rate := flag.Float64("rate", 0, "per-session rate limit in elements/second (0 = off)")
	burst := flag.Float64("burst", 0, "rate-limit burst in elements (0 = one second of rate)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline (0 = default 10s)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection idle deadline (0 = default 2m)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	common := cli.RegisterCommon(flag.CommandLine, backend.NameSoftware)
	flag.Parse()

	if err := run(*addr, *debugAddr, *drainTimeout, server.Config{
		Backend:        common.Backend,
		Workers:        *workers,
		QueueBound:     *queue,
		BatchWindow:    *batchWindow,
		MaxSessions:    *maxSessions,
		RatePerSec:     *rate,
		RateBurst:      *burst,
		RequestTimeout: *requestTimeout,
		IdleTimeout:    *idleTimeout,
	}); err != nil {
		cli.Exit("hheserver", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("hheserver", err)
	}
}

func run(addr, debugAddr string, drainTimeout time.Duration, cfg server.Config) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	if debugAddr != "" {
		dbg, err := obs.ServeDebug(debugAddr, obs.Default())
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("hheserver: debug endpoint on http://%s/metrics\n", dbg.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	serveDone := make(chan error, 1)
	go func() {
		fmt.Printf("hheserver: serving %s sessions on %s\n", srv.Backend(), addr)
		serveDone <- srv.ListenAndServe(addr)
	}()

	select {
	case err := <-serveDone:
		return err
	case sig := <-sigCh:
		fmt.Printf("hheserver: %v, draining (budget %v)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-serveDone; err != nil {
			return err
		}
		fmt.Println("hheserver: drained")
		return nil
	}
}
