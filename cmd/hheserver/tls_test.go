package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/server"
	"repro/internal/wire"
)

// writeSelfSignedCert generates a loopback server certificate and writes
// the PEM pair into a test temp dir, so TestTLSSmoke exercises the same
// file-loading path the -tls-cert/-tls-key flags use.
func writeSelfSignedCert(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "hheserver-tls-smoke"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(priv)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("self-signed certificate did not parse back")
	}
	return certFile, keyFile, pool
}

// TestTLSSmoke is the `make tls-smoke` gate: serve over TLS from
// PEM-file flags, round-trip a session, replay a captured frame (must be
// rejected), and resume a parked session by token across a reconnect.
func TestTLSSmoke(t *testing.T) {
	certFile, keyFile, pool := writeSelfSignedCert(t)
	tlsCfg, err := buildTLSConfig(certFile, keyFile, "")
	if err != nil {
		t.Fatalf("buildTLSConfig: %v", err)
	}
	if tlsCfg == nil || len(tlsCfg.Certificates) != 1 {
		t.Fatalf("buildTLSConfig returned %+v, want one certificate", tlsCfg)
	}

	srv, err := server.New(server.Config{TLS: tlsCfg, ResumeWindow: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve returned %v after shutdown", err)
		}
	}()
	clientTLS := &tls.Config{RootCAs: pool}

	// E2E round trip over TLS.
	c, err := server.DialTLS(addr, clientTLS)
	if err != nil {
		t.Fatalf("DialTLS: %v", err)
	}
	key := make([]uint64, 64)
	for i := range key {
		key[i] = uint64(i*2654435761+17) % ff.P17.P()
	}
	sess, err := c.OpenSession(wire.SessionOpen{
		Variant: 4, Width: 17, Nonce: 99, Key: key,
		EvalKey: []byte("fhe-key-blob"),
	})
	if err != nil {
		t.Fatalf("open over TLS: %v", err)
	}
	if len(sess.Token) == 0 {
		t.Fatal("session ack carried no resumption token")
	}
	msg := make(ff.Vec, sess.BlockSize)
	for i := range msg {
		msg[i] = uint64(i*31+5) % sess.Modulus
	}
	ct, err := sess.Encrypt(99, msg)
	if err != nil {
		t.Fatalf("encrypt over TLS: %v", err)
	}
	ksBefore, err := sess.Keystream(99, 0, 1)
	if err != nil {
		t.Fatalf("keystream over TLS: %v", err)
	}
	for i := range msg {
		if (msg[i]+ksBefore[i])%sess.Modulus != ct[i] {
			t.Fatalf("ct[%d] mismatch over TLS", i)
		}
	}

	// A plaintext client must not get through.
	if pc, err := net.Dial("tcp", addr); err == nil {
		pc.SetDeadline(time.Now().Add(5 * time.Second))
		codec := wire.NewCodec(pc)
		open := wire.SessionOpen{ID: 1, Variant: 4, Width: 17, Nonce: 1, Key: key}
		if codec.WriteFrame(wire.TypeSessionOpen, open.Encode()) == nil {
			if _, _, err := codec.ReadFrame(); err == nil {
				t.Error("plaintext client completed a round trip against the TLS listener")
			}
		}
		pc.Close()
	}

	// Replay probe on a raw TLS connection: the identical captured
	// Encrypt frame, resent byte for byte, must be rejected with
	// CodeReplay — not answered with (identical) keystream.
	raw, err := tls.Dial("tcp", addr, clientTLS)
	if err != nil {
		t.Fatalf("raw TLS dial: %v", err)
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(15 * time.Second))
	codec := wire.NewCodec(raw)
	open := wire.SessionOpen{ID: 1, Variant: 4, Width: 17, Nonce: 100, Key: key}
	if err := codec.WriteFrame(wire.TypeSessionOpen, open.Encode()); err != nil {
		t.Fatalf("raw open: %v", err)
	}
	typ, payload, err := codec.ReadFrame()
	if err != nil || typ != wire.TypeSessionAck {
		t.Fatalf("raw open reply: %v %v", typ, err)
	}
	ack, err := wire.DecodeSessionAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendEncryptFrame(nil, ack.Session, 2, 1, 100, msg, ack.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatalf("captured frame send: %v", err)
	}
	if typ, _, err = codec.ReadFrame(); err != nil || typ != wire.TypeData {
		t.Fatalf("first send: got %v, %v, want a data reply", typ, err)
	}
	if _, err := raw.Write(frame); err != nil { // byte-identical replay
		t.Fatalf("replayed frame send: %v", err)
	}
	typ, payload, err = codec.ReadFrame()
	if err != nil || typ != wire.TypeError {
		t.Fatalf("replay: got %v, %v, want an error reply", typ, err)
	}
	if em, err := wire.DecodeErrorMsg(payload); err != nil || em.Code != wire.CodeReplay {
		t.Fatalf("replay rejection: %+v, %v, want CodeReplay", em, err)
	}

	// Resume probe: drop the first connection, reconnect, resume by
	// token, and check the keystream picks up bit-identically.
	token := append([]byte(nil), sess.Token...)
	c.Close()
	c2, err := server.DialTLS(addr, clientTLS)
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	defer c2.Close()
	var resumed *server.Session
	deadline := time.Now().Add(5 * time.Second)
	for {
		resumed, err = c2.ResumeSession(token)
		if err == nil || !errors.Is(err, server.ErrBadResume) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond) // the server may still be parking the session
	}
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	ksAfter, err := resumed.Keystream(99, 0, 1)
	if err != nil {
		t.Fatalf("keystream after resume: %v", err)
	}
	for i := range ksBefore {
		if ksBefore[i] != ksAfter[i] {
			t.Fatalf("keystream diverged across resume at %d", i)
		}
	}
	// A second resume of the now-live session must fail: tokens only
	// re-attach parked sessions.
	if _, err := c2.ResumeSession(token); !errors.Is(err, server.ErrBadResume) {
		t.Fatalf("second resume: got %v, want ErrBadResume", err)
	}
}
