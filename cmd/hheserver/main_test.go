package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestServerSmoke is the `make server-smoke` gate: it brings the serving
// tier up in-process with its debug endpoint, performs a client
// round-trip against the software oracle, provokes an overload
// rejection, scrapes /metrics, and shuts down cleanly.
func TestServerSmoke(t *testing.T) {
	// Tight bounds so the overload probe can actually trip them.
	srv, err := server.New(server.Config{Workers: 1, QueueBound: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	dbg, err := obs.ServeDebug("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	// Round-trip: open a standard PASTA-4 session, encrypt, decrypt by
	// fetching the keystream and unmasking.
	c, err := server.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := make([]uint64, 64)
	for i := range key {
		key[i] = uint64(i*2654435761+17) % ff.P17.P()
	}
	sess, err := c.OpenSession(wire.SessionOpen{
		Variant: 4, Width: 17, Nonce: 99, Key: key,
		EvalKey: []byte("fhe-key-blob"),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	msg := make(ff.Vec, sess.BlockSize)
	for i := range msg {
		msg[i] = uint64(i*31+5) % sess.Modulus
	}
	ct, err := sess.Encrypt(99, msg)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	ks, err := sess.Keystream(99, 0, 1)
	if err != nil {
		t.Fatalf("keystream: %v", err)
	}
	for i := range msg {
		if (msg[i]+ks[i])%sess.Modulus != ct[i] {
			t.Fatalf("ct[%d] = %d, want (msg + ks) %% p = %d", i, ct[i], (msg[i]+ks[i])%sess.Modulus)
		}
	}

	// Overload probe: saturate the 2-slot queue from one connection; at
	// least one request must be rejected (not hung) with a retry hint.
	results := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(first uint64) {
			_, err := sess.Keystream(99, first, 8)
			results <- err
		}(uint64(i) * 8)
	}
	overloaded := false
	for i := 0; i < 16; i++ {
		err := <-results
		if errors.Is(err, server.ErrOverloaded) {
			overloaded = true
			var re *server.RemoteError
			if !errors.As(err, &re) || re.RetryAfter <= 0 {
				t.Errorf("overload rejection without retry hint: %v", err)
			}
		} else if err != nil {
			t.Errorf("unexpected probe error: %v", err)
		}
	}
	if !overloaded {
		t.Error("overload probe produced no rejection")
	}

	// Scrape the debug endpoint and check serving-tier metrics surfaced.
	resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	for _, want := range []string{
		"server.sessions.active", "server.requests.total",
		"server.requests.rejected.overload", "server.dispatch.software",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics snapshot missing %q", want)
		}
	}

	// Clean shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v after shutdown", err)
	}
}
