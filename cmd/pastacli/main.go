// Command pastacli encrypts and decrypts files with the PASTA stream
// cipher. Plaintext bytes are packed two per field element (valid for the
// default 17-bit modulus); ciphertext elements are stored as little-
// endian uint32 words behind a small header.
//
// Usage:
//
//	pastacli -mode enc -key-seed secret -nonce 7 -in plain.bin -out ct.pasta
//	pastacli -mode dec -key-seed secret -in ct.pasta -out plain.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/pasta"
)

const magic = "PSTA"

func main() {
	mode := flag.String("mode", "", "enc or dec")
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	keySeed := flag.String("key-seed", "", "deterministic key seed (demo use; use a real KMS in production)")
	nonce := flag.Uint64("nonce", 0, "public nonce (enc mode; must be unique per key)")
	in := flag.String("in", "", "input file")
	outPath := flag.String("out", "", "output file")
	workers := flag.Int("workers", 0, "keystream worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file after the run (\"-\" = stdout)")
	flag.Parse()

	if err := run(*mode, *variant, *keySeed, *nonce, *in, *outPath, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "pastacli:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := obs.WriteSnapshot(obs.Default(), *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "pastacli:", err)
			os.Exit(1)
		}
	}
}

func run(mode, variant, keySeed string, nonce uint64, in, out string, workers int) error {
	if mode != "enc" && mode != "dec" {
		return fmt.Errorf("-mode must be enc or dec")
	}
	if keySeed == "" || in == "" || out == "" {
		return fmt.Errorf("-key-seed, -in and -out are required")
	}
	var v pasta.Variant
	switch variant {
	case "pasta3":
		v = pasta.Pasta3
	case "pasta4":
		v = pasta.Pasta4
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	par := pasta.MustParams(v, ff.P17)
	cipher, err := pasta.NewCipher(par, pasta.KeyFromSeed(par, keySeed))
	if err != nil {
		return err
	}
	cipher = cipher.WithParallelism(workers)
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}

	if mode == "enc" {
		elems := packBytes(data)
		ct, err := cipher.Encrypt(nonce, elems)
		if err != nil {
			return err
		}
		buf := make([]byte, 0, 4+1+8+8+4*len(ct))
		buf = append(buf, magic...)
		buf = append(buf, byte(v))
		buf = binary.LittleEndian.AppendUint64(buf, nonce)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
		for _, e := range ct {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e))
		}
		return os.WriteFile(out, buf, 0o644)
	}

	// dec
	if len(data) < 21 || string(data[:4]) != magic {
		return fmt.Errorf("%s is not a pastacli ciphertext", in)
	}
	if pasta.Variant(data[4]) != v {
		return fmt.Errorf("ciphertext was made with a different variant; pass matching -variant")
	}
	hdrNonce := binary.LittleEndian.Uint64(data[5:13])
	plainLen := binary.LittleEndian.Uint64(data[13:21])
	body := data[21:]
	if len(body)%4 != 0 {
		return fmt.Errorf("truncated ciphertext body")
	}
	ct := make(ff.Vec, len(body)/4)
	for i := range ct {
		ct[i] = uint64(binary.LittleEndian.Uint32(body[4*i:]))
	}
	elems, err := cipher.Decrypt(hdrNonce, ct)
	if err != nil {
		return err
	}
	plain := unpackBytes(elems)
	if uint64(len(plain)) < plainLen {
		return fmt.Errorf("ciphertext shorter than declared plaintext length")
	}
	return os.WriteFile(out, plain[:plainLen], 0o644)
}

// packBytes packs two plaintext bytes per field element (≤ 65535 < p).
func packBytes(data []byte) ff.Vec {
	out := make(ff.Vec, (len(data)+1)/2)
	for i := range out {
		v := uint64(data[2*i])
		if 2*i+1 < len(data) {
			v |= uint64(data[2*i+1]) << 8
		}
		out[i] = v
	}
	return out
}

func unpackBytes(elems ff.Vec) []byte {
	out := make([]byte, 2*len(elems))
	for i, e := range elems {
		out[2*i] = byte(e)
		out[2*i+1] = byte(e >> 8)
	}
	return out
}
