// Command pastacli encrypts and decrypts files with any registered HHE
// stream cipher (PASTA by default; see -cipher) on any execution
// backend: the software engine (default), the cycle-accurate
// accelerator model, or the RISC-V SoC co-simulation. All substrates
// that can run the chosen cipher produce bit-identical ciphertext — the
// differential suite in internal/backend enforces that. Plaintext bytes
// are packed two per field element (valid for the default 17-bit
// modulus); ciphertext elements are stored as little-endian uint32
// words behind a small header that records the cipher family, so
// decryption can check the file matches the requested cipher.
//
// Usage:
//
//	pastacli -mode enc -key-seed secret -nonce 7 -in plain.bin -out ct.pasta
//	pastacli -mode dec -key-seed secret -in ct.pasta -out plain.bin
//	pastacli -mode enc -backend soc -key-seed secret -nonce 7 -in plain.bin -out ct.pasta
//	pastacli -mode enc -cipher masta -key-seed secret -nonce 7 -in plain.bin -out ct.masta
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/ff"
	"repro/internal/pasta"
)

const magic = "PSTA"

// cipherTag is the variant-byte value that flags an extended header:
// the byte is followed by a length-prefixed cipher family name. Plain
// PASTA files keep the historical one-byte pasta.Variant so old
// ciphertexts stay readable.
const cipherTag = 0xFF

func main() {
	mode := flag.String("mode", "", "enc or dec")
	variant := flag.String("variant", "pasta4", "pasta3 or pasta4")
	keySeed := flag.String("key-seed", "", "deterministic key seed (demo use; use a real KMS in production)")
	nonce := flag.Uint64("nonce", 0, "public nonce (enc mode; must be unique per key)")
	in := flag.String("in", "", "input file")
	outPath := flag.String("out", "", "output file")
	workers := flag.Int("workers", 0, "keystream worker goroutines (0 = GOMAXPROCS, 1 = sequential; software backend only)")
	common := cli.RegisterCommon(flag.CommandLine, "software")
	flag.Parse()

	if err := run(*mode, common.CipherName(), *variant, *keySeed, *nonce, *in, *outPath, *workers, common.Backend, common.AccelUnits); err != nil {
		cli.Exit("pastacli", err)
	}
	if err := common.Finish(); err != nil {
		cli.Exit("pastacli", err)
	}
}

func run(mode, cipherName, variant, keySeed string, nonce uint64, in, out string, workers int, backendName string, accelUnits int) error {
	if mode != "enc" && mode != "dec" {
		return fmt.Errorf("-mode must be enc or dec")
	}
	if in == "" || out == "" {
		return fmt.Errorf("-key-seed, -in and -out are required")
	}
	params, err := cli.CipherParams(cipherName, variant, 17)
	if err != nil {
		return err
	}
	cipher, err := cli.OpenCipher(backendName, cipherName, params, keySeed, workers, accelUnits)
	if err != nil {
		return err
	}
	defer cipher.Close()
	ctx := context.Background()
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}

	if mode == "enc" {
		elems := packBytes(data)
		ct, err := cipher.Encrypt(ctx, nonce, elems)
		if err != nil {
			return err
		}
		buf := make([]byte, 0, 4+1+8+8+4*len(ct))
		buf = append(buf, magic...)
		if cipherName == backend.DefaultCipher {
			v, err := cli.ParseVariant(variant)
			if err != nil {
				return err
			}
			buf = append(buf, byte(v))
		} else {
			buf = append(buf, cipherTag, byte(len(cipherName)))
			buf = append(buf, cipherName...)
		}
		buf = binary.LittleEndian.AppendUint64(buf, nonce)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
		for _, e := range ct {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e))
		}
		return os.WriteFile(out, buf, 0o644)
	}

	// dec
	if len(data) < 21 || string(data[:4]) != magic {
		return fmt.Errorf("%s is not a pastacli ciphertext", in)
	}
	hdr := data[5:]
	if data[4] == cipherTag {
		// Extended header: the cipher family is recorded in the file.
		if len(data) < 6 || len(hdr) < 1+int(data[5]) {
			return fmt.Errorf("truncated cipher-name header in %s", in)
		}
		fileCipher := string(hdr[1 : 1+hdr[0]])
		if fileCipher != cipherName {
			return fmt.Errorf("ciphertext was made with cipher %q; pass -cipher %s", fileCipher, fileCipher)
		}
		hdr = hdr[1+hdr[0]:]
	} else {
		if cipherName != backend.DefaultCipher {
			return fmt.Errorf("ciphertext was made with the pasta family; drop -cipher %s", cipherName)
		}
		v, err := cli.ParseVariant(variant)
		if err != nil {
			return err
		}
		if pasta.Variant(data[4]) != v {
			return fmt.Errorf("ciphertext was made with a different variant; pass matching -variant")
		}
	}
	if len(hdr) < 16 {
		return fmt.Errorf("truncated header in %s", in)
	}
	hdrNonce := binary.LittleEndian.Uint64(hdr[:8])
	plainLen := binary.LittleEndian.Uint64(hdr[8:16])
	body := hdr[16:]
	if len(body)%4 != 0 {
		return fmt.Errorf("truncated ciphertext body")
	}
	ct := make(ff.Vec, len(body)/4)
	for i := range ct {
		ct[i] = uint64(binary.LittleEndian.Uint32(body[4*i:]))
	}
	elems, err := cipher.Decrypt(ctx, hdrNonce, ct)
	if err != nil {
		return err
	}
	plain := unpackBytes(elems)
	if uint64(len(plain)) < plainLen {
		return fmt.Errorf("ciphertext shorter than declared plaintext length")
	}
	return os.WriteFile(out, plain[:plainLen], 0o644)
}

// packBytes packs two plaintext bytes per field element (≤ 65535 < p).
func packBytes(data []byte) ff.Vec {
	out := make(ff.Vec, (len(data)+1)/2)
	for i := range out {
		v := uint64(data[2*i])
		if 2*i+1 < len(data) {
			v |= uint64(data[2*i+1]) << 8
		}
		out[i] = v
	}
	return out
}

func unpackBytes(elems ff.Vec) []byte {
	out := make([]byte, 2*len(elems))
	for i, e := range elems {
		out[2*i] = byte(e)
		out[2*i+1] = byte(e >> 8)
	}
	return out
}
