package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestEncryptDecryptFile(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.bin")
	ct := filepath.Join(dir, "ct.pasta")
	back := filepath.Join(dir, "back.bin")

	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run("enc", "pasta4", "secret", 42, plain, ct, 2); err != nil {
		t.Fatal(err)
	}
	ctData, err := os.ReadFile(ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ctData, data[:64]) {
		t.Fatal("ciphertext contains plaintext")
	}
	if err := run("dec", "pasta4", "secret", 0, ct, back, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip failed")
	}
}

func TestOddLengthFile(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	back := filepath.Join(dir, "b")
	if err := os.WriteFile(plain, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("enc", "pasta3", "k", 1, plain, ct, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta3", "k", 0, ct, back, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("roundtrip = %v", got)
	}
}

func TestWrongKeyGivesGarbage(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	back := filepath.Join(dir, "b")
	data := []byte("attack at dawn, attack at dawn!!")
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("enc", "pasta4", "right-key", 7, plain, ct, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta4", "wrong-key", 0, ct, back, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if bytes.Equal(got, data) {
		t.Fatal("wrong key decrypted correctly")
	}
}

func TestInvalidArgs(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "f")
	_ = os.WriteFile(f, []byte{1}, 0o644)
	cases := []struct{ mode, variant, seed, in string }{
		{"frobnicate", "pasta4", "k", f},
		{"enc", "pasta9", "k", f},
		{"enc", "pasta4", "", f},
		{"enc", "pasta4", "k", filepath.Join(dir, "missing")},
	}
	for _, c := range cases {
		if err := run(c.mode, c.variant, c.seed, 0, c.in, filepath.Join(dir, "out"), 0); err == nil {
			t.Errorf("run(%q, %q, %q) succeeded", c.mode, c.variant, c.seed)
		}
	}
	// Decrypting a non-ciphertext file.
	if err := run("dec", "pasta4", "k", 0, f, filepath.Join(dir, "out"), 0); err == nil {
		t.Error("decrypted a non-ciphertext file")
	}
}

func TestVariantMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	_ = os.WriteFile(plain, []byte("data"), 0o644)
	if err := run("enc", "pasta4", "k", 1, plain, ct, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta3", "k", 0, ct, filepath.Join(dir, "b"), 0); err == nil {
		t.Fatal("variant mismatch not detected")
	}
}

func TestPackUnpack(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(200 + i)
		}
		round := unpackBytes(packBytes(data))
		if !bytes.Equal(round[:n], data) {
			t.Errorf("n=%d: pack/unpack mismatch", n)
		}
	}
}
