package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestEncryptDecryptFile(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.bin")
	ct := filepath.Join(dir, "ct.pasta")
	back := filepath.Join(dir, "back.bin")

	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run("enc", "pasta", "pasta4", "secret", 42, plain, ct, 2, "software", 1); err != nil {
		t.Fatal(err)
	}
	ctData, err := os.ReadFile(ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ctData, data[:64]) {
		t.Fatal("ciphertext contains plaintext")
	}
	if err := run("dec", "pasta", "pasta4", "secret", 0, ct, back, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip failed")
	}
}

func TestOddLengthFile(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	back := filepath.Join(dir, "b")
	if err := os.WriteFile(plain, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("enc", "pasta", "pasta3", "k", 1, plain, ct, 1, "software", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta", "pasta3", "k", 0, ct, back, 4, "software", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("roundtrip = %v", got)
	}
}

func TestWrongKeyGivesGarbage(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	back := filepath.Join(dir, "b")
	data := []byte("attack at dawn, attack at dawn!!")
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("enc", "pasta", "pasta4", "right-key", 7, plain, ct, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta", "pasta4", "wrong-key", 0, ct, back, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if bytes.Equal(got, data) {
		t.Fatal("wrong key decrypted correctly")
	}
}

func TestInvalidArgs(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "f")
	_ = os.WriteFile(f, []byte{1}, 0o644)
	cases := []struct{ mode, variant, seed, in string }{
		{"frobnicate", "pasta4", "k", f},
		{"enc", "pasta9", "k", f},
		{"enc", "pasta4", "", f},
		{"enc", "pasta4", "k", filepath.Join(dir, "missing")},
	}
	for _, c := range cases {
		if err := run(c.mode, "pasta", c.variant, c.seed, 0, c.in, filepath.Join(dir, "out"), 0, "software", 1); err == nil {
			t.Errorf("run(%q, %q, %q) succeeded", c.mode, c.variant, c.seed)
		}
	}
	// Decrypting a non-ciphertext file.
	if err := run("dec", "pasta", "pasta4", "k", 0, f, filepath.Join(dir, "out"), 0, "software", 1); err == nil {
		t.Error("decrypted a non-ciphertext file")
	}
}

func TestVariantMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	_ = os.WriteFile(plain, []byte("data"), 0o644)
	if err := run("enc", "pasta", "pasta4", "k", 1, plain, ct, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "pasta", "pasta3", "k", 0, ct, filepath.Join(dir, "b"), 0, "software", 1); err == nil {
		t.Fatal("variant mismatch not detected")
	}
}

func TestPackUnpack(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(200 + i)
		}
		round := unpackBytes(packBytes(data))
		if !bytes.Equal(round[:n], data) {
			t.Errorf("n=%d: pack/unpack mismatch", n)
		}
	}
}

// TestBackendsProduceIdenticalCiphertext is the CLI half of the
// cross-backend differential suite: the same plaintext, key seed, and
// nonce must yield byte-identical ciphertext files whether the keystream
// came from the software engine, the cycle-accurate accelerator model,
// or the RISC-V SoC co-simulation — and any backend must decrypt any
// other backend's output.
func TestBackendsProduceIdenticalCiphertext(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.bin")
	data := []byte("same cipher, three platforms")
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}

	backends := []string{"software", "accel", "soc"}
	cts := make(map[string][]byte, len(backends))
	for _, name := range backends {
		ct := filepath.Join(dir, "ct."+name)
		if err := run("enc", "pasta", "pasta4", "diff", 11, plain, ct, 0, name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := os.ReadFile(ct)
		if err != nil {
			t.Fatal(err)
		}
		cts[name] = b
	}
	for _, name := range backends[1:] {
		if !bytes.Equal(cts[name], cts["software"]) {
			t.Fatalf("%s ciphertext differs from software", name)
		}
	}

	// Cross-substrate decryption: software-made ciphertext, SoC decrypt.
	back := filepath.Join(dir, "back.bin")
	if err := run("dec", "pasta", "pasta4", "diff", 0, filepath.Join(dir, "ct.software"), back, 0, "soc", 1); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-backend roundtrip failed")
	}
}

// TestCipherFamilyRoundtrip drives the -cipher axis end to end: a
// MASTA-encrypted file records its family in the header, decrypts only
// with the matching -cipher, and a legacy PASTA file refuses a
// mismatched -cipher instead of emitting garbage.
func TestCipherFamilyRoundtrip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "p")
	ct := filepath.Join(dir, "c")
	back := filepath.Join(dir, "b")
	data := []byte("registry-selected keystream")
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run("enc", "masta", "pasta4", "k", 5, plain, ct, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "masta", "pasta4", "k", 0, ct, back, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(back)
	if !bytes.Equal(got, data) {
		t.Fatal("masta roundtrip failed")
	}

	// Family mismatches are detected from the header, both directions.
	if err := run("dec", "pasta", "pasta4", "k", 0, ct, back, 0, "software", 1); err == nil {
		t.Fatal("masta file decrypted as pasta")
	}
	ctP := filepath.Join(dir, "cp")
	if err := run("enc", "pasta", "pasta4", "k", 6, plain, ctP, 0, "software", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("dec", "hera", "pasta4", "k", 0, ctP, back, 0, "software", 1); err == nil {
		t.Fatal("pasta file decrypted as hera")
	}

	// Unknown families surface the registry's typed error.
	if err := run("enc", "rasta", "pasta4", "k", 7, plain, ct, 0, "software", 1); err == nil {
		t.Fatal("unknown cipher accepted")
	}
}
