// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Custom metrics carry the model-derived numbers (cycles, µs, fps) so the
// paper's quantities appear directly in `go test -bench` output next to
// the host-CPU wall times.
package repro_test

import (
	"testing"

	"repro/internal/bfv"
	"repro/internal/eval"
	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/hhe"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
	"repro/internal/rlwe"
	"repro/internal/soc"
)

// BenchmarkTable1Area regenerates the Table I resource counts.
func BenchmarkTable1Area(b *testing.B) {
	var r area.FPGA
	for i := 0; i < b.N; i++ {
		r = area.Resources(area.Config{T: 32, W: 17})
	}
	b.ReportMetric(float64(r.LUT), "LUT")
	b.ReportMetric(float64(r.FF), "FF")
	b.ReportMetric(float64(r.DSP), "DSP")
}

// BenchmarkTable2CyclesPasta3 reproduces the PASTA-3 row of Table II:
// 4,955 cycles ⇒ 66.1 µs FPGA / 4.96 µs ASIC in the paper.
func BenchmarkTable2CyclesPasta3(b *testing.B) { benchAccelCycles(b, pasta.Pasta3) }

// BenchmarkTable2CyclesPasta4 reproduces the PASTA-4 row of Table II:
// 1,591 cycles ⇒ 21.2 µs FPGA / 1.59 µs ASIC in the paper.
func BenchmarkTable2CyclesPasta4(b *testing.B) { benchAccelCycles(b, pasta.Pasta4) }

func benchAccelCycles(b *testing.B, v pasta.Variant) {
	par := pasta.MustParams(v, ff.P17)
	acc, err := hw.NewAccelerator(par, pasta.KeyFromSeed(par, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := acc.KeyStream(uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	avg := float64(cycles) / float64(b.N)
	b.ReportMetric(avg, "cycles/block")
	b.ReportMetric(avg/hw.FPGAHz*1e6, "FPGA-µs")
	b.ReportMetric(avg/hw.ASICHz*1e6, "ASIC-µs")
	b.ReportMetric(avg/float64(par.T), "cycles/elem")
}

// BenchmarkTable2SoCPasta4 reproduces the RISC-V column of Table II
// (paper: 15.9 µs per block at 100 MHz) via the full SoC co-simulation.
func BenchmarkTable2SoCPasta4(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "bench")
	msg := ff.NewVec(2 * par.T)
	var perBlock int64
	for i := 0; i < b.N; i++ {
		_, stats, err := soc.EncryptBlocks(par, key, uint64(i), msg)
		if err != nil {
			b.Fatal(err)
		}
		perBlock = stats.CyclesPerBlock()
	}
	b.ReportMetric(float64(perBlock), "cycles/block")
	b.ReportMetric(hw.Microseconds(perBlock, hw.RISCVHz), "RISCV-µs")
}

// BenchmarkTable2CPUSoftware measures this reproduction's software PASTA
// on the host CPU — the Table II "CPU" datapoint ([9] reports 1,363,339
// Xeon cycles for PASTA-4).
func BenchmarkTable2CPUSoftwarePasta3(b *testing.B) { benchSoftware(b, pasta.Pasta3) }
func BenchmarkTable2CPUSoftwarePasta4(b *testing.B) { benchSoftware(b, pasta.Pasta4) }

func benchSoftware(b *testing.B, v pasta.Variant) {
	par := pasta.MustParams(v, ff.P17)
	c, err := pasta.NewCipher(par, pasta.KeyFromSeed(par, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	ks := ff.NewVec(par.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.KeyStreamInto(ks, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(par.T)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkTable2CPUSoftwareParallel measures the worker-pool keystream
// fan-out over a 64-block message; run with -cpu 1,2,4 to see the
// multi-core scaling of the CTR-independent blocks.
func BenchmarkTable2CPUSoftwareParallel(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	c, err := pasta.NewCipher(par, pasta.KeyFromSeed(par, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	const blocks = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.KeyStreamBlocks(uint64(i), 0, blocks)
	}
	b.ReportMetric(float64(blocks*par.T)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkTable3PKEBaseline runs the prior works' workload: RLWE
// public-key encryption at N = 2^13 with three moduli (the ≈2^19
// multiplications of Sec. I-A), on the lazy-NTT allocation-free path
// (EncryptInto) — the same measurement hhebench's Table III "TW-SW" row
// reports. Compare its per-element cost against
// BenchmarkTable2CyclesPasta4's.
func BenchmarkTable3PKEBaseline(b *testing.B) {
	ctx, pk, pt := pkeBaselineSetup(b)
	ct := ctx.NewCiphertext()
	g := rlwe.NewPRNG("bench-pke", []byte{1})
	ctx.EncryptInto(pk, pt, g, ct) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.EncryptInto(pk, pt, g, ct)
	}
	perEnc := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perEnc*1e6, "µs/enc")
	b.ReportMetric(perEnc*1e6/4096, "µs/elem(2^12)")
}

// BenchmarkBFVEncrypt is the raw BFV public-key encryption number at
// the paper's client parameters; run with -cpu 1,2,4 to see the RNS
// limb fan-out of the default (GOMAXPROCS) context scale.
func BenchmarkBFVEncrypt(b *testing.B) {
	ctx, pk, pt := pkeBaselineSetup(b)
	ct := ctx.NewCiphertext()
	g := rlwe.NewPRNG("bench-bfv", []byte{2})
	ctx.EncryptInto(pk, pt, g, ct)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.EncryptInto(pk, pt, g, ct)
	}
}

// BenchmarkBFVEncryptMany amortizes setup over a 16-ciphertext batch
// (sampling sequential, transforms fanned across cores).
func BenchmarkBFVEncryptMany(b *testing.B) {
	ctx, pk, pt := pkeBaselineSetup(b)
	const batch = 16
	pts := make([]bfv.Plaintext, batch)
	for i := range pts {
		pts[i] = pt
	}
	g := rlwe.NewPRNG("bench-many", []byte{3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.EncryptMany(pk, pts, g)
	}
	perEnc := b.Elapsed().Seconds() / float64(b.N) / batch
	b.ReportMetric(perEnc*1e6, "µs/enc")
}

func pkeBaselineSetup(b *testing.B) (*bfv.Context, *bfv.PublicKey, bfv.Plaintext) {
	b.Helper()
	par, err := bfv.NewParams(8192, 55, 3, 65537)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := bfv.NewContext(par)
	if err != nil {
		b.Fatal(err)
	}
	g := rlwe.NewPRNG("bench-pke", []byte{1})
	_, pk, _ := ctx.KeyGen(g)
	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i) % par.T
	}
	return ctx, pk, pt
}

// BenchmarkFig7Breakdown regenerates the module-wise area shares.
func BenchmarkFig7Breakdown(b *testing.B) {
	var d eval.Fig7Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = eval.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.FPGA[area.UnitMatGen], "MatGen-%")
	b.ReportMetric(d.FPGA[area.UnitDataGen], "SHAKE-%")
}

// BenchmarkFig8Frames regenerates the application benchmark: QQVGA
// frames per second at maximum 5G bandwidth for this work vs RISE
// (paper: TW ≫ RISE ≈ 70 fps).
func BenchmarkFig8Frames(b *testing.B) {
	var rows []eval.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.Fig8(1.59, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TWFPS, "TW-QQVGA-fps")
	b.ReportMetric(rows[0].RISEFPS, "RISE-QQVGA-fps")
	b.ReportMetric(rows[0].Advantage, "advantage")
}

// BenchmarkClaimsSpeedup regenerates the §IV-C speedup claims
// (paper: 857–3,439× cycles, 43–171× wall clock).
func BenchmarkClaimsSpeedup(b *testing.B) {
	var c eval.Claims
	for i := 0; i < b.N; i++ {
		t2, err := eval.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		c = eval.ComputeClaims(t2)
	}
	b.ReportMetric(c.CycleReductionP3, "cycle-reduction-P3")
	b.ReportMetric(c.CycleReductionP4, "cycle-reduction-P4")
	b.ReportMetric(c.SpeedupVsRISE, "speedup-vs-RISE")
}

// BenchmarkHHETranscipher measures the server-side homomorphic PASTA
// decryption on the reduced instance (protocol of Fig. 1; out of the
// paper's hardware scope but part of the system).
func BenchmarkHHETranscipher(b *testing.B) {
	par, err := hhe.NewToyParams(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "bench")
	client, err := hhe.NewClient(par, key, []byte{7})
	if err != nil {
		b.Fatal(err)
	}
	server, err := hhe.NewServer(par, client.Context(), client.EvalKeys())
	if err != nil {
		b.Fatal(err)
	}
	ct, err := client.EncryptBlock(1, 0, ff.Vec{11, 22})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Transcipher(1, 0, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemesHERA regenerates the §VI cross-scheme row: the
// HERA-style datapath needs ≈285 cycles per 16-element block.
func BenchmarkSchemesHERA(b *testing.B) {
	hp := hera.MustParams(5, ff.P17)
	acc, err := hw.NewHeraAccelerator(hp, hera.KeyFromSeed(hp, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := acc.KeyStream(uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/block")
	b.ReportMetric(float64(cycles)/hera.StateSize, "cycles/elem")
}

// BenchmarkBitwidthStudy regenerates the §IV-A bitlength comparison.
func BenchmarkBitwidthStudy(b *testing.B) {
	var rows []eval.BitwidthRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.BitwidthStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Omega == 33 {
			b.ReportMetric(float64(r.SimCycles), "cycles-w33")
		}
		if r.Omega == 17 {
			b.ReportMetric(float64(r.SimCycles), "cycles-w17")
		}
	}
}

// BenchmarkCommunicationExpansion regenerates the Sec. I expansion
// measurement for a 32-element payload.
func BenchmarkCommunicationExpansion(b *testing.B) {
	var rows []eval.ExpansionRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.Expansion(32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].Expansion, "FHE-expansion")
	b.ReportMetric(rows[1].Expansion, "HHE-expansion")
}

// BenchmarkSoCIRQDriver measures the interrupt-driven SoC flow; compare
// active cycles with BenchmarkTable2SoCPasta4 (polling).
func BenchmarkSoCIRQDriver(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "bench")
	msg := ff.NewVec(par.T)
	var active, asleep int64
	for i := 0; i < b.N; i++ {
		_, stats, err := soc.EncryptBlocksIRQ(par, key, uint64(i), msg)
		if err != nil {
			b.Fatal(err)
		}
		active = stats.CoreCycles - stats.WaitCycles
		asleep = stats.WaitCycles
	}
	b.ReportMetric(float64(active), "active-cycles")
	b.ReportMetric(float64(asleep), "wfi-cycles")
}
