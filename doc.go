// Package repro is a software reproduction of "PASTA on Edge:
// Cryptoprocessor for Hybrid Homomorphic Encryption" (DATE 2025): the
// PASTA-3/-4 HHE-enabling stream cipher, a cycle-accurate model of the
// paper's hardware accelerator with a calibrated area model, a RISC-V
// SoC co-simulation, an RLWE/BFV substrate for the FHE-client baseline
// and the server-side homomorphic decryption, and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
// Benchmarks in bench_test.go regenerate the evaluation numbers; the
// binaries under cmd/ print the full tables.
//
// The software cipher is itself tuned as a faithful image of the
// paper's datapath: ff.DotLazy accumulates whole matrix rows in a
// 128-bit-product carry chain and reduces once per row, mirroring the
// cryptoprocessor's multiplier bank → adder tree → single reduction
// unit schedule (Sec. III-C), and the pasta package fans CTR-independent
// blocks out across cores with pooled, allocation-free workspaces. The
// sequential path is kept as a reference oracle and the two are tested
// bit-identical.
package repro
