// Package soc models the paper's RISC-V System-on-Chip (Sec. IV-A ❸): an
// Ibex-like RV32IM core, on-chip RAM, and the PASTA cryptoprocessor
// attached as a loosely coupled peripheral. The peripheral is a slave on
// the core's data bus (control/status registers, key and nonce loading)
// and masters its own port into RAM to fetch plaintext blocks directly.
//
// As in the paper, the single slave bus serializes control: one block
// must complete before the next can be started, so the SoC processes
// data block by block while the core polls the status register. Only the
// peripheral's 2t-element key state is stored on-chip (544 bits for
// PASTA-4/ω=17), which is the design's memory-footprint point.
package soc

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
	"repro/internal/riscv"
)

// Address map.
const (
	RAMBase    = 0x0000_0000
	PeriphBase = 0x4000_0000
)

// Peripheral register offsets.
const (
	RegCtrl    = 0x00 // W: bit0 = start one block
	RegStatus  = 0x04 // R: bit0 = busy, bit1 = done
	RegNonceLo = 0x08
	RegNonceHi = 0x0C
	RegCtrLo   = 0x10
	RegCtrHi   = 0x14
	RegSrc     = 0x18 // plaintext base address in RAM
	RegDst     = 0x1C // ciphertext destination address in RAM
	RegLen     = 0x20 // number of elements in this block (≤ t)
	RegKeyData = 0x24 // W: push next key element (auto-increment)
	RegKeyRst  = 0x28 // W: reset the key write pointer
	RegCycles  = 0x2C // R: accelerator cycles of the last block (low word, saturating)
	RegIRQEn   = 0x30 // W: bit0 enables the completion interrupt line
	RegIRQAck  = 0x34 // W: clear the pending interrupt
	// RegCyclesHi returns bits 32..63 of the last block's cycle count.
	// RegCycles saturates at 0xFFFF_FFFF instead of silently truncating,
	// so a legacy driver reading only the low word sees "at least 2³²−1"
	// rather than a wrapped small number; new drivers read both words.
	RegCyclesHi = 0x38 // R: accelerator cycles of the last block (high word)
)

// Status bits.
const (
	StatusBusy = 1 << 0
	StatusDone = 1 << 1
)

// Peripheral is the memory-mapped PASTA cryptoprocessor.
type Peripheral struct {
	par pasta.Params
	ram *riscv.RAM
	// clock returns the current SoC cycle (the core's cycle counter; the
	// peripheral shares the clock domain at 100 MHz).
	clock func() int64

	key     ff.Vec
	keyFill int
	accel   *hw.Accelerator

	nonce, counter uint64
	src, dst, n    uint32

	busyUntil  int64
	lastCycles int64
	started    bool

	irqEnabled bool
	irqAcked   bool

	// Aggregate statistics.
	BlocksDone  int64
	AccelCycles int64
}

// NewPeripheral builds the peripheral for a parameter set. Elements are
// exchanged with RAM as little-endian 32-bit words, so the SoC supports
// moduli up to 32 bits (the paper's SoC uses ω = 17).
func NewPeripheral(par pasta.Params, ram *riscv.RAM, clock func() int64) (*Peripheral, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if par.Mod.Bits() > 32 {
		return nil, fmt.Errorf("soc: modulus width %d exceeds the 32-bit data bus", par.Mod.Bits())
	}
	return &Peripheral{par: par, ram: ram, clock: clock, key: ff.NewVec(par.StateSize())}, nil
}

// Read implements the slave-port register reads.
func (p *Peripheral) Read(off uint32, size int) (uint32, error) {
	if size != 4 {
		return 0, fmt.Errorf("soc: peripheral requires word access (got %d bytes)", size)
	}
	switch off {
	case RegStatus:
		if p.started && p.clock() < p.busyUntil {
			return StatusBusy, nil
		}
		if p.started {
			return StatusDone, nil
		}
		return 0, nil
	case RegCycles:
		// Saturate instead of truncating: lastCycles is an int64 cycle
		// count and a silent uint32 wrap would report a tiny value for a
		// >2³²-cycle block. 0xFFFF_FFFF tells the driver to read
		// RegCyclesHi for the full count.
		if p.lastCycles > 0xFFFF_FFFF {
			return 0xFFFF_FFFF, nil
		}
		return uint32(p.lastCycles), nil
	case RegCyclesHi:
		return uint32(uint64(p.lastCycles) >> 32), nil
	case RegLen:
		return p.n, nil
	case RegSrc:
		return p.src, nil
	case RegDst:
		return p.dst, nil
	case RegNonceLo:
		return uint32(p.nonce), nil
	case RegNonceHi:
		return uint32(p.nonce >> 32), nil
	case RegCtrLo:
		return uint32(p.counter), nil
	case RegCtrHi:
		return uint32(p.counter >> 32), nil
	default:
		return 0, fmt.Errorf("soc: read of unknown peripheral register %#x", off)
	}
}

// Write implements the slave-port register writes.
func (p *Peripheral) Write(off uint32, v uint32, size int) error {
	if size != 4 {
		return fmt.Errorf("soc: peripheral requires word access (got %d bytes)", size)
	}
	if p.started && p.clock() < p.busyUntil && off != RegStatus {
		return fmt.Errorf("soc: register write at %#x while peripheral busy", off)
	}
	switch off {
	case RegCtrl:
		if v&1 == 1 {
			return p.start()
		}
	case RegNonceLo:
		p.nonce = p.nonce&^uint64(0xFFFFFFFF) | uint64(v)
	case RegNonceHi:
		p.nonce = p.nonce&0xFFFFFFFF | uint64(v)<<32
	case RegCtrLo:
		p.counter = p.counter&^uint64(0xFFFFFFFF) | uint64(v)
	case RegCtrHi:
		p.counter = p.counter&0xFFFFFFFF | uint64(v)<<32
	case RegSrc:
		p.src = v
	case RegDst:
		p.dst = v
	case RegLen:
		p.n = v
	case RegIRQEn:
		p.irqEnabled = v&1 == 1
	case RegIRQAck:
		if p.irqEnabled && p.started && !p.irqAcked && p.clock() >= p.busyUntil {
			mIRQAckCycles.Observe(p.clock() - p.busyUntil)
		}
		p.irqAcked = true
	case RegKeyRst:
		p.keyFill = 0
		p.accel = nil
	case RegKeyData:
		if p.keyFill >= len(p.key) {
			return fmt.Errorf("soc: key overflow (%d elements max)", len(p.key))
		}
		if uint64(v) >= p.par.Mod.P() {
			return fmt.Errorf("soc: key element %d out of range", v)
		}
		p.key[p.keyFill] = uint64(v)
		p.keyFill++
	default:
		return fmt.Errorf("soc: write of unknown peripheral register %#x", off)
	}
	return nil
}

// start kicks off one block: DMA-read the plaintext, run the
// cryptoprocessor model, DMA-write the ciphertext, and hold the busy flag
// for the modeled cycle count.
func (p *Peripheral) start() error {
	if p.keyFill != len(p.key) {
		return fmt.Errorf("soc: start with incomplete key (%d/%d elements)", p.keyFill, len(p.key))
	}
	if p.n == 0 || int(p.n) > p.par.T {
		return fmt.Errorf("soc: block length %d out of range 1..%d", p.n, p.par.T)
	}
	if p.accel == nil {
		acc, err := hw.NewAccelerator(p.par, pasta.Key(p.key))
		if err != nil {
			return err
		}
		p.accel = acc
	}
	// Master-port read of the plaintext block (overlapped with the
	// permutation in hardware; accounted inside the accelerator's
	// XOF-bound runtime).
	msg := ff.NewVec(int(p.n))
	for i := range msg {
		w, err := p.ram.Read(p.src+uint32(4*i), 4)
		if err != nil {
			return fmt.Errorf("soc: DMA read: %w", err)
		}
		if uint64(w) >= p.par.Mod.P() {
			return fmt.Errorf("soc: plaintext element %d out of range", w)
		}
		msg[i] = uint64(w)
	}
	res, err := p.accel.EncryptBlock(p.nonce, p.counter, msg)
	if err != nil {
		return err
	}
	for i, c := range res.Ciphertext {
		if err := p.ram.Write(p.dst+uint32(4*i), uint32(c), 4); err != nil {
			return fmt.Errorf("soc: DMA write: %w", err)
		}
	}
	p.lastCycles = res.Stats.Cycles
	p.busyUntil = p.clock() + res.Stats.Cycles
	p.started = true
	p.irqAcked = false
	p.BlocksDone++
	p.AccelCycles += res.Stats.Cycles
	mBlocks.Inc()
	mDMARead.Add(int64(p.n))
	mDMAWrite.Add(int64(len(res.Ciphertext)))
	return nil
}

// IRQ reports whether the completion interrupt line is asserted: block
// done, interrupts enabled, not yet acknowledged.
func (p *Peripheral) IRQ() bool {
	return p.irqEnabled && p.started && !p.irqAcked && p.clock() >= p.busyUntil
}

// busRouter splits the address space between RAM and the peripheral.
type busRouter struct {
	ram    *riscv.RAM
	periph *Peripheral
}

func (b *busRouter) Read(addr uint32, size int) (uint32, error) {
	if addr >= PeriphBase {
		return b.periph.Read(addr-PeriphBase, size)
	}
	return b.ram.Read(addr, size)
}

func (b *busRouter) Write(addr uint32, v uint32, size int) error {
	if addr >= PeriphBase {
		return b.periph.Write(addr-PeriphBase, v, size)
	}
	return b.ram.Write(addr, v, size)
}

// SoC bundles core, memory and peripheral.
type SoC struct {
	CPU    *riscv.CPU
	RAM    *riscv.RAM
	Periph *Peripheral
}

// New builds the SoC with the given RAM size.
func New(par pasta.Params, ramSize int) (*SoC, error) {
	ram := riscv.NewRAM(RAMBase, ramSize)
	s := &SoC{RAM: ram}
	periph, err := NewPeripheral(par, ram, func() int64 { return s.CPU.Cycle })
	if err != nil {
		return nil, err
	}
	s.Periph = periph
	s.CPU = riscv.New(&busRouter{ram: ram, periph: periph}, RAMBase)
	s.CPU.IRQPending = periph.IRQ
	return s, nil
}

// LoadProgram assembles and loads a driver program at the reset vector.
func (s *SoC) LoadProgram(asm string) error {
	words, err := riscv.Assemble(asm, RAMBase)
	if err != nil {
		return err
	}
	return s.RAM.LoadWords(RAMBase, words)
}

// Run executes until the program halts.
func (s *SoC) Run(maxInsns int64) error {
	return s.CPU.Run(maxInsns)
}

// Microseconds converts the core cycle count to wall-clock time at the
// SoC's 100 MHz target.
func (s *SoC) Microseconds() float64 {
	return hw.Microseconds(s.CPU.Cycle, hw.RISCVHz)
}
