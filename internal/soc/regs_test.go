package soc

import (
	"strings"
	"testing"

	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/pasta"
	"repro/internal/riscv"
)

// newTestPeriph builds a peripheral on a manually advanced clock with the
// key loaded and one block of plaintext {0,1,2,...} staged at srcAddr, so
// register-level behavior can be probed without running driver code on
// the core.
func newTestPeriph(t *testing.T, clock *int64) (*Peripheral, *riscv.RAM, pasta.Params) {
	t.Helper()
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "regs")
	ram := riscv.NewRAM(RAMBase, 1<<20)
	p, err := NewPeripheral(par, ram, func() int64 { return *clock })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(RegKeyRst, 0, 4); err != nil {
		t.Fatal(err)
	}
	for _, v := range key {
		if err := p.Write(RegKeyData, uint32(v), 4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < par.T; i++ {
		if err := ram.Write(srcAddr+uint32(4*i), uint32(i), 4); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range []struct{ off, v uint32 }{
		{RegSrc, srcAddr}, {RegDst, dstAddr}, {RegLen, uint32(par.T)},
	} {
		if err := p.Write(w.off, w.v, 4); err != nil {
			t.Fatal(err)
		}
	}
	return p, ram, par
}

// TestBusyWriteRejected: the slave port must refuse register writes while
// a block is in flight (the single-bus serialization contract), and
// accept them again once the busy window has elapsed.
func TestBusyWriteRejected(t *testing.T) {
	var clock int64
	p, _, _ := newTestPeriph(t, &clock)
	if err := p.Write(RegCtrl, 1, 4); err != nil {
		t.Fatal(err)
	}
	if st, _ := p.Read(RegStatus, 4); st != StatusBusy {
		t.Fatalf("status = %#x right after start, want busy", st)
	}
	for _, off := range []uint32{RegCtrl, RegNonceLo, RegSrc, RegLen, RegKeyData} {
		if err := p.Write(off, 1, 4); err == nil {
			t.Errorf("write to %#x accepted while busy", off)
		} else if !strings.Contains(err.Error(), "busy") {
			t.Errorf("busy rejection at %#x has unhelpful text: %v", off, err)
		}
	}
	clock = p.busyUntil // block completes
	if st, _ := p.Read(RegStatus, 4); st != StatusDone {
		t.Fatalf("status = %#x after busy window, want done", st)
	}
	if err := p.Write(RegNonceLo, 42, 4); err != nil {
		t.Fatalf("write rejected after completion: %v", err)
	}
}

// TestKeyOverflowRejected: pushing more than 2t key elements must error
// instead of clobbering state.
func TestKeyOverflowRejected(t *testing.T) {
	var clock int64
	p, _, par := newTestPeriph(t, &clock)
	err := p.Write(RegKeyData, 1, 4) // element 2t+1
	if err == nil {
		t.Fatal("key element beyond 2t accepted")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow error text: %v", err)
	}
	// A key-pointer reset makes the port writable again.
	if err := p.Write(RegKeyRst, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(RegKeyData, 1, 4); err != nil {
		t.Fatalf("key write after reset: %v", err)
	}
	_ = par
}

// TestOutOfRangePlaintextRejected: a DMA-fetched word ≥ p must abort the
// block with a descriptive error, not wrap into the field.
func TestOutOfRangePlaintextRejected(t *testing.T) {
	var clock int64
	p, ram, par := newTestPeriph(t, &clock)
	if err := ram.Write(srcAddr+4, uint32(par.Mod.P()), 4); err != nil {
		t.Fatal(err)
	}
	err := p.Write(RegCtrl, 1, 4)
	if err == nil {
		t.Fatal("out-of-range plaintext element accepted")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error text: %v", err)
	}
}

// TestRegCyclesSaturates: RegCycles used to truncate the int64 cycle
// count to its low 32 bits, so a >2³²-cycle block read back as a small
// number. It must saturate, with RegCyclesHi carrying the upper word.
func TestRegCyclesSaturates(t *testing.T) {
	var clock int64
	p, _, _ := newTestPeriph(t, &clock)
	p.lastCycles = 5<<32 | 0x1234
	if v, _ := p.Read(RegCycles, 4); v != 0xFFFF_FFFF {
		t.Fatalf("RegCycles = %#x for 64-bit count, want saturated 0xFFFFFFFF", v)
	}
	if v, _ := p.Read(RegCyclesHi, 4); v != 5 {
		t.Fatalf("RegCyclesHi = %d, want 5", v)
	}
	p.lastCycles = 1234
	if v, _ := p.Read(RegCycles, 4); v != 1234 {
		t.Fatalf("RegCycles = %d, want 1234", v)
	}
	if v, _ := p.Read(RegCyclesHi, 4); v != 0 {
		t.Fatalf("RegCyclesHi = %d, want 0", v)
	}
}

// TestRegisterReadback: drivers can read back the address/nonce/counter
// registers they programmed (these reads used to error as "unknown
// register").
func TestRegisterReadback(t *testing.T) {
	var clock int64
	p, _, _ := newTestPeriph(t, &clock)
	writes := []struct{ off, v uint32 }{
		{RegNonceLo, 0xDEAD_BEEF}, {RegNonceHi, 0x0123_4567},
		{RegCtrLo, 77}, {RegCtrHi, 3},
		{RegSrc, 0x1_0000}, {RegDst, 0x4_0000}, {RegLen, 9},
	}
	for _, w := range writes {
		if err := p.Write(w.off, w.v, 4); err != nil {
			t.Fatalf("write %#x: %v", w.off, err)
		}
	}
	for _, w := range writes {
		got, err := p.Read(w.off, 4)
		if err != nil {
			t.Fatalf("readback of %#x: %v", w.off, err)
		}
		if got != w.v {
			t.Fatalf("readback of %#x = %#x, want %#x", w.off, got, w.v)
		}
	}
	if p.nonce != 0x0123_4567_DEAD_BEEF {
		t.Fatalf("assembled nonce = %#x", p.nonce)
	}
}

// TestSoCMetricsNonzero: one block through the peripheral advances the
// soc.* counters and, after an interrupt acknowledge, the IRQ service
// latency histogram.
func TestSoCMetricsNonzero(t *testing.T) {
	reg := obs.Default()
	blocksBefore := reg.Counter("soc.blocks").Value()
	readBefore := reg.Counter("soc.dma_read_words").Value()
	writeBefore := reg.Counter("soc.dma_write_words").Value()
	ackBefore := reg.Snapshot().Histograms["soc.irq_ack_cycles"].Count

	var clock int64
	p, _, par := newTestPeriph(t, &clock)
	if err := p.Write(RegIRQEn, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(RegCtrl, 1, 4); err != nil {
		t.Fatal(err)
	}
	clock = p.busyUntil + 17 // the driver services the IRQ 17 cycles late
	if !p.IRQ() {
		t.Fatal("IRQ line not asserted after completion")
	}
	if err := p.Write(RegIRQAck, 0, 4); err != nil {
		t.Fatal(err)
	}
	if p.IRQ() {
		t.Fatal("IRQ line still asserted after acknowledge")
	}
	if got := reg.Counter("soc.blocks").Value() - blocksBefore; got != 1 {
		t.Fatalf("soc.blocks advanced by %d, want 1", got)
	}
	if got := reg.Counter("soc.dma_read_words").Value() - readBefore; got != int64(par.T) {
		t.Fatalf("soc.dma_read_words advanced by %d, want %d", got, par.T)
	}
	if got := reg.Counter("soc.dma_write_words").Value() - writeBefore; got != int64(par.T) {
		t.Fatalf("soc.dma_write_words advanced by %d, want %d", got, par.T)
	}
	ack := reg.Snapshot().Histograms["soc.irq_ack_cycles"]
	if ack.Count-ackBefore != 1 {
		t.Fatalf("soc.irq_ack_cycles count advanced by %d, want 1", ack.Count-ackBefore)
	}
	if ack.Max < 17 {
		t.Fatalf("irq ack latency max = %d, want ≥ 17", ack.Max)
	}
}
