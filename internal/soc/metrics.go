package soc

import "repro/internal/obs"

// Metric handles resolved once at init so the peripheral's bus-cycle
// paths never touch the registry lock.
var (
	// mBlocks counts blocks the peripheral has encrypted.
	mBlocks = obs.Default().Counter("soc.blocks")
	// mDMARead / mDMAWrite count 32-bit words moved over the master port.
	mDMARead  = obs.Default().Counter("soc.dma_read_words")
	mDMAWrite = obs.Default().Counter("soc.dma_write_words")
	// mIRQAckCycles records the SoC cycles from IRQ assertion (the block's
	// completion at busyUntil) to the driver's RegIRQAck write — the
	// interrupt service latency seen by the peripheral.
	mIRQAckCycles = obs.Default().Histogram("soc.irq_ack_cycles")
)
