package soc

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

func pasta4(t *testing.T) (pasta.Params, pasta.Key) {
	t.Helper()
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	return par, pasta.KeyFromSeed(par, "soc-test")
}

// TestSoCEncryptionMatchesReference: the full SoC round trip (driver
// program, key load over the bus, DMA, polling) must produce exactly the
// reference PASTA ciphertext.
func TestSoCEncryptionMatchesReference(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(3 * par.T) // three full blocks
	for i := range msg {
		msg[i] = uint64(i*7919) % par.Mod.P()
	}
	const nonce = 77
	ct, stats, err := EncryptBlocks(par, key, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := pasta.NewCipher(par, key)
	want, err := ref.Encrypt(nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Equal(want) {
		t.Fatal("SoC ciphertext differs from reference")
	}
	if stats.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", stats.Blocks)
	}
}

func TestSoCPartialLastBlock(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(par.T + 5)
	for i := range msg {
		msg[i] = uint64(i + 1)
	}
	ct, stats, err := EncryptBlocks(par, key, 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := pasta.NewCipher(par, key)
	want, _ := ref.Encrypt(3, msg)
	if !ct.Equal(want) {
		t.Fatal("partial-block ciphertext mismatch")
	}
	if stats.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2", stats.Blocks)
	}
}

// TestTableIIRISCVLatency: the paper reports 15.9 µs per PASTA-4 block on
// the 100 MHz SoC (≈1,591 accelerator cycles; the core adds polling
// overhead). Our co-simulation must land in that neighbourhood.
func TestTableIIRISCVLatency(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(8 * par.T)
	for i := range msg {
		msg[i] = uint64(i) % par.Mod.P()
	}
	_, stats, err := EncryptBlocks(par, key, 5, msg)
	if err != nil {
		t.Fatal(err)
	}
	perBlock := stats.CyclesPerBlock()
	// Paper: 1,591 cc/block; our accel averages ≈1,630 plus driver
	// overhead and the amortized key load.
	if perBlock < 1500 || perBlock > 2100 {
		t.Fatalf("cycles/block = %d, want ≈1,600–1,800 (paper: 1,591)", perBlock)
	}
	usPerBlock := hw.Microseconds(perBlock, hw.RISCVHz)
	if usPerBlock < 15 || usPerBlock > 21 {
		t.Fatalf("µs/block = %.1f, want ≈16–18 (paper: 15.9)", usPerBlock)
	}
	t.Logf("RISC-V SoC: %d cycles/block = %.1f µs at 100 MHz (paper: 15.9 µs)", perBlock, usPerBlock)
}

// TestBlockSerialization: the single-bus design means total time is at
// least the sum of per-block accelerator times (no overlap).
func TestBlockSerialization(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(4 * par.T)
	_, stats, err := EncryptBlocks(par, key, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoreCycles < stats.AccelCycles {
		t.Fatalf("core cycles %d < accelerator cycles %d; blocks overlapped", stats.CoreCycles, stats.AccelCycles)
	}
	// Overhead should be modest: the accelerator dominates.
	if float64(stats.CoreCycles) > 1.25*float64(stats.AccelCycles) {
		t.Fatalf("driver overhead too large: core %d vs accel %d", stats.CoreCycles, stats.AccelCycles)
	}
}

func TestPeripheralValidation(t *testing.T) {
	par, _ := pasta4(t)
	s, err := New(par, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Start without key.
	if err := s.Periph.Write(RegLen, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Periph.Write(RegCtrl, 1, 4); err == nil {
		t.Fatal("start with incomplete key accepted")
	}
	// Key element out of range.
	if err := s.Periph.Write(RegKeyData, uint32(par.Mod.P()), 4); err == nil {
		t.Fatal("out-of-range key element accepted")
	}
	// Unknown register.
	if err := s.Periph.Write(0xFFC, 1, 4); err == nil {
		t.Fatal("unknown register write accepted")
	}
	if _, err := s.Periph.Read(0xFFC, 4); err == nil {
		t.Fatal("unknown register read accepted")
	}
	// Sub-word access.
	if _, err := s.Periph.Read(RegStatus, 2); err == nil {
		t.Fatal("halfword register access accepted")
	}
}

func TestPeripheralRejectsWideModulus(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P54)
	if _, err := New(par, 1<<20); err == nil {
		t.Fatal("54-bit modulus accepted on 32-bit bus")
	}
}

func TestCyclesRegisterReadable(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(par.T)
	_, stats, err := EncryptBlocks(par, key, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AccelCycles < 1400 {
		t.Fatalf("accelerator cycles = %d, implausibly low", stats.AccelCycles)
	}
}

func TestEmptyMessageRejected(t *testing.T) {
	par, key := pasta4(t)
	if _, _, err := EncryptBlocks(par, key, 1, nil); err == nil {
		t.Fatal("empty message accepted")
	}
}

func BenchmarkSoCBlock(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "bench")
	msg := ff.NewVec(par.T)
	for i := range msg {
		msg[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EncryptBlocks(par, key, uint64(i), msg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSelfMeasuredCycles: the driver's own rdcycle measurements must
// bracket the accelerator time and match the co-simulation totals.
func TestSelfMeasuredCycles(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(3 * par.T)
	_, stats, err := EncryptBlocks(par, key, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.SelfMeasured) != 3 {
		t.Fatalf("self-measured %d blocks, want 3", len(stats.SelfMeasured))
	}
	// Per-block accelerator time varies with the counter (rejection
	// sampling), so compare against the average with a rejection-sized
	// tolerance, and require the *sum* to bracket the total accel time.
	perBlockAccel := stats.AccelCycles / stats.Blocks
	var sum int64
	for i, m := range stats.SelfMeasured {
		if m < perBlockAccel-150 || m > perBlockAccel+250 {
			t.Errorf("block %d: self-measured %d far from accelerator average %d", i, m, perBlockAccel)
		}
		sum += m
	}
	if sum < stats.AccelCycles {
		t.Errorf("self-measured total %d below accelerator total %d", sum, stats.AccelCycles)
	}
}

// TestIRQDriverMatchesPolling: the interrupt-driven driver produces the
// identical ciphertext at essentially the same latency, but the core
// spends the accelerator time asleep in WFI instead of spinning.
func TestIRQDriverMatchesPolling(t *testing.T) {
	par, key := pasta4(t)
	msg := ff.NewVec(3 * par.T)
	for i := range msg {
		msg[i] = uint64(i * 3)
	}
	ctPoll, statsPoll, err := EncryptBlocks(par, key, 6, msg)
	if err != nil {
		t.Fatal(err)
	}
	ctIRQ, statsIRQ, err := EncryptBlocksIRQ(par, key, 6, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !ctPoll.Equal(ctIRQ) {
		t.Fatal("IRQ driver ciphertext differs from polling driver")
	}
	if statsPoll.WaitCycles != 0 {
		t.Errorf("polling driver reports %d wait cycles", statsPoll.WaitCycles)
	}
	if statsIRQ.WaitCycles < statsIRQ.AccelCycles*8/10 {
		t.Errorf("IRQ driver waited only %d of %d accelerator cycles", statsIRQ.WaitCycles, statsIRQ.AccelCycles)
	}
	// Active (clock-gateable) cycles: polling burns the whole accelerator
	// runtime spinning; the IRQ driver's active share collapses.
	activePoll := statsPoll.CoreCycles
	activeIRQ := statsIRQ.CoreCycles - statsIRQ.WaitCycles
	if activeIRQ*5 > activePoll {
		t.Errorf("IRQ active cycles %d not ≪ polling %d", activeIRQ, activePoll)
	}
	// The IRQ driver retires far fewer instructions.
	if statsIRQ.Instructions*3 > statsPoll.Instructions {
		t.Errorf("IRQ instructions %d not ≪ polling %d", statsIRQ.Instructions, statsPoll.Instructions)
	}
	// End-to-end latency stays within a few percent.
	ratio := float64(statsIRQ.CoreCycles) / float64(statsPoll.CoreCycles)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("IRQ/polling latency ratio = %.3f, want ≈1", ratio)
	}
	t.Logf("polling: %d active cycles, %d instrs | IRQ: %d active cycles (%d asleep), %d instrs",
		activePoll, statsPoll.Instructions, activeIRQ, statsIRQ.WaitCycles, statsIRQ.Instructions)
}
