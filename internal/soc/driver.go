package soc

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// Default memory layout for the generated driver.
const (
	keyAddr   = 0x8000  // key elements, one 32-bit word each
	srcAddr   = 0x10000 // plaintext
	dstAddr   = 0x40000 // ciphertext
	statsAddr = 0x70000 // per-block cycle counts measured by rdcycle
)

// DriverProgram generates the assembly a bare-metal driver runs to
// encrypt nBlocks blocks: load the key into the peripheral, program the
// nonce, then per block set counter/addresses/length, start, and poll the
// status register until done — the serialized block-by-block flow the
// paper describes for the single slave bus.
func DriverProgram(par pasta.Params, nBlocks int, lastLen int, nonce uint64) string {
	return driverProgram(par, nBlocks, lastLen, nonce, 0, false)
}

// DriverProgramIRQ generates the interrupt-driven variant: instead of
// spinning on the status register, the core enables the peripheral's
// completion interrupt and sleeps in WFI until the line wakes it (the
// resume-after-WFI idiom; interrupts stay globally masked). The core
// idles in a clock-gateable state for the whole accelerator runtime.
func DriverProgramIRQ(par pasta.Params, nBlocks int, lastLen int, nonce uint64) string {
	return driverProgram(par, nBlocks, lastLen, nonce, 0, true)
}

// driverProgram emits the driver. firstCtr is the block counter of the
// first block; the loop programs CTR_LO = firstCtr + i for block i (the
// backend layer uses this to ask the SoC for an arbitrary keystream
// block). CTR_HI is fixed to the upper word of firstCtr: a run must not
// cross a 2^32-block counter boundary, which at t elements per block is
// far beyond the addressable RAM anyway.
func driverProgram(par pasta.Params, nBlocks int, lastLen int, nonce uint64, firstCtr uint64, useIRQ bool) string {
	t := par.T
	wait := fmt.Sprintf(`poll:
	lw   t0, %d(s0)         # STATUS
	andi t0, t0, %d
	bnez t0, poll           # spin while busy`, RegStatus, StatusBusy)
	irqSetup := ""
	if useIRQ {
		irqSetup = fmt.Sprintf(`	li   t0, 1
	sw   t0, %d(s0)         # IRQ_EN
	li   t0, 0x800
	csrw mie, t0            # MEIE: the line can wake WFI (mstatus.MIE stays 0)`, RegIRQEn)
		wait = fmt.Sprintf(`	wfi                     # sleep until the completion interrupt
	sw   zero, %d(s0)       # IRQ_ACK`, RegIRQAck)
	}
	return fmt.Sprintf(`
	# PASTA SoC driver: encrypt %[1]d blocks of up to %[2]d elements.
	li   s0, %[3]d          # peripheral base
%[25]s
	# --- one-time key load ---
	sw   zero, %[4]d(s0)    # KEY_RST
	li   t0, %[5]d          # key base in RAM
	li   t1, %[6]d          # 2t elements
keyload:
	lw   t2, 0(t0)
	sw   t2, %[7]d(s0)      # KEY_DATA
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, keyload
	# --- nonce ---
	li   t0, %[8]d
	sw   t0, %[9]d(s0)      # NONCE_LO
	li   t0, %[10]d
	sw   t0, %[11]d(s0)     # NONCE_HI
	li   t0, %[27]d
	sw   t0, %[12]d(s0)     # CTR_HI
	# --- block loop ---
	li   s1, 0              # block index
	li   s2, %[1]d          # block count
	li   s3, %[13]d         # src pointer
	li   s4, %[14]d         # dst pointer
	li   t3, %[28]d         # first block counter
blockloop:
	add  t4, t3, s1
	sw   t4, %[15]d(s0)     # CTR_LO
	sw   s3, %[16]d(s0)     # SRC
	sw   s4, %[17]d(s0)     # DST
	li   t0, %[2]d
	addi t1, s1, 1
	blt  t1, s2, fulllen    # last block may be short
	li   t0, %[18]d
fulllen:
	sw   t0, %[19]d(s0)     # LEN
	rdcycle s5              # self-measure the block (Table II, RISC-V column)
	li   t0, 1
	sw   t0, %[20]d(s0)     # CTRL: start
%[26]s
	rdcycle s6
	sub  s6, s6, s5
	slli t0, s1, 2
	li   t1, %[24]d         # stats base
	add  t0, t0, t1
	sw   s6, 0(t0)
	addi s3, s3, %[23]d
	addi s4, s4, %[23]d
	addi s1, s1, 1
	blt  s1, s2, blockloop
	li   a0, 0
	ecall
`,
		nBlocks, t, PeriphBase,
		RegKeyRst, keyAddr, par.StateSize(), RegKeyData,
		uint32(nonce), RegNonceLo, uint32(nonce>>32), RegNonceHi, RegCtrHi,
		srcAddr, dstAddr,
		RegCtrLo, RegSrc, RegDst,
		lastLen, RegLen, RegCtrl, RegStatus, StatusBusy,
		4*t, statsAddr, irqSetup, wait,
		uint32(firstCtr>>32), uint32(firstCtr))
}

// RunStats summarizes an EncryptBlocks run.
type RunStats struct {
	CoreCycles   int64   // total RISC-V cycles including driver overhead
	AccelCycles  int64   // cycles spent inside the cryptoprocessor
	Instructions int64   // retired instructions
	Blocks       int64   // blocks encrypted
	Microseconds float64 // wall-clock at 100 MHz

	// SelfMeasured holds the per-block cycle counts the driver itself
	// recorded with rdcycle (start-to-done, including polling).
	SelfMeasured []int64

	// WaitCycles counts core cycles spent sleeping in WFI (clock-gated;
	// nonzero only for the interrupt-driven driver).
	WaitCycles int64
}

// CyclesPerBlock returns the average end-to-end cycles per block.
func (r RunStats) CyclesPerBlock() int64 {
	if r.Blocks == 0 {
		return 0
	}
	return r.CoreCycles / r.Blocks
}

// EncryptBlocks places key and message in RAM, runs the generated driver
// on the core, and returns the ciphertext read back from RAM with the
// co-simulated cycle statistics — the experiment behind the RISC-V
// column of Table II.
func EncryptBlocks(par pasta.Params, key pasta.Key, nonce uint64, msg ff.Vec) (ff.Vec, RunStats, error) {
	return encryptBlocks(par, key, nonce, 0, msg, false)
}

// EncryptBlocksFrom is EncryptBlocks with the block counter of the first
// block set to firstCtr instead of 0. The backend layer uses it to pull
// the keystream for an arbitrary block range out of the SoC (encrypting
// zeros: ct = 0 + KS), keeping the co-simulated substrate addressable
// with the same (nonce, block) interface as the other two.
func EncryptBlocksFrom(par pasta.Params, key pasta.Key, nonce, firstCtr uint64, msg ff.Vec) (ff.Vec, RunStats, error) {
	return encryptBlocks(par, key, nonce, firstCtr, msg, false)
}

// EncryptBlocksIRQ runs the interrupt-driven driver: the core sleeps in
// WFI while the peripheral works instead of spinning on the status
// register. Same ciphertext and end-to-end latency; the active (non-
// gated) core cycles drop to the driver overhead alone.
func EncryptBlocksIRQ(par pasta.Params, key pasta.Key, nonce uint64, msg ff.Vec) (ff.Vec, RunStats, error) {
	return encryptBlocks(par, key, nonce, 0, msg, true)
}

func encryptBlocks(par pasta.Params, key pasta.Key, nonce, firstCtr uint64, msg ff.Vec, useIRQ bool) (ff.Vec, RunStats, error) {
	if len(msg) == 0 {
		return nil, RunStats{}, fmt.Errorf("soc: empty message")
	}
	t := par.T
	nBlocks := (len(msg) + t - 1) / t
	lastLen := len(msg) - (nBlocks-1)*t

	if dstAddr+4*nBlocks*t > statsAddr {
		return nil, RunStats{}, fmt.Errorf("soc: %d blocks overflow the ciphertext region", nBlocks)
	}
	ramSize := statsAddr + 4*nBlocks + 4096
	s, err := New(par, ramSize)
	if err != nil {
		return nil, RunStats{}, err
	}
	for i, v := range key {
		if err := s.RAM.Write(keyAddr+uint32(4*i), uint32(v), 4); err != nil {
			return nil, RunStats{}, err
		}
	}
	for i, v := range msg {
		if err := s.RAM.Write(srcAddr+uint32(4*i), uint32(v), 4); err != nil {
			return nil, RunStats{}, err
		}
	}
	if err := s.LoadProgram(driverProgram(par, nBlocks, lastLen, nonce, firstCtr, useIRQ)); err != nil {
		return nil, RunStats{}, err
	}
	if err := s.Run(200_000_000); err != nil {
		return nil, RunStats{}, err
	}
	out := ff.NewVec(len(msg))
	for i := range out {
		w, err := s.RAM.Read(dstAddr+uint32(4*i), 4)
		if err != nil {
			return nil, RunStats{}, err
		}
		out[i] = uint64(w)
	}
	stats := RunStats{
		CoreCycles:   s.CPU.Cycle,
		AccelCycles:  s.Periph.AccelCycles,
		Instructions: s.CPU.Insns,
		Blocks:       s.Periph.BlocksDone,
		Microseconds: s.Microseconds(),
		WaitCycles:   s.CPU.WaitCycles,
	}
	for b := 0; b < nBlocks; b++ {
		w, err := s.RAM.Read(statsAddr+uint32(4*b), 4)
		if err != nil {
			return nil, RunStats{}, err
		}
		stats.SelfMeasured = append(stats.SelfMeasured, int64(w))
	}
	return out, stats, nil
}
