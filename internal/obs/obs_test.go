package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("x.width")
	g.Set(8)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.lat")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	// Base-2 buckets: p50 falls in [32,64) → reported as 63; p99 in
	// [64,128) → clamped to the observed max 100.
	if s.P50 != 63 {
		t.Fatalf("p50 = %d, want 63", s.P50)
	}
	if s.P90 != 100 || s.P99 != 100 {
		t.Fatalf("p90/p99 = %d/%d, want 100/100 (clamped to max)", s.P90, s.P99)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket counts sum to %d, want 100", total)
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.ext")
	h.Observe(-5)
	h.Observe(0)
	h.Observe(math.MaxInt64)
	s := h.snapshot()
	if s.Count != 3 || s.Min != -5 || s.Max != math.MaxInt64 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Buckets[0].Le != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("non-positive bucket = %+v", s.Buckets[0])
	}
	// Empty histograms stay all-zero.
	if s := r.Histogram("x.empty").snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestConcurrentObservers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	s := h.snapshot()
	if s.Count != workers*perWorker || s.Min != 0 || s.Max != workers*perWorker-1 {
		t.Fatalf("histogram snapshot = %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.blocks").Add(7)
	r.Gauge("a.workers").Set(4)
	r.Histogram("a.ns").Observe(1500)
	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.blocks"] != 7 || back.Gauges["a.workers"] != 4 {
		t.Fatalf("round-trip lost values: %+v", back)
	}
	hs := back.Histograms["a.ns"]
	if hs.Count != 1 || hs.Min != 1500 || hs.Max != 1500 {
		t.Fatalf("histogram round-trip: %+v", hs)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	c.Add(5)
	g.Set(5)
	h.Observe(5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset left values behind")
	}
	h.Observe(9) // handles stay usable, min/max re-initialized
	if s := h.snapshot(); s.Min != 9 || s.Max != 9 {
		t.Fatalf("post-reset snapshot = %+v", s)
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("w.count").Inc()
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteSnapshot(r, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["w.count"] != 1 {
		t.Fatalf("snapshot file: %+v", s)
	}
	if err := WriteSnapshot(r, filepath.Join(path, "nope", "metrics.json")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h.count").Add(3)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["h.count"] != 3 {
		t.Fatalf("handler snapshot: %+v", s)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("d.count").Add(9)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		err = json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if s.Counters["d.count"] != 9 {
			t.Fatalf("%s snapshot: %+v", path, s)
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2},
		{4, 3}, {1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if bucketUpper(0) != 0 || bucketUpper(10) != 1023 ||
		bucketUpper(63) != math.MaxInt64 || bucketUpper(64) != math.MaxInt64 {
		t.Errorf("bucketUpper bounds wrong: %d %d %d %d",
			bucketUpper(0), bucketUpper(10), bucketUpper(63), bucketUpper(64))
	}
}
