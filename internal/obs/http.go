package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an HTTP handler that serves the registry's snapshot as
// indented JSON — the expvar-style debug surface.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// DebugServer is a running debug endpoint started by ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts a background HTTP server on addr exposing the
// registry snapshot at /metrics (with /debug/vars as an expvar-style
// alias) and the standard net/http/pprof profiling handlers under
// /debug/pprof/. It returns once the listener is bound; serving happens
// on a background goroutine until Close.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}
