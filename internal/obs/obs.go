// Package obs is the repository's zero-dependency observability layer:
// atomic counters, gauges, and bounded latency histograms collected in a
// registry whose Snapshot serializes to JSON.
//
// Design constraints, in order:
//
//   - Hot-path safety. Every instrument is a fixed-size struct updated
//     with sync/atomic operations only — no locks, no maps, and no heap
//     allocations on the observation path, so the allocation-free
//     keystream and BFV encryption pipelines stay at 0 allocs/op with
//     instrumentation enabled (asserted by tests).
//   - Bounded memory. Histograms use 65 fixed base-2 exponential buckets
//     (bucket i counts values whose bit length is i), so a histogram's
//     footprint is constant regardless of how many values it absorbs.
//   - Zero dependencies. Only the standard library; snapshots are plain
//     structs that encoding/json renders with deterministic (sorted) keys.
//
// Instrumented packages resolve their metric handles once at init time
// from the Default registry (name lookup takes a lock; updates do not) and
// the cmd tools expose the snapshot via a -metrics flag and an optional
// expvar-style debug HTTP endpoint (see http.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any non-negative amount; negative deltas are the
// caller's bug, not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. a fan-out width).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket 0 holds values ≤ 0 and
// bucket i (1 ≤ i ≤ 64) holds values v with bits.Len64(v) == i, i.e.
// v ∈ [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a bounded base-2 exponential histogram of int64 values
// (latencies in nanoseconds, cycle counts, …). Observations are three
// atomic adds plus two bounded CAS loops for min/max; memory use is fixed.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64 by the registry
	max     atomic.Int64 // initialized to MinInt64 by the registry
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 63:
		return math.MaxInt64
	default:
		return int64(1)<<i - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// were ≤ Le (and above the previous bucket's bound).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serialized state of a histogram. Quantiles are
// bucket-resolution estimates (the upper bound of the bucket containing
// the quantile, clamped to the observed min/max).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: counts[i]})
		}
	}
	quantile := func(q float64) int64 {
		target := int64(math.Ceil(q * float64(s.Count)))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= target {
				v := bucketUpper(i)
				if v > s.Max {
					v = s.Max
				}
				if v < s.Min {
					v = s.Min
				}
				return v
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return s
}

// Snapshot is a point-in-time copy of every metric in a registry. Field
// maps serialize with sorted keys (encoding/json), so output is
// deterministic for a fixed metric state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Registry is a named collection of metrics. Lookup (Counter, Gauge,
// Histogram) takes a lock and is meant for init-time handle resolution;
// the returned handles are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// new.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric in place (handles stay valid). Intended for
// tests and per-run CLI snapshots, not for concurrent use with observers.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
	}
}

// def is the process-wide default registry all instrumented packages use.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// WriteSnapshot writes the registry's snapshot as indented JSON to path;
// "-" selects stdout. This is the implementation behind the cmd tools'
// -metrics flag.
func WriteSnapshot(r *Registry, path string) error {
	if path == "-" {
		return r.Snapshot().WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
