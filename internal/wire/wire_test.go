package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/ff"
)

// roundTrip frames a payload through an in-memory pipe and returns what
// the reader sees.
func roundTrip(t *testing.T, typ Type, payload []byte) (Type, []byte) {
	t.Helper()
	var buf bytes.Buffer
	c := &Codec{r: &buf, w: &buf}
	if err := c.WriteFrame(typ, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	gotT, gotP, err := c.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return gotT, gotP
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello, edge")
	gotT, gotP := roundTrip(t, TypeBlob, payload)
	if gotT != TypeBlob || !bytes.Equal(gotP, payload) {
		t.Fatalf("round trip mismatch: type %v payload %q", gotT, gotP)
	}
	// Empty payloads are legal.
	if gotT, gotP = roundTrip(t, TypeSessionClose, nil); gotT != TypeSessionClose || len(gotP) != 0 {
		t.Fatalf("empty round trip mismatch: type %v payload %q", gotT, gotP)
	}
}

func TestFrameHeaderValidation(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		c := &Codec{r: &buf, w: &buf}
		if err := c.WriteFrame(TypeBlob, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name    string
		mutate  func([]byte)
		wantErr error
	}{
		{"bad magic", func(b []byte) { b[0] ^= 0xff }, ErrBadMagic},
		{"bad version", func(b []byte) { b[4] = Version + 1 }, ErrBadVersion},
		{"zero type", func(b []byte) { b[5] = 0 }, ErrBadType},
		{"unknown type", func(b []byte) { b[5] = uint8(maxType) + 1 }, ErrBadType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := append([]byte(nil), good...)
			tc.mutate(frame)
			c := &Codec{r: bytes.NewReader(frame)}
			if _, _, err := c.ReadFrame(); !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestFrameTooLarge(t *testing.T) {
	var frame [HeaderSize]byte
	binary.LittleEndian.PutUint32(frame[0:], Magic)
	frame[4] = Version
	frame[5] = uint8(TypeBlob)
	binary.LittleEndian.PutUint32(frame[6:], 1<<30)
	c := &Codec{r: bytes.NewReader(frame[:])}
	if _, _, err := c.ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}

	// Writer side enforces the same bound.
	cw := &Codec{w: io.Discard, MaxPayload: 8}
	if err := cw.WriteFrame(TypeBlob, make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("write got %v, want ErrTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	c := &Codec{r: &buf, w: &buf}
	if err := c.WriteFrame(TypeBlob, []byte("full payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize + 3, len(full) - 1} {
		rc := &Codec{r: bytes.NewReader(full[:cut])}
		if _, _, err := rc.ReadFrame(); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
	// A clean EOF between frames is io.EOF exactly.
	rc := &Codec{r: bytes.NewReader(nil)}
	if _, _, err := rc.ReadFrame(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	key := []uint64{1, 2, 3, 4}
	msgs := []struct {
		typ Type
		msg interface{ Encode() []byte }
	}{
		{TypeSessionOpen, &SessionOpen{ID: 7, Scheme: "pasta", Variant: 4, Width: 17,
			Rounds: 1, T: 2, Nonce: 99, Key: key, EvalKey: []byte("fhe-blob")}},
		{TypeSessionAck, &SessionAck{ID: 7, Session: 3, BlockSize: 32, Modulus: 65537, Bits: 17}},
		{TypeSessionClose, &SessionClose{Session: 3}},
		{TypeEncrypt, &EncryptReq{Session: 3, ID: 8, Nonce: 5, Count: 2, Bits: 17,
			Packed: mustPack(t, ff.Vec{11, 22}, 17)}},
		{TypeKeystream, &KeystreamReq{Session: 3, ID: 9, Nonce: 5, First: 10, Count: 4}},
		{TypeStream, &StreamReq{Session: 3, ID: 10, Count: 3, Bits: 17,
			Packed: mustPack(t, ff.Vec{1, 2, 3}, 17)}},
		{TypeData, &Data{Session: 3, ID: 10, Offset: 64, Count: 3, Bits: 17,
			Packed: mustPack(t, ff.Vec{4, 5, 6}, 17)}},
		{TypeError, &ErrorMsg{Session: 3, ID: 11, Code: CodeOverloaded,
			RetryAfterMillis: 250, Msg: "queue full"}},
	}
	for _, tc := range msgs {
		t.Run(tc.typ.String(), func(t *testing.T) {
			got, err := DecodeAny(tc.typ, tc.msg.Encode())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, tc.msg)
			}
		})
	}
}

func mustPack(t *testing.T, v ff.Vec, bits uint8) []byte {
	t.Helper()
	_, p, err := PackVec(v, bits)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMessageDecodeRejects(t *testing.T) {
	cases := []struct {
		name    string
		typ     Type
		payload []byte
	}{
		{"empty session open", TypeSessionOpen, nil},
		{"trailing bytes", TypeSessionClose, append((&SessionClose{Session: 1}).Encode(), 0)},
		{"oversized key claim", TypeSessionOpen, func() []byte {
			m := &SessionOpen{Scheme: "pasta", Key: []uint64{1}}
			b := m.Encode()
			// Key vector length prefix sits after ID(8)+scheme(4+5)+3×u8+u16+nonce(8).
			off := 8 + 4 + len("pasta") + 3 + 2 + 8
			binary.LittleEndian.PutUint32(b[off:], 1<<31)
			return b
		}()},
		{"packed length mismatch", TypeEncrypt, func() []byte {
			m := &EncryptReq{Count: 100, Bits: 17, Packed: []byte{1, 2}}
			return m.Encode()
		}()},
		{"zero pack width", TypeStream, (&StreamReq{Count: 0, Bits: 0}).Encode()},
		{"oversized keystream count", TypeKeystream,
			(&KeystreamReq{Count: MaxVecElems + 1}).Encode()},
		{"oversized error msg claim", TypeError, func() []byte {
			b := (&ErrorMsg{Code: 1, Msg: "x"}).Encode()
			binary.LittleEndian.PutUint32(b[4+8+2+4:], MaxErrorMsg+1)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeAny(tc.typ, tc.payload); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("got %v, want ErrBadMessage", err)
			}
		})
	}
}

// TestReadFrameBoundedAllocation forges a maximal length field backed by
// a tiny stream: the reader must fail without having grown its buffer
// past one chunk beyond the delivered bytes.
func TestReadFrameBoundedAllocation(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	var frame [HeaderSize + 16]byte
	binary.LittleEndian.PutUint32(frame[0:], Magic)
	frame[4] = Version
	frame[5] = uint8(TypeBlob)
	binary.LittleEndian.PutUint32(frame[6:], DefaultMaxPayload)
	c := &Codec{r: bytes.NewReader(frame[:])}
	allocs := testing.AllocsPerRun(1, func() {
		c = &Codec{r: bytes.NewReader(frame[:])}
		if _, _, err := c.ReadFrame(); err == nil {
			t.Fatal("truncated 16 MiB claim decoded")
		}
	})
	// One header array is stack-allocated; the payload buffer must be a
	// single chunk, not the claimed 16 MiB. Allow a few bookkeeping
	// allocations but nothing of payload scale.
	if allocs > 8 {
		t.Fatalf("ReadFrame allocated %v times for a truncated frame", allocs)
	}
}
