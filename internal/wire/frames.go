package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ff"
)

// Whole-frame append encoders for the hot request/response path. Each
// builds header + payload in place on dst — typically a pooled Buf — and
// packs the element vector directly into the frame with
// ff.AppendPackBits, so encoding a request or reply performs zero
// allocations and zero intermediate copies. The resulting bytes are
// identical to WriteFrame(t, m.Encode()) with m.Packed = PackVec(v).

// Message is any wire message that can append its payload encoding.
type Message interface{ AppendPayload([]byte) []byte }

// AppendMessageFrame appends a complete frame for m to dst without an
// intermediate payload allocation.
func AppendMessageFrame(dst []byte, t Type, m Message) ([]byte, error) {
	if t == 0 || t > maxType {
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	off := len(dst)
	dst = appendHeader(dst, t)
	dst = m.AppendPayload(dst)
	return patchLen(dst, off)
}

// appendVecTail appends the shared (count, bits, packed) tail of a
// vector message, packing v in place.
func appendVecTail(dst []byte, v ff.Vec, bits uint8) ([]byte, error) {
	if len(v) > MaxVecElems {
		return nil, fmt.Errorf("%w: %d elements (max %d)", ErrBadMessage, len(v), MaxVecElems)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	dst = append(dst, bits)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ff.PackedSize(len(v), uint(bits))))
	return ff.AppendPackBits(dst, v, uint(bits))
}

// AppendEncryptFrame appends a complete TypeEncrypt frame carrying v
// packed at the given width.
func AppendEncryptFrame(dst []byte, session uint32, id, counter, nonce uint64, v ff.Vec, bits uint8) ([]byte, error) {
	off := len(dst)
	dst = appendHeader(dst, TypeEncrypt)
	dst = binary.LittleEndian.AppendUint32(dst, session)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, counter)
	dst = binary.LittleEndian.AppendUint64(dst, nonce)
	dst, err := appendVecTail(dst, v, bits)
	if err != nil {
		return nil, err
	}
	return patchLen(dst, off)
}

// AppendStreamFrame appends a complete TypeStream frame carrying v
// packed at the given width.
func AppendStreamFrame(dst []byte, session uint32, id, counter uint64, v ff.Vec, bits uint8) ([]byte, error) {
	off := len(dst)
	dst = appendHeader(dst, TypeStream)
	dst = binary.LittleEndian.AppendUint32(dst, session)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, counter)
	dst, err := appendVecTail(dst, v, bits)
	if err != nil {
		return nil, err
	}
	return patchLen(dst, off)
}

// AppendDataFrame appends a complete TypeData frame carrying v packed
// at the given width.
func AppendDataFrame(dst []byte, session uint32, id, offset uint64, v ff.Vec, bits uint8) ([]byte, error) {
	off := len(dst)
	dst = appendHeader(dst, TypeData)
	dst = binary.LittleEndian.AppendUint32(dst, session)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, offset)
	dst, err := appendVecTail(dst, v, bits)
	if err != nil {
		return nil, err
	}
	return patchLen(dst, off)
}
