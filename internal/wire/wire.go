// Package wire is the versioned framing and message codec of the HHE
// edge protocol (Fig. 1 of the paper, served by internal/server): a
// client registers a session — symmetric key material plus the opaque
// FHE blob (public/eval keys and the homomorphically encrypted PASTA
// key) destined for the compute tier — and then streams encrypt and
// keystream requests as cheap symmetric-ciphertext frames.
//
// Every frame is self-delimiting and versioned:
//
//	magic   uint32  little-endian, "HHEP"
//	version uint8   protocol version (Version)
//	type    uint8   frame type (Type*)
//	length  uint32  payload bytes that follow
//
// The decoder enforces the magic, the version, a known type, and a
// payload bound before touching the payload, and reads the payload in
// bounded chunks so a hostile length field can never force a large
// allocation for data that does not arrive. Message payload decoding is
// strict: every field bounds-checked before allocation, trailing bytes
// rejected. FuzzWireDecode pins the "never panic, never over-allocate"
// contract.
//
// The same codec frames the loopback demo in examples/network (opaque
// TypeBlob frames), so the example and the server cannot drift apart.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Magic is the little-endian frame magic, the bytes "HHEP" on the wire.
const Magic uint32 = 0x50454848

// Version is the protocol version this package speaks. A peer that sees
// a different version must fail the connection rather than guess.
// Version 2 added per-session request counters (replay protection),
// session-resumption tokens, and the resume/replay error codes.
// Version 3 added per-tenant cipher negotiation: SessionOpen.Scheme
// names any registered cipher family, SessionOpen gained the opaque
// CipherParams extension blob, SessionAck echoes the negotiated cipher
// name, and the unknown-cipher error code was assigned.
// Version 4 added the transciphering tier: chunked, resumable EvalKeys
// uploads (TypeEvalKeys/TypeEvalKeysAck), Transcipher requests
// (TypeTranscipher) answered by Data frames carrying opaque BFV
// ciphertext bytes, and the no-eval-keys / transcipher-budget error
// codes.
const Version uint8 = 4

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 10

// Type identifies a frame's payload encoding.
type Type uint8

const (
	// TypeSessionOpen registers a session: cipher shape, key material,
	// stream nonce, and the opaque FHE registration blob.
	TypeSessionOpen Type = 1
	// TypeSessionAck acknowledges a SessionOpen with the session id and
	// the negotiated block geometry.
	TypeSessionAck Type = 2
	// TypeSessionClose retires a session (client → server, no reply).
	TypeSessionClose Type = 3
	// TypeEncrypt is a one-shot encryption request (counters from 0).
	TypeEncrypt Type = 4
	// TypeKeystream requests raw keystream blocks [First, First+Count).
	TypeKeystream Type = 5
	// TypeStream appends elements to the session's encryption stream;
	// the server batches partial blocks across stream requests.
	TypeStream Type = 6
	// TypeData carries a vector result (ciphertext or keystream).
	TypeData Type = 7
	// TypeError reports a request or protocol failure.
	TypeError Type = 8
	// TypeBlob is an opaque application payload (used by the protocol
	// demos for FHE key and ciphertext transport).
	TypeBlob Type = 9
	// TypeEvalKeys carries one chunk of a session's packed-evaluation
	// key upload (relin key, Galois keys, encrypted symmetric key) —
	// tens of MB in production, so the upload is chunked and resumable.
	TypeEvalKeys Type = 10
	// TypeEvalKeysAck acknowledges an EvalKeys chunk with the upload
	// high-water mark; Complete is set once the transcipher engine for
	// the session is built and ready.
	TypeEvalKeysAck Type = 11
	// TypeTranscipher asks the server to homomorphically decrypt a range
	// of symmetric-cipher blocks into BFV ciphertexts (Fig. 1's
	// server-side HHE decryption). The reply is a Data frame whose
	// Packed field holds the concatenated serialized BFV ciphertexts.
	TypeTranscipher Type = 12

	maxType = TypeTranscipher
)

// String names the frame type for diagnostics.
func (t Type) String() string {
	switch t {
	case TypeSessionOpen:
		return "session-open"
	case TypeSessionAck:
		return "session-ack"
	case TypeSessionClose:
		return "session-close"
	case TypeEncrypt:
		return "encrypt"
	case TypeKeystream:
		return "keystream"
	case TypeStream:
		return "stream"
	case TypeData:
		return "data"
	case TypeError:
		return "error"
	case TypeBlob:
		return "blob"
	case TypeEvalKeys:
		return "eval-keys"
	case TypeEvalKeysAck:
		return "eval-keys-ack"
	case TypeTranscipher:
		return "transcipher"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// DefaultMaxPayload bounds a frame payload unless the codec overrides it.
const DefaultMaxPayload = 16 << 20

// Framing errors, wrapped with frame context; match with errors.Is.
var (
	// ErrBadMagic reports a frame that does not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports a version this package does not speak.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadType reports an unknown frame type.
	ErrBadType = errors.New("wire: unknown frame type")
	// ErrTooLarge reports a payload length above the codec's bound.
	ErrTooLarge = errors.New("wire: frame too large")
	// ErrBadMessage reports a payload that does not decode as its type.
	ErrBadMessage = errors.New("wire: malformed message")
)

// Codec frames payloads over a reliable byte stream. Reads and writes
// are independently safe to interleave (a connection typically has one
// reader and mutex-serialized writers, which the caller provides).
type Codec struct {
	r io.Reader
	w io.Writer

	// hdr is the header scratch of the (single) reader; a local array
	// would escape through the io.Reader interface call and cost one
	// allocation per frame.
	hdr [HeaderSize]byte

	// MaxPayload bounds accepted and emitted payloads; 0 means
	// DefaultMaxPayload.
	MaxPayload uint32
}

// NewCodec wraps a bidirectional stream (e.g. a net.Conn).
func NewCodec(rw io.ReadWriter) *Codec { return &Codec{r: rw, w: rw} }

func (c *Codec) limit() uint32 {
	if c.MaxPayload == 0 {
		return DefaultMaxPayload
	}
	return c.MaxPayload
}

// WriteFrame emits one frame. The header and payload go out in a single
// Write so a deadline cannot split a frame between syscalls.
func (c *Codec) WriteFrame(t Type, payload []byte) error {
	if t == 0 || t > maxType {
		return fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	if uint64(len(payload)) > uint64(c.limit()) {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(payload), c.limit())
	}
	buf := make([]byte, HeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = uint8(t)
	binary.LittleEndian.PutUint32(buf[6:], uint32(len(payload)))
	copy(buf[HeaderSize:], payload)
	_, err := c.w.Write(buf)
	return err
}

// AppendFrame appends one complete frame (header + payload) to dst and
// returns the extended slice — the allocation-free sibling of WriteFrame
// for callers that coalesce frames into pooled buffers before a vectored
// write. The payload is bounded by DefaultMaxPayload.
func AppendFrame(dst []byte, t Type, payload []byte) ([]byte, error) {
	if t == 0 || t > maxType {
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	off := len(dst)
	dst = appendHeader(dst, t)
	dst = append(dst, payload...)
	return patchLen(dst, off)
}

// appendHeader appends a frame header with a zero length field; patchLen
// fills the length once the payload has been appended in place.
func appendHeader(dst []byte, t Type) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	return append(dst, Version, uint8(t), 0, 0, 0, 0)
}

// patchLen back-fills the payload length of the frame starting at off.
func patchLen(dst []byte, off int) ([]byte, error) {
	n := len(dst) - off - HeaderSize
	if uint64(n) > uint64(DefaultMaxPayload) {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, DefaultMaxPayload)
	}
	binary.LittleEndian.PutUint32(dst[off+6:], uint32(n))
	return dst, nil
}

// WriteBuffers flushes pre-encoded frames (each element one or more
// complete frames, e.g. built with AppendFrame) in a single vectored
// write — one writev syscall on a *net.TCPConn instead of one Write per
// frame. WriteBuffers consumes bufs. The caller serializes writers, as
// with WriteFrame.
func (c *Codec) WriteBuffers(bufs net.Buffers) error {
	_, err := bufs.WriteTo(c.w)
	return err
}

// readChunk caps the per-step allocation while reading a payload, so a
// forged length never allocates more than the bytes actually received
// (rounded up to one chunk).
const readChunk = 64 << 10

// ReadFrame reads and validates one frame. io.EOF is returned unwrapped
// when the stream ends cleanly between frames.
func (c *Codec) ReadFrame() (Type, []byte, error) {
	return c.ReadFrameInto(nil)
}

// ReadFrameInto is ReadFrame reusing scratch's capacity for the payload.
// The returned payload slice is the (possibly regrown) scratch buffer —
// callers keep it for the next read, so a steady-state connection
// allocates nothing per frame. The chunked-growth bound of ReadFrame
// holds: a forged length field never allocates beyond the bytes actually
// delivered, rounded up to one chunk.
func (c *Codec) ReadFrameInto(scratch []byte) (Type, []byte, error) {
	hdr := &c.hdr
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("wire: truncated header: %w", err)
		}
		return 0, nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return 0, nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	if v := hdr[4]; v != Version {
		return 0, nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, Version)
	}
	t := Type(hdr[5])
	if t == 0 || t > maxType {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadType, hdr[5])
	}
	n := binary.LittleEndian.Uint32(hdr[6:])
	if n > c.limit() {
		return 0, nil, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, c.limit())
	}
	payload := scratch[:0]
	for len(payload) < int(n) {
		step := min(int(n)-len(payload), readChunk)
		off := len(payload)
		if cap(payload) >= off+step {
			payload = payload[:off+step]
		} else {
			payload = append(payload, make([]byte, step)...)
		}
		if _, err := io.ReadFull(c.r, payload[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: truncated payload: %w", err)
		}
	}
	return t, payload, nil
}

// WriteBlob frames an opaque application payload.
func (c *Codec) WriteBlob(payload []byte) error {
	return c.WriteFrame(TypeBlob, payload)
}

// ReadBlob reads one frame and requires it to be a TypeBlob.
func (c *Codec) ReadBlob() ([]byte, error) {
	t, payload, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	if t != TypeBlob {
		return nil, fmt.Errorf("%w: got %v, want %v", ErrBadMessage, t, TypeBlob)
	}
	return payload, nil
}
