package wire

import (
	"sync"

	"repro/internal/obs"
)

// Pooled, size-classed frame buffers shared by the codec hot paths and
// internal/server. A Buf owns one reusable byte slice; GetBuf hands out
// the smallest class that fits, Release returns it. The pool removes the
// per-frame buffer allocation from the encode and read paths — the wire
// counterpart of the cipher tier's zero-alloc keystream kernels.
//
// Ownership rule (see DESIGN.md §9): exactly one owner at a time. The
// party that calls GetBuf owns the Buf until it either calls Release or
// explicitly hands it off (e.g. a connection read loop passing a decoded
// frame to the waiting caller); the receiver then releases it. A decoded
// message whose fields alias Buf.B (DecodeInto keeps Packed aliased) must
// not outlive the Buf's current ownership.

// bufClasses are the pooled capacity classes. 512 B covers every control
// frame and a PASTA-4 block request (32 × 17 bits + framing); 4 KiB the
// chunked-stream frames; 64 KiB one read chunk; 1 MiB large keystream
// replies. Larger demands fall through to a plain allocation.
var bufClasses = [...]int{512, 4 << 10, 64 << 10, 1 << 20}

// Buf is a pooled frame buffer. B always has len 0 on Get; users append
// into it (frame encoders) or slice it (ReadFrameInto) and must store the
// grown slice back before Release so the capacity survives recycling.
type Buf struct {
	B     []byte
	class int8 // index into bufClasses; -1 = unpooled oversize
}

// Pool observability: hits = get − miss − oversize. Exposed through the
// default registry next to the server metrics so /metrics and the
// metrics-smoke target report frame-buffer reuse rates.
var (
	mPoolGet      = obs.Default().Counter("wire.pool.get")
	mPoolMiss     = obs.Default().Counter("wire.pool.miss")
	mPoolOversize = obs.Default().Counter("wire.pool.oversize")
)

var bufPools = func() [len(bufClasses)]*sync.Pool {
	var pools [len(bufClasses)]*sync.Pool
	for i := range pools {
		class := int8(i)
		size := bufClasses[i]
		pools[i] = &sync.Pool{New: func() any {
			mPoolMiss.Inc()
			return &Buf{B: make([]byte, 0, size), class: class}
		}}
	}
	return pools
}()

// GetBuf returns a Buf whose capacity is at least n bytes (len 0).
// Callers that only append may pass 0.
func GetBuf(n int) *Buf {
	mPoolGet.Inc()
	for i, size := range bufClasses {
		if n <= size {
			return bufPools[i].Get().(*Buf)
		}
	}
	mPoolOversize.Inc()
	return &Buf{B: make([]byte, 0, n), class: -1}
}

// Release returns the Buf to its pool. The caller must not touch b or
// any slice aliasing b.B afterwards. Buffers that grew far beyond their
// class (an oversize frame read into a small-class Buf) are dropped
// rather than pinned in the wrong pool. Safe on nil.
func (b *Buf) Release() {
	if b == nil || b.class < 0 {
		return
	}
	if cap(b.B) > 2*bufClasses[b.class] {
		return
	}
	b.B = b.B[:0]
	bufPools[b.class].Put(b)
}
