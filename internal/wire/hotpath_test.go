package wire

import (
	"bytes"
	"testing"

	"repro/internal/ff"
)

// frameBytes is the reference encoding: WriteFrame over an allocating
// Encode. Every append-style encoder must produce identical bytes.
func frameBytes(t *testing.T, typ Type, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := &Codec{w: &buf}
	if err := c.WriteFrame(typ, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAppendMessageFrameMatchesWriteFrame(t *testing.T) {
	msgs := []struct {
		typ Type
		msg Message
	}{
		{TypeSessionOpen, &SessionOpen{ID: 7, Scheme: "pasta", Variant: 4, Width: 17,
			Nonce: 99, Key: []uint64{1, 2, 3}, EvalKey: []byte("blob")}},
		{TypeSessionAck, &SessionAck{ID: 7, Session: 3, BlockSize: 32, Modulus: 65537, Bits: 17}},
		{TypeSessionClose, &SessionClose{Session: 3}},
		{TypeEncrypt, &EncryptReq{Session: 3, ID: 8, Nonce: 5, Count: 2, Bits: 17,
			Packed: mustPack(t, ff.Vec{11, 22}, 17)}},
		{TypeKeystream, &KeystreamReq{Session: 3, ID: 9, Nonce: 5, First: 10, Count: 4}},
		{TypeStream, &StreamReq{Session: 3, ID: 10, Count: 3, Bits: 17,
			Packed: mustPack(t, ff.Vec{1, 2, 3}, 17)}},
		{TypeData, &Data{Session: 3, ID: 10, Offset: 64, Count: 3, Bits: 17,
			Packed: mustPack(t, ff.Vec{4, 5, 6}, 17)}},
		{TypeError, &ErrorMsg{Session: 3, ID: 11, Code: CodeOverloaded, RetryAfterMillis: 250, Msg: "q"}},
	}
	for _, tc := range msgs {
		t.Run(tc.typ.String(), func(t *testing.T) {
			want := frameBytes(t, tc.typ, tc.msg.AppendPayload(nil))
			got, err := AppendMessageFrame([]byte{0xee}, tc.typ, tc.msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, append([]byte{0xee}, want...)) {
				t.Fatalf("append frame diverges from WriteFrame\n got %x\nwant %x", got[1:], want)
			}
		})
	}
}

// TestAppendVecFramesMatchEncode pins the specialized inline-packing
// frame builders to the allocating PackVec + Encode + WriteFrame path.
func TestAppendVecFramesMatchEncode(t *testing.T) {
	v := ff.Vec{11, 22, 33, 44, 55}
	count, packed, err := PackVec(v, 17)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		want []byte
		got  func() ([]byte, error)
	}{
		{"encrypt", frameBytes(t, TypeEncrypt,
			(&EncryptReq{Session: 3, ID: 8, Counter: 2, Nonce: 5, Count: count, Bits: 17, Packed: packed}).Encode()),
			func() ([]byte, error) { return AppendEncryptFrame(nil, 3, 8, 2, 5, v, 17) }},
		{"stream", frameBytes(t, TypeStream,
			(&StreamReq{Session: 3, ID: 9, Counter: 4, Count: count, Bits: 17, Packed: packed}).Encode()),
			func() ([]byte, error) { return AppendStreamFrame(nil, 3, 9, 4, v, 17) }},
		{"data", frameBytes(t, TypeData,
			(&Data{Session: 3, ID: 10, Offset: 77, Count: count, Bits: 17, Packed: packed}).Encode()),
			func() ([]byte, error) { return AppendDataFrame(nil, 3, 10, 77, v, 17) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.got()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("inline-packed frame diverges\n got %x\nwant %x", got, tc.want)
			}
		})
	}

	// Oversized elements and bad widths surface as errors, not frames.
	if _, err := AppendDataFrame(nil, 1, 1, 0, ff.Vec{1 << 20}, 17); err == nil {
		t.Fatal("oversized element framed")
	}
	if _, err := AppendEncryptFrame(nil, 1, 1, 1, 0, v, 0); err == nil {
		t.Fatal("zero pack width framed")
	}
}

func TestReadFrameIntoReusesScratch(t *testing.T) {
	frame := frameBytes(t, TypeBlob, []byte("twelve bytes"))
	r := bytes.NewReader(frame)
	c := &Codec{r: r}
	scratch := make([]byte, 0, 256)
	for i := 0; i < 3; i++ {
		r.Reset(frame)
		typ, payload, err := c.ReadFrameInto(scratch)
		if err != nil {
			t.Fatal(err)
		}
		if typ != TypeBlob || string(payload) != "twelve bytes" {
			t.Fatalf("round trip mismatch: %v %q", typ, payload)
		}
		if cap(payload) != 256 {
			t.Fatalf("scratch capacity not reused: cap %d", cap(payload))
		}
		scratch = payload
	}
	// A scratch that is too small grows and the grown buffer comes back.
	r.Reset(frame)
	_, payload, err := c.ReadFrameInto(make([]byte, 0, 2))
	if err != nil || string(payload) != "twelve bytes" {
		t.Fatalf("small-scratch read: %q %v", payload, err)
	}
}

func TestBufPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 512, 513, 4096, 64 << 10, 1 << 20} {
		b := GetBuf(n)
		if cap(b.B) < n || len(b.B) != 0 {
			t.Fatalf("GetBuf(%d): len %d cap %d", n, len(b.B), cap(b.B))
		}
		b.Release()
	}
	// Oversize demands are served unpooled.
	big := GetBuf(2 << 20)
	if big.class != -1 || cap(big.B) < 2<<20 {
		t.Fatalf("oversize Buf: class %d cap %d", big.class, cap(big.B))
	}
	big.Release() // must be a no-op, not a panic
	(*Buf)(nil).Release()

	// Reuse: a released Buf comes back (single-goroutine steady state).
	b := GetBuf(100)
	b.B = append(b.B, 1, 2, 3)
	b.Release()
	again := GetBuf(100)
	if len(again.B) != 0 {
		t.Fatalf("recycled Buf has stale length %d", len(again.B))
	}
	again.Release()
}

// TestWireHotPathZeroAlloc: the steady-state encode→frame→decode→unpack
// round trip of the hot messages performs zero allocations once pooled
// buffers are warm — the tentpole property the server hot path builds on.
func TestWireHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	v := ff.Vec{11, 22, 33, 44, 55, 66, 77, 88}
	dst := ff.NewVec(len(v))
	buf := GetBuf(512)
	defer buf.Release()
	scratch := make([]byte, 0, 512)
	reader := bytes.NewReader(nil)
	c := &Codec{r: reader}
	var ksReq KeystreamReq
	ksMsg := &KeystreamReq{Session: 3, ID: 9, Nonce: 5, First: 10, Count: 4}

	allocs := testing.AllocsPerRun(200, func() {
		// Encrypt request: inline-packed encode, framed read, into-decode.
		var err error
		buf.B, err = AppendEncryptFrame(buf.B[:0], 3, 8, 1, 5, v, 17)
		if err != nil {
			t.Fatal(err)
		}
		reader.Reset(buf.B)
		_, payload, err := c.ReadFrameInto(scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = payload
		var req EncryptReq
		if err := DecodeEncryptReqInto(&req, payload); err != nil {
			t.Fatal(err)
		}
		if err := req.VecInto(dst); err != nil {
			t.Fatal(err)
		}

		// Data reply: same cycle through the response message.
		buf.B, err = AppendDataFrame(buf.B[:0], 3, 8, 64, dst, 17)
		if err != nil {
			t.Fatal(err)
		}
		reader.Reset(buf.B)
		_, payload, err = c.ReadFrameInto(scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = payload
		var data Data
		if err := DecodeDataInto(&data, payload); err != nil {
			t.Fatal(err)
		}
		if err := data.VecInto(dst); err != nil {
			t.Fatal(err)
		}

		// Keystream request: fixed-size message through the generic path.
		buf.B, err = AppendMessageFrame(buf.B[:0], TypeKeystream, ksMsg)
		if err != nil {
			t.Fatal(err)
		}
		reader.Reset(buf.B)
		_, payload, err = c.ReadFrameInto(scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = payload
		if err := DecodeKeystreamReqInto(&ksReq, payload); err != nil {
			t.Fatal(err)
		}

		// Pooled Buf churn, as the per-reply path does.
		extra := GetBuf(256)
		extra.B = append(extra.B, payload...)
		extra.Release()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %v times per round trip, want 0", allocs)
	}
	if !dst.Equal(v) {
		t.Fatalf("round trip corrupted vector: %v", dst)
	}
}
