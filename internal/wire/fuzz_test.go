package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"

	// Link the built-in cipher families so the SessionOpen seed corpus
	// below covers every registered name.
	_ "repro/internal/hera"
	_ "repro/internal/masta"
	_ "repro/internal/pasta"
)

// FuzzWireDecode drives the full decode path — frame header validation,
// chunked payload reads, and every typed message decoder — with raw
// bytes. The contract under fuzz: never panic, never allocate
// proportionally to a forged length field, and either round-trip or
// return an error. `make fuzz-smoke` runs this briefly on every CI pass.
func FuzzWireDecode(f *testing.F) {
	// Seed with one valid frame per message type, plus classic mutations.
	seed := func(t Type, payload []byte) {
		var buf bytes.Buffer
		c := &Codec{r: &buf, w: &buf}
		if err := c.WriteFrame(t, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// One SessionOpen per registered cipher family (so negotiation
	// parsing is fuzzed for every name a real client can send), plus a
	// junk name the server must reject gracefully, a params-blob open,
	// and a resume-token open.
	for _, cn := range cipher.Names() {
		seed(TypeSessionOpen, (&SessionOpen{ID: 1, Scheme: cn, Variant: 3, Width: 17,
			Nonce: 4, Key: []uint64{9, 9}, EvalKey: []byte{1, 2, 3}}).Encode())
	}
	seed(TypeSessionOpen, (&SessionOpen{ID: 1, Scheme: "rasta", Nonce: 4, Key: []uint64{9}}).Encode())
	seed(TypeSessionOpen, (&SessionOpen{ID: 1, Scheme: "pasta", Nonce: 4, Key: []uint64{9},
		CipherParams: []byte{0xca, 0xfe}}).Encode())
	seed(TypeSessionOpen, (&SessionOpen{ID: 1, Resume: bytes.Repeat([]byte{7}, 36)}).Encode())
	seed(TypeSessionAck, (&SessionAck{ID: 1, Session: 2, Cipher: "pasta", BlockSize: 32, Modulus: 65537, Bits: 17,
		Counter: 12, Tail: 96, Resume: []byte{9, 8, 7}}).Encode())
	seed(TypeSessionClose, (&SessionClose{Session: 2}).Encode())
	seed(TypeEncrypt, (&EncryptReq{Session: 2, ID: 3, Counter: 1, Nonce: 1, Count: 1, Bits: 8, Packed: []byte{0x2a}}).Encode())
	seed(TypeKeystream, (&KeystreamReq{Session: 2, ID: 4, Counter: 2, Nonce: 1, First: 7, Count: 2}).Encode())
	seed(TypeStream, (&StreamReq{Session: 2, ID: 5, Counter: 3, Count: 1, Bits: 8, Packed: []byte{0x2a}}).Encode())
	seed(TypeData, (&Data{Session: 2, ID: 5, Offset: 32, Count: 1, Bits: 8, Packed: []byte{0x2a}}).Encode())
	seed(TypeError, (&ErrorMsg{Session: 2, ID: 6, Code: CodeOverloaded, RetryAfterMillis: 9, Msg: "m"}).Encode())
	seed(TypeBlob, []byte("opaque"))
	// Wire v4: the transciphering tier. Seed a mid-upload chunk, the
	// zero-length progress-probe chunk, both ack shapes, and a
	// transcipher request.
	seed(TypeEvalKeys, (&EvalKeysChunk{Session: 2, ID: 7, Counter: 4, Offset: 16, Total: 32,
		Chunk: bytes.Repeat([]byte{0xee}, 8)}).Encode())
	seed(TypeEvalKeys, (&EvalKeysChunk{Session: 2, ID: 8, Counter: 5, Offset: 32, Total: 32}).Encode())
	seed(TypeEvalKeysAck, (&EvalKeysAck{Session: 2, ID: 7, Received: 24, Total: 32}).Encode())
	seed(TypeEvalKeysAck, (&EvalKeysAck{Session: 2, ID: 8, Received: 32, Total: 32, Complete: true}).Encode())
	seed(TypeTranscipher, (&TranscipherReq{Session: 2, ID: 9, Counter: 6, Nonce: 1, First: 3,
		Count: 4, Bits: 17, Packed: bytes.Repeat([]byte{0x11}, ff.PackedSize(4, 17))}).Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Run the frame stream through both read paths: the allocating
		// ReadFrame and the scratch-reusing ReadFrameInto share the
		// "never panic, never over-allocate" contract.
		c := &Codec{r: bytes.NewReader(data)}
		ci := &Codec{r: bytes.NewReader(data)}
		var scratch []byte
		for {
			typ, payload, err := c.ReadFrame()
			typI, payloadI, errI := ci.ReadFrameInto(scratch)
			if (err == nil) != (errI == nil) {
				t.Fatalf("ReadFrame err %v but ReadFrameInto err %v", err, errI)
			}
			if err != nil {
				if err == io.EOF && len(data) == 0 {
					return
				}
				return // any error is acceptable; panics are not
			}
			if typI != typ || !bytes.Equal(payloadI, payload) {
				t.Fatalf("ReadFrameInto diverges: %v/%v payloads %x/%x", typ, typI, payload, payloadI)
			}
			scratch = payloadI
			msg, err := DecodeAny(typ, payload)
			fuzzDecodeInto(t, typ, payload, msg, err)
			if err != nil {
				continue
			}
			// Whatever decoded must re-encode and decode to the same
			// message — the codec cannot silently normalize.
			if enc, ok := msg.(interface{ Encode() []byte }); ok {
				if _, err := DecodeAny(typ, enc.Encode()); err != nil {
					t.Fatalf("re-decode of valid %v failed: %v", typ, err)
				}
			}
		}
	})
}

// fuzzDecodeInto holds the DecodeInto variants to the allocating
// decoders: same accept/reject decision, same decoded message, and the
// same no-panic guarantee on arbitrary payloads.
func fuzzDecodeInto(t *testing.T, typ Type, payload []byte, msg any, decErr error) {
	t.Helper()
	var got any
	var err error
	switch typ {
	case TypeEncrypt:
		m := &EncryptReq{}
		err = DecodeEncryptReqInto(m, payload)
		got = m
	case TypeKeystream:
		m := &KeystreamReq{}
		err = DecodeKeystreamReqInto(m, payload)
		got = m
	case TypeStream:
		m := &StreamReq{}
		err = DecodeStreamReqInto(m, payload)
		got = m
	case TypeData:
		m := &Data{}
		err = DecodeDataInto(m, payload)
		got = m
	case TypeEvalKeys:
		m := &EvalKeysChunk{}
		err = DecodeEvalKeysChunkInto(m, payload)
		got = m
	case TypeTranscipher:
		m := &TranscipherReq{}
		err = DecodeTranscipherReqInto(m, payload)
		got = m
	default:
		return
	}
	if (err == nil) != (decErr == nil) {
		t.Fatalf("%v: DecodeInto err %v but allocating decode err %v", typ, err, decErr)
	}
	if err == nil && !reflect.DeepEqual(got, msg) {
		t.Fatalf("%v: DecodeInto diverges\n got %#v\nwant %#v", typ, got, msg)
	}
}
