package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ff"
)

// Decoding bounds. They protect the server from hostile payloads; the
// frame-level MaxPayload already bounds total bytes, these bound the
// element counts a single message may claim.
const (
	// MaxKeyElems bounds the raw key length in a SessionOpen.
	MaxKeyElems = 1 << 12
	// MaxVecElems bounds the element count of any vector message.
	MaxVecElems = 1 << 20
	// MaxErrorMsg bounds the diagnostic string of an ErrorMsg.
	MaxErrorMsg = 1 << 10
	// MaxResumeToken bounds a session-resumption token (SessionOpen.Resume
	// and SessionAck.Resume). The server mints 36-byte tokens; the bound
	// leaves headroom for future MAC agility.
	MaxResumeToken = 64
	// MaxCipherName bounds the cipher registry name in a SessionOpen
	// and its echo in a SessionAck.
	MaxCipherName = 64
	// MaxCipherParams bounds the opaque cipher-parameter extension blob
	// of a SessionOpen. The fixed Variant/Width/Rounds/T fields cover
	// every registered family today; the blob is the version-3 escape
	// hatch for families whose parameters do not fit them.
	MaxCipherParams = 1 << 10
	// MaxEvalKeysChunk bounds a single EvalKeys upload chunk. Uploads
	// larger than one chunk are split client-side; the bound keeps each
	// frame (and the reader's scratch buffer) modest.
	MaxEvalKeysChunk = 4 << 20
	// MaxEvalKeysTotal bounds the assembled eval-key upload a chunk may
	// claim. Production PASTA-3 packed eval keys (relin + t−1 Galois
	// keys + two encrypted key halves) are tens of MB; the bound leaves
	// headroom without letting a hostile Total pin gigabytes.
	MaxEvalKeysTotal = 1 << 28
	// MaxTranscipherBlocks bounds the block count of one Transcipher
	// request. Each block costs a full homomorphic PASTA evaluation
	// (~10^5× a keystream block), so requests stay small and the cost
	// model meters admission per block.
	MaxTranscipherBlocks = 256
)

// Error codes carried by TypeError frames.
const (
	// CodeBadRequest: the request was malformed or out of range.
	CodeBadRequest uint16 = 1
	// CodeUnknownSession: the session id is not live on this connection.
	CodeUnknownSession uint16 = 2
	// CodeOverloaded: the scheduler queue (or session table) is full;
	// retry after the hinted delay.
	CodeOverloaded uint16 = 3
	// CodeRateLimited: the session exceeded its element rate budget.
	CodeRateLimited uint16 = 4
	// CodeDeadline: the request missed its server-side deadline.
	CodeDeadline uint16 = 5
	// CodeShuttingDown: the server is draining and accepts no new work.
	CodeShuttingDown uint16 = 6
	// CodeInternal: the backend failed; details in Msg.
	CodeInternal uint16 = 7
	// CodeReplay: the request counter was already accepted or is older
	// than the session's anti-replay window. The request was discarded
	// before any keystream offset was assigned.
	CodeReplay uint16 = 8
	// CodeDuplicateNonce: a SessionOpen carried a (key, nonce) pair that
	// is already live — accepting it would derive the same keystream
	// twice (a two-time pad).
	CodeDuplicateNonce uint16 = 9
	// CodeBadResume: a resumption token did not verify (unknown session,
	// bad MAC, or the session is still attached or already gone).
	CodeBadResume uint16 = 10
	// CodeUnknownCipher: the SessionOpen named a cipher family that is
	// not registered on this server (or parameters/substrate the family
	// rejects). The connection stays up; Msg lists the supported names.
	CodeUnknownCipher uint16 = 11
	// CodeNoEvalKeys: a Transcipher request arrived before the session's
	// eval-key upload completed (or the upload failed to build an
	// engine). Upload eval keys, wait for Complete, then retry.
	CodeNoEvalKeys uint16 = 12
	// CodeTranscipherBudget: the transcipher tier's cost-model admission
	// rejected the request — the estimated evaluation backlog exceeds
	// the configured budget. RetryAfterMillis carries the estimated
	// drain time of the current backlog.
	CodeTranscipherBudget uint16 = 13
)

// CodeString names an error code for diagnostics.
func CodeString(code uint16) string {
	switch code {
	case CodeBadRequest:
		return "bad-request"
	case CodeUnknownSession:
		return "unknown-session"
	case CodeOverloaded:
		return "overloaded"
	case CodeRateLimited:
		return "rate-limited"
	case CodeDeadline:
		return "deadline"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeInternal:
		return "internal"
	case CodeReplay:
		return "replay"
	case CodeDuplicateNonce:
		return "duplicate-nonce"
	case CodeBadResume:
		return "bad-resume"
	case CodeUnknownCipher:
		return "unknown-cipher"
	case CodeNoEvalKeys:
		return "no-eval-keys"
	case CodeTranscipherBudget:
		return "transcipher-budget"
	}
	return fmt.Sprintf("code(%d)", code)
}

// SessionOpen registers a session (Resume empty) or resumes a parked one
// (Resume carries a token from a previous SessionAck; every other field
// except ID is then ignored — the server retains the cipher, so key
// material is never re-uploaded). Key confidentiality on the wire is the
// transport's job: run the serving tier behind TLS (server.Config.TLS /
// hheserver -tls-cert) so the symmetric key never crosses the network in
// plaintext; the server zeroes its copy of the raw key bytes as soon as
// the backend cipher is constructed. EvalKey is opaque to the edge: it
// is the FHE registration blob (public/eval keys + homomorphically
// encrypted symmetric key) the edge holds for the compute tier.
type SessionOpen struct {
	ID     uint64 // request id, echoed by the SessionAck or ErrorMsg
	Scheme string // registered cipher family name ("" = server default "pasta")
	// Variant/Width/Rounds/T use the family's public numbering and are
	// interpreted by the family's Spec (PASTA: Variant 3/4 or toy T;
	// HERA/MASTA: Rounds). Zero means family default throughout.
	Variant uint8  // named instance within the family (PASTA: 3 or 4)
	Width   uint8  // modulus width ω (0 = 17)
	Rounds  uint8  // round count where the family allows it
	T       uint16 // non-zero: reduced/toy state size
	Nonce   uint64 // nonce of the session's encryption stream
	Key     []uint64
	EvalKey []byte
	Resume  []byte // resumption token; non-empty = resume, not register
	// CipherParams is an opaque family-interpreted extension blob
	// (version 3) for parameters the fixed fields above cannot express;
	// empty for every built-in family. Bounded by MaxCipherParams.
	CipherParams []byte
}

// SessionAck answers a successful SessionOpen — fresh or resumed.
// Counter and Tail let a resuming client realign: Counter is the
// server's replay high-water mark (the client's next request counter
// must exceed it) and Tail is the next unassigned element offset of the
// session's encryption stream. Both are zero on a fresh open.
type SessionAck struct {
	ID        uint64 // echoed request id
	Session   uint32
	Cipher    string // negotiated cipher family name (version 3)
	BlockSize uint32 // t, elements per keystream block
	Modulus   uint64 // field prime p
	Bits      uint8  // per-element packing width for this session
	Counter   uint64 // replay-counter high-water mark
	Tail      uint64 // next stream element offset
	Resume    []byte // token accepted by a future SessionOpen.Resume
}

// SessionClose retires a session.
type SessionClose struct {
	Session uint32
}

// EncryptReq asks for a one-shot encryption of a packed message with
// block counters starting at 0 (the backend.BlockCipher.Encrypt
// semantics, bit-compatible with the sequential hhe.Client).
//
// Counter (here and on KeystreamReq/StreamReq) is the session's replay
// counter: each transmitted request carries a fresh value, strictly
// increasing per sender, and the server rejects duplicates and values
// older than its anti-replay window with CodeReplay before assigning any
// keystream offset. A rejected request's counter stays consumed — a
// retry uses a new one.
type EncryptReq struct {
	Session uint32
	ID      uint64
	Counter uint64 // replay counter (see above)
	Nonce   uint64
	Count   uint32 // elements packed in Packed
	Bits    uint8
	Packed  []byte
}

// KeystreamReq asks for Count keystream blocks [First, First+Count).
type KeystreamReq struct {
	Session uint32
	ID      uint64
	Counter uint64 // replay counter (see EncryptReq)
	Nonce   uint64
	First   uint64
	Count   uint32 // blocks
}

// StreamReq appends Count elements to the session's encryption stream
// (nonce fixed at SessionOpen). The server assigns the stream offset and
// batches partial blocks across requests into full keystream blocks.
type StreamReq struct {
	Session uint32
	ID      uint64
	Counter uint64 // replay counter (see EncryptReq)
	Count   uint32
	Bits    uint8
	Packed  []byte
}

// Data is the vector response to Encrypt, Keystream, and Stream
// requests. Offset is the absolute element offset in the session stream
// (stream responses only; 0 otherwise).
type Data struct {
	Session uint32
	ID      uint64
	Offset  uint64
	Count   uint32
	Bits    uint8
	Packed  []byte
}

// ErrorMsg reports a failed request (ID echoes the request) or a
// connection-level fault (ID 0). RetryAfterMillis is non-zero for
// transient rejections (overload, rate limit).
type ErrorMsg struct {
	Session          uint32
	ID               uint64
	Code             uint16
	RetryAfterMillis uint32
	Msg              string
}

// EvalKeysChunk carries [Offset, Offset+len(Chunk)) of a session's
// packed-evaluation key blob (version 4). The server accumulates chunks
// strictly in offset order; a chunk whose range is already received is
// acknowledged idempotently, so a client can resume an interrupted
// upload from the acknowledged high-water mark. An empty chunk is a
// progress probe: it is always accepted and the ack reports the current
// state (including re-arming engine construction after a transient
// failure). Total must be identical across all chunks of one upload.
type EvalKeysChunk struct {
	Session uint32
	ID      uint64
	Counter uint64 // replay counter (see EncryptReq)
	Offset  uint64 // absolute byte offset of Chunk within the blob
	Total   uint64 // full blob size in bytes
	Chunk   []byte
}

// EvalKeysAck answers an EvalKeysChunk. Received is the contiguous
// upload high-water mark (the offset the next chunk must start at);
// Complete is set only once the transcipher engine has been built from
// the assembled blob — a client must not send Transcipher requests
// before seeing it.
type EvalKeysAck struct {
	Session  uint32
	ID       uint64
	Received uint64
	Total    uint64
	Complete bool
}

// TranscipherReq asks the server to homomorphically decrypt the packed
// symmetric ciphertext elements of blocks [First, First+Count/t) under
// the session's uploaded eval keys — the server never holds the
// symmetric key. Count is the element count (a whole number of t-element
// blocks); the reply is a Data frame with Bits = 8 whose Packed field
// concatenates one serialized BFV ciphertext per block and whose Offset
// echoes First.
type TranscipherReq struct {
	Session uint32
	ID      uint64
	Counter uint64 // replay counter (see EncryptReq)
	Nonce   uint64
	First   uint64 // first symmetric block index
	Count   uint32 // elements packed in Packed (blocks × t)
	Bits    uint8
	Packed  []byte
}

// Vec unpacks the request's payload vector.
func (m *TranscipherReq) Vec() (ff.Vec, error) {
	return ff.UnpackBits(m.Packed, int(m.Count), uint(m.Bits))
}

// VecInto unpacks the request vector into dst (len(dst) == Count)
// without allocating.
func (m *TranscipherReq) VecInto(dst ff.Vec) error { return vecInto(dst, m.Count, m.Bits, m.Packed) }

// --- vector packing ------------------------------------------------------

// PackVec bit-packs v at the given width for a vector message.
func PackVec(v ff.Vec, bits uint8) (count uint32, packed []byte, err error) {
	if len(v) > MaxVecElems {
		return 0, nil, fmt.Errorf("%w: %d elements (max %d)", ErrBadMessage, len(v), MaxVecElems)
	}
	packed, err = ff.PackBits(v, uint(bits))
	if err != nil {
		return 0, nil, err
	}
	return uint32(len(v)), packed, nil
}

// Vec unpacks the message's payload vector.
func (m *Data) Vec() (ff.Vec, error) { return ff.UnpackBits(m.Packed, int(m.Count), uint(m.Bits)) }

// Vec unpacks the request's payload vector.
func (m *EncryptReq) Vec() (ff.Vec, error) {
	return ff.UnpackBits(m.Packed, int(m.Count), uint(m.Bits))
}

// Vec unpacks the request's payload vector.
func (m *StreamReq) Vec() (ff.Vec, error) { return ff.UnpackBits(m.Packed, int(m.Count), uint(m.Bits)) }

// vecInto unpacks a validated (count, bits, packed) triple into dst,
// which must hold exactly count elements.
func vecInto(dst ff.Vec, count uint32, bits uint8, packed []byte) error {
	if len(dst) != int(count) {
		return fmt.Errorf("%w: destination holds %d elements, message %d", ErrBadMessage, len(dst), count)
	}
	return ff.UnpackBitsInto(dst, packed, uint(bits))
}

// VecInto unpacks the message vector into dst (len(dst) == Count)
// without allocating.
func (m *Data) VecInto(dst ff.Vec) error { return vecInto(dst, m.Count, m.Bits, m.Packed) }

// VecInto unpacks the request vector into dst (len(dst) == Count)
// without allocating.
func (m *EncryptReq) VecInto(dst ff.Vec) error { return vecInto(dst, m.Count, m.Bits, m.Packed) }

// VecInto unpacks the request vector into dst (len(dst) == Count)
// without allocating.
func (m *StreamReq) VecInto(dst ff.Vec) error { return vecInto(dst, m.Count, m.Bits, m.Packed) }

// --- encoder -------------------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) vec(v []uint64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

// --- decoder -------------------------------------------------------------

// decoder is a strict cursor over a payload: every read is bounds-checked
// and sticky-fails, and finish() rejects trailing bytes. Length-prefixed
// fields are validated against the remaining bytes before any allocation.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrBadMessage}, args...)...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.fail("need %d bytes, have %d", n, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// bytes reads a length-prefixed byte field of at most max bytes. The
// returned slice aliases the payload (copy if retained).
func (d *decoder) bytes(max int) []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(max) {
		d.fail("byte field of %d bytes (max %d)", n, max)
		return nil
	}
	return d.take(int(n))
}

// vec reads a length-prefixed uint64 vector of at most max elements,
// checking the claimed count against the remaining bytes before
// allocating.
func (d *decoder) vec(max int) []uint64 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(max) {
		d.fail("vector of %d elements (max %d)", n, max)
		return nil
	}
	if len(d.b)-d.off < int(n)*8 {
		d.fail("vector of %d elements needs %d bytes, have %d", n, int(n)*8, len(d.b)-d.off)
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.u64()
	}
	return v
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b)-d.off)
	}
	return nil
}

// checkPacked validates a (count, bits, packed) triple: width in range,
// count bounded, and the packed length exactly matching.
func (d *decoder) checkPacked(count uint32, bits uint8, packed []byte) {
	if d.err != nil {
		return
	}
	if bits == 0 || bits > 64 {
		d.fail("pack width %d", bits)
		return
	}
	if count > MaxVecElems {
		d.fail("vector of %d elements (max %d)", count, MaxVecElems)
		return
	}
	if want := ff.PackedSize(int(count), uint(bits)); len(packed) != want {
		d.fail("packed field has %d bytes, want %d for %d × %d-bit elements",
			len(packed), want, count, bits)
	}
}

// --- message encode/decode ----------------------------------------------

// Encode serializes the message payload (frame with TypeSessionOpen).
func (m *SessionOpen) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *SessionOpen) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u64(m.ID)
	e.bytes([]byte(m.Scheme))
	e.u8(m.Variant)
	e.u8(m.Width)
	e.u8(m.Rounds)
	e.u16(m.T)
	e.u64(m.Nonce)
	e.vec(m.Key)
	e.bytes(m.EvalKey)
	e.bytes(m.Resume)
	e.bytes(m.CipherParams)
	return e.buf
}

// DecodeSessionOpen parses a TypeSessionOpen payload.
func DecodeSessionOpen(payload []byte) (*SessionOpen, error) {
	d := decoder{b: payload}
	m := &SessionOpen{}
	m.ID = d.u64()
	m.Scheme = string(d.bytes(MaxCipherName))
	m.Variant = d.u8()
	m.Width = d.u8()
	m.Rounds = d.u8()
	m.T = d.u16()
	m.Nonce = d.u64()
	m.Key = d.vec(MaxKeyElems)
	m.EvalKey = append([]byte(nil), d.bytes(DefaultMaxPayload)...)
	m.Resume = append([]byte(nil), d.bytes(MaxResumeToken)...)
	m.CipherParams = append([]byte(nil), d.bytes(MaxCipherParams)...)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the message payload (frame with TypeSessionAck).
func (m *SessionAck) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *SessionAck) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u64(m.ID)
	e.u32(m.Session)
	e.bytes([]byte(m.Cipher))
	e.u32(m.BlockSize)
	e.u64(m.Modulus)
	e.u8(m.Bits)
	e.u64(m.Counter)
	e.u64(m.Tail)
	e.bytes(m.Resume)
	return e.buf
}

// DecodeSessionAck parses a TypeSessionAck payload.
func DecodeSessionAck(payload []byte) (*SessionAck, error) {
	d := decoder{b: payload}
	m := &SessionAck{}
	m.ID = d.u64()
	m.Session = d.u32()
	m.Cipher = string(d.bytes(MaxCipherName))
	m.BlockSize = d.u32()
	m.Modulus = d.u64()
	m.Bits = d.u8()
	m.Counter = d.u64()
	m.Tail = d.u64()
	m.Resume = append([]byte(nil), d.bytes(MaxResumeToken)...)
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the message payload (frame with TypeSessionClose).
func (m *SessionClose) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *SessionClose) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	return e.buf
}

// DecodeSessionClose parses a TypeSessionClose payload.
func DecodeSessionClose(payload []byte) (*SessionClose, error) {
	d := decoder{b: payload}
	m := &SessionClose{}
	m.Session = d.u32()
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the message payload (frame with TypeEncrypt).
func (m *EncryptReq) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *EncryptReq) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Counter)
	e.u64(m.Nonce)
	e.u32(m.Count)
	e.u8(m.Bits)
	e.bytes(m.Packed)
	return e.buf
}

// DecodeEncryptReq parses a TypeEncrypt payload.
func DecodeEncryptReq(payload []byte) (*EncryptReq, error) {
	m := &EncryptReq{}
	if err := DecodeEncryptReqInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeEncryptReqInto parses a TypeEncrypt payload into m without
// allocating. m.Packed aliases payload and is only valid until the
// caller reuses the frame buffer (DESIGN.md §9).
func DecodeEncryptReqInto(m *EncryptReq, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Counter = d.u64()
	m.Nonce = d.u64()
	m.Count = d.u32()
	m.Bits = d.u8()
	m.Packed = d.bytes(DefaultMaxPayload)
	d.checkPacked(m.Count, m.Bits, m.Packed)
	return d.finish()
}

// Encode serializes the message payload (frame with TypeKeystream).
func (m *KeystreamReq) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *KeystreamReq) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Counter)
	e.u64(m.Nonce)
	e.u64(m.First)
	e.u32(m.Count)
	return e.buf
}

// DecodeKeystreamReq parses a TypeKeystream payload.
func DecodeKeystreamReq(payload []byte) (*KeystreamReq, error) {
	m := &KeystreamReq{}
	if err := DecodeKeystreamReqInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeKeystreamReqInto parses a TypeKeystream payload into m without
// allocating.
func DecodeKeystreamReqInto(m *KeystreamReq, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Counter = d.u64()
	m.Nonce = d.u64()
	m.First = d.u64()
	m.Count = d.u32()
	if m.Count > MaxVecElems {
		d.fail("keystream request for %d blocks (max %d)", m.Count, MaxVecElems)
	}
	return d.finish()
}

// Encode serializes the message payload (frame with TypeStream).
func (m *StreamReq) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *StreamReq) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Counter)
	e.u32(m.Count)
	e.u8(m.Bits)
	e.bytes(m.Packed)
	return e.buf
}

// DecodeStreamReq parses a TypeStream payload.
func DecodeStreamReq(payload []byte) (*StreamReq, error) {
	m := &StreamReq{}
	if err := DecodeStreamReqInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeStreamReqInto parses a TypeStream payload into m without
// allocating. m.Packed aliases payload and is only valid until the
// caller reuses the frame buffer (DESIGN.md §9).
func DecodeStreamReqInto(m *StreamReq, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Counter = d.u64()
	m.Count = d.u32()
	m.Bits = d.u8()
	m.Packed = d.bytes(DefaultMaxPayload)
	d.checkPacked(m.Count, m.Bits, m.Packed)
	return d.finish()
}

// Encode serializes the message payload (frame with TypeData).
func (m *Data) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *Data) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Offset)
	e.u32(m.Count)
	e.u8(m.Bits)
	e.bytes(m.Packed)
	return e.buf
}

// DecodeData parses a TypeData payload.
func DecodeData(payload []byte) (*Data, error) {
	m := &Data{}
	if err := DecodeDataInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeDataInto parses a TypeData payload into m without allocating.
// m.Packed aliases payload and is only valid until the caller reuses
// the frame buffer (DESIGN.md §9).
func DecodeDataInto(m *Data, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Offset = d.u64()
	m.Count = d.u32()
	m.Bits = d.u8()
	m.Packed = d.bytes(DefaultMaxPayload)
	d.checkPacked(m.Count, m.Bits, m.Packed)
	return d.finish()
}

// Encode serializes the message payload (frame with TypeError).
func (m *ErrorMsg) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *ErrorMsg) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u16(m.Code)
	e.u32(m.RetryAfterMillis)
	msg := m.Msg
	if len(msg) > MaxErrorMsg {
		msg = msg[:MaxErrorMsg]
	}
	e.bytes([]byte(msg))
	return e.buf
}

// DecodeErrorMsg parses a TypeError payload.
func DecodeErrorMsg(payload []byte) (*ErrorMsg, error) {
	d := decoder{b: payload}
	m := &ErrorMsg{}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Code = d.u16()
	m.RetryAfterMillis = d.u32()
	m.Msg = string(d.bytes(MaxErrorMsg))
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the message payload (frame with TypeEvalKeys).
func (m *EvalKeysChunk) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *EvalKeysChunk) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Counter)
	e.u64(m.Offset)
	e.u64(m.Total)
	e.bytes(m.Chunk)
	return e.buf
}

// DecodeEvalKeysChunk parses a TypeEvalKeys payload.
func DecodeEvalKeysChunk(payload []byte) (*EvalKeysChunk, error) {
	m := &EvalKeysChunk{}
	if err := DecodeEvalKeysChunkInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeEvalKeysChunkInto parses a TypeEvalKeys payload into m without
// allocating. m.Chunk aliases payload and is only valid until the
// caller reuses the frame buffer (DESIGN.md §9).
func DecodeEvalKeysChunkInto(m *EvalKeysChunk, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Counter = d.u64()
	m.Offset = d.u64()
	m.Total = d.u64()
	m.Chunk = d.bytes(MaxEvalKeysChunk)
	if d.err == nil {
		switch {
		case m.Total > MaxEvalKeysTotal:
			d.fail("eval-key blob of %d bytes (max %d)", m.Total, MaxEvalKeysTotal)
		case m.Offset > m.Total:
			d.fail("chunk offset %d beyond blob size %d", m.Offset, m.Total)
		case m.Offset+uint64(len(m.Chunk)) > m.Total:
			d.fail("chunk [%d, %d) overruns blob size %d", m.Offset, m.Offset+uint64(len(m.Chunk)), m.Total)
		}
	}
	return d.finish()
}

// Encode serializes the message payload (frame with TypeEvalKeysAck).
func (m *EvalKeysAck) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *EvalKeysAck) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Received)
	e.u64(m.Total)
	var c uint8
	if m.Complete {
		c = 1
	}
	e.u8(c)
	return e.buf
}

// DecodeEvalKeysAck parses a TypeEvalKeysAck payload.
func DecodeEvalKeysAck(payload []byte) (*EvalKeysAck, error) {
	d := decoder{b: payload}
	m := &EvalKeysAck{}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Received = d.u64()
	m.Total = d.u64()
	switch d.u8() {
	case 0:
	case 1:
		m.Complete = true
	default:
		d.fail("eval-keys ack completeness flag is not boolean")
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the message payload (frame with TypeTranscipher).
func (m *TranscipherReq) Encode() []byte { return m.AppendPayload(nil) }

// AppendPayload appends the message payload to dst.
func (m *TranscipherReq) AppendPayload(dst []byte) []byte {
	e := encoder{buf: dst}
	e.u32(m.Session)
	e.u64(m.ID)
	e.u64(m.Counter)
	e.u64(m.Nonce)
	e.u64(m.First)
	e.u32(m.Count)
	e.u8(m.Bits)
	e.bytes(m.Packed)
	return e.buf
}

// DecodeTranscipherReq parses a TypeTranscipher payload.
func DecodeTranscipherReq(payload []byte) (*TranscipherReq, error) {
	m := &TranscipherReq{}
	if err := DecodeTranscipherReqInto(m, payload); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeTranscipherReqInto parses a TypeTranscipher payload into m
// without allocating. m.Packed aliases payload and is only valid until
// the caller reuses the frame buffer (DESIGN.md §9). The block-size
// divisibility check is the server's (t is a session property); the
// codec bounds the element count.
func DecodeTranscipherReqInto(m *TranscipherReq, payload []byte) error {
	d := decoder{b: payload}
	m.Session = d.u32()
	m.ID = d.u64()
	m.Counter = d.u64()
	m.Nonce = d.u64()
	m.First = d.u64()
	m.Count = d.u32()
	m.Bits = d.u8()
	m.Packed = d.bytes(DefaultMaxPayload)
	d.checkPacked(m.Count, m.Bits, m.Packed)
	if d.err == nil && m.Count == 0 {
		d.fail("transcipher request for zero elements")
	}
	return d.finish()
}

// DecodeAny parses a payload according to its frame type, returning one
// of the typed messages above. TypeBlob payloads pass through as []byte.
// This is the single entry point the fuzzer drives.
func DecodeAny(t Type, payload []byte) (any, error) {
	switch t {
	case TypeSessionOpen:
		return DecodeSessionOpen(payload)
	case TypeSessionAck:
		return DecodeSessionAck(payload)
	case TypeSessionClose:
		return DecodeSessionClose(payload)
	case TypeEncrypt:
		return DecodeEncryptReq(payload)
	case TypeKeystream:
		return DecodeKeystreamReq(payload)
	case TypeStream:
		return DecodeStreamReq(payload)
	case TypeData:
		return DecodeData(payload)
	case TypeError:
		return DecodeErrorMsg(payload)
	case TypeBlob:
		return payload, nil
	case TypeEvalKeys:
		return DecodeEvalKeysChunk(payload)
	case TypeEvalKeysAck:
		return DecodeEvalKeysAck(payload)
	case TypeTranscipher:
		return DecodeTranscipherReq(payload)
	}
	return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
}
