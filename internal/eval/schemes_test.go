package eval

import (
	"strings"

	"math"
	"testing"

	"repro/internal/ff"
)

func TestSchemeComparison(t *testing.T) {
	rows, err := SchemeComparison(ff.P17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]SchemeRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}

	// The analytic XOF-bound model must track the cycle-accurate
	// simulation within 5% for both PASTA variants.
	for _, name := range []string{"PASTA-3", "PASTA-4"} {
		r := byName[name]
		if r.SimCycles == 0 {
			t.Fatalf("%s: no simulation result", name)
		}
		relErr := math.Abs(float64(r.EstCycles)-float64(r.SimCycles)) / float64(r.SimCycles)
		if relErr > 0.05 {
			t.Errorf("%s: analytic %d vs simulated %d cycles (%.1f%% apart)",
				name, r.EstCycles, r.SimCycles, 100*relErr)
		}
	}

	// The future-scope insight: HERA's fixed linear layers slash the XOF
	// demand (96 vs 640 elements) and the multiplier count by orders of
	// magnitude, giving far fewer cycles per element.
	hera := byName["HERA-5 (reconstruction)"]
	p4 := byName["PASTA-4"]
	if hera.XOFElements*6 > p4.XOFElements {
		t.Errorf("HERA XOF demand %d not ≪ PASTA-4 %d", hera.XOFElements, p4.XOFElements)
	}
	if hera.MulCount*10 > p4.MulCount {
		t.Errorf("HERA muls %d not ≪ PASTA-4 %d", hera.MulCount, p4.MulCount)
	}
	if hera.CyclesPerElem >= p4.CyclesPerElem {
		t.Errorf("HERA %.1f cc/elem not below PASTA-4 %.1f", hera.CyclesPerElem, p4.CyclesPerElem)
	}
}

func TestEstimateXOFCycles(t *testing.T) {
	// Paper Sec. IV-B hand-calculation for PASTA-4: ≈60 permutations ⇒
	// 60·26 + 32 ≈ 1,592 cc. Our estimator with demand 640 and ≈0.5
	// acceptance must land nearby.
	est := EstimateXOFCycles(640, ff.P17, 32)
	if est < 1500 || est > 1750 {
		t.Fatalf("estimate = %d, want ≈1,600", est)
	}
	// Wider moduli accept almost every masked word, so the same demand
	// needs about half the Keccak work — the model captures the
	// rejection-rate dependence the paper discusses.
	est33 := EstimateXOFCycles(640, ff.P33, 32)
	if float64(est33) > 0.65*float64(est) {
		t.Fatalf("33-bit estimate %d not ≈half of 17-bit %d", est33, est)
	}
}

func TestCountermeasureCostsTable(t *testing.T) {
	rows, err := CountermeasureCosts(1591)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	base := rows[0]
	if base.LatencyUS < 1.5 || base.LatencyUS > 1.7 {
		t.Errorf("baseline latency = %.2f µs, want ≈1.59", base.LatencyUS)
	}
	for _, r := range rows[1:] {
		if r.AreaFactor < 1 || r.CycleFactor < 1 {
			t.Errorf("%s: overhead below baseline", r.Name)
		}
		// Key point: every countermeasure stays below 2× area because the
		// XOF (public) needs no protection — cheaper than on PKE designs
		// where the whole datapath is secret-dependent.
		if r.AreaFactor >= 2 {
			t.Errorf("%s: area factor %.2f ≥ 2", r.Name, r.AreaFactor)
		}
	}
}

func TestEnergyRows(t *testing.T) {
	t2, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EnergyRows(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// The 1 GHz ASIC finishes ≈75× faster than the 75 MHz FPGA but burns
	// higher power; per-block energy must still favour the ASIC.
	var asic, fpga float64
	for _, r := range rows {
		switch r.Platform {
		case "ASIC 28nm":
			asic = r.BlockUJ
		case "Artix-7":
			fpga = r.BlockUJ
		}
	}
	if asic <= 0 || fpga <= 0 || asic >= fpga {
		t.Fatalf("ASIC %.2f µJ should undercut FPGA %.2f µJ", asic, fpga)
	}
	if _, err := EnergyRows(nil); err == nil {
		t.Fatal("missing PASTA-4 row accepted")
	}
}

func TestExpansion(t *testing.T) {
	rows, err := Expansion(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	plain, hhe, fhe := rows[0], rows[1], rows[2]
	if plain.Expansion != 1 {
		t.Fatalf("plaintext expansion = %v", plain.Expansion)
	}
	// HHE: essentially no expansion (exactly 1 for bit-packed ω-bit
	// elements over ω-bit payloads).
	if hhe.Expansion > 1.1 {
		t.Errorf("HHE expansion = %.2f, want ≈1", hhe.Expansion)
	}
	// FHE: orders of magnitude. With N=2^13 and ≈165-bit Q the paper's
	// "10,000×–100,000×" range is for small payloads; at a full 2^12-slot
	// batch the floor is ≈2·8192·165/ (4096·17) ≈ 39×.
	if fhe.Expansion < 30 {
		t.Errorf("FHE expansion = %.1f×, implausibly low", fhe.Expansion)
	}
	if fhe.WireBytes <= hhe.WireBytes*20 {
		t.Errorf("FHE wire %d not ≫ HHE wire %d", fhe.WireBytes, hhe.WireBytes)
	}
	// Small payloads hit the full per-ciphertext floor. For 32 elements
	// ≈5,000×; for a single element the measured expansion lands inside
	// the paper's quoted 10,000–100,000× band.
	small, err := Expansion(32)
	if err != nil {
		t.Fatal(err)
	}
	if small[2].Expansion < 4000 {
		t.Errorf("FHE expansion for 32 elements = %.0f×, want ≈5,000", small[2].Expansion)
	}
	one, err := Expansion(1)
	if err != nil {
		t.Fatal(err)
	}
	if one[2].Expansion < 10_000 || one[2].Expansion > 200_000 {
		t.Errorf("FHE expansion for 1 element = %.0f×, want within the paper's 10,000–100,000× band", one[2].Expansion)
	}
	if _, err := Expansion(0); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestBitwidthStudy(t *testing.T) {
	rows, err := BitwidthStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byW := map[uint]BitwidthRow{}
	for _, r := range rows {
		byW[r.Omega] = r
	}
	// Paper: area more than doubles per width step ⇒ area–time grows —
	// under its implicit ≈0.5-acceptance assumption. Our ω=33 prime sits
	// just under 2^33, halving cycles, so its AT product stays almost
	// flat (≈2.1× area × ≈0.52× time); ω=54 (acceptance ≈0.5 again)
	// shows the paper's full ≈4.3× AT growth.
	if at := byW[33].ASICATScale; at < 0.9 || at > 1.5 {
		t.Errorf("33-bit area-time scale = %.2f, want ≈1.1 (area ≈2.1× × time ≈0.52×)", at)
	}
	if byW[54].ASICATScale < 3 {
		t.Errorf("54-bit area-time scale = %.2f, want ≳4 (paper: area ≈4.3× at equal time)", byW[54].ASICATScale)
	}
	// Rejection-rate sensitivity: the near-2^33 prime accepts ≈everything
	// and needs roughly half the cycles of the ≈0.5-acceptance widths.
	if byW[33].AcceptRate < 0.99 {
		t.Errorf("33-bit acceptance = %.3f, want ≈1", byW[33].AcceptRate)
	}
	if float64(byW[33].SimCycles) > 0.65*float64(byW[17].SimCycles) {
		t.Errorf("33-bit cycles %d not ≈half of 17-bit %d", byW[33].SimCycles, byW[17].SimCycles)
	}
	// Widths with ≈0.5 acceptance perform the same (paper's claim).
	r17, r54 := byW[17], byW[54]
	ratio := float64(r54.SimCycles) / float64(r17.SimCycles)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("cycles at equal acceptance differ: ω=17 %d vs ω=54 %d", r17.SimCycles, r54.SimCycles)
	}
	if byW[17].DSP != 64 || byW[54].DSP != 576 {
		t.Errorf("DSP counts drifted: %d, %d", byW[17].DSP, byW[54].DSP)
	}
}

func TestRenderExtensionsSmoke(t *testing.T) {
	var sb strings.Builder
	schemes, err := SchemeComparison(ff.P17)
	if err != nil {
		t.Fatal(err)
	}
	RenderSchemes(&sb, schemes)
	cms, err := CountermeasureCosts(1591)
	if err != nil {
		t.Fatal(err)
	}
	RenderCountermeasures(&sb, cms)
	bw, err := BitwidthStudy()
	if err != nil {
		t.Fatal(err)
	}
	RenderBitwidth(&sb, bw)
	exp, err := Expansion(32)
	if err != nil {
		t.Fatal(err)
	}
	RenderExpansion(&sb, exp)
	t2, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	en, err := EnergyRows(t2)
	if err != nil {
		t.Fatal(err)
	}
	RenderEnergy(&sb, en)
	out := sb.String()
	for _, want := range []string{"HERA", "temporal redundancy", "BITLENGTH", "COMMUNICATION", "ENERGY", "expansion"} {
		if !strings.Contains(out, want) {
			t.Errorf("extension rendering missing %q", want)
		}
	}
}
