package eval

import (
	"encoding/csv"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cipher"
)

func table2(t *testing.T) []Table2Row {
	t.Helper()
	rows, err := Table2(3)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTable1MatchesPaperWithinTolerance(t *testing.T) {
	for _, r := range Table1() {
		if r.Model.DSP != r.Paper.DSP {
			t.Errorf("%s ω=%d: DSP %d != paper %d", r.Scheme, r.Omega, r.Model.DSP, r.Paper.DSP)
		}
		lutErr := math.Abs(float64(r.Model.LUT)-float64(r.Paper.LUT)) / float64(r.Paper.LUT)
		if lutErr > 0.05 {
			t.Errorf("%s ω=%d: LUT error %.1f%%", r.Scheme, r.Omega, 100*lutErr)
		}
	}
}

func TestTable2ShapesMatchPaper(t *testing.T) {
	rows := table2(t)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Within 15% of the paper's cycle counts.
		relErr := math.Abs(float64(r.Cycles)-float64(r.PaperCycles)) / float64(r.PaperCycles)
		if relErr > 0.15 {
			t.Errorf("%s: cycles %d vs paper %d (%.1f%% off)", r.Scheme, r.Cycles, r.PaperCycles, 100*relErr)
		}
		// Platform latencies derive from the cycle count.
		if r.FPGAus < r.ASICus {
			t.Errorf("%s: FPGA faster than ASIC?", r.Scheme)
		}
		if r.RISCVus < r.ASICus {
			t.Errorf("%s: SoC at 100MHz faster than 1GHz ASIC?", r.Scheme)
		}
	}
}

func TestTable3WhoWins(t *testing.T) {
	rows, err := Table3(table2(t))
	if err != nil {
		t.Fatal(err)
	}
	// Our FPGA row must have the lowest per-encryption latency among
	// FPGA rows by orders of magnitude, at comparable or lower area.
	var ourFPGA, bestPriorFPGA, ourASIC, bestPriorASIC *Table3Row
	for i := range rows {
		r := &rows[i]
		switch {
		case r.Ours && r.Platform == "Artix-7":
			ourFPGA = r
		case r.Ours && strings.Contains(r.Platform, "7/28nm"):
			ourASIC = r
		case !r.Ours && r.KLUT > 0:
			if bestPriorFPGA == nil || r.EncrUS < bestPriorFPGA.EncrUS {
				bestPriorFPGA = r
			}
		case !r.Ours && r.KLUT == 0 && strings.Contains(r.Platform, "12nm"):
			if bestPriorASIC == nil || r.EncrUS < bestPriorASIC.EncrUS {
				bestPriorASIC = r
			}
		}
	}
	if ourFPGA == nil || bestPriorFPGA == nil || ourASIC == nil || bestPriorASIC == nil {
		t.Fatal("missing rows")
	}
	if ourFPGA.EncrUS*10 > bestPriorFPGA.EncrUS {
		t.Errorf("FPGA: ours %.1f µs not ≫ faster than prior %.1f µs", ourFPGA.EncrUS, bestPriorFPGA.EncrUS)
	}
	if ourASIC.PerElemUS*50 > bestPriorASIC.PerElemUS {
		t.Errorf("ASIC per-element: ours %.3f vs prior %.3f — want ~97×", ourASIC.PerElemUS, bestPriorASIC.PerElemUS)
	}
	if ourFPGA.BRAM != 0 {
		t.Error("our design must use no BRAM")
	}
}

func TestFig7SharesComplete(t *testing.T) {
	d, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for name, pie := range map[string]map[string]float64{"FPGA": d.FPGA, "ASIC": d.ASIC} {
		var sum float64
		for _, v := range pie {
			sum += v
		}
		if math.Abs(sum-100) > 0.01 {
			t.Errorf("%s shares sum to %.2f", name, sum)
		}
	}
	// The ASIC pie shifts toward the multiplier-heavy units vs FPGA
	// (standard cells have no DSP blocks to hide multipliers in).
	if d.ASIC["MatGen"]+d.ASIC["MatMul"] <= d.FPGA["DataGen(SHAKE)"] {
		t.Log("ASIC multiplier share unexpectedly small (informational)")
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	rows, err := Fig8(1.59, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TWFPS <= r.RISEFPS {
			t.Errorf("%s at %.1f MBps: TW %.1f fps not ahead of RISE %.1f", r.Resolution, r.Bandwidth/1e6, r.TWFPS, r.RISEFPS)
		}
	}
	// Paper anchors: RISE ≈70–75 QQVGA fps at max bandwidth; RISE cannot
	// send VGA at minimum bandwidth (< 1 fps).
	for _, r := range rows {
		if r.Resolution == "QQVGA" && r.Bandwidth == MaxBandwidthBps {
			if r.RISEFPS < 60 || r.RISEFPS > 90 {
				t.Errorf("RISE QQVGA max-bw fps = %.1f, want ≈70–75", r.RISEFPS)
			}
		}
		if r.Resolution == "VGA" && r.Bandwidth == MinBandwidthBps {
			if !r.RISEBelow1 {
				t.Errorf("RISE VGA at min bandwidth = %.2f fps, paper says < 1", r.RISEFPS)
			}
			if r.TWFPS < 1 {
				t.Errorf("TW VGA at min bandwidth = %.2f fps, must be ≥ 1", r.TWFPS)
			}
		}
	}
}

func TestFig8EncryptionCap(t *testing.T) {
	// With encryption latency included, RISE (20 ms per ciphertext) is
	// encryption-limited at max bandwidth.
	rows, err := Fig8(1.59, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Resolution == "QQVGA" && r.Bandwidth == MaxBandwidthBps && r.RISEFPS > 51 {
			t.Errorf("RISE QQVGA with enc cap = %.1f fps, want ≤ 50", r.RISEFPS)
		}
	}
}

func TestClaims(t *testing.T) {
	c := ComputeClaims(table2(t))
	// 2^18 matrix multiplications plus the (small) S-box term the paper's
	// estimate omits.
	if c.Pasta3Muls < 1<<18 || c.Pasta3Muls > 1<<18+2048 {
		t.Errorf("PASTA-3 muls = %d, want ≈2^18", c.Pasta3Muls)
	}
	if c.PKEMuls < 400_000 || c.PKEMuls > 600_000 {
		t.Errorf("PKE muls = %d, want ≈2^19", c.PKEMuls)
	}
	// Paper: 857–3,439× cycle reduction. Our counts differ a few percent.
	if c.CycleReductionP4 < 700 || c.CycleReductionP4 > 1000 {
		t.Errorf("PASTA-4 cycle reduction = %.0f, want ≈857", c.CycleReductionP4)
	}
	if c.CycleReductionP3 < 2900 || c.CycleReductionP3 > 3700 {
		t.Errorf("PASTA-3 cycle reduction = %.0f, want ≈3,439", c.CycleReductionP3)
	}
	if c.WallSpeedupP4 < 35 || c.WallSpeedupP3 > 200 {
		t.Errorf("wall-clock speedups %.0f–%.0f out of the paper's 43–171 neighbourhood",
			c.WallSpeedupP4, c.WallSpeedupP3)
	}
	if c.SpeedupVsRISE < 70 || c.SpeedupVsRISE > 130 {
		t.Errorf("speedup vs RISE = %.0f, want ≈97", c.SpeedupVsRISE)
	}
	if c.P3TimeAdvantage < 0.10 || c.P3TimeAdvantage > 0.35 {
		t.Errorf("PASTA-3 per-element advantage = %.0f%%, want ≈22%%", 100*c.P3TimeAdvantage)
	}
	if c.P3AreaRatio < 2.3 || c.P3AreaRatio > 3.3 {
		t.Errorf("area ratio = %.2f, want ≈3", c.P3AreaRatio)
	}
	if c.Pasta3BulkFactor < 15 || c.Pasta3BulkFactor > 50 {
		t.Errorf("bulk factor = %.1f, want ≈32", c.Pasta3BulkFactor)
	}
}

func TestRenderSmoke(t *testing.T) {
	var sb strings.Builder
	t2 := table2(t)
	RenderTable1(&sb, Table1())
	RenderTable2(&sb, t2)
	t3, err := Table3(t2)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable3(&sb, t3)
	f7, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	RenderFig7(&sb, f7)
	f8, err := Fig8(1.59, false)
	if err != nil {
		t.Fatal(err)
	}
	RenderFig8(&sb, f8)
	RenderClaims(&sb, ComputeClaims(t2))
	out := sb.String()
	for _, want := range []string{"TABLE I", "TABLE II", "TABLE III", "FIG. 7", "FIG. 8", "CLAIM AUDIT", "PASTA-3", "RISE"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

type nopCloser struct{ *strings.Builder }

func (nopCloser) Close() error { return nil }

func TestWriteAllCSV(t *testing.T) {
	files := map[string]*strings.Builder{}
	err := WriteAllCSV(func(name string) (io.WriteCloser, error) {
		sb := &strings.Builder{}
		files[name] = sb
		return nopCloser{sb}, nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1.csv", "table2.csv", "table3.csv", "fig7.csv", "fig8.csv", "claims.csv", "schemes.csv", "countermeasures.csv", "bitwidth.csv", "energy.csv", "expansion.csv"}
	for _, name := range want {
		sb, ok := files[name]
		if !ok {
			t.Errorf("%s not written", name)
			continue
		}
		records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
		if err != nil {
			t.Errorf("%s: invalid CSV: %v", name, err)
			continue
		}
		if len(records) < 2 {
			t.Errorf("%s has no data rows", name)
			continue
		}
		for i, rec := range records[1:] {
			if len(rec) != len(records[0]) {
				t.Errorf("%s row %d has %d fields, header has %d", name, i, len(rec), len(records[0]))
			}
		}
	}
}

func TestSoftwareThroughput(t *testing.T) {
	rows, err := SoftwareThroughput(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (sequential+parallel for each variant)", len(rows))
	}
	for _, r := range rows {
		if r.ElemsPerSec <= 0 || r.Speedup <= 0 {
			t.Errorf("%s workers=%d: non-positive throughput %v / speedup %v",
				r.Scheme, r.Workers, r.ElemsPerSec, r.Speedup)
		}
		if r.Elems != r.Blocks*blockSizeFor(t, r.Scheme) {
			t.Errorf("%s: elems = %d for %d blocks", r.Scheme, r.Elems, r.Blocks)
		}
	}
	var sb strings.Builder
	RenderSoftware(&sb, rows)
	if !strings.Contains(sb.String(), "SOFTWARE") {
		t.Error("RenderSoftware output missing header")
	}
	if _, err := SoftwareThroughput(1, 0); err == nil {
		t.Error("SoftwareThroughput accepted zero blocks")
	}
}

// TestThroughputOnAccelBackend: the generic throughput harness must run
// on the hardware-model substrates too, with one serialized row per
// scheme.
func TestThroughputOnAccelBackend(t *testing.T) {
	rows, err := Throughput(backend.NameAccel, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one serialized row per variant)", len(rows))
	}
	for _, r := range rows {
		if r.Backend != backend.NameAccel || r.Workers != 1 {
			t.Errorf("accel row not serialized: %+v", r)
		}
		if r.ElemsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput", r.Scheme)
		}
	}
	if _, err := Throughput("no-such-backend", 1, 1); err == nil {
		t.Error("Throughput accepted an unknown backend")
	}
}

func blockSizeFor(t *testing.T, scheme string) int {
	t.Helper()
	switch scheme {
	case "PASTA-3":
		return 128
	case "PASTA-4":
		return 32
	}
	t.Fatalf("unknown scheme %q", scheme)
	return 0
}

// TestThroughputCiphersSweepsRegistry: the nil sweep covers every
// registered cipher family on the software backend (PASTA twice, for
// both public variants), rows carry the cipher column, and on the accel
// backend software-only families are skipped rather than failing.
func TestThroughputCiphersSweepsRegistry(t *testing.T) {
	rows, err := ThroughputCiphers(backend.NameSoftware, nil, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Cipher == "" {
			t.Errorf("row %q has no cipher family", r.Scheme)
		}
		seen[r.Cipher] = true
		if r.ElemsPerSec <= 0 {
			t.Errorf("%s/%s: non-positive throughput", r.Cipher, r.Scheme)
		}
	}
	for _, name := range cipher.Names() {
		if !seen[name] {
			t.Errorf("registered cipher %q missing from the software sweep", name)
		}
	}

	// The accel backend runs PASTA and HERA but not the software-only
	// MASTA family: the sweep must skip it, not fail.
	rows, err = ThroughputCiphers(backend.NameAccel, nil, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Cipher == "masta" {
			t.Error("software-only masta measured on the accel backend")
		}
	}

	// A sweep with nothing runnable is an error, as is an unknown name.
	if _, err := ThroughputCiphers(backend.NameSoC, []string{"masta"}, 1, 1, 1); err == nil {
		t.Error("masta-on-soc sweep did not fail")
	}
	if _, err := ThroughputCiphers(backend.NameSoftware, []string{"rasta"}, 1, 1, 1); err == nil {
		t.Error("unknown cipher accepted")
	}

	var sb strings.Builder
	RenderSoftware(&sb, rows)
	if !strings.Contains(sb.String(), "Cipher") {
		t.Error("RenderSoftware output missing the cipher column")
	}
}
