package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/hw/area"
)

// RenderTable1 prints Table I with paper reference values side by side.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "TABLE I — PASTA-3/4 on Artix-7 (model vs paper)")
	fmt.Fprintf(w, "%-9s %3s | %8s %8s %6s | %8s %8s %6s | %5s %5s %5s\n",
		"Scheme", "ω", "LUT", "FF", "DSP", "LUT(pap)", "FF(pap)", "DSP(p)", "LUT%", "FF%", "DSP%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %3d | %8d %8d %6d | %8d %8d %6d | %4.0f%% %4.0f%% %4.0f%%\n",
			r.Scheme, r.Omega, r.Model.LUT, r.Model.FF, r.Model.DSP,
			r.Paper.LUT, r.Paper.FF, r.Paper.DSP,
			r.UtilLUT, r.UtilFF, r.UtilDSP)
	}
}

// RenderTable2 prints Table II.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "TABLE II — performance for one block (model; paper cycle counts in parentheses)")
	fmt.Fprintf(w, "%-12s %5s | %12s | %9s | %9s %9s %9s\n",
		"Scheme", "Elems", "CPU [9] cc", "cycles", "FPGA µs", "ASIC µs", "RISC-V µs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5d | %12d | %5d(%4d) | %9.1f %9.2f %9.1f\n",
			r.Scheme, r.Elements, r.CPUCycles, r.Cycles, r.PaperCycles,
			r.FPGAus, r.ASICus, r.RISCVus)
	}
}

// RenderTable3 prints Table III.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "TABLE III — PASTA-4 vs prior FHE client-side PKE accelerators")
	fmt.Fprintf(w, "%-5s %-22s | %7s %7s %6s %6s | %10s %9s\n",
		"Work", "Platform", "kLUT", "kFF", "DSP", "BRAM", "Encr µs", "µs/elem")
	for _, r := range rows {
		mark := " "
		if r.Ours {
			mark = "*"
		}
		lut, ffs, dsp, bram := "-", "-", "-", "-"
		if r.KLUT > 0 {
			lut = fmt.Sprintf("%.1f", r.KLUT)
			ffs = fmt.Sprintf("%.1f", r.KFF)
			dsp = fmt.Sprintf("%d", r.DSP)
			bram = fmt.Sprintf("%.1f", r.BRAM)
		}
		fmt.Fprintf(w, "%-5s%s%-22s | %7s %7s %6s %6s | %10.2f %9.3f\n",
			r.Ref, mark, r.Platform, lut, ffs, dsp, bram, r.EncrUS, r.PerElemUS)
	}
	fmt.Fprintln(w, "* = this reproduction")
}

// RenderFig7 prints both area-share pies.
func RenderFig7(w io.Writer, d Fig7Data) {
	fmt.Fprintln(w, "FIG. 7 — module-wise area shares")
	fmt.Fprintln(w, "  FPGA (PASTA-3, ω=17, % of LUTs):")
	renderShares(w, d.FPGA)
	fmt.Fprintln(w, "  ASIC (PASTA-4, ω=17, 28nm, % of mm²):")
	renderShares(w, d.ASIC)
}

func renderShares(w io.Writer, shares map[string]float64) {
	for _, name := range area.SortedUnits(shares) {
		bar := strings.Repeat("█", int(shares[name]/2+0.5))
		fmt.Fprintf(w, "    %-16s %5.1f%% %s\n", name, shares[name], bar)
	}
}

// RenderFig8 prints both bandwidth plots.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "FIG. 8 — encrypted video frames per second over 5G (log scale in the paper)")
	lastBW := -1.0
	for _, r := range rows {
		if r.Bandwidth != lastBW {
			fmt.Fprintf(w, "  bandwidth %.1f MBps:\n", r.Bandwidth/1e6)
			lastBW = r.Bandwidth
		}
		note := ""
		if r.RISEBelow1 {
			note = "  (RISE cannot sustain 1 fps)"
		}
		fmt.Fprintf(w, "    %-6s TW %10.1f fps | RISE %8.2f fps | advantage %6.1f×%s\n",
			r.Resolution, r.TWFPS, r.RISEFPS, r.Advantage, note)
	}
}

// RenderClaims prints the quantified textual claims.
func RenderClaims(w io.Writer, c Claims) {
	fmt.Fprintln(w, "CLAIM AUDIT — paper statements vs model")
	fmt.Fprintf(w, "  §I-A  PKE client encryption multiplications (N=2^13, 3 moduli): %d (≈2^19; paper: ≈2^19)\n", c.PKEMuls)
	fmt.Fprintf(w, "  §I-A  PASTA-3 multiplications: %d (=2^18; paper: 2^18); PASTA-4: %d\n", c.Pasta3Muls, c.Pasta4Muls)
	fmt.Fprintf(w, "  §I-A  PASTA-3 bulk factor for 2^12 elements: %.1f× more muls than PKE (paper: 32×)\n", c.Pasta3BulkFactor)
	fmt.Fprintf(w, "  §IV-C cycle reduction vs CPU [9]: %.0f× (PASTA-4) – %.0f× (PASTA-3) (paper: 857–3,439×)\n",
		c.CycleReductionP4, c.CycleReductionP3)
	fmt.Fprintf(w, "  §IV-C wall-clock speedup at 20× clock handicap: %.0f×–%.0f× (paper: 43–171×)\n",
		c.WallSpeedupP4, c.WallSpeedupP3)
	fmt.Fprintf(w, "  §IV-C per-element speedup vs RISE [19] on ASIC: %.0f× (paper: ≈97×)\n", c.SpeedupVsRISE)
	fmt.Fprintf(w, "  §IV-B PASTA-3 per-element time advantage over PASTA-4: %.0f%% (paper: 22%%)\n", 100*c.P3TimeAdvantage)
	fmt.Fprintf(w, "  §IV-B PASTA-3/PASTA-4 area ratio: %.1f× (paper: ≈3×)\n", c.P3AreaRatio)
	fmt.Fprintf(w, "  §IV-C encrypting 32 coefficients: FHE %.0f µs vs TW %.1f µs (paper: 1,884 vs 21.2)\n",
		c.FHE32CoeffUS, c.TW32CoeffUS)
}

// RenderSchemes prints the future-scope cross-scheme comparison.
func RenderSchemes(w io.Writer, rows []SchemeRow) {
	fmt.Fprintln(w, "FUTURE SCOPE (§VI) — HHE-enabling schemes after hardware realization")
	fmt.Fprintf(w, "%-24s | %6s %8s %8s | %9s %9s %10s | %8s %5s\n",
		"Scheme", "elems", "XOF dmd", "mod-muls", "est cc", "sim cc", "cc/elem", "LUT", "DSP")
	for _, r := range rows {
		sim := "-"
		if r.SimCycles > 0 {
			sim = fmt.Sprintf("%d", r.SimCycles)
		}
		fmt.Fprintf(w, "%-24s | %6d %8d %8d | %9d %9s %10.1f | %8d %5d\n",
			r.Scheme, r.ElementsPerKS, r.XOFElements, r.MulCount,
			r.EstCycles, sim, r.CyclesPerElem, r.LUT, r.DSP)
	}
}

// RenderCountermeasures prints the future-scope countermeasure cost table.
func RenderCountermeasures(w io.Writer, rows []CountermeasureRow) {
	fmt.Fprintln(w, "FUTURE SCOPE (§VI) — fault/SCA countermeasure costs on PASTA-4 (ASIC 28nm)")
	fmt.Fprintf(w, "%-20s | %7s %7s | %9s %9s | %7s %6s\n",
		"Countermeasure", "cycles×", "area×", "block µs", "mm²", "faults", "SCA")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s | %7.2f %7.2f | %9.2f %9.3f | %7v %6v\n",
			r.Name, r.CycleFactor, r.AreaFactor, r.LatencyUS, r.AreaMM2, r.Detects, r.Masks)
	}
}

// RenderEnergy prints the platform energy comparison.
func RenderEnergy(w io.Writer, rows []area.EnergyReport) {
	fmt.Fprintln(w, "ENERGY — PASTA-4 block encryption across platforms (modeled power)")
	fmt.Fprintf(w, "%-12s | %9s %8s | %10s %12s\n", "Platform", "clock", "power W", "µJ/block", "µJ/element")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | %6.0f MHz %8.2f | %10.3f %12.4f\n",
			r.Platform, r.ClockHz/1e6, r.PowerW, r.BlockUJ, r.PerElementUJ)
	}
}

// RenderExpansion prints the communication-expansion comparison.
func RenderExpansion(w io.Writer, rows []ExpansionRow) {
	fmt.Fprintln(w, "COMMUNICATION — client→server traffic for the same payload (Sec. I / Fig. 1)")
	fmt.Fprintf(w, "%-28s | %8s %10s %10s | %10s %10s\n",
		"Scheme", "elems", "wire B", "B/elem", "expansion", "setup B")
	for _, r := range rows {
		setup := "-"
		if r.OneTimeBytes > 0 {
			setup = fmt.Sprintf("%d", r.OneTimeBytes)
		}
		fmt.Fprintf(w, "%-28s | %8d %10d %10.2f | %9.1f× %10s\n",
			r.Scheme, r.PayloadElems, r.WireBytes, r.BytesPerElem, r.Expansion, setup)
	}
}

// RenderBitwidth prints the bit-length comparison.
func RenderBitwidth(w io.Writer, rows []BitwidthRow) {
	fmt.Fprintln(w, "BITLENGTH COMPARISON (§IV-A ■) — PASTA-4 across modulus widths")
	fmt.Fprintf(w, "%4s %20s | %7s %8s | %8s %5s %8s | %8s %8s\n",
		"ω", "prime", "accept", "cycles", "LUT", "DSP", "mm²", "AT-FPGA", "AT-ASIC")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %20d | %7.3f %8d | %8d %5d %8.3f | %7.2f× %7.2f×\n",
			r.Omega, r.Prime, r.AcceptRate, r.SimCycles,
			r.LUT, r.DSP, r.ASICmm2, r.FPGAATScale, r.ASICATScale)
	}
	fmt.Fprintln(w, "note: acceptance = p/2^ω drives the Keccak demand; primes just above a")
	fmt.Fprintln(w, "power of two (ω=17,54,60) reject ≈half the samples, our ω=33 prime almost none.")
}

// RenderSoftware prints the measured keystream throughput rows. The
// header keeps the SOFTWARE tag because the software backend is the
// measurement this table exists for; rows name their backend so mixed
// -backend sweeps stay readable.
func RenderSoftware(w io.Writer, rows []SoftwareRow) {
	fmt.Fprintln(w, "SOFTWARE — measured keystream throughput on this host (lazy-reduction engine)")
	fmt.Fprintf(w, "%-10s %-7s %-8s %7s | %7s %8s | %12s %8s\n",
		"Backend", "Cipher", "Scheme", "workers", "blocks", "elems", "elems/s", "speedup")
	for _, r := range rows {
		name := r.Backend
		if name == "" {
			name = "software"
		}
		cn := r.Cipher
		if cn == "" {
			cn = "pasta"
		}
		fmt.Fprintf(w, "%-10s %-7s %-8s %7d | %7d %8d | %12.0f %7.2f×\n",
			name, cn, r.Scheme, r.Workers, r.Blocks, r.Elems, r.ElemsPerSec, r.Speedup)
	}
	fmt.Fprintln(w, "note: workers=1 is the sequential reference path; speedup is wall-clock")
	fmt.Fprintln(w, "and depends on available cores (GOMAXPROCS).")
}
