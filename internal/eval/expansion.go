package eval

import (
	"fmt"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// ExpansionRow quantifies the communication story of the paper's Sec. I
// and Fig. 1: FHE public-key encryption inflates the client's traffic by
// orders of magnitude ("often ranging from 10,000× to 100,000×"), while
// HHE sends symmetric ciphertexts with essentially no expansion. Sizes
// are *measured* from the actual wire encodings, not assumed.
type ExpansionRow struct {
	Scheme       string
	PayloadElems int
	PayloadBytes int // raw data, ω bits per element
	WireBytes    int // what actually crosses the link
	Expansion    float64
	OneTimeBytes int // per-session setup traffic (HHE key transport)
	BytesPerElem float64
}

// Expansion measures the client→server traffic for a payload of n
// elements under three strategies: plaintext (baseline), HHE (PASTA-4
// symmetric ciphertext; one-time homomorphically encrypted key), and
// direct FHE (batched BFV public-key ciphertexts at the prior works'
// N = 2^13, three ≈55-bit moduli).
func Expansion(n int) ([]ExpansionRow, error) {
	if n <= 0 {
		return nil, fmt.Errorf("eval: payload must be positive")
	}
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	w := par.Mod.Bits()
	payloadBytes := ff.PackedSize(n, w)

	// HHE: PASTA ciphertext is n elements at ω bits.
	hheWire := ff.PackedSize(n, w)

	// FHE: BFV at the PKE-baseline shape; each ciphertext batches up to
	// 2^12 elements (the prior works' packing).
	bfvPar, err := bfv.NewParams(8192, 55, 3, par.Mod.P())
	if err != nil {
		return nil, err
	}
	ctx, err := bfv.NewContext(bfvPar)
	if err != nil {
		return nil, err
	}
	ctBytes := ctx.CiphertextBytes()
	const slotsUsed = 1 << 12
	fheCts := (n + slotsUsed - 1) / slotsUsed
	fheWire := fheCts * ctBytes

	// HHE one-time setup: Enc(K) — 2t key elements, one BFV ciphertext
	// each under scalar encoding, or a single batched ciphertext; we
	// charge the batched (cheapest) variant.
	oneTime := ctBytes

	rows := []ExpansionRow{
		{
			Scheme: "plaintext", PayloadElems: n, PayloadBytes: payloadBytes,
			WireBytes: payloadBytes, Expansion: 1,
			BytesPerElem: float64(payloadBytes) / float64(n),
		},
		{
			Scheme: "HHE (PASTA-4, this work)", PayloadElems: n, PayloadBytes: payloadBytes,
			WireBytes: hheWire, Expansion: float64(hheWire) / float64(payloadBytes),
			OneTimeBytes: oneTime,
			BytesPerElem: float64(hheWire) / float64(n),
		},
		{
			Scheme: "FHE PKE (N=2^13, 3 moduli)", PayloadElems: n, PayloadBytes: payloadBytes,
			WireBytes: fheWire, Expansion: float64(fheWire) / float64(payloadBytes),
			BytesPerElem: float64(fheWire) / float64(n),
		},
	}
	return rows, nil
}
