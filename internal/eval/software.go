package eval

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// SoftwareRow is one measured data point of the pure-software keystream
// engine: unlike the modelled tables, these numbers come from actually
// running the cipher on the host CPU, so they quantify the software
// baseline the paper's accelerator is compared against (Table II's
// "CPU [9]" column) on *this* machine.
type SoftwareRow struct {
	Scheme      string
	Workers     int // goroutines used (1 = sequential reference path)
	Blocks      int
	Elems       int
	Elapsed     time.Duration
	ElemsPerSec float64
	Speedup     float64 // vs the workers=1 row of the same scheme
}

// SoftwareThroughput runs the keystream engine for PASTA-3 and PASTA-4
// (ω=17) over `blocks` CTR blocks, once on the sequential reference path
// and once with the parallel fan-out at `workers` goroutines (0 =
// GOMAXPROCS). Both paths produce bit-identical keystreams — the
// equivalence tests in internal/pasta pin that — so the comparison is
// purely about throughput.
func SoftwareThroughput(workers, blocks int) ([]SoftwareRow, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("eval: blocks must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []SoftwareRow
	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		par := pasta.MustParams(v, ff.P17)
		c, err := pasta.NewCipher(par, pasta.KeyFromSeed(par, "software-throughput"))
		if err != nil {
			return nil, err
		}
		// Warm the workspace pool and page in the code paths.
		c.KeyStream(0, 0)

		var base float64
		for _, w := range []int{1, workers} {
			cw := c.WithParallelism(w)
			start := time.Now()
			ks := cw.KeyStreamBlocks(1, 0, blocks)
			elapsed := time.Since(start)
			eps := float64(len(ks)) / elapsed.Seconds()
			if w == 1 {
				base = eps
			}
			rows = append(rows, SoftwareRow{
				Scheme:      v.String(),
				Workers:     w,
				Blocks:      blocks,
				Elems:       len(ks),
				Elapsed:     elapsed,
				ElemsPerSec: eps,
				Speedup:     eps / base,
			})
			if w == workers && workers == 1 {
				break // sequential row already covers it
			}
		}
	}
	return rows, nil
}
