package eval

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/backend"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// SoftwareRow is one measured data point of a keystream substrate:
// unlike the modelled tables, these numbers come from actually running
// the backend on the host, so they quantify the software baseline the
// paper's accelerator is compared against (Table II's "CPU [9]" column)
// on *this* machine — or, for the hardware-model backends, how fast the
// host can turn the simulation crank.
type SoftwareRow struct {
	Backend     string
	Scheme      string
	Workers     int // goroutines used (1 = sequential reference path)
	Blocks      int
	Elems       int
	Elapsed     time.Duration
	ElemsPerSec float64
	Speedup     float64 // vs the workers=1 row of the same scheme
}

// SoftwareThroughput runs the software backend for PASTA-3 and PASTA-4
// (ω=17) over `blocks` CTR blocks, once on the sequential reference path
// and once with the parallel fan-out at `workers` goroutines (0 =
// GOMAXPROCS). Both paths produce bit-identical keystreams — the
// differential suite in internal/backend pins that — so the comparison
// is purely about throughput.
func SoftwareThroughput(workers, blocks int) ([]SoftwareRow, error) {
	return Throughput(backend.NameSoftware, workers, blocks)
}

// Throughput is SoftwareThroughput generalized over the execution-
// backend registry: it measures keystream generation on any named
// substrate. The software backend is measured at 1 and `workers`
// goroutines; the hardware-model backends serialize on the single
// simulated peripheral, so they get one row at workers = 1.
func Throughput(backendName string, workers, blocks int) ([]SoftwareRow, error) {
	return ThroughputUnits(backendName, workers, blocks, 1)
}

// ThroughputUnits extends Throughput with an accelerator farm width:
// with accelUnits > 1 on the accel backend, the sweep compares the
// classic single peripheral against an N-way farm driven by N
// concurrent block requests, quantifying how accel-backed serving
// scales when the peripheral is replicated instead of shared.
func ThroughputUnits(backendName string, workers, blocks, accelUnits int) ([]SoftwareRow, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("eval: blocks must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workerSweep := []int{1, workers}
	farm := backendName == backend.NameAccel && accelUnits > 1
	if farm {
		workerSweep = []int{1, accelUnits}
	} else if backendName != backend.NameSoftware {
		workerSweep = []int{1}
	}
	ctx := context.Background()
	var rows []SoftwareRow
	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		var base float64
		for _, w := range workerSweep {
			cfg := backend.Config{
				Variant: v,
				KeySeed: "software-throughput",
				Workers: w,
			}
			if farm {
				cfg.AccelUnits = w // one in-flight block per farm unit
			}
			b, err := backend.Open(backendName, cfg)
			if err != nil {
				return nil, err
			}
			// Warm the workspace pools and page in the code paths.
			if err := b.KeyStreamInto(ctx, ff.NewVec(b.BlockSize()), 0, 0); err != nil {
				b.Close()
				return nil, err
			}
			start := time.Now()
			ks, err := b.KeyStreamBlocks(ctx, 1, 0, blocks)
			elapsed := time.Since(start)
			b.Close()
			if err != nil {
				return nil, err
			}
			eps := float64(len(ks)) / elapsed.Seconds()
			if w == 1 {
				base = eps
			}
			rows = append(rows, SoftwareRow{
				Backend:     backendName,
				Scheme:      v.String(),
				Workers:     w,
				Blocks:      blocks,
				Elems:       len(ks),
				Elapsed:     elapsed,
				ElemsPerSec: eps,
				Speedup:     eps / base,
			})
			if w == 1 && workerSweep[len(workerSweep)-1] == 1 {
				break // sequential row already covers it
			}
		}
	}
	return rows, nil
}
