package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
)

// SoftwareRow is one measured data point of a keystream substrate:
// unlike the modelled tables, these numbers come from actually running
// the backend on the host, so they quantify the software baseline the
// paper's accelerator is compared against (Table II's "CPU [9]" column)
// on *this* machine — or, for the hardware-model backends, how fast the
// host can turn the simulation crank.
type SoftwareRow struct {
	Backend     string
	Cipher      string // registry family name ("pasta", "hera", "masta")
	Scheme      string // instance shorthand within the family ("PASTA-3")
	Workers     int    // goroutines used (1 = sequential reference path)
	Blocks      int
	Elems       int
	Elapsed     time.Duration
	ElemsPerSec float64
	Speedup     float64 // vs the workers=1 row of the same scheme
}

// throughputInstance is one (cipher family, params) point of the sweep.
type throughputInstance struct {
	cipher string
	params cipher.Params
	scheme string
}

// throughputSweep expands cipher family names into measured instances:
// PASTA contributes both public variants, every other family its
// recommended default. nil/empty ciphers means every registered family —
// the MASTA-vs-PASTA-vs-HERA comparison the throughput table exists for.
func throughputSweep(ciphers []string) ([]throughputInstance, error) {
	if len(ciphers) == 0 {
		ciphers = cipher.Names()
	}
	var list []throughputInstance
	for _, name := range ciphers {
		if _, err := cipher.Open(name); err != nil {
			return nil, err
		}
		if name == backend.DefaultCipher {
			list = append(list,
				throughputInstance{name, cipher.Params{Variant: 3}, "PASTA-3"},
				throughputInstance{name, cipher.Params{Variant: 4}, "PASTA-4"})
			continue
		}
		list = append(list, throughputInstance{name, cipher.Params{}, strings.ToUpper(name)})
	}
	return list, nil
}

// SoftwareThroughput runs the software backend for PASTA-3 and PASTA-4
// (ω=17) over `blocks` CTR blocks, once on the sequential reference path
// and once with the parallel fan-out at `workers` goroutines (0 =
// GOMAXPROCS). Both paths produce bit-identical keystreams — the
// differential suite in internal/backend pins that — so the comparison
// is purely about throughput.
func SoftwareThroughput(workers, blocks int) ([]SoftwareRow, error) {
	return Throughput(backend.NameSoftware, workers, blocks)
}

// Throughput is SoftwareThroughput generalized over the execution-
// backend registry: it measures keystream generation on any named
// substrate. The software backend is measured at 1 and `workers`
// goroutines; the hardware-model backends serialize on the single
// simulated peripheral, so they get one row at workers = 1.
func Throughput(backendName string, workers, blocks int) ([]SoftwareRow, error) {
	return ThroughputUnits(backendName, workers, blocks, 1)
}

// ThroughputUnits extends Throughput with an accelerator farm width:
// with accelUnits > 1 on the accel backend, the sweep compares the
// classic single peripheral against an N-way farm driven by N
// concurrent block requests, quantifying how accel-backed serving
// scales when the peripheral is replicated instead of shared. Like
// Throughput it covers the PASTA family only; ThroughputCiphers sweeps
// the whole cipher registry.
func ThroughputUnits(backendName string, workers, blocks, accelUnits int) ([]SoftwareRow, error) {
	return ThroughputCiphers(backendName, []string{backend.DefaultCipher}, workers, blocks, accelUnits)
}

// ThroughputCiphers measures keystream throughput for the named cipher
// families (nil = every registered family) on one execution backend.
// Cipher/substrate pairs the capability probes refuse are skipped, so a
// full-registry sweep on the accel backend silently drops the
// software-only families rather than failing; if nothing at all can run
// on the substrate, that is an error.
func ThroughputCiphers(backendName string, ciphers []string, workers, blocks, accelUnits int) ([]SoftwareRow, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("eval: blocks must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sweep, err := throughputSweep(ciphers)
	if err != nil {
		return nil, err
	}
	workerSweep := []int{1, workers}
	farm := backendName == backend.NameAccel && accelUnits > 1
	if farm {
		workerSweep = []int{1, accelUnits}
	} else if backendName != backend.NameSoftware {
		workerSweep = []int{1}
	}
	ctx := context.Background()
	var rows []SoftwareRow
	skipped := 0
	for _, ti := range sweep {
		var base float64
		for _, w := range workerSweep {
			cfg := backend.Config{
				Cipher:       ti.cipher,
				CipherParams: ti.params,
				KeySeed:      "software-throughput",
				Workers:      w,
			}
			if farm {
				cfg.AccelUnits = w // one in-flight block per farm unit
			}
			b, err := backend.Open(backendName, cfg)
			if errors.Is(err, backend.ErrUnsupported) {
				skipped++
				break // the substrate cannot run this family; next instance
			}
			if err != nil {
				return nil, err
			}
			// Warm the workspace pools and page in the code paths.
			if err := b.KeyStreamInto(ctx, ff.NewVec(b.BlockSize()), 0, 0); err != nil {
				b.Close()
				return nil, err
			}
			start := time.Now()
			ks, err := b.KeyStreamBlocks(ctx, 1, 0, blocks)
			elapsed := time.Since(start)
			b.Close()
			if err != nil {
				return nil, err
			}
			eps := float64(len(ks)) / elapsed.Seconds()
			if w == 1 {
				base = eps
			}
			rows = append(rows, SoftwareRow{
				Backend:     backendName,
				Cipher:      ti.cipher,
				Scheme:      ti.scheme,
				Workers:     w,
				Blocks:      blocks,
				Elems:       len(ks),
				Elapsed:     elapsed,
				ElemsPerSec: eps,
				Speedup:     eps / base,
			})
			if w == 1 && workerSweep[len(workerSweep)-1] == 1 {
				break // sequential row already covers it
			}
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("eval: no requested cipher instance runs on the %s backend (%d skipped as unsupported)",
			backendName, skipped)
	}
	return rows, nil
}
