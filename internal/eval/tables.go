package eval

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
)

// Table1Row is one row of Table I (FPGA area).
type Table1Row struct {
	Scheme  string
	Omega   uint
	Cfg     area.Config
	Model   area.FPGA
	Paper   area.FPGA // reference values from the paper; zero if none
	UtilLUT float64
	UtilFF  float64
	UtilDSP float64
}

// Table1 regenerates Table I from the area model.
func Table1() []Table1Row {
	rows := []struct {
		scheme string
		cfg    area.Config
		paper  area.FPGA
	}{
		{"PASTA-3", area.Config{T: 128, W: 17}, area.FPGA{LUT: 65468, FF: 36275, DSP: 256}},
		{"PASTA-4", area.Config{T: 32, W: 17}, area.FPGA{LUT: 23736, FF: 11132, DSP: 64}},
		{"PASTA-4", area.Config{T: 32, W: 33}, area.FPGA{LUT: 42330, FF: 20783, DSP: 256}},
		{"PASTA-4", area.Config{T: 32, W: 54}, area.FPGA{LUT: 67324, FF: 32711, DSP: 576}},
	}
	out := make([]Table1Row, 0, len(rows))
	for _, r := range rows {
		util := area.UtilizationPercent(r.cfg)
		out = append(out, Table1Row{
			Scheme: r.scheme, Omega: r.cfg.W, Cfg: r.cfg,
			Model: area.Resources(r.cfg), Paper: r.paper,
			UtilLUT: util["LUT"], UtilFF: util["FF"], UtilDSP: util["DSP"],
		})
	}
	return out
}

// Table2Row is one row of Table II (performance of one block).
type Table2Row struct {
	Scheme      string
	Elements    int
	Cycles      int64   // our cycle-accurate model (nonce-averaged)
	CPUCycles   int64   // PASTA paper's Xeon cycles [9]
	FPGAus      float64 // at 75 MHz
	ASICus      float64 // at 1 GHz
	RISCVus     float64 // measured on the SoC co-simulation, per block
	PaperCycles int64
}

// Table2 regenerates Table II by running the accel backend (the
// cycle-accurate cryptoprocessor model, averaged over nonces) and the
// soc backend (RISC-V co-simulation), reading the modelled cycle counts
// from the backends' Stats() deltas.
func Table2(nonceSamples int) ([]Table2Row, error) {
	if nonceSamples < 1 {
		nonceSamples = 1
	}
	ctx := context.Background()
	var rows []Table2Row
	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		num := 3
		if v == pasta.Pasta4 {
			num = 4
		}
		cfg := backend.Config{CipherParams: cipher.Params{Variant: num}, KeySeed: "table2"}
		acc, err := backend.Open(backend.NameAccel, cfg)
		if err != nil {
			return nil, err
		}
		dst := ff.NewVec(acc.BlockSize())
		for n := 0; n < nonceSamples; n++ {
			if err := acc.KeyStreamInto(ctx, dst, uint64(n), 0); err != nil {
				acc.Close()
				return nil, err
			}
		}
		accStats := acc.Stats()
		acc.Close()
		cycles := accStats.AccelCycles / accStats.Blocks

		// SoC co-simulation: encrypt a few blocks, take per-block cycles.
		sc, err := backend.Open(backend.NameSoC, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := sc.Encrypt(ctx, 1, ff.NewVec(2*sc.BlockSize())); err != nil {
			sc.Close()
			return nil, err
		}
		socStats := sc.Stats()
		sc.Close()
		socPerBlock := socStats.CoreCycles / socStats.Blocks

		row := Table2Row{
			Scheme:   v.String(),
			Elements: sc.BlockSize(),
			Cycles:   cycles,
			FPGAus:   hw.Microseconds(cycles, hw.FPGAHz),
			ASICus:   hw.Microseconds(cycles, hw.ASICHz),
			RISCVus:  hw.Microseconds(socPerBlock, hw.RISCVHz),
		}
		if v == pasta.Pasta3 {
			row.CPUCycles = CPUCyclesPasta3
			row.PaperCycles = PaperResults.CyclesPasta3
		} else {
			row.CPUCycles = CPUCyclesPasta4
			row.PaperCycles = PaperResults.CyclesPasta4
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3Row is one row of Table III (PASTA-4 vs prior client accelerators).
type Table3Row struct {
	Ref       string
	Platform  string
	KLUT      float64
	KFF       float64
	DSP       int
	BRAM      float64
	EncrUS    float64
	PerElemUS float64
	Ours      bool
}

// Table3 regenerates Table III: literature rows plus this work's rows
// computed from the cycle model and area model.
func Table3(t2 []Table2Row) ([]Table3Row, error) {
	var p4 *Table2Row
	for i := range t2 {
		if t2[i].Elements == 32 {
			p4 = &t2[i]
		}
	}
	if p4 == nil {
		return nil, fmt.Errorf("eval: Table2 results missing PASTA-4 row")
	}
	var rows []Table3Row
	for _, w := range PriorWorks {
		if w.IsASIC {
			continue
		}
		rows = append(rows, Table3Row{
			Ref: w.Ref, Platform: w.Platform,
			KLUT: w.KLUT, KFF: w.KFF, DSP: w.DSP, BRAM: w.BRAM,
			EncrUS: w.EncrUS, PerElemUS: w.PerElementUS(),
		})
	}
	cfg := area.Config{T: 32, W: 17}
	res := area.Resources(cfg)
	rows = append(rows, Table3Row{
		Ref: "TW", Platform: "Artix-7",
		KLUT: float64(res.LUT) / 1000, KFF: float64(res.FF) / 1000,
		DSP: res.DSP, BRAM: 0,
		EncrUS: p4.FPGAus, PerElemUS: p4.FPGAus / 32, Ours: true,
	})
	for _, w := range PriorWorks {
		if !w.IsASIC {
			continue
		}
		rows = append(rows, Table3Row{
			Ref: w.Ref, Platform: w.Platform,
			EncrUS: w.EncrUS, PerElemUS: w.PerElementUS(),
		})
	}
	rows = append(rows,
		Table3Row{Ref: "TW", Platform: "7/28nm", EncrUS: p4.ASICus, PerElemUS: p4.ASICus / 32, Ours: true},
		Table3Row{Ref: "TW", Platform: "65/130nm (RISC-V SoC)", EncrUS: p4.RISCVus, PerElemUS: p4.RISCVus / 32, Ours: true},
	)
	return rows, nil
}

// Table3WithSoftware is Table3 plus a measured host-CPU row for the
// RLWE PKE baseline (the prior works' workload run on this repository's
// lazy-NTT substrate), so the software cost the paper's comparison
// implies is a measurement, not an assumption. sw = nil degrades to the
// plain table.
func Table3WithSoftware(t2 []Table2Row, sw *PKEBaseline) ([]Table3Row, error) {
	rows, err := Table3(t2)
	if err != nil || sw == nil {
		return rows, err
	}
	return append(rows, Table3Row{
		Ref:       "TW-SW",
		Platform:  fmt.Sprintf("host CPU (N=%d, %dq)", sw.N, sw.Moduli),
		EncrUS:    sw.EncryptUS,
		PerElemUS: sw.PerElemUS,
		Ours:      true,
	}), nil
}

// Fig7Data holds the module-wise area shares of Fig. 7.
type Fig7Data struct {
	FPGA map[string]float64 // % of LUTs, PASTA-3 ω=17
	ASIC map[string]float64 // % of mm², PASTA-4 ω=17 at 28nm
}

// Fig7 regenerates the two pies of Fig. 7.
func Fig7() (Fig7Data, error) {
	fpga := area.Shares(area.LUTBreakdown(area.Config{T: 128, W: 17}))
	asicBD, err := area.ASICBreakdown(area.Config{T: 32, W: 17}, area.Node28nm)
	if err != nil {
		return Fig7Data{}, err
	}
	return Fig7Data{FPGA: fpga, ASIC: area.Shares(asicBD)}, nil
}
