package eval

import "fmt"

// Resolution describes a video frame format of the surveillance
// application benchmark (Sec. V): grayscale, 8 bits per pixel.
type Resolution struct {
	Name          string
	Width, Height int
}

// Pixels returns the per-frame pixel (= element) count.
func (r Resolution) Pixels() int { return r.Width * r.Height }

// Resolutions evaluated in Fig. 8.
var Resolutions = []Resolution{
	{"QQVGA", 160, 120},
	{"QVGA", 320, 240},
	{"VGA", 640, 480},
}

// Bandwidths of the mid-band 5G link (Sec. V), in bytes per second.
const (
	MaxBandwidthBps = 112.5e6 // left plot of Fig. 8
	MinBandwidthBps = 12.5e6  // right plot of Fig. 8
)

// TWCiphertextBytesPerBlock is the size of one PASTA-4 ciphertext block
// as stated in Sec. V: 32 elements at ~33 bits = 132 bytes. (With the
// 17-bit modulus the block would be 68 bytes; the paper's number is kept
// for comparability.)
const TWCiphertextBytesPerBlock = 132

// TWBlockElements is the PASTA-4 block size.
const TWBlockElements = 32

// FrameLink models sending encrypted frames of one resolution over a
// bandwidth-limited link for one scheme.
type FrameLink struct {
	Scheme         string
	BytesPerFrame  float64
	EncryptUSFrame float64 // client encryption latency per frame
}

// TWFrameLink returns this work's link model: one PASTA block per 32
// pixels, encryption at the given per-block latency (Table II column).
func TWFrameLink(r Resolution, usPerBlock float64) FrameLink {
	blocks := (r.Pixels() + TWBlockElements - 1) / TWBlockElements
	return FrameLink{
		Scheme:         "TW",
		BytesPerFrame:  float64(blocks * TWCiphertextBytesPerBlock),
		EncryptUSFrame: float64(blocks) * usPerBlock,
	}
}

// RISEFrameLink returns the RISE [19] baseline link model using the
// paper-stated ciphertexts-per-frame packing.
func RISEFrameLink(r Resolution) (FrameLink, error) {
	ctn, ok := RISE.CtPerFrame[r.Name]
	if !ok {
		return FrameLink{}, fmt.Errorf("eval: no RISE packing for %s", r.Name)
	}
	return FrameLink{
		Scheme:         "RISE",
		BytesPerFrame:  float64(ctn * RISE.CiphertextBytes),
		EncryptUSFrame: float64(ctn) * RISE.EncryptLatencyUS,
	}, nil
}

// FramesPerSecond returns the achievable frame rate over a link of the
// given bandwidth. With includeEncryption the client's encryption
// throughput also caps the rate (the paper's Fig. 8 is bandwidth-only).
func (l FrameLink) FramesPerSecond(bandwidthBps float64, includeEncryption bool) float64 {
	fps := bandwidthBps / l.BytesPerFrame
	if includeEncryption && l.EncryptUSFrame > 0 {
		encFPS := 1e6 / l.EncryptUSFrame
		if encFPS < fps {
			fps = encFPS
		}
	}
	return fps
}

// Fig8Row is one bar of Fig. 8.
type Fig8Row struct {
	Resolution string
	Bandwidth  float64
	TWFPS      float64
	RISEFPS    float64
	Advantage  float64 // TW/RISE
	RISEBelow1 bool    // "RISE cannot send a frame at this bandwidth"
}

// Fig8 regenerates both plots of Fig. 8. usPerBlock is this work's
// per-block client encryption latency (e.g. the ASIC 1.59 µs).
func Fig8(usPerBlock float64, includeEncryption bool) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, bw := range []float64{MaxBandwidthBps, MinBandwidthBps} {
		for _, res := range Resolutions {
			tw := TWFrameLink(res, usPerBlock)
			rise, err := RISEFrameLink(res)
			if err != nil {
				return nil, err
			}
			twFPS := tw.FramesPerSecond(bw, includeEncryption)
			riseFPS := rise.FramesPerSecond(bw, includeEncryption)
			rows = append(rows, Fig8Row{
				Resolution: res.Name,
				Bandwidth:  bw,
				TWFPS:      twFPS,
				RISEFPS:    riseFPS,
				Advantage:  twFPS / riseFPS,
				RISEBelow1: riseFPS < 1,
			})
		}
	}
	return rows, nil
}
