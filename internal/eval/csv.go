package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/ff"
	"repro/internal/hw/area"
)

// CSV writers: machine-readable versions of every experiment, for
// artifact-style post-processing and plotting.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

// Table1CSV writes Table I.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme, strconv.Itoa(int(r.Omega)),
			strconv.Itoa(r.Model.LUT), strconv.Itoa(r.Model.FF), strconv.Itoa(r.Model.DSP),
			strconv.Itoa(r.Paper.LUT), strconv.Itoa(r.Paper.FF), strconv.Itoa(r.Paper.DSP),
		})
	}
	return writeCSV(w, []string{"scheme", "omega", "lut_model", "ff_model", "dsp_model", "lut_paper", "ff_paper", "dsp_paper"}, out)
}

// Table2CSV writes Table II.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme, strconv.Itoa(r.Elements), d(r.CPUCycles),
			d(r.Cycles), d(r.PaperCycles),
			f(r.FPGAus), f(r.ASICus), f(r.RISCVus),
		})
	}
	return writeCSV(w, []string{"scheme", "elements", "cpu_cycles", "cycles_model", "cycles_paper", "fpga_us", "asic_us", "riscv_us"}, out)
}

// Table3CSV writes Table III.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Ref, r.Platform, f(r.KLUT), f(r.KFF), strconv.Itoa(r.DSP), f(r.BRAM),
			f(r.EncrUS), f(r.PerElemUS), strconv.FormatBool(r.Ours),
		})
	}
	return writeCSV(w, []string{"work", "platform", "klut", "kff", "dsp", "bram", "encr_us", "us_per_elem", "this_work"}, out)
}

// Fig7CSV writes both area-share pies.
func Fig7CSV(w io.Writer, data Fig7Data) error {
	var out [][]string
	for _, pie := range []struct {
		name   string
		shares map[string]float64
	}{{"fpga", data.FPGA}, {"asic", data.ASIC}} {
		for _, unit := range area.SortedUnits(pie.shares) {
			out = append(out, []string{pie.name, unit, f(pie.shares[unit])})
		}
	}
	return writeCSV(w, []string{"platform", "unit", "share_percent"}, out)
}

// Fig8CSV writes the frame-rate series.
func Fig8CSV(w io.Writer, rows []Fig8Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Resolution, f(r.Bandwidth / 1e6), f(r.TWFPS), f(r.RISEFPS), f(r.Advantage),
		})
	}
	return writeCSV(w, []string{"resolution", "bandwidth_mbps", "tw_fps", "rise_fps", "advantage"}, out)
}

// SchemesCSV writes the future-scope scheme comparison.
func SchemesCSV(w io.Writer, rows []SchemeRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme, strconv.Itoa(r.ElementsPerKS), strconv.Itoa(r.XOFElements),
			strconv.Itoa(r.MulCount), d(r.EstCycles), d(r.SimCycles), f(r.CyclesPerElem),
		})
	}
	return writeCSV(w, []string{"scheme", "elements", "xof_elements", "mod_muls", "est_cycles", "sim_cycles", "cycles_per_elem"}, out)
}

// CountermeasuresCSV writes the countermeasure cost table.
func CountermeasuresCSV(w io.Writer, rows []CountermeasureRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name, f(r.CycleFactor), f(r.AreaFactor), f(r.LatencyUS), f(r.AreaMM2),
			strconv.FormatBool(r.Detects), strconv.FormatBool(r.Masks),
		})
	}
	return writeCSV(w, []string{"countermeasure", "cycle_factor", "area_factor", "latency_us", "area_mm2", "detects_faults", "masks_sca"}, out)
}

// ClaimsCSV writes the claim audit as key/paper/model triples.
func ClaimsCSV(w io.Writer, c Claims) error {
	rows := [][]string{
		{"pke_muls", "524288", strconv.Itoa(c.PKEMuls)},
		{"pasta3_muls", "262144", strconv.Itoa(c.Pasta3Muls)},
		{"pasta3_bulk_factor", "32", f(c.Pasta3BulkFactor)},
		{"cycle_reduction_p3", "3439", f(c.CycleReductionP3)},
		{"cycle_reduction_p4", "857", f(c.CycleReductionP4)},
		{"wall_speedup_p3", "171", f(c.WallSpeedupP3)},
		{"wall_speedup_p4", "43", f(c.WallSpeedupP4)},
		{"speedup_vs_rise", "97", f(c.SpeedupVsRISE)},
		{"p3_time_advantage_pct", "22", f(100 * c.P3TimeAdvantage)},
		{"p3_area_ratio", "3", f(c.P3AreaRatio)},
	}
	return writeCSV(w, []string{"claim", "paper", "model"}, rows)
}

// WriteAllCSV regenerates every experiment and writes one CSV per table/
// figure through the provided opener (typically creating files in a dir).
func WriteAllCSV(open func(name string) (io.WriteCloser, error), nonceSamples int) error {
	t2, err := Table2(nonceSamples)
	if err != nil {
		return err
	}
	t3, err := Table3(t2)
	if err != nil {
		return err
	}
	f7, err := Fig7()
	if err != nil {
		return err
	}
	f8, err := Fig8(1.59, false)
	if err != nil {
		return err
	}
	schemes, err := SchemeComparison(ff.P17)
	if err != nil {
		return err
	}
	cms, err := CountermeasureCosts(PaperResults.CyclesPasta4)
	if err != nil {
		return err
	}
	bw, err := BitwidthStudy()
	if err != nil {
		return err
	}
	en, err := EnergyRows(t2)
	if err != nil {
		return err
	}
	exp, err := Expansion(1 << 12)
	if err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"table1.csv", func(w io.Writer) error { return Table1CSV(w, Table1()) }},
		{"table2.csv", func(w io.Writer) error { return Table2CSV(w, t2) }},
		{"table3.csv", func(w io.Writer) error { return Table3CSV(w, t3) }},
		{"fig7.csv", func(w io.Writer) error { return Fig7CSV(w, f7) }},
		{"fig8.csv", func(w io.Writer) error { return Fig8CSV(w, f8) }},
		{"claims.csv", func(w io.Writer) error { return ClaimsCSV(w, ComputeClaims(t2)) }},
		{"schemes.csv", func(w io.Writer) error { return SchemesCSV(w, schemes) }},
		{"countermeasures.csv", func(w io.Writer) error { return CountermeasuresCSV(w, cms) }},
		{"bitwidth.csv", func(w io.Writer) error { return BitwidthCSV(w, bw) }},
		{"energy.csv", func(w io.Writer) error { return EnergyCSV(w, en) }},
		{"expansion.csv", func(w io.Writer) error { return ExpansionCSV(w, exp) }},
	}
	for _, item := range writers {
		wc, err := open(item.name)
		if err != nil {
			return err
		}
		if err := item.fn(wc); err != nil {
			wc.Close()
			return fmt.Errorf("eval: writing %s: %w", item.name, err)
		}
		if err := wc.Close(); err != nil {
			return err
		}
	}
	return nil
}

// BitwidthCSV writes the bitlength comparison.
func BitwidthCSV(w io.Writer, rows []BitwidthRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(int(r.Omega)), strconv.FormatUint(r.Prime, 10), f(r.AcceptRate),
			d(r.SimCycles), strconv.Itoa(r.LUT), strconv.Itoa(r.DSP),
			f(r.ASICmm2), f(r.FPGAATScale), f(r.ASICATScale),
		})
	}
	return writeCSV(w, []string{"omega", "prime", "accept_rate", "sim_cycles", "lut", "dsp", "asic_mm2", "at_fpga", "at_asic"}, out)
}

// EnergyCSV writes the platform energy comparison.
func EnergyCSV(w io.Writer, rows []area.EnergyReport) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Platform, f(r.ClockHz), f(r.PowerW), f(r.BlockUJ), f(r.PerElementUJ)})
	}
	return writeCSV(w, []string{"platform", "clock_hz", "power_w", "uj_per_block", "uj_per_element"}, out)
}

// ExpansionCSV writes the communication-expansion measurement.
func ExpansionCSV(w io.Writer, rows []ExpansionRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Scheme, strconv.Itoa(r.PayloadElems), strconv.Itoa(r.WireBytes),
			f(r.BytesPerElem), f(r.Expansion), strconv.Itoa(r.OneTimeBytes),
		})
	}
	return writeCSV(w, []string{"scheme", "payload_elems", "wire_bytes", "bytes_per_elem", "expansion", "setup_bytes"}, out)
}
