package eval

import (
	"sort"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
)

// BitwidthRow reproduces the paper's "Bitlength Comparison" paragraph
// (Sec. IV-A ■): how cycles, area, and the area–time product move with
// the modulus width ω for PASTA-4.
type BitwidthRow struct {
	Omega       uint
	Prime       uint64
	AcceptRate  float64 // rejection-sampling acceptance p / 2^ω
	SimCycles   int64   // cycle-accurate model, one block
	LUT         int
	DSP         int
	ASICmm2     float64
	FPGAATScale float64 // (LUT × FPGA-µs) normalized to ω = 17
	ASICATScale float64 // (mm² × ASIC-µs) normalized to ω = 17
}

// BitwidthStudy runs the accelerator model and the area model across the
// standard moduli. The paper states "the performance stays the same for
// different bit lengths"; the cycle model shows this holds only when the
// prime sits just above a power of two (acceptance ≈ 0.5, as for 65537) —
// a prime close to 2^ω (like our 33-bit Solinas prime) nearly eliminates
// rejection and cuts the Keccak demand almost in half. The paper's
// area–time claim (area more than doubles per width step) reproduces
// directly.
func BitwidthStudy() ([]BitwidthRow, error) {
	widths := make([]uint, 0, len(ff.StandardModuli))
	for w := range ff.StandardModuli {
		widths = append(widths, w)
	}
	sort.Slice(widths, func(i, j int) bool { return widths[i] < widths[j] })

	rows := make([]BitwidthRow, 0, len(widths))
	for _, w := range widths {
		mod := ff.StandardModuli[w]
		par := pasta.MustParams(pasta.Pasta4, mod)
		acc, err := hw.NewAccelerator(par, pasta.KeyFromSeed(par, "bitwidth"))
		if err != nil {
			return nil, err
		}
		res, err := acc.KeyStream(1, 0)
		if err != nil {
			return nil, err
		}
		cfg := area.Config{T: par.T, W: w}
		mm2, err := area.ASICmm2(cfg, area.Node28nm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BitwidthRow{
			Omega:      w,
			Prime:      mod.P(),
			AcceptRate: mod.AcceptRate(),
			SimCycles:  res.Stats.Cycles,
			LUT:        area.LUT(cfg),
			DSP:        area.DSP(cfg),
			ASICmm2:    mm2,
		})
	}
	// Normalize area–time to the 17-bit row.
	var base *BitwidthRow
	for i := range rows {
		if rows[i].Omega == 17 {
			base = &rows[i]
		}
	}
	if base != nil {
		baseFPGA := float64(base.LUT) * hw.Microseconds(base.SimCycles, hw.FPGAHz)
		baseASIC := base.ASICmm2 * hw.Microseconds(base.SimCycles, hw.ASICHz)
		for i := range rows {
			r := &rows[i]
			r.FPGAATScale = float64(r.LUT) * hw.Microseconds(r.SimCycles, hw.FPGAHz) / baseFPGA
			r.ASICATScale = r.ASICmm2 * hw.Microseconds(r.SimCycles, hw.ASICHz) / baseASIC
		}
	}
	return rows, nil
}
