package eval

import (
	"repro/internal/ff"
	"repro/internal/hw/area"
	"repro/internal/pasta"
)

// Claims quantifies the numbered textual claims of the paper from the
// reproduction's own models.
type Claims struct {
	// Sec. I-A: multiplication counts per encryption.
	PKEMuls        int // NTT-based RLWE client encryption, N = 2^13, 3 moduli × 3 NTTs
	Pasta3Muls     int // PASTA-3 permutation
	Pasta4Muls     int
	PKEElements    int // elements encrypted per operation (2^12)
	Pasta3Elements int // 2^7

	// Sec. I-A: for 2^12 elements, PASTA-3 needs 2^5 more encryptions ⇒
	// ≈32× more multiplications than one PKE encryption.
	Pasta3BulkFactor float64

	// Sec. IV-C: cycle-count reduction vs CPU [9] and wall-clock speedup
	// at the ≈20× clock disadvantage.
	CycleReductionP3 float64
	CycleReductionP4 float64
	WallSpeedupP3    float64
	WallSpeedupP4    float64

	// Sec. IV-C ❷: per-element speedup vs the prior PKE SoC [19] on ASIC.
	SpeedupVsRISE float64

	// Sec. IV-B: PASTA-3 vs PASTA-4 — per-element time ratio (PASTA-3
	// is ≈22% faster per element) and area ratio (≈3×).
	P3PerElemCycles float64
	P4PerElemCycles float64
	P3TimeAdvantage float64 // 1 - P3/P4 per-element time
	P3AreaRatio     float64

	// Sec. IV-C ❶: ML-inference scenario — encrypting 32 coefficients:
	// FHE client needs the full PKE latency, we need one PASTA-4 block.
	FHE32CoeffUS float64
	TW32CoeffUS  float64
}

// ComputeClaims derives all claims from Table II results and the models.
func ComputeClaims(t2 []Table2Row) Claims {
	var p3, p4 Table2Row
	for _, r := range t2 {
		if r.Elements == 128 {
			p3 = r
		} else {
			p4 = r
		}
	}

	// NTT multiplication count: (N/2)·log2 N per transform, three
	// transforms per modulus, three moduli (Sec. I-A).
	const n = 8192
	logN := 13
	nttMuls := n / 2 * logN
	pkeMuls := 3 * 3 * nttMuls

	c := Claims{
		PKEMuls:        pkeMuls,
		Pasta3Muls:     pasta.MustParams(pasta.Pasta3, ff.P17).MulCount(),
		Pasta4Muls:     pasta.MustParams(pasta.Pasta4, ff.P17).MulCount(),
		PKEElements:    1 << 12,
		Pasta3Elements: 1 << 7,

		CycleReductionP3: float64(CPUCyclesPasta3) / float64(p3.Cycles),
		CycleReductionP4: float64(CPUCyclesPasta4) / float64(p4.Cycles),

		SpeedupVsRISE: riseTable3PerElemUS() / (p4.ASICus / 32),

		P3PerElemCycles: float64(p3.Cycles) / 128,
		P4PerElemCycles: float64(p4.Cycles) / 32,

		FHE32CoeffUS: FHEClientEncryptUS,
		TW32CoeffUS:  p4.FPGAus,
	}
	c.WallSpeedupP3 = c.CycleReductionP3 / ClockRatioCPUToSoC
	c.WallSpeedupP4 = c.CycleReductionP4 / ClockRatioCPUToSoC
	c.Pasta3BulkFactor = float64(c.Pasta3Muls) * float64(c.PKEElements) / float64(c.Pasta3Elements) / float64(c.PKEMuls)
	c.P3TimeAdvantage = 1 - c.P3PerElemCycles/c.P4PerElemCycles
	c.P3AreaRatio = float64(area.LUT(area.Config{T: 128, W: 17})) /
		float64(area.LUT(area.Config{T: 32, W: 17}))
	return c
}

// riseTable3PerElemUS returns the per-element latency of the prior
// RISC-V PKE SoC [19] as reported in Table III (4.88 µs/element).
func riseTable3PerElemUS() float64 {
	for _, w := range PriorWorks {
		if w.Ref == "[19]" {
			return w.PerElementUS()
		}
	}
	return 0
}
