// Package eval regenerates every table and figure of the paper's
// evaluation section from the reproduction's own models, alongside the
// literature constants the paper compares against. One generator per
// experiment; cmd/hhebench renders them.
package eval

// CPU cycle counts for PASTA software encryption of one block reported by
// the PASTA designers [9] on an Intel Xeon E5-2699 v4 (Table II).
const (
	CPUCyclesPasta3 = 17_041_380 // 128 elements
	CPUCyclesPasta4 = 1_363_339  // 32 elements
)

// ClockRatioCPUToSoC is the ≈20× clock-frequency gap the paper uses when
// converting its cycle-count reduction into wall-clock speedup (2.2 GHz
// CPU vs the 100 MHz SoC).
const ClockRatioCPUToSoC = 20.0

// PriorWork is one comparison row of Table III.
type PriorWork struct {
	Ref      string // citation tag
	Platform string
	KLUT     float64 // 0 = not reported
	KFF      float64
	DSP      int
	BRAM     float64
	EncrUS   float64 // one encryption, µs
	Elements int     // elements packed per encryption
	IsSoC    bool    // RISC-V SoC rather than standalone accelerator
	IsASIC   bool
}

// PerElementUS returns the per-element encryption latency.
func (w PriorWork) PerElementUS() float64 { return w.EncrUS / float64(w.Elements) }

// PriorWorks are the literature rows of Table III.
var PriorWorks = []PriorWork{
	{Ref: "[21]", Platform: "Zynq US+", EncrUS: 7790, Elements: 4096},
	{Ref: "[22]", Platform: "AlveoU250", KLUT: 1179, KFF: 1036, DSP: 12288, BRAM: 828.5, EncrUS: 16900, Elements: 32768},
	{Ref: "[18]", Platform: "Kintex-7", KLUT: 20.7, KFF: 17.6, DSP: 100, BRAM: 82.5, EncrUS: 1870, Elements: 4096},
	{Ref: "[20]", Platform: "12nm", EncrUS: 110_000, Elements: 4096, IsASIC: true},
	{Ref: "[19]", Platform: "12nm (RISC-V SoC)", EncrUS: 20_000, Elements: 4096, IsSoC: true, IsASIC: true},
}

// RISE are the parameters of the closest prior SoC [19], used as the
// baseline of the application benchmark (Fig. 8).
var RISE = struct {
	CiphertextBytes  int     // 2^14 coefficients · 2 polys · 390 bits
	SlotsPerCt       int     // coefficients packed per ciphertext
	EncryptLatencyUS float64 // one encryption on the 12nm SoC
	// Ciphertexts needed per video frame, as stated in Sec. V.
	CtPerFrame map[string]int
}{
	CiphertextBytes:  1_500_000,
	SlotsPerCt:       1 << 14,
	EncryptLatencyUS: 20_000,
	CtPerFrame:       map[string]int{"QQVGA": 1, "QVGA": 3, "VGA": 12},
}

// FHEClientEncryptUS is the FHE public-key encryption latency the paper
// quotes for the comparison "ML inference encrypting 32 coefficients":
// FHE needs the same ≈1,884 µs for anything up to 2^12 coefficients.
const FHEClientEncryptUS = 1884.0

// PaperResults records the paper's own measured numbers (Table II) so the
// harness can print paper-vs-model side by side.
var PaperResults = struct {
	CyclesPasta3, CyclesPasta4         int64
	FPGAUSPasta3, FPGAUSPasta4         float64
	ASICUSPasta3, ASICUSPasta4         float64
	RISCVUSPasta3, RISCVUSPasta4       float64
	SpeedupCyclesMin, SpeedupCyclesMax float64
	SpeedupWallMin, SpeedupWallMax     float64
	SpeedupVsPKEAccel                  float64
}{
	CyclesPasta3: 4955, CyclesPasta4: 1591,
	FPGAUSPasta3: 66.1, FPGAUSPasta4: 21.2,
	ASICUSPasta3: 4.96, ASICUSPasta4: 1.59,
	RISCVUSPasta3: 45.5, RISCVUSPasta4: 15.9,
	SpeedupCyclesMin: 857, SpeedupCyclesMax: 3439,
	SpeedupWallMin: 43, SpeedupWallMax: 171,
	SpeedupVsPKEAccel: 97,
}
