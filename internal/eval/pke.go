package eval

import (
	"fmt"
	"time"

	"repro/internal/bfv"
	"repro/internal/rlwe"
)

// PKEBaseline is one measured data point of the RLWE/BFV public-key
// encryption substrate — the client-side workload of every prior
// accelerator in Table III (N = 2^13, three ≈30–60-bit moduli, three NTTs
// per modulus; Sec. I-A). Unlike the literature constants in PriorWorks,
// these numbers come from running the substrate on the host CPU, so
// Table III can show the measured software PKE cost next to the modeled
// hardware rows.
type PKEBaseline struct {
	N       int
	Moduli  int
	QBits   uint
	Workers int // RNS limb fan-out used (0 = GOMAXPROCS)
	Iters   int
	Setup   time.Duration // context + key generation
	Encrypt time.Duration // one public-key encryption (averaged)

	EncryptUS float64 // Encrypt in µs
	PerElemUS float64 // per packed element (N/2 slots, the 2^12 of Sec. I-A)
}

// MeasurePKEBaseline times public-key encryption on the lazy, pooled
// fast path (EncryptInto, zero steady-state allocations when workers=1).
func MeasurePKEBaseline(n int, qBits uint, nQ, iters, workers int) (PKEBaseline, error) {
	if iters <= 0 {
		return PKEBaseline{}, fmt.Errorf("eval: iters must be positive")
	}
	setupStart := time.Now()
	par, err := bfv.NewParams(n, qBits, nQ, 65537)
	if err != nil {
		return PKEBaseline{}, err
	}
	ctx, err := bfv.NewContext(par)
	if err != nil {
		return PKEBaseline{}, err
	}
	ctx = ctx.WithParallelism(workers)
	g := rlwe.NewPRNG("pke-baseline", []byte{1})
	_, pk, _ := ctx.KeyGen(g)
	setup := time.Since(setupStart)

	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i) % par.T
	}
	ct := ctx.NewCiphertext()
	ctx.EncryptInto(pk, pt, g, ct) // warm the scratch pool
	start := time.Now()
	for i := 0; i < iters; i++ {
		ctx.EncryptInto(pk, pt, g, ct)
	}
	per := time.Since(start) / time.Duration(iters)

	return PKEBaseline{
		N: n, Moduli: nQ, QBits: qBits, Workers: workers, Iters: iters,
		Setup: setup, Encrypt: per,
		EncryptUS: float64(per.Nanoseconds()) / 1e3,
		PerElemUS: float64(per.Nanoseconds()) / 1e3 / float64(n/2),
	}, nil
}
