package eval

import (
	"fmt"

	"math"

	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
)

// SchemeRow compares HHE-enabling ciphers after hardware realization —
// the cross-scheme analysis the paper's Sec. VI proposes as future scope.
type SchemeRow struct {
	Scheme        string
	ElementsPerKS int   // keystream elements per permutation
	XOFElements   int   // pseudo-random demand per block
	MulCount      int   // modular multiplications per block
	EstCycles     int64 // analytic XOF-bound cycle estimate
	SimCycles     int64 // cycle-accurate simulation (0 if no HW model)
	CyclesPerElem float64
	LUT           int // modeled FPGA area
	DSP           int
	XOFBound      bool // whether the XOF remains the bottleneck
}

// EstimateXOFCycles is the analytic cycle model of the paper's Sec. IV-B
// applied to an arbitrary demand: absorb + first permutation (25 cycles),
// then 26 cycles per 21 squeezed words (parallel-squeeze design), with
// rejection sampling inflating the word count by 1/acceptance, plus the
// trailing datapath operations.
func EstimateXOFCycles(demand int, mod ff.Modulus, tailCycles int) int64 {
	words := int(math.Ceil(float64(demand) / mod.AcceptRate()))
	batches := (words + 20) / 21
	return int64(25 + 26*batches + tailCycles)
}

// SchemeComparison builds the future-scope table for the given modulus.
// The PASTA rows additionally carry the cycle-accurate simulation result
// (validating the analytic estimate); HERA's fixed linear layers need no
// matrix engine, so its row is analytic.
func SchemeComparison(mod ff.Modulus) ([]SchemeRow, error) {
	var rows []SchemeRow

	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		par := pasta.MustParams(v, mod)
		key := pasta.KeyFromSeed(par, "schemes")
		acc, err := hw.NewAccelerator(par, key)
		if err != nil {
			return nil, err
		}
		res, err := acc.KeyStream(1, 0)
		if err != nil {
			return nil, err
		}
		est := EstimateXOFCycles(par.XOFElements(), mod, par.T+15)
		cfg := area.Config{T: par.T, W: mod.Bits()}
		rows = append(rows, SchemeRow{
			Scheme:        par.Variant.String(),
			ElementsPerKS: par.T,
			XOFElements:   par.XOFElements(),
			MulCount:      par.MulCount(),
			EstCycles:     est,
			SimCycles:     res.Stats.Cycles,
			CyclesPerElem: float64(res.Stats.Cycles) / float64(par.T),
			LUT:           area.LUT(cfg),
			DSP:           area.DSP(cfg),
			XOFBound:      true,
		})
	}

	hp := hera.MustParams(5, mod)
	hacc, err := hw.NewHeraAccelerator(hp, hera.KeyFromSeed(hp, "schemes"))
	if err != nil {
		return nil, err
	}
	hres, err := hacc.KeyStream(1, 0)
	if err != nil {
		return nil, err
	}
	// HERA's datapath tail: the finalization's doubled linear layer and
	// key-schedule multiplies, ≈3 vector ops of 16 elements.
	est := EstimateXOFCycles(hp.XOFElements(), mod, 3*hera.StateSize)
	rows = append(rows, SchemeRow{
		Scheme:        "HERA-5 (reconstruction)",
		ElementsPerKS: hera.StateSize,
		XOFElements:   hp.XOFElements(),
		MulCount:      hp.MulCount(),
		EstCycles:     est,
		SimCycles:     hres.Stats.Cycles,
		CyclesPerElem: float64(hres.Stats.Cycles) / float64(hera.StateSize),
		LUT:           area.HeraLUT(mod.Bits()),
		DSP:           area.HeraDSP(mod.Bits()),
		XOFBound:      true,
	})
	return rows, nil
}

// CountermeasureRow is one row of the Sec. VI countermeasure cost table.
type CountermeasureRow struct {
	Name        string
	CycleFactor float64
	AreaFactor  float64
	LatencyUS   float64 // PASTA-4 block on ASIC with the countermeasure
	AreaMM2     float64 // 28nm with the countermeasure
	Detects     bool
	Masks       bool
}

// CountermeasureCosts models the paper's future-scope question: what do
// fault/side-channel countermeasures cost on the HHE cryptoprocessor
// (where only the key-dependent units need protection) versus on a PKE
// accelerator (where the whole datapath is secret-dependent)?
func CountermeasureCosts(baseCycles int64) ([]CountermeasureRow, error) {
	cfg := area.Config{T: 32, W: 17}
	baseArea, err := area.ASICmm2(cfg, area.Node28nm)
	if err != nil {
		return nil, err
	}
	// Private share: matrix engines + adders + mix (everything except the
	// public XOF/DataGen) from the ASIC breakdown.
	bd, err := area.ASICBreakdown(cfg, area.Node28nm)
	if err != nil {
		return nil, err
	}
	private := 1 - bd[area.UnitDataGen]/baseArea

	var rows []CountermeasureRow
	for _, cm := range []hw.Countermeasure{hw.NoCountermeasure, hw.TemporalRedundancy, hw.SpatialRedundancy, hw.Masking} {
		cost := hw.CostOf(cm, private)
		rows = append(rows, CountermeasureRow{
			Name:        cm.String(),
			CycleFactor: cost.CycleFactor,
			AreaFactor:  cost.AreaFactor,
			LatencyUS:   hw.Microseconds(int64(float64(baseCycles)*cost.CycleFactor), hw.ASICHz),
			AreaMM2:     baseArea * cost.AreaFactor,
			Detects:     cost.DetectsFaults,
			Masks:       cost.MasksSCA,
		})
	}
	return rows, nil
}

// EnergyRows regenerates the energy-efficiency comparison implied by
// Sec. IV-C ❶ ("delivering similar performance while running at 2–3×
// lower clock frequency, thus lowering the overall energy consumption"):
// energy per block and per element across the paper's three platforms.
func EnergyRows(t2 []Table2Row) ([]area.EnergyReport, error) {
	for _, r := range t2 {
		if r.Elements == 32 {
			return area.Energies(r.Cycles, r.Elements)
		}
	}
	return nil, fmt.Errorf("eval: Table2 results missing PASTA-4 row")
}
