package cli

import (
	"errors"
	"flag"
	"testing"

	"repro/internal/backend"
	"repro/internal/pasta"
)

func TestParseVariant(t *testing.T) {
	if v, err := ParseVariant("pasta3"); err != nil || v != pasta.Pasta3 {
		t.Fatalf("pasta3 = %v, %v", v, err)
	}
	if v, err := ParseVariant("pasta4"); err != nil || v != pasta.Pasta4 {
		t.Fatalf("pasta4 = %v, %v", v, err)
	}
	if _, err := ParseVariant("pasta9"); err == nil {
		t.Fatal("pasta9 accepted")
	}
}

func TestRegisterCommonDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterCommon(fs, backend.NameAccel)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Backend != backend.NameAccel || c.Metrics != "" {
		t.Fatalf("defaults = %+v", c)
	}
	if err := fs.Parse([]string{"-backend", "soc", "-metrics", "-"}); err != nil {
		t.Fatal(err)
	}
	if c.Backend != "soc" || c.Metrics != "-" {
		t.Fatalf("parsed = %+v", c)
	}
	// No metrics requested: Finish is a no-op.
	if err := (&Common{}).Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenPasta(t *testing.T) {
	b, err := OpenPasta(backend.NameSoftware, "pasta4", 17, "cli-test", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.BlockSize() != 32 {
		t.Fatalf("block size = %d", b.BlockSize())
	}
	if _, err := OpenPasta("fpga", "pasta4", 17, "k", 0, 1); !errors.Is(err, backend.ErrUnknownBackend) {
		t.Fatalf("unknown backend error = %v", err)
	}
	if _, err := OpenPasta(backend.NameSoftware, "pasta9", 17, "k", 0, 1); err == nil {
		t.Fatal("bad variant accepted")
	}
	if _, err := OpenPasta(backend.NameSoftware, "pasta4", 17, "", 0, 1); err == nil {
		t.Fatal("empty key seed accepted")
	}
}

func TestParseSize(t *testing.T) {
	good := []struct {
		in   string
		want uint64
	}{
		{"", 0}, {"0", 0}, {"1024", 1024}, {"  42 ", 42},
		{"4K", 4 << 10}, {"4k", 4 << 10}, {"4KB", 4 << 10}, {"4KiB", 4 << 10},
		{"256M", 256 << 20}, {"256MiB", 256 << 20}, {"256 MiB", 256 << 20},
		{"2G", 2 << 30}, {"2gib", 2 << 30}, {"17B", 17},
	}
	for _, tc := range good {
		got, err := ParseSize(tc.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"x", "-1", "4X", "MiB", "1.5G", "99999999999999999999G"} {
		if v, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, v)
		}
	}
}
