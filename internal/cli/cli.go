// Package cli holds the flag plumbing shared by the command-line
// front-ends (pastacli, hwsim, socsim, hhebench, hheserver). Every tool
// selects an execution backend the same way (-backend, validated against
// the registry in internal/backend), selects a cipher family the same
// way (-cipher, validated against the registry in internal/cipher) and
// writes the same observability snapshot (-metrics), so the boilerplate
// lives here once instead of five times.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/pasta"
)

// Common are the flags every CLI shares.
type Common struct {
	Backend    string // execution backend name (registry key)
	Cipher     string // cipher family name ("" = tool default, usually pasta)
	Metrics    string // metrics snapshot path ("" = off, "-" = stdout)
	AccelUnits int    // accel-backend farm width (1 = single peripheral)
}

// RegisterCommon installs the shared -backend, -cipher, -metrics and
// -accel-units flags on fs (pass flag.CommandLine from a main package).
// defaultBackend picks the substrate the tool historically ran on, so
// plain invocations keep their old behaviour.
func RegisterCommon(fs *flag.FlagSet, defaultBackend string) *Common {
	c := &Common{}
	fs.StringVar(&c.Backend, "backend", defaultBackend,
		"execution backend: "+strings.Join(backend.Names(), ", "))
	fs.StringVar(&c.Cipher, "cipher", "",
		"cipher family: "+strings.Join(cipher.Names(), ", ")+" (default pasta)")
	fs.StringVar(&c.Metrics, "metrics", "",
		`write a JSON metrics snapshot to this file after the run ("-" = stdout)`)
	fs.IntVar(&c.AccelUnits, "accel-units", 1,
		"accel backend: number of modelled accelerator units in the farm")
	return c
}

// CipherName resolves the -cipher flag: "" means the tool default
// (PASTA, backend.DefaultCipher).
func (c *Common) CipherName() string {
	if c.Cipher == "" {
		return backend.DefaultCipher
	}
	return c.Cipher
}

// IsPasta reports whether the selected cipher is the PASTA family —
// the gate for PASTA-only conveniences like the -variant flag and the
// SoC direct-driver path.
func (c *Common) IsPasta() bool { return c.CipherName() == backend.DefaultCipher }

// ParseVariant maps the CLI spelling of a PASTA variant to its typed
// value.
func ParseVariant(name string) (pasta.Variant, error) {
	switch name {
	case "pasta3":
		return pasta.Pasta3, nil
	case "pasta4":
		return pasta.Pasta4, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want pasta3 or pasta4)", name)
}

// CipherParams builds the registry-facing cipher parameters from the
// CLI spelling: the -cipher family plus, for PASTA, the -variant flag
// (other families have no variant axis and reject a non-default
// -variant rather than silently ignoring it).
func CipherParams(cipherName, variant string, width uint) (cipher.Params, error) {
	p := cipher.Params{Width: width}
	if cipherName == backend.DefaultCipher {
		v, err := ParseVariant(variant)
		if err != nil {
			return cipher.Params{}, err
		}
		p.Variant = 4
		if v == pasta.Pasta3 {
			p.Variant = 3
		}
	} else if variant != "" && variant != "pasta4" {
		return cipher.Params{}, fmt.Errorf("-variant applies to the pasta family only (got -cipher %s)", cipherName)
	}
	return p, nil
}

// OpenCipher opens the named backend for any registered cipher family
// with a seed-derived key — the configuration every CLI builds.
// accelUnits sizes the accel backend's farm (≤ 1 = single unit; other
// backends ignore it). Unknown cipher names and cipher/substrate pairs
// the capability probes refuse surface the registry's typed errors.
func OpenCipher(backendName, cipherName string, p cipher.Params, keySeed string, workers, accelUnits int) (backend.BlockCipher, error) {
	if keySeed == "" {
		return nil, fmt.Errorf("-key-seed is required")
	}
	return backend.Open(backendName, backend.Config{
		Cipher:       cipherName,
		CipherParams: p,
		KeySeed:      keySeed,
		Workers:      workers,
		AccelUnits:   accelUnits,
	})
}

// OpenPasta opens the named backend for a standard PASTA instance with
// a seed-derived key. Kept for PASTA-only callers; tools with a -cipher
// flag go through OpenCipher.
func OpenPasta(backendName, variant string, width uint, keySeed string, workers, accelUnits int) (backend.BlockCipher, error) {
	p, err := CipherParams(backend.DefaultCipher, variant, width)
	if err != nil {
		return nil, err
	}
	return OpenCipher(backendName, backend.DefaultCipher, p, keySeed, workers, accelUnits)
}

// ReferenceEngine resolves a cipher instance and binds its sequential
// software engine to the seed-derived key — the oracle the CLIs verify
// backend output against, built purely through the registry.
func ReferenceEngine(cipherName string, p cipher.Params, keySeed string) (cipher.Instance, cipher.BlockEngine, error) {
	spec, err := cipher.Open(cipherName)
	if err != nil {
		return cipher.Instance{}, nil, err
	}
	inst, err := spec.Resolve(p)
	if err != nil {
		return cipher.Instance{}, nil, err
	}
	eng, err := spec.NewEngine(inst, spec.KeyFromSeed(inst, keySeed))
	if err != nil {
		return cipher.Instance{}, nil, err
	}
	return inst, eng, nil
}

// ReferenceKeystream runs the registry oracle for count blocks starting
// at block `first` and returns the concatenated keystream.
func ReferenceKeystream(cipherName string, p cipher.Params, keySeed string, nonce, first uint64, count int) (ff.Vec, error) {
	inst, eng, err := ReferenceEngine(cipherName, p, keySeed)
	if err != nil {
		return nil, err
	}
	out := ff.NewVec(count * inst.Block)
	for b := 0; b < count; b++ {
		if err := eng.KeyStreamInto(out[b*inst.Block:(b+1)*inst.Block], nonce, first+uint64(b)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Finish writes the metrics snapshot if one was requested. Call it after
// the tool's main work, whether or not that work succeeded — a failed
// run's counters are exactly what you want to inspect.
func (c *Common) Finish() error {
	if c.Metrics == "" {
		return nil
	}
	return obs.WriteSnapshot(obs.Default(), c.Metrics)
}

// Exit prints err prefixed with the program name and terminates with a
// non-zero status.
func Exit(prog string, err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}

// ParseSize parses a human-readable byte size for flags such as
// hheserver's -max-eval-keys: a non-negative integer with an optional
// binary-power suffix K/M/G (case-insensitive; "KiB"/"MB"-style spellings
// accepted, all meaning 1024-based units). "" and "0" both mean zero,
// which flags interpret as "use the built-in default".
func ParseSize(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	var shift uint
	for _, suf := range []struct {
		text  string
		shift uint
	}{{"KIB", 10}, {"MIB", 20}, {"GIB", 30}, {"KB", 10}, {"MB", 20}, {"GB", 30}, {"K", 10}, {"M", 20}, {"G", 30}, {"B", 0}} {
		if strings.HasSuffix(upper, suf.text) {
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.text))
			shift = suf.shift
			break
		}
	}
	n, err := strconv.ParseUint(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cli: invalid size %q (want e.g. 1048576, 256MiB, 4G)", s)
	}
	if shift > 0 && n > (^uint64(0))>>shift {
		return 0, fmt.Errorf("cli: size %q overflows", s)
	}
	return n << shift, nil
}
