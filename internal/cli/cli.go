// Package cli holds the flag plumbing shared by the command-line
// front-ends (pastacli, hwsim, socsim, hhebench). Every tool selects an
// execution backend the same way (-backend, validated against the
// registry in internal/backend) and writes the same observability
// snapshot (-metrics), so the boilerplate lives here once instead of
// four times.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/pasta"
)

// Common are the flags every CLI shares.
type Common struct {
	Backend    string // execution backend name (registry key)
	Metrics    string // metrics snapshot path ("" = off, "-" = stdout)
	AccelUnits int    // accel-backend farm width (1 = single peripheral)
}

// RegisterCommon installs the shared -backend, -metrics and -accel-units
// flags on fs (pass flag.CommandLine from a main package). defaultBackend
// picks the substrate the tool historically ran on, so plain invocations
// keep their old behaviour.
func RegisterCommon(fs *flag.FlagSet, defaultBackend string) *Common {
	c := &Common{}
	fs.StringVar(&c.Backend, "backend", defaultBackend,
		"execution backend: "+strings.Join(backend.Names(), ", "))
	fs.StringVar(&c.Metrics, "metrics", "",
		`write a JSON metrics snapshot to this file after the run ("-" = stdout)`)
	fs.IntVar(&c.AccelUnits, "accel-units", 1,
		"accel backend: number of modelled accelerator units in the farm")
	return c
}

// ParseVariant maps the CLI spelling of a PASTA variant to its typed
// value.
func ParseVariant(name string) (pasta.Variant, error) {
	switch name {
	case "pasta3":
		return pasta.Pasta3, nil
	case "pasta4":
		return pasta.Pasta4, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want pasta3 or pasta4)", name)
}

// OpenPasta opens the named backend for a standard PASTA instance with
// a seed-derived key — the configuration every CLI builds. accelUnits
// sizes the accel backend's farm (≤ 1 = single unit; other backends
// ignore it).
func OpenPasta(backendName, variant string, width uint, keySeed string, workers, accelUnits int) (backend.BlockCipher, error) {
	v, err := ParseVariant(variant)
	if err != nil {
		return nil, err
	}
	if keySeed == "" {
		return nil, fmt.Errorf("-key-seed is required")
	}
	return backend.Open(backendName, backend.Config{
		Variant:    v,
		Width:      width,
		KeySeed:    keySeed,
		Workers:    workers,
		AccelUnits: accelUnits,
	})
}

// Finish writes the metrics snapshot if one was requested. Call it after
// the tool's main work, whether or not that work succeeded — a failed
// run's counters are exactly what you want to inspect.
func (c *Common) Finish() error {
	if c.Metrics == "" {
		return nil
	}
	return obs.WriteSnapshot(obs.Default(), c.Metrics)
}

// Exit prints err prefixed with the program name and terminates with a
// non-zero status.
func Exit(prog string, err error) {
	fmt.Fprintln(os.Stderr, prog+":", err)
	os.Exit(1)
}
