package xof

import (
	"math"
	"testing"

	"repro/internal/ff"
)

func TestNextInRange(t *testing.T) {
	for _, m := range []ff.Modulus{ff.P17, ff.P33, ff.P54} {
		s := NewSampler(m, 1, 2)
		for i := 0; i < 5000; i++ {
			if v := s.Next(); v >= m.P() {
				t.Fatalf("%v: sample %d out of range", m, v)
			}
		}
	}
}

func TestNextNonzero(t *testing.T) {
	s := NewSampler(ff.P17, 7, 0)
	for i := 0; i < 5000; i++ {
		if v := s.NextNonzero(); v == 0 {
			t.Fatal("NextNonzero returned 0")
		}
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	a := NewSampler(ff.P17, 42, 7)
	b := NewSampler(ff.P17, 42, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := NewSampler(ff.P17, 42, 7)
	b := NewSampler(ff.P17, 42, 8) // counter differs
	c := NewSampler(ff.P17, 43, 7) // nonce differs
	same := 0
	for i := 0; i < 100; i++ {
		av := a.Next()
		if av == b.Next() {
			same++
		}
		if av == c.Next() {
			same++
		}
	}
	if same > 20 { // expected ≈ 200/65537
		t.Fatalf("streams with different seeds agree too often: %d/200", same)
	}
}

// TestRejectionRateMatchesPaper: for p = 65537 the paper reports ≈2×
// rejection (half the masked 17-bit words are ≥ p).
func TestRejectionRateMatchesPaper(t *testing.T) {
	s := NewSampler(ff.P17, 3, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		s.Next()
	}
	rate := float64(s.WordsDrawn) / float64(n)
	if math.Abs(rate-2.0) > 0.1 {
		t.Fatalf("words per accepted sample = %.3f, want ≈2.0", rate)
	}
}

func TestVector(t *testing.T) {
	s := NewSampler(ff.P17, 5, 5)
	v := s.Vector(128, true)
	if len(v) != 128 {
		t.Fatalf("len = %d", len(v))
	}
	if v[0] == 0 {
		t.Fatal("leading element is zero despite leadingNonzero")
	}
	// Replaying the stream without the nonzero constraint must give the
	// same values whenever the first draw happened to be nonzero already.
	s2 := NewSampler(ff.P17, 5, 5)
	v2 := s2.Vector(128, false)
	if v2[0] != 0 && !v.Equal(v2) {
		t.Fatal("leadingNonzero changed the stream even though first draw was nonzero")
	}
}

// TestKeccakPermutationCount: PASTA-4 needs 640 elements; the paper
// reports ≈60 permutations on average after 2× rejection. Averaged over
// many nonces our count must land in that neighbourhood.
func TestKeccakPermutationCount(t *testing.T) {
	total := 0
	const trials = 50
	for n := uint64(0); n < trials; n++ {
		s := NewSampler(ff.P17, n, 0)
		for i := 0; i < 640; i++ {
			s.Next()
		}
		total += s.KeccakPermutations()
	}
	avg := float64(total) / trials
	if avg < 55 || avg > 68 {
		t.Fatalf("avg Keccak permutations for 640 samples = %.1f, want ≈61 (paper: 60)", avg)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse 16-bucket chi-square over [0, p) to catch gross bias.
	m := ff.P17
	s := NewSampler(m, 99, 1)
	const n = 64000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[s.Next()*16/m.P()]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof; 99.9th percentile ≈ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square = %.1f, distribution looks biased", chi2)
	}
}

func BenchmarkSamplerNext(b *testing.B) {
	s := NewSampler(ff.P17, 1, 1)
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func TestKeccakPermutationsEdgeCases(t *testing.T) {
	s := NewSampler(ff.P17, 0, 0)
	if got := s.KeccakPermutations(); got != 0 {
		t.Fatalf("fresh sampler permutations = %d, want 0", got)
	}
	s.Next()
	if got := s.KeccakPermutations(); got != 1 {
		t.Fatalf("after one draw: %d, want 1", got)
	}
	if s.Modulus().P() != ff.P17.P() {
		t.Fatal("Modulus accessor broken")
	}
}

func TestRawStreamMatchesSamplerWords(t *testing.T) {
	// The raw stream must be the unmasked word sequence the sampler
	// consumes: replaying it and applying the mask/rejection by hand must
	// yield the sampler's outputs.
	raw := NewRawStream(5, 9)
	s := NewSampler(ff.P17, 5, 9)
	for i := 0; i < 200; i++ {
		want := s.Next()
		for {
			v := raw.NextWord() & ff.P17.Mask()
			if v < ff.P17.P() {
				if v != want {
					t.Fatalf("sample %d: raw replay %d != sampler %d", i, v, want)
				}
				break
			}
		}
	}
}

func TestNewSamplerBytesDomainSeparated(t *testing.T) {
	a := NewSamplerBytes(ff.P17, []byte("seed-a"))
	b := NewSamplerBytes(ff.P17, []byte("seed-b"))
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("distinct byte seeds agree %d/100 times", same)
	}
}
