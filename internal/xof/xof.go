// Package xof provides the seeded extendable-output function and
// rejection sampler that PASTA uses to derive its public, per-block
// pseudo-random data (matrix first rows and round constants).
//
// Normative generation procedure for this reproduction (documented here
// because the paper defers to the PASTA reference code):
//
//  1. SHAKE128 is seeded with the 8-byte big-endian nonce followed by the
//     8-byte big-endian block counter. Nonce and counter are public
//     (Fig. 2 of the paper), so the whole stream is public.
//  2. Field elements are drawn by squeezing one 64-bit little-endian word,
//     masking it to ceil(log2 p) bits, and accepting it iff it is < p.
//     For p = 65537 the mask is 17 bits and the acceptance rate is ≈ 1/2 —
//     the "≈2× rejection sampling" of Sec. IV-B.
//  3. When an element must be nonzero (the first entry α₀ of a matrix
//     seed row, required for invertibility of the sequential matrix
//     construction), zero draws are additionally rejected.
//
// The sampler keeps draw/rejection statistics so the cycle-accurate
// hardware model and the analytical cycle audit can be validated against
// the functional reference.
package xof

import (
	"encoding/binary"

	"repro/internal/ff"
	"repro/internal/keccak"
)

// Sampler produces uniform field elements from a seeded SHAKE128 stream
// via rejection sampling.
type Sampler struct {
	shake *keccak.Shake
	mod   ff.Modulus
	mask  uint64

	// Statistics (exported for cycle-audit validation).
	WordsDrawn int // total 64-bit words squeezed
	Rejected   int // words discarded by rejection (incl. zero-rejects)
}

// NewSampler seeds SHAKE128 with nonce‖counter (big-endian) and returns a
// sampler for the modulus of params.
func NewSampler(mod ff.Modulus, nonce, counter uint64) *Sampler {
	d := keccak.NewShake128()
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[0:8], nonce)
	binary.BigEndian.PutUint64(seed[8:16], counter)
	_, _ = d.Write(seed[:])
	return &Sampler{shake: d, mod: mod, mask: mod.Mask()}
}

// Reseed resets the sampler in place to the nonce‖counter seeding of
// NewSampler, reusing the underlying Keccak state. Together with
// VectorInto this lets a pooled sampler serve an unbounded stream of
// keystream blocks without allocating.
func (s *Sampler) Reseed(nonce, counter uint64) {
	s.shake.Reset()
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[0:8], nonce)
	binary.BigEndian.PutUint64(seed[8:16], counter)
	_, _ = s.shake.Write(seed[:])
	s.WordsDrawn = 0
	s.Rejected = 0
}

// NewSamplerBytes seeds SHAKE128 with an arbitrary byte seed. Used for
// key derivation in tests and examples; the cipher's public randomness
// always uses NewSampler (nonce‖counter).
func NewSamplerBytes(mod ff.Modulus, seed []byte) *Sampler {
	d := keccak.NewShake128()
	_, _ = d.Write(seed)
	return &Sampler{shake: d, mod: mod, mask: mod.Mask()}
}

// RawStream exposes the unmasked 64-bit SHAKE128 word stream under the
// nonce‖counter seeding convention; the hardware model's Keccak unit is
// validated against it word by word.
type RawStream struct {
	d *keccak.Shake
}

// NewRawStream seeds the stream identically to NewSampler.
func NewRawStream(nonce, counter uint64) *RawStream {
	d := keccak.NewShake128()
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[0:8], nonce)
	binary.BigEndian.PutUint64(seed[8:16], counter)
	_, _ = d.Write(seed[:])
	return &RawStream{d: d}
}

// NextWord squeezes the next 64-bit word.
func (r *RawStream) NextWord() uint64 { return r.d.NextWord() }

// Next returns the next uniform element of [0, p).
func (s *Sampler) Next() uint64 {
	for {
		s.WordsDrawn++
		v := s.shake.NextWord() & s.mask
		if v < s.mod.P() {
			return v
		}
		s.Rejected++
	}
}

// NextNonzero returns the next uniform element of [1, p); used for the
// leading matrix-seed element α₀ which must be nonzero for the sequential
// invertible-matrix construction.
func (s *Sampler) NextNonzero() uint64 {
	for {
		v := s.Next()
		if v != 0 {
			return v
		}
		s.Rejected++
	}
}

// Vector fills a fresh length-n vector with uniform elements. If
// leadingNonzero is set, element 0 is drawn from [1, p).
func (s *Sampler) Vector(n int, leadingNonzero bool) ff.Vec {
	v := ff.NewVec(n)
	s.VectorInto(v, leadingNonzero)
	return v
}

// VectorInto fills v with uniform elements, drawing in the same order as
// Vector, without allocating.
func (s *Sampler) VectorInto(v ff.Vec, leadingNonzero bool) {
	for i := range v {
		if i == 0 && leadingNonzero {
			v[i] = s.NextNonzero()
		} else {
			v[i] = s.Next()
		}
	}
}

// Modulus returns the sampler's field modulus.
func (s *Sampler) Modulus() ff.Modulus { return s.mod }

// KeccakPermutations returns the number of Keccak-f permutations consumed
// so far: one initial permutation absorbs the 16-byte seed, then one per
// 21 squeezed words. This is the count the paper's cycle budget is built
// on (Sec. IV-B: "a minimum of 31 Keccak permutation rounds", "on average
// 60" after rejection for PASTA-4).
func (s *Sampler) KeccakPermutations() int {
	if s.WordsDrawn == 0 {
		return 0
	}
	return 1 + (s.WordsDrawn-1)/21
}
