// Package keccak implements the Keccak-f[1600] permutation and the
// SHAKE128/SHAKE256 extendable-output functions (FIPS 202) from scratch.
//
// PASTA relies on SHAKE128 as its pseudo-random generator for the affine
// layers; the paper identifies the 24-round Keccak permutation as the
// throughput bottleneck of the whole cryptoprocessor (Sec. IV-B). This
// package provides the functional reference; the cycle-accurate hardware
// model of the double-buffered Keccak unit lives in internal/hw.
package keccak

import "math/bits"

// roundConstants are the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
	0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rhoOffsets[x][y] is the rotation amount of lane (x, y) in the rho step.
var rhoOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// State is the 1600-bit Keccak state as 25 lanes; lane (x, y) is
// State[x + 5y], matching the FIPS 202 mapping.
type State [25]uint64

// Permute applies the full 24-round Keccak-f[1600] permutation in place.
func (s *State) Permute() {
	for round := 0; round < 24; round++ {
		s.Round(round)
	}
}

// Round applies a single Keccak-f round (theta, rho, pi, chi, iota) in
// place. Exposed so the hardware model can step one round per clock cycle,
// exactly as the paper's 24cc-per-permutation unit does.
func (s *State) Round(round int) {
	// theta
	var c [5]uint64
	for x := 0; x < 5; x++ {
		c[x] = s[x] ^ s[x+5] ^ s[x+10] ^ s[x+15] ^ s[x+20]
	}
	var d [5]uint64
	for x := 0; x < 5; x++ {
		d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
	}
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			s[x+5*y] ^= d[x]
		}
	}
	// rho and pi
	var b State
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(s[x+5*y], int(rhoOffsets[x][y]))
		}
	}
	// chi
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			s[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
		}
	}
	// iota
	s[0] ^= roundConstants[round]
}

// Rate constants in bytes for the SHAKE instances.
const (
	Rate128 = 168 // SHAKE128: 1344-bit rate = 21 64-bit words (the paper's "21 words per permutation")
	Rate256 = 136 // SHAKE256: 1088-bit rate
)

// domainShake is the FIPS 202 domain-separation suffix for SHAKE (1111).
const domainShake = 0x1F

// Shake is an incremental SHAKE sponge. Create with NewShake128 or
// NewShake256, Write the input, then Read any amount of output.
type Shake struct {
	state     State
	rate      int // bytes
	buf       [Rate128]byte
	bufLen    int // bytes buffered for absorb / available for squeeze
	squeezing bool
	readPos   int
}

// NewShake128 returns a SHAKE128 instance.
func NewShake128() *Shake { return &Shake{rate: Rate128} }

// NewShake256 returns a SHAKE256 instance.
func NewShake256() *Shake { return &Shake{rate: Rate256} }

// Write absorbs data into the sponge. It must not be called after Read.
func (d *Shake) Write(p []byte) (int, error) {
	if d.squeezing {
		panic("keccak: Write after Read")
	}
	n := len(p)
	for len(p) > 0 {
		take := d.rate - d.bufLen
		if take > len(p) {
			take = len(p)
		}
		copy(d.buf[d.bufLen:], p[:take])
		d.bufLen += take
		p = p[take:]
		if d.bufLen == d.rate {
			d.absorbBlock()
		}
	}
	return n, nil
}

func (d *Shake) absorbBlock() {
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	d.state.Permute()
	d.bufLen = 0
}

// pad applies the SHAKE padding and the final permutation, switching the
// sponge into squeezing mode.
func (d *Shake) pad() {
	for i := d.bufLen; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.bufLen] ^= domainShake
	d.buf[d.rate-1] ^= 0x80
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	d.state.Permute()
	d.squeezing = true
	d.readPos = 0
}

// Read squeezes len(p) bytes of output. The first call finalizes the input.
func (d *Shake) Read(p []byte) (int, error) {
	if !d.squeezing {
		d.pad()
	}
	n := len(p)
	for len(p) > 0 {
		if d.readPos == d.rate {
			d.state.Permute()
			d.readPos = 0
		}
		avail := d.rate - d.readPos
		take := avail
		if take > len(p) {
			take = len(p)
		}
		for i := 0; i < take; i++ {
			p[i] = byte(d.state[(d.readPos+i)/8] >> (8 * uint((d.readPos+i)%8)))
		}
		d.readPos += take
		p = p[take:]
	}
	return n, nil
}

// NextWord squeezes one 64-bit little-endian word — the granularity at
// which the hardware XOF unit emits data ("one 64-bit coefficient per
// clock cycle").
func (d *Shake) NextWord() uint64 {
	var b [8]byte
	_, _ = d.Read(b[:])
	return le64(b[:])
}

// Sum128 is a one-shot SHAKE128 of data producing outLen bytes.
func Sum128(data []byte, outLen int) []byte {
	d := NewShake128()
	_, _ = d.Write(data)
	out := make([]byte, outLen)
	_, _ = d.Read(out)
	return out
}

// Sum256 is a one-shot SHAKE256 of data producing outLen bytes.
func Sum256(data []byte, outLen int) []byte {
	d := NewShake256()
	_, _ = d.Write(data)
	out := make([]byte, outLen)
	_, _ = d.Read(out)
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
