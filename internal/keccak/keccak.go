// Package keccak implements the Keccak-f[1600] permutation and the
// SHAKE128/SHAKE256 extendable-output functions (FIPS 202) from scratch.
//
// PASTA relies on SHAKE128 as its pseudo-random generator for the affine
// layers; the paper identifies the 24-round Keccak permutation as the
// throughput bottleneck of the whole cryptoprocessor (Sec. IV-B). This
// package provides the functional reference; the cycle-accurate hardware
// model of the double-buffered Keccak unit lives in internal/hw.
package keccak

import "math/bits"

// roundConstants are the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
	0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rhoOffsets[x][y] is the rotation amount of lane (x, y) in the rho step.
// The unrolled Round body below is generated from this table; it is kept
// as the normative reference for the constants.
var rhoOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// State is the 1600-bit Keccak state as 25 lanes; lane (x, y) is
// State[x + 5y], matching the FIPS 202 mapping.
type State [25]uint64

// Permute applies the full 24-round Keccak-f[1600] permutation in place.
// The round body is inlined into the loop (rather than calling Round 24
// times) so the compiler keeps the theta/chi temporaries in registers
// across rounds, and the whole computation runs on a local copy of the
// state: every lane access is a constant index into a non-escaping local
// array, which the compiler scalarizes, where loads/stores through the
// receiver pointer would hit memory in every round. The permutation
// dominates keystream wall time.
func (s *State) Permute() {
	a := *s
	var b State
	for round := 0; round < 24; round++ {
		// theta
		c0 := a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20]
		c1 := a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21]
		c2 := a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22]
		c3 := a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23]
		c4 := a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24]
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		// rho and pi fused with theta's state update
		b[0] = a[0] ^ d0
		b[16] = bits.RotateLeft64(a[5]^d0, 36)
		b[7] = bits.RotateLeft64(a[10]^d0, 3)
		b[23] = bits.RotateLeft64(a[15]^d0, 41)
		b[14] = bits.RotateLeft64(a[20]^d0, 18)
		b[10] = bits.RotateLeft64(a[1]^d1, 1)
		b[1] = bits.RotateLeft64(a[6]^d1, 44)
		b[17] = bits.RotateLeft64(a[11]^d1, 10)
		b[8] = bits.RotateLeft64(a[16]^d1, 45)
		b[24] = bits.RotateLeft64(a[21]^d1, 2)
		b[20] = bits.RotateLeft64(a[2]^d2, 62)
		b[11] = bits.RotateLeft64(a[7]^d2, 6)
		b[2] = bits.RotateLeft64(a[12]^d2, 43)
		b[18] = bits.RotateLeft64(a[17]^d2, 15)
		b[9] = bits.RotateLeft64(a[22]^d2, 61)
		b[5] = bits.RotateLeft64(a[3]^d3, 28)
		b[21] = bits.RotateLeft64(a[8]^d3, 55)
		b[12] = bits.RotateLeft64(a[13]^d3, 25)
		b[3] = bits.RotateLeft64(a[18]^d3, 21)
		b[19] = bits.RotateLeft64(a[23]^d3, 56)
		b[15] = bits.RotateLeft64(a[4]^d4, 27)
		b[6] = bits.RotateLeft64(a[9]^d4, 20)
		b[22] = bits.RotateLeft64(a[14]^d4, 39)
		b[13] = bits.RotateLeft64(a[19]^d4, 8)
		b[4] = bits.RotateLeft64(a[24]^d4, 14)
		// chi
		a[0] = b[0] ^ (^b[1] & b[2])
		a[1] = b[1] ^ (^b[2] & b[3])
		a[2] = b[2] ^ (^b[3] & b[4])
		a[3] = b[3] ^ (^b[4] & b[0])
		a[4] = b[4] ^ (^b[0] & b[1])
		a[5] = b[5] ^ (^b[6] & b[7])
		a[6] = b[6] ^ (^b[7] & b[8])
		a[7] = b[7] ^ (^b[8] & b[9])
		a[8] = b[8] ^ (^b[9] & b[5])
		a[9] = b[9] ^ (^b[5] & b[6])
		a[10] = b[10] ^ (^b[11] & b[12])
		a[11] = b[11] ^ (^b[12] & b[13])
		a[12] = b[12] ^ (^b[13] & b[14])
		a[13] = b[13] ^ (^b[14] & b[10])
		a[14] = b[14] ^ (^b[10] & b[11])
		a[15] = b[15] ^ (^b[16] & b[17])
		a[16] = b[16] ^ (^b[17] & b[18])
		a[17] = b[17] ^ (^b[18] & b[19])
		a[18] = b[18] ^ (^b[19] & b[15])
		a[19] = b[19] ^ (^b[15] & b[16])
		a[20] = b[20] ^ (^b[21] & b[22])
		a[21] = b[21] ^ (^b[22] & b[23])
		a[22] = b[22] ^ (^b[23] & b[24])
		a[23] = b[23] ^ (^b[24] & b[20])
		a[24] = b[24] ^ (^b[20] & b[21])
		// iota
		a[0] ^= roundConstants[round]
	}
	*s = a
}

// Round applies a single Keccak-f round (theta, rho, pi, chi, iota) in
// place. Exposed so the hardware model can step one round per clock cycle,
// exactly as the paper's 24cc-per-permutation unit does. The steps are
// fully unrolled (constant indices, no modular index arithmetic): SHAKE is
// the throughput bottleneck of the whole datapath (Sec. IV-B), in software
// no less than in the paper's hardware.
func (s *State) Round(round int) {
	// theta
	c0 := s[0] ^ s[5] ^ s[10] ^ s[15] ^ s[20]
	c1 := s[1] ^ s[6] ^ s[11] ^ s[16] ^ s[21]
	c2 := s[2] ^ s[7] ^ s[12] ^ s[17] ^ s[22]
	c3 := s[3] ^ s[8] ^ s[13] ^ s[18] ^ s[23]
	c4 := s[4] ^ s[9] ^ s[14] ^ s[19] ^ s[24]
	d0 := c4 ^ bits.RotateLeft64(c1, 1)
	d1 := c0 ^ bits.RotateLeft64(c2, 1)
	d2 := c1 ^ bits.RotateLeft64(c3, 1)
	d3 := c2 ^ bits.RotateLeft64(c4, 1)
	d4 := c3 ^ bits.RotateLeft64(c0, 1)
	s[0] ^= d0
	s[1] ^= d1
	s[2] ^= d2
	s[3] ^= d3
	s[4] ^= d4
	s[5] ^= d0
	s[6] ^= d1
	s[7] ^= d2
	s[8] ^= d3
	s[9] ^= d4
	s[10] ^= d0
	s[11] ^= d1
	s[12] ^= d2
	s[13] ^= d3
	s[14] ^= d4
	s[15] ^= d0
	s[16] ^= d1
	s[17] ^= d2
	s[18] ^= d3
	s[19] ^= d4
	s[20] ^= d0
	s[21] ^= d1
	s[22] ^= d2
	s[23] ^= d3
	s[24] ^= d4
	// rho and pi
	var b State
	b[0] = s[0]
	b[16] = bits.RotateLeft64(s[5], 36)
	b[7] = bits.RotateLeft64(s[10], 3)
	b[23] = bits.RotateLeft64(s[15], 41)
	b[14] = bits.RotateLeft64(s[20], 18)
	b[10] = bits.RotateLeft64(s[1], 1)
	b[1] = bits.RotateLeft64(s[6], 44)
	b[17] = bits.RotateLeft64(s[11], 10)
	b[8] = bits.RotateLeft64(s[16], 45)
	b[24] = bits.RotateLeft64(s[21], 2)
	b[20] = bits.RotateLeft64(s[2], 62)
	b[11] = bits.RotateLeft64(s[7], 6)
	b[2] = bits.RotateLeft64(s[12], 43)
	b[18] = bits.RotateLeft64(s[17], 15)
	b[9] = bits.RotateLeft64(s[22], 61)
	b[5] = bits.RotateLeft64(s[3], 28)
	b[21] = bits.RotateLeft64(s[8], 55)
	b[12] = bits.RotateLeft64(s[13], 25)
	b[3] = bits.RotateLeft64(s[18], 21)
	b[19] = bits.RotateLeft64(s[23], 56)
	b[15] = bits.RotateLeft64(s[4], 27)
	b[6] = bits.RotateLeft64(s[9], 20)
	b[22] = bits.RotateLeft64(s[14], 39)
	b[13] = bits.RotateLeft64(s[19], 8)
	b[4] = bits.RotateLeft64(s[24], 14)
	// chi
	s[0] = b[0] ^ (^b[1] & b[2])
	s[1] = b[1] ^ (^b[2] & b[3])
	s[2] = b[2] ^ (^b[3] & b[4])
	s[3] = b[3] ^ (^b[4] & b[0])
	s[4] = b[4] ^ (^b[0] & b[1])
	s[5] = b[5] ^ (^b[6] & b[7])
	s[6] = b[6] ^ (^b[7] & b[8])
	s[7] = b[7] ^ (^b[8] & b[9])
	s[8] = b[8] ^ (^b[9] & b[5])
	s[9] = b[9] ^ (^b[5] & b[6])
	s[10] = b[10] ^ (^b[11] & b[12])
	s[11] = b[11] ^ (^b[12] & b[13])
	s[12] = b[12] ^ (^b[13] & b[14])
	s[13] = b[13] ^ (^b[14] & b[10])
	s[14] = b[14] ^ (^b[10] & b[11])
	s[15] = b[15] ^ (^b[16] & b[17])
	s[16] = b[16] ^ (^b[17] & b[18])
	s[17] = b[17] ^ (^b[18] & b[19])
	s[18] = b[18] ^ (^b[19] & b[15])
	s[19] = b[19] ^ (^b[15] & b[16])
	s[20] = b[20] ^ (^b[21] & b[22])
	s[21] = b[21] ^ (^b[22] & b[23])
	s[22] = b[22] ^ (^b[23] & b[24])
	s[23] = b[23] ^ (^b[24] & b[20])
	s[24] = b[24] ^ (^b[20] & b[21])
	// iota
	s[0] ^= roundConstants[round]
}

// Rate constants in bytes for the SHAKE instances.
const (
	Rate128 = 168 // SHAKE128: 1344-bit rate = 21 64-bit words (the paper's "21 words per permutation")
	Rate256 = 136 // SHAKE256: 1088-bit rate
)

// domainShake is the FIPS 202 domain-separation suffix for SHAKE (1111).
const domainShake = 0x1F

// Shake is an incremental SHAKE sponge. Create with NewShake128 or
// NewShake256, Write the input, then Read any amount of output.
type Shake struct {
	state     State
	rate      int // bytes
	buf       [Rate128]byte
	bufLen    int // bytes buffered for absorb / available for squeeze
	squeezing bool
	readPos   int
}

// NewShake128 returns a SHAKE128 instance.
func NewShake128() *Shake { return &Shake{rate: Rate128} }

// Reset returns the sponge to its freshly constructed state so the same
// allocation can absorb a new input. Used by pooled XOF samplers to keep
// the steady-state keystream path allocation-free.
func (d *Shake) Reset() { *d = Shake{rate: d.rate} }

// NewShake256 returns a SHAKE256 instance.
func NewShake256() *Shake { return &Shake{rate: Rate256} }

// Write absorbs data into the sponge. It must not be called after Read.
func (d *Shake) Write(p []byte) (int, error) {
	if d.squeezing {
		panic("keccak: Write after Read")
	}
	n := len(p)
	for len(p) > 0 {
		take := d.rate - d.bufLen
		if take > len(p) {
			take = len(p)
		}
		copy(d.buf[d.bufLen:], p[:take])
		d.bufLen += take
		p = p[take:]
		if d.bufLen == d.rate {
			d.absorbBlock()
		}
	}
	return n, nil
}

func (d *Shake) absorbBlock() {
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	d.state.Permute()
	d.bufLen = 0
}

// pad applies the SHAKE padding and the final permutation, switching the
// sponge into squeezing mode.
func (d *Shake) pad() {
	for i := d.bufLen; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.bufLen] ^= domainShake
	d.buf[d.rate-1] ^= 0x80
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	d.state.Permute()
	d.squeezing = true
	d.readPos = 0
}

// Read squeezes len(p) bytes of output. The first call finalizes the input.
func (d *Shake) Read(p []byte) (int, error) {
	if !d.squeezing {
		d.pad()
	}
	n := len(p)
	for len(p) > 0 {
		if d.readPos == d.rate {
			d.state.Permute()
			d.readPos = 0
		}
		avail := d.rate - d.readPos
		take := avail
		if take > len(p) {
			take = len(p)
		}
		for i := 0; i < take; i++ {
			p[i] = byte(d.state[(d.readPos+i)/8] >> (8 * uint((d.readPos+i)%8)))
		}
		d.readPos += take
		p = p[take:]
	}
	return n, nil
}

// NextWord squeezes one 64-bit little-endian word — the granularity at
// which the hardware XOF unit emits data ("one 64-bit coefficient per
// clock cycle"). When the read position is lane-aligned (always, for
// word-granular consumers like the PASTA sampler) the word is taken
// straight from the state, skipping the byte-at-a-time extraction.
func (d *Shake) NextWord() uint64 {
	if !d.squeezing {
		d.pad()
	}
	if d.readPos == d.rate {
		d.state.Permute()
		d.readPos = 0
	}
	if d.readPos%8 == 0 && d.rate-d.readPos >= 8 {
		w := d.state[d.readPos/8]
		d.readPos += 8
		return w
	}
	var b [8]byte
	_, _ = d.Read(b[:])
	return le64(b[:])
}

// Sum128 is a one-shot SHAKE128 of data producing outLen bytes.
func Sum128(data []byte, outLen int) []byte {
	d := NewShake128()
	_, _ = d.Write(data)
	out := make([]byte, outLen)
	_, _ = d.Read(out)
	return out
}

// Sum256 is a one-shot SHAKE256 of data producing outLen bytes.
func Sum256(data []byte, outLen int) []byte {
	d := NewShake256()
	_, _ = d.Write(data)
	out := make([]byte, outLen)
	_, _ = d.Read(out)
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
