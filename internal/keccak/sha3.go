package keccak

// SHA-3 fixed-output-length hashes (FIPS 202 §6.1), completing the
// standard alongside the SHAKE XOFs. PASTA itself only needs SHAKE128,
// but downstream users of the Keccak substrate (key derivation, transcript
// hashing in the HHE protocol examples) get the full family.

// domainSHA3 is the SHA-3 domain-separation suffix (01 padding).
const domainSHA3 = 0x06

func sha3Sum(data []byte, rate, outLen int) []byte {
	d := &Shake{rate: rate}
	_, _ = d.Write(data)
	// Finalize with the SHA-3 domain instead of the SHAKE domain.
	for i := d.bufLen; i < d.rate; i++ {
		d.buf[i] = 0
	}
	d.buf[d.bufLen] ^= domainSHA3
	d.buf[d.rate-1] ^= 0x80
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.buf[8*i:])
	}
	d.state.Permute()
	d.squeezing = true
	d.readPos = 0
	out := make([]byte, outLen)
	_, _ = d.Read(out)
	return out
}

// SumSHA3_256 returns the SHA3-256 digest of data.
func SumSHA3_256(data []byte) [32]byte {
	var out [32]byte
	copy(out[:], sha3Sum(data, 136, 32))
	return out
}

// SumSHA3_512 returns the SHA3-512 digest of data.
func SumSHA3_512(data []byte) [64]byte {
	var out [64]byte
	copy(out[:], sha3Sum(data, 72, 64))
	return out
}
