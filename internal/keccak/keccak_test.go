package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// FIPS 202 known-answer vectors.
func TestShake128EmptyInput(t *testing.T) {
	want := "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
	got := hex.EncodeToString(Sum128(nil, 32))
	if got != want {
		t.Fatalf("SHAKE128(\"\") = %s, want %s", got, want)
	}
}

func TestShake256EmptyInput(t *testing.T) {
	want := "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
	got := hex.EncodeToString(Sum256(nil, 32))
	if got != want {
		t.Fatalf("SHAKE256(\"\") = %s, want %s", got, want)
	}
}

func TestShake128ABC(t *testing.T) {
	// SHAKE128("abc", 32) per NIST example values.
	want := "5881092dd818bf5cf8a3ddb793fbcba74097d5c526a6d35f97b83351940f2cc8"
	got := hex.EncodeToString(Sum128([]byte("abc"), 32))
	if got != want {
		t.Fatalf("SHAKE128(abc) = %s, want %s", got, want)
	}
}

// TestIncrementalWriteMatchesOneShot checks that arbitrary write chunking
// does not change the digest.
func TestIncrementalWriteMatchesOneShot(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := Sum128(data, 64)
	for _, chunk := range []int{1, 3, 7, 167, 168, 169, 500} {
		d := NewShake128()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			_, _ = d.Write(data[off:end])
		}
		got := make([]byte, 64)
		_, _ = d.Read(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: digest mismatch", chunk)
		}
	}
}

// TestIncrementalReadMatchesOneShot checks that arbitrary read chunking
// produces the same output stream.
func TestIncrementalReadMatchesOneShot(t *testing.T) {
	want := Sum128([]byte("pasta"), 1000)
	for _, chunk := range []int{1, 8, 31, 168, 999} {
		d := NewShake128()
		_, _ = d.Write([]byte("pasta"))
		got := make([]byte, 0, 1000)
		buf := make([]byte, chunk)
		for len(got) < 1000 {
			n := chunk
			if n > 1000-len(got) {
				n = 1000 - len(got)
			}
			_, _ = d.Read(buf[:n])
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read chunk %d: stream mismatch", chunk)
		}
	}
}

func TestWriteAfterReadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Write after Read")
		}
	}()
	d := NewShake128()
	_, _ = d.Read(make([]byte, 1))
	_, _ = d.Write([]byte("x"))
}

// TestPermuteRoundDecomposition: 24 single rounds equal one Permute.
func TestPermuteRoundDecomposition(t *testing.T) {
	var a, b State
	for i := range a {
		a[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	b = a
	a.Permute()
	for r := 0; r < 24; r++ {
		b.Round(r)
	}
	if a != b {
		t.Fatal("Round-by-round application differs from Permute")
	}
}

// Property: distinct inputs give distinct outputs (collision over random
// short messages would indicate a broken permutation).
func TestNoTrivialCollisionsQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(Sum128(a, 16), Sum128(b, 16))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNextWord(t *testing.T) {
	d1 := NewShake128()
	_, _ = d1.Write([]byte("seed"))
	w := d1.NextWord()

	d2 := NewShake128()
	_, _ = d2.Write([]byte("seed"))
	var b [8]byte
	_, _ = d2.Read(b[:])
	if w != le64(b[:]) {
		t.Fatalf("NextWord = %#x, byte read = %#x", w, le64(b[:]))
	}
}

func TestRateConstants(t *testing.T) {
	// The paper: SHAKE128 rate 1,344 bits = 21 64-bit words.
	if Rate128*8 != 1344 || Rate128/8 != 21 {
		t.Fatalf("Rate128 = %d bytes, want 168 (1344 bits, 21 words)", Rate128)
	}
}

func BenchmarkPermute(b *testing.B) {
	var s State
	for i := 0; i < b.N; i++ {
		s.Permute()
	}
}

func BenchmarkShake128Squeeze(b *testing.B) {
	d := NewShake128()
	_, _ = d.Write([]byte("bench"))
	buf := make([]byte, 168)
	b.SetBytes(168)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = d.Read(buf)
	}
}

func TestSHA3KnownAnswers(t *testing.T) {
	// FIPS 202 example values.
	got256 := hex.EncodeToString(func() []byte { v := SumSHA3_256(nil); return v[:] }())
	if got256 != "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a" {
		t.Errorf("SHA3-256(\"\") = %s", got256)
	}
	gotABC := hex.EncodeToString(func() []byte { v := SumSHA3_256([]byte("abc")); return v[:] }())
	if gotABC != "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532" {
		t.Errorf("SHA3-256(abc) = %s", gotABC)
	}
	got512 := hex.EncodeToString(func() []byte { v := SumSHA3_512(nil); return v[:] }())
	if got512 != "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26" {
		t.Errorf("SHA3-512(\"\") = %s", got512)
	}
}

func TestSHA3DiffersFromShake(t *testing.T) {
	a := SumSHA3_256([]byte("x"))
	b := Sum128([]byte("x"), 32)
	if bytes.Equal(a[:], b) {
		t.Fatal("SHA3 and SHAKE collided; domain separation broken")
	}
}
