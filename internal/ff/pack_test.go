package ff

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAppendPackBitsMatchesOracle pins the accumulator-based packers to
// the reference bit-loop implementations across widths that exercise
// every accumulator edge: sub-byte, byte-aligned, the PASTA widths, and
// the 57..64 straddle region where a byte can split across elements.
func TestAppendPackBitsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, bits := range []uint{1, 3, 7, 8, 9, 16, 17, 33, 54, 56, 57, 58, 63, 64} {
		mask := ^uint64(0)
		if bits < 64 {
			mask = 1<<bits - 1
		}
		for _, n := range []int{0, 1, 2, 3, 7, 8, 31, 32, 37} {
			v := NewVec(n)
			for i := range v {
				v[i] = rng.Uint64() & mask
			}
			want, err := PackBits(v, bits)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AppendPackBits(nil, v, bits)
			if err != nil {
				t.Fatalf("bits=%d n=%d: AppendPackBits: %v", bits, n, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("bits=%d n=%d: append encoding diverges from PackBits\n got %x\nwant %x", bits, n, got, want)
			}
			// Appending after a prefix must leave the prefix intact.
			prefixed, err := AppendPackBits([]byte{0xaa, 0xbb}, v, bits)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(prefixed[:2], []byte{0xaa, 0xbb}) || !bytes.Equal(prefixed[2:], want) {
				t.Fatalf("bits=%d n=%d: prefix append corrupted output", bits, n)
			}
			back := NewVec(n)
			if err := UnpackBitsInto(back, want, bits); err != nil {
				t.Fatalf("bits=%d n=%d: UnpackBitsInto: %v", bits, n, err)
			}
			oracle, err := UnpackBits(want, n, bits)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(oracle) || !back.Equal(v) {
				t.Fatalf("bits=%d n=%d: UnpackBitsInto diverges from UnpackBits", bits, n)
			}
		}
	}
}

func TestAppendPackBitsValidation(t *testing.T) {
	if _, err := AppendPackBits(nil, Vec{1 << 20}, 17); err == nil {
		t.Fatal("oversized element packed")
	}
	if _, err := AppendPackBits(nil, Vec{1}, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := AppendPackBits(nil, Vec{1}, 65); err == nil {
		t.Fatal("overwide width accepted")
	}
	if err := UnpackBitsInto(NewVec(5), []byte{1}, 17); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := UnpackBitsInto(NewVec(1), []byte{1, 2, 3}, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

// TestUnpackBitsIntoZeroAlloc: the hot-path pair must not allocate once
// the destination capacity exists.
func TestUnpackBitsIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by race-detector instrumentation")
	}
	v := Vec{11, 22, 33, 44, 55, 66, 77, 88}
	packed, err := PackBits(v, 17)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewVec(len(v))
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		if err := UnpackBitsInto(dst, packed, 17); err != nil {
			t.Fatal(err)
		}
		var perr error
		buf, perr = AppendPackBits(buf[:0], dst, 17)
		if perr != nil {
			t.Fatal(perr)
		}
	})
	if allocs != 0 {
		t.Fatalf("pack/unpack hot pair allocated %v times per run", allocs)
	}
}
