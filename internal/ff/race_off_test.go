//go:build !race

package ff

// raceEnabled mirrors the -race build tag: allocation-count assertions
// are meaningless under the race detector, whose instrumentation forces
// otherwise stack-allocated closures onto the heap.
const raceEnabled = false
