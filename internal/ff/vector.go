package ff

import (
	"fmt"
	"math/bits"
)

// Vec is a vector of reduced field elements. Operations take the Modulus
// explicitly so the same storage works across parameter sets.
type Vec []uint64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w have identical length and elements.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// AddVec sets dst = x + y elementwise mod p. dst may alias x or y.
func AddVec(m Modulus, dst, x, y Vec) {
	for i := range dst {
		dst[i] = m.Add(x[i], y[i])
	}
}

// SubVec sets dst = x - y elementwise mod p. dst may alias x or y.
func SubVec(m Modulus, dst, x, y Vec) {
	for i := range dst {
		dst[i] = m.Sub(x[i], y[i])
	}
}

// ScaleVec sets dst = c·x elementwise mod p.
func ScaleVec(m Modulus, dst Vec, c uint64, x Vec) {
	for i := range dst {
		dst[i] = m.Mul(c, x[i])
	}
}

// Dot returns the inner product <x, y> mod p, reducing after every
// multiply. It is the naive reference for DotLazy and is kept as the
// oracle the lazy path is property-tested against.
func Dot(m Modulus, x, y Vec) uint64 {
	var acc uint64
	for i := range x {
		acc = m.Add(acc, m.Mul(x[i], y[i]))
	}
	return acc
}

// DotLazy returns the inner product <x, y> mod p with lazy reduction: the
// 128-bit products are accumulated un-reduced in a 192-bit carry chain
// (bits.Add64) and reduced exactly once at the end. This is the software
// mirror of the hardware MatMul schedule (Sec. III-C): a bank of t
// multipliers feeds an adder tree whose wide sum passes through the
// add-shift reduction unit a single time per matrix row.
func DotLazy(m Modulus, x, y Vec) uint64 {
	var a0, a1, a2 uint64 // accumulator a2·2^128 + a1·2^64 + a0
	y = y[:len(x)]
	for i := range x {
		hi, lo := bits.Mul64(x[i], y[i])
		var c uint64
		a0, c = bits.Add64(a0, lo, 0)
		a1, c = bits.Add64(a1, hi, c)
		a2 += c
	}
	return m.Reduce192(a2, a1, a0)
}

// Matrix is a dense t×t matrix over F_p in row-major order.
type Matrix struct {
	N    int
	Rows Vec // len N*N, row-major
}

// NewMatrix returns a zero n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Rows: make(Vec, n*n)}
}

// Row returns a view of row i.
func (a *Matrix) Row(i int) Vec { return a.Rows[i*a.N : (i+1)*a.N] }

// At returns element (i, j).
func (a *Matrix) At(i, j int) uint64 { return a.Rows[i*a.N+j] }

// Set assigns element (i, j).
func (a *Matrix) Set(i, j int, v uint64) { a.Rows[i*a.N+j] = v }

// Clone returns a deep copy.
func (a *Matrix) Clone() *Matrix {
	return &Matrix{N: a.N, Rows: a.Rows.Clone()}
}

// MulVec sets dst = A·x mod p. dst must not alias x.
func (a *Matrix) MulVec(m Modulus, dst, x Vec) {
	if len(dst) != a.N || len(x) != a.N {
		panic(fmt.Sprintf("ff: MulVec dimension mismatch: matrix %d, dst %d, x %d", a.N, len(dst), len(x)))
	}
	for i := 0; i < a.N; i++ {
		dst[i] = DotLazy(m, a.Row(i), x)
	}
}

// Mul returns A·B mod p.
func (a *Matrix) Mul(m Modulus, b *Matrix) *Matrix {
	if a.N != b.N {
		panic("ff: Mul dimension mismatch")
	}
	n := a.N
	c := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			crow := c.Row(i)
			for j := 0; j < n; j++ {
				crow[j] = m.MulAdd(aik, brow[j], crow[j])
			}
		}
	}
	return c
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// IsInvertible reports whether A is invertible over F_p, by Gaussian
// elimination. It does not modify A.
func (a *Matrix) IsInvertible(m Modulus) bool {
	_, ok := a.gauss(m, false)
	return ok
}

// Inverse returns A⁻¹ over F_p, or ok=false if A is singular.
func (a *Matrix) Inverse(m Modulus) (inv *Matrix, ok bool) {
	return a.gauss(m, true)
}

// gauss runs Gauss–Jordan elimination on a copy of A. When wantInverse is
// true it carries an identity block and returns the inverse.
func (a *Matrix) gauss(m Modulus, wantInverse bool) (*Matrix, bool) {
	n := a.N
	work := a.Clone()
	var aug *Matrix
	if wantInverse {
		aug = Identity(n)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			swapRows(work, pivot, col)
			if wantInverse {
				swapRows(aug, pivot, col)
			}
		}
		pinv := m.Inv(work.At(col, col))
		scaleRow(m, work, col, pinv)
		if wantInverse {
			scaleRow(m, aug, col, pinv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			subScaledRow(m, work, r, col, f)
			if wantInverse {
				subScaledRow(m, aug, r, col, f)
			}
		}
	}
	return aug, true
}

func swapRows(a *Matrix, i, j int) {
	ri, rj := a.Row(i), a.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m Modulus, a *Matrix, i int, c uint64) {
	row := a.Row(i)
	for k := range row {
		row[k] = m.Mul(row[k], c)
	}
}

func subScaledRow(m Modulus, a *Matrix, dst, src int, c uint64) {
	rd, rs := a.Row(dst), a.Row(src)
	for k := range rd {
		rd[k] = m.Sub(rd[k], m.Mul(c, rs[k]))
	}
}
