package ff

import (
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, m Modulus, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.Uint64() % m.P()
	}
	return v
}

func randMatrix(rng *rand.Rand, m Modulus, n int) *Matrix {
	a := NewMatrix(n)
	for i := range a.Rows {
		a.Rows[i] = rng.Uint64() % m.P()
	}
	return a
}

func TestVecAddSubRoundTrip(t *testing.T) {
	m := P17
	rng := rand.New(rand.NewSource(10))
	x, y := randVec(rng, m, 64), randVec(rng, m, 64)
	sum := NewVec(64)
	AddVec(m, sum, x, y)
	back := NewVec(64)
	SubVec(m, back, sum, y)
	if !back.Equal(x) {
		t.Fatal("x + y - y != x")
	}
}

func TestVecAliasing(t *testing.T) {
	m := P17
	x := Vec{1, 2, 3}
	AddVec(m, x, x, x) // x = 2x in place
	want := Vec{2, 4, 6}
	if !x.Equal(want) {
		t.Fatalf("in-place AddVec = %v, want %v", x, want)
	}
}

func TestDotMatchesMulVec(t *testing.T) {
	m := P33
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, m, 16)
	x := randVec(rng, m, 16)
	y := NewVec(16)
	a.MulVec(m, y, x)
	for i := 0; i < 16; i++ {
		if got := Dot(m, a.Row(i), x); got != y[i] {
			t.Fatalf("row %d: Dot = %d, MulVec = %d", i, got, y[i])
		}
	}
}

func TestIdentityMulVec(t *testing.T) {
	m := P17
	rng := rand.New(rand.NewSource(12))
	x := randVec(rng, m, 8)
	y := NewVec(8)
	Identity(8).MulVec(m, y, x)
	if !y.Equal(x) {
		t.Fatalf("I·x = %v, want %v", y, x)
	}
}

func TestMatrixMulAssociatesWithMulVec(t *testing.T) {
	m := P17
	rng := rand.New(rand.NewSource(13))
	a, b := randMatrix(rng, m, 12), randMatrix(rng, m, 12)
	x := randVec(rng, m, 12)
	// (A·B)·x == A·(B·x)
	ab := a.Mul(m, b)
	lhs := NewVec(12)
	ab.MulVec(m, lhs, x)
	bx, rhs := NewVec(12), NewVec(12)
	b.MulVec(m, bx, x)
	a.MulVec(m, rhs, bx)
	if !lhs.Equal(rhs) {
		t.Fatal("(A·B)·x != A·(B·x)")
	}
}

func TestInverse(t *testing.T) {
	m := P17
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, m, 10)
		inv, ok := a.Inverse(m)
		if !ok {
			continue // random singular matrix (rare); skip
		}
		prod := a.Mul(m, inv)
		if !prod.Rows.Equal(Identity(10).Rows) {
			t.Fatal("A·A⁻¹ != I")
		}
	}
}

func TestSingularDetected(t *testing.T) {
	m := P17
	a := NewMatrix(3)
	// Row 2 = row 0 + row 1 (mod p): singular.
	copy(a.Row(0), Vec{1, 2, 3})
	copy(a.Row(1), Vec{4, 5, 6})
	copy(a.Row(2), Vec{5, 7, 9})
	if a.IsInvertible(m) {
		t.Fatal("linearly dependent matrix reported invertible")
	}
	if _, ok := a.Inverse(m); ok {
		t.Fatal("Inverse returned ok for singular matrix")
	}
}

func TestScaleVec(t *testing.T) {
	m := P17
	x := Vec{1, 2, 3}
	dst := NewVec(3)
	ScaleVec(m, dst, 2, x)
	if !dst.Equal(Vec{2, 4, 6}) {
		t.Fatalf("2·x = %v", dst)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	a := NewMatrix(3)
	a.MulVec(P17, NewVec(2), NewVec(3))
}

func BenchmarkMatVec128(b *testing.B) {
	m := P17
	rng := rand.New(rand.NewSource(15))
	a := randMatrix(rng, m, 128)
	x := randVec(rng, m, 128)
	y := NewVec(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(m, y, x)
	}
}

func TestPackUnpackBits(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, bits := range []uint{1, 7, 17, 33, 54, 64} {
		mask := ^uint64(0)
		if bits < 64 {
			mask = 1<<bits - 1
		}
		v := NewVec(37)
		for i := range v {
			v[i] = rng.Uint64() & mask
		}
		packed, err := PackBits(v, bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != PackedSize(len(v), bits) {
			t.Fatalf("bits=%d: packed %d bytes, want %d", bits, len(packed), PackedSize(len(v), bits))
		}
		back, err := UnpackBits(packed, len(v), bits)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Fatalf("bits=%d: roundtrip failed", bits)
		}
	}
}

func TestPackBitsValidation(t *testing.T) {
	if _, err := PackBits(Vec{1 << 20}, 17); err == nil {
		t.Fatal("oversized element packed")
	}
	if _, err := PackBits(Vec{1}, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := UnpackBits([]byte{1}, 5, 17); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestPackedSizeMatchesPaperAccounting(t *testing.T) {
	// Paper Sec. V: a PASTA-4 block of 32 elements at 17 bits = 544 bits
	// = 68 bytes, at 33 bits = 132 bytes.
	if got := PackedSize(32, 17); got != 68 {
		t.Errorf("32×17 bits = %d bytes, want 68", got)
	}
	if got := PackedSize(32, 33); got != 132 {
		t.Errorf("32×33 bits = %d bytes, want 132", got)
	}
}

// TestDotLazyMatchesNaive: deterministic coverage of the lazy-reduction
// dot product against the reduce-every-step oracle, including the
// worst-case accumulator magnitudes (all elements p-1) that overflow the
// 128-bit accumulator into the 2^128 limb for long rows.
func TestDotLazyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, m := range []Modulus{P17, P33, P54, P60} {
		for _, n := range []int{0, 1, 2, 31, 32, 128, 129, 1024, 4096} {
			x, y := randVec(rng, m, n), randVec(rng, m, n)
			if got, want := DotLazy(m, x, y), Dot(m, x, y); got != want {
				t.Fatalf("%v n=%d: DotLazy = %d, Dot = %d", m, n, got, want)
			}
			// Worst case: every product is (p-1)², maximizing carries.
			for i := range x {
				x[i], y[i] = m.P()-1, m.P()-1
			}
			if got, want := DotLazy(m, x, y), Dot(m, x, y); got != want {
				t.Fatalf("%v n=%d max: DotLazy = %d, Dot = %d", m, n, got, want)
			}
		}
	}
}

// TestReduce192 pins the overflow-limb fold: a2·2^128 + a1·2^64 + a0 must
// reduce identically to the sum computed with the naive oracle.
func TestReduce192(t *testing.T) {
	for _, m := range []Modulus{P17, P33, P54, P60} {
		for _, tc := range [][3]uint64{
			{0, 0, 0},
			{0, 0, m.P() - 1},
			{0, ^uint64(0), ^uint64(0)},
			{1, 0, 0},
			{3, ^uint64(0), ^uint64(0)},
			{^uint64(0) >> 8, 12345, 67890},
		} {
			a2, a1, a0 := tc[0], tc[1], tc[2]
			// Oracle: (a2·(2^128 mod p) + a1·(2^64 mod p) + a0) mod p via
			// repeated naive folds.
			r64 := m.Reduce(^uint64(0))
			r64 = m.Add(r64, 1)
			r128 := m.Mul(r64, r64)
			want := m.Add(m.Add(m.Mul(m.Reduce(a2), r128), m.Mul(m.Reduce(a1), r64)), m.Reduce(a0))
			if got := m.Reduce192(a2, a1, a0); got != want {
				t.Fatalf("%v: Reduce192(%d, %d, %d) = %d, want %d", m, a2, a1, a0, got, want)
			}
		}
	}
}

func BenchmarkDotNaive(b *testing.B) { benchDot(b, Dot) }
func BenchmarkDotLazy(b *testing.B)  { benchDot(b, DotLazy) }

func benchDot(b *testing.B, dot func(Modulus, Vec, Vec) uint64) {
	m := P17
	rng := rand.New(rand.NewSource(13))
	x, y := randVec(rng, m, 128), randVec(rng, m, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dot(m, x, y)
	}
}
