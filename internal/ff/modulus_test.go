package ff

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewModulusDetectsStructure(t *testing.T) {
	cases := []struct {
		p    uint64
		kind ReductionKind
		bits uint
	}{
		{65537, Fermat, 17},
		{1<<33 - 1<<20 + 1, Solinas, 33},
		{1<<53 + 1<<47 + 1, SolinasPlus, 54},
		{1<<59 + 1<<47 + 1, SolinasPlus, 60},
		{1<<31 - 1, Solinas, 31}, // Mersenne prime 2^31-1 = 2^31 - 2^1 + 1 is a degenerate Solinas shape
		{1000003, Generic, 20},   // prime with no exploitable 2-power structure
	}
	for _, c := range cases {
		m, err := NewModulus(c.p)
		if err != nil {
			t.Fatalf("NewModulus(%d): %v", c.p, err)
		}
		if m.Kind() != c.kind {
			t.Errorf("p=%d: kind = %v, want %v", c.p, m.Kind(), c.kind)
		}
		if m.Bits() != c.bits {
			t.Errorf("p=%d: bits = %d, want %d", c.p, m.Bits(), c.bits)
		}
	}
}

func TestNewModulusRejectsBadInput(t *testing.T) {
	for _, p := range []uint64{0, 1, 2, 4, 9, 65536, 1<<61 + 1} {
		if _, err := NewModulus(p); err == nil {
			t.Errorf("NewModulus(%d): want error, got nil", p)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 65537: true,
		4: false, 6: false, 9: false, 15: false, 65536: false,
		1<<32 + 1: false, // F5 = 641 * 6700417
		1<<31 - 1: true,  // Mersenne
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestAddSubNegBasic(t *testing.T) {
	m := P17
	p := m.P()
	if got := m.Add(p-1, 1); got != 0 {
		t.Errorf("Add(p-1, 1) = %d, want 0", got)
	}
	if got := m.Sub(0, 1); got != p-1 {
		t.Errorf("Sub(0, 1) = %d, want p-1", got)
	}
	if got := m.Neg(0); got != 0 {
		t.Errorf("Neg(0) = %d, want 0", got)
	}
	if got := m.Neg(5); got != p-5 {
		t.Errorf("Neg(5) = %d, want %d", got, p-5)
	}
}

// TestStructuredReductionMatchesGeneric is the central correctness check
// for the add-shift reduction paths: Fermat and Solinas folding must agree
// with plain division on random wide products.
func TestStructuredReductionMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Modulus{P17, P33, P54, P60} {
		generic := Modulus{p: m.p, bits: m.bits, kind: Generic}
		for i := 0; i < 20000; i++ {
			x := rng.Uint64() % m.P()
			y := rng.Uint64() % m.P()
			if got, want := m.Mul(x, y), generic.Mul(x, y); got != want {
				t.Fatalf("%v: Mul(%d, %d) = %d, want %d", m, x, y, got, want)
			}
		}
	}
}

func TestReduceWideExtremes(t *testing.T) {
	for _, m := range []Modulus{P17, P33, P54, P60} {
		p := m.P()
		cases := []struct{ hi, lo uint64 }{
			{0, 0}, {0, 1}, {0, p - 1}, {0, p}, {0, p + 1},
			{0, ^uint64(0)},
			{p - 1, ^uint64(0)}, // near the max product (p-1)^2
		}
		// exact max product
		maxHi, maxLo := mulWide(p-1, p-1)
		cases = append(cases, struct{ hi, lo uint64 }{maxHi, maxLo})
		for _, c := range cases {
			got := m.ReduceWide(c.hi, c.lo)
			want := Modulus{p: p, bits: m.bits, kind: Generic}.ReduceWide(c.hi, c.lo)
			if got != want {
				t.Errorf("%v: ReduceWide(%d, %d) = %d, want %d", m, c.hi, c.lo, got, want)
			}
			if got >= p {
				t.Errorf("%v: ReduceWide(%d, %d) = %d not reduced", m, c.hi, c.lo, got)
			}
		}
	}
}

func mulWide(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t0 := x1*y0 + w0>>32
	t1 := t0 & mask
	t2 := t0 >> 32
	t1 += x0 * y1
	hi = x1*y1 + t2 + t1>>32
	lo = x * y
	return
}

func TestExpInv(t *testing.T) {
	for _, m := range []Modulus{P17, P33} {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 200; i++ {
			x := 1 + rng.Uint64()%(m.P()-1)
			inv := m.Inv(x)
			if got := m.Mul(x, inv); got != 1 {
				t.Fatalf("%v: x*Inv(x) = %d for x=%d", m, got, x)
			}
		}
		// Fermat's little theorem: x^(p-1) = 1.
		if got := m.Exp(3, m.P()-1); got != 1 {
			t.Errorf("%v: 3^(p-1) = %d, want 1", m, got)
		}
		if got := m.Inv(0); got != 0 {
			t.Errorf("Inv(0) = %d, want 0", got)
		}
	}
}

func TestCube(t *testing.T) {
	m := P17
	for _, x := range []uint64{0, 1, 2, 3, m.P() - 1} {
		want := m.Mul(m.Mul(x, x), x)
		if got := m.Cube(x); got != want {
			t.Errorf("Cube(%d) = %d, want %d", x, got, want)
		}
	}
}

// Property: field axioms hold for random elements under every standard
// modulus (commutativity, associativity, distributivity).
func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []Modulus{P17, P33, P54, P60} {
		m := m
		red := func(v uint64) uint64 { return v % m.P() }
		cfg := &quick.Config{MaxCount: 300}

		comm := func(a, b uint64) bool {
			a, b = red(a), red(b)
			return m.Add(a, b) == m.Add(b, a) && m.Mul(a, b) == m.Mul(b, a)
		}
		if err := quick.Check(comm, cfg); err != nil {
			t.Errorf("%v commutativity: %v", m, err)
		}

		assoc := func(a, b, c uint64) bool {
			a, b, c = red(a), red(b), red(c)
			return m.Add(m.Add(a, b), c) == m.Add(a, m.Add(b, c)) &&
				m.Mul(m.Mul(a, b), c) == m.Mul(a, m.Mul(b, c))
		}
		if err := quick.Check(assoc, cfg); err != nil {
			t.Errorf("%v associativity: %v", m, err)
		}

		distrib := func(a, b, c uint64) bool {
			a, b, c = red(a), red(b), red(c)
			return m.Mul(a, m.Add(b, c)) == m.Add(m.Mul(a, b), m.Mul(a, c))
		}
		if err := quick.Check(distrib, cfg); err != nil {
			t.Errorf("%v distributivity: %v", m, err)
		}

		addInv := func(a uint64) bool {
			a = red(a)
			return m.Add(a, m.Neg(a)) == 0 && m.Sub(a, a) == 0
		}
		if err := quick.Check(addInv, cfg); err != nil {
			t.Errorf("%v additive inverse: %v", m, err)
		}
	}
}

func TestMulAdd(t *testing.T) {
	m := P33
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x, y, z := rng.Uint64()%m.P(), rng.Uint64()%m.P(), rng.Uint64()%m.P()
		if got, want := m.MulAdd(x, y, z), m.Add(m.Mul(x, y), z); got != want {
			t.Fatalf("MulAdd(%d,%d,%d) = %d, want %d", x, y, z, got, want)
		}
	}
}

func TestAcceptRate(t *testing.T) {
	// For p = 65537 with a 17-bit mask the paper reports ≈2× rejection,
	// i.e. acceptance ≈ 0.5.
	if r := P17.AcceptRate(); r < 0.49 || r > 0.51 {
		t.Errorf("P17 accept rate = %v, want ≈0.5", r)
	}
	if P17.Mask() != 0x1FFFF {
		t.Errorf("P17 mask = %#x, want 0x1FFFF", P17.Mask())
	}
}

func BenchmarkMulFermat17(b *testing.B)  { benchMul(b, P17) }
func BenchmarkMulSolinas33(b *testing.B) { benchMul(b, P33) }
func BenchmarkMulSolinas54(b *testing.B) { benchMul(b, P54) }
func BenchmarkMulGeneric54(b *testing.B) {
	benchMul(b, Modulus{p: P54.p, bits: P54.bits, kind: Generic})
}

func benchMul(b *testing.B, m Modulus) {
	x, y := m.P()-2, m.P()-3
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= m.Mul(x, y^acc&1)
	}
	_ = acc
}

// TestCubeBijectiveResidue: all standard primes must satisfy p ≡ 2 (mod 3)
// so the PASTA cube S-box is a permutation of F_p.
func TestCubeBijectiveResidue(t *testing.T) {
	for w, m := range StandardModuli {
		if m.P()%3 != 2 {
			t.Errorf("P%d = %d: p mod 3 = %d, want 2", w, m.P(), m.P()%3)
		}
		if m.Bits() != w {
			t.Errorf("StandardModuli[%d] has %d bits", w, m.Bits())
		}
	}
}
