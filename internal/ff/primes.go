package ff

// Standard moduli used throughout the reproduction, mirroring the bit
// widths ω ∈ {17, 33, 54} the paper evaluates (Table I) plus the 60-bit
// upper end of PASTA's supported range. All have the Mersenne-like
// structure the paper's add-shift reduction unit exploits.
var (
	// P17 is the 17-bit Fermat prime 2^16 + 1 = 65,537 (0x10001), the
	// modulus used for all headline comparisons in the paper.
	P17 = MustModulus(1<<16 + 1)

	// P33 is the 33-bit Solinas prime 2^33 - 2^20 + 1.
	P33 = MustModulus(1<<33 - 1<<20 + 1)

	// P54 is the 54-bit prime 2^53 + 2^47 + 1.
	P54 = MustModulus(1<<53 + 1<<47 + 1)

	// P60 is the 60-bit prime 2^59 + 2^47 + 1, the top of the 16–60 bit
	// range PASTA supports.
	P60 = MustModulus(1<<59 + 1<<47 + 1)
)

// All standard primes satisfy p ≡ 2 (mod 3) so that the PASTA cube S-box
// x ↦ x³ is a bijection on F_p (gcd(3, p-1) = 1); verified in tests.

// StandardModuli lists the vetted moduli by bit width.
var StandardModuli = map[uint]Modulus{
	17: P17,
	33: P33,
	54: P54,
	60: P60,
}
