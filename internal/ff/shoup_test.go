package ff

import "testing"

// TestMulShoupMatchesMul: the Shoup product must agree with the
// division-based Mul for every standard modulus, and the lazy variant
// must stay under 2p while remaining congruent mod p.
func TestMulShoupMatchesMul(t *testing.T) {
	for _, m := range []Modulus{P17, P33, P54, P60} {
		st := uint64(0xfeed)
		for i := 0; i < 500; i++ {
			x := splitmix64(&st) % m.P()
			y := splitmix64(&st) % m.P()
			ys := m.ShoupPrecomp(y)
			want := m.Mul(x, y)
			if got := m.MulShoup(x, y, ys); got != want {
				t.Fatalf("%v: MulShoup(%d, %d) = %d, want %d", m, x, y, got, want)
			}
			lazy := m.MulShoupLazy(x, y, ys)
			if lazy >= 2*m.P() {
				t.Fatalf("%v: MulShoupLazy(%d, %d) = %d ≥ 2p", m, x, y, lazy)
			}
			if lazy%m.P() != want {
				t.Fatalf("%v: MulShoupLazy(%d, %d) ≡ %d, want %d", m, x, y, lazy%m.P(), want)
			}
		}
	}
}

// TestMulShoupLazyWideX: the butterfly feeds MulShoupLazy operands up to
// 4p (lazy accumulation), not just reduced ones; the congruence and the
// < 2p bound must hold for those too.
func TestMulShoupLazyWideX(t *testing.T) {
	for _, m := range []Modulus{P17, P33, P54, P60} {
		st := uint64(0xbeef)
		for i := 0; i < 500; i++ {
			x := splitmix64(&st) % (4 * m.P()) // lazy-domain operand
			y := splitmix64(&st) % m.P()
			ys := m.ShoupPrecomp(y)
			lazy := m.MulShoupLazy(x, y, ys)
			if lazy >= 2*m.P() {
				t.Fatalf("%v: MulShoupLazy(%d, %d) = %d ≥ 2p", m, x, y, lazy)
			}
			if want := m.Mul(x%m.P(), y); lazy%m.P() != want {
				t.Fatalf("%v: MulShoupLazy(%d, %d) ≢ Mul", m, x, y)
			}
		}
	}
}

// TestShoupPrecompRejectsUnreduced: the precomputation contract is
// y < p; feeding it an unreduced y must panic rather than silently
// produce a wrong quotient estimate.
func TestShoupPrecompRejectsUnreduced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShoupPrecomp accepted y ≥ p")
		}
	}()
	P17.ShoupPrecomp(P17.P())
}
