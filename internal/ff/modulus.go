// Package ff implements arithmetic over prime fields F_p for p up to 60
// bits, the coefficient domain of the PASTA family of HHE-enabling
// symmetric ciphers.
//
// The package mirrors the arithmetic structure exploited by the PASTA
// cryptoprocessor: the moduli of interest have a "Mersenne-like" shape
// (Fermat primes 2^a+1 and Solinas primes 2^a-2^b+1) that admits an
// add-shift reduction after each multiplication instead of a generic
// division. Both the structured reduction and a generic fallback are
// implemented; they are tested to agree and the structured path is used in
// hot loops exactly as the hardware uses its add-shift reduction unit.
//
// Dot products additionally follow the cryptoprocessor's MatMul schedule
// (Sec. III-C): the hardware multiplies a full row in a DSP bank, sums the
// products in an adder tree, and reduces the sum once. DotLazy is the
// software image of that — it accumulates the 128-bit products into a
// 192-bit carry chain and performs a single Reduce192 per row, instead of
// reducing after every multiply-accumulate as the naive Dot oracle does.
package ff

import (
	"fmt"
	"math/bits"
)

// ReductionKind identifies the modular-reduction strategy a Modulus uses.
type ReductionKind int

const (
	// Generic reduction divides the 128-bit product by p (Barrett-style
	// fallback, realized with bits.Div64).
	Generic ReductionKind = iota
	// Fermat reduction applies to p = 2^a + 1 (e.g. 65537) and folds the
	// product using 2^a ≡ -1 (mod p).
	Fermat
	// Solinas reduction applies to p = 2^a - 2^b + 1 and folds the product
	// using 2^a ≡ 2^b - 1 (mod p).
	Solinas
	// SolinasPlus reduction applies to p = 2^a + 2^b + 1 and folds the
	// product using 2^a ≡ -(2^b + 1) (mod p).
	SolinasPlus
)

func (k ReductionKind) String() string {
	switch k {
	case Generic:
		return "generic"
	case Fermat:
		return "fermat"
	case Solinas:
		return "solinas"
	case SolinasPlus:
		return "solinas+"
	default:
		return fmt.Sprintf("ReductionKind(%d)", int(k))
	}
}

// Modulus bundles a prime p with a reduction strategy and derived
// constants. The zero value is invalid; use NewModulus.
type Modulus struct {
	p    uint64
	bits uint // bit length of p
	kind ReductionKind
	a, b uint   // structure exponents: p = 2^a + 1 (Fermat) or 2^a - 2^b + 1 (Solinas)
	r128 uint64 // 2^128 mod p, folds the overflow limb of lazy 192-bit accumulators
}

// NewModulus builds a Modulus for the prime p, automatically detecting a
// Fermat (2^a+1) or Solinas (2^a-2^b+1) structure and selecting the
// corresponding add-shift reduction. It returns an error if p is not an
// odd prime in [3, 2^60].
func NewModulus(p uint64) (Modulus, error) {
	if p < 3 || p&1 == 0 {
		return Modulus{}, fmt.Errorf("ff: modulus %d must be an odd prime ≥ 3", p)
	}
	if p > 1<<60 {
		return Modulus{}, fmt.Errorf("ff: modulus %d exceeds the supported 60-bit range", p)
	}
	if !IsPrime(p) {
		return Modulus{}, fmt.Errorf("ff: modulus %d is not prime", p)
	}
	m := Modulus{p: p, bits: uint(bits.Len64(p)), kind: Generic}
	r64 := ^uint64(0)%p + 1 // 2^64 mod p; in [1, p-1] for odd p
	m.r128 = mulMod(r64, r64, p)
	if a := uint(bits.TrailingZeros64(p - 1)); p == 1<<a+1 {
		m.kind = Fermat
		m.a = a
		return m, nil
	}
	// p = 2^a + 2^b + 1  <=>  p - 1 has exactly two set bits.
	if bits.OnesCount64(p-1) == 2 {
		m.kind = SolinasPlus
		m.a = uint(bits.Len64(p-1)) - 1
		m.b = uint(bits.TrailingZeros64(p - 1))
		return m, nil
	}
	// p = 2^a - 2^b + 1  <=>  p - 1 = 2^b * (2^(a-b) - 1).
	b := uint(bits.TrailingZeros64(p - 1))
	q := (p - 1) >> b // should be 2^(a-b) - 1, i.e. all-ones
	if q != 0 && q&(q+1) == 0 {
		ab := uint(bits.Len64(q))
		m.kind = Solinas
		m.a = ab + b
		m.b = b
	}
	return m, nil
}

// MustModulus is NewModulus that panics on error; intended for package-level
// parameter tables built from vetted primes.
func MustModulus(p uint64) Modulus {
	m, err := NewModulus(p)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the prime.
func (m Modulus) P() uint64 { return m.p }

// Bits returns the bit length of the prime (the ω of the paper's Table I).
func (m Modulus) Bits() uint { return m.bits }

// Kind reports which reduction strategy the modulus uses.
func (m Modulus) Kind() ReductionKind { return m.kind }

// Mask returns the sampling mask (2^Bits - 1) used by rejection sampling.
func (m Modulus) Mask() uint64 { return 1<<m.bits - 1 }

// AcceptRate returns the expected acceptance probability of rejection
// sampling a masked Bits()-wide word, p / 2^Bits.
func (m Modulus) AcceptRate() float64 {
	return float64(m.p) / float64(uint64(1)<<m.bits)
}

func (m Modulus) String() string {
	return fmt.Sprintf("F_%d (%d-bit, %s)", m.p, m.bits, m.kind)
}

// Add returns x + y mod p. Inputs must already be reduced.
func (m Modulus) Add(x, y uint64) uint64 {
	s := x + y
	if s >= m.p || s < x { // s < x catches wraparound (cannot occur for p ≤ 2^60)
		s -= m.p
	}
	return s
}

// Sub returns x - y mod p. Inputs must already be reduced.
func (m Modulus) Sub(x, y uint64) uint64 {
	d := x - y
	if x < y {
		d += m.p
	}
	return d
}

// Neg returns -x mod p.
func (m Modulus) Neg(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return m.p - x
}

// Mul returns x * y mod p using the modulus's structured reduction.
func (m Modulus) Mul(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return m.ReduceWide(hi, lo)
}

// Sqr returns x² mod p.
func (m Modulus) Sqr(x uint64) uint64 { return m.Mul(x, x) }

// Cube returns x³ mod p (the PASTA cube S-box on one element).
func (m Modulus) Cube(x uint64) uint64 { return m.Mul(m.Sqr(x), x) }

// MulAdd returns x*y + z mod p, the fused operation of the hardware MAC
// unit used for invertible-matrix generation.
func (m Modulus) MulAdd(x, y, z uint64) uint64 { return m.Add(m.Mul(x, y), z) }

// ReduceWide reduces the 128-bit value hi·2^64 + lo modulo p.
func (m Modulus) ReduceWide(hi, lo uint64) uint64 {
	switch m.kind {
	case Fermat:
		return m.reduceFermat(hi, lo)
	case Solinas:
		return m.reduceSolinas(hi, lo)
	case SolinasPlus:
		return m.reduceSolinasPlus(hi, lo)
	default:
		return m.reduceGeneric(hi, lo)
	}
}

// Reduce reduces a single 64-bit value modulo p.
func (m Modulus) Reduce(x uint64) uint64 { return m.ReduceWide(0, x) }

// Reduce192 reduces the 192-bit value a2·2^128 + a1·2^64 + a0 modulo p —
// the single final reduction of a lazily accumulated sum of 128-bit
// products (see DotLazy). The overflow limb a2 is folded with the
// precomputed constant 2^128 mod p.
func (m Modulus) Reduce192(a2, a1, a0 uint64) uint64 {
	r := m.ReduceWide(a1, a0)
	if a2 != 0 {
		hi, lo := bits.Mul64(m.Reduce(a2), m.r128)
		r = m.Add(r, m.ReduceWide(hi, lo))
	}
	return r
}

// reduceGeneric divides by p. Valid whenever hi < p, which always holds
// for products of reduced operands (hi ≤ (p-1)²/2^64 < p).
func (m Modulus) reduceGeneric(hi, lo uint64) uint64 {
	if hi == 0 {
		if lo < m.p {
			return lo
		}
		return lo % m.p
	}
	hi %= m.p
	_, r := bits.Div64(hi, lo, m.p)
	return r
}

// reduceFermat folds using 2^a ≡ -1 (mod 2^a + 1): splitting x into a-bit
// limbs x0, x1, x2, ... gives x ≡ x0 - x1 + x2 - ... . This is the
// alternating add-shift reduction the hardware applies after each
// multiplier, e.g. for p = 65537 = 0x10001.
func (m Modulus) reduceFermat(hi, lo uint64) uint64 {
	a := m.a
	mask := uint64(1)<<a - 1
	if hi == 0 {
		// Single-word fast path: the loop runs only while limbs remain.
		// For the headline p = 65537 a product of reduced operands fits in
		// 32 bits, so this folds in two iterations instead of eight.
		var pos, neg uint64
		sign := false
		for x := lo; x != 0; x >>= a {
			if sign {
				neg += x & mask
			} else {
				pos += x & mask
			}
			sign = !sign
		}
		pos += (neg/m.p + 1) * m.p
		r := pos - neg
		if r >= m.p {
			r %= m.p
		}
		return r
	}
	// Accumulate alternating limbs. For a ≥ 16 and 128-bit input at most
	// 8 limbs occur; sums stay far below 2^64 (each limb < 2^a ≤ 2^59).
	var pos, neg uint64
	sign := false // false: add, true: subtract
	for i := uint(0); i < 128; i += a {
		var limb uint64
		switch {
		case i >= 64:
			limb = (hi >> (i - 64)) & mask
		case i+a <= 64:
			limb = (lo >> i) & mask
		default: // straddles the 64-bit boundary
			limb = (lo>>i | hi<<(64-i)) & mask
		}
		if sign {
			neg += limb
		} else {
			pos += limb
		}
		sign = !sign
		if i >= 64 && hi>>(i-64) == 0 {
			break
		}
	}
	// pos, neg < 8 * 2^a; reduce the small difference.
	pos += (neg/m.p + 1) * m.p // make the subtraction non-negative
	r := pos - neg
	if r >= m.p {
		r %= m.p
	}
	return r
}

// reduceSolinas folds using 2^a ≡ 2^b - 1 (mod 2^a - 2^b + 1). Each fold
// replaces the high part h (x = h·2^a + l) by h·2^b - h, shrinking the
// value until it fits below 2^a, then applies a final correction.
func (m Modulus) reduceSolinas(hi, lo uint64) uint64 {
	a, b := m.a, m.b
	maskA := uint64(1)<<a - 1
	// Work in 128 bits (hi, lo) until hi == 0 and lo < 2^(a+b+1) or so.
	for hi != 0 || lo>>a != 0 {
		// Split: l = x mod 2^a, h = x >> a.
		l := lo & maskA
		var h128hi, h128lo uint64
		h128lo = lo>>a | hi<<(64-a)
		h128hi = hi >> a
		// x' = l + h*2^b - h.  h*2^b may exceed 64 bits; keep 128-bit math.
		shHi := h128hi<<b | h128lo>>(64-b)
		shLo := h128lo << b
		// add l
		var c uint64
		shLo, c = bits.Add64(shLo, l, 0)
		shHi += c
		// subtract h (h ≤ x/2^a so result stays non-negative only if
		// x ≥ h, which holds since l + h·2^b ≥ h for b ≥ 1; for b = 0 the
		// prime is 2^a which is excluded).
		var borrow uint64
		shLo, borrow = bits.Sub64(shLo, h128lo, 0)
		shHi, _ = bits.Sub64(shHi, h128hi, borrow)
		hi, lo = shHi, shLo
	}
	r := lo
	for r >= m.p {
		r -= m.p
	}
	return r
}

// reduceSolinasPlus folds using 2^a ≡ -(2^b + 1) (mod 2^a + 2^b + 1).
// Splitting x = h·2^a + l gives x ≡ l - (h·2^b + h); the positive quantity
// h·2^b + h is reduced recursively (it shrinks by a-b-1 bits per level)
// and subtracted from l < 2^a < p.
func (m Modulus) reduceSolinasPlus(hi, lo uint64) uint64 {
	a, b := m.a, m.b
	if hi == 0 && lo < m.p {
		return lo
	}
	if hi == 0 && lo>>a == 0 {
		return lo % m.p // rare: l in [p, 2^a); single correction
	}
	maskA := uint64(1)<<a - 1
	l := lo & maskA
	hLo := lo>>a | hi<<(64-a)
	hHi := hi >> a
	// s = h·2^b + h (fits in 128 bits since a > b+1 for all our primes).
	sHi := hHi<<b | hLo>>(64-b)
	sLo := hLo << b
	var c uint64
	sLo, c = bits.Add64(sLo, hLo, 0)
	sHi += c + hHi
	return m.Sub(l, m.reduceSolinasPlus(sHi, sLo))
}

// ShoupPrecomp returns floor(y·2^64 / p) for y < p — the Shoup
// representation of a fixed multiplicand. Together with MulShoup it turns
// a modular multiply by y into two 64-bit multiplies and one conditional
// subtraction, with no division: the software image of a hardwired
// constant multiplier. Panics if y ≥ p.
func (m Modulus) ShoupPrecomp(y uint64) uint64 {
	if y >= m.p {
		panic(fmt.Sprintf("ff: ShoupPrecomp operand %d not reduced mod %d", y, m.p))
	}
	q, _ := bits.Div64(y, 0, m.p)
	return q
}

// MulShoup returns x·y mod p, fully reduced, given yShoup =
// ShoupPrecomp(y). x may be ANY uint64 (in particular a lazily reduced
// value in [0, 4p)); y must be reduced.
func (m Modulus) MulShoup(x, y, yShoup uint64) uint64 {
	r := m.MulShoupLazy(x, y, yShoup)
	if r >= m.p {
		r -= m.p
	}
	return r
}

// MulShoupLazy returns a value ≡ x·y (mod p) in [0, 2p), given yShoup =
// ShoupPrecomp(y). The quotient estimate hi(x·yShoup) is at most one
// short of the true quotient, so a single conditional subtraction (see
// MulShoup) finishes the reduction; lazy NTT butterflies skip even that
// and let the slack ride to the end of the transform.
func (m Modulus) MulShoupLazy(x, y, yShoup uint64) uint64 {
	q, _ := bits.Mul64(x, yShoup)
	return x*y - q*m.p
}

// Exp returns base^e mod p by square-and-multiply.
func (m Modulus) Exp(base, e uint64) uint64 {
	base = m.Reduce(base)
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, base)
		}
		base = m.Sqr(base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of x mod p (p prime), or 0 for
// x = 0.
func (m Modulus) Inv(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return m.Exp(x, m.p-2)
}

// IsPrime reports whether n is prime, using a deterministic Miller–Rabin
// test valid for all 64-bit integers (witness set due to Sinclair).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, sp := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == sp {
			return true
		}
		if n%sp == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// Deterministic witnesses for n < 3,317,044,064,679,887,385,961,981.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if !millerRabinWitness(n, a, d, r) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, r int) bool {
	x := powMod(a%n, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

func mulMod(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi == 0 && lo < n {
		return lo
	}
	hi %= n
	_, r := bits.Div64(hi, lo, n)
	return r
}

func powMod(a, e, n uint64) uint64 {
	r := uint64(1)
	a %= n
	for e > 0 {
		if e&1 == 1 {
			r = mulMod(r, a, n)
		}
		a = mulMod(a, a, n)
		e >>= 1
	}
	return r
}
