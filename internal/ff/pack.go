package ff

import "fmt"

// Bit-packing of field-element vectors: each element occupies exactly
// `bits` bits on the wire, the encoding the paper's communication
// accounting uses (e.g. a PASTA-4 block of 32 × 17-bit elements is 544
// bits = 68 bytes; Sec. V uses 32 × 33 bits = 132 bytes).

// PackedSize returns the byte length of n elements at the given width.
func PackedSize(n int, bits uint) int {
	return (n*int(bits) + 7) / 8
}

// PackBits serializes v with the given per-element bit width,
// little-endian bit order. Elements must fit the width.
func PackBits(v Vec, bits uint) ([]byte, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("ff: invalid pack width %d", bits)
	}
	out := make([]byte, PackedSize(len(v), bits))
	bitPos := 0
	for i, e := range v {
		if bits < 64 && e>>bits != 0 {
			return nil, fmt.Errorf("ff: element %d = %d exceeds %d bits", i, e, bits)
		}
		for b := uint(0); b < bits; b++ {
			if e>>b&1 == 1 {
				out[bitPos/8] |= 1 << (bitPos % 8)
			}
			bitPos++
		}
	}
	return out, nil
}

// AppendPackBits appends the packed encoding of v to dst and returns the
// extended slice — the allocation-free variant of PackBits for hot wire
// paths (dst is typically a pooled frame buffer). The encoding is
// bit-identical to PackBits; elements must fit the width. Unlike the
// reference bit-loop it packs through a 64-bit accumulator, one byte
// store per output byte.
func AppendPackBits(dst []byte, v Vec, bits uint) ([]byte, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("ff: invalid pack width %d", bits)
	}
	need := PackedSize(len(v), bits)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	out := dst[off:]
	var acc uint64
	var nacc uint
	idx := 0
	for i, e := range v {
		if bits < 64 && e>>bits != 0 {
			return nil, fmt.Errorf("ff: element %d = %d exceeds %d bits", i, e, bits)
		}
		acc |= e << nacc
		if nacc > 0 && nacc+bits >= 64 {
			// The shift dropped the top nacc+bits-64 bits of e; flush the
			// full accumulator and carry them over.
			carry := e >> (64 - nacc)
			for k := 0; k < 8; k++ {
				out[idx] = byte(acc >> (8 * uint(k)))
				idx++
			}
			acc = carry
			nacc = nacc + bits - 64
		} else {
			nacc += bits
			for nacc >= 8 {
				out[idx] = byte(acc)
				idx++
				acc >>= 8
				nacc -= 8
			}
		}
	}
	if nacc > 0 {
		out[idx] = byte(acc)
	}
	return dst, nil
}

// UnpackBitsInto inverts PackBits for exactly len(dst) elements without
// allocating — the hot-path counterpart of UnpackBits. data must hold at
// least PackedSize(len(dst), bits) bytes.
func UnpackBitsInto(dst Vec, data []byte, bits uint) error {
	if bits == 0 || bits > 64 {
		return fmt.Errorf("ff: invalid pack width %d", bits)
	}
	if len(data) < PackedSize(len(dst), bits) {
		return fmt.Errorf("ff: %d bytes too short for %d × %d-bit elements", len(data), len(dst), bits)
	}
	mask := ^uint64(0)
	if bits < 64 {
		mask = 1<<bits - 1
	}
	var acc uint64
	var nacc uint
	idx := 0
	for i := range dst {
		for nacc < bits {
			b := uint64(data[idx])
			idx++
			if nacc > 56 {
				// The byte straddles the accumulator boundary. Since
				// nacc < bits ≤ 64 < nacc+8, this byte completes the
				// element: emit it and carry b's unconsumed top bits.
				acc |= b << nacc
				dst[i] = acc & mask
				acc = b >> (bits - nacc)
				nacc += 8 - bits
				goto next
			}
			acc |= b << nacc
			nacc += 8
		}
		dst[i] = acc & mask
		if bits == 64 {
			acc = 0
		} else {
			acc >>= bits
		}
		nacc -= bits
	next:
	}
	return nil
}

// UnpackBits inverts PackBits for n elements.
func UnpackBits(data []byte, n int, bits uint) (Vec, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("ff: invalid pack width %d", bits)
	}
	if len(data) < PackedSize(n, bits) {
		return nil, fmt.Errorf("ff: %d bytes too short for %d × %d-bit elements", len(data), n, bits)
	}
	v := NewVec(n)
	bitPos := 0
	for i := 0; i < n; i++ {
		var e uint64
		for b := uint(0); b < bits; b++ {
			if data[bitPos/8]>>(bitPos%8)&1 == 1 {
				e |= 1 << b
			}
			bitPos++
		}
		v[i] = e
	}
	return v, nil
}
