package ff

import "fmt"

// Bit-packing of field-element vectors: each element occupies exactly
// `bits` bits on the wire, the encoding the paper's communication
// accounting uses (e.g. a PASTA-4 block of 32 × 17-bit elements is 544
// bits = 68 bytes; Sec. V uses 32 × 33 bits = 132 bytes).

// PackedSize returns the byte length of n elements at the given width.
func PackedSize(n int, bits uint) int {
	return (n*int(bits) + 7) / 8
}

// PackBits serializes v with the given per-element bit width,
// little-endian bit order. Elements must fit the width.
func PackBits(v Vec, bits uint) ([]byte, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("ff: invalid pack width %d", bits)
	}
	out := make([]byte, PackedSize(len(v), bits))
	bitPos := 0
	for i, e := range v {
		if bits < 64 && e>>bits != 0 {
			return nil, fmt.Errorf("ff: element %d = %d exceeds %d bits", i, e, bits)
		}
		for b := uint(0); b < bits; b++ {
			if e>>b&1 == 1 {
				out[bitPos/8] |= 1 << (bitPos % 8)
			}
			bitPos++
		}
	}
	return out, nil
}

// UnpackBits inverts PackBits for n elements.
func UnpackBits(data []byte, n int, bits uint) (Vec, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("ff: invalid pack width %d", bits)
	}
	if len(data) < PackedSize(n, bits) {
		return nil, fmt.Errorf("ff: %d bytes too short for %d × %d-bit elements", len(data), n, bits)
	}
	v := NewVec(n)
	bitPos := 0
	for i := 0; i < n; i++ {
		var e uint64
		for b := uint(0); b < bits; b++ {
			if data[bitPos/8]>>(bitPos%8)&1 == 1 {
				e |= 1 << b
			}
			bitPos++
		}
		v[i] = e
	}
	return v, nil
}
