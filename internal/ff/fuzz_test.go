package ff

import "testing"

// FuzzReduceWideAgainstGeneric: structured reductions must agree with the
// division-based fallback on arbitrary 128-bit inputs.
func FuzzReduceWideAgainstGeneric(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(12345))
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		for _, m := range []Modulus{P17, P33, P54, P60} {
			// Clamp hi below p so the generic path's Div64 precondition
			// holds for arbitrary (not just product) inputs.
			h := hi % m.P()
			got := m.ReduceWide(h, lo)
			want := Modulus{p: m.p, bits: m.bits, kind: Generic}.ReduceWide(h, lo)
			if got != want {
				t.Fatalf("%v: ReduceWide(%d, %d) = %d, want %d", m, h, lo, got, want)
			}
			if got >= m.P() {
				t.Fatalf("%v: result %d not reduced", m, got)
			}
		}
	})
}

// splitmix64 expands a fuzz seed into a deterministic element stream (the
// xof package cannot be used here: it imports ff).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzDotLazyAgainstNaive: the lazy-reduction dot product (one wide
// reduction per row, as in the hardware adder tree) must agree with the
// naive reduce-every-step Dot across every ReductionKind.
func FuzzDotLazyAgainstNaive(f *testing.F) {
	f.Add(uint64(1), uint16(4))
	f.Add(uint64(42), uint16(128))
	f.Add(uint64(7), uint16(300))
	f.Fuzz(func(t *testing.T, seed uint64, n16 uint16) {
		n := int(n16) % 512
		for _, m := range []Modulus{P17, P33, P54, P60} {
			st := seed
			x, y := NewVec(n), NewVec(n)
			for i := 0; i < n; i++ {
				x[i] = splitmix64(&st) % m.P()
				y[i] = splitmix64(&st) % m.P()
			}
			naive := Dot(m, x, y)
			lazy := DotLazy(m, x, y)
			if naive != lazy {
				t.Fatalf("%v: n=%d DotLazy = %d, Dot = %d", m, n, lazy, naive)
			}
		}
	})
}

// FuzzInverse: x·x⁻¹ = 1 for all nonzero x under every standard modulus.
func FuzzInverse(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(65536))
	f.Fuzz(func(t *testing.T, x uint64) {
		for _, m := range []Modulus{P17, P33, P54, P60} {
			v := x % m.P()
			if v == 0 {
				continue
			}
			if got := m.Mul(v, m.Inv(v)); got != 1 {
				t.Fatalf("%v: %d·Inv = %d", m, v, got)
			}
		}
	})
}
