package ff

import "testing"

// FuzzReduceWideAgainstGeneric: structured reductions must agree with the
// division-based fallback on arbitrary 128-bit inputs.
func FuzzReduceWideAgainstGeneric(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(12345))
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		for _, m := range []Modulus{P17, P33, P54, P60} {
			// Clamp hi below p so the generic path's Div64 precondition
			// holds for arbitrary (not just product) inputs.
			h := hi % m.P()
			got := m.ReduceWide(h, lo)
			want := Modulus{p: m.p, bits: m.bits, kind: Generic}.ReduceWide(h, lo)
			if got != want {
				t.Fatalf("%v: ReduceWide(%d, %d) = %d, want %d", m, h, lo, got, want)
			}
			if got >= m.P() {
				t.Fatalf("%v: result %d not reduced", m, got)
			}
		}
	})
}

// FuzzInverse: x·x⁻¹ = 1 for all nonzero x under every standard modulus.
func FuzzInverse(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(65536))
	f.Fuzz(func(t *testing.T, x uint64) {
		for _, m := range []Modulus{P17, P33, P54, P60} {
			v := x % m.P()
			if v == 0 {
				continue
			}
			if got := m.Mul(v, m.Inv(v)); got != 1 {
				t.Fatalf("%v: %d·Inv = %d", m, v, got)
			}
		}
	})
}
