package hw

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// FaultSpec describes a single transient fault injected into the
// accelerator datapath: element Element of the state is XOR-corrupted
// with Mask right after the affine layer Layer (before Mix/S-box) — the
// injection point of the SASTA single-fault analysis ([30], the paper's
// future-scope countermeasure discussion).
type FaultSpec struct {
	Layer   int    // affine layer index (0-based)
	Element int    // state element index in [0, 2t)
	Mask    uint64 // XOR mask applied to the element
}

// Validate rejects a fault specification that can never fire on a run
// with the given parameters: a layer outside the schedule, an element
// outside the 2t-element state, or a mask ≡ 0 (mod p), which is a no-op
// in the field-element fault model. Before this check an out-of-range
// spec silently produced a fault-free run and FaultDemo reported an
// all-zero delta as if the analysis had succeeded.
func (f FaultSpec) Validate(par pasta.Params) error {
	if f.Layer < 0 || f.Layer >= par.AffineLayers() {
		return fmt.Errorf("hw: fault layer %d outside schedule [0, %d)", f.Layer, par.AffineLayers())
	}
	if f.Element < 0 || f.Element >= par.StateSize() {
		return fmt.Errorf("hw: fault element %d outside state [0, %d)", f.Element, par.StateSize())
	}
	if f.Mask%par.Mod.P() == 0 {
		return fmt.Errorf("hw: fault mask %d ≡ 0 (mod %d) can never change the state", f.Mask, par.Mod.P())
	}
	return nil
}

func (f *FaultSpec) apply(mod ff.Modulus, state ff.Vec) {
	state[f.Element] = (state[f.Element] ^ f.Mask) % mod.P()
}

// Countermeasure identifies a fault/side-channel hardening strategy whose
// cost the paper proposes to analyze (Sec. VI).
type Countermeasure int

const (
	// NoCountermeasure is the baseline design.
	NoCountermeasure Countermeasure = iota
	// TemporalRedundancy recomputes every block and compares the two
	// results, detecting any single transient fault at ≈2× latency and
	// negligible extra area (one comparator + result buffer).
	TemporalRedundancy
	// SpatialRedundancy duplicates the private datapath (MatGen, MatMul,
	// ALU) and compares continuously: full throughput, ≈2× area on the
	// key-dependent units.
	SpatialRedundancy
	// Masking first-order-masks the key-dependent arithmetic (each private
	// value split into two shares): ≈2× area and ≈2× multiplier pressure
	// on the private units, public XOF/sampling untouched.
	Masking
)

func (c Countermeasure) String() string {
	switch c {
	case NoCountermeasure:
		return "none"
	case TemporalRedundancy:
		return "temporal redundancy"
	case SpatialRedundancy:
		return "spatial redundancy"
	case Masking:
		return "first-order masking"
	default:
		return fmt.Sprintf("Countermeasure(%d)", int(c))
	}
}

// CountermeasureCost models the relative overhead of a countermeasure on
// the PASTA cryptoprocessor. The factors follow the structure of the
// design: temporal redundancy doubles latency only; spatial redundancy
// and masking duplicate the *private* units (matrix engines, vector ALU)
// while the public XOF — the single largest unit — is shared, so the
// area factor stays well below 2×.
type CountermeasureCost struct {
	Countermeasure Countermeasure
	CycleFactor    float64 // latency multiplier
	AreaFactor     float64 // total area multiplier
	DetectsFaults  bool
	MasksSCA       bool
}

// CostOf returns the modeled overhead for a countermeasure applied to a
// configuration with the given private-area share (fraction of total area
// in key-dependent units; from the area model's breakdown).
func CostOf(c Countermeasure, privateShare float64) CountermeasureCost {
	switch c {
	case TemporalRedundancy:
		return CountermeasureCost{c, 2.0, 1.02, true, false}
	case SpatialRedundancy:
		return CountermeasureCost{c, 1.0, 1 + privateShare, true, false}
	case Masking:
		// Two shares double the private arithmetic and add refresh
		// randomness (drawn from the already-present XOF).
		return CountermeasureCost{c, 1.1, 1 + privateShare, false, true}
	default:
		return CountermeasureCost{c, 1.0, 1.0, false, false}
	}
}

// RedundantEncryptBlock runs the block twice (temporal redundancy) and
// compares: a transient fault present in only one run is detected. It
// returns the combined cycle count (the countermeasure's 2× latency).
func (a *Accelerator) RedundantEncryptBlock(nonce, counter uint64, msg ff.Vec) (Result, error) {
	first, err := a.EncryptBlock(nonce, counter, msg)
	if err != nil {
		return Result{}, err
	}
	second, err := a.EncryptBlock(nonce, counter, msg)
	if err != nil {
		return Result{}, err
	}
	if !first.Ciphertext.Equal(second.Ciphertext) {
		return Result{}, fmt.Errorf("hw: fault detected: redundant computations disagree")
	}
	combined := first
	combined.Stats.Cycles += second.Stats.Cycles
	return combined, nil
}

// FaultDemo shows the SASTA-style observable: with a fault in the final
// affine layer, the faulty and correct keystreams differ in a structured
// way (the fault bypasses all remaining S-boxes). It returns the
// difference vector Δ = faulty − correct of the keystream, which for a
// final-layer fault is exactly the fault propagated through the linear
// Mix only — the leakage SASTA exploits.
func FaultDemo(par pasta.Params, key pasta.Key, nonce, counter uint64, f FaultSpec) (correct, faulty, delta ff.Vec, err error) {
	if err := f.Validate(par); err != nil {
		return nil, nil, nil, err
	}
	acc, err := NewAccelerator(par, key)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := acc.KeyStream(nonce, counter)
	if err != nil {
		return nil, nil, nil, err
	}
	correct = res.KeyStream

	acc.Fault = &f
	resF, err := acc.KeyStream(nonce, counter)
	if err != nil {
		return nil, nil, nil, err
	}
	faulty = resF.KeyStream

	delta = ff.NewVec(len(correct))
	ff.SubVec(par.Mod, delta, faulty, correct)
	return correct, faulty, delta, nil
}
