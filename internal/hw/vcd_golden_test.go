package hw

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestWriteVCDGolden pins the exact VCD byte stream for one deterministic
// PASTA-4 block: the cycle model has no randomness, so any change to the
// schedule, the signal set, or the dump format shows up as a diff against
// testdata/pasta4_p17_block0.vcd. Regenerate with `go test ./internal/hw
// -run VCDGolden -update` after an intentional change.
func TestWriteVCDGolden(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, err := NewAccelerator(par, pasta.KeyFromSeed(par, "vcd-golden"))
	if err != nil {
		t.Fatal(err)
	}
	acc.Waveform = &Waveform{}
	if _, err := acc.KeyStream(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := acc.Waveform.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "pasta4_p17_block0.vcd")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	got := buf.Bytes()
	if !bytes.Equal(got, want) {
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("VCD diverges from golden at line %d: got %q, want %q (%d vs %d lines)",
					i+1, gotLines[i], wantLines[i], len(gotLines), len(wantLines))
			}
		}
		t.Fatalf("VCD length differs from golden: %d vs %d lines", len(gotLines), len(wantLines))
	}
}
