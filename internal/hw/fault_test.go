package hw

import (
	"strconv"
	"strings"

	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

func TestNaiveKeccakAblation(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "ablate")
	fast, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	slow.NaiveKeccak = true

	rf, err := fast.KeyStream(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.KeyStream(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Functional output identical; only timing differs.
	if !rf.KeyStream.Equal(rs.KeyStream) {
		t.Fatal("naive Keccak changed the keystream")
	}
	// Sec. IV-B: the naive design "almost doubles" the cycle count
	// (steady state 45 vs 26 cycles per 21-word batch ⇒ ≈1.7×).
	ratio := float64(rs.Stats.Cycles) / float64(rf.Stats.Cycles)
	if ratio < 1.5 || ratio > 2.1 {
		t.Fatalf("naive/parallel cycle ratio = %.2f, want ≈1.7 ('almost double')", ratio)
	}
	t.Logf("naive %d vs parallel %d cycles (%.2f×)", rs.Stats.Cycles, rf.Stats.Cycles, ratio)
}

func TestFaultChangesOutput(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "fault")
	correct, faulty, delta, err := FaultDemo(par, key, 1, 0, FaultSpec{Layer: 2, Element: 5, Mask: 1})
	if err != nil {
		t.Fatal(err)
	}
	if correct.Equal(faulty) {
		t.Fatal("fault had no effect")
	}
	nonzero := 0
	for _, d := range delta {
		if d != 0 {
			nonzero++
		}
	}
	// A mid-permutation fault diffuses through subsequent S-boxes and
	// affine layers: nearly every keystream element should change.
	if nonzero < par.T*3/4 {
		t.Fatalf("mid-permutation fault changed only %d/%d elements", nonzero, par.T)
	}
}

// TestFinalLayerFaultIsStructured demonstrates the SASTA observation: a
// fault injected in the *final* affine layer output bypasses every S-box,
// so Δ = faulty − correct is exactly the fault difference pushed through
// the linear Mix — for a single-element fault in the left half, Δ has the
// known Mix pattern (2δ on the faulted position).
func TestFinalLayerFaultIsStructured(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "sasta")
	lastLayer := par.AffineLayers() - 1
	elem := 5 // in the left half

	_, _, delta, err := FaultDemo(par, key, 9, 1, FaultSpec{Layer: lastLayer, Element: elem, Mask: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The keystream is Trunc(Mix(affine output)). A fault δ at left
	// element j gives Δ[j] = 2δ mod p and Δ elsewhere 0 in the left half.
	nonzero := 0
	for i, d := range delta {
		if d != 0 {
			nonzero++
			if i != elem {
				t.Fatalf("final-layer fault leaked into element %d", i)
			}
		}
	}
	if nonzero != 1 {
		t.Fatalf("expected exactly one affected keystream element, got %d", nonzero)
	}
	t.Logf("SASTA observable: single structured Δ at element %d: %d", elem, delta[elem])
}

func TestRedundantEncryptDetectsFault(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "redundant")
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	msg := ff.NewVec(par.T)

	// Clean run: passes, costs ≈2× cycles.
	clean, err := acc.RedundantEncryptBlock(0, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := acc.EncryptBlock(0, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Cycles < 2*single.Stats.Cycles-10 {
		t.Fatalf("redundant run cycles %d, want ≈2× %d", clean.Stats.Cycles, single.Stats.Cycles)
	}

	// Transient fault in one of the two runs: detected.
	acc.Fault = &FaultSpec{Layer: 1, Element: 2, Mask: 7}
	if _, err := acc.RedundantEncryptBlock(0, 0, msg); err == nil {
		t.Fatal("redundant execution failed to detect the fault")
	}
}

func TestCountermeasureCosts(t *testing.T) {
	const privateShare = 0.65 // matrix engines + ALU share of area
	base := CostOf(NoCountermeasure, privateShare)
	if base.CycleFactor != 1 || base.AreaFactor != 1 {
		t.Fatal("baseline not free")
	}
	tr := CostOf(TemporalRedundancy, privateShare)
	if tr.CycleFactor != 2 || !tr.DetectsFaults {
		t.Fatalf("temporal redundancy: %+v", tr)
	}
	sr := CostOf(SpatialRedundancy, privateShare)
	if sr.AreaFactor <= 1.5 || sr.CycleFactor != 1 {
		t.Fatalf("spatial redundancy: %+v", sr)
	}
	mask := CostOf(Masking, privateShare)
	if !mask.MasksSCA || mask.AreaFactor >= 2 {
		t.Fatalf("masking: %+v (area must stay < 2× since the XOF is public)", mask)
	}
}

// TestFaultSpecValidation: a fault that can never fire must be rejected
// up front instead of silently yielding a fault-free run. (Regression:
// FaultDemo used to report an all-zero delta for an out-of-range Element
// as if the analysis had succeeded.)
func TestFaultSpecValidation(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "oor")
	bad := []struct {
		name string
		f    FaultSpec
	}{
		{"element out of range", FaultSpec{Layer: 0, Element: 10_000, Mask: 1}},
		{"element negative", FaultSpec{Layer: 0, Element: -1, Mask: 1}},
		{"layer out of range", FaultSpec{Layer: par.AffineLayers(), Element: 0, Mask: 1}},
		{"layer negative", FaultSpec{Layer: -1, Element: 0, Mask: 1}},
		{"zero mask", FaultSpec{Layer: 0, Element: 0, Mask: 0}},
		{"mask multiple of p", FaultSpec{Layer: 0, Element: 0, Mask: par.Mod.P()}},
	}
	for _, tc := range bad {
		if _, _, _, err := FaultDemo(par, key, 1, 0, tc.f); err == nil {
			t.Errorf("%s: FaultDemo accepted %+v", tc.name, tc.f)
		}
		if err := tc.f.Validate(par); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.f)
		}
	}
	// The Accelerator run path rejects the spec too (not just FaultDemo).
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	acc.Fault = &FaultSpec{Layer: 0, Element: 10_000, Mask: 1}
	if _, err := acc.KeyStream(1, 0); err == nil {
		t.Fatal("Accelerator ran with an out-of-range fault spec")
	}
	// The bad fault is consumed; the next run is clean.
	if _, err := acc.KeyStream(1, 0); err != nil {
		t.Fatalf("run after rejected fault: %v", err)
	}
	// A valid spec still validates and fires.
	good := FaultSpec{Layer: 1, Element: 3, Mask: 5}
	if err := good.Validate(par); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	correct, faulty, _, err := FaultDemo(par, key, 1, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	if correct.Equal(faulty) {
		t.Fatal("valid fault had no effect")
	}
}

func BenchmarkAblationNaiveKeccak(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, _ := NewAccelerator(par, pasta.KeyFromSeed(par, "bench"))
	acc.NaiveKeccak = true
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := acc.KeyStream(uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/block")
}

func TestWaveformVCD(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, err := NewAccelerator(par, pasta.KeyFromSeed(par, "vcd"))
	if err != nil {
		t.Fatal(err)
	}
	acc.Waveform = &Waveform{}
	res, err := acc.KeyStream(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(acc.Waveform.Cycles()) != res.Stats.Cycles+1 && int64(acc.Waveform.Cycles()) != res.Stats.Cycles {
		t.Fatalf("waveform has %d samples for %d cycles", acc.Waveform.Cycles(), res.Stats.Cycles)
	}
	var sb strings.Builder
	if err := acc.Waveform.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end", "$enddefinitions $end",
		"xof_word_valid", "matengine_busy", "ctrl_phase",
		"#0", "1!",
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// The dump must end at the final cycle timestamp.
	if !strings.Contains(vcd, "#"+strconv.FormatInt(res.Stats.Cycles, 10)) {
		t.Errorf("VCD missing final timestamp #%d", res.Stats.Cycles)
	}
	// Empty waveform errors.
	if err := (&Waveform{}).WriteVCD(&sb); err == nil {
		t.Error("empty waveform accepted")
	}
}
