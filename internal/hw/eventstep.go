package hw

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ff"
	"repro/internal/keccak"
	"repro/internal/pasta"
)

// StepMode selects how the Accelerator advances modelled time.
type StepMode int

const (
	// StepAuto uses event-driven fast-forwarding unless a per-cycle-only
	// feature (Waveform, TraceEnabled, Fault) is armed for the run.
	StepAuto StepMode = iota
	// StepCycle forces the per-cycle oracle loop for every run.
	StepCycle
	// StepEvent requests event-driven stepping. Per-cycle-only features
	// still force the oracle — they observe individual cycles, which the
	// event engine skips over by construction.
	StepEvent
)

func (s StepMode) String() string {
	switch s {
	case StepAuto:
		return "auto"
	case StepCycle:
		return "cycle"
	case StepEvent:
		return "event"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// ParseStepMode maps the CLI spelling of a stepping mode to its value.
func ParseStepMode(name string) (StepMode, error) {
	switch name {
	case "", "auto":
		return StepAuto, nil
	case "cycle":
		return StepCycle, nil
	case "event":
		return StepEvent, nil
	}
	return 0, fmt.Errorf("hw: unknown step mode %q (want auto, cycle or event)", name)
}

// evXOF is the event-time image of KeccakUnit: it emits the same word
// sequence at the same cycles, but advances per squeezed word instead of
// per clock edge. Permutations run eagerly as whole keccak.State.Permute
// calls; the cycle at which each permutation's first round would have
// executed is recorded in spans, so KeccakBusy and Permutations can be
// replayed exactly (clamped to the run's final cycle) without modelling
// the 24 individual round cycles.
type evXOF struct {
	cur, next keccak.State
	naive     bool
	sqIdx     int
	next1     int64   // cycle of the next squeeze attempt
	spans     []int64 // first-round cycle of every permutation started
}

func (x *evXOF) init(nonce, counter uint64, naive bool) {
	x.cur = keccak.State{}
	x.next = keccak.State{}
	x.naive = naive
	x.sqIdx = 0
	x.spans = x.spans[:0]

	// Absorb at cycle 0, exactly like KeccakUnit's xofAbsorb case.
	var block [keccak.Rate128]byte
	binary.BigEndian.PutUint64(block[0:8], nonce)
	binary.BigEndian.PutUint64(block[8:16], counter)
	block[16] ^= 0x1F
	block[keccak.Rate128-1] ^= 0x80
	for i := 0; i < keccak.Rate128/8; i++ {
		x.next[i] ^= binary.LittleEndian.Uint64(block[8*i : 8*i+8])
	}

	// First permutation: rounds on cycles 1..24, rotation at cycle 24,
	// first squeeze at 25. The double-buffered design starts the second
	// permutation's rounds with the first squeeze cycle; the naive design
	// cannot permute while its single buffer is being squeezed.
	x.next.Permute()
	x.spans = append(x.spans, 1)
	x.cur = x.next
	if !naive {
		x.next.Permute()
		x.spans = append(x.spans, 25)
	}
	x.next1 = 25
}

// emit returns the word squeezed at cycle next1 and advances the
// squeeze/permutation timing to the following attempt cycle, recording
// rotation and permutation spans when a 21-word batch completes.
func (x *evXOF) emit() uint64 {
	w := x.cur[x.sqIdx]
	c := x.next1
	x.sqIdx++
	if x.sqIdx < wordsPerBatch {
		x.next1 = c + 1
		return w
	}
	var rotate int64
	if x.naive {
		// Single buffer: the full 24-cycle permutation runs in place of
		// the control gap, on cycles c+1..c+24, rotation at c+24.
		x.next.Permute()
		x.spans = append(x.spans, c+1)
		rotate = c + 24
		x.cur = x.next
	} else {
		// Rotation waits for both the 5-cycle control gap and the
		// in-flight permutation (rounds run every cycle from its span
		// start, stalled squeezes included).
		rotate = c + gapCycles
		if done := x.spans[len(x.spans)-1] + 23; done > rotate {
			rotate = done
		}
		x.cur = x.next
		x.next.Permute()
		x.spans = append(x.spans, rotate+1)
	}
	x.sqIdx = 0
	x.next1 = rotate + 1
	return w
}

// finalize replays the recorded permutation spans into the busy counters,
// clamped to the run's last simulated cycle — the per-cycle loop executes
// one round per cycle from each span's start, so a span contributes
// min(24, end-start+1) KeccakBusy cycles and one Permutation iff all 24
// rounds fit.
func (x *evXOF) finalize(st *Stats, end int64) {
	for _, s := range x.spans {
		if s > end {
			continue
		}
		if s+23 <= end {
			st.KeccakBusy += 24
			st.Permutations++
		} else {
			st.KeccakBusy += end - s + 1
		}
	}
}

// evScratch holds the event engine's reusable buffers. An Accelerator is
// not safe for concurrent runs (the per-cycle path already mutates
// per-run state), so one scratch per instance suffices.
type evScratch struct {
	t      int
	layers int
	xof    evXOF
	dg     *DataGen
	rc     [][2]ff.Vec
	rcFill [][2]int
	rcDone [][2]bool
	state  ff.Vec
	outBuf [2]ff.Vec
	row    ff.Vec
	shoup  ff.Vec
}

func newEvScratch(t, layers int) *evScratch {
	ev := &evScratch{
		t:      t,
		layers: layers,
		dg:     NewDataGen(t),
		rc:     make([][2]ff.Vec, layers),
		rcFill: make([][2]int, layers),
		rcDone: make([][2]bool, layers),
		state:  ff.NewVec(2 * t),
		outBuf: [2]ff.Vec{ff.NewVec(t), ff.NewVec(t)},
		row:    ff.NewVec(t),
		shoup:  ff.NewVec(t),
	}
	for l := range ev.rc {
		ev.rc[l] = [2]ff.Vec{ff.NewVec(t), ff.NewVec(t)}
	}
	return ev
}

func (ev *evScratch) reset() {
	for l := range ev.rc {
		ev.rcFill[l] = [2]int{}
		ev.rcDone[l] = [2]bool{}
	}
}

// matApplyFast computes out = M(seed)·x with the same row recurrence the
// MatEngine uses (eq. 1: row'[0] = last·seed[0], row'[j] = last·seed[j] +
// row[j-1]), but keeps rows lazily reduced in [0, 2p) via Shoup
// multiplication by the per-matrix seed constants and fuses row
// generation with the dot product. Outputs are fully reduced, so the
// published matrix halves are bit-identical to the oracle's
// ff.Dot/NextMatrixRow path. When 2p·p·t fits in 64 bits (smallDot) the
// dot accumulates in a plain uint64; otherwise the 192-bit lazy chain of
// ff.DotLazy carries the products exactly.
func matApplyFast(mod ff.Modulus, seed, x, out, row, shoup ff.Vec, smallDot bool) {
	t := len(seed)
	p := mod.P()
	twoP := 2 * p
	for j := 0; j < t; j++ {
		shoup[j] = mod.ShoupPrecomp(seed[j])
		row[j] = seed[j]
	}
	if smallDot {
		var acc uint64
		for j := 0; j < t; j++ {
			acc += seed[j] * x[j]
		}
		out[0] = mod.Reduce(acc)
		for i := 1; i < t; i++ {
			last := row[t-1]
			acc = 0
			// Descending j so row[j-1] is still the previous row's value.
			for j := t - 1; j >= 1; j-- {
				v := mod.MulShoupLazy(last, seed[j], shoup[j]) + row[j-1]
				if v >= twoP {
					v -= twoP
				}
				row[j] = v
				acc += v * x[j]
			}
			v0 := mod.MulShoupLazy(last, seed[0], shoup[0])
			row[0] = v0
			acc += v0 * x[0]
			out[i] = mod.Reduce(acc)
		}
		return
	}
	out[0] = ff.DotLazy(mod, row, x)
	for i := 1; i < t; i++ {
		last := row[t-1]
		for j := t - 1; j >= 1; j-- {
			v := mod.MulShoupLazy(last, seed[j], shoup[j]) + row[j-1]
			if v >= twoP {
				v -= twoP
			}
			row[j] = v
		}
		row[0] = mod.MulShoupLazy(last, seed[0], shoup[0])
		out[i] = ff.DotLazy(mod, row, x)
	}
}

// matApplyFold is matApplyFast specialised for Fermat moduli p = 2^a + 1
// with small products (the PASTA ω=17 configuration, p = 2^16+1): a 64-bit
// product x < 2^(2a)·k splits into a-bit limbs x = l0 + 2^a·l1 + 2^2a·l2
// with 2^a ≡ -1 and 2^2a ≡ 1 (mod p), so x ≡ l0 - l1 + l2 and
// r = l0 + l2 + p - l1 reduces with conditional subtractions only — no
// Shoup precomputation (a Div64 per seed element) and no generic reduce.
// The caller guarantees the fold bounds (see the foldOK derivation in
// runEvent); outputs are fully reduced and therefore bit-identical to the
// oracle's matrix halves.
func matApplyFold(p uint64, a uint, seed, x, out, rowA, rowB ff.Vec) {
	t := len(seed)
	twoP := 2 * p
	// Masking the shift counts to [0, 64) lets the compiler emit bare
	// shift instructions instead of guarded variable shifts.
	sh1 := a & 63
	sh2 := (2 * a) & 63
	maskA := uint64(1)<<sh1 - 1
	seed = seed[:t]
	x = x[:t]
	out = out[:t]
	// Rows ping-pong between two buffers so both loops run ascending with
	// provably in-bounds indices (src holds row i-1 while dst fills row i).
	src := rowA[:t]
	dst := rowB[:t]
	copy(src, seed)
	var acc uint64
	for j := 0; j < t; j++ {
		acc += seed[j] * x[j]
	}
	out[0] = foldReduce(acc, p, sh1, sh2, maskA)
	for i := 1; i < t; i++ {
		src = src[:t]
		dst = dst[:t]
		last := src[t-1]
		prod := last * seed[0]
		r := (prod & maskA) + (prod >> sh2) + p - (prod >> sh1 & maskA)
		if r >= twoP {
			r -= twoP
		}
		dst[0] = r
		acc = r * x[0]
		for j := 1; j < t; j++ {
			prod := last * seed[j]
			// The folded product is ≤ 2p and the previous lazy row value
			// < 2p, so their sum folds back into [0, 2p) with a single
			// conditional subtraction of 2p.
			r := (prod & maskA) + (prod >> sh2) + p - (prod >> sh1 & maskA)
			v := r + src[j-1]
			if v >= twoP {
				v -= twoP
			}
			dst[j] = v
			acc += v * x[j]
		}
		out[i] = foldReduce(acc, p, sh1, sh2, maskA)
		src, dst = dst, src
	}
}

// foldReduce fully reduces a dot accumulator via the Fermat limb fold.
// Requires acc>>(2a) < p, which bounds the folded value below 3p.
func foldReduce(acc, p uint64, sh1, sh2 uint, maskA uint64) uint64 {
	r := (acc & maskA) + (acc >> sh2) + p - (acc >> sh1 & maskA)
	if r >= p {
		r -= p
	}
	if r >= p {
		r -= p
	}
	return r
}

// The vector-ALU step specialised for the same Fermat fold: products of
// canonical elements are < p² = 2^2a + 2^(a+1) + 1, so the overflow limb
// is ≤ 1 and one conditional subtraction canonicalises the fold. Results
// are identical to the ff.AddVec/pasta.Mix/Sbox reference path; only the
// reduction strategy differs.

func addVecFold(p uint64, z, x, y ff.Vec) {
	for i := range z {
		v := x[i] + y[i]
		if v >= p {
			v -= p
		}
		z[i] = v
	}
}

func mixFold(p uint64, state ff.Vec) {
	t := len(state) / 2
	l, r := state[:t], state[t:t+t]
	for i := 0; i < t; i++ {
		s := l[i] + r[i]
		if s >= p {
			s -= p
		}
		lv := l[i] + s
		if lv >= p {
			lv -= p
		}
		rv := r[i] + s
		if rv >= p {
			rv -= p
		}
		l[i] = lv
		r[i] = rv
	}
}

func sboxFeistelFold(p uint64, sh1, sh2 uint, maskA uint64, state ff.Vec) {
	for j := len(state) - 1; j >= 1; j-- {
		x := state[j-1]
		sq := x * x
		r := (sq & maskA) + (sq >> sh2) + p - (sq >> sh1 & maskA)
		if r >= p {
			r -= p
		}
		v := state[j] + r
		if v >= p {
			v -= p
		}
		state[j] = v
	}
}

func sboxCubeFold(p uint64, sh1, sh2 uint, maskA uint64, state ff.Vec) {
	for j := range state {
		x := state[j]
		sq := x * x
		r := (sq & maskA) + (sq >> sh2) + p - (sq >> sh1 & maskA)
		if r >= p {
			r -= p
		}
		cu := r * x
		c := (cu & maskA) + (cu >> sh2) + p - (cu >> sh1 & maskA)
		if c >= p {
			c -= p
		}
		state[j] = c
	}
}

// runEvent is the event-driven scheduler: instead of ticking every unit
// every cycle it computes the next state-changing cycle — the next
// sampler word from the batched Keccak squeeze timeline, a matrix-engine
// completion, aluDoneAt/outputDoneAt, or the controller's next eligible
// dispatch — and fast-forwards to it. The intra-cycle ordering of the
// per-cycle loop (XOF emission, then engine completion, then exactly one
// controller action) is preserved at every visited cycle, and all Stats
// counters are accounted identically, so the result is bit-identical to
// runCycle (pinned by the differential tests and FuzzAccelEventStep).
func (a *Accelerator) runEvent(nonce, counter uint64, msg ff.Vec) (Result, error) {
	t := a.par.T
	mod := a.par.Mod
	p := mod.P()
	mask := mod.Mask()
	layers := a.par.AffineLayers()

	ev := a.ev
	if ev == nil || ev.t != t || ev.layers != layers {
		ev = newEvScratch(t, layers)
		a.ev = ev
	}
	ev.reset()
	ev.xof.init(nonce, counter, a.NaiveKeccak)
	xof := &ev.xof
	dg := ev.dg
	dg.reset()
	rc, rcFill, rcDone := ev.rc, ev.rcFill, ev.rcDone

	// The uint64 dot accumulator is exact when t products of a lazy row
	// value (< 2p) and a reduced state element (< p) cannot overflow.
	hiB, loB := bits.Mul64(2*p-1, p-1)
	smallDot := hiB == 0 && loB <= math.MaxUint64/uint64(t)

	// The Fermat limb fold replaces Shoup multiplication when its bounds
	// hold: MAC products (2p-1)(p-1) must fold below 2p in one subtraction
	// (overflow limb ≤ 2), and dot accumulators t·(2p-1)(p-1) below 3p
	// (overflow limb < p). True for every Fermat width the sampler can
	// reach under smallDot; checked explicitly so exotic toy moduli fall
	// back to the Shoup path.
	foldOK := false
	foldA := uint(0)
	if smallDot && mod.Kind() == ff.Fermat {
		fa := mod.Bits() - 1
		prodMax := (2*p - 1) * (p - 1)
		accMax := prodMax * uint64(t)
		if prodMax>>(2*fa) <= 2 && accMax>>(2*fa) < p {
			foldOK = true
			foldA = fa
		}
	}
	foldSh1 := foldA & 63
	foldSh2 := (2 * foldA) & 63
	foldMask := uint64(1)<<foldSh1 - 1

	var res Result
	st := &res.Stats

	state := ev.state
	copy(state, a.key)
	layer := 0
	phase := phaseMatL

	var matReady [2]bool
	engRunning := false
	var engBusyUntil int64
	engSeedID := -1
	engHalf := 0

	// Routing position, kept as (group kind, position-in-group) so the hot
	// emission loop needs no division: kind 0/1 are the two matrix seeds,
	// 2/3 the two RC halves; elemInLayer = elemKind*t + posInGroup.
	elemKind := 0
	posInGroup := 0
	routingLayer := 0
	demandDone := false
	stalled := false
	var stallStart int64

	var aluDoneAt int64 = -1
	var outputDoneAt int64 = -1
	var ctrlEarliest int64
	var endCycle int64 = -1

	maxCycles := a.WatchdogLimit
	if maxCycles <= 0 {
		maxCycles = DefaultWatchdogLimit
	}
	horizon := maxCycles - 1 // last cycle the per-cycle loop would execute

	for {
		// Next non-emission event: a running engine completes at
		// engBusyUntil; ALU/output completions are timers; a controller
		// dispatch whose data conditions already hold fires at
		// ctrlEarliest (the per-cycle loop evaluates a phase entered at
		// cycle c no earlier than c+1).
		other := int64(math.MaxInt64)
		if engRunning {
			other = engBusyUntil
		}
		switch phase {
		case phaseMatL:
			if !engRunning && dg.Ready(2*layer) && ctrlEarliest < other {
				other = ctrlEarliest
			}
		case phaseMatR:
			if matReady[0] && !engRunning && dg.Ready(2*layer+1) && ctrlEarliest < other {
				other = ctrlEarliest
			}
		case phaseALU:
			if aluDoneAt >= 0 {
				if aluDoneAt < other {
					other = aluDoneAt
				}
			} else if matReady[0] && matReady[1] && rcDone[layer][0] && rcDone[layer][1] &&
				ctrlEarliest < other {
				other = ctrlEarliest
			}
		case phaseOutput:
			if outputDoneAt < other {
				other = outputDoneAt
			}
		}

		var now int64
		if !stalled && !demandDone && xof.next1 <= other {
			// Batched squeeze/sample/route: emit words at their exact
			// cycles until an element completes a t-group (which may
			// enable a controller dispatch), backpressure sets in, the
			// routing demand ends, or another unit's event comes due.
			if xof.next1 > horizon {
				break
			}
			bound := other
			if bound > horizon {
				bound = horizon
			}
			var drawn, kept int64
			// Hoist the squeeze cursor into locals for the batch; written
			// back below (every exit from the loop falls through to it).
			next1 := xof.next1
			sqIdx := xof.sqIdx
			for next1 <= bound {
				c := next1
				// Inline the common mid-batch squeeze; emit() handles the
				// batch-end rotation bookkeeping.
				var w uint64
				if sqIdx < wordsPerBatch-1 {
					w = xof.cur[sqIdx]
					sqIdx++
					next1 = c + 1
				} else {
					xof.next1 = c
					xof.sqIdx = sqIdx
					w = xof.emit()
					next1 = xof.next1
					sqIdx = xof.sqIdx
				}
				drawn++
				now = c
				v := w & mask
				seedPhase := elemKind < 2
				if v >= p || (seedPhase && v == 0 && dg.FillingFirstElement()) {
					continue // rejected; the squeeze cycle is lost
				}
				kept++
				if seedPhase {
					dg.Push(v)
				} else {
					half := elemKind - 2
					rc[routingLayer][half][posInGroup] = v
					if posInGroup+1 == t {
						rcFill[routingLayer][half] = t
						rcDone[routingLayer][half] = true
					}
				}
				posInGroup++
				milestone := posInGroup == t
				if milestone {
					posInGroup = 0
					elemKind++
					if elemKind == 4 {
						elemKind = 0
						routingLayer++
						if routingLayer == layers {
							demandDone = true
							break
						}
					}
				}
				if elemKind < 2 && dg.Stall() {
					// The next demanded element is a seed word but both
					// ping-pong buffers are occupied: squeezing stops at
					// the next attempt cycle until an engine Release.
					stalled = true
					stallStart = next1
					break
				}
				if milestone {
					break
				}
			}
			xof.next1 = next1
			xof.sqIdx = sqIdx
			st.SqueezeBusy += drawn
			st.WordsDrawn += drawn
			st.WordsKept += kept
		} else {
			if other > horizon {
				break
			}
			now = other
		}

		// Matrix engine completion (the per-cycle loop's step 2).
		if engRunning && engBusyUntil == now {
			engRunning = false
			matReady[engHalf] = true
			dg.releaseReuse(engSeedID)
			if stalled {
				// The release unstalls the XOF; the per-cycle loop counts
				// the release cycle itself as stalled (Tick runs before
				// completions) and resumes squeezing the cycle after.
				if stallStart <= now {
					st.XOFStalled += now - stallStart + 1
					xof.next1 = now + 1
				}
				stalled = false
			}
		}

		// Controller (step 3): at most one dispatch per visited cycle.
		if now >= ctrlEarliest {
			switch phase {
			case phaseMatL:
				if !engRunning && dg.Ready(2*layer) {
					seed := dg.Acquire(2 * layer)
					engSeedID = 2 * layer
					engHalf = 0
					if foldOK {
						matApplyFold(p, foldA, seed, state[:t], ev.outBuf[0], ev.row, ev.shoup)
					} else {
						matApplyFast(mod, seed, state[:t], ev.outBuf[0], ev.row, ev.shoup, smallDot)
					}
					engBusyUntil = now + matEngineLatency(t)
					engRunning = true
					st.MatGenBusy += int64(t)
					st.MatMulBusy += int64(t)
					phase = phaseMatR
					ctrlEarliest = now + 1
				}
			case phaseMatR:
				if matReady[0] && !engRunning && dg.Ready(2*layer+1) {
					seed := dg.Acquire(2*layer + 1)
					engSeedID = 2*layer + 1
					engHalf = 1
					if foldOK {
						matApplyFold(p, foldA, seed, state[t:], ev.outBuf[1], ev.row, ev.shoup)
					} else {
						matApplyFast(mod, seed, state[t:], ev.outBuf[1], ev.row, ev.shoup, smallDot)
					}
					engBusyUntil = now + matEngineLatency(t)
					engRunning = true
					st.MatGenBusy += int64(t)
					st.MatMulBusy += int64(t)
					phase = phaseALU
					ctrlEarliest = now + 1
				}
			case phaseALU:
				if aluDoneAt < 0 {
					if matReady[0] && matReady[1] && rcDone[layer][0] && rcDone[layer][1] {
						lat := int64(latRCAdd + latMix)
						if foldOK {
							addVecFold(p, state[:t], ev.outBuf[0], rc[layer][0])
							addVecFold(p, state[t:], ev.outBuf[1], rc[layer][1])
							mixFold(p, state)
							switch {
							case layer < a.par.Rounds-1:
								sboxFeistelFold(p, foldSh1, foldSh2, foldMask, state)
								lat += latSbox
							case layer == a.par.Rounds-1:
								sboxCubeFold(p, foldSh1, foldSh2, foldMask, state)
								lat += latSbox
							}
						} else {
							copy(state[:t], ev.outBuf[0])
							copy(state[t:], ev.outBuf[1])
							ff.AddVec(mod, state[:t], state[:t], rc[layer][0])
							ff.AddVec(mod, state[t:], state[t:], rc[layer][1])
							pasta.Mix(mod, state)
							switch {
							case layer < a.par.Rounds-1:
								pasta.SboxFeistel(mod, state)
								lat += latSbox
							case layer == a.par.Rounds-1:
								pasta.SboxCube(mod, state)
								lat += latSbox
							}
						}
						aluDoneAt = now + lat
						st.VecALUBusy += lat
						ctrlEarliest = now + 1
					}
				} else if now >= aluDoneAt {
					aluDoneAt = -1
					matReady[0], matReady[1] = false, false
					layer++
					if layer == layers {
						phase = phaseOutput
						outputDoneAt = now + int64(t)
						st.OutputBusy += int64(t)
					} else {
						phase = phaseMatL
					}
					ctrlEarliest = now + 1
				}
			case phaseOutput:
				if now >= outputDoneAt {
					phase = phaseDone
					endCycle = now
				}
			}
		}
		if phase == phaseDone {
			break
		}
	}

	if endCycle < 0 {
		// No event fits inside the cycle budget: the per-cycle loop would
		// have spun to maxCycles. Account the XOF activity it would have
		// seen on the way there.
		xof.finalize(st, horizon)
		if stalled && stallStart <= horizon {
			st.XOFStalled += horizon - stallStart + 1
		}
		rcReady := [2]bool{}
		if layer < layers {
			rcReady = rcDone[layer]
		}
		mWatchdogTrips.Inc()
		return Result{}, &ErrWatchdog{
			Limit: maxCycles,
			Units: UnitSnapshot{
				Cycle:         maxCycles,
				CtrlPhase:     phase.String(),
				Layer:         layer,
				Layers:        layers,
				RoutingLayer:  routingLayer,
				ElemInLayer:   elemKind*t + posInGroup,
				XOFStalls:     st.XOFStalled,
				DataGenFull:   dg.Stall(),
				MatEngineBusy: engRunning && maxCycles < engBusyUntil,
				MatOutReady:   matReady,
				RCReady:       rcReady,
			},
			Stats: *st,
		}
	}

	st.Cycles = endCycle
	xof.finalize(st, endCycle)
	publishStats(st)
	res.KeyStream = state[:t].Clone()
	if msg != nil {
		res.Ciphertext = ff.NewVec(len(msg))
		for i := range msg {
			res.Ciphertext[i] = mod.Add(msg[i], res.KeyStream[i])
		}
	}
	return res, nil
}
