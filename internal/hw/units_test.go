package hw

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
	"repro/internal/xof"
)

// TestKeccakUnitStreamMatchesSoftwareXOF: the structural double-buffer
// unit must emit exactly the SHAKE128(nonce‖counter) word stream of the
// functional reference.
func TestKeccakUnitStreamMatchesSoftwareXOF(t *testing.T) {
	const nonce, counter = 123, 456
	u := NewKeccakUnit(nonce, counter)
	var st Stats

	// Collect 100 raw words from the unit.
	var words []uint64
	for cycle := 0; len(words) < 100 && cycle < 10000; cycle++ {
		u.Tick(&st, false)
		if u.WordValid {
			words = append(words, u.Word)
		}
	}
	if len(words) < 100 {
		t.Fatal("unit produced too few words")
	}

	// Reference: software SHAKE over the same seed.
	want := softwareWords(nonce, counter, 100)
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("word %d: unit %#x != software %#x", i, words[i], want[i])
		}
	}
}

func softwareWords(nonce, counter uint64, n int) []uint64 {
	s := xof.NewRawStream(nonce, counter)
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.NextWord()
	}
	return out
}

// TestKeccakUnitSteadyStateRate: 21 words per 26 cycles in steady state
// (paper Sec. IV-B), and the naive variant 21 per 45.
func TestKeccakUnitSteadyStateRate(t *testing.T) {
	measure := func(naive bool) float64 {
		u := NewKeccakUnit(0, 0)
		u.Naive = naive
		var st Stats
		// Warm up past the first permutation.
		for i := 0; i < 30; i++ {
			u.Tick(&st, false)
		}
		start := st.WordsDrawn
		const span = 26 * 40
		for i := 0; i < span; i++ {
			u.Tick(&st, false)
		}
		return float64(st.WordsDrawn-start) / span
	}
	par := measure(false)
	if want := 21.0 / 26.0; par < want-0.02 || par > want+0.02 {
		t.Errorf("parallel rate = %.3f words/cycle, want ≈%.3f", par, want)
	}
	naive := measure(true)
	if want := 21.0 / 45.0; naive < want-0.02 || naive > want+0.02 {
		t.Errorf("naive rate = %.3f words/cycle, want ≈%.3f", naive, want)
	}
}

// TestKeccakUnitStall: asserting backpressure holds the squeeze pointer
// without losing words.
func TestKeccakUnitStall(t *testing.T) {
	u := NewKeccakUnit(7, 7)
	var st Stats
	var unstalled []uint64
	for len(unstalled) < 30 {
		u.Tick(&st, false)
		if u.WordValid {
			unstalled = append(unstalled, u.Word)
		}
	}

	u2 := NewKeccakUnit(7, 7)
	var st2 Stats
	var stalled []uint64
	i := 0
	for len(stalled) < 30 {
		// Stall every third cycle.
		stall := i%3 == 0
		u2.Tick(&st2, stall)
		if u2.WordValid {
			stalled = append(stalled, u2.Word)
		}
		i++
	}
	for k := range unstalled {
		if unstalled[k] != stalled[k] {
			t.Fatalf("word %d lost/duplicated under backpressure", k)
		}
	}
}

func TestSamplerStageRejects(t *testing.T) {
	s := NewSamplerStage(ff.P17)
	var st Stats
	// Word above p after masking: 0x1FFFF > 65537.
	s.Tick(&st, true, 0x1FFFF, false)
	if s.ElemValid {
		t.Fatal("accepted out-of-range element")
	}
	// Valid word.
	s.Tick(&st, true, 42, false)
	if !s.ElemValid || s.Elem != 42 {
		t.Fatalf("valid=%v elem=%d", s.ElemValid, s.Elem)
	}
	// Zero with rejectZero.
	s.Tick(&st, true, 1<<17, true) // masks to 0
	if s.ElemValid {
		t.Fatal("accepted zero under rejectZero")
	}
	// No input.
	s.Tick(&st, false, 999, false)
	if s.ElemValid {
		t.Fatal("emitted element without input word")
	}
	if st.WordsKept != 1 {
		t.Fatalf("kept = %d, want 1", st.WordsKept)
	}
}

func TestDataGenPingPong(t *testing.T) {
	d := NewDataGen(4)
	if d.Stall() {
		t.Fatal("fresh DataGen stalls")
	}
	// Fill vector 0.
	for i := 0; i < 4; i++ {
		if i == 0 && !d.FillingFirstElement() {
			t.Fatal("first element not flagged")
		}
		d.Push(uint64(10 + i))
	}
	if !d.Ready(0) {
		t.Fatal("vector 0 not ready")
	}
	// Second buffer still available.
	if d.Stall() {
		t.Fatal("stall with one free buffer")
	}
	for i := 0; i < 4; i++ {
		d.Push(uint64(20 + i))
	}
	// Both full now: must stall.
	if !d.Stall() {
		t.Fatal("no stall with both buffers full")
	}
	// Consume vector 0.
	v0 := d.Acquire(0)
	if !v0.Equal(ff.Vec{10, 11, 12, 13}) {
		t.Fatalf("v0 = %v", v0)
	}
	// Acquired (held) but not released: still stalled.
	if !d.Stall() {
		t.Fatal("buffer reusable before Release")
	}
	d.Release(0)
	if d.Stall() {
		t.Fatal("still stalled after Release")
	}
	// Vector 1 remains intact.
	if !d.Ready(1) {
		t.Fatal("vector 1 lost")
	}
	if v1 := d.Acquire(1); !v1.Equal(ff.Vec{20, 21, 22, 23}) {
		t.Fatalf("v1 = %v", v1)
	}
}

func TestDataGenPanicsOnBadAcquire(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDataGen(4).Acquire(3)
}

func TestMatEngineComputesMatVec(t *testing.T) {
	mod := ff.P17
	tt := 8
	e := NewMatEngine(tt, mod)
	s := xof.NewSampler(mod, 3, 3)
	seed := s.Vector(tt, true)
	x := s.Vector(tt, false)

	var st Stats
	if !e.Idle(0) {
		t.Fatal("fresh engine busy")
	}
	e.Start(0, &st, seed, x, 0)
	if e.Idle(1) {
		t.Fatal("engine idle right after start")
	}
	var out ff.Vec
	for now := int64(1); now < 100; now++ {
		if res, id, done := e.Done(now); done {
			if id != 0 {
				t.Fatalf("seed id = %d", id)
			}
			if now < matEngineLatency(tt) {
				t.Fatalf("completed at %d, before latency %d", now, matEngineLatency(tt))
			}
			out = res
			break
		}
	}
	if out == nil {
		t.Fatal("engine never completed")
	}
	want := ff.NewVec(tt)
	pasta.ExpandMatrix(mod, seed).MulVec(mod, want, x)
	if !out.Equal(want) {
		t.Fatalf("engine result %v != M·x %v", out, want)
	}
	if st.MatGenBusy != int64(tt) || st.MatMulBusy != int64(tt) {
		t.Fatalf("busy accounting: gen=%d mul=%d, want %d each", st.MatGenBusy, st.MatMulBusy, tt)
	}
}
