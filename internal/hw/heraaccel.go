package hw

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/hera"
)

// HeraAccelerator is a cycle-accurate model of a HERA datapath built from
// the same unit library as the PASTA cryptoprocessor — the concrete
// follow-up the paper's Sec. VI asks for ("implement the other HHE
// enabling SE schemes and show the impact of the changes ... post-
// hardware realization").
//
// Architectural contrast with the PASTA design: HERA's linear layers are
// fixed shift-add circulants, so there is no matrix generation or
// multiplication engine at all; the only multipliers are one bank of 16
// for the randomized key schedule (k ⊙ rc) and the cube S-box. The XOF
// demand drops from 4t per affine layer to 16 per round key, which the
// model shows directly in the cycle count.
type HeraAccelerator struct {
	par hera.Params
	key ff.Vec
}

// NewHeraAccelerator validates inputs and returns the model.
func NewHeraAccelerator(par hera.Params, key hera.Key) (*HeraAccelerator, error) {
	if _, err := hera.NewParams(par.Rounds, par.Mod); err != nil {
		return nil, err
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	return &HeraAccelerator{par: par, key: ff.Vec(key).Clone()}, nil
}

// HERA datapath latencies, mirroring the PASTA ALU constants: each
// vector-wide pass over the 16-element state through the shared
// adder/multiplier bank is a 3-cycle pipelined operation.
const (
	latHeraARK  = 3 // k ⊙ rc + add, one multiplier pass
	latHeraMC   = 3 // MixColumns: shift-add circulant
	latHeraMR   = 3 // MixRows
	latHeraCube = 6 // two dependent multiplier passes
)

// KeyStream runs one HERA block and returns keystream plus cycle stats.
// The schedule mirrors the PASTA controller: the XOF streams round-
// constant elements; each ARK fires as soon as its 16 elements arrived
// and the previous round's datapath finished; the fixed linear layers and
// the cube execute between ARKs and are usually hidden under the XOF —
// except at the finalization, whose doubled linear layer trails the last
// squeeze.
func (a *HeraAccelerator) KeyStream(nonce, counter uint64) (Result, error) {
	mod := a.par.Mod
	xofU := NewKeccakUnit(nonce, counter)
	samp := NewSamplerStage(mod)

	var res Result
	st := &res.Stats

	state := a.key.Clone()
	rc := ff.NewVec(hera.StateSize)
	rcFill := 0
	arkIdx := 0 // number of ARKs applied
	totalARKs := a.par.Rounds + 1

	var datapathBusyUntil int64
	var doneAt int64 = -1

	maxCycles := int64(1_000_000)
	var cycle int64
	for ; cycle < maxCycles; cycle++ {
		needMore := arkIdx < totalARKs
		// Backpressure: hold the squeeze while a complete constant vector
		// waits for the datapath.
		stall := !needMore || rcFill == hera.StateSize
		xofU.Tick(st, stall)
		if xofU.Stalled && needMore {
			st.XOFStalled++
		}
		// HERA round constants must be nonzero (the randomized key
		// schedule multiplies them into the key).
		samp.Tick(st, xofU.WordValid, xofU.Word, true)

		if samp.ElemValid && needMore {
			rc[rcFill] = samp.Elem
			rcFill++
		}

		// Fire the next ARK when its constants are ready and the
		// datapath has drained the previous round.
		if needMore && rcFill == hera.StateSize && cycle >= datapathBusyUntil {
			// Pre-ARK linear/nonlinear layers (skipped before ARK_0).
			lat := int64(latHeraARK)
			if arkIdx > 0 {
				hera.MixColumns(mod, state)
				hera.MixRows(mod, state)
				lat += latHeraMC + latHeraMR
				hera.Cube(mod, state)
				lat += latHeraCube
				st.VecALUBusy += latHeraMC + latHeraMR + latHeraCube
				if arkIdx == a.par.Rounds {
					// Finalization: second linear layer after the cube.
					hera.MixColumns(mod, state)
					hera.MixRows(mod, state)
					lat += latHeraMC + latHeraMR
					st.VecALUBusy += latHeraMC + latHeraMR
				}
			}
			// ARK: state += k ⊙ rc.
			for i := range state {
				state[i] = mod.Add(state[i], mod.Mul(a.key[i], rc[i]))
			}
			st.MatMulBusy += latHeraARK // the multiplier bank
			st.VecALUBusy += latHeraARK
			datapathBusyUntil = cycle + lat
			rcFill = 0
			arkIdx++
			if arkIdx == totalARKs {
				// Output drain: 16 keystream elements, one per cycle.
				doneAt = datapathBusyUntil + int64(hera.StateSize)
				st.OutputBusy += int64(hera.StateSize)
			}
		}
		if doneAt >= 0 && cycle >= doneAt {
			break
		}
	}
	if cycle >= maxCycles {
		return Result{}, fmt.Errorf("hw: HERA accelerator did not finish")
	}
	st.Cycles = cycle
	res.KeyStream = state.Clone()
	return res, nil
}
