package hw

import "repro/internal/obs"

// Metric handles for the cycle-accurate accelerator model. Each completed
// Run publishes its per-unit busy/stall Stats — the numbers behind the
// paper's Fig. 7 utilization shares — as cumulative counters, so a fleet
// of runs can be monitored the same way the software engine is.
//
//	hw.runs            completed accelerator runs
//	hw.cycles          total accelerator cycles across runs
//	hw.run_cycles      per-run cycle-count histogram
//	hw.keccak_busy     cycles the Keccak round function was computing
//	hw.squeeze_busy    cycles a word was squeezed out of the XOF
//	hw.xof_stalled     cycles the XOF was backpressured by a full DataGen
//	hw.matgen_busy     cycles the MatGen MAC bank was active
//	hw.matmul_busy     cycles the MatMul multiplier bank was active
//	hw.vecalu_busy     cycles the vector ALU was active
//	hw.output_busy     cycles spent streaming results out
//	hw.words_drawn     64-bit XOF words squeezed
//	hw.words_kept      words surviving rejection sampling
//	hw.permutations    Keccak-f permutations completed
//	hw.watchdog_trips  runs aborted by the cycle watchdog
var (
	mRuns          = obs.Default().Counter("hw.runs")
	mCycles        = obs.Default().Counter("hw.cycles")
	mRunCycles     = obs.Default().Histogram("hw.run_cycles")
	mKeccakBusy    = obs.Default().Counter("hw.keccak_busy")
	mSqueezeBusy   = obs.Default().Counter("hw.squeeze_busy")
	mXOFStalled    = obs.Default().Counter("hw.xof_stalled")
	mMatGenBusy    = obs.Default().Counter("hw.matgen_busy")
	mMatMulBusy    = obs.Default().Counter("hw.matmul_busy")
	mVecALUBusy    = obs.Default().Counter("hw.vecalu_busy")
	mOutputBusy    = obs.Default().Counter("hw.output_busy")
	mWordsDrawn    = obs.Default().Counter("hw.words_drawn")
	mWordsKept     = obs.Default().Counter("hw.words_kept")
	mPermutations  = obs.Default().Counter("hw.permutations")
	mWatchdogTrips = obs.Default().Counter("hw.watchdog_trips")
)

// publishStats exports one completed run's Stats to the registry.
func publishStats(st *Stats) {
	mRuns.Inc()
	mCycles.Add(st.Cycles)
	mRunCycles.Observe(st.Cycles)
	mKeccakBusy.Add(st.KeccakBusy)
	mSqueezeBusy.Add(st.SqueezeBusy)
	mXOFStalled.Add(st.XOFStalled)
	mMatGenBusy.Add(st.MatGenBusy)
	mMatMulBusy.Add(st.MatMulBusy)
	mVecALUBusy.Add(st.VecALUBusy)
	mOutputBusy.Add(st.OutputBusy)
	mWordsDrawn.Add(st.WordsDrawn)
	mWordsKept.Add(st.WordsKept)
	mPermutations.Add(st.Permutations)
}
