package hw

import (
	"repro/internal/ff"
	"repro/internal/pasta"
)

// matEngineLatency returns the paper's Sec. III-C pipeline latency for
// one combined matrix generation + multiplication of a t×t matrix:
// 6 + t + log2(t) cycles (pipeline fill between the MAC and the
// multiply/adder-tree stages, one matrix row per cycle in steady state).
func matEngineLatency(t int) int64 {
	return 6 + int64(t) + int64(ceilLog2(t))
}

func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// MatEngine models the paired MatGen/MatMul units of Fig. 5: one bank of
// t modular MAC units expands the invertible matrix row by row from its
// seed (eq. 1, storing only the seed row and the previous row), while the
// second bank of t modular multipliers computes the dot product of each
// freshly generated row with the state half, accumulated through the
// pipelined adder tree of Fig. 4.
type MatEngine struct {
	t   int
	mod ff.Modulus

	busyUntil int64
	result    ff.Vec // published at busyUntil
	seedID    int    // DataGen buffer to release on completion
	running   bool
}

// NewMatEngine builds the engine for block size t over mod.
func NewMatEngine(t int, mod ff.Modulus) *MatEngine {
	return &MatEngine{t: t, mod: mod}
}

// Idle reports whether a new task may start.
func (e *MatEngine) Idle(now int64) bool { return !e.running || now >= e.busyUntil }

// Start launches M(seed)·x at cycle now. The functional result is
// computed with the same streaming row recurrence the hardware uses and
// becomes architecturally visible at completion time.
func (e *MatEngine) Start(now int64, st *Stats, seed, x ff.Vec, seedID int) {
	out := ff.NewVec(e.t)
	row := seed.Clone()
	out[0] = ff.Dot(e.mod, row, x)
	for i := 1; i < e.t; i++ {
		row = pasta.NextMatrixRow(e.mod, seed, row)
		out[i] = ff.Dot(e.mod, row, x)
	}
	e.result = out
	e.seedID = seedID
	e.busyUntil = now + matEngineLatency(e.t)
	e.running = true
	// Both multiplier banks are active for the t row cycles.
	st.MatGenBusy += int64(e.t)
	st.MatMulBusy += int64(e.t)
}

// Done reports completion and returns the result once now has reached the
// pipeline latency.
func (e *MatEngine) Done(now int64) (ff.Vec, int, bool) {
	if e.running && now >= e.busyUntil {
		e.running = false
		return e.result, e.seedID, true
	}
	return nil, 0, false
}
