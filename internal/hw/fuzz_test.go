package hw

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// FuzzAccelEventStep is the differential fuzz target behind the event
// engine's equivalence claim: for a fuzzer-chosen reduced instance,
// modulus, Keccak scheduling mode, watchdog budget, and (nonce, counter)
// pair, the event-driven engine must reproduce the per-cycle oracle
// bit-exactly — same keystream, same Stats down to every stall counter,
// and on a watchdog trip the same typed error with the same unit
// snapshot. runBothSteppings (eventstep_test.go) does the comparison;
// this target feeds it adversarial shapes the hand-written sweeps may
// miss, in particular odd t/round combinations where the sampler runs
// whole layers ahead of the datapath, and tight watchdog budgets that
// turn every intermediate cycle into an observable trip point.
func FuzzAccelEventStep(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0), uint64(0), uint64(0), false, uint16(0))
	f.Add(uint8(2), uint8(1), uint8(1), uint64(1), uint64(7), true, uint16(0))
	f.Add(uint8(8), uint8(3), uint8(2), uint64(42), uint64(3), false, uint16(97))
	f.Add(uint8(3), uint8(4), uint8(3), uint64(5), uint64(0), true, uint16(350))
	widths := []uint{17, 33, 54, 60}
	f.Fuzz(func(t *testing.T, tSel, rSel, wSel uint8, nonce, counter uint64, naive bool, wd uint16) {
		size := 2 + int(tSel%7)   // t ∈ [2, 8]
		rounds := 1 + int(rSel%4) // R ∈ [1, 4]
		mod := ff.StandardModuli[widths[wSel%4]]
		par, err := pasta.ToyParams(size, rounds, mod)
		if err != nil {
			t.Skip()
		}
		key := pasta.KeyFromSeed(par, "fuzz-eventstep")
		// wd == 0 keeps the default budget (run completes); small values
		// exercise mid-flight watchdog aborts in both engines.
		runBothSteppings(t, par, key, nonce, counter, naive, int64(wd), nil)
	})
}
