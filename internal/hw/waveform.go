package hw

import (
	"fmt"
	"io"
)

// Waveform records per-cycle signal activity of the accelerator and
// exports it as a Value Change Dump (IEEE 1364 VCD), the standard
// waveform interchange format — the model's run can be inspected in
// GTKWave like an RTL simulation.
type Waveform struct {
	samples []waveSample
}

// waveSample is the signal state of one cycle.
type waveSample struct {
	cycle      int64
	wordValid  bool
	elemValid  bool
	keccakBusy bool
	matBusy    bool
	aluBusy    bool
	outBusy    bool
	stalled    bool
	layer      uint8
	phase      uint8
}

// signal metadata: printable single-character VCD identifiers.
var vcdSignals = []struct {
	id   byte
	name string
	bits int
}{
	{'!', "xof_word_valid", 1},
	{'"', "sampler_elem_valid", 1},
	{'#', "keccak_busy", 1},
	{'$', "matengine_busy", 1},
	{'%', "vecalu_busy", 1},
	{'&', "output_busy", 1},
	{'\'', "xof_stalled", 1},
	{'(', "layer", 4},
	{')', "ctrl_phase", 3},
}

func (w *Waveform) record(s waveSample) {
	w.samples = append(w.samples, s)
}

// Cycles returns the number of recorded cycles.
func (w *Waveform) Cycles() int { return len(w.samples) }

// WriteVCD emits the recorded activity as a VCD document. The timescale
// maps one clock cycle to 1 ns (a 1 GHz reference clock).
func (w *Waveform) WriteVCD(out io.Writer) error {
	if len(w.samples) == 0 {
		return fmt.Errorf("hw: waveform has no samples")
	}
	hdr := "$date repro $end\n$version pasta-on-edge cycle model $end\n$timescale 1ns $end\n" +
		"$scope module pasta_accel $end\n"
	if _, err := io.WriteString(out, hdr); err != nil {
		return err
	}
	for _, sig := range vcdSignals {
		kind := "wire"
		if _, err := fmt.Fprintf(out, "$var %s %d %c %s $end\n", kind, sig.bits, sig.id, sig.name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(out, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	var prev waveSample
	first := true
	for _, s := range w.samples {
		var changes []string
		bit := func(id byte, cur, old bool) {
			if first || cur != old {
				v := '0'
				if cur {
					v = '1'
				}
				changes = append(changes, fmt.Sprintf("%c%c", v, id))
			}
		}
		vec := func(id byte, bits int, cur, old uint8) {
			if first || cur != old {
				changes = append(changes, fmt.Sprintf("b%b %c", cur, id))
			}
			_ = bits
		}
		bit('!', s.wordValid, prev.wordValid)
		bit('"', s.elemValid, prev.elemValid)
		bit('#', s.keccakBusy, prev.keccakBusy)
		bit('$', s.matBusy, prev.matBusy)
		bit('%', s.aluBusy, prev.aluBusy)
		bit('&', s.outBusy, prev.outBusy)
		bit('\'', s.stalled, prev.stalled)
		vec('(', 4, s.layer, prev.layer)
		vec(')', 3, s.phase, prev.phase)
		if len(changes) > 0 {
			if _, err := fmt.Fprintf(out, "#%d\n", s.cycle); err != nil {
				return err
			}
			for _, c := range changes {
				if _, err := fmt.Fprintln(out, c); err != nil {
					return err
				}
			}
		}
		prev = s
		first = false
	}
	_, err := fmt.Fprintf(out, "#%d\n", w.samples[len(w.samples)-1].cycle+1)
	return err
}
