package hw

import (
	"encoding/binary"

	"repro/internal/keccak"
)

// xofPhase enumerates the KeccakUnit control states.
type xofPhase int

const (
	xofAbsorb    xofPhase = iota // loading the padded seed block (1 cycle)
	xofFirstPerm                 // initial permutation, nothing to squeeze yet
	xofSqueeze                   // emitting one word per cycle; next permutation runs in parallel
	xofGap                       // the paper's 5-cycle control gap between squeeze batches
)

// KeccakUnit is the structural model of the paper's high-performance
// SHAKE128 core (Sec. III-A): two 1600-bit state buffers let the next
// Keccak-f permutation (24 cycles, one round per cycle) run concurrently
// with squeezing the current 21-word rate block, at the cost of an extra
// five control cycles between batches — 26 cycles per 21 words in steady
// state instead of 24 + 21.
type KeccakUnit struct {
	cur, next keccak.State // double buffer: cur is squeezed, next is permuted

	// Naive disables the double-buffered overlap: the next permutation
	// only starts after the current rate block is fully squeezed, as in a
	// single-state-buffer design. Sec. IV-B: "the clock cycle almost
	// doubles for a naive Keccak implementation". Used by the ablation
	// benchmarks.
	Naive bool

	phase      xofPhase
	permRound  int // next Keccak round to execute on `next` (0..24)
	squeezeIdx int // next rate word to emit from `cur` (0..21)
	gapLeft    int

	seed [16]byte

	// Per-cycle outputs, valid after Tick.
	WordValid bool
	Word      uint64
	Stalled   bool // consumer asserted backpressure this cycle
}

// gapCycles is the control overhead between squeeze batches (Sec. IV-B:
// "adding only an extra five clock cycles between two squeezes").
const gapCycles = 5

// wordsPerBatch is the SHAKE128 rate in 64-bit words.
const wordsPerBatch = keccak.Rate128 / 8

// NewKeccakUnit prepares the unit with the PASTA seed nonce‖counter
// (big-endian), matching xof.NewSampler.
func NewKeccakUnit(nonce, counter uint64) *KeccakUnit {
	u := &KeccakUnit{phase: xofAbsorb}
	binary.BigEndian.PutUint64(u.seed[0:8], nonce)
	binary.BigEndian.PutUint64(u.seed[8:16], counter)
	return u
}

// Tick advances one clock cycle. stall indicates the downstream DataGen
// cannot accept a word this cycle (both ping-pong buffers full); the unit
// then holds its squeeze pointer, exactly as the hardware would gate the
// squeeze register enable.
func (u *KeccakUnit) Tick(st *Stats, stall bool) {
	u.WordValid = false
	u.Stalled = false

	switch u.phase {
	case xofAbsorb:
		// XOR the padded seed block into the zero state (one cycle: the
		// rate registers load in parallel).
		var block [keccak.Rate128]byte
		copy(block[:], u.seed[:])
		block[len(u.seed)] ^= 0x1F      // SHAKE domain separation
		block[keccak.Rate128-1] ^= 0x80 // final padding bit
		for i := 0; i < keccak.Rate128/8; i++ {
			u.next[i] ^= binary.LittleEndian.Uint64(block[8*i : 8*i+8])
		}
		u.permRound = 0
		u.phase = xofFirstPerm

	case xofFirstPerm:
		u.next.Round(u.permRound)
		u.permRound++
		st.KeccakBusy++
		if u.permRound == 24 {
			st.Permutations++
			u.beginBatch()
		}

	case xofSqueeze:
		// The next permutation proceeds regardless of squeeze stalls —
		// unless the unit models the naive single-buffer design, which
		// cannot permute while its only state is being squeezed.
		if !u.Naive && u.permRound < 24 {
			u.next.Round(u.permRound)
			u.permRound++
			st.KeccakBusy++
			if u.permRound == 24 {
				st.Permutations++
			}
		}
		if stall {
			u.Stalled = true
			return
		}
		u.Word = u.cur[u.squeezeIdx]
		u.WordValid = true
		u.squeezeIdx++
		st.SqueezeBusy++
		st.WordsDrawn++
		if u.squeezeIdx == wordsPerBatch {
			if u.Naive {
				// Single buffer: the full 24-cycle permutation runs only
				// now, in place of the 5-cycle control gap.
				u.gapLeft = 0
				u.permRound = 0
			} else {
				u.gapLeft = gapCycles
			}
			u.phase = xofGap
		}

	case xofGap:
		if u.permRound < 24 {
			u.next.Round(u.permRound)
			u.permRound++
			st.KeccakBusy++
			if u.permRound == 24 {
				st.Permutations++
			}
		}
		if u.gapLeft > 0 {
			u.gapLeft--
		}
		if u.gapLeft == 0 && u.permRound == 24 {
			u.beginBatch()
		}
	}
}

// beginBatch promotes the freshly permuted state to the squeeze buffer
// and starts permuting its successor in the spare buffer.
func (u *KeccakUnit) beginBatch() {
	u.cur = u.next
	// The spare buffer reloads from cur and permutation restarts.
	u.next = u.cur
	u.permRound = 0
	u.squeezeIdx = 0
	u.phase = xofSqueeze
}
