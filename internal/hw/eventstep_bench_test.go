package hw

import (
	"fmt"
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// BenchmarkAccelKeystream measures one cycle-accurate keystream block per
// op in both stepping modes — the number behind the event engine's
// ≥10× wall-clock claim (the modelled cycle counts are bit-identical;
// only the wall time differs). Wired into `make bench-json` so the
// before/after lands in BENCH_pasta.json.
func BenchmarkAccelKeystream(b *testing.B) {
	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		par := pasta.MustParams(v, ff.StandardModuli[17])
		key := pasta.KeyFromSeed(par, "bench")
		for _, mode := range []StepMode{StepEvent, StepCycle} {
			b.Run(fmt.Sprintf("%v/step=%v", v, mode), func(b *testing.B) {
				acc, err := NewAccelerator(par, key)
				if err != nil {
					b.Fatal(err)
				}
				acc.Step = mode
				b.ReportAllocs()
				var cycles int64
				for i := 0; i < b.N; i++ {
					res, err := acc.KeyStream(1, uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Stats.Cycles
				}
				b.ReportMetric(float64(cycles), "cycles/block")
			})
		}
	}
}
