// Package hw is a cycle-accurate software model of the PASTA
// cryptoprocessor of the paper (Fig. 6): a double-buffered SHAKE128 XOF
// unit feeding a rejection sampler and ping-pong DataGen buffers, an
// invertible-matrix generation MAC bank, a matrix-multiplication bank
// with a pipelined adder tree, and a vector ALU for round-constant
// addition, Mix, and the S-boxes — all sequenced by a controller that
// implements the Fig. 3 schedule.
//
// Every unit is a clocked state machine advanced one cycle at a time by
// the Accelerator; the model therefore reproduces the paper's cycle
// counts (Table II, Sec. IV-B) endogenously, including their dependence
// on the rejection-sampling behaviour of the chosen nonce, while its
// functional output is checked bit-exactly against the reference cipher
// in internal/pasta.
package hw

import "fmt"

// Stats accumulates per-unit occupancy over a run, reproducing the kind
// of schedule-utilization picture Fig. 3 of the paper draws.
type Stats struct {
	Cycles int64 // total cycles of the run

	KeccakBusy  int64 // cycles the Keccak round function was computing
	SqueezeBusy int64 // cycles a word was squeezed out of the XOF
	XOFStalled  int64 // cycles the XOF had output but DataGen was full
	MatGenBusy  int64 // cycles the MatGen MAC bank was active
	MatMulBusy  int64 // cycles the MatMul multiplier bank was active
	VecALUBusy  int64 // cycles the vector ALU (RC add/Mix/S-box) was active
	OutputBusy  int64 // cycles spent streaming the result out

	WordsDrawn   int64 // 64-bit words squeezed
	WordsKept    int64 // words that survived rejection sampling
	Permutations int64 // Keccak-f permutations completed
}

// Utilization returns unit busy fractions keyed by unit name.
func (s Stats) Utilization() map[string]float64 {
	if s.Cycles == 0 {
		return nil
	}
	c := float64(s.Cycles)
	return map[string]float64{
		"keccak":  float64(s.KeccakBusy) / c,
		"squeeze": float64(s.SqueezeBusy) / c,
		"matgen":  float64(s.MatGenBusy) / c,
		"matmul":  float64(s.MatMulBusy) / c,
		"vecalu":  float64(s.VecALUBusy) / c,
		"output":  float64(s.OutputBusy) / c,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d keccak=%d squeeze=%d matgen=%d matmul=%d vecalu=%d words=%d kept=%d perms=%d",
		s.Cycles, s.KeccakBusy, s.SqueezeBusy, s.MatGenBusy, s.MatMulBusy, s.VecALUBusy,
		s.WordsDrawn, s.WordsKept, s.Permutations)
}

// TraceEvent records a schedule milestone for the Fig. 3-style trace.
type TraceEvent struct {
	Cycle int64
	Unit  string
	Event string
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%6d  %-8s %s", e.Cycle, e.Unit, e.Event)
}

// Frequency constants for the paper's three evaluation platforms (Table II).
const (
	FPGAHz  = 75e6  // Artix-7 AC701 target
	ASICHz  = 1e9   // TSMC 28nm / ASAP7 7nm target
	RISCVHz = 100e6 // RISC-V SoC on 130nm/65nm
	CPUHz   = 2.2e9 // Intel Xeon E5-2699 v4 of the PASTA paper [9]
)

// Microseconds converts a cycle count at the given clock to µs.
func Microseconds(cycles int64, hz float64) float64 {
	return float64(cycles) / hz * 1e6
}
