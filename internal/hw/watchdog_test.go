package hw

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/pasta"
)

// TestWatchdogTripCarriesDiagnostics forces a non-terminating schedule by
// giving the accelerator a cycle budget far below one block's runtime and
// asserts the typed error carries per-unit state — the diagnosability
// requirement that replaced the bare "did not finish" string.
func TestWatchdogTripCarriesDiagnostics(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, err := NewAccelerator(par, pasta.KeyFromSeed(par, "wd"))
	if err != nil {
		t.Fatal(err)
	}
	tripsBefore := obs.Default().Counter("hw.watchdog_trips").Value()
	acc.WatchdogLimit = 100 // a real block needs ~1,600 cycles
	_, err = acc.KeyStream(1, 0)
	if err == nil {
		t.Fatal("100-cycle budget completed a block")
	}
	var wd *ErrWatchdog
	if !errors.As(err, &wd) {
		t.Fatalf("error is %T, want *ErrWatchdog: %v", err, err)
	}
	if wd.Limit != 100 || wd.Units.Cycle != 100 {
		t.Fatalf("limit/cycle = %d/%d, want 100/100", wd.Limit, wd.Units.Cycle)
	}
	if wd.Units.CtrlPhase == "" || wd.Units.CtrlPhase == "done" {
		t.Fatalf("controller phase %q not diagnostic", wd.Units.CtrlPhase)
	}
	if wd.Units.Layers != par.AffineLayers() {
		t.Fatalf("snapshot layers = %d, want %d", wd.Units.Layers, par.AffineLayers())
	}
	if wd.Units.Layer < 0 || wd.Units.Layer > wd.Units.Layers ||
		wd.Units.RoutingLayer < wd.Units.Layer {
		t.Fatalf("implausible layer state: %+v", wd.Units)
	}
	// At cycle 100 the XOF has been running; its occupancy must appear in
	// the carried stats (this is what makes a hang attributable).
	if wd.Stats.KeccakBusy == 0 && wd.Stats.SqueezeBusy == 0 {
		t.Fatalf("carried stats show no XOF activity: %+v", wd.Stats)
	}
	for _, frag := range []string{"watchdog", "ctrl=", "routing=", "xofStalls="} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error text missing %q: %s", frag, err)
		}
	}
	if got := obs.Default().Counter("hw.watchdog_trips").Value() - tripsBefore; got != 1 {
		t.Fatalf("hw.watchdog_trips advanced by %d, want 1", got)
	}
	// The accelerator stays usable: a sane budget completes.
	acc.WatchdogLimit = 0 // back to the default
	if _, err := acc.KeyStream(1, 0); err != nil {
		t.Fatalf("run after watchdog trip: %v", err)
	}
}

// TestWatchdogDefaultUnchanged: normal runs finish far below the default
// budget and publish their stats to the metrics registry.
func TestWatchdogDefaultUnchanged(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, err := NewAccelerator(par, pasta.KeyFromSeed(par, "wd2"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	runsBefore := reg.Counter("hw.runs").Value()
	cyclesBefore := reg.Counter("hw.cycles").Value()
	res, err := acc.KeyStream(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= DefaultWatchdogLimit {
		t.Fatalf("block took %d cycles, at the watchdog limit", res.Stats.Cycles)
	}
	if got := reg.Counter("hw.runs").Value() - runsBefore; got != 1 {
		t.Fatalf("hw.runs advanced by %d, want 1", got)
	}
	if got := reg.Counter("hw.cycles").Value() - cyclesBefore; got != res.Stats.Cycles {
		t.Fatalf("hw.cycles advanced by %d, want %d", got, res.Stats.Cycles)
	}
}
