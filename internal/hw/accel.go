package hw

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// ALU latency constants (Sec. III-D): the t parallel modular adders make
// each vector-wide pass a 3-cycle pipelined operation; Mix is computed as
// three vector additions; the S-boxes reuse the shared multiplier and
// adder banks for two (cube) or one-plus-one (Feistel) passes.
const (
	latRCAdd = 3
	latMix   = 3
	latSbox  = 3
)

// Result is the outcome of one accelerated keystream/encryption block.
type Result struct {
	KeyStream  ff.Vec // t elements (the truncated permutation output)
	Ciphertext ff.Vec // message + keystream, when a message was supplied
	Stats      Stats
	Trace      []TraceEvent
}

// Accelerator is the top-level PASTA cryptoprocessor model of Fig. 6.
// One instance holds the key registers (the 544-bit "PASTA state" memory
// of the SoC peripheral, scaled to the parameter set) and processes one
// block per Run call, exactly like the block-by-block peripheral.
type Accelerator struct {
	par pasta.Params
	key ff.Vec

	// TraceEnabled records schedule milestones into Result.Trace.
	TraceEnabled bool

	// NaiveKeccak selects the single-buffer XOF ablation (Sec. IV-B's
	// "naive Keccak implementation": no permutation/squeeze overlap).
	NaiveKeccak bool

	// Fault, when non-nil, injects a transient fault into the datapath
	// (the threat model of the SASTA fault analysis the paper cites as
	// future scope). The fault hits exactly one Run; Fault is consumed.
	Fault *FaultSpec

	// Waveform, when non-nil, records per-cycle signal activity of the
	// next Run for VCD export (cmd/hwsim -vcd).
	Waveform *Waveform

	// WatchdogLimit bounds each run's cycle count; a run that exceeds it
	// aborts with a typed *ErrWatchdog carrying every unit's state. Zero
	// or negative selects DefaultWatchdogLimit.
	WatchdogLimit int64

	// Step selects the simulation stepping strategy. The default
	// (StepAuto) fast-forwards between events; runs that need per-cycle
	// observability (Waveform, TraceEnabled, Fault) always take the
	// per-cycle oracle loop regardless of Step.
	Step StepMode

	// ev is the event engine's reusable scratch (lazily allocated).
	ev *evScratch
}

// NewAccelerator validates parameters and key and returns the model.
func NewAccelerator(par pasta.Params, key pasta.Key) (*Accelerator, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	return &Accelerator{par: par, key: ff.Vec(key).Clone()}, nil
}

// Params returns the accelerator's parameter set.
func (a *Accelerator) Params() pasta.Params { return a.par }

// KeyStream runs the cryptoprocessor for one block and returns the
// keystream with cycle-accurate statistics.
func (a *Accelerator) KeyStream(nonce, counter uint64) (Result, error) {
	return a.run(nonce, counter, nil)
}

// EncryptBlock runs the cryptoprocessor and adds the keystream to msg
// (up to t elements), as the output adder of Fig. 6 does while the
// ciphertext streams out.
func (a *Accelerator) EncryptBlock(nonce, counter uint64, msg ff.Vec) (Result, error) {
	if len(msg) > a.par.T {
		return Result{}, fmt.Errorf("hw: message block has %d elements, max %d", len(msg), a.par.T)
	}
	for i, v := range msg {
		if v >= a.par.Mod.P() {
			return Result{}, fmt.Errorf("hw: message element %d = %d out of range", i, v)
		}
	}
	return a.run(nonce, counter, msg)
}

// controller phases for one affine layer.
type layerPhase int

const (
	phaseMatL   layerPhase = iota // waiting for / running the left matrix task
	phaseMatR                     // waiting for / running the right matrix task
	phaseALU                      // waiting for RC vectors, then RC add + Mix (+ S-box)
	phaseOutput                   // final truncation/ciphertext drain
	phaseDone
)

// run dispatches one block to the selected stepping engine. The
// per-cycle loop (runCycle) is the oracle and the forced path whenever a
// per-cycle observer is armed; everything else fast-forwards through
// runEvent, which is pinned bit-identical to the oracle — same keystream,
// same Stats, same watchdog behaviour — by the differential suite.
func (a *Accelerator) run(nonce, counter uint64, msg ff.Vec) (Result, error) {
	if a.Step != StepCycle && !a.TraceEnabled && a.Waveform == nil && a.Fault == nil {
		return a.runEvent(nonce, counter, msg)
	}
	return a.runCycle(nonce, counter, msg)
}

func (a *Accelerator) runCycle(nonce, counter uint64, msg ff.Vec) (Result, error) {
	t := a.par.T
	mod := a.par.Mod
	layers := a.par.AffineLayers()

	xofU := NewKeccakUnit(nonce, counter)
	xofU.Naive = a.NaiveKeccak
	samp := NewSamplerStage(mod)
	dg := NewDataGen(t)
	eng := NewMatEngine(t, mod)

	fault := a.Fault
	a.Fault = nil // transient: affects a single run
	if fault != nil {
		// A spec that can never fire (out-of-range layer/element, no-op
		// mask) used to yield a silently fault-free run; reject it instead.
		if err := fault.Validate(a.par); err != nil {
			return Result{}, err
		}
	}

	var res Result
	st := &res.Stats
	trace := func(cycle int64, unit, ev string) {
		if a.TraceEnabled {
			res.Trace = append(res.Trace, TraceEvent{Cycle: cycle, Unit: unit, Event: ev})
		}
	}

	state := a.key.Clone()
	layer := 0
	phase := phaseMatL

	// Round-constant staging, sized from the instance params: the XOF
	// routing layer runs ahead of the compute layer (that overlap is the
	// point of the schedule), so RC vectors for layer k+1 can stream in
	// while layer k still waits on the matrix engine. One buffer pair per
	// affine layer absorbs that skew for every (t, rounds) shape; a single
	// shared pair overflowed on reduced instances (ToyParams), where the
	// sampler outpaces the tiny matrix tasks by whole layers.
	rc := make([][2]ff.Vec, layers) // streamed RC vectors (L, R) per layer
	rcFill := make([][2]int, layers)
	rcDone := make([][2]bool, layers)
	for l := range rc {
		rc[l] = [2]ff.Vec{ff.NewVec(t), ff.NewVec(t)}
	}
	var matOut [2]ff.Vec // published matrix-multiply results (L, R)
	matStarted := [2]bool{}
	matSeedID := -1

	elemInLayer := 0 // accepted elements routed so far in this layer (0..4t)
	routingLayer := 0

	var aluDoneAt int64 = -1
	var outputDoneAt int64 = -1

	// The XOF keeps producing for the *routing* layer which may run ahead
	// of the compute layer (that is the whole point of the schedule).
	maxCycles := a.WatchdogLimit
	if maxCycles <= 0 {
		maxCycles = DefaultWatchdogLimit
	}
	var cycle int64
	var prevKeccakBusy int64
	for ; cycle < maxCycles; cycle++ {
		// --- XOF + sampler + routing -------------------------------------
		needMore := routingLayer < layers
		elemKind := elemInLayer / t // 0 seedL, 1 seedR, 2 rcL, 3 rcR
		seedPhase := needMore && elemKind < 2
		stall := !needMore || (seedPhase && dg.Stall())

		xofU.Tick(st, stall)
		if xofU.Stalled && needMore {
			// Genuine backpressure: DataGen full while data is still
			// demanded. Post-demand gating is not a stall.
			st.XOFStalled++
		}
		rejectZero := seedPhase && dg.FillingFirstElement()
		samp.Tick(st, xofU.WordValid, xofU.Word, rejectZero)

		if samp.ElemValid && needMore {
			if seedPhase {
				dg.Push(samp.Elem)
			} else {
				half := elemKind - 2
				rc[routingLayer][half][rcFill[routingLayer][half]] = samp.Elem
				rcFill[routingLayer][half]++
				if rcFill[routingLayer][half] == t {
					rcDone[routingLayer][half] = true
					trace(cycle, "xof", fmt.Sprintf("layer %d rc%c complete", routingLayer, "LR"[half]))
				}
			}
			elemInLayer++
			if elemInLayer == 4*t {
				routingLayer++
				elemInLayer = 0
			}
		}

		// --- matrix engine completions ------------------------------------
		if out, seedID, done := eng.Done(cycle); done {
			half := 0
			if matStarted[0] && matOut[0] != nil {
				half = 1
			}
			matOut[half] = out
			dg.Release(seedID)
			trace(cycle, "matmul", fmt.Sprintf("layer %d M%c·X done", layer, "LR"[half]))
		}

		// --- controller -----------------------------------------------------
		switch phase {
		case phaseMatL:
			if eng.Idle(cycle) && dg.Ready(2*layer) {
				seed := dg.Acquire(2 * layer)
				matSeedID = 2 * layer
				eng.Start(cycle, st, seed, state[:t], matSeedID)
				matStarted[0] = true
				trace(cycle, "matgen", fmt.Sprintf("layer %d ML start", layer))
				phase = phaseMatR
			}
		case phaseMatR:
			if matOut[0] != nil && eng.Idle(cycle) && dg.Ready(2*layer+1) {
				seed := dg.Acquire(2*layer + 1)
				matSeedID = 2*layer + 1
				eng.Start(cycle, st, seed, state[t:], matSeedID)
				matStarted[1] = true
				trace(cycle, "matgen", fmt.Sprintf("layer %d MR start", layer))
				phase = phaseALU
			}
		case phaseALU:
			if aluDoneAt < 0 {
				if matOut[0] != nil && matOut[1] != nil && rcDone[layer][0] && rcDone[layer][1] {
					// Functionally: state ← Sbox(Mix(M·X + RC)).
					copy(state[:t], matOut[0])
					copy(state[t:], matOut[1])
					ff.AddVec(mod, state[:t], state[:t], rc[layer][0])
					ff.AddVec(mod, state[t:], state[t:], rc[layer][1])
					if fault != nil && fault.Layer == layer {
						fault.apply(mod, state)
						trace(cycle, "fault", fmt.Sprintf("layer %d element %d corrupted", layer, fault.Element))
					}
					pasta.Mix(mod, state)
					lat := int64(latRCAdd + latMix)
					switch {
					case layer < a.par.Rounds-1:
						pasta.SboxFeistel(mod, state)
						lat += latSbox
					case layer == a.par.Rounds-1:
						pasta.SboxCube(mod, state)
						lat += latSbox
					}
					aluDoneAt = cycle + lat
					st.VecALUBusy += lat
					trace(cycle, "vecalu", fmt.Sprintf("layer %d RCAdd+Mix+Sbox start", layer))
				}
			} else if cycle >= aluDoneAt {
				trace(cycle, "vecalu", fmt.Sprintf("layer %d done", layer))
				aluDoneAt = -1
				matOut[0], matOut[1] = nil, nil
				matStarted[0], matStarted[1] = false, false
				layer++
				if layer == layers {
					phase = phaseOutput
					outputDoneAt = cycle + int64(t)
					st.OutputBusy += int64(t)
					trace(cycle, "output", "keystream drain start")
				} else {
					phase = phaseMatL
				}
			}
		case phaseOutput:
			if cycle >= outputDoneAt {
				phase = phaseDone
				trace(cycle, "output", "done")
			}
		}
		if a.Waveform != nil {
			a.Waveform.record(waveSample{
				cycle:      cycle,
				wordValid:  xofU.WordValid,
				elemValid:  samp.ElemValid,
				keccakBusy: st.KeccakBusy > prevKeccakBusy,
				matBusy:    !eng.Idle(cycle),
				aluBusy:    aluDoneAt >= 0,
				outBusy:    phase == phaseOutput,
				stalled:    xofU.Stalled,
				layer:      uint8(layer),
				phase:      uint8(phase),
			})
			prevKeccakBusy = st.KeccakBusy
		}

		if phase == phaseDone {
			break
		}
	}
	if cycle >= maxCycles {
		rcReady := [2]bool{}
		if layer < layers {
			rcReady = rcDone[layer]
		}
		mWatchdogTrips.Inc()
		return Result{}, &ErrWatchdog{
			Limit: maxCycles,
			Units: UnitSnapshot{
				Cycle:         cycle,
				CtrlPhase:     phase.String(),
				Layer:         layer,
				Layers:        layers,
				RoutingLayer:  routingLayer,
				ElemInLayer:   elemInLayer,
				XOFStalls:     st.XOFStalled,
				DataGenFull:   dg.Stall(),
				MatEngineBusy: !eng.Idle(cycle),
				MatOutReady:   [2]bool{matOut[0] != nil, matOut[1] != nil},
				RCReady:       rcReady,
			},
			Stats: *st,
		}
	}

	st.Cycles = cycle
	publishStats(st)
	res.KeyStream = state[:t].Clone()
	if msg != nil {
		res.Ciphertext = ff.NewVec(len(msg))
		for i := range msg {
			res.Ciphertext[i] = mod.Add(msg[i], res.KeyStream[i])
		}
	}
	return res, nil
}
