package hw

import "fmt"

// DefaultWatchdogLimit is the cycle budget an Accelerator run gets when
// WatchdogLimit is unset. The longest legitimate schedule (PASTA-4,
// naive Keccak, pathological rejection-sampling nonce) is ~4k cycles, so
// ten million cycles only trips on a genuinely hung schedule.
const DefaultWatchdogLimit int64 = 10_000_000

// phaseName maps a controller phase to its diagnostic name.
func (p layerPhase) String() string {
	switch p {
	case phaseMatL:
		return "matL"
	case phaseMatR:
		return "matR"
	case phaseALU:
		return "alu"
	case phaseOutput:
		return "output"
	case phaseDone:
		return "done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// UnitSnapshot is the architectural state of every accelerator unit at
// the moment the watchdog fired — enough to tell a starved matrix engine
// (controller waiting in matL/matR with DataGen never filling) from a
// deadlocked ALU handshake (alu phase with a missing matrix half or RC
// vector) or an XOF wedged by permanent backpressure.
type UnitSnapshot struct {
	Cycle         int64   // cycle at which the watchdog fired (= the limit)
	CtrlPhase     string  // controller phase (matL, matR, alu, output)
	Layer         int     // affine layer the controller is computing
	Layers        int     // total affine layers of the schedule
	RoutingLayer  int     // affine layer the XOF/sampler routing has reached
	ElemInLayer   int     // elements routed so far in the routing layer (0..4t)
	XOFStalls     int64   // cycles the XOF was backpressured by a full DataGen
	DataGenFull   bool    // both ping-pong buffers occupied (XOF cannot push)
	MatEngineBusy bool    // matrix engine mid-computation
	MatOutReady   [2]bool // published M·X halves (L, R) awaiting the ALU
	RCReady       [2]bool // streamed round-constant vectors (L, R) complete
}

func (u UnitSnapshot) String() string {
	return fmt.Sprintf("ctrl=%s layer=%d/%d routing=%d elem=%d xofStalls=%d dataGenFull=%v matBusy=%v matOut=[%v %v] rc=[%v %v]",
		u.CtrlPhase, u.Layer, u.Layers, u.RoutingLayer, u.ElemInLayer, u.XOFStalls,
		u.DataGenFull, u.MatEngineBusy, u.MatOutReady[0], u.MatOutReady[1], u.RCReady[0], u.RCReady[1])
}

// ErrWatchdog is returned when an Accelerator run exceeds its cycle
// budget. It carries a per-unit state snapshot and the run's accumulated
// statistics so a hung schedule is diagnosable instead of a bare error
// string; retrieve it with errors.As.
type ErrWatchdog struct {
	Limit int64        // the cycle budget that was exhausted
	Units UnitSnapshot // unit state at the trip point
	Stats Stats        // occupancy counters accumulated before the trip
}

func (e *ErrWatchdog) Error() string {
	return fmt.Sprintf("hw: watchdog: accelerator did not finish within %d cycles (%s)", e.Limit, e.Units)
}
