package hw

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// runBothSteppings runs the same block through the per-cycle oracle and
// the event-driven engine on two accelerators built from identical
// params/key, and requires bit-identical results: keystream, ciphertext,
// every Stats counter, and — when the watchdog trips — the same typed
// error with the same unit snapshot and partial statistics.
func runBothSteppings(t *testing.T, par pasta.Params, key pasta.Key, nonce, counter uint64, naive bool, watchdog int64, msg ff.Vec) {
	t.Helper()

	cyc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatalf("NewAccelerator(cycle): %v", err)
	}
	evt, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatalf("NewAccelerator(event): %v", err)
	}
	cyc.Step = StepCycle
	evt.Step = StepEvent
	cyc.NaiveKeccak = naive
	evt.NaiveKeccak = naive
	cyc.WatchdogLimit = watchdog
	evt.WatchdogLimit = watchdog

	var cr, er Result
	var ce, ee error
	if msg != nil {
		cr, ce = cyc.EncryptBlock(nonce, counter, msg)
		er, ee = evt.EncryptBlock(nonce, counter, msg)
	} else {
		cr, ce = cyc.KeyStream(nonce, counter)
		er, ee = evt.KeyStream(nonce, counter)
	}

	if (ce == nil) != (ee == nil) {
		t.Fatalf("error divergence: cycle=%v event=%v", ce, ee)
	}
	if ce != nil {
		var cw, ew *ErrWatchdog
		if !errors.As(ce, &cw) || !errors.As(ee, &ew) {
			t.Fatalf("non-watchdog errors: cycle=%v event=%v", ce, ee)
		}
		if cw.Limit != ew.Limit {
			t.Fatalf("watchdog limit mismatch: cycle=%d event=%d", cw.Limit, ew.Limit)
		}
		if cw.Units != ew.Units {
			t.Fatalf("watchdog unit snapshot mismatch:\n cycle: %v\n event: %v", cw.Units, ew.Units)
		}
		if cw.Stats != ew.Stats {
			t.Fatalf("watchdog stats mismatch:\n cycle: %v\n event: %v", cw.Stats, ew.Stats)
		}
		return
	}
	if cr.Stats != er.Stats {
		t.Fatalf("stats mismatch:\n cycle: %+v\n event: %+v", cr.Stats, er.Stats)
	}
	if !cr.KeyStream.Equal(er.KeyStream) {
		t.Fatalf("keystream mismatch at nonce=%d counter=%d", nonce, counter)
	}
	if !cr.Ciphertext.Equal(er.Ciphertext) {
		t.Fatalf("ciphertext mismatch at nonce=%d counter=%d", nonce, counter)
	}
}

// TestEventStepMatchesCycleOracle sweeps the standard PASTA instances
// over every standard modulus width, several nonces/counters, and both
// Keccak designs, requiring the event engine to be indistinguishable
// from the per-cycle oracle.
func TestEventStepMatchesCycleOracle(t *testing.T) {
	for _, v := range []pasta.Variant{pasta.Pasta3, pasta.Pasta4} {
		for _, w := range []uint{17, 33, 54, 60} {
			par := pasta.MustParams(v, ff.StandardModuli[w])
			key := pasta.KeyFromSeed(par, "eventstep")
			t.Run(fmt.Sprintf("%v/w%d", v, w), func(t *testing.T) {
				if testing.Short() && w != 17 {
					t.Skip("short mode: 17-bit widths only")
				}
				for _, naive := range []bool{false, true} {
					for nonce := uint64(0); nonce < 3; nonce++ {
						runBothSteppings(t, par, key, nonce, nonce*7, naive, 0, nil)
					}
				}
			})
		}
	}
}

// TestEventStepEncryptBlock pins the ciphertext path (output adder) in
// both stepping modes.
func TestEventStepEncryptBlock(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.StandardModuli[17])
	key := pasta.KeyFromSeed(par, "eventstep-encrypt")
	msg := ff.NewVec(par.T)
	for i := range msg {
		msg[i] = uint64(i*97+13) % par.Mod.P()
	}
	runBothSteppings(t, par, key, 5, 9, false, 0, msg)
}

// TestEventStepToyInstances exercises the reduced instances where the
// sampler outruns the tiny matrix tasks by whole layers — the shape that
// once overflowed a shared RC buffer pair — and checks that per-layer RC
// staging stays correct under fast-forwarding.
func TestEventStepToyInstances(t *testing.T) {
	mod := ff.StandardModuli[17]
	for _, tt := range []int{2, 3, 4, 8} {
		for rounds := 1; rounds <= 4; rounds++ {
			par, err := pasta.ToyParams(tt, rounds, mod)
			if err != nil {
				t.Fatalf("ToyParams(%d, %d): %v", tt, rounds, err)
			}
			key := pasta.KeyFromSeed(par, "eventstep-toy")
			t.Run(fmt.Sprintf("t%d/r%d", tt, rounds), func(t *testing.T) {
				for _, naive := range []bool{false, true} {
					for nonce := uint64(0); nonce < 4; nonce++ {
						runBothSteppings(t, par, key, nonce, nonce, naive, 0, nil)
					}
				}
			})
		}
	}
}

// TestEventStepWatchdogEquivalence truncates runs at a dense sweep of
// cycle budgets and requires the event engine to trip the watchdog with
// exactly the oracle's unit snapshot and partial statistics at every
// budget — the strongest probe of the fast-forwarding bookkeeping, since
// every intermediate cycle becomes an observable trip point.
func TestEventStepWatchdogEquivalence(t *testing.T) {
	mod := ff.StandardModuli[17]
	par, err := pasta.ToyParams(4, 2, mod)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par, "eventstep-watchdog")

	// Find the full run length, then sweep budgets across it.
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.KeyStream(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Stats.Cycles
	for limit := int64(1); limit <= full+2; limit++ {
		runBothSteppings(t, par, key, 1, 2, false, limit, nil)
	}
	// A few budgets over the naive-Keccak variant too.
	for limit := int64(20); limit <= full+2; limit += 37 {
		runBothSteppings(t, par, key, 1, 2, true, limit, nil)
	}
}

// TestEventStepWatchdogStandard spot-checks truncated standard instances
// (the toy sweep above covers every cycle; here a coarser stride over
// PASTA-4 keeps the suite fast).
func TestEventStepWatchdogStandard(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.StandardModuli[17])
	key := pasta.KeyFromSeed(par, "eventstep-watchdog")
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.KeyStream(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Stats.Cycles
	for limit := int64(1); limit <= full+2; limit += 101 {
		runBothSteppings(t, par, key, 3, 4, false, limit, nil)
	}
}

// TestStepModeDispatch pins the oracle-forcing rules: Waveform, trace,
// and fault runs must take the per-cycle path even under StepEvent (they
// observe individual cycles), and StepAuto must default to the event
// engine (observable indirectly: identical results with no waveform).
func TestStepModeDispatch(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.StandardModuli[17])
	key := pasta.KeyFromSeed(par, "eventstep-dispatch")
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	acc.Step = StepEvent
	acc.Waveform = &Waveform{}
	res, err := acc.KeyStream(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(acc.Waveform.Cycles()) != res.Stats.Cycles+1 {
		t.Fatalf("waveform recorded %d cycles, want %d (per-cycle path not taken?)",
			acc.Waveform.Cycles(), res.Stats.Cycles+1)
	}

	acc.Waveform = nil
	acc.TraceEnabled = true
	res, err = acc.KeyStream(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace run recorded no events (per-cycle path not taken?)")
	}
}

func TestParseStepMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want StepMode
		ok   bool
	}{
		{"", StepAuto, true},
		{"auto", StepAuto, true},
		{"cycle", StepCycle, true},
		{"event", StepEvent, true},
		{"fast", 0, false},
	} {
		got, err := ParseStepMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseStepMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
