package hw

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/hera"
)

func newHeraAccel(t *testing.T, mod ff.Modulus) (*HeraAccelerator, *hera.Cipher) {
	t.Helper()
	par := hera.MustParams(5, mod)
	key := hera.KeyFromSeed(par, "hera-hw")
	acc, err := NewHeraAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := hera.NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	return acc, ref
}

// TestHeraKeystreamMatchesReference: the HERA datapath model must be
// bit-exact against the software cipher.
func TestHeraKeystreamMatchesReference(t *testing.T) {
	for _, mod := range []ff.Modulus{ff.P17, ff.P33} {
		acc, ref := newHeraAccel(t, mod)
		for nonce := uint64(0); nonce < 4; nonce++ {
			res, err := acc.KeyStream(nonce, nonce)
			if err != nil {
				t.Fatal(err)
			}
			if !res.KeyStream.Equal(ref.KeyStream(nonce, nonce)) {
				t.Fatalf("%v nonce %d: HERA hardware keystream differs", mod, nonce)
			}
		}
	}
}

// TestHeraCycleCount: with only 96 XOF elements HERA finishes in a few
// hundred cycles — roughly 5× fewer per keystream element than PASTA-4,
// the quantitative answer to the paper's Sec. VI question.
func TestHeraCycleCount(t *testing.T) {
	acc, _ := newHeraAccel(t, ff.P17)
	var total int64
	const runs = 6
	for n := uint64(0); n < runs; n++ {
		res, err := acc.KeyStream(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.Cycles
	}
	avg := total / runs
	if avg < 230 || avg > 420 {
		t.Fatalf("HERA cycles = %d, want ≈300 (analytic estimate ≈333)", avg)
	}
	perElem := float64(avg) / hera.StateSize
	if perElem > 30 {
		t.Fatalf("HERA %.1f cc/elem, want far below PASTA-4's ≈51", perElem)
	}
	t.Logf("HERA-5: %d cycles/block = %.1f cc/elem (PASTA-4: ≈51 cc/elem)", avg, perElem)
}

// TestHeraTailNotHidden: unlike PASTA, HERA's finalization (doubled
// linear layer + cube) cannot hide under remaining XOF work, so the
// datapath tail contributes measurably.
func TestHeraTailNotHidden(t *testing.T) {
	acc, _ := newHeraAccel(t, ff.P17)
	res, err := acc.KeyStream(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VecALUBusy == 0 || res.Stats.OutputBusy != hera.StateSize {
		t.Fatalf("stats inconsistent: %+v", res.Stats)
	}
}

func TestHeraDeterministic(t *testing.T) {
	acc, _ := newHeraAccel(t, ff.P17)
	a, err := acc.KeyStream(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := acc.KeyStream(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.KeyStream.Equal(b.KeyStream) || a.Stats.Cycles != b.Stats.Cycles {
		t.Fatal("HERA accelerator not deterministic")
	}
}

func TestHeraValidation(t *testing.T) {
	par := hera.MustParams(5, ff.P17)
	if _, err := NewHeraAccelerator(par, make(hera.Key, 3)); err == nil {
		t.Fatal("short key accepted")
	}
}

func BenchmarkHeraAccelerator(b *testing.B) {
	par := hera.MustParams(5, ff.P17)
	acc, _ := NewHeraAccelerator(par, hera.KeyFromSeed(par, "bench"))
	for i := 0; i < b.N; i++ {
		if _, err := acc.KeyStream(uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}
