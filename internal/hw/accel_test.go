package hw

import (
	"testing/quick"

	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

func newAccel(t *testing.T, v pasta.Variant, mod ff.Modulus, seed string) (*Accelerator, *pasta.Cipher) {
	t.Helper()
	par := pasta.MustParams(v, mod)
	key := pasta.KeyFromSeed(par, seed)
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pasta.NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	return acc, ref
}

// TestKeystreamMatchesReference is the central functional check: the
// cycle-accurate model must produce bit-exactly the keystream of the
// software reference cipher for both variants and several nonces.
func TestKeystreamMatchesReference(t *testing.T) {
	for _, v := range []pasta.Variant{Pasta3TestVariant(), pasta.Pasta4} {
		acc, ref := newAccel(t, v, ff.P17, "hwmatch")
		for nonce := uint64(0); nonce < 3; nonce++ {
			res, err := acc.KeyStream(nonce, nonce*7)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.KeyStream(nonce, nonce*7)
			if !res.KeyStream.Equal(want) {
				t.Fatalf("%v nonce %d: hardware keystream differs from reference", v, nonce)
			}
		}
	}
}

// Pasta3TestVariant exists so the (slow) PASTA-3 functional check runs
// once here and the remaining tests use PASTA-4.
func Pasta3TestVariant() pasta.Variant { return pasta.Pasta3 }

func TestKeystreamMatchesReferenceWideModuli(t *testing.T) {
	for _, mod := range []ff.Modulus{ff.P33, ff.P54} {
		acc, ref := newAccel(t, pasta.Pasta4, mod, "wide")
		res, err := acc.KeyStream(5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.KeyStream.Equal(ref.KeyStream(5, 1)) {
			t.Fatalf("%v: keystream mismatch", mod)
		}
	}
}

// TestCycleCountPasta4 pins the headline Table II number: the paper
// reports 1,591 cycles for one PASTA-4 block (average over nonces,
// 60·(21+5) + 32). Our model's count is nonce-dependent; it must sit in
// the same neighbourhood.
func TestCycleCountPasta4(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "cycles")
	var total int64
	const runs = 10
	for n := uint64(0); n < runs; n++ {
		res, err := acc.KeyStream(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.Cycles
	}
	avg := total / runs
	if avg < 1450 || avg > 1800 {
		t.Fatalf("PASTA-4 average cycles = %d, want ≈1,591 (paper Table II)", avg)
	}
	t.Logf("PASTA-4 average cycles: %d (paper: 1,591)", avg)
}

// TestCycleCountPasta3 pins the PASTA-3 Table II number (4,955 cycles).
func TestCycleCountPasta3(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta3, ff.P17, "cycles3")
	res, err := acc.KeyStream(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles < 4600 || res.Stats.Cycles > 5600 {
		t.Fatalf("PASTA-3 cycles = %d, want ≈4,955 (paper Table II)", res.Stats.Cycles)
	}
	t.Logf("PASTA-3 cycles: %d (paper: 4,955)", res.Stats.Cycles)
}

// TestKeccakPermutationBudget checks Sec. IV-B: PASTA-4 needs ≈60
// permutations on average (2× rejection on 640 elements), PASTA-3 ≈186–195.
func TestKeccakPermutationBudget(t *testing.T) {
	acc4, _ := newAccel(t, pasta.Pasta4, ff.P17, "budget")
	var perms int64
	const runs = 8
	for n := uint64(0); n < runs; n++ {
		res, err := acc4.KeyStream(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		perms += res.Stats.Permutations
	}
	avg := float64(perms) / runs
	if avg < 55 || avg > 68 {
		t.Fatalf("PASTA-4 average permutations = %.1f, want ≈60–62 (paper: 60)", avg)
	}
}

// TestWordsKeptEqualsDemand: accepted elements must equal the cipher's
// XOF demand exactly (2048 / 640).
func TestWordsKeptEqualsDemand(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "demand")
	res, err := acc.KeyStream(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WordsKept != int64(acc.Params().XOFElements()) {
		t.Fatalf("kept %d elements, want %d", res.Stats.WordsKept, acc.Params().XOFElements())
	}
	if res.Stats.WordsDrawn <= res.Stats.WordsKept {
		t.Fatal("rejection sampling rejected nothing; impossible for p=65537")
	}
}

// TestEncryptBlockMatchesReference: ciphertext from the accelerator output
// adder equals reference encryption, and the drain accounts t cycles.
func TestEncryptBlockMatchesReference(t *testing.T) {
	acc, ref := newAccel(t, pasta.Pasta4, ff.P17, "enc")
	msg := ff.NewVec(32)
	for i := range msg {
		msg[i] = uint64(i * 999 % 65537)
	}
	res, err := acc.EncryptBlock(4, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.EncryptBlock(4, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ciphertext.Equal(want) {
		t.Fatal("accelerator ciphertext differs from reference")
	}
	if res.Stats.OutputBusy != 32 {
		t.Fatalf("output drain = %d cycles, want t = 32", res.Stats.OutputBusy)
	}
}

func TestEncryptBlockValidation(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "val")
	if _, err := acc.EncryptBlock(0, 0, ff.NewVec(33)); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := acc.EncryptBlock(0, 0, ff.Vec{1 << 40}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
}

// TestTraceSchedule: with tracing on, the Fig. 3 milestones appear in
// causal order and matrix generation overlaps XOF production.
func TestTraceSchedule(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "trace")
	acc.TraceEnabled = true
	res, err := acc.KeyStream(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace events")
	}
	last := int64(-1)
	var mlStart, layer0Done int64 = -1, -1
	for _, ev := range res.Trace {
		if ev.Cycle < last {
			t.Fatalf("trace out of order: %v", ev)
		}
		last = ev.Cycle
		if ev.Unit == "matgen" && ev.Event == "layer 0 ML start" {
			mlStart = ev.Cycle
		}
		if ev.Unit == "vecalu" && ev.Event == "layer 0 done" {
			layer0Done = ev.Cycle
		}
	}
	if mlStart < 0 || layer0Done < 0 {
		t.Fatal("expected schedule milestones missing")
	}
	// Layer 0's matrix work must start well before the XOF finishes all
	// five layers — i.e. before 1/3 of the run (overlap property).
	if mlStart > res.Stats.Cycles/3 {
		t.Fatalf("ML start at %d of %d; no overlap with XOF", mlStart, res.Stats.Cycles)
	}
}

// TestXOFIsBottleneck: per the paper's design analysis, squeeze+keccak
// dominate; the matrix engines must be idle a large fraction of the time
// while the XOF runs essentially continuously.
func TestXOFIsBottleneck(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "bottleneck")
	res, err := acc.KeyStream(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Stats.Utilization()
	if u["squeeze"] < 0.70 {
		t.Fatalf("squeeze utilization = %.2f, want > 0.70 (XOF-bound design)", u["squeeze"])
	}
	if u["matmul"] > 0.50 {
		t.Fatalf("matmul utilization = %.2f; matrix engine should be far from saturated", u["matmul"])
	}
}

// TestDeterminism: same nonce/counter → identical cycles and keystream.
func TestDeterminism(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "det")
	a, err := acc.KeyStream(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := acc.KeyStream(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.KeyStream.Equal(b.KeyStream) || a.Stats.Cycles != b.Stats.Cycles {
		t.Fatal("accelerator run not deterministic")
	}
}

// TestNoXOFStalls: with the ping-pong DataGen and RC streaming, the
// schedule of Fig. 3 should keep the XOF from ever stalling.
func TestNoXOFStalls(t *testing.T) {
	acc, _ := newAccel(t, pasta.Pasta4, ff.P17, "stall")
	res, err := acc.KeyStream(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.XOFStalled > 0 {
		t.Fatalf("XOF stalled for %d cycles; schedule broken", res.Stats.XOFStalled)
	}
}

func TestMatEngineLatencyFormula(t *testing.T) {
	// Paper Sec. III-C: 6 + t + log2(t).
	if got := matEngineLatency(32); got != 6+32+5 {
		t.Fatalf("latency(32) = %d, want 43", got)
	}
	if got := matEngineLatency(128); got != 6+128+7 {
		t.Fatalf("latency(128) = %d, want 141", got)
	}
}

func TestMicroseconds(t *testing.T) {
	// Table II: 1,591 cycles at 75 MHz ≈ 21.2 µs; at 1 GHz ≈ 1.59 µs.
	if us := Microseconds(1591, FPGAHz); us < 21.0 || us > 21.4 {
		t.Fatalf("1591cc @ 75MHz = %.2f µs, want ≈21.2", us)
	}
	if us := Microseconds(1591, ASICHz); us < 1.55 || us > 1.65 {
		t.Fatalf("1591cc @ 1GHz = %.2f µs, want ≈1.59", us)
	}
}

func BenchmarkAcceleratorPasta4(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	acc, _ := NewAccelerator(par, pasta.KeyFromSeed(par, "bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.KeyStream(uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHWEqualsSoftwareQuick: property check over fuzzer-chosen nonces and
// counters — the cycle model's keystream always equals the reference.
func TestHWEqualsSoftwareQuick(t *testing.T) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "quickprop")
	acc, err := NewAccelerator(par, key)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pasta.NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nonce, counter uint64) bool {
		res, err := acc.KeyStream(nonce, counter)
		if err != nil {
			return false
		}
		return res.KeyStream.Equal(ref.KeyStream(nonce, counter))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPasta3WideModulus: the largest configuration (t=128, ω=54) runs the
// full model correctly — the stress corner of Table I.
func TestPasta3WideModulus(t *testing.T) {
	if testing.Short() {
		t.Skip("large configuration")
	}
	acc, ref := newAccel(t, pasta.Pasta3, ff.P54, "wide3")
	res, err := acc.KeyStream(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.KeyStream.Equal(ref.KeyStream(7, 7)) {
		t.Fatal("keystream mismatch at t=128, ω=54")
	}
	// ω=54 has ≈0.5 acceptance like ω=17: cycle count in the PASTA-3 band.
	if res.Stats.Cycles < 4500 || res.Stats.Cycles > 5600 {
		t.Fatalf("cycles = %d, want ≈5,200", res.Stats.Cycles)
	}
}

// TestKeystreamToyInstances is the regression test for the reduced
// (ToyParams) shapes: with tiny matrix tasks the XOF routing layer runs
// whole layers ahead of the compute layer, which used to overflow the
// shared round-constant buffers (index-out-of-range for most nonces,
// e.g. t=2, rounds=1, nonce 0). The RC staging is now sized from the
// instance params, so every reduced shape must run and match the
// software reference bit for bit.
func TestKeystreamToyInstances(t *testing.T) {
	for _, shape := range []struct{ t, rounds int }{
		{2, 1}, {2, 3}, {4, 1}, {4, 2}, {8, 1}, {32, 1},
	} {
		par, err := pasta.ToyParams(shape.t, shape.rounds, ff.P17)
		if err != nil {
			t.Fatal(err)
		}
		key := pasta.KeyFromSeed(par, "toy-rc-regression")
		acc, err := NewAccelerator(par, key)
		if err != nil {
			t.Fatalf("t=%d rounds=%d: NewAccelerator: %v", shape.t, shape.rounds, err)
		}
		ref, err := pasta.NewCipher(par, key)
		if err != nil {
			t.Fatal(err)
		}
		for nonce := uint64(0); nonce < 4; nonce++ {
			res, err := acc.KeyStream(nonce, nonce)
			if err != nil {
				t.Fatalf("t=%d rounds=%d nonce=%d: %v", shape.t, shape.rounds, nonce, err)
			}
			if !res.KeyStream.Equal(ref.KeyStream(nonce, nonce)) {
				t.Fatalf("t=%d rounds=%d nonce=%d: keystream differs from reference",
					shape.t, shape.rounds, nonce)
			}
		}
	}
}
