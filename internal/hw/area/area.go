// Package area provides the parametric area model of the PASTA
// cryptoprocessor, calibrated against the paper's synthesis results
// (Table I for the Artix-7 FPGA, Sec. IV-A for the 28nm/7nm ASIC and the
// 130nm RISC-V SoC).
//
// The model is a substitution for running Vivado/Genus (see DESIGN.md):
// each hardware unit gets a cost function of the block size t and the
// modulus width ω whose shape follows the unit's structure — DSP tiling
// for the w×w multipliers, carry-chain LUTs for adders, flip-flop counts
// for the double-buffered Keccak state — with coefficients fitted to the
// four synthesized configurations of Table I (all within ≈5%).
package area

import (
	"fmt"
	"math"
	"sort"
)

// Config identifies a synthesizable configuration.
type Config struct {
	T int  // block size (128 for PASTA-3, 32 for PASTA-4)
	W uint // modulus bit width ω
}

// FPGA holds Artix-7 resource counts.
type FPGA struct {
	LUT, FF, DSP, BRAM int
}

// Artix7 capacities of the paper's target (xc7a200t).
var Artix7 = FPGA{LUT: 134_600, FF: 269_200, DSP: 740, BRAM: 365}

// Unit names used in breakdowns, matching Fig. 7's legend.
const (
	UnitDataGen = "DataGen(SHAKE)" // XOF core, sampler, ping-pong buffers
	UnitMatGen  = "MatGen"         // MAC bank for matrix generation
	UnitMatMul  = "MatMul"         // multiplier bank + adder tree
	UnitModAdd  = "ModAdd"         // vector adder bank
	UnitMix     = "Mix/S-box ctrl" // mixing/S-box sequencing and remaining logic
)

// DSPPerMultiplier returns the DSP48 tiles needed for one ω×ω modular
// multiplier: ceil(ω/18)² (the DSP48E1 has an 18-bit port; 17-bit
// operands fit a single slice). Reproduces Table I exactly:
// ω=17 → 1, ω=33 → 4, ω=54 → 9.
func DSPPerMultiplier(w uint) int {
	n := int((w + 17) / 18)
	return n * n
}

// DSP returns the total DSP count: two banks of t multipliers (MatGen MAC
// and MatMul), shared with the S-box per Sec. III-D.
func DSP(c Config) int { return 2 * c.T * DSPPerMultiplier(c.W) }

// LUTBreakdown returns per-unit LUT costs. The coefficients are fitted to
// Table I; the per-unit split follows the modeled structure and lands
// near the Fig. 7 FPGA shares (MatGen largest, then SHAKE, MatMul, ModAdd).
func LUTBreakdown(c Config) map[string]float64 {
	t := float64(c.T)
	w := float64(c.W)
	w2 := w * w / 64
	return map[string]float64{
		UnitDataGen: 9000 + 48*w + t*2.5*w, // Keccak core + sampler/routing
		UnitMatGen:  t * (10*w + 6*w2),     // t MACs: multiplier reduction + accumulator
		UnitMatMul:  t * (6*w + 5.5*w2),    // t multipliers + pipelined adder tree
		UnitModAdd:  t * 3 * w,             // t vector adders (carry chains)
		UnitMix:     t * 1 * w,             // mixing/S-box muxing, control, remaining
	}
}

// LUT returns the total LUT estimate.
func LUT(c Config) int { return int(sum(LUTBreakdown(c))) }

// FFBreakdown returns per-unit flip-flop costs (fit to Table I FF column).
func FFBreakdown(c Config) map[string]float64 {
	t := float64(c.T)
	w := float64(c.W)
	perElem := w * (15 + w/25) // pipeline registers per datapath slice
	return map[string]float64{
		UnitDataGen: 2500 + 16*w + t*0.20*perElem, // 2×1600-bit state + buffers
		UnitMatGen:  t * 0.34 * perElem,
		UnitMatMul:  t * 0.28 * perElem,
		UnitModAdd:  t * 0.10 * perElem,
		UnitMix:     t * 0.08 * perElem,
	}
}

// FF returns the total flip-flop estimate.
func FF(c Config) int { return int(sum(FFBreakdown(c))) }

// BRAM returns 0: the streaming matrix construction eliminates matrix
// storage entirely (Sec. III-C), the paper's Table I reports no BRAM.
func BRAM(Config) int { return 0 }

// Resources returns the full FPGA estimate for a configuration.
func Resources(c Config) FPGA {
	return FPGA{LUT: LUT(c), FF: FF(c), DSP: DSP(c), BRAM: BRAM(c)}
}

// UtilizationPercent returns resource usage relative to the Artix-7 target.
func UtilizationPercent(c Config) map[string]float64 {
	r := Resources(c)
	return map[string]float64{
		"LUT": 100 * float64(r.LUT) / float64(Artix7.LUT),
		"FF":  100 * float64(r.FF) / float64(Artix7.FF),
		"DSP": 100 * float64(r.DSP) / float64(Artix7.DSP),
	}
}

// Shares converts a breakdown into percentage shares (Fig. 7).
func Shares(breakdown map[string]float64) map[string]float64 {
	total := sum(breakdown)
	out := make(map[string]float64, len(breakdown))
	for k, v := range breakdown {
		out[k] = 100 * v / total
	}
	return out
}

// SortedUnits returns unit names of a breakdown, largest first.
func SortedUnits(breakdown map[string]float64) []string {
	names := make([]string, 0, len(breakdown))
	for k := range breakdown {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return breakdown[names[i]] > breakdown[names[j]] })
	return names
}

// --- ASIC model -------------------------------------------------------------

// TechNode identifies an ASIC process.
type TechNode string

const (
	Node7nm   TechNode = "7nm"   // ASAP7 predictive PDK
	Node28nm  TechNode = "28nm"  // TSMC 28nm
	Node65nm  TechNode = "65nm"  // SoC secondary node
	Node130nm TechNode = "130nm" // SoC primary (low-end) node
)

// nodeScale are area multipliers relative to 28nm, calibrated to the
// paper's reported numbers: 0.03 mm² at 7nm, 0.24 mm² at 28nm, and a
// 1.8 mm² PASTA peripheral at 130nm (the scaling across nodes is
// empirical, not ideal-shrink).
var nodeScale = map[TechNode]float64{
	Node7nm:   0.125,
	Node28nm:  1.0,
	Node65nm:  3.4,
	Node130nm: 7.5,
}

// asic28 returns the modeled 28nm area in mm² for a configuration. The
// fixed term covers the Keccak core and control; the variable term scales
// with t and quadratically with ω (multiplier-array dominated), fitted so
// that PASTA-4/ω=17 hits the paper's 0.24 mm² and the ω=33/ω=54 variants
// land at the reported ≈2.1×/≈4.3×.
func asic28(c Config) float64 {
	t := float64(c.T) / 32
	w := float64(c.W) / 17
	return 0.1447 + 0.0953*t*w*w
}

// ASICmm2 returns the modeled silicon area of the accelerator.
func ASICmm2(c Config, node TechNode) (float64, error) {
	s, ok := nodeScale[node]
	if !ok {
		return 0, fmt.Errorf("area: unknown tech node %q", node)
	}
	return asic28(c) * s, nil
}

// ASICBreakdown splits the ASIC area by unit using the same structural
// proportions as the LUT model, but with multiplier-heavy units weighted
// by ω² (standard-cell multipliers are not absorbed by DSP blocks) —
// this is why the ASIC pie of Fig. 7 shifts toward MatGen/MatMul
// relative to the FPGA pie.
func ASICBreakdown(c Config, node TechNode) (map[string]float64, error) {
	total, err := ASICmm2(c, node)
	if err != nil {
		return nil, err
	}
	t := float64(c.T)
	w := float64(c.W)
	weights := map[string]float64{
		UnitDataGen: 9000 + 48*w, // keccak state & control dominate the fixed part
		UnitMatGen:  t * 0.55 * w * w / 4,
		UnitMatMul:  t * 0.45 * w * w / 4,
		UnitModAdd:  t * 2.2 * w,
		UnitMix:     t * 0.8 * w,
	}
	s := sum(weights)
	out := make(map[string]float64, len(weights))
	for k, v := range weights {
		out[k] = total * v / s
	}
	return out, nil
}

// MaxPowerWatts is the paper's reported worst-case power at 1 GHz.
const MaxPowerWatts = 1.2

// SoC area constants reported in Sec. IV-A for the RISC-V integration on
// 130nm: the PASTA peripheral alone and the full SoC including the Ibex
// core, RAM, and bus.
const (
	SoCPeripheralMM2 = 1.8
	SoCTotalMM2      = 4.6
)

// BitWidthScaling returns the modeled ASIC area ratio of a ω-bit design
// relative to the 17-bit baseline at the same t (the paper: ≈2.1× for 33
// bits, ≈4.3× for 54 bits).
func BitWidthScaling(t int, w uint) float64 {
	return asic28(Config{T: t, W: w}) / asic28(Config{T: t, W: 17})
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// FitError reports the relative error of the model against a synthesized
// reference value (used by tests and EXPERIMENTS.md).
func FitError(model, reference float64) float64 {
	return math.Abs(model-reference) / reference
}

// HeraLUT estimates the FPGA cost of the HERA-style datapath at width ω
// (Sec. VI cross-scheme comparison): the same Keccak/sampler front end as
// PASTA, one 16-multiplier bank for the key schedule and cube, 16 vector
// adders, and shift-add circulant linear layers — no matrix engines.
func HeraLUT(w uint) int {
	wf := float64(w)
	w2 := wf * wf / 64
	datagen := 9000 + 48*wf + 16*2.5*wf
	muls := 16 * (10*wf + 6*w2) // one multiplier bank (MAC-class cost)
	adders := 16 * 3 * wf
	linear := 16 * 2 * wf // circulant shift-adds for MC/MR
	return int(datagen + muls + adders + linear)
}

// HeraDSP returns the DSP count of the HERA datapath: one bank of 16
// multipliers.
func HeraDSP(w uint) int { return 16 * DSPPerMultiplier(w) }
