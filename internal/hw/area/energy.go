package area

import "fmt"

// Energy model. The paper reports a 1.2 W worst case for the ASIC at
// 1 GHz and argues the FPGA design is energy-efficient because it matches
// prior works' throughput at a 2–3× lower clock (Sec. IV-C ❶). We model
// platform power with a first-order static + dynamic split so energy per
// block/element can be compared across platforms and configurations.

// PowerModel gives the modeled power draw of one platform at one clock.
type PowerModel struct {
	Platform string
	StaticW  float64
	// DynamicWPerGHz is the dynamic power at 1 GHz; dynamic power scales
	// linearly with clock frequency.
	DynamicWPerGHz float64
}

// Power returns total watts at the given clock.
func (p PowerModel) Power(hz float64) float64 {
	return p.StaticW + p.DynamicWPerGHz*hz/1e9
}

// Platform power models for PASTA-4/ω=17. The ASIC dynamic coefficient is
// calibrated so the paper's 1.2 W maximum is reached at its 1 GHz target;
// the FPGA numbers follow first-order Artix-7 estimates for a ≈24k-LUT,
// 64-DSP design (static ≈0.12 W, dynamic ≈2 W/GHz at this size).
var (
	ASICPower = PowerModel{Platform: "ASIC 28nm", StaticW: 0.05, DynamicWPerGHz: 1.15}
	FPGAPower = PowerModel{Platform: "Artix-7", StaticW: 0.12, DynamicWPerGHz: 2.0}
	SoCPower  = PowerModel{Platform: "130nm SoC", StaticW: 0.08, DynamicWPerGHz: 3.5}
)

// EnergyPerBlockUJ returns the energy of one block encryption in µJ:
// power × latency.
func EnergyPerBlockUJ(p PowerModel, cycles int64, hz float64) float64 {
	seconds := float64(cycles) / hz
	return p.Power(hz) * seconds * 1e6
}

// EnergyReport compares energy per element across the paper's platforms
// for a given block cycle count and size.
type EnergyReport struct {
	Platform     string
	ClockHz      float64
	PowerW       float64
	BlockUJ      float64
	PerElementUJ float64
}

// Energies returns the three-platform energy table for one block.
func Energies(cycles int64, elements int) ([]EnergyReport, error) {
	if elements <= 0 {
		return nil, fmt.Errorf("area: elements must be positive")
	}
	entries := []struct {
		pm PowerModel
		hz float64
	}{
		{ASICPower, 1e9},
		{FPGAPower, 75e6},
		{SoCPower, 100e6},
	}
	out := make([]EnergyReport, 0, len(entries))
	for _, e := range entries {
		uj := EnergyPerBlockUJ(e.pm, cycles, e.hz)
		out = append(out, EnergyReport{
			Platform:     e.pm.Platform,
			ClockHz:      e.hz,
			PowerW:       e.pm.Power(e.hz),
			BlockUJ:      uj,
			PerElementUJ: uj / float64(elements),
		})
	}
	return out, nil
}
