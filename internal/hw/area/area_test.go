package area

import (
	"math"
	"testing"
)

// Table I of the paper: synthesized Artix-7 results the model is
// calibrated against.
var tableI = []struct {
	name string
	cfg  Config
	lut  int
	ff   int
	dsp  int
}{
	{"PASTA-3 w=17", Config{T: 128, W: 17}, 65_468, 36_275, 256},
	{"PASTA-4 w=17", Config{T: 32, W: 17}, 23_736, 11_132, 64},
	{"PASTA-4 w=33", Config{T: 32, W: 33}, 42_330, 20_783, 256},
	{"PASTA-4 w=54", Config{T: 32, W: 54}, 67_324, 32_711, 576},
}

func TestDSPExactlyMatchesTableI(t *testing.T) {
	for _, row := range tableI {
		if got := DSP(row.cfg); got != row.dsp {
			t.Errorf("%s: DSP = %d, want %d", row.name, got, row.dsp)
		}
	}
}

func TestDSPPerMultiplier(t *testing.T) {
	cases := map[uint]int{17: 1, 18: 1, 19: 4, 33: 4, 36: 4, 37: 9, 54: 9}
	for w, want := range cases {
		if got := DSPPerMultiplier(w); got != want {
			t.Errorf("DSPPerMultiplier(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestLUTWithinFivePercentOfTableI(t *testing.T) {
	for _, row := range tableI {
		got := LUT(row.cfg)
		if e := FitError(float64(got), float64(row.lut)); e > 0.05 {
			t.Errorf("%s: LUT = %d, want %d (±5%%), error %.1f%%", row.name, got, row.lut, 100*e)
		}
	}
}

func TestFFWithinFivePercentOfTableI(t *testing.T) {
	for _, row := range tableI {
		got := FF(row.cfg)
		if e := FitError(float64(got), float64(row.ff)); e > 0.05 {
			t.Errorf("%s: FF = %d, want %d (±5%%), error %.1f%%", row.name, got, row.ff, 100*e)
		}
	}
}

func TestNoBRAM(t *testing.T) {
	// Sec. III-C: streaming matrix generation needs no BRAM at all.
	for _, row := range tableI {
		if BRAM(row.cfg) != 0 {
			t.Errorf("%s: BRAM nonzero", row.name)
		}
	}
}

func TestUtilizationMatchesTableIPercent(t *testing.T) {
	// Table I reports PASTA-4 w=17 at 18% LUT, 4% FF, 9% DSP of Artix-7.
	u := UtilizationPercent(Config{T: 32, W: 17})
	if math.Abs(u["LUT"]-18) > 2 {
		t.Errorf("LUT utilization = %.1f%%, want ≈18%%", u["LUT"])
	}
	if math.Abs(u["FF"]-4) > 1.5 {
		t.Errorf("FF utilization = %.1f%%, want ≈4%%", u["FF"])
	}
	if math.Abs(u["DSP"]-9) > 1.5 {
		t.Errorf("DSP utilization = %.1f%%, want ≈9%%", u["DSP"])
	}
}

func TestFitsOnArtix7(t *testing.T) {
	// The design goal: every evaluated configuration fits the low-cost
	// client FPGA.
	for _, row := range tableI {
		r := Resources(row.cfg)
		if r.LUT > Artix7.LUT || r.FF > Artix7.FF || r.DSP > Artix7.DSP {
			t.Errorf("%s does not fit Artix-7: %+v", row.name, r)
		}
	}
}

func TestSharesSumTo100(t *testing.T) {
	s := Shares(LUTBreakdown(Config{T: 128, W: 17}))
	var total float64
	for _, v := range s {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("shares sum to %.6f", total)
	}
}

// TestFig7ShapeFPGA: the FPGA pie's ordering per the paper — MatGen is
// the largest share (≈33%), DataGen(SHAKE) next (≈21%).
func TestFig7ShapeFPGA(t *testing.T) {
	s := Shares(LUTBreakdown(Config{T: 128, W: 17}))
	order := SortedUnits(LUTBreakdown(Config{T: 128, W: 17}))
	if order[0] != UnitMatGen {
		t.Fatalf("largest FPGA unit = %s, want MatGen", order[0])
	}
	if s[UnitMatGen] < 28 || s[UnitMatGen] > 42 {
		t.Errorf("MatGen share = %.1f%%, want ≈33%%", s[UnitMatGen])
	}
	if s[UnitDataGen] < 15 || s[UnitDataGen] > 28 {
		t.Errorf("DataGen share = %.1f%%, want ≈21%%", s[UnitDataGen])
	}
}

func TestASICAreaMatchesPaper(t *testing.T) {
	// Sec. IV-A: 0.24 mm² at 28nm, 0.03 mm² at 7nm for PASTA-4 w=17.
	c := Config{T: 32, W: 17}
	a28, err := ASICmm2(c, Node28nm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a28-0.24) > 0.01 {
		t.Errorf("28nm area = %.3f mm², want 0.24", a28)
	}
	a7, err := ASICmm2(c, Node7nm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a7-0.03) > 0.005 {
		t.Errorf("7nm area = %.3f mm², want 0.03", a7)
	}
	if _, err := ASICmm2(c, TechNode("3nm")); err == nil {
		t.Error("unknown node accepted")
	}
}

// TestBitWidthScalingClaim: the paper reports ≈2.1× and ≈4.3× ASIC area
// for ω = 33 and 54.
func TestBitWidthScalingClaim(t *testing.T) {
	if r := BitWidthScaling(32, 33); math.Abs(r-2.1) > 0.3 {
		t.Errorf("33-bit scaling = %.2f, want ≈2.1", r)
	}
	if r := BitWidthScaling(32, 54); math.Abs(r-4.3) > 0.5 {
		t.Errorf("54-bit scaling = %.2f, want ≈4.3", r)
	}
	if r := BitWidthScaling(32, 17); r != 1 {
		t.Errorf("17-bit scaling = %.2f, want 1", r)
	}
}

// TestPasta3VsPasta4AreaRatio: Sec. IV-B claims PASTA-3 consumes ≈3× the
// area of PASTA-4 (same ω).
func TestPasta3VsPasta4AreaRatio(t *testing.T) {
	r := float64(LUT(Config{T: 128, W: 17})) / float64(LUT(Config{T: 32, W: 17}))
	if r < 2.4 || r > 3.3 {
		t.Errorf("PASTA-3/PASTA-4 LUT ratio = %.2f, want ≈2.8–3", r)
	}
}

func TestASICBreakdownSumsToTotal(t *testing.T) {
	c := Config{T: 32, W: 17}
	bd, err := ASICBreakdown(c, Node28nm)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := ASICmm2(c, Node28nm)
	var s float64
	for _, v := range bd {
		s += v
	}
	if math.Abs(s-total) > 1e-9 {
		t.Fatalf("breakdown sums to %.4f, total %.4f", s, total)
	}
	if _, err := ASICBreakdown(c, TechNode("bogus")); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestSoCConstants(t *testing.T) {
	if SoCPeripheralMM2 != 1.8 || SoCTotalMM2 != 4.6 {
		t.Fatal("SoC area constants drifted from the paper")
	}
	a130, err := ASICmm2(Config{T: 32, W: 17}, Node130nm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a130-SoCPeripheralMM2) > 0.25 {
		t.Errorf("modeled 130nm accelerator = %.2f mm², want ≈1.8 (paper SoC peripheral)", a130)
	}
}

func TestASICPowerCalibration(t *testing.T) {
	// Sec. IV-A: "the maximum power consumed by the design is 1.2W" at
	// the 1 GHz ASIC target.
	if p := ASICPower.Power(1e9); math.Abs(p-MaxPowerWatts) > 0.01 {
		t.Fatalf("ASIC power at 1 GHz = %.2f W, want %.1f", p, MaxPowerWatts)
	}
}

func TestEnergyPerBlock(t *testing.T) {
	// PASTA-4: 1,591 cycles. ASIC: 1.2W × 1.59µs ≈ 1.9 µJ/block.
	uj := EnergyPerBlockUJ(ASICPower, 1591, 1e9)
	if uj < 1.7 || uj > 2.1 {
		t.Fatalf("ASIC energy/block = %.2f µJ, want ≈1.9", uj)
	}
	rows, err := Energies(1591, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerElementUJ <= 0 {
			t.Errorf("%s: nonpositive energy", r.Platform)
		}
		if math.Abs(r.BlockUJ-32*r.PerElementUJ) > 1e-9 {
			t.Errorf("%s: per-element inconsistent", r.Platform)
		}
	}
	// The FPGA at 75 MHz runs at lower power than prior works' 150–225 MHz
	// designs would: energy per block stays in the single-digit µJ range.
	if rows[1].PowerW > 0.5 {
		t.Errorf("FPGA power = %.2f W at 75 MHz, expected < 0.5", rows[1].PowerW)
	}
	if _, err := Energies(100, 0); err == nil {
		t.Error("elements=0 accepted")
	}
}
