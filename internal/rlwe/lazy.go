package rlwe

// This file is the lazy fast path of the ring: Harvey-style butterflies
// over Shoup-precomputed twiddles. A classic butterfly costs a 128-bit
// multiply plus a hardware division (bits.Div64 inside Modulus.Mul); a
// Shoup butterfly costs two 64-bit multiplies and lets the result stay in
// [0, 2q) — the slack accumulates to at most [0, 4q) across the transform
// and is swept once at the end. That is the arithmetic the prior
// client-side NTT accelerators hardwire (one reduction per butterfly
// stage, never a division), and it is why the transform speeds up ≈4×
// on generic (non-Mersenne-structured) NTT primes.
//
// NTTLazy/INTTLazy are drop-in replacements for NTT/INTT: same in-place
// layout, bit-identical outputs (pinned by TestLazyNTTMatchesOracle and
// FuzzMulPoly). The division-based NTT/INTT remain as the oracle, exactly
// as internal/pasta keeps its sequential engine beside the parallel one.

// NTTLazy transforms p in place to the negacyclic evaluation domain using
// lazy Harvey butterflies. Output is fully reduced and bit-identical to
// NTT's. Requires q < 2^62 (guaranteed: ff caps moduli at 2^60).
func (r *Ring) NTTLazy(p Poly) {
	n := r.N
	q := r.Q
	twoQ := r.twoQ
	t := n
	for numPhi := 1; numPhi < n; numPhi <<= 1 {
		t >>= 1
		for i := 0; i < numPhi; i++ {
			phi := r.psiPow[numPhi+i]
			phiShoup := r.psiShoup[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				// Inputs in [0, 4q): pull u back under 2q, keep the
				// product lazily in [0, 2q), emit sums in [0, 4q).
				u := p[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := r.mod.MulShoupLazy(p[j+t], phi, phiShoup)
				p[j] = u + v
				p[j+t] = u + twoQ - v
			}
		}
	}
	// One correction sweep: [0, 4q) → [0, q).
	for i := range p {
		c := p[i]
		if c >= twoQ {
			c -= twoQ
		}
		if c >= q {
			c -= q
		}
		p[i] = c
	}
}

// INTTLazy inverts NTTLazy in place (lazy Gentleman–Sande butterflies,
// values held in [0, 2q) throughout; the final N⁻¹ scaling reduces fully).
// Output is bit-identical to INTT's.
func (r *Ring) INTTLazy(p Poly) {
	n := r.N
	twoQ := r.twoQ
	t := 1
	for numPhi := n >> 1; numPhi >= 1; numPhi >>= 1 {
		for i := 0; i < numPhi; i++ {
			phi := r.psiInvPow[numPhi+i]
			phiShoup := r.psiInvShoup[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				u := p[j]
				v := p[j+t]
				w := u + v // < 4q
				if w >= twoQ {
					w -= twoQ
				}
				p[j] = w
				p[j+t] = r.mod.MulShoupLazy(u+twoQ-v, phi, phiShoup)
			}
		}
		t <<= 1
	}
	for i := range p {
		p[i] = r.mod.MulShoup(p[i], r.nInv, r.nInvShoup)
	}
}

// getScratch fetches a pooled N-coefficient polynomial (contents
// arbitrary); putScratch returns it.
func (r *Ring) getScratch() *Poly {
	if p, _ := r.pool.Get().(*Poly); p != nil {
		return p
	}
	p := make(Poly, r.N)
	return &p
}

func (r *Ring) putScratch(p *Poly) { r.pool.Put(p) }

// MulPolyInto sets dst = a·b (all in coefficient domain) via the lazy
// 3-NTT path, using pooled scratch: zero heap allocations in steady
// state. dst may alias a or b.
func (r *Ring) MulPolyInto(dst, a, b Poly) {
	at, bt := r.getScratch(), r.getScratch()
	copy(*at, a)
	copy(*bt, b)
	r.NTTLazy(*at)
	r.NTTLazy(*bt)
	r.MulCoeff(dst, *at, *bt)
	r.INTTLazy(dst)
	r.putScratch(at)
	r.putScratch(bt)
}
