package rlwe

import (
	"sync"
	"testing"
)

// fuzzRing is shared by every fuzz iteration (ring construction costs
// an NTT-prime search; the fuzzer calls the body thousands of times).
var (
	fuzzRingOnce sync.Once
	fuzzRingVal  *Ring
)

func fuzzRing(t testing.TB) *Ring {
	fuzzRingOnce.Do(func() {
		q, err := FindNTTPrime(30, 64)
		if err != nil {
			t.Fatal(err)
		}
		fuzzRingVal, err = NewRing(64, q)
		if err != nil {
			t.Fatal(err)
		}
	})
	return fuzzRingVal
}

// splitmix64 expands a fuzz seed into a deterministic coefficient
// stream (same idiom as internal/ff's fuzz harness).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzMulPoly pins the production lazy-NTT product (MulPolyInto)
// against the schoolbook oracle (MulPolyNaive) on arbitrary seeded
// polynomials, including sparse and saturated coefficient patterns.
func FuzzMulPoly(f *testing.F) {
	f.Add(uint64(0), uint64(1), false)
	f.Add(uint64(42), uint64(1337), true)
	f.Add(^uint64(0), uint64(7), false)
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, sparse bool) {
		r := fuzzRing(t)
		a, b := r.NewPoly(), r.NewPoly()
		sa, sb := seedA, seedB
		for i := 0; i < r.N; i++ {
			a[i] = splitmix64(&sa) % r.Q
			b[i] = splitmix64(&sb) % r.Q
			if sparse && i%3 != 0 {
				b[i] = 0
			}
		}
		want := r.MulPolyNaive(a, b)
		got := r.NewPoly()
		r.MulPolyInto(got, a, b)
		if !got.Equal(want) {
			t.Fatalf("MulPolyInto differs from MulPolyNaive (seeds %d, %d, sparse=%v)",
				seedA, seedB, sparse)
		}
		// The fast path must not corrupt its inputs.
		r.MulPolyInto(a, a, b)
		if !a.Equal(want) {
			t.Fatalf("aliased MulPolyInto differs (seeds %d, %d)", seedA, seedB)
		}
	})
}
