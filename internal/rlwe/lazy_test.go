package rlwe

import (
	"testing"

	"repro/internal/ff"
)

// TestLazyNTTMatchesOracle pins the golden equivalence the lazy path is
// built on: NTTLazy/INTTLazy must be bit-identical to the division-based
// NTT/INTT oracles, across transform sizes and moduli widths (the 60-bit
// case exercises the 4q < 2^64 headroom bound of the forward butterfly).
func TestLazyNTTMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		n    int
		bits uint
	}{
		{64, 20}, {256, 30}, {1024, 55}, {256, 60},
	} {
		q, err := FindNTTPrime(tc.bits, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRing(tc.n, q)
		if err != nil {
			t.Fatal(err)
		}
		g := NewPRNG("lazy", []byte{byte(tc.n), byte(tc.bits)})
		for trial := 0; trial < 4; trial++ {
			p := g.UniformPoly(r)
			fast, slow := p.Clone(), p.Clone()
			r.NTTLazy(fast)
			r.NTT(slow)
			if !fast.Equal(slow) {
				t.Fatalf("N=%d q=%d bits: NTTLazy differs from oracle", tc.n, tc.bits)
			}
			r.INTTLazy(fast)
			r.INTT(slow)
			if !fast.Equal(slow) {
				t.Fatalf("N=%d q=%d bits: INTTLazy differs from oracle", tc.n, tc.bits)
			}
			if !fast.Equal(p) {
				t.Fatalf("N=%d q=%d bits: lazy roundtrip not identity", tc.n, tc.bits)
			}
		}
	}
}

// TestMulPolyIntoMatchesNaive pins the allocation-free product against
// the schoolbook oracle, including aliased destinations.
func TestMulPolyIntoMatchesNaive(t *testing.T) {
	r := testRing(t, 64)
	g := NewPRNG("mulinto", []byte{1})
	for trial := 0; trial < 5; trial++ {
		a, b := g.UniformPoly(r), g.UniformPoly(r)
		want := r.MulPolyNaive(a, b)
		out := r.NewPoly()
		r.MulPolyInto(out, a, b)
		if !out.Equal(want) {
			t.Fatalf("trial %d: MulPolyInto differs from schoolbook", trial)
		}
		// dst aliasing either operand must still be correct: the
		// transform works on pooled scratch copies.
		aCopy := a.Clone()
		r.MulPolyInto(aCopy, aCopy, b)
		if !aCopy.Equal(want) {
			t.Fatalf("trial %d: MulPolyInto with dst==a differs", trial)
		}
		bCopy := b.Clone()
		r.MulPolyInto(bCopy, a, bCopy)
		if !bCopy.Equal(want) {
			t.Fatalf("trial %d: MulPolyInto with dst==b differs", trial)
		}
	}
}

// TestMulPolyIntoSquaring covers a == b (both operands the same slice).
func TestMulPolyIntoSquaring(t *testing.T) {
	r := testRing(t, 32)
	g := NewPRNG("sq", []byte{2})
	a := g.UniformPoly(r)
	want := r.MulPolyNaive(a, a)
	out := r.NewPoly()
	r.MulPolyInto(out, a, a)
	if !out.Equal(want) {
		t.Fatal("MulPolyInto(out, a, a) differs from schoolbook square")
	}
}

// TestMulPolyIntoAllocFree asserts the steady-state allocation contract:
// after one warm-up call populates the scratch pool, MulPolyInto must
// not allocate. Tolerance 0.5 because a concurrent GC may empty the
// sync.Pool between runs.
func TestMulPolyIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations of its own")
	}
	r := testRing(t, 1024)
	g := NewPRNG("alloc", []byte{3})
	a, b := g.UniformPoly(r), g.UniformPoly(r)
	out := r.NewPoly()
	r.MulPolyInto(out, a, b)
	avg := testing.AllocsPerRun(20, func() {
		r.MulPolyInto(out, a, b)
	})
	if avg > 0.5 {
		t.Fatalf("MulPolyInto allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestNTTLazyAllocFree asserts the in-place transforms never allocate.
func TestNTTLazyAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations of its own")
	}
	r := testRing(t, 1024)
	g := NewPRNG("alloc2", []byte{4})
	p := g.UniformPoly(r)
	avg := testing.AllocsPerRun(20, func() {
		r.NTTLazy(p)
		r.INTTLazy(p)
	})
	if avg > 0 {
		t.Fatalf("NTTLazy+INTTLazy allocate %.1f objects/op, want 0", avg)
	}
}

// TestPrimitiveRootScanBounded pins the failure path of the bounded
// generator scan: with the candidate budget cut to 1, only g=2 is
// tried, and for q = 65537 (where 2 has multiplicative order 32, so is
// a quadratic residue) the scan must fail with a descriptive error
// rather than looping toward q.
func TestPrimitiveRootScanBounded(t *testing.T) {
	mod, err := ff.NewModulus(65537)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primitiveRoot2N(mod, 256, 1); err == nil {
		t.Fatal("scan with 1 candidate found a root for q=65537; expected bounded failure")
	}
	// The default budget must still succeed for the same modulus.
	if _, err := primitiveRoot2N(mod, 256, maxRootCandidates); err != nil {
		t.Fatalf("default budget failed for q=65537: %v", err)
	}
}

// TestRNSParallelismEquivalence checks that the worker fan-out is purely
// an execution strategy: sequential and parallel views of the same ring
// produce bit-identical transforms and products.
func TestRNSParallelismEquivalence(t *testing.T) {
	primes, err := FindNTTPrimes(30, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(256, primes)
	if err != nil {
		t.Fatal(err)
	}
	seq := rr.WithParallelism(1)
	par := rr.WithParallelism(4)
	g := NewPRNG("par", []byte{5})
	a, b := rr.UniformPoly(g), rr.UniformPoly(g)

	x, y := a.Clone(), a.Clone()
	seq.NTT(x)
	par.NTT(y)
	if !x.Equal(y) {
		t.Fatal("parallel NTT differs from sequential")
	}
	seq.INTT(x)
	par.INTT(y)
	if !x.Equal(y) {
		t.Fatal("parallel INTT differs from sequential")
	}

	ps, pp := rr.NewPoly(), rr.NewPoly()
	seq.MulPolyInto(ps, a, b)
	par.MulPolyInto(pp, a, b)
	if !ps.Equal(pp) {
		t.Fatal("parallel MulPolyInto differs from sequential")
	}
}

// TestWithParallelismView checks the view semantics: the copy carries
// the requested worker count and the parent is untouched.
func TestWithParallelismView(t *testing.T) {
	primes, _ := FindNTTPrimes(20, 32, 2)
	rr, err := NewRNSRing(32, primes)
	if err != nil {
		t.Fatal(err)
	}
	v := rr.WithParallelism(3)
	if v.Parallelism() != 3 {
		t.Fatalf("view parallelism = %d, want 3", v.Parallelism())
	}
	if rr.Parallelism() != 0 {
		t.Fatalf("parent parallelism mutated to %d", rr.Parallelism())
	}
	if v == rr {
		t.Fatal("WithParallelism returned the receiver, want a copy")
	}
}
