package rlwe

import (
	"sync"
	"testing"
)

// TestSharedRingConcurrentUse drives one Ring from many goroutines at
// once — transforms on private polynomials plus pool-backed products —
// so `go test -race` can prove the ring's read-only tables and
// sync.Pool scratch are safe to share. This is the contract the RNS
// limb fan-out and the BFV encryption pipeline rely on.
func TestSharedRingConcurrentUse(t *testing.T) {
	r := testRing(t, 256)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := NewPRNG("race", []byte{byte(w)})
			a, b := g.UniformPoly(r), g.UniformPoly(r)
			out := r.NewPoly()
			for i := 0; i < 20; i++ {
				p := a.Clone()
				r.NTTLazy(p)
				r.INTTLazy(p)
				if !p.Equal(a) {
					t.Errorf("worker %d: concurrent lazy roundtrip corrupted", w)
					return
				}
				r.MulPolyInto(out, a, b)
			}
			if want := r.MulPolyNaive(a, b); !out.Equal(want) {
				t.Errorf("worker %d: concurrent MulPolyInto wrong", w)
			}
		}(w)
	}
	wg.Wait()
}

// TestSharedRNSRingConcurrentUse exercises nested parallelism: multiple
// goroutines each running limb-parallel transforms on views of the same
// RNS ring.
func TestSharedRNSRingConcurrentUse(t *testing.T) {
	primes, err := FindNTTPrimes(30, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(128, primes)
	if err != nil {
		t.Fatal(err)
	}
	par := rr.WithParallelism(3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := NewPRNG("rnsrace", []byte{byte(w)})
			p := par.UniformPoly(g)
			orig := p.Clone()
			for i := 0; i < 10; i++ {
				par.NTT(p)
				par.INTT(p)
			}
			if !p.Equal(orig) {
				t.Errorf("worker %d: parallel RNS roundtrip corrupted", w)
			}
		}(w)
	}
	wg.Wait()
}
