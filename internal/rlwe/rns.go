package rlwe

import (
	"fmt"
	"math/big"
)

// RNSRing is the residue-number-system view of Z_Q[x]/(x^N + 1) with
// Q = q_0·q_1·…·q_{L-1}: one NTT-friendly Ring per prime. This is exactly
// the representation the prior client-side PKE accelerators operate on
// ("three different moduli", Sec. I-A).
type RNSRing struct {
	Rings []*Ring
	N     int
	Q     *big.Int // product of the prime moduli

	// Garner/CRT precomputation: Qi = Q/qi, QiInv = Qi^{-1} mod qi.
	qiBig    []*big.Int
	qiHat    []*big.Int // Q / qi
	qiHatInv []uint64   // (Q/qi)^{-1} mod qi
}

// NewRNSRing builds the RNS ring for dimension n and the given primes.
func NewRNSRing(n int, primes []uint64) (*RNSRing, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rlwe: RNS basis must contain at least one prime")
	}
	rr := &RNSRing{N: n, Q: big.NewInt(1)}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("rlwe: duplicate RNS prime %d", q)
		}
		seen[q] = true
		ring, err := NewRing(n, q)
		if err != nil {
			return nil, err
		}
		rr.Rings = append(rr.Rings, ring)
		rr.Q.Mul(rr.Q, new(big.Int).SetUint64(q))
	}
	for _, ring := range rr.Rings {
		qi := new(big.Int).SetUint64(ring.Q)
		hat := new(big.Int).Quo(rr.Q, qi)
		hatModQi := new(big.Int).Mod(hat, qi)
		inv := new(big.Int).ModInverse(hatModQi, qi)
		if inv == nil {
			return nil, fmt.Errorf("rlwe: RNS primes not coprime")
		}
		rr.qiBig = append(rr.qiBig, qi)
		rr.qiHat = append(rr.qiHat, hat)
		rr.qiHatInv = append(rr.qiHatInv, inv.Uint64())
	}
	return rr, nil
}

// Level returns the number of RNS primes.
func (rr *RNSRing) Level() int { return len(rr.Rings) }

// RNSPoly is one polynomial represented per RNS prime.
type RNSPoly []Poly

// NewPoly returns the zero RNS polynomial.
func (rr *RNSRing) NewPoly() RNSPoly {
	p := make(RNSPoly, rr.Level())
	for i, ring := range rr.Rings {
		p[i] = ring.NewPoly()
	}
	return p
}

// Clone deep-copies p.
func (p RNSPoly) Clone() RNSPoly {
	q := make(RNSPoly, len(p))
	for i := range p {
		q[i] = p[i].Clone()
	}
	return q
}

// Equal reports residue-wise equality.
func (p RNSPoly) Equal(q RNSPoly) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Equal(q[i]) {
			return false
		}
	}
	return true
}

// NTT / INTT transform every residue polynomial in place.
func (rr *RNSRing) NTT(p RNSPoly) {
	for i, ring := range rr.Rings {
		ring.NTT(p[i])
	}
}

// INTT inverts NTT.
func (rr *RNSRing) INTT(p RNSPoly) {
	for i, ring := range rr.Rings {
		ring.INTT(p[i])
	}
}

// Add sets dst = a + b.
func (rr *RNSRing) Add(dst, a, b RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Add(dst[i], a[i], b[i])
	}
}

// Sub sets dst = a - b.
func (rr *RNSRing) Sub(dst, a, b RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Sub(dst[i], a[i], b[i])
	}
}

// Neg sets dst = -a.
func (rr *RNSRing) Neg(dst, a RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Neg(dst[i], a[i])
	}
}

// MulCoeff sets dst = a ⊙ b (NTT domain).
func (rr *RNSRing) MulCoeff(dst, a, b RNSPoly) {
	for i, ring := range rr.Rings {
		ring.MulCoeff(dst[i], a[i], b[i])
	}
}

// MulScalarBig sets dst = c·a for a (possibly large) integer constant.
func (rr *RNSRing) MulScalarBig(dst RNSPoly, c *big.Int, a RNSPoly) {
	for i, ring := range rr.Rings {
		ci := new(big.Int).Mod(c, rr.qiBig[i]).Uint64()
		ring.MulScalar(dst[i], ci, a[i])
	}
}

// UniformPoly samples a uniform RNS polynomial (independent residues —
// equivalent to uniform mod Q by CRT).
func (rr *RNSRing) UniformPoly(g *PRNG) RNSPoly {
	p := make(RNSPoly, rr.Level())
	for i, ring := range rr.Rings {
		p[i] = g.UniformPoly(ring)
	}
	return p
}

// SignedPoly embeds one slice of small signed coefficients consistently
// under every RNS prime.
func (rr *RNSRing) SignedPoly(vals []int) RNSPoly {
	p := rr.NewPoly()
	for i, ring := range rr.Rings {
		for j, v := range vals {
			p[i][j] = EmbedSigned(v, ring.Q)
		}
	}
	return p
}

// TernaryPoly samples one ternary polynomial embedded under all primes.
func (rr *RNSRing) TernaryPoly(g *PRNG) RNSPoly {
	return rr.SignedPoly(SignedVec(rr.N, g.SignedTernary))
}

// NoisePoly samples one centered-binomial polynomial embedded under all
// primes.
func (rr *RNSRing) NoisePoly(g *PRNG, eta int) RNSPoly {
	return rr.SignedPoly(SignedVec(rr.N, func() int { return g.SignedNoise(eta) }))
}

// Reconstruct returns coefficient i of p as an integer in [0, Q) via CRT.
func (rr *RNSRing) Reconstruct(p RNSPoly, i int) *big.Int {
	acc := new(big.Int)
	term := new(big.Int)
	for l, ring := range rr.Rings {
		// term = (x_l · qiHatInv_l mod q_l) · qiHat_l
		v := ring.mod.Mul(p[l][i], rr.qiHatInv[l])
		term.SetUint64(v)
		term.Mul(term, rr.qiHat[l])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, rr.Q)
}

// ReconstructCentered returns coefficient i in (-Q/2, Q/2].
func (rr *RNSRing) ReconstructCentered(p RNSPoly, i int) *big.Int {
	v := rr.Reconstruct(p, i)
	half := new(big.Int).Rsh(rr.Q, 1)
	if v.Cmp(half) > 0 {
		v.Sub(v, rr.Q)
	}
	return v
}

// SetCoeffBig sets coefficient i of p to v mod Q (v may be any integer).
func (rr *RNSRing) SetCoeffBig(p RNSPoly, i int, v *big.Int) {
	tmp := new(big.Int)
	for l := range rr.Rings {
		tmp.Mod(v, rr.qiBig[l])
		p[l][i] = tmp.Uint64()
	}
}
