package rlwe

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
)

// RNSRing is the residue-number-system view of Z_Q[x]/(x^N + 1) with
// Q = q_0·q_1·…·q_{L-1}: one NTT-friendly Ring per prime. This is exactly
// the representation the prior client-side PKE accelerators operate on
// ("three different moduli", Sec. I-A).
//
// Residue limbs are fully independent, so the transform-heavy operations
// fan limbs out over a worker pool (default GOMAXPROCS; tune with
// WithParallelism) and all per-limb arithmetic runs on the lazy Shoup
// fast path of the underlying rings.
type RNSRing struct {
	Rings []*Ring
	N     int
	Q     *big.Int // product of the prime moduli

	// Garner/CRT precomputation: Qi = Q/qi, QiInv = Qi^{-1} mod qi.
	qiBig    []*big.Int
	qiHat    []*big.Int // Q / qi
	qiHatInv []uint64   // (Q/qi)^{-1} mod qi

	// workers is the limb fan-out width: 0 = GOMAXPROCS, 1 = sequential.
	workers int
}

// WithParallelism returns a view of the ring whose per-limb operations
// fan out over n worker goroutines (0 = GOMAXPROCS, 1 = sequential). The
// view shares all precomputed state with the receiver and both remain
// safe for concurrent use; results are bit-identical across widths.
func (rr *RNSRing) WithParallelism(n int) *RNSRing {
	out := *rr
	out.workers = n
	return &out
}

// Parallelism reports the configured limb fan-out (0 = GOMAXPROCS).
func (rr *RNSRing) Parallelism() int { return rr.workers }

// Sequential reports whether per-limb operations run on the calling
// goroutine (callers can then skip building escaping closures).
func (rr *RNSRing) Sequential() bool { return rr.effectiveWorkers() <= 1 }

func (rr *RNSRing) effectiveWorkers() int {
	w := rr.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(rr.Rings) {
		w = len(rr.Rings)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachLimb runs f(l) for every RNS limb, striding limbs across the
// worker pool when more than one worker is configured. f must be safe to
// call concurrently for distinct limbs (all per-limb ring operations
// are).
func (rr *RNSRing) ForEachLimb(f func(l int)) {
	w := rr.effectiveWorkers()
	if w <= 1 {
		for l := range rr.Rings {
			f(l)
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for l := g; l < len(rr.Rings); l += w {
				f(l)
			}
		}(g)
	}
	wg.Wait()
}

// NewRNSRing builds the RNS ring for dimension n and the given primes.
func NewRNSRing(n int, primes []uint64) (*RNSRing, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("rlwe: RNS basis must contain at least one prime")
	}
	rr := &RNSRing{N: n, Q: big.NewInt(1)}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("rlwe: duplicate RNS prime %d", q)
		}
		seen[q] = true
		ring, err := NewRing(n, q)
		if err != nil {
			return nil, err
		}
		rr.Rings = append(rr.Rings, ring)
		rr.Q.Mul(rr.Q, new(big.Int).SetUint64(q))
	}
	for _, ring := range rr.Rings {
		qi := new(big.Int).SetUint64(ring.Q)
		hat := new(big.Int).Quo(rr.Q, qi)
		hatModQi := new(big.Int).Mod(hat, qi)
		inv := new(big.Int).ModInverse(hatModQi, qi)
		if inv == nil {
			return nil, fmt.Errorf("rlwe: RNS primes not coprime")
		}
		rr.qiBig = append(rr.qiBig, qi)
		rr.qiHat = append(rr.qiHat, hat)
		rr.qiHatInv = append(rr.qiHatInv, inv.Uint64())
	}
	return rr, nil
}

// Level returns the number of RNS primes.
func (rr *RNSRing) Level() int { return len(rr.Rings) }

// RNSPoly is one polynomial represented per RNS prime.
type RNSPoly []Poly

// NewPoly returns the zero RNS polynomial.
func (rr *RNSRing) NewPoly() RNSPoly {
	p := make(RNSPoly, rr.Level())
	for i, ring := range rr.Rings {
		p[i] = ring.NewPoly()
	}
	return p
}

// Clone deep-copies p.
func (p RNSPoly) Clone() RNSPoly {
	q := make(RNSPoly, len(p))
	for i := range p {
		q[i] = p[i].Clone()
	}
	return q
}

// Equal reports residue-wise equality.
func (p RNSPoly) Equal(q RNSPoly) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Equal(q[i]) {
			return false
		}
	}
	return true
}

// NTT / INTT transform every residue polynomial in place on the lazy
// Shoup fast path, fanning independent limbs across the worker pool.
// The sequential branch loops directly rather than building the closure:
// a func literal passed to ForEachLimb escapes (it may reach a
// goroutine) and would cost one heap allocation per call, breaking the
// zero-alloc contract of the encryption pipeline.
func (rr *RNSRing) NTT(p RNSPoly) {
	if rr.effectiveWorkers() <= 1 {
		for l := range rr.Rings {
			rr.Rings[l].NTTLazy(p[l])
		}
		return
	}
	rr.ForEachLimb(func(l int) { rr.Rings[l].NTTLazy(p[l]) })
}

// INTT inverts NTT.
func (rr *RNSRing) INTT(p RNSPoly) {
	if rr.effectiveWorkers() <= 1 {
		for l := range rr.Rings {
			rr.Rings[l].INTTLazy(p[l])
		}
		return
	}
	rr.ForEachLimb(func(l int) { rr.Rings[l].INTTLazy(p[l]) })
}

// Add sets dst = a + b.
func (rr *RNSRing) Add(dst, a, b RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Add(dst[i], a[i], b[i])
	}
}

// Sub sets dst = a - b.
func (rr *RNSRing) Sub(dst, a, b RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Sub(dst[i], a[i], b[i])
	}
}

// Neg sets dst = -a.
func (rr *RNSRing) Neg(dst, a RNSPoly) {
	for i, ring := range rr.Rings {
		ring.Neg(dst[i], a[i])
	}
}

// MulCoeff sets dst = a ⊙ b (NTT domain), fanning limbs across the
// worker pool.
func (rr *RNSRing) MulCoeff(dst, a, b RNSPoly) {
	if rr.effectiveWorkers() <= 1 {
		for l := range rr.Rings {
			rr.Rings[l].MulCoeff(dst[l], a[l], b[l])
		}
		return
	}
	rr.ForEachLimb(func(l int) { rr.Rings[l].MulCoeff(dst[l], a[l], b[l]) })
}

// MulPolyInto sets dst = a·b (coefficient domain) limb-parallel on the
// lazy 3-NTT path with pooled scratch: zero steady-state allocations on
// the sequential path.
func (rr *RNSRing) MulPolyInto(dst, a, b RNSPoly) {
	if rr.effectiveWorkers() <= 1 {
		for l := range rr.Rings {
			rr.Rings[l].MulPolyInto(dst[l], a[l], b[l])
		}
		return
	}
	rr.ForEachLimb(func(l int) { rr.Rings[l].MulPolyInto(dst[l], a[l], b[l]) })
}

// MulScalarBig sets dst = c·a for a (possibly large) integer constant.
func (rr *RNSRing) MulScalarBig(dst RNSPoly, c *big.Int, a RNSPoly) {
	for i, ring := range rr.Rings {
		ci := new(big.Int).Mod(c, rr.qiBig[i]).Uint64()
		ring.MulScalar(dst[i], ci, a[i])
	}
}

// UniformPoly samples a uniform RNS polynomial (independent residues —
// equivalent to uniform mod Q by CRT).
func (rr *RNSRing) UniformPoly(g *PRNG) RNSPoly {
	p := make(RNSPoly, rr.Level())
	for i, ring := range rr.Rings {
		p[i] = g.UniformPoly(ring)
	}
	return p
}

// SignedPoly embeds one slice of small signed coefficients consistently
// under every RNS prime.
func (rr *RNSRing) SignedPoly(vals []int) RNSPoly {
	p := rr.NewPoly()
	for i, ring := range rr.Rings {
		for j, v := range vals {
			p[i][j] = EmbedSigned(v, ring.Q)
		}
	}
	return p
}

// SignedPolyInto embeds vals (which must have exactly N entries) into the
// caller's polynomial without allocating, overwriting every coefficient.
func (rr *RNSRing) SignedPolyInto(p RNSPoly, vals []int) {
	for i, ring := range rr.Rings {
		q := ring.Q
		dst := p[i]
		for j, v := range vals {
			dst[j] = EmbedSigned(v, q)
		}
	}
}

// UniformPolyInto fills the caller's polynomial with uniform residues
// without allocating. Sampling stays sequential: the PRNG stream order is
// part of the deterministic contract.
func (rr *RNSRing) UniformPolyInto(g *PRNG, p RNSPoly) {
	for i, ring := range rr.Rings {
		g.UniformPolyInto(ring, p[i])
	}
}

// TernaryPoly samples one ternary polynomial embedded under all primes.
func (rr *RNSRing) TernaryPoly(g *PRNG) RNSPoly {
	return rr.SignedPoly(SignedVec(rr.N, g.SignedTernary))
}

// NoisePoly samples one centered-binomial polynomial embedded under all
// primes.
func (rr *RNSRing) NoisePoly(g *PRNG, eta int) RNSPoly {
	return rr.SignedPoly(SignedVec(rr.N, func() int { return g.SignedNoise(eta) }))
}

// Reconstruct returns coefficient i of p as an integer in [0, Q) via CRT.
func (rr *RNSRing) Reconstruct(p RNSPoly, i int) *big.Int {
	acc := new(big.Int)
	term := new(big.Int)
	for l, ring := range rr.Rings {
		// term = (x_l · qiHatInv_l mod q_l) · qiHat_l
		v := ring.mod.Mul(p[l][i], rr.qiHatInv[l])
		term.SetUint64(v)
		term.Mul(term, rr.qiHat[l])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, rr.Q)
}

// ReconstructCentered returns coefficient i in (-Q/2, Q/2].
func (rr *RNSRing) ReconstructCentered(p RNSPoly, i int) *big.Int {
	v := rr.Reconstruct(p, i)
	half := new(big.Int).Rsh(rr.Q, 1)
	if v.Cmp(half) > 0 {
		v.Sub(v, rr.Q)
	}
	return v
}

// SetCoeffBig sets coefficient i of p to v mod Q (v may be any integer).
func (rr *RNSRing) SetCoeffBig(p RNSPoly, i int, v *big.Int) {
	tmp := new(big.Int)
	for l := range rr.Rings {
		tmp.Mod(v, rr.qiBig[l])
		p[l][i] = tmp.Uint64()
	}
}
