package rlwe

import (
	"fmt"
	"math/big"
	"testing"
)

func testRing(t *testing.T, n int) *Ring {
	t.Helper()
	q, err := FindNTTPrime(30, n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFindNTTPrime(t *testing.T) {
	for _, n := range []int{256, 1024, 8192} {
		q, err := FindNTTPrime(30, n)
		if err != nil {
			t.Fatal(err)
		}
		if (q-1)%uint64(2*n) != 0 {
			t.Fatalf("q = %d not ≡ 1 mod 2N for N = %d", q, n)
		}
	}
	if _, err := FindNTTPrime(3, 256); err == nil {
		t.Fatal("tiny bit length accepted")
	}
}

func TestFindNTTPrimesDistinct(t *testing.T) {
	qs, err := FindNTTPrimes(30, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] == qs[1] || qs[1] == qs[2] || qs[0] == qs[2] {
		t.Fatalf("primes not distinct: %v", qs)
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(100, 65537); err == nil {
		t.Fatal("non-power-of-two N accepted")
	}
	if _, err := NewRing(256, 65537+2); err == nil {
		t.Fatal("non-prime q accepted")
	}
	if _, err := NewRing(1<<17, 65537); err == nil {
		t.Fatal("q !≡ 1 mod 2N accepted")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 256)
	g := NewPRNG("ntt", []byte{1})
	p := g.UniformPoly(r)
	orig := p.Clone()
	r.NTT(p)
	if p.Equal(orig) {
		t.Fatal("NTT is identity?")
	}
	r.INTT(p)
	if !p.Equal(orig) {
		t.Fatal("INTT(NTT(p)) != p")
	}
}

func TestNTTMulMatchesNaive(t *testing.T) {
	r := testRing(t, 64)
	g := NewPRNG("mul", []byte{2})
	for trial := 0; trial < 5; trial++ {
		a, b := g.UniformPoly(r), g.UniformPoly(r)
		fast := r.MulPoly(a, b)
		slow := r.MulPolyNaive(a, b)
		if !fast.Equal(slow) {
			t.Fatalf("trial %d: NTT product differs from schoolbook", trial)
		}
	}
}

func TestNegacyclicWraparound(t *testing.T) {
	// x^(N-1) · x = x^N = -1.
	r := testRing(t, 16)
	a, b := r.NewPoly(), r.NewPoly()
	a[r.N-1] = 1
	b[1] = 1
	prod := r.MulPoly(a, b)
	want := r.NewPoly()
	want[0] = r.Q - 1
	if !prod.Equal(want) {
		t.Fatalf("x^(N-1)·x = %v, want -1", prod[:2])
	}
}

func TestRingLinearity(t *testing.T) {
	r := testRing(t, 128)
	g := NewPRNG("lin", []byte{3})
	a, b, c := g.UniformPoly(r), g.UniformPoly(r), g.UniformPoly(r)
	// (a+b)·c == a·c + b·c
	sum := r.NewPoly()
	r.Add(sum, a, b)
	lhs := r.MulPoly(sum, c)
	rhs := r.NewPoly()
	r.Add(rhs, r.MulPoly(a, c), r.MulPoly(b, c))
	if !lhs.Equal(rhs) {
		t.Fatal("distributivity failed in ring")
	}
}

func TestSamplerDistributions(t *testing.T) {
	g := NewPRNG("dist", []byte{4})
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		v := g.SignedTernary()
		if v < -1 || v > 1 {
			t.Fatalf("ternary out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("ternary value %d count %d, want ≈1000", v, c)
		}
	}
	// Centered binomial with eta=3: range [-3, 3], mean ≈ 0.
	sum := 0
	for i := 0; i < 3000; i++ {
		v := g.SignedNoise(3)
		if v < -3 || v > 3 {
			t.Fatalf("noise out of range: %d", v)
		}
		sum += v
	}
	if sum < -300 || sum > 300 {
		t.Errorf("noise mean drifts: sum = %d over 3000", sum)
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a := NewPRNG("x", []byte("seed"))
	b := NewPRNG("x", []byte("seed"))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewPRNG("y", []byte("seed"))
	if a.Uint64() == c.Uint64() {
		t.Log("domain-separated streams agreed once (possible but unlikely)")
	}
}

func TestRNSReconstruct(t *testing.T) {
	primes, err := FindNTTPrimes(20, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(64, primes)
	if err != nil {
		t.Fatal(err)
	}
	// Set a known big value and reconstruct it.
	p := rr.NewPoly()
	want := new(big.Int).Div(rr.Q, big.NewInt(3))
	rr.SetCoeffBig(p, 7, want)
	got := rr.Reconstruct(p, 7)
	if got.Cmp(want) != 0 {
		t.Fatalf("Reconstruct = %v, want %v", got, want)
	}
	// Negative value: centered reconstruction.
	neg := big.NewInt(-12345)
	rr.SetCoeffBig(p, 8, neg)
	if got := rr.ReconstructCentered(p, 8); got.Cmp(neg) != 0 {
		t.Fatalf("ReconstructCentered = %v, want %v", got, neg)
	}
}

func TestRNSAddMatchesBig(t *testing.T) {
	primes, _ := FindNTTPrimes(20, 32, 2)
	rr, err := NewRNSRing(32, primes)
	if err != nil {
		t.Fatal(err)
	}
	g := NewPRNG("rns", []byte{5})
	a, b := rr.UniformPoly(g), rr.UniformPoly(g)
	sum := rr.NewPoly()
	rr.Add(sum, a, b)
	for i := 0; i < rr.N; i += 7 {
		want := new(big.Int).Add(rr.Reconstruct(a, i), rr.Reconstruct(b, i))
		want.Mod(want, rr.Q)
		if got := rr.Reconstruct(sum, i); got.Cmp(want) != 0 {
			t.Fatalf("coeff %d: RNS add mismatch", i)
		}
	}
}

func TestRNSNTTRoundTrip(t *testing.T) {
	primes, _ := FindNTTPrimes(25, 128, 2)
	rr, err := NewRNSRing(128, primes)
	if err != nil {
		t.Fatal(err)
	}
	g := NewPRNG("rnsntt", []byte{6})
	p := rr.UniformPoly(g)
	orig := p.Clone()
	rr.NTT(p)
	rr.INTT(p)
	if !p.Equal(orig) {
		t.Fatal("RNS NTT roundtrip failed")
	}
}

func TestRNSValidation(t *testing.T) {
	if _, err := NewRNSRing(64, nil); err == nil {
		t.Fatal("empty basis accepted")
	}
	q, _ := FindNTTPrime(20, 64)
	if _, err := NewRNSRing(64, []uint64{q, q}); err == nil {
		t.Fatal("duplicate primes accepted")
	}
}

func TestSignedPolyConsistency(t *testing.T) {
	primes, _ := FindNTTPrimes(20, 16, 2)
	rr, _ := NewRNSRing(16, primes)
	vals := []int{-2, -1, 0, 1, 2, 3, -3, 0, 1, -1, 2, -2, 0, 0, 1, -1}
	p := rr.SignedPoly(vals)
	for i, v := range vals {
		got := rr.ReconstructCentered(p, i)
		if got.Int64() != int64(v) {
			t.Fatalf("coeff %d: got %v, want %d", i, got, v)
		}
	}
}

// BenchmarkNTT compares the production Shoup/Harvey lazy butterfly
// against the division-based oracle across transform sizes, over a
// generic 30-bit prime (no special reduction structure). Run with
// -cpu 1,2,4 to check the single-transform path is scale-invariant
// (one NTT never fans out; parallelism lives at the RNS limb level,
// see BenchmarkRNSNTT).
func BenchmarkNTT(b *testing.B) {
	for _, n := range []int{1024, 4096, 8192} {
		q, err := FindNTTPrime(30, n)
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewRing(n, q)
		if err != nil {
			b.Fatal(err)
		}
		g := NewPRNG("bench", []byte{7})
		p := g.UniformPoly(r)
		b.Run(fmt.Sprintf("N=%d/lazy", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.NTTLazy(p)
			}
		})
		b.Run(fmt.Sprintf("N=%d/oracle", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.NTT(p)
			}
		})
	}
}

// BenchmarkINTT times the inverse lazy transform at the BFV size.
func BenchmarkINTT(b *testing.B) {
	q, _ := FindNTTPrime(30, 8192)
	r, _ := NewRing(8192, q)
	g := NewPRNG("bench", []byte{7})
	p := g.UniformPoly(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.INTTLazy(p)
	}
}

// BenchmarkMulPolyInto measures a full negacyclic product on the
// allocation-free path (two forward NTTs, pointwise mul, one inverse;
// scratch from the ring's pool).
func BenchmarkMulPolyInto(b *testing.B) {
	q, _ := FindNTTPrime(30, 4096)
	r, _ := NewRing(4096, q)
	g := NewPRNG("bench", []byte{8})
	a, c := g.UniformPoly(r), g.UniformPoly(r)
	out := r.NewPoly()
	r.MulPolyInto(out, a, c) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulPolyInto(out, a, c)
	}
}

// BenchmarkRNSNTT times the full RNS transform (3 limbs at N=8192, the
// BFV working size); run with -cpu 1,2,4 to see the limb fan-out scale.
func BenchmarkRNSNTT(b *testing.B) {
	primes, err := FindNTTPrimes(55, 8192, 3)
	if err != nil {
		b.Fatal(err)
	}
	rr, err := NewRNSRing(8192, primes)
	if err != nil {
		b.Fatal(err)
	}
	g := NewPRNG("bench", []byte{9})
	p := rr.UniformPoly(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr.NTT(p)
	}
}
