//go:build !race

package rlwe

// raceEnabled mirrors the -race build tag: allocation-count assertions
// are meaningless under the race detector, whose instrumentation adds
// heap allocations of its own.
const raceEnabled = false
