// Package rlwe provides the ring-LWE substrate the paper's comparisons
// rest on: power-of-two negacyclic polynomial rings Z_q[x]/(x^N + 1) with
// number-theoretic transforms, RNS (residue number system) polynomial
// arithmetic, and the samplers used by BFV-style encryption.
//
// The prior FHE client-side accelerators the paper compares against
// ([18]–[22]) all accelerate exactly this workload: public-key RLWE
// encryption at N = 2^13 with three ≈30–60-bit moduli, three NTTs per
// modulus (Sec. I-A). Implementing the substrate lets the benchmark
// harness run the PKE baseline rather than assume it.
package rlwe

import (
	"fmt"
	"math/bits"

	"repro/internal/ff"
)

// Ring is Z_q[x]/(x^N + 1) for an NTT-friendly prime q ≡ 1 (mod 2N).
type Ring struct {
	N   int
	Q   uint64
	mod ff.Modulus

	// Precomputed twiddle factors in bit-reversed order for the
	// negacyclic Cooley–Tukey / Gentleman–Sande butterflies.
	psiPow    []uint64 // psi^bitrev(i)
	psiInvPow []uint64
	nInv      uint64 // N^{-1} mod q
}

// NewRing builds the ring, deriving a primitive 2N-th root of unity.
func NewRing(n int, q uint64) (*Ring, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("rlwe: N = %d must be a power of two ≥ 2", n)
	}
	if (q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("rlwe: q = %d is not ≡ 1 (mod 2N = %d)", q, 2*n)
	}
	mod, err := ff.NewModulus(q)
	if err != nil {
		return nil, fmt.Errorf("rlwe: %w", err)
	}
	psi, err := primitiveRoot2N(mod, n)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Q: q, mod: mod}
	r.psiPow = make([]uint64, n)
	r.psiInvPow = make([]uint64, n)
	psiInv := mod.Inv(psi)
	logN := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		j := bitrev(uint(i), logN)
		r.psiPow[i] = mod.Exp(psi, uint64(j))
		r.psiInvPow[i] = mod.Exp(psiInv, uint64(j))
	}
	r.nInv = mod.Inv(uint64(n))
	return r, nil
}

// Mod returns the coefficient modulus wrapper.
func (r *Ring) Mod() ff.Modulus { return r.mod }

// primitiveRoot2N finds psi with psi^(2N) = 1 and psi^N = -1.
func primitiveRoot2N(mod ff.Modulus, n int) (uint64, error) {
	q := mod.P()
	order := uint64(2 * n)
	exp := (q - 1) / order
	for g := uint64(2); g < q; g++ {
		psi := mod.Exp(g, exp)
		if mod.Exp(psi, order/2) == q-1 { // psi^N = -1 ⇒ primitive 2N-th root
			return psi, nil
		}
	}
	return 0, fmt.Errorf("rlwe: no primitive 2N-th root of unity mod %d", q)
}

func bitrev(v uint, bits int) uint {
	var r uint
	for i := 0; i < bits; i++ {
		r = r<<1 | (v>>uint(i))&1
	}
	return r
}

// Poly is a polynomial with N coefficients in [0, q).
type Poly []uint64

// NewPoly returns the zero polynomial of the ring's dimension.
func (r *Ring) NewPoly() Poly { return make(Poly, r.N) }

// Clone copies p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Equal reports coefficient-wise equality.
func (p Poly) Equal(q Poly) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// NTT transforms p in place to the negacyclic evaluation domain
// (Cooley–Tukey, decimation in time, with the psi twist merged into the
// twiddles). One call performs (N/2)·log2(N) butterflies — the
// multiplication-count basis of the paper's Sec. I-A analysis.
func (r *Ring) NTT(p Poly) {
	n := r.N
	m := r.mod
	t := n
	for l, numPhi := 1, 1; l < n; l, numPhi = l<<1, numPhi<<1 {
		t >>= 1
		for i := 0; i < numPhi; i++ {
			phi := r.psiPow[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				u := p[j]
				v := m.Mul(p[j+t], phi)
				p[j] = m.Add(u, v)
				p[j+t] = m.Sub(u, v)
			}
		}
	}
}

// INTT inverts NTT in place (Gentleman–Sande, decimation in frequency).
func (r *Ring) INTT(p Poly) {
	n := r.N
	m := r.mod
	t := 1
	for numPhi := n >> 1; numPhi >= 1; numPhi >>= 1 {
		for i := 0; i < numPhi; i++ {
			phi := r.psiInvPow[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				u := p[j]
				v := p[j+t]
				p[j] = m.Add(u, v)
				p[j+t] = m.Mul(m.Sub(u, v), phi)
			}
		}
		t <<= 1
	}
	for i := range p {
		p[i] = m.Mul(p[i], r.nInv)
	}
}

// Add sets dst = a + b coefficient-wise. Aliasing is allowed.
func (r *Ring) Add(dst, a, b Poly) {
	ff.AddVec(r.mod, ff.Vec(dst), ff.Vec(a), ff.Vec(b))
}

// Sub sets dst = a - b coefficient-wise. Aliasing is allowed.
func (r *Ring) Sub(dst, a, b Poly) {
	ff.SubVec(r.mod, ff.Vec(dst), ff.Vec(a), ff.Vec(b))
}

// Neg sets dst = -a.
func (r *Ring) Neg(dst, a Poly) {
	for i := range a {
		dst[i] = r.mod.Neg(a[i])
	}
}

// MulCoeff sets dst = a ⊙ b (pointwise; operands must be in NTT domain).
func (r *Ring) MulCoeff(dst, a, b Poly) {
	for i := range a {
		dst[i] = r.mod.Mul(a[i], b[i])
	}
}

// MulScalar sets dst = c·a coefficient-wise.
func (r *Ring) MulScalar(dst Poly, c uint64, a Poly) {
	ff.ScaleVec(r.mod, ff.Vec(dst), c, ff.Vec(a))
}

// MulPoly returns a·b in the ring (inputs and output in coefficient
// domain): forward NTTs, pointwise multiply, inverse NTT — the 3-NTT
// pattern of the client encryption workload.
func (r *Ring) MulPoly(a, b Poly) Poly {
	at, bt := a.Clone(), b.Clone()
	r.NTT(at)
	r.NTT(bt)
	out := r.NewPoly()
	r.MulCoeff(out, at, bt)
	r.INTT(out)
	return out
}

// MulPolyNaive returns a·b by negacyclic schoolbook convolution; used to
// validate the NTT path in tests.
func (r *Ring) MulPolyNaive(a, b Poly) Poly {
	n := r.N
	m := r.mod
	out := r.NewPoly()
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			prod := m.Mul(a[i], b[j])
			if k < n {
				out[k] = m.Add(out[k], prod)
			} else {
				out[k-n] = m.Sub(out[k-n], prod) // x^N = -1
			}
		}
	}
	return out
}

// FindNTTPrime returns the largest prime < 2^bitLen with q ≡ 1 (mod 2N).
func FindNTTPrime(bitLen uint, n int) (uint64, error) {
	if bitLen < 4 || bitLen > 61 {
		return 0, fmt.Errorf("rlwe: unsupported NTT prime size %d", bitLen)
	}
	step := uint64(2 * n)
	q := (uint64(1)<<bitLen - 1) / step * step // largest multiple of 2N below 2^bitLen
	for ; q > step; q -= step {
		if ff.IsPrime(q + 1) {
			return q + 1, nil
		}
	}
	return 0, fmt.Errorf("rlwe: no NTT prime of %d bits for N = %d", bitLen, n)
}

// FindNTTPrimes returns count distinct NTT primes just under 2^bitLen.
func FindNTTPrimes(bitLen uint, n, count int) ([]uint64, error) {
	out := make([]uint64, 0, count)
	step := uint64(2 * n)
	q := (uint64(1)<<bitLen - 1) / step * step
	for ; q > step && len(out) < count; q -= step {
		if ff.IsPrime(q + 1) {
			out = append(out, q+1)
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("rlwe: found only %d/%d NTT primes of %d bits", len(out), count, bitLen)
	}
	return out, nil
}
