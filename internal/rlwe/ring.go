// Package rlwe provides the ring-LWE substrate the paper's comparisons
// rest on: power-of-two negacyclic polynomial rings Z_q[x]/(x^N + 1) with
// number-theoretic transforms, RNS (residue number system) polynomial
// arithmetic, and the samplers used by BFV-style encryption.
//
// The prior FHE client-side accelerators the paper compares against
// ([18]–[22]) all accelerate exactly this workload: public-key RLWE
// encryption at N = 2^13 with three ≈30–60-bit moduli, three NTTs per
// modulus (Sec. I-A). Implementing the substrate lets the benchmark
// harness run the PKE baseline rather than assume it.
//
// Two transform implementations coexist, mirroring how internal/pasta
// keeps its sequential engine next to the parallel one: NTT/INTT are the
// straightforward division-based oracles, and NTTLazy/INTTLazy are the
// production path — Harvey-style butterflies over Shoup-precomputed
// twiddles that keep coefficients lazily in [0, 2q)–[0, 4q) through the
// whole transform and correct once at the end. One reduction per butterfly
// with no hardware division is exactly the single-reduction-per-stage
// datapath the prior NTT accelerators ([18]–[22], and Medha's microcoded
// butterflies) implement; the two paths are tested bit-identical.
package rlwe

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/ff"
)

// Ring is Z_q[x]/(x^N + 1) for an NTT-friendly prime q ≡ 1 (mod 2N).
type Ring struct {
	N   int
	Q   uint64
	mod ff.Modulus

	// Precomputed twiddle factors in bit-reversed order for the
	// negacyclic Cooley–Tukey / Gentleman–Sande butterflies, with their
	// Shoup representations (floor(w·2^64/q)) for the lazy fast path.
	psiPow      []uint64 // psi^bitrev(i)
	psiInvPow   []uint64
	psiShoup    []uint64
	psiInvShoup []uint64
	nInv        uint64 // N^{-1} mod q
	nInvShoup   uint64
	twoQ        uint64

	// brt[i] = bit-reversal of i over log2(N) bits, computed once at ring
	// construction and shared by the twiddle layout and external users
	// (see BitRevTable).
	brt []int

	// pool recycles NTT-domain scratch polynomials for MulPolyInto so the
	// steady-state 3-NTT multiply allocates nothing.
	pool sync.Pool
}

// NewRing builds the ring, deriving a primitive 2N-th root of unity.
func NewRing(n int, q uint64) (*Ring, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("rlwe: N = %d must be a power of two ≥ 2", n)
	}
	if (q-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("rlwe: q = %d is not ≡ 1 (mod 2N = %d)", q, 2*n)
	}
	mod, err := ff.NewModulus(q)
	if err != nil {
		return nil, fmt.Errorf("rlwe: %w", err)
	}
	psi, err := primitiveRoot2N(mod, n, maxRootCandidates)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Q: q, mod: mod, twoQ: 2 * q}
	logN := bits.Len(uint(n)) - 1
	r.brt = make([]int, n)
	for i := 1; i < n; i++ {
		r.brt[i] = r.brt[i>>1]>>1 | (i&1)<<(logN-1)
	}
	// Successive powers psi^j (N multiplies total, instead of N Exp calls
	// of ~log q multiplies each), scattered through the bit-reversal table.
	psiInv := mod.Inv(psi)
	pow, powInv := make([]uint64, n), make([]uint64, n)
	pow[0], powInv[0] = 1, 1
	for j := 1; j < n; j++ {
		pow[j] = mod.Mul(pow[j-1], psi)
		powInv[j] = mod.Mul(powInv[j-1], psiInv)
	}
	r.psiPow = make([]uint64, n)
	r.psiInvPow = make([]uint64, n)
	r.psiShoup = make([]uint64, n)
	r.psiInvShoup = make([]uint64, n)
	for i := 0; i < n; i++ {
		j := r.brt[i]
		r.psiPow[i] = pow[j]
		r.psiInvPow[i] = powInv[j]
		r.psiShoup[i] = mod.ShoupPrecomp(pow[j])
		r.psiInvShoup[i] = mod.ShoupPrecomp(powInv[j])
	}
	r.nInv = mod.Inv(uint64(n))
	r.nInvShoup = mod.ShoupPrecomp(r.nInv)
	return r, nil
}

// Mod returns the coefficient modulus wrapper.
func (r *Ring) Mod() ff.Modulus { return r.mod }

// BitRevTable returns the precomputed bit-reversal permutation: entry i is
// the log2(N)-bit reversal of i. Callers must not modify it.
func (r *Ring) BitRevTable() []int { return r.brt }

// maxRootCandidates bounds the generator scan of primitiveRoot2N. Half of
// all field elements are quadratic non-residues, so a valid candidate
// appears within the first few tries for every real prime; the bound only
// exists to turn a pathological (or buggy) modulus into a clear error
// instead of an O(q) spin.
const maxRootCandidates = 512

// primitiveRoot2N finds psi with psi^(2N) = 1 and psi^N = -1, trying at
// most maxCandidates generator candidates.
func primitiveRoot2N(mod ff.Modulus, n int, maxCandidates uint64) (uint64, error) {
	q := mod.P()
	order := uint64(2 * n)
	exp := (q - 1) / order
	for g := uint64(2); g < q && g < 2+maxCandidates; g++ {
		psi := mod.Exp(g, exp)
		if mod.Exp(psi, order/2) == q-1 { // psi^N = -1 ⇒ primitive 2N-th root
			return psi, nil
		}
	}
	return 0, fmt.Errorf("rlwe: no primitive 2N-th root of unity mod %d among the first %d generator candidates", q, maxCandidates)
}

// Poly is a polynomial with N coefficients in [0, q).
type Poly []uint64

// NewPoly returns the zero polynomial of the ring's dimension.
func (r *Ring) NewPoly() Poly { return make(Poly, r.N) }

// Clone copies p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Equal reports coefficient-wise equality.
func (p Poly) Equal(q Poly) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// NTT transforms p in place to the negacyclic evaluation domain
// (Cooley–Tukey, decimation in time, with the psi twist merged into the
// twiddles). One call performs (N/2)·log2(N) butterflies — the
// multiplication-count basis of the paper's Sec. I-A analysis.
//
// This is the division-based reference path, retained as the bit-exact
// oracle for NTTLazy (every butterfly pays a full reduction via
// Modulus.Mul); hot paths should call NTTLazy instead.
func (r *Ring) NTT(p Poly) {
	n := r.N
	m := r.mod
	t := n
	for l, numPhi := 1, 1; l < n; l, numPhi = l<<1, numPhi<<1 {
		t >>= 1
		for i := 0; i < numPhi; i++ {
			phi := r.psiPow[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				u := p[j]
				v := m.Mul(p[j+t], phi)
				p[j] = m.Add(u, v)
				p[j+t] = m.Sub(u, v)
			}
		}
	}
}

// INTT inverts NTT in place (Gentleman–Sande, decimation in frequency).
func (r *Ring) INTT(p Poly) {
	n := r.N
	m := r.mod
	t := 1
	for numPhi := n >> 1; numPhi >= 1; numPhi >>= 1 {
		for i := 0; i < numPhi; i++ {
			phi := r.psiInvPow[numPhi+i]
			base := 2 * i * t
			for j := base; j < base+t; j++ {
				u := p[j]
				v := p[j+t]
				p[j] = m.Add(u, v)
				p[j+t] = m.Mul(m.Sub(u, v), phi)
			}
		}
		t <<= 1
	}
	for i := range p {
		p[i] = m.Mul(p[i], r.nInv)
	}
}

// Add sets dst = a + b coefficient-wise. Aliasing is allowed.
func (r *Ring) Add(dst, a, b Poly) {
	ff.AddVec(r.mod, ff.Vec(dst), ff.Vec(a), ff.Vec(b))
}

// Sub sets dst = a - b coefficient-wise. Aliasing is allowed.
func (r *Ring) Sub(dst, a, b Poly) {
	ff.SubVec(r.mod, ff.Vec(dst), ff.Vec(a), ff.Vec(b))
}

// Neg sets dst = -a.
func (r *Ring) Neg(dst, a Poly) {
	for i := range a {
		dst[i] = r.mod.Neg(a[i])
	}
}

// MulCoeff sets dst = a ⊙ b (pointwise; operands must be in NTT domain).
func (r *Ring) MulCoeff(dst, a, b Poly) {
	for i := range a {
		dst[i] = r.mod.Mul(a[i], b[i])
	}
}

// MulScalar sets dst = c·a coefficient-wise.
func (r *Ring) MulScalar(dst Poly, c uint64, a Poly) {
	ff.ScaleVec(r.mod, ff.Vec(dst), c, ff.Vec(a))
}

// MulPoly returns a·b in the ring (inputs and output in coefficient
// domain): forward NTTs, pointwise multiply, inverse NTT — the 3-NTT
// pattern of the client encryption workload. The transforms run on the
// lazy fast path; use MulPolyInto to also avoid the output allocation.
func (r *Ring) MulPoly(a, b Poly) Poly {
	out := r.NewPoly()
	r.MulPolyInto(out, a, b)
	return out
}

// MulPolyNaive returns a·b by negacyclic schoolbook convolution; used to
// validate the NTT path in tests.
func (r *Ring) MulPolyNaive(a, b Poly) Poly {
	n := r.N
	m := r.mod
	out := r.NewPoly()
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			prod := m.Mul(a[i], b[j])
			if k < n {
				out[k] = m.Add(out[k], prod)
			} else {
				out[k-n] = m.Sub(out[k-n], prod) // x^N = -1
			}
		}
	}
	return out
}

// FindNTTPrime returns the largest prime < 2^bitLen with q ≡ 1 (mod 2N).
func FindNTTPrime(bitLen uint, n int) (uint64, error) {
	if bitLen < 4 || bitLen > 61 {
		return 0, fmt.Errorf("rlwe: unsupported NTT prime size %d", bitLen)
	}
	step := uint64(2 * n)
	q := (uint64(1)<<bitLen - 1) / step * step // largest multiple of 2N below 2^bitLen
	for ; q > step; q -= step {
		if ff.IsPrime(q + 1) {
			return q + 1, nil
		}
	}
	return 0, fmt.Errorf("rlwe: no NTT prime of %d bits for N = %d", bitLen, n)
}

// FindNTTPrimes returns count distinct NTT primes just under 2^bitLen.
func FindNTTPrimes(bitLen uint, n, count int) ([]uint64, error) {
	out := make([]uint64, 0, count)
	step := uint64(2 * n)
	q := (uint64(1)<<bitLen - 1) / step * step
	for ; q > step && len(out) < count; q -= step {
		if ff.IsPrime(q + 1) {
			out = append(out, q+1)
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("rlwe: found only %d/%d NTT primes of %d bits", len(out), count, bitLen)
	}
	return out, nil
}
