package rlwe

import (
	"math/bits"

	"repro/internal/keccak"
)

// PRNG is a deterministic randomness source for RLWE sampling, backed by
// SHAKE128 so key generation and encryption are reproducible from seeds
// in tests while remaining computationally uniform.
type PRNG struct {
	d *keccak.Shake
}

// NewPRNG creates a PRNG domain-separated by label and seed.
func NewPRNG(label string, seed []byte) *PRNG {
	d := keccak.NewShake128()
	_, _ = d.Write([]byte("rlwe:" + label + ":"))
	_, _ = d.Write(seed)
	return &PRNG{d: d}
}

// Uint64 returns the next raw 64-bit word.
func (g *PRNG) Uint64() uint64 { return g.d.NextWord() }

// UniformMod returns a uniform value in [0, q) by masked rejection.
func (g *PRNG) UniformMod(q uint64) uint64 {
	mask := uint64(1)<<uint(bits.Len64(q-1)) - 1
	for {
		v := g.d.NextWord() & mask
		if v < q {
			return v
		}
	}
}

// UniformPoly fills a fresh polynomial with uniform coefficients in [0, q).
func (g *PRNG) UniformPoly(r *Ring) Poly {
	p := r.NewPoly()
	g.UniformPolyInto(r, p)
	return p
}

// UniformPolyInto fills the caller's polynomial with uniform coefficients
// in [0, q) without allocating.
func (g *PRNG) UniformPolyInto(r *Ring, p Poly) {
	for i := range p {
		p[i] = g.UniformMod(r.Q)
	}
}

// SignedTernary returns a uniform value from {-1, 0, 1}, the standard
// RLWE secret/ephemeral distribution.
func (g *PRNG) SignedTernary() int {
	for {
		v := g.d.NextWord() & 3
		if v < 3 {
			return int(v) - 1
		}
	}
}

// SignedNoise samples a centered-binomial value with parameter eta
// (variance eta/2), the standard substitute for a discrete Gaussian.
func (g *PRNG) SignedNoise(eta int) int {
	var acc int
	for k := 0; k < eta; k++ {
		w := g.d.NextWord()
		acc += int(w & 1)
		acc -= int((w >> 1) & 1)
	}
	return acc
}

// TernaryPoly samples a polynomial with coefficients in {-1, 0, 1}
// embedded in [0, q).
func (g *PRNG) TernaryPoly(r *Ring) Poly {
	p := r.NewPoly()
	for i := range p {
		p[i] = embedSigned(g.SignedTernary(), r.Q)
	}
	return p
}

// NoisePoly samples a centered-binomial noise polynomial.
func (g *PRNG) NoisePoly(r *Ring, eta int) Poly {
	p := r.NewPoly()
	for i := range p {
		p[i] = embedSigned(g.SignedNoise(eta), r.Q)
	}
	return p
}

// SignedVec samples n signed values from the given sampler function; used
// by RNS sampling where the same small value must be embedded under
// several moduli.
func SignedVec(n int, next func() int) []int {
	v := make([]int, n)
	FillSigned(v, next)
	return v
}

// FillSigned fills v from next without allocating — the scratch-reusing
// form of SignedVec for the allocation-free encryption path.
func FillSigned(v []int, next func() int) {
	for i := range v {
		v[i] = next()
	}
}

func embedSigned(v int, q uint64) uint64 {
	if v >= 0 {
		return uint64(v)
	}
	return q - uint64(-v)
}

// EmbedSigned exposes the signed-to-mod-q embedding for RNS code.
func EmbedSigned(v int, q uint64) uint64 { return embedSigned(v, q) }
