//go:build !race

package backend

// raceEnabled mirrors the -race build tag: allocation-count assertions
// are skipped under the race detector, whose instrumentation allocates.
const raceEnabled = false
