package backend

import (
	"sync"

	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/hw"
	"repro/internal/pasta"
)

// AccelBackend runs every keystream block through the cycle-accurate
// cryptoprocessor model (internal/hw), accumulating the modelled cycle
// counts into Stats().AccelCycles. The accelerator mutates per-run state
// (fault consumption, waveform capture), so the kernel serializes on a
// mutex — exactly like the single peripheral instance on the SoC bus.
// A watchdog abort surfaces as a *backend.Error wrapping *hw.ErrWatchdog,
// reachable with errors.As.
type AccelBackend struct {
	base
	mu    sync.Mutex
	accel *hw.Accelerator
	hera  *hw.HeraAccelerator
	last  hw.Result // most recent PASTA run, for tooling reports
}

// NewAccel opens the cycle-accurate accelerator backend.
func NewAccel(cfg Config) (*AccelBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
	}
	b := &AccelBackend{}
	switch r.scheme {
	case SchemePasta:
		a, err := hw.NewAccelerator(r.pastaPar, pasta.Key(r.key))
		if err != nil {
			return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
		}
		a.WatchdogLimit = cfg.WatchdogLimit
		b.accel = a
		b.init(NameAccel, SchemePasta, r.pastaPar.T, r.mod, 1)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			b.mu.Lock()
			defer b.mu.Unlock()
			res, err := a.KeyStream(nonce, block)
			if err != nil {
				return err // *hw.ErrWatchdog stays reachable via errors.As
			}
			b.accelCycles.Add(res.Stats.Cycles)
			b.last = res
			copy(dst, res.KeyStream)
			return nil
		}
	case SchemeHera:
		a, err := hw.NewHeraAccelerator(r.heraPar, hera.Key(r.key))
		if err != nil {
			return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
		}
		b.hera = a
		b.init(NameAccel, SchemeHera, hera.StateSize, r.mod, 1)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			b.mu.Lock()
			defer b.mu.Unlock()
			res, err := a.KeyStream(nonce, block)
			if err != nil {
				return err
			}
			b.accelCycles.Add(res.Stats.Cycles)
			copy(dst, res.KeyStream)
			return nil
		}
	}
	return b, nil
}

// Accelerator exposes the underlying PASTA cryptoprocessor model (nil
// for HERA) so tools like cmd/hwsim can configure tracing, waveform
// capture, and fault injection. Configure it between operations, not
// concurrently with them — the backend serializes runs but cannot guard
// external field writes.
func (b *AccelBackend) Accelerator() *hw.Accelerator { return b.accel }

// HeraAccelerator exposes the HERA datapath model (nil for PASTA).
func (b *AccelBackend) HeraAccelerator() *hw.HeraAccelerator { return b.hera }

// LastResult returns the full cycle-model result of the most recent
// PASTA keystream run (schedule trace, sampler statistics, unit busy
// counts) — detail the generic Stats() interface deliberately flattens,
// but which reporting tools like cmd/hwsim still want.
func (b *AccelBackend) LastResult() hw.Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}
