package backend

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/pasta"
)

// AccelBackend runs every keystream block through the cycle-accurate
// cryptoprocessor model (internal/hw), accumulating the modelled cycle
// counts into Stats().AccelCycles. It is an N-way farm (Config.AccelUnits,
// default 1): N accelerator instances cloned from the same params/key,
// handed out through a free-list so concurrent block requests each own a
// unit for the duration of a run instead of serializing on one global
// mutex — the modelled equivalent of replicating the peripheral on the
// SoC bus. Per-unit occupancy is reported in Stats().Units and mirrored
// into obs as backend.accel.unit<i>.{blocks,cycles}.
// A watchdog abort surfaces as a *backend.Error wrapping *hw.ErrWatchdog,
// reachable with errors.As.
type AccelBackend struct {
	base
	units     []*hw.Accelerator
	heraUnits []*hw.HeraAccelerator
	free      chan int // indices of idle units

	unitBlocks []atomic.Int64
	unitCycles []atomic.Int64
	obsUnitBlk []*obs.Counter
	obsUnitCyc []*obs.Counter

	mu   sync.Mutex
	last hw.Result // most recent PASTA run, for tooling reports
}

// NewAccel opens the cycle-accurate accelerator backend.
func NewAccel(cfg Config) (*AccelBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
	}
	step, err := hw.ParseStepMode(cfg.AccelStep)
	if err != nil {
		return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
	}
	n := cfg.AccelUnits
	if n <= 0 {
		n = 1
	}
	b := &AccelBackend{
		free:       make(chan int, n),
		unitBlocks: make([]atomic.Int64, n),
		unitCycles: make([]atomic.Int64, n),
		obsUnitBlk: make([]*obs.Counter, n),
		obsUnitCyc: make([]*obs.Counter, n),
	}
	for i := 0; i < n; i++ {
		b.free <- i
		b.obsUnitBlk[i] = obs.Default().Counter(fmt.Sprintf("backend.accel.unit%d.blocks", i))
		b.obsUnitCyc[i] = obs.Default().Counter(fmt.Sprintf("backend.accel.unit%d.cycles", i))
	}
	switch r.scheme {
	case SchemePasta:
		b.units = make([]*hw.Accelerator, n)
		for i := range b.units {
			a, err := hw.NewAccelerator(r.pastaPar, pasta.Key(r.key))
			if err != nil {
				return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
			}
			a.WatchdogLimit = cfg.WatchdogLimit
			a.Step = step
			b.units[i] = a
		}
		b.init(NameAccel, SchemePasta, r.pastaPar.T, r.mod, n)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			idx := <-b.free
			a := b.units[idx]
			res, err := a.KeyStream(nonce, block)
			b.free <- idx
			if err != nil {
				return err // *hw.ErrWatchdog stays reachable via errors.As
			}
			b.recordUnit(idx, res.Stats.Cycles)
			b.mu.Lock()
			b.last = res
			b.mu.Unlock()
			copy(dst, res.KeyStream)
			return nil
		}
	case SchemeHera:
		b.heraUnits = make([]*hw.HeraAccelerator, n)
		for i := range b.heraUnits {
			a, err := hw.NewHeraAccelerator(r.heraPar, hera.Key(r.key))
			if err != nil {
				return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
			}
			b.heraUnits[i] = a
		}
		b.init(NameAccel, SchemeHera, hera.StateSize, r.mod, n)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			idx := <-b.free
			a := b.heraUnits[idx]
			res, err := a.KeyStream(nonce, block)
			b.free <- idx
			if err != nil {
				return err
			}
			b.recordUnit(idx, res.Stats.Cycles)
			copy(dst, res.KeyStream)
			return nil
		}
	}
	return b, nil
}

// recordUnit accounts one finished block against its farm unit and the
// aggregate cycle counter.
func (b *AccelBackend) recordUnit(idx int, cycles int64) {
	b.accelCycles.Add(cycles)
	b.unitBlocks[idx].Add(1)
	b.unitCycles[idx].Add(cycles)
	b.obsUnitBlk[idx].Add(1)
	b.obsUnitCyc[idx].Add(cycles)
}

// Stats extends the shared counters with the per-unit farm breakdown.
func (b *AccelBackend) Stats() Stats {
	s := b.base.Stats()
	s.Units = make([]UnitStats, len(b.unitBlocks))
	for i := range s.Units {
		s.Units[i] = UnitStats{
			Unit:   i,
			Blocks: b.unitBlocks[i].Load(),
			Cycles: b.unitCycles[i].Load(),
		}
	}
	return s
}

// Units returns the farm width.
func (b *AccelBackend) Units() int { return len(b.unitBlocks) }

// Accelerator exposes unit 0 of the PASTA cryptoprocessor farm (nil for
// HERA) so tools like cmd/hwsim can configure tracing, waveform capture,
// and fault injection. Those per-run features observe a single modelled
// peripheral; configure them only on a single-unit backend (the default),
// where every run is guaranteed to land on unit 0.
func (b *AccelBackend) Accelerator() *hw.Accelerator {
	if len(b.units) == 0 {
		return nil
	}
	return b.units[0]
}

// SetStepMode applies a time-stepping mode to every PASTA unit in the
// farm. Configure between operations, not concurrently with them.
func (b *AccelBackend) SetStepMode(m hw.StepMode) {
	for _, a := range b.units {
		a.Step = m
	}
}

// HeraAccelerator exposes unit 0 of the HERA datapath farm (nil for PASTA).
func (b *AccelBackend) HeraAccelerator() *hw.HeraAccelerator {
	if len(b.heraUnits) == 0 {
		return nil
	}
	return b.heraUnits[0]
}

// LastResult returns the full cycle-model result of the most recent
// PASTA keystream run (schedule trace, sampler statistics, unit busy
// counts) — detail the generic Stats() interface deliberately flattens,
// but which reporting tools like cmd/hwsim still want.
func (b *AccelBackend) LastResult() hw.Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}
