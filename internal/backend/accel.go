package backend

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/pasta"
)

// AccelUnit is one modelled cryptoprocessor instance in the farm: it
// runs a single keystream block and reports the modelled cycle count.
// Units may serialize internally; the farm hands each concurrent block
// request its own unit through a free-list.
type AccelUnit interface {
	KeyStream(dst ff.Vec, nonce, block uint64) (cycles int64, err error)
}

// AccelUnitFactory builds one farm unit for a resolved cipher instance.
// Factories receive the full Config so substrate knobs (WatchdogLimit,
// AccelStep) reach the modelled hardware.
type AccelUnitFactory func(inst cipher.Instance, key ff.Vec, cfg Config) (AccelUnit, error)

var (
	accelMu    sync.RWMutex
	accelUnits = map[string]AccelUnitFactory{}
)

// RegisterAccelUnit registers the accelerator-model factory for a
// cipher family. Families without a factory (or whose capability probe
// declines the instance) fail accel opens with ErrUnsupported.
func RegisterAccelUnit(cipherName string, f AccelUnitFactory) {
	accelMu.Lock()
	defer accelMu.Unlock()
	if _, dup := accelUnits[cipherName]; dup {
		panic(fmt.Sprintf("backend: RegisterAccelUnit called twice for %q", cipherName))
	}
	accelUnits[cipherName] = f
}

func lookupAccelUnit(cipherName string) (AccelUnitFactory, bool) {
	accelMu.RLock()
	defer accelMu.RUnlock()
	f, ok := accelUnits[cipherName]
	return f, ok
}

// AccelBackend runs every keystream block through the cycle-accurate
// cryptoprocessor model (internal/hw), accumulating the modelled cycle
// counts into Stats().AccelCycles. It is an N-way farm (Config.AccelUnits,
// default 1): N accelerator instances cloned from the same params/key,
// handed out through a free-list so concurrent block requests each own a
// unit for the duration of a run instead of serializing on one global
// mutex — the modelled equivalent of replicating the peripheral on the
// SoC bus. Per-unit occupancy is reported in Stats().Units and mirrored
// into obs as backend.accel.unit<i>.{blocks,cycles}.
// A watchdog abort surfaces as a *backend.Error wrapping *hw.ErrWatchdog,
// reachable with errors.As.
type AccelBackend struct {
	base
	units []AccelUnit
	free  chan int // indices of idle units

	unitBlocks []atomic.Int64
	unitCycles []atomic.Int64
	obsUnitBlk []*obs.Counter
	obsUnitCyc []*obs.Counter
}

// NewAccel opens the cycle-accurate accelerator backend for any cipher
// whose family probes accel support and has a registered unit factory.
func NewAccel(cfg Config) (*AccelBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
	}
	if err := cipher.Probe(r.inst, cipher.SubstrateAccel); err != nil {
		return nil, &Error{Backend: NameAccel, Op: "open",
			Err: fmt.Errorf("%w: %v", ErrUnsupported, err)}
	}
	factory, ok := lookupAccelUnit(r.scheme())
	if !ok {
		return nil, &Error{Backend: NameAccel, Op: "open",
			Err: fmt.Errorf("%w: no accelerator model for cipher %s", ErrUnsupported, r.scheme())}
	}
	n := cfg.AccelUnits
	if n <= 0 {
		n = 1
	}
	b := &AccelBackend{
		units:      make([]AccelUnit, n),
		free:       make(chan int, n),
		unitBlocks: make([]atomic.Int64, n),
		unitCycles: make([]atomic.Int64, n),
		obsUnitBlk: make([]*obs.Counter, n),
		obsUnitCyc: make([]*obs.Counter, n),
	}
	for i := 0; i < n; i++ {
		u, err := factory(r.inst, r.key, cfg)
		if err != nil {
			return nil, &Error{Backend: NameAccel, Op: "open", Err: err}
		}
		b.units[i] = u
		b.free <- i
		b.obsUnitBlk[i] = obs.Default().Counter(fmt.Sprintf("backend.accel.unit%d.blocks", i))
		b.obsUnitCyc[i] = obs.Default().Counter(fmt.Sprintf("backend.accel.unit%d.cycles", i))
	}
	b.init(NameAccel, r.scheme(), r.inst.Block, r.mod(), n)
	b.label = r.inst.Label
	b.kernel = func(dst ff.Vec, nonce, block uint64) error {
		idx := <-b.free
		cycles, err := b.units[idx].KeyStream(dst, nonce, block)
		b.free <- idx
		if err != nil {
			return err // *hw.ErrWatchdog stays reachable via errors.As
		}
		b.recordUnit(idx, cycles)
		return nil
	}
	return b, nil
}

// recordUnit accounts one finished block against its farm unit and the
// aggregate cycle counter.
func (b *AccelBackend) recordUnit(idx int, cycles int64) {
	b.accelCycles.Add(cycles)
	b.unitBlocks[idx].Add(1)
	b.unitCycles[idx].Add(cycles)
	b.obsUnitBlk[idx].Add(1)
	b.obsUnitCyc[idx].Add(cycles)
}

// Stats extends the shared counters with the per-unit farm breakdown.
func (b *AccelBackend) Stats() Stats {
	s := b.base.Stats()
	s.Units = make([]UnitStats, len(b.unitBlocks))
	for i := range s.Units {
		s.Units[i] = UnitStats{
			Unit:   i,
			Blocks: b.unitBlocks[i].Load(),
			Cycles: b.unitCycles[i].Load(),
		}
	}
	return s
}

// Units returns the farm width.
func (b *AccelBackend) Units() int { return len(b.unitBlocks) }

// Optional per-family unit capabilities, type-asserted by the tooling
// accessors below. The PASTA unit implements all of them; new families
// implement what their model supports.
type (
	pastaToolingUnit interface {
		Accelerator() *hw.Accelerator
		LastResult() hw.Result
	}
	stepModeUnit    interface{ SetStepMode(hw.StepMode) }
	heraToolingUnit interface {
		HeraAccelerator() *hw.HeraAccelerator
	}
)

// Accelerator exposes unit 0 of the PASTA cryptoprocessor farm (nil for
// other ciphers) so tools like cmd/hwsim can configure tracing, waveform
// capture, and fault injection. Those per-run features observe a single
// modelled peripheral; configure them only on a single-unit backend (the
// default), where every run is guaranteed to land on unit 0.
func (b *AccelBackend) Accelerator() *hw.Accelerator {
	if len(b.units) == 0 {
		return nil
	}
	if u, ok := b.units[0].(pastaToolingUnit); ok {
		return u.Accelerator()
	}
	return nil
}

// SetStepMode applies a time-stepping mode to every unit in the farm
// that models stepped time. Configure between operations, not
// concurrently with them.
func (b *AccelBackend) SetStepMode(m hw.StepMode) {
	for _, u := range b.units {
		if s, ok := u.(stepModeUnit); ok {
			s.SetStepMode(m)
		}
	}
}

// HeraAccelerator exposes unit 0 of the HERA datapath farm (nil for
// other ciphers).
func (b *AccelBackend) HeraAccelerator() *hw.HeraAccelerator {
	if len(b.units) == 0 {
		return nil
	}
	if u, ok := b.units[0].(heraToolingUnit); ok {
		return u.HeraAccelerator()
	}
	return nil
}

// LastResult returns the full cycle-model result of unit 0's most
// recent PASTA keystream run (schedule trace, sampler statistics, unit
// busy counts) — detail the generic Stats() interface deliberately
// flattens, but which reporting tools like cmd/hwsim still want. Like
// the other per-run tooling hooks it is meaningful on single-unit
// backends, where every run lands on unit 0.
func (b *AccelBackend) LastResult() hw.Result {
	if len(b.units) > 0 {
		if u, ok := b.units[0].(pastaToolingUnit); ok {
			return u.LastResult()
		}
	}
	return hw.Result{}
}

// pastaAccelUnit adapts the cycle-accurate PASTA cryptoprocessor model
// to the generic farm unit contract, keeping the per-run Result
// reachable for tooling.
type pastaAccelUnit struct {
	a    *hw.Accelerator
	mu   sync.Mutex
	last hw.Result
}

func (u *pastaAccelUnit) KeyStream(dst ff.Vec, nonce, block uint64) (int64, error) {
	res, err := u.a.KeyStream(nonce, block)
	if err != nil {
		return 0, err
	}
	u.mu.Lock()
	u.last = res
	u.mu.Unlock()
	copy(dst, res.KeyStream)
	return res.Stats.Cycles, nil
}

func (u *pastaAccelUnit) Accelerator() *hw.Accelerator { return u.a }
func (u *pastaAccelUnit) SetStepMode(m hw.StepMode)    { u.a.Step = m }
func (u *pastaAccelUnit) LastResult() hw.Result {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.last
}

// heraAccelUnit adapts the HERA datapath model.
type heraAccelUnit struct {
	a *hw.HeraAccelerator
}

func (u *heraAccelUnit) KeyStream(dst ff.Vec, nonce, block uint64) (int64, error) {
	res, err := u.a.KeyStream(nonce, block)
	if err != nil {
		return 0, err
	}
	copy(dst, res.KeyStream)
	return res.Stats.Cycles, nil
}

func (u *heraAccelUnit) HeraAccelerator() *hw.HeraAccelerator { return u.a }

// The built-in families' accelerator models. Registration is data, not
// dispatch: the open path consults only the capability probe and this
// registry, never a cipher name switch.
func init() {
	RegisterAccelUnit(pasta.CipherName, func(inst cipher.Instance, key ff.Vec, cfg Config) (AccelUnit, error) {
		par, ok := inst.Params.(pasta.Params)
		if !ok {
			return nil, fmt.Errorf("accel: instance params are %T, want pasta.Params", inst.Params)
		}
		step, err := hw.ParseStepMode(cfg.AccelStep)
		if err != nil {
			return nil, err
		}
		a, err := hw.NewAccelerator(par, pasta.Key(key))
		if err != nil {
			return nil, err
		}
		a.WatchdogLimit = cfg.WatchdogLimit
		a.Step = step
		return &pastaAccelUnit{a: a}, nil
	})
	RegisterAccelUnit(hera.CipherName, func(inst cipher.Instance, key ff.Vec, cfg Config) (AccelUnit, error) {
		par, ok := inst.Params.(hera.Params)
		if !ok {
			return nil, fmt.Errorf("accel: instance params are %T, want hera.Params", inst.Params)
		}
		a, err := hw.NewHeraAccelerator(par, hera.Key(key))
		if err != nil {
			return nil, err
		}
		return &heraAccelUnit{a: a}, nil
	})
}
