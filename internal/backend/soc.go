package backend

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/pasta"
	"repro/internal/soc"
)

// SoCRunner drives one co-simulated batch encryption on the modelled
// SoC for a specific cipher family: assemble a bare-metal driver, load
// it into the simulated RAM, and execute it against the memory-mapped
// peripheral. Runners may be stateful; the backend serializes calls.
type SoCRunner interface {
	EncryptBlocksFrom(nonce, firstCtr uint64, msg ff.Vec) (ff.Vec, soc.RunStats, error)
}

// SoCRunnerFactory builds the co-sim runner for a resolved instance.
type SoCRunnerFactory func(inst cipher.Instance, key ff.Vec) (SoCRunner, error)

var (
	socMu      sync.RWMutex
	socRunners = map[string]SoCRunnerFactory{}
)

// RegisterSoCRunner registers a cipher family's SoC driver. Families
// without one (or whose capability probe declines the instance) fail
// SoC opens with ErrUnsupported.
func RegisterSoCRunner(cipherName string, f SoCRunnerFactory) {
	socMu.Lock()
	defer socMu.Unlock()
	if _, dup := socRunners[cipherName]; dup {
		panic(fmt.Sprintf("backend: RegisterSoCRunner called twice for %q", cipherName))
	}
	socRunners[cipherName] = f
}

func lookupSoCRunner(cipherName string) (SoCRunnerFactory, bool) {
	socMu.RLock()
	defer socMu.RUnlock()
	f, ok := socRunners[cipherName]
	return f, ok
}

// SoCBackend runs the keystream on the full RISC-V SoC co-simulation.
// The keystream for a block is extracted by encrypting an all-zero block
// (ct = 0 + KS mod p), using the driver's first-counter support to
// address arbitrary block indices.
//
// Restrictions of the modelled silicon come from the cipher family's
// capability probe and the runner registry, and surface as
// ErrUnsupported at Open: the 32-bit peripheral bus cannot carry ω > 32
// moduli, and only PASTA has a co-simulated peripheral today.
type SoCBackend struct {
	base
	mu     sync.Mutex
	runner SoCRunner
}

// NewSoC opens the co-simulated SoC backend.
func NewSoC(cfg Config) (*SoCBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameSoC, Op: "open", Err: err}
	}
	if err := cipher.Probe(r.inst, cipher.SubstrateSoC); err != nil {
		return nil, &Error{Backend: NameSoC, Op: "open",
			Err: fmt.Errorf("%w: %v", ErrUnsupported, err)}
	}
	factory, ok := lookupSoCRunner(r.scheme())
	if !ok {
		return nil, &Error{Backend: NameSoC, Op: "open",
			Err: fmt.Errorf("%w: the SoC has no %s peripheral", ErrUnsupported, r.scheme())}
	}
	runner, err := factory(r.inst, r.key)
	if err != nil {
		return nil, &Error{Backend: NameSoC, Op: "open", Err: err}
	}
	b := &SoCBackend{runner: runner}
	b.init(NameSoC, r.scheme(), r.inst.Block, r.mod(), 1)
	b.label = r.inst.Label
	b.kernel = func(dst ff.Vec, nonce, block uint64) error {
		ct, _, err := b.run(nonce, block, ff.NewVec(b.t))
		if err != nil {
			return err
		}
		copy(dst, ct)
		return nil
	}
	return b, nil
}

// run executes one co-simulation encrypting msg from firstCtr and books
// its cycle counts.
func (b *SoCBackend) run(nonce, firstCtr uint64, msg ff.Vec) (ff.Vec, soc.RunStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ct, stats, err := b.runner.EncryptBlocksFrom(nonce, firstCtr, msg)
	if err != nil {
		return nil, stats, err
	}
	b.coreCycles.Add(stats.CoreCycles)
	b.accelCycles.Add(stats.AccelCycles)
	return ct, stats, nil
}

// KeyStreamBlocks overrides the per-block fan-out with a single
// co-simulation over count·t zeros — one driver program, one key load,
// block counters firstCtr…firstCtr+count-1, exactly how a real firmware
// image would batch the request. Cancellation is checked at entry; the
// co-sim itself is one atomic run.
func (b *SoCBackend) KeyStreamBlocks(ctx context.Context, nonce, first uint64, count int) (ff.Vec, error) {
	const op = "keystream-blocks"
	if err := b.pre(ctx, op); err != nil {
		return nil, err
	}
	if count <= 0 {
		return ff.NewVec(0), nil
	}
	ks, _, err := b.run(nonce, first, ff.NewVec(count*b.t))
	if err != nil {
		return nil, &Error{Backend: b.name, Op: op, Err: err}
	}
	b.account(count, count*b.t)
	return ks, nil
}

// KeyStreamBlocksInto overrides the generic per-block path with the same
// single co-simulation as KeyStreamBlocks, copying into dst. The co-sim
// itself allocates (it builds a firmware image per run); the override
// exists so the serving tier's Into dispatch keeps the one-run-per-batch
// semantics of the modelled peripheral.
func (b *SoCBackend) KeyStreamBlocksInto(ctx context.Context, dst ff.Vec, nonce, first uint64, count int) error {
	const op = "keystream-blocks"
	if count <= 0 {
		return b.pre(ctx, op)
	}
	if len(dst) != count*b.t {
		return &Error{Backend: b.name, Op: op,
			Err: fmt.Errorf("dst has %d elements, want %d", len(dst), count*b.t)}
	}
	ks, err := b.KeyStreamBlocks(ctx, nonce, first, count)
	if err != nil {
		return err
	}
	copy(dst, ks)
	return nil
}

// EncryptInto overrides the generic path like Encrypt, copying into dst.
func (b *SoCBackend) EncryptInto(ctx context.Context, dst ff.Vec, nonce uint64, msg ff.Vec) error {
	if len(dst) != len(msg) {
		return &Error{Backend: b.name, Op: "encrypt",
			Err: fmt.Errorf("dst has %d elements, want %d", len(dst), len(msg))}
	}
	ct, err := b.Encrypt(ctx, nonce, msg)
	if err != nil {
		return err
	}
	copy(dst, ct)
	return nil
}

// Encrypt overrides the generic path with a single whole-message co-sim
// run (the SoC driver handles partial last blocks natively).
func (b *SoCBackend) Encrypt(ctx context.Context, nonce uint64, msg ff.Vec) (ff.Vec, error) {
	const op = "encrypt"
	if err := b.pre(ctx, op); err != nil {
		return nil, err
	}
	if len(msg) == 0 {
		return ff.NewVec(0), nil
	}
	for i, v := range msg {
		if v >= b.mod.P() {
			return nil, &Error{Backend: b.name, Op: op,
				Err: fmt.Errorf("element %d = %d out of range for %v", i, v, b.mod)}
		}
	}
	ct, stats, err := b.run(nonce, 0, msg)
	if err != nil {
		return nil, &Error{Backend: b.name, Op: op, Err: err}
	}
	b.account(int(stats.Blocks), len(msg))
	return ct, nil
}

// pastaSoCRunner drives the bare-metal PASTA driver.
type pastaSoCRunner struct {
	par pasta.Params
	key pasta.Key
}

func (r pastaSoCRunner) EncryptBlocksFrom(nonce, firstCtr uint64, msg ff.Vec) (ff.Vec, soc.RunStats, error) {
	return soc.EncryptBlocksFrom(r.par, r.key, nonce, firstCtr, msg)
}

func init() {
	RegisterSoCRunner(pasta.CipherName, func(inst cipher.Instance, key ff.Vec) (SoCRunner, error) {
		par, ok := inst.Params.(pasta.Params)
		if !ok {
			return nil, fmt.Errorf("soc: instance params are %T, want pasta.Params", inst.Params)
		}
		return pastaSoCRunner{par: par, key: pasta.Key(key)}, nil
	})
}
