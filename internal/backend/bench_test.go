package backend

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// BenchmarkBackendDispatch quantifies what the backend abstraction costs
// on the hot path: the same PASTA-4 keystream block generated through a
// direct *pasta.Cipher call versus through the BlockCipher interface
// (which adds the closed/context gate, the interface dispatch, and the
// stats accounting). The contract is <2% overhead — the software path
// must stay effectively free to route through the backend layer.
func BenchmarkBackendDispatch(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "bench")

	b.Run("direct", func(b *testing.B) {
		c, err := pasta.NewCipher(par, key)
		if err != nil {
			b.Fatal(err)
		}
		dst := ff.NewVec(par.T)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.KeyStreamInto(dst, 1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("backend", func(b *testing.B) {
		bc, err := Open(NameSoftware, Config{CipherParams: cipher.Params{Variant: 4}, Key: ff.Vec(key)})
		if err != nil {
			b.Fatal(err)
		}
		defer bc.Close()
		ctx := context.Background()
		dst := ff.NewVec(bc.BlockSize())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bc.KeyStreamInto(ctx, dst, 1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAccelFarm is the farm-scaling experiment: an 8-block bulk
// keystream request against N modelled accelerator units. Two numbers
// matter per row. ns/op is host wall time — it only improves with farm
// width when the host has cores to simulate units concurrently (a
// single-core CI runner shows flat-to-worse wall time; the simulation
// itself is the bottleneck there). modeled-cycles/batch is the modelled
// hardware's critical path for the batch — max over units of the cycles
// each spent — and must scale ~1/N regardless of host shape: that is
// the throughput claim a replicated peripheral actually makes, and the
// committed BENCH_pasta.json rows pin it.
func BenchmarkAccelFarm(b *testing.B) {
	const batch = 8
	for _, units := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("units=%d", units), func(b *testing.B) {
			farm, err := Open(NameAccel, Config{
				CipherParams: cipher.Params{Variant: 4}, KeySeed: "farm-bench", AccelUnits: units,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer farm.Close()
			ic := farm.(IntoCipher)
			ctx := context.Background()
			dst := ff.NewVec(batch * farm.BlockSize())
			b.SetBytes(int64(len(dst) * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ic.KeyStreamBlocksInto(ctx, dst, 1, uint64(i*batch), batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := farm.Stats()
			var critical int64
			for _, u := range st.Units {
				if u.Cycles > critical {
					critical = u.Cycles
				}
			}
			b.ReportMetric(float64(critical)/float64(b.N), "modeled-cycles/batch")
		})
	}
}
