package backend

import (
	"context"
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// BenchmarkBackendDispatch quantifies what the backend abstraction costs
// on the hot path: the same PASTA-4 keystream block generated through a
// direct *pasta.Cipher call versus through the BlockCipher interface
// (which adds the closed/context gate, the interface dispatch, and the
// stats accounting). The contract is <2% overhead — the software path
// must stay effectively free to route through the backend layer.
func BenchmarkBackendDispatch(b *testing.B) {
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	key := pasta.KeyFromSeed(par, "bench")

	b.Run("direct", func(b *testing.B) {
		c, err := pasta.NewCipher(par, key)
		if err != nil {
			b.Fatal(err)
		}
		dst := ff.NewVec(par.T)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.KeyStreamInto(dst, 1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("backend", func(b *testing.B) {
		bc, err := Open(NameSoftware, Config{Variant: pasta.Pasta4, Key: ff.Vec(key)})
		if err != nil {
			b.Fatal(err)
		}
		defer bc.Close()
		ctx := context.Background()
		dst := ff.NewVec(bc.BlockSize())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bc.KeyStreamInto(ctx, dst, 1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
