package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry names of the built-in backends.
const (
	NameSoftware = "software"
	NameAccel    = "accel"
	NameSoC      = "soc"
)

// Factory opens a backend instance from a configuration.
type Factory func(Config) (BlockCipher, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{
		NameSoftware: func(cfg Config) (BlockCipher, error) { return NewSoftware(cfg) },
		NameAccel:    func(cfg Config) (BlockCipher, error) { return NewAccel(cfg) },
		NameSoC:      func(cfg Config) (BlockCipher, error) { return NewSoC(cfg) },
	}
)

// Register adds (or replaces) a named backend factory. The built-ins are
// pre-registered; tests and future substrates (e.g. a real FPGA bridge)
// hook in here.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	factories[name] = f
}

// Open instantiates the named backend. An unknown name fails with a
// *Error wrapping ErrUnknownBackend that lists the registered names.
func Open(name string, cfg Config) (BlockCipher, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, &Error{Backend: name, Op: "open",
			Err: fmt.Errorf("%w: %q (have %s)", ErrUnknownBackend, name, strings.Join(Names(), ", "))}
	}
	return f(cfg)
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
