package backend

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// Mid-stream cancellation: a context cancelled while KeyStreamBlocks is
// in flight must make the call return promptly with a typed error, and
// no worker goroutine may outlive the call (checked under -race by the
// regular test run).

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestCancelMidStreamSoftware(t *testing.T) {
	b, err := Open(NameSoftware, Config{CipherParams: cipher.Params{Variant: 3}, KeySeed: "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// Enough PASTA-3 blocks to keep every worker busy well past the
		// cancellation point (~1 ms/block in software).
		_, err := b.KeyStreamBlocks(ctx, 1, 0, 100_000)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("KeyStreamBlocks did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the wrapper, got %v", err)
	}
	var be *Error
	if !errors.As(err, &be) || be.Backend != NameSoftware {
		t.Fatalf("cancellation not wrapped in *backend.Error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	waitGoroutines(t, baseline)
}

func TestCancelMidStreamAccel(t *testing.T) {
	b, err := Open(NameAccel, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Thousands of cycle-accurate runs; cancellation lands between
		// accelerator blocks.
		_, err := b.KeyStreamBlocks(ctx, 1, 0, 10_000)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("accelerator KeyStreamBlocks did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, baseline)
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	b, err := Open(NameSoftware, Config{CipherParams: cipher.Params{Variant: 3}, KeySeed: "deadline"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = b.KeyStreamBlocks(ctx, 1, 0, 100_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestCancelLeavesBackendUsable: a cancelled call must not poison the
// instance — the next call with a live context succeeds.
func TestCancelLeavesBackendUsable(t *testing.T) {
	b, err := Open(NameSoftware, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.KeyStreamBlocks(ctx, 0, 0, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	dst := ff.NewVec(b.BlockSize())
	if err := b.KeyStreamInto(context.Background(), dst, 1, 2); err != nil {
		t.Fatalf("backend unusable after a cancelled call: %v", err)
	}
	if dst[0] != goldenP4[0] {
		t.Fatal("keystream wrong after a cancelled call")
	}
}
