package backend

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// TestAccelFarmKeystream: an N-way farm must produce exactly the
// single-unit (and software-reference) keystream — replicating the
// peripheral changes scheduling, never data.
func TestAccelFarmKeystream(t *testing.T) {
	ctx := context.Background()
	cfg := Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "farm"}

	sw, err := Open(NameSoftware, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	farmCfg := cfg
	farmCfg.AccelUnits = 4
	farm, err := Open(NameAccel, farmCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	const blocks = 12
	want, err := sw.KeyStreamBlocks(ctx, 7, 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := farm.KeyStreamBlocks(ctx, 7, 0, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("farm keystream differs from software reference")
	}

	ab := farm.(*AccelBackend)
	if ab.Units() != 4 {
		t.Fatalf("Units() = %d, want 4", ab.Units())
	}
	st := ab.Stats()
	if len(st.Units) != 4 {
		t.Fatalf("Stats().Units has %d entries, want 4", len(st.Units))
	}
	var unitBlocks, busyUnits int64
	for i, u := range st.Units {
		if u.Unit != i {
			t.Errorf("Units[%d].Unit = %d", i, u.Unit)
		}
		if (u.Blocks == 0) != (u.Cycles == 0) {
			t.Errorf("unit %d: blocks=%d but cycles=%d", i, u.Blocks, u.Cycles)
		}
		unitBlocks += u.Blocks
		if u.Blocks > 0 {
			busyUnits++
		}
	}
	if unitBlocks != st.Blocks || st.Blocks != blocks {
		t.Fatalf("per-unit blocks sum to %d, backend counted %d, want %d",
			unitBlocks, st.Blocks, blocks)
	}
	// base.init(workers = units) fans a bulk request across the farm, so
	// a 12-block request on 4 units must not serialize onto one unit.
	if busyUnits < 2 {
		t.Errorf("bulk request used %d of 4 farm units; expected the fan-out to spread it", busyUnits)
	}
}

// TestAccelFarmConcurrentSessions hammers one farm from many goroutines
// (the serving-tier shape: independent single-block requests) and checks
// both correctness and conservation of the per-unit accounting.
func TestAccelFarmConcurrentSessions(t *testing.T) {
	ctx := context.Background()
	cfg := Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "farm-concurrent", AccelUnits: 3}
	farm, err := Open(NameAccel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	ref, err := Open(NameSoftware, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "farm-concurrent"})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const goroutines = 8
	const perG = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := ff.NewVec(farm.BlockSize())
			want := ff.NewVec(farm.BlockSize())
			for i := 0; i < perG; i++ {
				nonce, block := uint64(g), uint64(i)
				if err := farm.KeyStreamInto(ctx, dst, nonce, block); err != nil {
					errs <- err
					return
				}
				if err := ref.KeyStreamInto(ctx, want, nonce, block); err != nil {
					errs <- err
					return
				}
				if !dst.Equal(want) {
					t.Errorf("goroutine %d block %d: keystream mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := farm.Stats()
	var sum int64
	for _, u := range st.Units {
		sum += u.Blocks
	}
	if want := int64(goroutines * perG); st.Blocks != want || sum != want {
		t.Fatalf("accounting: backend %d blocks, units sum %d, want %d", st.Blocks, sum, want)
	}
	if st.AccelCycles == 0 {
		t.Fatal("AccelCycles not accumulated")
	}
}

// TestAccelStepConfig pins the Config.AccelStep plumbing: bad spellings
// are rejected at open, and forcing the per-cycle oracle still matches
// the (default) event-driven keystream.
func TestAccelStepConfig(t *testing.T) {
	if _, err := Open(NameAccel, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "k", AccelStep: "warp"}); err == nil {
		t.Fatal("AccelStep \"warp\" accepted")
	}
	ctx := context.Background()
	var out [2]ff.Vec
	for i, step := range []string{"event", "cycle"} {
		b, err := Open(NameAccel, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "step", AccelStep: step})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ff.NewVec(b.BlockSize())
		if err := b.KeyStreamInto(ctx, out[i], 3, 5); err != nil {
			t.Fatal(err)
		}
		b.Close()
	}
	if !out[0].Equal(out[1]) {
		t.Fatal("event and cycle stepping disagree through the backend layer")
	}
}
