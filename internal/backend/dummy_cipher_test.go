package backend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// This file pins the registry's extensibility acceptance criterion:
// registering a test-local cipher family — with no edits anywhere
// outside this file — is enough for it to (a) open on the software
// backend and join the conformance/differential matrix, (b) be refused
// by the hardware substrates with ErrUnsupported, and (c) appear in
// the dynamic cipher listing of unknown-cipher errors. The init below
// runs before every test in this package, so the matrix suites in
// conformance_test.go and differential_test.go exercise "dummy"
// automatically.

const dummyBlock = 8

type dummySpec struct{}

func (dummySpec) Name() string { return "dummy" }

func (s dummySpec) Resolve(p cipher.Params) (cipher.Instance, error) {
	mod, err := p.Modulus()
	if err != nil {
		return cipher.Instance{}, err
	}
	return cipher.Instance{
		Spec:   s,
		Block:  dummyBlock,
		KeyLen: dummyBlock,
		Mod:    mod,
		Label:  fmt.Sprintf("DUMMY(%v)", mod),
	}, nil
}

func (s dummySpec) NewRandomKey(inst cipher.Instance) (ff.Vec, error) {
	return cipher.RandomKey(s.Name(), inst.Mod, inst.KeyLen)
}

func (s dummySpec) KeyFromSeed(inst cipher.Instance, seed string) ff.Vec {
	return cipher.SeededKey(s.Name(), inst.Mod, inst.KeyLen, seed)
}

func (s dummySpec) ValidateKey(inst cipher.Instance, key ff.Vec) error {
	return cipher.CheckKey(s.Name(), inst.Mod, inst.KeyLen, key)
}

func (s dummySpec) NewEngine(inst cipher.Instance, key ff.Vec) (cipher.BlockEngine, error) {
	return &dummyEngine{mod: inst.Mod, key: key.Clone()}, nil
}

// dummyEngine is a deliberately trivial keystream: a keyed affine mix
// of (nonce, block, index). Not a cipher — just deterministic,
// concurrent-safe, and allocation-free, which is all the BlockEngine
// contract demands of it.
type dummyEngine struct {
	mod ff.Modulus
	key ff.Vec
}

func (e *dummyEngine) KeyStreamInto(dst ff.Vec, nonce, block uint64) error {
	if len(dst) != dummyBlock {
		return fmt.Errorf("dummy: dst has %d elements, want %d", len(dst), dummyBlock)
	}
	m := e.mod
	p := m.P()
	for i := range dst {
		v := m.Add(e.key[i], (nonce*2654435761+block*40503+uint64(i)*97+1)%p)
		dst[i] = v
	}
	return nil
}

func init() {
	cipher.Register(dummySpec{})
}

func TestDummyCipherSoftwareOnly(t *testing.T) {
	// Software opens it and streams deterministically.
	b, err := Open(NameSoftware, Config{Cipher: "dummy", KeySeed: "x"})
	if err != nil {
		t.Fatalf("software refused the registered dummy cipher: %v", err)
	}
	defer b.Close()
	if b.Scheme() != "dummy" || b.BlockSize() != dummyBlock {
		t.Fatalf("identity wrong: scheme %q block %d", b.Scheme(), b.BlockSize())
	}
	a := ff.NewVec(dummyBlock)
	c := ff.NewVec(dummyBlock)
	ctx := context.Background()
	if err := b.KeyStreamInto(ctx, a, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.KeyStreamInto(ctx, c, 3, 4); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(c) {
		t.Fatal("dummy keystream not deterministic")
	}

	// The hardware substrates refuse it via the capability-probe
	// default (software-only), with no dummy-specific code anywhere.
	for _, bn := range []string{NameAccel, NameSoC} {
		_, err := Open(bn, Config{Cipher: "dummy", KeySeed: "x"})
		if !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%s accepted the software-only dummy cipher: %v", bn, err)
		}
	}

	// The dynamic unknown-cipher listing includes it.
	_, err = Open(NameSoftware, Config{Cipher: "no-such", KeySeed: "x"})
	if err == nil || !strings.Contains(err.Error(), "dummy") {
		t.Fatalf("unknown-cipher error does not list the dummy cipher: %v", err)
	}
}
