package backend

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

// The conformance suite pins the backend contract for every registered
// substrate: golden keystream vectors, bulk/into agreement, encrypt/
// decrypt roundtrips (including partial last blocks), typed errors for
// bad input, cancellation, and use-after-Close. Every backend added to
// the registry must pass it unchanged.

// goldenP4 pins KS(seed "golden", nonce 1, block 2)[:8] for PASTA-4 over
// P17 — the same normative vector as internal/pasta's golden test, now
// required from all three substrates.
var goldenP4 = ff.Vec{30202, 59975, 22068, 45713, 913, 23296, 29710, 30707}

// conformanceBackends opens every registered backend for PASTA-4/ω=17.
// The caller must Close them.
func conformanceBackends(t *testing.T) map[string]BlockCipher {
	t.Helper()
	cfg := Config{Variant: pasta.Pasta4, KeySeed: "golden"}
	out := make(map[string]BlockCipher)
	for _, name := range Names() {
		b, err := Open(name, cfg)
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		out[name] = b
		t.Cleanup(func() { b.Close() })
	}
	return out
}

func TestConformanceGoldenKeystream(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			dst := ff.NewVec(b.BlockSize())
			if err := b.KeyStreamInto(context.Background(), dst, 1, 2); err != nil {
				t.Fatal(err)
			}
			for i := range goldenP4 {
				if dst[i] != goldenP4[i] {
					t.Fatalf("golden keystream drifted at %d: got %v, want %v",
						i, dst[:8], goldenP4)
				}
			}
		})
	}
}

func TestConformanceBulkMatchesSingle(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			const first, count = 3, 3
			bulk, err := b.KeyStreamBlocks(ctx, 9, first, count)
			if err != nil {
				t.Fatal(err)
			}
			if len(bulk) != count*b.BlockSize() {
				t.Fatalf("bulk keystream has %d elements, want %d", len(bulk), count*b.BlockSize())
			}
			single := ff.NewVec(b.BlockSize())
			for i := 0; i < count; i++ {
				if err := b.KeyStreamInto(ctx, single, 9, first+uint64(i)); err != nil {
					t.Fatal(err)
				}
				if !single.Equal(bulk[i*b.BlockSize() : (i+1)*b.BlockSize()]) {
					t.Fatalf("bulk block %d disagrees with KeyStreamInto", i)
				}
			}
		})
	}
}

func TestConformanceRoundtrip(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			// A message with a partial last block.
			msg := ff.NewVec(b.BlockSize() + b.BlockSize()/2)
			for i := range msg {
				msg[i] = uint64(i*7+1) % b.Modulus().P()
			}
			ct, err := b.Encrypt(ctx, 4, msg)
			if err != nil {
				t.Fatal(err)
			}
			if ct.Equal(msg) {
				t.Fatal("ciphertext equals plaintext")
			}
			pt, err := b.Decrypt(ctx, 4, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !pt.Equal(msg) {
				t.Fatalf("roundtrip failed: got %v, want %v", pt[:4], msg[:4])
			}
		})
	}
}

// TestConformanceIntoCipher requires every registered substrate to
// implement the allocation-free IntoCipher extension and to produce
// output bit-identical to the allocating methods, including dst-length
// validation.
func TestConformanceIntoCipher(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			ic, ok := b.(IntoCipher)
			if !ok {
				t.Fatalf("backend %q does not implement IntoCipher", name)
			}
			const first, count = 2, 3
			want, err := b.KeyStreamBlocks(ctx, 11, first, count)
			if err != nil {
				t.Fatal(err)
			}
			dst := ff.NewVec(count * b.BlockSize())
			if err := ic.KeyStreamBlocksInto(ctx, dst, 11, first, count); err != nil {
				t.Fatal(err)
			}
			if !dst.Equal(want) {
				t.Fatal("KeyStreamBlocksInto disagrees with KeyStreamBlocks")
			}
			if err := ic.KeyStreamBlocksInto(ctx, dst[:1], 11, first, count); err == nil {
				t.Fatal("KeyStreamBlocksInto accepted a short dst")
			}

			msg := ff.NewVec(b.BlockSize() + b.BlockSize()/2)
			for i := range msg {
				msg[i] = uint64(i*5+3) % b.Modulus().P()
			}
			wantCT, err := b.Encrypt(ctx, 6, msg)
			if err != nil {
				t.Fatal(err)
			}
			ct := ff.NewVec(len(msg))
			if err := ic.EncryptInto(ctx, ct, 6, msg); err != nil {
				t.Fatal(err)
			}
			if !ct.Equal(wantCT) {
				t.Fatal("EncryptInto disagrees with Encrypt")
			}
			if err := ic.EncryptInto(ctx, ct[:1], 6, msg); err == nil {
				t.Fatal("EncryptInto accepted a short dst")
			}
		})
	}
}

func TestConformanceTypedErrors(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()

			// Wrong destination length.
			err := b.KeyStreamInto(ctx, ff.NewVec(b.BlockSize()+1), 0, 0)
			var be *Error
			if !errors.As(err, &be) || be.Backend != name {
				t.Fatalf("bad-length error not a *backend.Error for %s: %v", name, err)
			}

			// Out-of-range plaintext element.
			bad := ff.NewVec(2)
			bad[1] = b.Modulus().P()
			if _, err := b.Encrypt(ctx, 0, bad); err == nil {
				t.Fatal("Encrypt accepted an out-of-range element")
			}

			// Pre-cancelled context: typed error satisfying context.Canceled.
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			err = b.KeyStreamInto(cctx, ff.NewVec(b.BlockSize()), 0, 0)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled call did not surface context.Canceled: %v", err)
			}
			if !errors.As(err, &be) {
				t.Fatalf("cancelled call not wrapped in *backend.Error: %v", err)
			}
		})
	}
}

func TestConformanceStatsAccumulate(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			before := b.Stats()
			if before.Backend != name || before.Scheme != SchemePasta {
				t.Fatalf("stats identity wrong: %+v", before)
			}
			if _, err := b.KeyStreamBlocks(ctx, 0, 0, 2); err != nil {
				t.Fatal(err)
			}
			after := b.Stats()
			if after.Blocks-before.Blocks != 2 {
				t.Fatalf("blocks counter moved by %d, want 2", after.Blocks-before.Blocks)
			}
			if after.Elements-before.Elements != int64(2*b.BlockSize()) {
				t.Fatalf("elements counter moved by %d, want %d",
					after.Elements-before.Elements, 2*b.BlockSize())
			}
			if name != NameSoftware && after.AccelCycles <= before.AccelCycles {
				t.Fatalf("%s did not account accelerator cycles", name)
			}
			if name == NameSoC && after.CoreCycles <= before.CoreCycles {
				t.Fatal("soc did not account core cycles")
			}
		})
	}
}

func TestConformanceClose(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			err := b.KeyStreamInto(context.Background(), ff.NewVec(b.BlockSize()), 0, 0)
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("use after Close not ErrClosed: %v", err)
			}
			if _, err := b.Encrypt(context.Background(), 0, ff.NewVec(1)); !errors.Is(err, ErrClosed) {
				t.Fatalf("Encrypt after Close not ErrClosed: %v", err)
			}
		})
	}
}

func TestOpenUnknownBackend(t *testing.T) {
	_, err := Open("fpga-bridge", Config{})
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("want ErrUnknownBackend, got %v", err)
	}
}

func TestSoCUnsupportedConfigs(t *testing.T) {
	if _, err := Open(NameSoC, Config{Scheme: SchemeHera, KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("soc accepted hera: %v", err)
	}
	if _, err := Open(NameSoC, Config{Variant: pasta.Pasta4, Width: 54, KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("soc accepted a 54-bit modulus on the 32-bit bus: %v", err)
	}
}

// TestHeraConformance runs the HERA-capable backends through the same
// contract: software and accel must agree bit for bit.
func TestHeraConformance(t *testing.T) {
	cfg := Config{Scheme: SchemeHera, KeySeed: "golden"}
	ctx := context.Background()
	sw, err := Open(NameSoftware, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	ac, err := Open(NameAccel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if sw.Scheme() != SchemeHera || ac.Scheme() != SchemeHera {
		t.Fatal("scheme not propagated")
	}
	want, err := sw.KeyStreamBlocks(ctx, 5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.KeyStreamBlocks(ctx, 5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("HERA accel keystream diverges from software:\n%v\n%v", got[:8], want[:8])
	}
	msg := ff.NewVec(20)
	for i := range msg {
		msg[i] = uint64(i + 1)
	}
	ct, err := ac.Encrypt(ctx, 5, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := sw.Decrypt(ctx, 5, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(msg) {
		t.Fatal("cross-substrate HERA roundtrip failed")
	}
}

// TestWatchdogSurfacesTyped proves the accelerator watchdog abort stays
// reachable as *hw.ErrWatchdog through the backend's error wrapper.
func TestWatchdogSurfacesTyped(t *testing.T) {
	b, err := Open(NameAccel, Config{Variant: pasta.Pasta4, KeySeed: "wd", WatchdogLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	err = b.KeyStreamInto(context.Background(), ff.NewVec(b.BlockSize()), 0, 0)
	if err == nil {
		t.Fatal("a 10-cycle watchdog budget did not fire")
	}
	var wd *hw.ErrWatchdog
	if !errors.As(err, &wd) {
		t.Fatalf("watchdog abort not reachable via errors.As: %v", err)
	}
	if wd.Limit != 10 {
		t.Fatalf("watchdog limit = %d, want 10", wd.Limit)
	}
	var be *Error
	if !errors.As(err, &be) || be.Backend != NameAccel {
		t.Fatalf("watchdog abort not wrapped in *backend.Error: %v", err)
	}
}

// TestSoftwareZeroAlloc pins the steady-state allocation behaviour of
// the software PASTA path through the interface: zero allocs per block.
func TestSoftwareZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	b, err := Open(NameSoftware, Config{Variant: pasta.Pasta4, KeySeed: "alloc"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	dst := ff.NewVec(b.BlockSize())
	// Warm the cipher's workspace pool.
	if err := b.KeyStreamInto(ctx, dst, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := b.KeyStreamInto(ctx, dst, 0, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("software KeyStreamInto allocates %.1f objects per block, want 0", allocs)
	}
}
