package backend

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/pasta"
)

// The conformance suite pins the backend contract over the full
// cipher × backend matrix: golden keystream vectors, bulk/into
// agreement, encrypt/decrypt roundtrips (including partial last
// blocks), typed errors for bad input, cancellation, and use-after-
// Close. Every cipher added to the cipher registry and every backend
// added to the backend registry joins the matrix automatically;
// unsupported pairs skip with the substrate's stated reason.

// goldenP4 pins KS(seed "golden", nonce 1, block 2)[:8] for PASTA-4 over
// P17 — the same normative vector as internal/pasta's golden test, now
// required from all three substrates.
var goldenP4 = ff.Vec{30202, 59975, 22068, 45713, 913, 23296, 29710, 30707}

// goldenFirst8 pins KS(seed "golden", nonce 1, block 2)[:8] per cipher
// under matrixConfig, so the whole matrix is anchored against silent
// keystream drift, not just PASTA. Ciphers without an entry (e.g. the
// test-local dummy) skip the golden check but still run the contract.
var goldenFirst8 = map[string]ff.Vec{
	"pasta": goldenP4,
	"hera":  {14791, 34797, 54512, 3871, 26126, 47996, 21789, 56855},
	"masta": {54934, 37055, 20426, 13921, 45259, 41418, 8594, 55686},
}

// matrixConfig returns the conformance Config for one cipher: seeded
// key, family defaults — except PASTA, which runs the reduced PASTA-4
// instance so the cycle-accurate substrates stay fast.
func matrixConfig(cipherName string) Config {
	cfg := Config{Cipher: cipherName, KeySeed: "golden"}
	if cipherName == pasta.CipherName {
		cfg.CipherParams.Variant = 4
	}
	return cfg
}

// forEachPair runs f once per (cipher, backend) pair as a subtest named
// "<cipher>/<backend>", opening the backend and skipping pairs the
// substrate reports as unsupported — with the reason in the skip text.
func forEachPair(t *testing.T, f func(t *testing.T, b BlockCipher, cipherName, backendName string)) {
	t.Helper()
	for _, cn := range cipher.Names() {
		for _, bn := range Names() {
			t.Run(cn+"/"+bn, func(t *testing.T) {
				b, err := Open(bn, matrixConfig(cn))
				if errors.Is(err, ErrUnsupported) {
					t.Skipf("unsupported pair: %v", err)
				}
				if err != nil {
					t.Fatalf("Open(%q, cipher %q): %v", bn, cn, err)
				}
				defer b.Close()
				f(t, b, cn, bn)
			})
		}
	}
}

func TestConformanceGoldenKeystream(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		want, ok := goldenFirst8[cn]
		if !ok {
			t.Skipf("no golden vector pinned for cipher %q", cn)
		}
		dst := ff.NewVec(b.BlockSize())
		if err := b.KeyStreamInto(context.Background(), dst, 1, 2); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("golden keystream drifted at %d: got %v, want %v",
					i, dst[:8], want)
			}
		}
	})
}

func TestConformanceBulkMatchesSingle(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		ctx := context.Background()
		const first, count = 3, 3
		bulk, err := b.KeyStreamBlocks(ctx, 9, first, count)
		if err != nil {
			t.Fatal(err)
		}
		if len(bulk) != count*b.BlockSize() {
			t.Fatalf("bulk keystream has %d elements, want %d", len(bulk), count*b.BlockSize())
		}
		single := ff.NewVec(b.BlockSize())
		for i := 0; i < count; i++ {
			if err := b.KeyStreamInto(ctx, single, 9, first+uint64(i)); err != nil {
				t.Fatal(err)
			}
			if !single.Equal(bulk[i*b.BlockSize() : (i+1)*b.BlockSize()]) {
				t.Fatalf("bulk block %d disagrees with KeyStreamInto", i)
			}
		}
	})
}

func TestConformanceRoundtrip(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		ctx := context.Background()
		// A message with a partial last block.
		msg := ff.NewVec(b.BlockSize() + b.BlockSize()/2)
		for i := range msg {
			msg[i] = uint64(i*7+1) % b.Modulus().P()
		}
		ct, err := b.Encrypt(ctx, 4, msg)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Equal(msg) {
			t.Fatal("ciphertext equals plaintext")
		}
		pt, err := b.Decrypt(ctx, 4, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !pt.Equal(msg) {
			t.Fatalf("roundtrip failed: got %v, want %v", pt[:4], msg[:4])
		}
	})
}

// TestConformanceIntoCipher requires every registered substrate to
// implement the allocation-free IntoCipher extension and to produce
// output bit-identical to the allocating methods, including dst-length
// validation.
func TestConformanceIntoCipher(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		ctx := context.Background()
		ic, ok := b.(IntoCipher)
		if !ok {
			t.Fatalf("backend %q does not implement IntoCipher", bn)
		}
		const first, count = 2, 3
		want, err := b.KeyStreamBlocks(ctx, 11, first, count)
		if err != nil {
			t.Fatal(err)
		}
		dst := ff.NewVec(count * b.BlockSize())
		if err := ic.KeyStreamBlocksInto(ctx, dst, 11, first, count); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(want) {
			t.Fatal("KeyStreamBlocksInto disagrees with KeyStreamBlocks")
		}
		if err := ic.KeyStreamBlocksInto(ctx, dst[:1], 11, first, count); err == nil {
			t.Fatal("KeyStreamBlocksInto accepted a short dst")
		}

		msg := ff.NewVec(b.BlockSize() + b.BlockSize()/2)
		for i := range msg {
			msg[i] = uint64(i*5+3) % b.Modulus().P()
		}
		wantCT, err := b.Encrypt(ctx, 6, msg)
		if err != nil {
			t.Fatal(err)
		}
		ct := ff.NewVec(len(msg))
		if err := ic.EncryptInto(ctx, ct, 6, msg); err != nil {
			t.Fatal(err)
		}
		if !ct.Equal(wantCT) {
			t.Fatal("EncryptInto disagrees with Encrypt")
		}
		if err := ic.EncryptInto(ctx, ct[:1], 6, msg); err == nil {
			t.Fatal("EncryptInto accepted a short dst")
		}
	})
}

func TestConformanceTypedErrors(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		ctx := context.Background()

		// Wrong destination length.
		err := b.KeyStreamInto(ctx, ff.NewVec(b.BlockSize()+1), 0, 0)
		var be *Error
		if !errors.As(err, &be) || be.Backend != bn {
			t.Fatalf("bad-length error not a *backend.Error for %s: %v", bn, err)
		}

		// Out-of-range plaintext element.
		bad := ff.NewVec(2)
		bad[1] = b.Modulus().P()
		if _, err := b.Encrypt(ctx, 0, bad); err == nil {
			t.Fatal("Encrypt accepted an out-of-range element")
		}

		// Pre-cancelled context: typed error satisfying context.Canceled.
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		err = b.KeyStreamInto(cctx, ff.NewVec(b.BlockSize()), 0, 0)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled call did not surface context.Canceled: %v", err)
		}
		if !errors.As(err, &be) {
			t.Fatalf("cancelled call not wrapped in *backend.Error: %v", err)
		}
	})
}

func TestConformanceStatsAccumulate(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		ctx := context.Background()
		before := b.Stats()
		if before.Backend != bn || before.Scheme != cn {
			t.Fatalf("stats identity wrong: %+v (want backend %q cipher %q)", before, bn, cn)
		}
		if _, err := b.KeyStreamBlocks(ctx, 0, 0, 2); err != nil {
			t.Fatal(err)
		}
		after := b.Stats()
		if after.Blocks-before.Blocks != 2 {
			t.Fatalf("blocks counter moved by %d, want 2", after.Blocks-before.Blocks)
		}
		if after.Elements-before.Elements != int64(2*b.BlockSize()) {
			t.Fatalf("elements counter moved by %d, want %d",
				after.Elements-before.Elements, 2*b.BlockSize())
		}
		if bn != NameSoftware && after.AccelCycles <= before.AccelCycles {
			t.Fatalf("%s did not account accelerator cycles", bn)
		}
		if bn == NameSoC && after.CoreCycles <= before.CoreCycles {
			t.Fatal("soc did not account core cycles")
		}
	})
}

func TestConformanceClose(t *testing.T) {
	forEachPair(t, func(t *testing.T, b BlockCipher, cn, bn string) {
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		err := b.KeyStreamInto(context.Background(), ff.NewVec(b.BlockSize()), 0, 0)
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("use after Close not ErrClosed: %v", err)
		}
		if _, err := b.Encrypt(context.Background(), 0, ff.NewVec(1)); !errors.Is(err, ErrClosed) {
			t.Fatalf("Encrypt after Close not ErrClosed: %v", err)
		}
	})
}

func TestOpenUnknownBackend(t *testing.T) {
	_, err := Open("fpga-bridge", Config{})
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("want ErrUnknownBackend, got %v", err)
	}
}

// TestOpenUnknownCipher pins the registry-driven rejection: the typed
// cipher.ErrUnknownCipher stays matchable through the backend wrapper
// and the message lists the registered cipher names dynamically.
func TestOpenUnknownCipher(t *testing.T) {
	for _, bn := range Names() {
		_, err := Open(bn, Config{Cipher: "rasta", KeySeed: "x"})
		if !errors.Is(err, cipher.ErrUnknownCipher) {
			t.Fatalf("%s: want ErrUnknownCipher, got %v", bn, err)
		}
		if !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%s: unknown cipher lost the ErrUnsupported wrap: %v", bn, err)
		}
		for _, cn := range cipher.Names() {
			if !strings.Contains(err.Error(), cn) {
				t.Fatalf("%s: error %q does not list registered cipher %q", bn, err, cn)
			}
		}
	}
}

func TestSoCUnsupportedConfigs(t *testing.T) {
	if _, err := Open(NameSoC, Config{Cipher: "hera", KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("soc accepted hera: %v", err)
	}
	if _, err := Open(NameSoC, Config{Cipher: "masta", KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("soc accepted masta: %v", err)
	}
	if _, err := Open(NameSoC, Config{CipherParams: cipher.Params{Variant: 4}, Width: 54, KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("soc accepted a 54-bit modulus on the 32-bit bus: %v", err)
	}
}

func TestAccelUnsupportedCipher(t *testing.T) {
	if _, err := Open(NameAccel, Config{Cipher: "masta", KeySeed: "x"}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("accel accepted software-only masta: %v", err)
	}
}

// TestWatchdogSurfacesTyped proves the accelerator watchdog abort stays
// reachable as *hw.ErrWatchdog through the backend's error wrapper.
func TestWatchdogSurfacesTyped(t *testing.T) {
	b, err := Open(NameAccel, Config{CipherParams: cipher.Params{Variant: 4}, KeySeed: "wd", WatchdogLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	err = b.KeyStreamInto(context.Background(), ff.NewVec(b.BlockSize()), 0, 0)
	if err == nil {
		t.Fatal("a 10-cycle watchdog budget did not fire")
	}
	var wd *hw.ErrWatchdog
	if !errors.As(err, &wd) {
		t.Fatalf("watchdog abort not reachable via errors.As: %v", err)
	}
	if wd.Limit != 10 {
		t.Fatalf("watchdog limit = %d, want 10", wd.Limit)
	}
	var be *Error
	if !errors.As(err, &be) || be.Backend != NameAccel {
		t.Fatalf("watchdog abort not wrapped in *backend.Error: %v", err)
	}
}

// TestSoftwareZeroAlloc pins the steady-state allocation behaviour of
// the software path through the interface for every registered cipher:
// zero allocs per block. This is part of the BlockEngine contract —
// engines must use pooled workspaces.
func TestSoftwareZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, cn := range cipher.Names() {
		t.Run(cn, func(t *testing.T) {
			b, err := Open(NameSoftware, matrixConfig(cn))
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			ctx := context.Background()
			dst := ff.NewVec(b.BlockSize())
			// Warm the cipher's workspace pool.
			if err := b.KeyStreamInto(ctx, dst, 0, 0); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := b.KeyStreamInto(ctx, dst, 0, 1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("software %s KeyStreamInto allocates %.1f objects per block, want 0", cn, allocs)
			}
		})
	}
}
