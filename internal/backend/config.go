package backend

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/pasta"
)

// Config selects and keys a cipher instance for any backend. The zero
// value opens PASTA-3 over the 17-bit modulus with a fresh random key.
type Config struct {
	// Scheme is SchemePasta (default) or SchemeHera.
	Scheme string

	// Variant selects the PASTA shape (Pasta3 default, Pasta4).
	// Ignored for HERA and when PastaParams is set.
	Variant pasta.Variant

	// PastaParams, when non-nil, overrides Variant/Width with an
	// explicit (possibly toy) instance — the HHE layer evaluates the
	// homomorphic decryption circuit on reduced instances.
	PastaParams *pasta.Params

	// HeraRounds is the HERA round count (default 5).
	HeraRounds int

	// Width selects a standard modulus bit width ω ∈ {17, 33, 54, 60}
	// (default 17). Ignored when PastaParams is set.
	Width uint

	// Key is the raw secret key (StateSize elements). When nil, KeySeed
	// derives one; when that is empty too, a random key is sampled.
	Key ff.Vec

	// KeySeed deterministically derives the key (tests/examples only).
	KeySeed string

	// Workers bounds the software backend's block-level fan-out;
	// ≤ 0 means GOMAXPROCS. The hardware substrates serialize anyway.
	Workers int

	// WatchdogLimit overrides the accelerator watchdog cycle budget;
	// 0 keeps hw.DefaultWatchdogLimit.
	WatchdogLimit int64

	// AccelUnits sizes the accel backend's farm: the number of modelled
	// cryptoprocessor instances cloned from the same params/key and
	// dispatched concurrently (≤ 0 or 1 = the classic single
	// peripheral). Ignored by the other backends.
	AccelUnits int

	// AccelStep selects the accel backend's time-stepping mode: "" or
	// "auto" (event-driven fast-forward unless a per-cycle feature such
	// as tracing is armed), "event", or "cycle" (force the per-cycle
	// oracle). Ignored by the other backends.
	AccelStep string
}

// resolved is a fully validated Config: exactly one of the scheme params
// is meaningful, and key is cloned, range-checked, and never nil.
type resolved struct {
	scheme   string
	mod      ff.Modulus
	pastaPar pasta.Params
	heraPar  hera.Params
	key      ff.Vec
}

func (c Config) resolve() (resolved, error) {
	r := resolved{scheme: c.Scheme}
	if r.scheme == "" {
		r.scheme = SchemePasta
	}
	width := c.Width
	if width == 0 {
		width = 17
	}
	switch r.scheme {
	case SchemePasta:
		if c.PastaParams != nil {
			r.pastaPar = *c.PastaParams
			if err := r.pastaPar.Validate(); err != nil {
				return r, err
			}
		} else {
			mod, ok := ff.StandardModuli[width]
			if !ok {
				return r, fmt.Errorf("%w: no standard modulus of width %d", ErrUnsupported, width)
			}
			par, err := pasta.NewParams(c.Variant, mod)
			if err != nil {
				return r, err
			}
			r.pastaPar = par
		}
		r.mod = r.pastaPar.Mod
		key, err := c.pastaKey(r.pastaPar)
		if err != nil {
			return r, err
		}
		r.key = key
	case SchemeHera:
		rounds := c.HeraRounds
		if rounds == 0 {
			rounds = 5
		}
		mod, ok := ff.StandardModuli[width]
		if !ok {
			return r, fmt.Errorf("%w: no standard modulus of width %d", ErrUnsupported, width)
		}
		par, err := hera.NewParams(rounds, mod)
		if err != nil {
			return r, err
		}
		r.heraPar = par
		r.mod = mod
		key, err := c.heraKey(par)
		if err != nil {
			return r, err
		}
		r.key = key
	default:
		return r, fmt.Errorf("%w: unknown scheme %q (have %s, %s)", ErrUnsupported, r.scheme, SchemePasta, SchemeHera)
	}
	return r, nil
}

func (c Config) pastaKey(par pasta.Params) (ff.Vec, error) {
	switch {
	case c.Key != nil:
		k := pasta.Key(c.Key.Clone())
		if err := k.Validate(par); err != nil {
			return nil, err
		}
		return ff.Vec(k), nil
	case c.KeySeed != "":
		return ff.Vec(pasta.KeyFromSeed(par, c.KeySeed)), nil
	default:
		k, err := pasta.NewRandomKey(par)
		if err != nil {
			return nil, err
		}
		return ff.Vec(k), nil
	}
}

func (c Config) heraKey(par hera.Params) (ff.Vec, error) {
	switch {
	case c.Key != nil:
		k := hera.Key(c.Key.Clone())
		if err := k.Validate(par); err != nil {
			return nil, err
		}
		return ff.Vec(k), nil
	case c.KeySeed != "":
		return ff.Vec(hera.KeyFromSeed(par, c.KeySeed)), nil
	default:
		k, err := hera.NewRandomKey(par)
		if err != nil {
			return nil, err
		}
		return ff.Vec(k), nil
	}
}
