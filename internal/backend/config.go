package backend

import (
	"fmt"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// DefaultCipher is the cipher family the zero-value Config opens.
const DefaultCipher = "pasta"

// Config selects and keys a cipher instance for any backend. The zero
// value opens PASTA-3 over the 17-bit modulus with a fresh random key.
//
// The cipher axis is registry-driven: Cipher names any family
// registered with internal/cipher, and CipherParams carries the
// family-interpreted parameters.
type Config struct {
	// Cipher names a registered cipher family (see cipher.Names());
	// "" falls back to DefaultCipher.
	Cipher string

	// CipherParams carries the substrate-independent cipher
	// parameters (variant, rounds, state size, modulus selection),
	// interpreted by the named family's Spec.
	CipherParams cipher.Params

	// Width selects a standard modulus bit width ω ∈ {17, 33, 54, 60}
	// (default 17). Shorthand for CipherParams.Width.
	Width uint

	// Key is the raw secret key. When nil, KeySeed derives one; when
	// that is empty too, a random key is sampled.
	Key ff.Vec

	// KeySeed deterministically derives the key (tests/examples only).
	KeySeed string

	// Workers bounds the software backend's block-level fan-out;
	// ≤ 0 means GOMAXPROCS. The hardware substrates serialize anyway.
	Workers int

	// WatchdogLimit overrides the accelerator watchdog cycle budget;
	// 0 keeps hw.DefaultWatchdogLimit.
	WatchdogLimit int64

	// AccelUnits sizes the accel backend's farm: the number of modelled
	// cryptoprocessor instances cloned from the same params/key and
	// dispatched concurrently (≤ 0 or 1 = the classic single
	// peripheral). Ignored by the other backends.
	AccelUnits int

	// AccelStep selects the accel backend's time-stepping mode: "" or
	// "auto" (event-driven fast-forward unless a per-cycle feature such
	// as tracing is armed), "event", or "cycle" (force the per-cycle
	// oracle). Ignored by the other backends.
	AccelStep string
}

// cipherName resolves the cipher axis: Cipher, then DefaultCipher.
func (c Config) cipherName() string {
	if c.Cipher != "" {
		return c.Cipher
	}
	return DefaultCipher
}

// cipherParams applies the Width shorthand on top of the explicit
// CipherParams; explicit fields win.
func (c Config) cipherParams() cipher.Params {
	p := c.CipherParams
	if p.Width == 0 {
		p.Width = c.Width
	}
	return p
}

// resolved is a fully validated Config: the cipher family, the
// resolved instance, and a cloned, range-checked, never-nil key.
type resolved struct {
	spec cipher.Spec
	inst cipher.Instance
	key  ff.Vec
}

func (r resolved) scheme() string  { return r.spec.Name() }
func (r resolved) mod() ff.Modulus { return r.inst.Mod }

// resolve dispatches Config through the cipher registry: no per-family
// switch — the named Spec validates parameters and derives the key.
func (c Config) resolve() (resolved, error) {
	var r resolved
	name := c.cipherName()
	spec, err := cipher.Open(name)
	if err != nil {
		// Wrap in ErrUnsupported for continuity with the pre-registry
		// error contract; cipher.ErrUnknownCipher stays matchable.
		return r, fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	r.spec = spec
	inst, err := spec.Resolve(c.cipherParams())
	if err != nil {
		return r, err
	}
	r.inst = inst
	key, err := c.resolveKey(spec, inst)
	if err != nil {
		return r, err
	}
	r.key = key
	return r, nil
}

// resolveKey produces the instance key: explicit Key (validated),
// seeded derivation, or a fresh random key — uniformly through the
// family's Spec.
func (c Config) resolveKey(spec cipher.Spec, inst cipher.Instance) (ff.Vec, error) {
	switch {
	case c.Key != nil:
		k := c.Key.Clone()
		if err := spec.ValidateKey(inst, k); err != nil {
			return nil, err
		}
		return k, nil
	case c.KeySeed != "":
		return spec.KeyFromSeed(inst, c.KeySeed), nil
	default:
		return spec.NewRandomKey(inst)
	}
}
