package backend

import (
	"repro/internal/ff"
	"repro/internal/hera"
	"repro/internal/pasta"
)

// SoftwareBackend runs the keystream on the host CPU via the reference
// cipher implementations. The PASTA path is allocation-free in steady
// state (the cipher's pooled workspaces) and both ciphers are safe for
// concurrent use, so this backend fans bulk work out over Workers
// goroutines.
type SoftwareBackend struct {
	base
	pasta *pasta.Cipher
	hera  *hera.Cipher
}

// NewSoftware opens the software backend.
func NewSoftware(cfg Config) (*SoftwareBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameSoftware, Op: "open", Err: err}
	}
	b := &SoftwareBackend{}
	switch r.scheme {
	case SchemePasta:
		c, err := pasta.NewCipher(r.pastaPar, pasta.Key(r.key))
		if err != nil {
			return nil, &Error{Backend: NameSoftware, Op: "open", Err: err}
		}
		b.pasta = c
		b.init(NameSoftware, SchemePasta, r.pastaPar.T, r.mod, cfg.Workers)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			return c.KeyStreamInto(dst, nonce, block)
		}
	case SchemeHera:
		c, err := hera.NewCipher(r.heraPar, hera.Key(r.key))
		if err != nil {
			return nil, &Error{Backend: NameSoftware, Op: "open", Err: err}
		}
		b.hera = c
		b.init(NameSoftware, SchemeHera, hera.StateSize, r.mod, cfg.Workers)
		b.kernel = func(dst ff.Vec, nonce, block uint64) error {
			return c.KeyStreamInto(dst, nonce, block)
		}
	}
	return b, nil
}

// PastaCipher returns the underlying software cipher when the backend
// runs PASTA, or nil. The HHE client uses it to reach the raw key and
// the cipher's pooled bulk API.
func (b *SoftwareBackend) PastaCipher() *pasta.Cipher { return b.pasta }

// HeraCipher returns the underlying HERA cipher, or nil.
func (b *SoftwareBackend) HeraCipher() *hera.Cipher { return b.hera }
