package backend

import (
	"repro/internal/cipher"
	"repro/internal/hera"
	"repro/internal/pasta"
)

// SoftwareBackend runs the keystream on the host CPU via the registered
// cipher family's reference engine. Engines are required to be
// allocation-free in steady state (pooled workspaces) and safe for
// concurrent use, so this backend fans bulk work out over Workers
// goroutines sharing one engine.
type SoftwareBackend struct {
	base
	engine cipher.BlockEngine
}

// NewSoftware opens the software backend for any registered cipher.
func NewSoftware(cfg Config) (*SoftwareBackend, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, &Error{Backend: NameSoftware, Op: "open", Err: err}
	}
	eng, err := r.spec.NewEngine(r.inst, r.key)
	if err != nil {
		return nil, &Error{Backend: NameSoftware, Op: "open", Err: err}
	}
	b := &SoftwareBackend{engine: eng}
	b.init(NameSoftware, r.scheme(), r.inst.Block, r.mod(), cfg.Workers)
	b.label = r.inst.Label
	b.kernel = eng.KeyStreamInto
	return b, nil
}

// Engine returns the underlying software block engine.
func (b *SoftwareBackend) Engine() cipher.BlockEngine { return b.engine }

// PastaCipher returns the underlying software cipher when the backend
// runs PASTA, or nil. The HHE client uses it to reach the raw key and
// the cipher's pooled bulk API.
func (b *SoftwareBackend) PastaCipher() *pasta.Cipher {
	c, _ := b.engine.(*pasta.Cipher)
	return c
}

// HeraCipher returns the underlying HERA cipher, or nil.
func (b *SoftwareBackend) HeraCipher() *hera.Cipher {
	c, _ := b.engine.(*hera.Cipher)
	return c
}
