package backend

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ff"
	"repro/internal/obs"
)

// base carries the state and behaviour shared by all three adapters:
// identity, counters (mirrored into internal/obs), the closed flag, and
// the context-aware block fan-out. Each adapter supplies a single-block
// kernel; everything else — length checks, cancellation, range
// validation, additive encryption — lives here once.
type base struct {
	name    string
	scheme  string
	label   string
	t       int
	mod     ff.Modulus
	workers int

	// kernel computes one keystream block into dst (exactly t elements).
	// The software kernel is concurrency-safe; the hardware kernels
	// serialize internally, so base may always fan out.
	kernel func(dst ff.Vec, nonce, block uint64) error

	closed      atomic.Bool
	blocks      atomic.Int64
	elements    atomic.Int64
	accelCycles atomic.Int64
	coreCycles  atomic.Int64

	obsBlocks   *obs.Counter
	obsElements *obs.Counter

	// ksScratch recycles the per-worker t-element keystream scratch of
	// forEachBlock, so steady-state EncryptInto/KeyStreamBlocksInto calls
	// allocate nothing.
	ksScratch sync.Pool
}

// init wires the base in place (base embeds atomics, so it is never
// copied after this). The obs counters are registered on the default
// registry and shared by name across instances, giving process-wide
// cumulative metrics per backend.
func (b *base) init(name, scheme string, t int, mod ff.Modulus, workers int) {
	b.name = name
	b.scheme = scheme
	b.t = t
	b.mod = mod
	b.workers = workers
	b.obsBlocks = obs.Default().Counter("backend." + name + ".blocks")
	b.obsElements = obs.Default().Counter("backend." + name + ".elements")
	b.ksScratch.New = func() any {
		v := ff.NewVec(t)
		return &v
	}
}

func (b *base) Name() string        { return b.name }
func (b *base) Scheme() string      { return b.scheme }
func (b *base) BlockSize() int      { return b.t }
func (b *base) Modulus() ff.Modulus { return b.mod }

// InstanceLabel names the resolved cipher instance (cipher.Instance.
// Label, e.g. "PASTA-3(p=65537)"). Two instances with different
// keystream functions have different labels; the serving tier folds the
// label into its duplicate-nonce fingerprint so the same (key, nonce)
// under different ciphers is not mistaken for keystream reuse.
func (b *base) InstanceLabel() string { return b.label }

// Stats returns the instance's cumulative counters.
func (b *base) Stats() Stats {
	return Stats{
		Backend:     b.name,
		Scheme:      b.scheme,
		Blocks:      b.blocks.Load(),
		Elements:    b.elements.Load(),
		AccelCycles: b.accelCycles.Load(),
		CoreCycles:  b.coreCycles.Load(),
	}
}

// Close marks the backend closed; subsequent operations fail with
// ErrClosed. Idempotent.
func (b *base) Close() error {
	b.closed.Store(true)
	return nil
}

// pre runs the per-operation gate: closed check, then context check.
func (b *base) pre(ctx context.Context, op string) error {
	if b.closed.Load() {
		return &Error{Backend: b.name, Op: op, Err: ErrClosed}
	}
	if err := ctx.Err(); err != nil {
		return &Error{Backend: b.name, Op: op, Err: err}
	}
	return nil
}

// account records finished work on both the instance counters and the
// process-wide obs counters.
func (b *base) account(blocks, elems int) {
	b.blocks.Add(int64(blocks))
	b.elements.Add(int64(elems))
	b.obsBlocks.Add(int64(blocks))
	b.obsElements.Add(int64(elems))
}

// KeyStreamInto writes the keystream block KS(nonce, block) into dst.
// The software path performs no heap allocation here (asserted by the
// conformance suite): the error paths allocate, the hot path does not.
func (b *base) KeyStreamInto(ctx context.Context, dst ff.Vec, nonce, block uint64) error {
	const op = "keystream"
	if err := b.pre(ctx, op); err != nil {
		return err
	}
	if len(dst) != b.t {
		return &Error{Backend: b.name, Op: op,
			Err: fmt.Errorf("dst has %d elements, want %d", len(dst), b.t)}
	}
	if err := b.kernel(dst, nonce, block); err != nil {
		return &Error{Backend: b.name, Op: op, Err: err}
	}
	b.account(1, b.t)
	return nil
}

// KeyStreamBlocks returns count blocks of keystream, fanned out over the
// worker pool with per-block cancellation checks.
func (b *base) KeyStreamBlocks(ctx context.Context, nonce, first uint64, count int) (ff.Vec, error) {
	if count <= 0 {
		if err := b.pre(ctx, "keystream-blocks"); err != nil {
			return nil, err
		}
		return ff.NewVec(0), nil
	}
	out := ff.NewVec(count * b.t)
	if err := b.KeyStreamBlocksInto(ctx, out, nonce, first, count); err != nil {
		return nil, err
	}
	return out, nil
}

// KeyStreamBlocksInto is KeyStreamBlocks writing into dst (exactly
// count × BlockSize elements) — the serving-tier hot path; the software
// substrate performs no heap allocation here in steady state.
func (b *base) KeyStreamBlocksInto(ctx context.Context, dst ff.Vec, nonce, first uint64, count int) error {
	const op = "keystream-blocks"
	if err := b.pre(ctx, op); err != nil {
		return err
	}
	if count <= 0 {
		return nil
	}
	if len(dst) != count*b.t {
		return &Error{Backend: b.name, Op: op,
			Err: fmt.Errorf("dst has %d elements, want %d", len(dst), count*b.t)}
	}
	err := b.forEachBlock(ctx, op, count, func(i int, _ ff.Vec) error {
		return b.kernel(dst[i*b.t:(i+1)*b.t], nonce, first+uint64(i))
	})
	if err != nil {
		return err
	}
	b.account(count, count*b.t)
	return nil
}

// Encrypt encrypts an arbitrary-length message: ct[i] = msg[i] + KS[i].
func (b *base) Encrypt(ctx context.Context, nonce uint64, msg ff.Vec) (ff.Vec, error) {
	out := ff.NewVec(len(msg))
	if err := b.processInto(ctx, "encrypt", out, nonce, msg, true); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptInto is Encrypt writing the ciphertext into dst (same length as
// msg) — the serving-tier hot path. dst must not alias msg unless they
// are the same slice.
func (b *base) EncryptInto(ctx context.Context, dst ff.Vec, nonce uint64, msg ff.Vec) error {
	return b.processInto(ctx, "encrypt", dst, nonce, msg, true)
}

// Decrypt inverts Encrypt.
func (b *base) Decrypt(ctx context.Context, nonce uint64, ct ff.Vec) (ff.Vec, error) {
	out := ff.NewVec(len(ct))
	if err := b.processInto(ctx, "decrypt", out, nonce, ct, false); err != nil {
		return nil, err
	}
	return out, nil
}

func (b *base) processInto(ctx context.Context, op string, out ff.Vec, nonce uint64, in ff.Vec, encrypt bool) error {
	if err := b.pre(ctx, op); err != nil {
		return err
	}
	if len(out) != len(in) {
		return &Error{Backend: b.name, Op: op,
			Err: fmt.Errorf("dst has %d elements, want %d", len(out), len(in))}
	}
	p := b.mod.P()
	for i, v := range in {
		if v >= p {
			return &Error{Backend: b.name, Op: op,
				Err: fmt.Errorf("element %d = %d out of range for %v", i, v, b.mod)}
		}
	}
	nBlocks := (len(in) + b.t - 1) / b.t
	if nBlocks == 0 {
		return nil
	}
	err := b.forEachBlock(ctx, op, nBlocks, func(i int, ks ff.Vec) error {
		if err := b.kernel(ks, nonce, uint64(i)); err != nil {
			return err
		}
		lo := i * b.t
		hi := lo + b.t
		if hi > len(in) {
			hi = len(in) // last block may be short
		}
		src, dst := in[lo:hi], out[lo:hi]
		for j := range src {
			if encrypt {
				dst[j] = b.mod.Add(src[j], ks[j])
			} else {
				dst[j] = b.mod.Sub(src[j], ks[j])
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	b.account(nBlocks, len(in))
	return nil
}

// forEachBlock runs f for every block index in [0, count), strided over
// the worker pool. Each worker owns a t-element keystream scratch and
// checks ctx before every block, so cancellation is honoured at block
// granularity and every worker has exited by the time forEachBlock
// returns — no goroutine outlives the call.
func (b *base) forEachBlock(ctx context.Context, op string, count int, f func(i int, ks ff.Vec) error) error {
	workers := b.effectiveWorkers(count)
	run := func(start int) error {
		ksp := b.ksScratch.Get().(*ff.Vec)
		defer b.ksScratch.Put(ksp)
		ks := *ksp
		for i := start; i < count; i += workers {
			if err := ctx.Err(); err != nil {
				return &Error{Backend: b.name, Op: op, Err: err}
			}
			if err := f(i, ks); err != nil {
				if _, ok := err.(*Error); ok {
					return err
				}
				return &Error{Backend: b.name, Op: op, Err: err}
			}
		}
		return nil
	}
	if workers <= 1 {
		return run(0)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = run(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *base) effectiveWorkers(count int) int {
	n := b.workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > count {
		n = count
	}
	if n < 1 {
		n = 1
	}
	return n
}
