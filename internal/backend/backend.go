// Package backend unifies the repository's three keystream substrates —
// the software cipher (internal/pasta, internal/hera), the cycle-accurate
// cryptoprocessor model (internal/hw), and the RISC-V SoC co-simulation
// (internal/soc) — behind one context-aware interface.
//
// Before this layer each consumer (internal/core, internal/hhe,
// internal/eval, the four CLIs) talked to a substrate directly, each with
// its own calling convention, error shape, and counters. A backend is
// opened by name through the registry:
//
//	b, err := backend.Open(backend.NameAccel, backend.Config{
//		CipherParams: cipher.Params{Variant: 4},
//		KeySeed:      "demo",
//	})
//
// and every backend satisfies the same contract:
//
//   - All operations take a context and return promptly (at block
//     granularity) once it is cancelled, with an error satisfying
//     errors.Is(err, context.Canceled) (or DeadlineExceeded).
//   - All failures are wrapped in *backend.Error carrying the backend
//     name and operation; substrate-specific typed errors remain
//     reachable through errors.As (e.g. *hw.ErrWatchdog when the
//     accelerator watchdog fires).
//   - Stats() exposes cumulative work counters, mirrored into
//     internal/obs as backend.<name>.blocks / backend.<name>.elements.
//
// The conformance suite (conformance_test.go) pins this contract for
// every registered backend, and the differential suite requires all
// substrates to produce bit-identical keystreams.
package backend

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ff"

	// The built-in cipher families register themselves with
	// internal/cipher from their package inits. pasta and hera are
	// imported by the substrate adapters; masta is software-only, so
	// it is linked here to make the full registry available to every
	// backend consumer.
	_ "repro/internal/masta"
)

// Schemes a backend can instantiate. The cipher axis is registry-driven
// now (see internal/cipher); these constants name the two original
// families.
//
// Deprecated: use the cipher registry names ("pasta", "hera", "masta",
// …) via cipher.Names().
const (
	SchemePasta = "pasta"
	SchemeHera  = "hera"
)

// KeystreamSource is the minimal substrate contract: a named, keyed
// keystream generator addressed by (nonce, block).
type KeystreamSource interface {
	// Name returns the registry name ("software", "accel", "soc").
	Name() string
	// Scheme returns the cipher family's registry name ("pasta",
	// "hera", "masta", …).
	Scheme() string
	// BlockSize returns t, the number of field elements per keystream
	// block.
	BlockSize() int
	// Modulus returns the plaintext/ciphertext field.
	Modulus() ff.Modulus
	// KeyStreamInto writes the keystream block KS(nonce, block) into
	// dst, which must have exactly BlockSize() elements.
	KeyStreamInto(ctx context.Context, dst ff.Vec, nonce, block uint64) error
	// Stats returns cumulative work counters for this backend instance.
	Stats() Stats
	// Close releases the backend; further operations return ErrClosed.
	Close() error
}

// BlockCipher extends a KeystreamSource with bulk keystream generation
// and additive stream encryption (ct = msg + KS mod p). This is the
// interface the registry hands out and the rest of the repository
// consumes.
type BlockCipher interface {
	KeystreamSource
	// KeyStreamBlocks returns count blocks of keystream for counters
	// first, first+1, …, first+count-1, concatenated.
	KeyStreamBlocks(ctx context.Context, nonce, first uint64, count int) (ff.Vec, error)
	// Encrypt encrypts an arbitrary-length message with block counters
	// starting at 0.
	Encrypt(ctx context.Context, nonce uint64, msg ff.Vec) (ff.Vec, error)
	// Decrypt inverts Encrypt.
	Decrypt(ctx context.Context, nonce uint64, ct ff.Vec) (ff.Vec, error)
}

// IntoCipher is the optional allocation-free extension of BlockCipher:
// bulk keystream and encryption into caller-owned buffers. All built-in
// substrates implement it (the software path allocation-free, the
// hardware models by copying out of their single co-sim run); consumers
// type-assert and fall back to the allocating methods when a wrapper
// does not forward it:
//
//	if ic, ok := cipher.(backend.IntoCipher); ok { ic.EncryptInto(...) }
type IntoCipher interface {
	// KeyStreamBlocksInto writes count keystream blocks for counters
	// first… into dst (exactly count × BlockSize elements).
	KeyStreamBlocksInto(ctx context.Context, dst ff.Vec, nonce, first uint64, count int) error
	// EncryptInto encrypts msg into dst (same length), counters from 0.
	EncryptInto(ctx context.Context, dst ff.Vec, nonce uint64, msg ff.Vec) error
}

// Stats is a snapshot of a backend instance's cumulative counters.
// Blocks/Elements count keystream production; the cycle counters are
// filled by the substrates that model time (accel, soc).
type Stats struct {
	Backend     string `json:"backend"`
	Scheme      string `json:"scheme"`
	Blocks      int64  `json:"blocks"`
	Elements    int64  `json:"elements"`
	AccelCycles int64  `json:"accel_cycles,omitempty"` // cryptoprocessor cycles
	CoreCycles  int64  `json:"core_cycles,omitempty"`  // RISC-V core cycles (soc only)

	// Units breaks the accel backend's work down per farm unit, so
	// operators can see whether an N-way farm is actually load-balanced.
	// Empty for non-farm backends.
	Units []UnitStats `json:"units,omitempty"`
}

// UnitStats is one accelerator farm unit's share of the backend's work.
type UnitStats struct {
	Unit   int   `json:"unit"`
	Blocks int64 `json:"blocks"`
	Cycles int64 `json:"cycles"`
}

// Sentinel errors, matched with errors.Is through the *Error wrapper.
var (
	// ErrUnknownBackend reports an Open with an unregistered name.
	ErrUnknownBackend = errors.New("unknown backend")
	// ErrUnsupported reports a configuration the substrate cannot
	// realize (e.g. HERA on the SoC, or a >32-bit modulus on the 32-bit
	// peripheral bus).
	ErrUnsupported = errors.New("unsupported configuration")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("backend closed")
)

// Error is the typed failure every backend operation returns: it names
// the backend and operation and wraps the cause, so callers can route on
// errors.Is(err, context.Canceled), errors.Is(err, ErrClosed), or
// errors.As(err, &watchdog) without caring which substrate ran.
type Error struct {
	Backend string // registry name ("software", "accel", "soc")
	Op      string // operation ("open", "keystream", "encrypt", …)
	Err     error  // underlying cause
}

func (e *Error) Error() string {
	return fmt.Sprintf("backend/%s: %s: %v", e.Backend, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }
