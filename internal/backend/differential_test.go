package backend

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// TestCrossBackendDifferential is the acceptance gate of the backend
// layer: for every registered cipher, every substrate that supports it
// must produce bit-identical keystream and ciphertext to the software
// reference for the same (key, nonce, counter). Any divergence means
// one of the models drifted from the cipher specification. Substrates
// that decline a cipher (ErrUnsupported) are reported and skipped —
// but software must support every registered cipher.
//
// The instance list covers both standard PASTA variants at ω = 17 plus
// every other registered cipher on its family defaults; `make
// backends-smoke` runs the PASTA-4 case as the reduced instance.
func TestCrossBackendDifferential(t *testing.T) {
	type instance struct {
		name string
		cfg  Config
	}
	instances := []instance{
		{"PASTA-4", Config{Cipher: "pasta", CipherParams: cipher.Params{Variant: 4}, KeySeed: "differential"}},
		{"PASTA-3", Config{Cipher: "pasta", CipherParams: cipher.Params{Variant: 3}, KeySeed: "differential"}},
	}
	for _, cn := range cipher.Names() {
		if cn == "pasta" {
			continue
		}
		instances = append(instances, instance{cn, Config{Cipher: cn, KeySeed: "differential"}})
	}

	for _, tc := range instances {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			backends := make(map[string]BlockCipher)
			for _, name := range Names() {
				b, err := Open(name, tc.cfg)
				if errors.Is(err, ErrUnsupported) {
					if name == NameSoftware {
						t.Fatalf("software must support every registered cipher, refused %s: %v", tc.name, err)
					}
					t.Logf("skipping %s: %v", name, err)
					continue
				}
				if err != nil {
					t.Fatalf("Open(%q): %v", name, err)
				}
				defer b.Close()
				backends[name] = b
			}
			sw, ok := backends[NameSoftware]
			if !ok {
				t.Fatal("software backend missing from the matrix")
			}

			// Keystream over a non-zero first counter exercises the SoC
			// driver's counter-offset path.
			const nonce, first, count = 42, 5, 2
			ref, err := sw.KeyStreamBlocks(ctx, nonce, first, count)
			if err != nil {
				t.Fatal(err)
			}
			for name, b := range backends {
				if name == NameSoftware {
					continue
				}
				got, err := b.KeyStreamBlocks(ctx, nonce, first, count)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("%s keystream diverges from software at %s", name, tc.name)
				}
			}

			// Ciphertext for a message with a partial last block.
			tSize := sw.BlockSize()
			msg := ff.NewVec(tSize + tSize/2)
			mod := sw.Modulus()
			for i := range msg {
				msg[i] = uint64(i*31+7) % mod.P()
			}
			refCT, err := sw.Encrypt(ctx, nonce, msg)
			if err != nil {
				t.Fatal(err)
			}
			// other is a non-software backend when one supports this
			// cipher, used for cross-substrate decryption.
			other := sw
			for name, b := range backends {
				if name != NameSoftware {
					other = b
					break
				}
			}
			for name, b := range backends {
				ct, err := b.Encrypt(ctx, nonce, msg)
				if err != nil {
					t.Fatalf("%s encrypt: %v", name, err)
				}
				if !ct.Equal(refCT) {
					t.Fatalf("%s ciphertext diverges from software at %s", name, tc.name)
				}
				// Decrypt through a different backend than encrypted.
				dec := other
				if name != NameSoftware {
					dec = sw
				}
				pt, err := dec.Decrypt(ctx, nonce, ct)
				if err != nil {
					t.Fatalf("%s->%s decrypt: %v", name, dec.Name(), err)
				}
				if !pt.Equal(msg) {
					t.Fatalf("cross-substrate roundtrip %s->%s failed", name, dec.Name())
				}
			}
		})
	}
}
