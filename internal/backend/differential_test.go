package backend

import (
	"context"
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

// TestCrossBackendDifferential is the acceptance gate of the backend
// layer: all three substrates — software cipher, cycle-accurate
// accelerator, RISC-V SoC co-simulation — must produce bit-identical
// keystream and ciphertext for the same (key, nonce, counter), for both
// standard PASTA variants at ω = 17. Any divergence means one of the
// models drifted from the cipher specification.
//
// `make backends-smoke` runs the PASTA-4 half as the reduced instance.
func TestCrossBackendDifferential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant pasta.Variant
	}{
		{"PASTA-4", pasta.Pasta4},
		{"PASTA-3", pasta.Pasta3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			cfg := Config{Variant: tc.variant, KeySeed: "differential"}
			backends := make(map[string]BlockCipher, 3)
			for _, name := range []string{NameSoftware, NameAccel, NameSoC} {
				b, err := Open(name, cfg)
				if err != nil {
					t.Fatalf("Open(%q): %v", name, err)
				}
				defer b.Close()
				backends[name] = b
			}

			// Keystream over a non-zero first counter exercises the SoC
			// driver's counter-offset path.
			const nonce, first, count = 42, 5, 2
			ref, err := backends[NameSoftware].KeyStreamBlocks(ctx, nonce, first, count)
			if err != nil {
				t.Fatal(err)
			}
			for name, b := range backends {
				if name == NameSoftware {
					continue
				}
				got, err := b.KeyStreamBlocks(ctx, nonce, first, count)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("%s keystream diverges from software at %s", name, tc.name)
				}
			}

			// Ciphertext for a message with a partial last block.
			tSize := backends[NameSoftware].BlockSize()
			msg := ff.NewVec(tSize + tSize/2)
			mod := backends[NameSoftware].Modulus()
			for i := range msg {
				msg[i] = uint64(i*31+7) % mod.P()
			}
			refCT, err := backends[NameSoftware].Encrypt(ctx, nonce, msg)
			if err != nil {
				t.Fatal(err)
			}
			for name, b := range backends {
				ct, err := b.Encrypt(ctx, nonce, msg)
				if err != nil {
					t.Fatalf("%s encrypt: %v", name, err)
				}
				if !ct.Equal(refCT) {
					t.Fatalf("%s ciphertext diverges from software at %s", name, tc.name)
				}
				// Decrypt through a different backend than encrypted.
				other := backends[NameSoftware]
				if name == NameSoftware {
					other = backends[NameAccel]
				}
				pt, err := other.Decrypt(ctx, nonce, ct)
				if err != nil {
					t.Fatalf("%s->%s decrypt: %v", name, other.Name(), err)
				}
				if !pt.Equal(msg) {
					t.Fatalf("cross-substrate roundtrip %s->%s failed", name, other.Name())
				}
			}
		})
	}
}
