package backend

import (
	"context"
	"testing"

	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// TestToyInstanceAllBackends pins the carried ROADMAP bug: reduced
// (ToyParams) PASTA instances used to panic the cycle-accurate model
// (round-constant staging overflow in hw/accel.go), which also took down
// the SoC co-simulation built on it. Every substrate must now serve toy
// shapes, bit-identical to the software cipher, across several nonces —
// these shapes are the cheap currency of the serving-tier batching tests
// and the farm/scheduler work queued behind them.
func TestToyInstanceAllBackends(t *testing.T) {
	ctx := context.Background()
	for _, shape := range []struct{ t, rounds int }{{2, 1}, {4, 2}} {
		par, err := pasta.ToyParams(shape.t, shape.rounds, ff.P17)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			CipherParams: cipher.Params{T: par.T, Rounds: par.Rounds, Mod: par.Mod},
			KeySeed:      "toy-differential",
		}
		ref, err := Open(NameSoftware, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		for _, name := range []string{NameAccel, NameSoC} {
			b, err := Open(name, cfg)
			if err != nil {
				t.Fatalf("t=%d rounds=%d: Open(%q): %v", shape.t, shape.rounds, name, err)
			}
			defer b.Close()
			for nonce := uint64(0); nonce < 3; nonce++ {
				want, err := ref.KeyStreamBlocks(ctx, nonce, 0, 3)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.KeyStreamBlocks(ctx, nonce, 0, 3)
				if err != nil {
					t.Fatalf("t=%d rounds=%d nonce=%d on %s: %v",
						shape.t, shape.rounds, nonce, name, err)
				}
				if !got.Equal(want) {
					t.Fatalf("t=%d rounds=%d nonce=%d: %s keystream differs from software",
						shape.t, shape.rounds, nonce, name)
				}
			}
		}
	}
}
