// Package cipher promotes the symmetric HHE cipher to a first-class
// registry axis, mirroring the substrate registry in internal/backend.
// A cipher family (PASTA, HERA, MASTA, …) registers a Spec once from
// its package init; every other layer — backend.Config resolution, the
// serving tier's per-tenant session negotiation, the CLIs' -cipher
// flag, and the conformance/differential suites — dispatches through
// the registry instead of switching on cipher names. Adding a cipher
// is then a one-package drop-in: Register alone makes it reachable
// from every substrate that can run it.
package cipher

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"repro/internal/ff"
	"repro/internal/xof"
)

// BlockEngine is the minimal software keystream contract: write the
// keystream block KS(nonce, block) into dst (len(dst) must equal the
// instance's block size). Engines must be safe for concurrent use and
// allocation-free in steady state (pooled workspaces); the software
// backend fans bulk work out over goroutines sharing one engine.
type BlockEngine interface {
	KeyStreamInto(dst ff.Vec, nonce, block uint64) error
}

// Params carries the substrate-independent cipher parameters as they
// arrive from config files, CLI flags, or the wire's SessionOpen frame.
// The zero value selects the family's recommended instance on the
// default 17-bit modulus. Specs interpret the fields they understand
// and reject combinations they don't.
type Params struct {
	// Width selects a vetted modulus from ff.StandardModuli by bit
	// width; 0 means DefaultWidth.
	Width uint
	// Mod, when non-zero, overrides Width with an explicit modulus
	// (needed for non-standard toy instances).
	Mod ff.Modulus
	// Variant selects a named instance within the family using the
	// family's public numbering (PASTA: 3 or 4; 0 = family default).
	Variant int
	// Rounds overrides the round count where the family allows it
	// (HERA, toy instances); 0 = family default.
	Rounds int
	// T, when non-zero, requests a reduced/toy state size for
	// families that support one (PASTA's ToyParams path).
	T int
}

// DefaultWidth is the modulus bit width assumed when Params.Width is
// zero: the paper's 17-bit Fermat prime 65537.
const DefaultWidth uint = 17

// Modulus resolves the modulus selection shared by every family:
// explicit Mod wins, otherwise Width (defaulting to DefaultWidth) is
// looked up in ff.StandardModuli. This is the single home of the
// width-default logic that used to be repeated per scheme branch in
// backend.Config.resolve().
func (p Params) Modulus() (ff.Modulus, error) {
	if p.Mod.P() != 0 {
		return p.Mod, nil
	}
	w := p.Width
	if w == 0 {
		w = DefaultWidth
	}
	mod, ok := ff.StandardModuli[w]
	if !ok {
		return ff.Modulus{}, fmt.Errorf("cipher: no standard modulus with %d-bit width", w)
	}
	return mod, nil
}

// Instance is a fully resolved cipher instance: the outcome of
// Spec.Resolve on concrete Params. It is what substrates and the
// serving tier work with — block geometry, key length, modulus, and
// the family-native parameter value for substrate factories that need
// it (e.g. the accelerator model type-asserts Params to pasta.Params).
type Instance struct {
	// Spec is the family that resolved this instance.
	Spec Spec
	// Block is the number of keystream elements produced per block.
	Block int
	// KeyLen is the secret key length in field elements.
	KeyLen int
	// Mod is the resolved field modulus.
	Mod ff.Modulus
	// Params holds the family-native parameter struct (opaque here).
	Params any
	// Label names the instance for diagnostics and key fingerprints,
	// e.g. "PASTA-3(p=65537)". Two instances with different keystream
	// functions must have different labels: the serving tier folds
	// Spec.Name()+Label into its duplicate-nonce fingerprint.
	Label string
}

// Spec describes one cipher family. Implementations are stateless
// values registered once via Register; all per-instance state lives in
// the Instance and the engines it creates.
type Spec interface {
	// Name is the registry key and wire name, lowercase ("pasta").
	Name() string
	// Resolve validates Params and produces a concrete Instance.
	Resolve(p Params) (Instance, error)
	// NewRandomKey samples a fresh key for the instance from
	// crypto/rand.
	NewRandomKey(inst Instance) (ff.Vec, error)
	// KeyFromSeed derives a deterministic key from a seed string
	// (tests and reproducible examples only, not production).
	KeyFromSeed(inst Instance, seed string) ff.Vec
	// ValidateKey checks length and element ranges.
	ValidateKey(inst Instance, key ff.Vec) error
	// NewEngine binds a validated key to a software BlockEngine.
	NewEngine(inst Instance, key ff.Vec) (BlockEngine, error)
}

// Substrate names accepted by capability probes. They match the
// backend registry names for the non-software substrates.
const (
	SubstrateAccel = "accel"
	SubstrateSoC   = "soc"
)

// SubstrateProber is an optional Spec extension: families that can run
// on a hardware substrate report per-instance support. Returning nil
// means the (substrate, instance) pair is supported; a non-nil error
// explains why it is not (the backend wraps it in ErrUnsupported).
// Specs without this interface are software-only.
type SubstrateProber interface {
	ProbeSubstrate(substrate string, inst Instance) error
}

// Probe reports whether inst can run on the named non-software
// substrate, defaulting to "software-only" for specs that do not
// implement SubstrateProber.
func Probe(inst Instance, substrate string) error {
	if p, ok := inst.Spec.(SubstrateProber); ok {
		return p.ProbeSubstrate(substrate, inst)
	}
	return fmt.Errorf("cipher %s is software-only (no %s support)", inst.Spec.Name(), substrate)
}

// WipeKey zeroizes key material in place. Callers that copy keys out
// of wire frames or config structs use it to bound the lifetime of
// secrets in memory.
func WipeKey(k ff.Vec) {
	for i := range k {
		k[i] = 0
	}
}

// SeededKey is the shared deterministic key derivation: SHAKE128 over
// "<name>-key:<seed>", squeezed into n field elements. It reproduces
// the historical pasta.KeyFromSeed / hera.KeyFromSeed byte-for-byte
// (they used the same prefix convention), so golden vectors keyed by
// seed strings survive the registry refactor.
func SeededKey(name string, mod ff.Modulus, n int, seed string) ff.Vec {
	s := xof.NewSamplerBytes(mod, []byte(name+"-key:"+seed))
	return s.Vector(n, false)
}

// RandomKey samples n uniform field elements from crypto/rand by
// mask-and-reject, the shared implementation behind every family's
// NewRandomKey.
func RandomKey(name string, mod ff.Modulus, n int) (ff.Vec, error) {
	k := make(ff.Vec, n)
	var buf [8]byte
	for i := range k {
		for {
			if _, err := rand.Read(buf[:]); err != nil {
				return nil, fmt.Errorf("%s: sampling key: %w", name, err)
			}
			v := binary.LittleEndian.Uint64(buf[:]) & mod.Mask()
			if v < mod.P() {
				k[i] = v
				break
			}
		}
	}
	return k, nil
}

// CheckKey validates key length and element ranges, the shared
// implementation behind every family's ValidateKey.
func CheckKey(name string, mod ff.Modulus, n int, key ff.Vec) error {
	if len(key) != n {
		return fmt.Errorf("%s: key has %d elements, want %d", name, len(key), n)
	}
	for i, v := range key {
		if v >= mod.P() {
			return fmt.Errorf("%s: key element %d = %d out of range for %v", name, i, v, mod)
		}
	}
	return nil
}
