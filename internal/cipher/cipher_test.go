package cipher

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ff"
)

// fakeSpec is a minimal registry-only Spec for testing Register/Open.
type fakeSpec struct{ name string }

func (f fakeSpec) Name() string                       { return f.name }
func (f fakeSpec) Resolve(p Params) (Instance, error) { return Instance{Spec: f}, nil }
func (f fakeSpec) NewRandomKey(Instance) (ff.Vec, error) {
	return nil, nil
}
func (f fakeSpec) KeyFromSeed(Instance, string) ff.Vec { return nil }
func (f fakeSpec) ValidateKey(Instance, ff.Vec) error  { return nil }
func (f fakeSpec) NewEngine(Instance, ff.Vec) (BlockEngine, error) {
	return nil, errors.New("fake")
}

func TestRegistry(t *testing.T) {
	Register(fakeSpec{name: "fake-a"})
	Register(fakeSpec{name: "fake-b"})

	s, err := Open("fake-a")
	if err != nil {
		t.Fatalf("Open(fake-a): %v", err)
	}
	if s.Name() != "fake-a" {
		t.Fatalf("Open returned %q", s.Name())
	}

	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	found := 0
	for _, n := range names {
		if n == "fake-a" || n == "fake-b" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Names missing registered fakes: %v", names)
	}
}

func TestOpenUnknown(t *testing.T) {
	_, err := Open("no-such-cipher")
	if !errors.Is(err, ErrUnknownCipher) {
		t.Fatalf("want ErrUnknownCipher, got %v", err)
	}
	// The error must list registered names so flag errors and wire
	// rejections are self-describing.
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("Open error %q does not mention registered cipher %q", err, n)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeSpec{name: "fake-dup"})
	Register(fakeSpec{name: "fake-dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(fakeSpec{name: ""})
}

func TestParamsModulus(t *testing.T) {
	// Zero value → the default 17-bit modulus.
	m, err := Params{}.Modulus()
	if err != nil || m.Bits() != 17 {
		t.Fatalf("default modulus: %v bits=%d err=%v", m, m.Bits(), err)
	}
	// Width lookup.
	for _, w := range []uint{17, 33, 54, 60} {
		m, err := Params{Width: w}.Modulus()
		if err != nil || m.Bits() != w {
			t.Fatalf("width %d: got %d bits, err=%v", w, m.Bits(), err)
		}
	}
	// Unknown width.
	if _, err := (Params{Width: 13}).Modulus(); err == nil {
		t.Fatal("width 13 accepted")
	}
	// Explicit override wins.
	custom := ff.MustModulus(11)
	m, err = Params{Width: 17, Mod: custom}.Modulus()
	if err != nil || m.P() != 11 {
		t.Fatalf("explicit modulus not honored: %v err=%v", m, err)
	}
}

func TestProbeDefaultsToSoftwareOnly(t *testing.T) {
	inst := Instance{Spec: fakeSpec{name: "fake-probe"}}
	for _, sub := range []string{SubstrateAccel, SubstrateSoC} {
		if err := Probe(inst, sub); err == nil {
			t.Errorf("Probe(%s) on non-prober spec succeeded", sub)
		}
	}
}

func TestKeyHelpers(t *testing.T) {
	mod := ff.StandardModuli[17]

	// SeededKey is deterministic and in-range.
	a := SeededKey("fake", mod, 8, "s")
	b := SeededKey("fake", mod, 8, "s")
	if !a.Equal(b) {
		t.Fatal("SeededKey not deterministic")
	}
	if c := SeededKey("fake", mod, 8, "other"); c.Equal(a) {
		t.Fatal("SeededKey ignores seed")
	}
	if c := SeededKey("other", mod, 8, "s"); c.Equal(a) {
		t.Fatal("SeededKey ignores cipher name (cross-cipher key collision)")
	}

	k, err := RandomKey("fake", mod, 16)
	if err != nil || len(k) != 16 {
		t.Fatalf("RandomKey: len=%d err=%v", len(k), err)
	}
	if err := CheckKey("fake", mod, 16, k); err != nil {
		t.Fatalf("CheckKey rejects RandomKey output: %v", err)
	}
	if err := CheckKey("fake", mod, 8, k); err == nil {
		t.Error("CheckKey accepted wrong length")
	}
	bad := make(ff.Vec, 16)
	bad[5] = mod.P()
	if err := CheckKey("fake", mod, 16, bad); err == nil {
		t.Error("CheckKey accepted out-of-range element")
	}

	WipeKey(k)
	for i, v := range k {
		if v != 0 {
			t.Fatalf("WipeKey left k[%d]=%d", i, v)
		}
	}
}

func TestWipedErrorMentionsName(t *testing.T) {
	err := CheckKey("masta", ff.StandardModuli[17], 4, ff.Vec{1})
	if !strings.Contains(err.Error(), "masta") {
		t.Fatalf("CheckKey error %q does not name the cipher", err)
	}
	if !strings.Contains(fmt.Sprintf("%v", err), "want 4") {
		t.Fatalf("CheckKey error %q does not state expected length", err)
	}
}
