package cipher

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownCipher is returned (wrapped) by Open for names with no
// registered Spec, mirroring backend.ErrUnknownBackend. Match with
// errors.Is.
var ErrUnknownCipher = errors.New("unknown cipher")

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a cipher family to the registry. It panics on a
// duplicate or empty name — registration happens from package inits,
// so a collision is a programming error, not a runtime condition.
func Register(s Spec) {
	name := s.Name()
	if name == "" {
		panic("cipher: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cipher: Register called twice for %q", name))
	}
	registry[name] = s
}

// Open looks up a registered cipher family by name. Unknown names get
// an error wrapping ErrUnknownCipher that lists the registered names,
// so CLI flag errors and wire rejections are self-describing.
func Open(name string) (Spec, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownCipher, name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Names returns the registered cipher names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
