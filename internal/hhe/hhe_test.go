package hhe

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/pasta"
)

func setup(t *testing.T, size, rounds int) (*Client, *Server, Params) {
	t.Helper()
	par, err := NewToyParams(size, rounds)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "hhe-test")
	client, err := NewClient(par, key, []byte{42})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(par, client.Context(), client.EvalKeys())
	if err != nil {
		t.Fatal(err)
	}
	return client, server, par
}

// TestEvalKeystreamMatchesPlain is the core HHE correctness property:
// decrypting the homomorphically evaluated keystream must equal the plain
// PASTA keystream.
func TestEvalKeystreamMatchesPlain(t *testing.T) {
	client, server, par := setup(t, 2, 2)
	cts, err := server.EvalKeystream(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := client.DecryptResult(cts)
	cipher, _ := pasta.NewCipher(par.Pasta, pasta.KeyFromSeed(par.Pasta, "hhe-test"))
	want := cipher.KeyStream(7, 0)
	if !got.Equal(want) {
		t.Fatalf("homomorphic keystream %v != plain %v", got, want)
	}
}

// TestEndToEndTranscipher: Fig. 1's full round trip — client PASTA
// encryption, server homomorphic decryption, client FHE decryption.
func TestEndToEndTranscipher(t *testing.T) {
	client, server, _ := setup(t, 2, 2)
	msg := ff.Vec{12345, 54321}
	symCt, err := client.EncryptBlock(3, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	fheCts, err := server.Transcipher(3, 0, symCt)
	if err != nil {
		t.Fatal(err)
	}
	got := client.DecryptResult(fheCts)
	if !got.Equal(msg) {
		t.Fatalf("transciphered message %v != original %v", got, msg)
	}
}

// TestTranscipherMultipleBlocks: block counters separate keystreams.
func TestTranscipherMultipleBlocks(t *testing.T) {
	client, server, _ := setup(t, 2, 1)
	for block := uint64(0); block < 2; block++ {
		msg := ff.Vec{1000 * (block + 1), 2000 * (block + 1)}
		symCt, err := client.EncryptBlock(9, block, msg)
		if err != nil {
			t.Fatal(err)
		}
		fheCts, err := server.Transcipher(9, block, symCt)
		if err != nil {
			t.Fatal(err)
		}
		if got := client.DecryptResult(fheCts); !got.Equal(msg) {
			t.Fatalf("block %d: %v != %v", block, got, msg)
		}
	}
}

// TestServerComputesOnTransciphered: after transciphering, the server can
// keep computing homomorphically (add two encrypted messages).
func TestServerComputesOnTransciphered(t *testing.T) {
	client, server, par := setup(t, 2, 1)
	m1 := ff.Vec{11, 22}
	m2 := ff.Vec{100, 200}
	ct1, err := client.EncryptBlock(1, 0, m1)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := client.EncryptBlock(1, 1, m2)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := server.Transcipher(1, 0, ct1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := server.Transcipher(1, 1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	sum0 := server.ctx.Add(f1[0], f2[0])
	sum1 := server.ctx.Add(f1[1], f2[1])
	res := client.DecryptResult([]*bfv.Ciphertext{sum0, sum1})
	want := ff.Vec{par.Pasta.Mod.Add(m1[0], m2[0]), par.Pasta.Mod.Add(m1[1], m2[1])}
	if !res.Equal(want) {
		t.Fatalf("homomorphic sum %v != %v", res, want)
	}
}

func TestValidation(t *testing.T) {
	par, err := NewToyParams(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewToyParams(0, 1); err == nil {
		t.Fatal("t=0 accepted")
	}
	client, err := NewClient(par, pasta.KeyFromSeed(par.Pasta, "v"), []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	keys := client.EvalKeys()
	keys.Key = keys.Key[:1]
	if _, err := NewServer(par, client.Context(), keys); err == nil {
		t.Fatal("short encrypted key accepted")
	}
	bad := par
	bad.BFV.T = 97
	if bad.Validate() == nil {
		t.Fatal("modulus mismatch accepted")
	}
	if _, err := client.EncryptBlock(0, 0, ff.NewVec(par.Pasta.T+1)); err == nil {
		t.Fatal("oversized block accepted")
	}
	server, _ := NewServer(par, client.Context(), client.EvalKeys())
	if _, err := server.Transcipher(0, 0, ff.NewVec(par.Pasta.T+1)); err == nil {
		t.Fatal("oversized symmetric block accepted")
	}
}

// TestClientPrecomputedKeystream: masking with a precomputed keystream
// must equal on-the-fly bulk encryption, and the server must transcipher
// such ciphertexts exactly as any other.
func TestClientPrecomputedKeystream(t *testing.T) {
	client, server, par := setup(t, 2, 1)
	tt := par.Pasta.T
	msg := ff.Vec{11, 22, 33, 44, 55}[:tt+1] // spans two blocks
	nonce := uint64(6)

	ks, err := client.PrecomputeKeystream(nonce, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2*tt {
		t.Fatalf("precomputed keystream has %d elements, want %d", len(ks), 2*tt)
	}
	fromKS, err := client.MaskWith(ks, msg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := client.Encrypt(nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !fromKS.Equal(direct) {
		t.Fatal("precomputed-keystream encryption differs from bulk Encrypt")
	}
	back, err := client.DecryptSymmetric(nonce, fromKS)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(msg) {
		t.Fatal("symmetric decrypt failed")
	}

	// Transcipher the first block of the precomputed-keystream ciphertext.
	cts, err := server.Transcipher(nonce, 0, fromKS[:tt])
	if err != nil {
		t.Fatal(err)
	}
	if got := client.DecryptResult(cts); !got.Equal(msg[:tt]) {
		t.Fatalf("transciphered precomputed block = %v, want %v", got, msg[:tt])
	}

	// Validation paths.
	if _, err := client.MaskWith(ks[:1], msg); err == nil {
		t.Fatal("short keystream accepted")
	}
	if _, err := client.MaskWith(ks, ff.Vec{par.Pasta.Mod.P()}); err == nil {
		t.Fatal("out-of-range message accepted")
	}
}

// TestClientOnAccelBackend runs the client's symmetric side on the
// cycle-accurate accelerator model: ciphertexts must be bit-identical to
// the software backend's (same key, same toy instance), and the backend
// must account the work it modelled.
func TestClientOnAccelBackend(t *testing.T) {
	par, err := NewToyParams(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "hhe-accel")
	onAccel, err := NewClientOn(backend.NameAccel, par, key, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	onSoftware, err := NewClient(par, key, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	msg := ff.Vec{3, 1, 4, 1, 5}
	ctA, err := onAccel.Encrypt(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	ctS, err := onSoftware.Encrypt(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !ctA.Equal(ctS) {
		t.Fatal("accelerator-backed client ciphertext differs from software")
	}
	back, err := onSoftware.DecryptSymmetric(9, ctA)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(msg) {
		t.Fatal("cross-substrate HHE roundtrip failed")
	}
	st := onAccel.SymmetricBackend().Stats()
	if st.Backend != backend.NameAccel || st.Blocks == 0 || st.AccelCycles == 0 {
		t.Fatalf("accel backend did not account modelled work: %+v", st)
	}
}
