package hhe

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// TestEvalKeysBlobRoundTrip: marshal → unmarshal → re-marshal of the
// full eval-key blob must be bit-identical (the networked tier compares
// server replies byte-for-byte against a local oracle, so any encoding
// nondeterminism here would surface as spurious mismatches), and a
// server built from the unmarshaled material must evaluate the exact
// same circuit.
func TestEvalKeysBlobRoundTrip(t *testing.T) {
	client, local, par := packedSetup(t, 4, 2)
	// Marshal the exact key set the local oracle runs on: every call to
	// PackedEvalKeys (and so EvalKeysBlob) draws fresh encryption
	// randomness, producing a different-but-equivalent key set.
	blob, err := MarshalPackedEvalKeys(par.BFV, client.Context(), local.keys)
	if err != nil {
		t.Fatal(err)
	}
	bp, ctx, keys, err := UnmarshalPackedEvalKeys(blob)
	if err != nil {
		t.Fatal(err)
	}
	if bp.N != par.BFV.N || bp.T != par.BFV.T {
		t.Fatalf("unmarshaled params (N=%d, T=%d) != (N=%d, T=%d)", bp.N, bp.T, par.BFV.N, par.BFV.T)
	}
	again, err := MarshalPackedEvalKeys(bp, ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("eval-key blob does not round-trip bit-identically (%d vs %d bytes)", len(blob), len(again))
	}

	remote, err := NewPackedServer(Params{Pasta: par.Pasta, BFV: bp}, ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.EvalKeystream(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.EvalKeystream(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.MarshalBinary(local.Context())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatal("server rebuilt from unmarshaled keys evaluates a different circuit")
	}
}

// TestEvalKeysBlobRejectsCorruption: truncations and magic damage must
// error, never panic.
func TestEvalKeysBlobRejectsCorruption(t *testing.T) {
	client, _, _ := packedSetup(t, 2, 1)
	blob, err := client.EvalKeysBlob()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 4, 7, len(blob) / 2, len(blob) - 1} {
		if _, _, _, err := UnmarshalPackedEvalKeys(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, _, _, err := UnmarshalPackedEvalKeys(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	long := append(append([]byte(nil), blob...), 0)
	if _, _, _, err := UnmarshalPackedEvalKeys(long); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestNoiseBudgetPositiveAfterPackedCircuit: after the full packed
// transcipher circuit at toy parameters the result must retain positive
// noise budget — the tier-1 stand-in for the production-parameter check
// below.
func TestNoiseBudgetPositiveAfterPackedCircuit(t *testing.T) {
	client, server, _ := packedSetup(t, 4, 2)
	msg := ff.Vec{1, 2, 3, 4}
	symCt, err := client.EncryptBlock(9, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := server.Transcipher(9, 0, symCt)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := client.PackedNoiseBudget(ct, msg)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Fatalf("noise budget exhausted after packed circuit: %d bits", budget)
	}
	t.Logf("post-transcipher noise budget: %d bits", budget)
}

// TestNoiseBudgetProductionParams evaluates the packed circuit at the
// paper's PASTA-3 (t=128, 3 rounds) and PASTA-4 (t=32, 4 rounds)
// shapes over p = 2^16+1 and asserts the decryption noise budget stays
// positive. The textbook BFV here is orders of magnitude slower than a
// production library, so the run is opt-in: HHE_HEAVY_TESTS=1. (The BFV
// ring degrees are sized for circuit depth, not 128-bit security — the
// assertion is about noise accounting, not parameter security.)
func TestNoiseBudgetProductionParams(t *testing.T) {
	if os.Getenv("HHE_HEAVY_TESTS") == "" {
		t.Skip("production-parameter circuit is minutes of CPU; set HHE_HEAVY_TESTS=1 to run")
	}
	cases := []struct {
		name    string
		variant pasta.Variant
		n, nQ   int
	}{
		{"PASTA-4", pasta.Pasta4, 512, 8},
		{"PASTA-3", pasta.Pasta3, 1024, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pp, err := pasta.NewParams(tc.variant, ff.P17)
			if err != nil {
				t.Fatal(err)
			}
			bp, err := bfv.NewParams(tc.n, 55, tc.nQ, pp.Mod.P())
			if err != nil {
				t.Fatal(err)
			}
			par := Params{Pasta: pp, BFV: bp}
			key := pasta.KeyFromSeed(pp, "production-noise")
			client, err := NewClient(par, key, []byte{13})
			if err != nil {
				t.Fatal(err)
			}
			keys, err := client.PackedEvalKeys()
			if err != nil {
				t.Fatal(err)
			}
			server, err := NewPackedServer(par, client.Context(), keys)
			if err != nil {
				t.Fatal(err)
			}
			msg := make(ff.Vec, pp.T)
			for i := range msg {
				msg[i] = uint64(i * i % 65537)
			}
			symCt, err := client.EncryptBlock(1, 0, msg)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := server.Transcipher(1, 0, symCt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := client.DecryptPacked(ct, pp.T)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(msg) {
				t.Fatal("production-parameter transcipher does not decrypt to the message")
			}
			budget, err := client.PackedNoiseBudget(ct, msg)
			if err != nil {
				t.Fatal(err)
			}
			if budget <= 0 {
				t.Fatalf("noise budget exhausted: %d bits", budget)
			}
			t.Logf("%s: post-transcipher noise budget %d bits", tc.name, budget)
		})
	}
}
