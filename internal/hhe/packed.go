package hhe

import (
	"fmt"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/pasta"
)

// Packed evaluation: instead of one BFV ciphertext per PASTA state
// element (the scalar path in hhe.go), each t-element state half lives in
// the slots of a single batched ciphertext, replicated with period t so
// slot rotations act modulo t. The affine layer becomes the classic
// diagonal method — t slot-wise plaintext products over t rotations — and
// the Feistel shift becomes one rotation plus masking. This is the
// evaluation style the PASTA designers use server-side, and it cuts the
// ciphertext count per block from 2t to 2.

// PackedEvalKeys bundles the server material for packed evaluation.
type PackedEvalKeys struct {
	PK   *bfv.PublicKey
	RLK  *bfv.RelinKey
	GKs  *bfv.GaloisKeys
	KeyL *bfv.Ciphertext // replicated packing of K[0:t]
	KeyR *bfv.Ciphertext // replicated packing of K[t:2t]
}

// PackedEvalKeys produces the packed server material: Galois keys for
// all t-1 rotation steps and the two replicated key ciphertexts.
func (c *Client) PackedEvalKeys() (PackedEvalKeys, error) {
	enc, err := bfv.NewEncoder(c.ctx)
	if err != nil {
		return PackedEvalKeys{}, err
	}
	t := c.params.Pasta.T
	if enc.Slots()%t != 0 {
		return PackedEvalKeys{}, fmt.Errorf("hhe: block size %d does not divide slot count %d", t, enc.Slots())
	}
	steps := make([]int, 0, t-1)
	for k := 1; k < t; k++ {
		steps = append(steps, k)
	}
	gks := c.ctx.GenGaloisKeys(c.prng, c.sk, steps)

	key := c.key
	encryptHalf := func(half ff.Vec) (*bfv.Ciphertext, error) {
		pt, err := enc.EncodeReplicated(half)
		if err != nil {
			return nil, err
		}
		return c.ctx.EncryptSymmetric(c.sk, pt, c.prng), nil
	}
	kl, err := encryptHalf(ff.Vec(key[:t]))
	if err != nil {
		return PackedEvalKeys{}, err
	}
	kr, err := encryptHalf(ff.Vec(key[t:]))
	if err != nil {
		return PackedEvalKeys{}, err
	}
	return PackedEvalKeys{PK: c.pk, RLK: c.rlk, GKs: gks, KeyL: kl, KeyR: kr}, nil
}

// DecryptPacked decrypts a packed ciphertext and returns its first n
// logical elements.
func (c *Client) DecryptPacked(ct *bfv.Ciphertext, n int) (ff.Vec, error) {
	enc, err := bfv.NewEncoder(c.ctx)
	if err != nil {
		return nil, err
	}
	return ff.Vec(enc.DecodeReplicated(c.ctx.Decrypt(ct, c.sk), n)), nil
}

// PackedServer evaluates the PASTA decryption circuit on batched
// ciphertexts.
type PackedServer struct {
	params Params
	ctx    *bfv.Context
	enc    *bfv.Encoder
	keys   PackedEvalKeys

	maskNot0  bfv.Plaintext // replicated [0,1,1,…,1]
	maskOnly0 bfv.Plaintext // replicated [1,0,0,…,0]
}

// NewPackedServer builds the server from public parameters and keys.
func NewPackedServer(p Params, ctx *bfv.Context, keys PackedEvalKeys) (*PackedServer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	enc, err := bfv.NewEncoder(ctx)
	if err != nil {
		return nil, err
	}
	t := p.Pasta.T
	not0 := make([]uint64, t)
	only0 := make([]uint64, t)
	only0[0] = 1
	for i := 1; i < t; i++ {
		not0[i] = 1
	}
	mN, err := enc.EncodeReplicated(not0)
	if err != nil {
		return nil, err
	}
	m0, err := enc.EncodeReplicated(only0)
	if err != nil {
		return nil, err
	}
	return &PackedServer{params: p, ctx: ctx, enc: enc, keys: keys, maskNot0: mN, maskOnly0: m0}, nil
}

// EvalKeystream homomorphically computes the packed Enc(KS(nonce, block)).
func (s *PackedServer) EvalKeystream(nonce, block uint64) (*bfv.Ciphertext, error) {
	pp := s.params.Pasta
	mod := pp.Mod

	l := s.keys.KeyL.Clone()
	r := s.keys.KeyR.Clone()

	schedule := pasta.DeriveSchedule(pp, nonce, block)
	for layerIdx, layer := range schedule {
		var err error
		l, err = s.affine(l, pasta.ExpandMatrix(mod, layer.MatSeedL), layer.RCL)
		if err != nil {
			return nil, err
		}
		r, err = s.affine(r, pasta.ExpandMatrix(mod, layer.MatSeedR), layer.RCR)
		if err != nil {
			return nil, err
		}
		l, r = s.mix(l, r)
		switch {
		case layerIdx < pp.Rounds-1:
			l, r, err = s.feistel(l, r)
		case layerIdx == pp.Rounds-1:
			l, err = s.cube(l)
			if err != nil {
				return nil, err
			}
			r, err = s.cube(r)
		}
		if err != nil {
			return nil, err
		}
	}
	return l, nil // truncation: the keystream is the left half
}

// Transcipher converts a symmetric ciphertext block into one packed FHE
// ciphertext of the message.
func (s *PackedServer) Transcipher(nonce, block uint64, symCt ff.Vec) (*bfv.Ciphertext, error) {
	t := s.params.Pasta.T
	if len(symCt) > t {
		return nil, fmt.Errorf("hhe: block has %d elements, max %d", len(symCt), t)
	}
	ks, err := s.EvalKeystream(nonce, block)
	if err != nil {
		return nil, err
	}
	padded := make([]uint64, t)
	copy(padded, symCt)
	pt, err := s.enc.EncodeReplicated(padded)
	if err != nil {
		return nil, err
	}
	return s.ctx.SubPlainFrom(pt, ks), nil
}

// TranscipherWith is the payload-dependent tail of Transcipher for a
// precomputed Enc(KS): keystream evaluation is independent of the
// symmetric ciphertext, so a cached ks reduces a repeat block to one
// plaintext encode and one SubPlainFrom (the serving tier's Enc(KS)
// block cache relies on this).
func (s *PackedServer) TranscipherWith(ks *bfv.Ciphertext, symCt ff.Vec) (*bfv.Ciphertext, error) {
	t := s.params.Pasta.T
	if len(symCt) > t {
		return nil, fmt.Errorf("hhe: block has %d elements, max %d", len(symCt), t)
	}
	padded := make([]uint64, t)
	copy(padded, symCt)
	pt, err := s.enc.EncodeReplicated(padded)
	if err != nil {
		return nil, err
	}
	return s.ctx.SubPlainFrom(pt, ks), nil
}

// Params returns the parameter set the server evaluates under.
func (s *PackedServer) Params() Params { return s.params }

// Context returns the server's BFV context (for serializing results).
func (s *PackedServer) Context() *bfv.Context { return s.ctx }

// PackedNoiseBudget measures the remaining noise budget (bits) of a
// packed ciphertext against the expected message — the client-side
// health check after a transcipher round trip.
func (c *Client) PackedNoiseBudget(ct *bfv.Ciphertext, msg ff.Vec) (int, error) {
	enc, err := bfv.NewEncoder(c.ctx)
	if err != nil {
		return 0, err
	}
	t := c.params.Pasta.T
	padded := make([]uint64, t)
	copy(padded, msg)
	pt, err := enc.EncodeReplicated(padded)
	if err != nil {
		return 0, err
	}
	return c.ctx.NoiseBudget(ct, c.sk, pt), nil
}

// affine computes M·x + rc by the diagonal method:
// Σ_d rot(x, d) ⊙ diag_d(M), with diag_d(M)[i] = M[i][(i+d) mod t].
func (s *PackedServer) affine(x *bfv.Ciphertext, m *ff.Matrix, rc ff.Vec) (*bfv.Ciphertext, error) {
	t := s.params.Pasta.T
	var acc *bfv.Ciphertext
	for d := 0; d < t; d++ {
		diag := make([]uint64, t)
		for i := 0; i < t; i++ {
			diag[i] = m.At(i, (i+d)%t)
		}
		pt, err := s.enc.EncodeReplicated(diag)
		if err != nil {
			return nil, err
		}
		rot, err := s.ctx.RotateColumns(x, d, s.keys.GKs)
		if err != nil {
			return nil, err
		}
		term := s.ctx.MulPlain(rot, pt)
		if acc == nil {
			acc = term
		} else {
			acc = s.ctx.Add(acc, term)
		}
	}
	rcPt, err := s.enc.EncodeReplicated(rc)
	if err != nil {
		return nil, err
	}
	return s.ctx.AddPlain(acc, rcPt), nil
}

// mix computes (2L+R, L+2R) with three ciphertext additions.
func (s *PackedServer) mix(l, r *bfv.Ciphertext) (*bfv.Ciphertext, *bfv.Ciphertext) {
	sum := s.ctx.Add(l, r)
	return s.ctx.Add(l, sum), s.ctx.Add(r, sum)
}

// feistel applies x[j] += x[j-1]² over the concatenated 2t-element state
// held as two packed halves: one rotation by t-1 realizes the index
// shift, masks keep slot 0 of the left half fixed and carry sq_L[t-1]
// across the half boundary into slot 0 of the right half.
func (s *PackedServer) feistel(l, r *bfv.Ciphertext) (*bfv.Ciphertext, *bfv.Ciphertext, error) {
	t := s.params.Pasta.T
	sqL, err := s.ctx.Mul(l, l, s.keys.RLK)
	if err != nil {
		return nil, nil, err
	}
	sqR, err := s.ctx.Mul(r, r, s.keys.RLK)
	if err != nil {
		return nil, nil, err
	}
	rotL, err := s.ctx.RotateColumns(sqL, t-1, s.keys.GKs)
	if err != nil {
		return nil, nil, err
	}
	rotR, err := s.ctx.RotateColumns(sqR, t-1, s.keys.GKs)
	if err != nil {
		return nil, nil, err
	}
	newL := s.ctx.Add(l, s.ctx.MulPlain(rotL, s.maskNot0))
	newR := s.ctx.Add(r, s.ctx.Add(
		s.ctx.MulPlain(rotR, s.maskNot0),
		s.ctx.MulPlain(rotL, s.maskOnly0),
	))
	return newL, newR, nil
}

// cube computes x³ slot-wise.
func (s *PackedServer) cube(x *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	sq, err := s.ctx.Mul(x, x, s.keys.RLK)
	if err != nil {
		return nil, err
	}
	return s.ctx.Mul(sq, x, s.keys.RLK)
}
