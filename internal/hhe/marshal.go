package hhe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bfv"
)

// Eval-key blob: the self-describing upload a transciphering client
// sends the server once per session (wire TypeEvalKeys, chunked — tens
// of MB at production parameters). The envelope leads with the BFV
// parameter set so the receiver can build the exact Context the key
// material was generated under before parsing it, then frames each key
// section with a u32 length: params, public key, relin key, Galois
// keys, and the two replicated encrypted key halves.

const ekMagic = 0x48484b31 // "HHK",1

// maxEvalKeySection bounds a single framed section inside the blob; the
// wire layer separately bounds the whole upload (wire.MaxEvalKeysTotal).
const maxEvalKeySection = 1 << 28

// MarshalPackedEvalKeys serializes the packed server material together
// with the BFV parameters it was generated under.
func MarshalPackedEvalKeys(p bfv.Params, ctx *bfv.Context, k PackedEvalKeys) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, ekMagic)
	sections := make([][]byte, 0, 6)
	pb, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sections = append(sections, pb)
	for _, m := range []interface {
		MarshalBinary(*bfv.Context) ([]byte, error)
	}{k.PK, k.RLK, k.GKs, k.KeyL, k.KeyR} {
		b, err := m.MarshalBinary(ctx)
		if err != nil {
			return nil, err
		}
		sections = append(sections, b)
	}
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out, nil
}

// UnmarshalPackedEvalKeys parses an eval-key blob, reconstructing the
// BFV context from the embedded parameters.
func UnmarshalPackedEvalKeys(data []byte) (bfv.Params, *bfv.Context, PackedEvalKeys, error) {
	var k PackedEvalKeys
	var p bfv.Params
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != ekMagic {
		return p, nil, k, fmt.Errorf("hhe: bad eval-key blob")
	}
	off := 4
	section := func() ([]byte, error) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("hhe: truncated eval-key blob")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n > maxEvalKeySection || off+n > len(data) {
			return nil, fmt.Errorf("hhe: truncated eval-key blob")
		}
		s := data[off : off+n]
		off += n
		return s, nil
	}
	pb, err := section()
	if err != nil {
		return p, nil, k, err
	}
	if p, err = bfv.UnmarshalParams(pb); err != nil {
		return p, nil, k, err
	}
	ctx, err := bfv.NewContext(p)
	if err != nil {
		return p, nil, k, err
	}
	for _, parse := range []func([]byte) error{
		func(b []byte) (e error) { k.PK, e = ctx.UnmarshalPublicKey(b); return },
		func(b []byte) (e error) { k.RLK, e = ctx.UnmarshalRelinKey(b); return },
		func(b []byte) (e error) { k.GKs, e = ctx.UnmarshalGaloisKeys(b); return },
		func(b []byte) (e error) { k.KeyL, e = ctx.UnmarshalCiphertext(b); return },
		func(b []byte) (e error) { k.KeyR, e = ctx.UnmarshalCiphertext(b); return },
	} {
		s, err := section()
		if err != nil {
			return p, nil, k, err
		}
		if err := parse(s); err != nil {
			return p, nil, k, err
		}
	}
	if off != len(data) {
		return p, nil, k, fmt.Errorf("hhe: trailing bytes in eval-key blob")
	}
	return p, ctx, k, nil
}

// EvalKeysBlob generates the packed server material and serializes it
// for upload — the client side of the session enrollment handshake.
// Each call draws fresh encryption randomness, so two blobs from the
// same client are equivalent but not byte-identical; callers that need
// a matching local oracle should unmarshal the same blob they upload.
func (c *Client) EvalKeysBlob() ([]byte, error) {
	keys, err := c.PackedEvalKeys()
	if err != nil {
		return nil, err
	}
	return MarshalPackedEvalKeys(c.params.BFV, c.ctx, keys)
}
