// Package hhe implements the hybrid homomorphic encryption workflow of
// Fig. 1 of the paper:
//
//  1. The client homomorphically encrypts its PASTA key K under the FHE
//     scheme and ships it to the server once.
//  2. The client symmetrically encrypts message blocks with PASTA (cheap,
//     no ciphertext expansion) and sends them.
//  3. The server evaluates the PASTA decryption circuit homomorphically
//     ("homomorphic HHE decryption"), obtaining FHE ciphertexts of the
//     messages that it can then compute on.
//
// The homomorphic evaluator replays the exact public schedule of the
// cipher (matrices, round constants) and evaluates affine layers with
// scalar multiplications, Mix with additions, and the S-boxes with
// relinearized ciphertext multiplications over the BFV scheme.
//
// Substitution note (DESIGN.md): the paper's server is out of scope of
// its hardware contribution; we demonstrate the protocol end to end on a
// reduced PASTA instance (ToyParams) because textbook BFV multiplication
// at full PASTA depth/width is computationally heavy in a pure-Go model.
// The circuit code is generic over pasta.Params.
package hhe

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/bfv"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/pasta"
	"repro/internal/rlwe"
)

// Params couples a PASTA instance with a BFV instance. The BFV plaintext
// modulus must equal the PASTA field prime so ciphertexts trans-cipher
// exactly.
type Params struct {
	Pasta pasta.Params
	BFV   bfv.Params
}

// NewToyParams returns a reduced HHE parameter set suitable for
// end-to-end tests and examples: PASTA over p = 65537 with block size t
// and the given rounds, BFV with enough modulus for the circuit depth.
func NewToyParams(t, rounds int) (Params, error) {
	pp, err := pasta.ToyParams(t, rounds, ff.P17)
	if err != nil {
		return Params{}, err
	}
	// Depth budget: one scalar-mult layer per affine (≈19 bits each) and
	// one ct-ct multiplication per S-box level (≈30 bits each). Four
	// 55-bit primes cover toy instances up to rounds = 2 comfortably.
	bp, err := bfv.NewParams(1024, 55, 4, pp.Mod.P())
	if err != nil {
		return Params{}, err
	}
	return Params{Pasta: pp, BFV: bp}, nil
}

// Validate checks the cross-scheme constraint.
func (p Params) Validate() error {
	if err := p.Pasta.Validate(); err != nil {
		return err
	}
	if p.BFV.T != p.Pasta.Mod.P() {
		return fmt.Errorf("hhe: BFV plaintext modulus %d != PASTA prime %d", p.BFV.T, p.Pasta.Mod.P())
	}
	return nil
}

// EncryptedKey is the homomorphically encrypted PASTA key: one BFV
// ciphertext per key element (scalar encoding).
type EncryptedKey []*bfv.Ciphertext

// Client owns both key materials: the PASTA key and the FHE key pair.
// The symmetric side runs on an execution backend (internal/backend), so
// the client-side encryption can execute on the software cipher, the
// cycle-accurate accelerator model, or the SoC co-simulation — the
// substrate the paper's cryptoprocessor occupies in Fig. 1.
type Client struct {
	params Params
	key    pasta.Key
	sym    backend.BlockCipher
	ctx    *bfv.Context
	sk     *bfv.SecretKey
	pk     *bfv.PublicKey
	rlk    *bfv.RelinKey
	prng   *rlwe.PRNG
}

// NewClient creates a client with fresh FHE keys (deterministic from the
// seed, for reproducibility) and the given PASTA key, encrypting on the
// software backend.
func NewClient(p Params, key pasta.Key, seed []byte) (*Client, error) {
	return NewClientOn(backend.NameSoftware, p, key, seed)
}

// NewClientOn is NewClient with the symmetric side on the named
// execution backend ("software", "accel", "soc", …). Reduced (toy) PASTA
// instances work on any substrate whose constraints they meet.
func NewClientOn(backendName string, p Params, key pasta.Key, seed []byte) (*Client, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := key.Validate(p.Pasta); err != nil {
		return nil, err
	}
	sym, err := backend.Open(backendName, backend.Config{
		CipherParams: cipher.Params{T: p.Pasta.T, Rounds: p.Pasta.Rounds, Mod: p.Pasta.Mod},
		Key:          ff.Vec(key),
	})
	if err != nil {
		return nil, err
	}
	ctx, err := bfv.NewContext(p.BFV)
	if err != nil {
		return nil, err
	}
	g := rlwe.NewPRNG("hhe-client", seed)
	sk, pk, rlk := ctx.KeyGen(g)
	return &Client{
		params: p,
		key:    pasta.Key(ff.Vec(key).Clone()),
		sym:    sym,
		ctx:    ctx, sk: sk, pk: pk, rlk: rlk, prng: g,
	}, nil
}

// SymmetricBackend exposes the execution backend the symmetric side runs
// on (for stats inspection and substrate-specific tooling).
func (c *Client) SymmetricBackend() backend.BlockCipher { return c.sym }

// TransportKey produces the one-time homomorphic encryption of the PASTA
// key that the server needs (step 1 of the protocol).
func (c *Client) TransportKey() EncryptedKey {
	ek := make(EncryptedKey, len(c.key))
	for i, v := range c.key {
		ek[i] = c.ctx.EncryptSymmetric(c.sk, c.ctx.EncodeScalar(v), c.prng)
	}
	return ek
}

// EncryptBlock symmetrically encrypts up to t field elements — the cheap
// client-side operation the paper's cryptoprocessor accelerates.
func (c *Client) EncryptBlock(nonce, block uint64, msg ff.Vec) (ff.Vec, error) {
	t := c.params.Pasta.T
	if len(msg) > t {
		return nil, fmt.Errorf("hhe: block has %d elements, max %d", len(msg), t)
	}
	ks := ff.NewVec(t)
	if err := c.sym.KeyStreamInto(context.Background(), ks, nonce, block); err != nil {
		return nil, err
	}
	return c.MaskWith(ks, msg)
}

// Encrypt symmetrically encrypts an arbitrary-length message on the
// client's execution backend (keystream blocks are CTR-independent and
// fan out over the backend's worker pool on the software substrate).
func (c *Client) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	return c.sym.Encrypt(context.Background(), nonce, msg)
}

// DecryptSymmetric inverts Encrypt on the symmetric (PASTA) side — the
// sanity path a client uses to check a ciphertext locally; the server
// never holds this key and transciphers instead.
func (c *Client) DecryptSymmetric(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	return c.sym.Decrypt(context.Background(), nonce, ct)
}

// PrecomputeKeystream computes the keystream for blocks [0, blocks) of
// the nonce in parallel, concatenated block-major. Because the keystream
// depends only on (key, nonce, counter), a client can generate it before
// the data to encrypt exists and later mask messages with a cheap
// elementwise addition — the latency-hiding trick CTR-style HHE clients
// (and Presto's batched pipeline) rely on.
func (c *Client) PrecomputeKeystream(nonce uint64, blocks int) (ff.Vec, error) {
	return c.sym.KeyStreamBlocks(context.Background(), nonce, 0, blocks)
}

// MaskWith encrypts msg using a precomputed keystream slice (from
// PrecomputeKeystream): ct[i] = msg[i] + ks[i] mod p.
func (c *Client) MaskWith(ks, msg ff.Vec) (ff.Vec, error) {
	if len(ks) < len(msg) {
		return nil, fmt.Errorf("hhe: precomputed keystream has %d elements, message %d", len(ks), len(msg))
	}
	p := c.params.Pasta.Mod.P()
	ct := ff.NewVec(len(msg))
	for i := range msg {
		if msg[i] >= p {
			return nil, fmt.Errorf("hhe: message element %d = %d out of range", i, msg[i])
		}
		ct[i] = c.params.Pasta.Mod.Add(msg[i], ks[i])
	}
	return ct, nil
}

// DecryptResult decrypts BFV ciphertexts returned by the server.
func (c *Client) DecryptResult(cts []*bfv.Ciphertext) ff.Vec {
	out := ff.NewVec(len(cts))
	for i, ct := range cts {
		out[i] = c.ctx.Decrypt(ct, c.sk).DecodeScalar()
	}
	return out
}

// EvalKeys bundles what the server needs.
type EvalKeys struct {
	PK  *bfv.PublicKey
	RLK *bfv.RelinKey
	Key EncryptedKey
}

// EvalKeys exports the server-side material (public by construction).
func (c *Client) EvalKeys() EvalKeys {
	return EvalKeys{PK: c.pk, RLK: c.rlk, Key: c.TransportKey()}
}

// Context exposes the BFV context (shared parameters are public).
func (c *Client) Context() *bfv.Context { return c.ctx }

// Server evaluates the homomorphic PASTA decryption circuit.
type Server struct {
	params Params
	ctx    *bfv.Context
	keys   EvalKeys
}

// NewServer builds the server from public parameters and eval keys.
func NewServer(p Params, ctx *bfv.Context, keys EvalKeys) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(keys.Key) != p.Pasta.StateSize() {
		return nil, fmt.Errorf("hhe: encrypted key has %d elements, want %d", len(keys.Key), p.Pasta.StateSize())
	}
	return &Server{params: p, ctx: ctx, keys: keys}, nil
}

// EvalKeystream homomorphically computes Enc(KS(nonce, block)): the PASTA
// permutation over encrypted state with public matrices and constants.
func (s *Server) EvalKeystream(nonce, block uint64) ([]*bfv.Ciphertext, error) {
	pp := s.params.Pasta
	t := pp.T
	mod := pp.Mod

	// Encrypted state initialized with the transported key.
	state := make([]*bfv.Ciphertext, pp.StateSize())
	for i, ct := range s.keys.Key {
		state[i] = ct.Clone()
	}

	schedule := pasta.DeriveSchedule(pp, nonce, block)
	for layerIdx, layer := range schedule {
		ml := pasta.ExpandMatrix(mod, layer.MatSeedL)
		mr := pasta.ExpandMatrix(mod, layer.MatSeedR)
		if err := s.evalAffineHalf(state[:t], ml, layer.RCL); err != nil {
			return nil, err
		}
		if err := s.evalAffineHalf(state[t:], mr, layer.RCR); err != nil {
			return nil, err
		}
		s.evalMix(state)
		switch {
		case layerIdx < pp.Rounds-1:
			if err := s.evalFeistel(state); err != nil {
				return nil, err
			}
		case layerIdx == pp.Rounds-1:
			if err := s.evalCube(state); err != nil {
				return nil, err
			}
		}
	}
	return state[:t], nil
}

// Transcipher converts a PASTA ciphertext block into FHE ciphertexts of
// the underlying message: Enc(m_i) = c_i − Enc(KS_i).
func (s *Server) Transcipher(nonce, block uint64, symCt ff.Vec) ([]*bfv.Ciphertext, error) {
	if len(symCt) > s.params.Pasta.T {
		return nil, fmt.Errorf("hhe: block has %d elements, max %d", len(symCt), s.params.Pasta.T)
	}
	ks, err := s.EvalKeystream(nonce, block)
	if err != nil {
		return nil, err
	}
	out := make([]*bfv.Ciphertext, len(symCt))
	for i, c := range symCt {
		out[i] = s.ctx.SubPlainFrom(s.ctx.EncodeScalar(c), ks[i])
	}
	return out, nil
}

// evalAffineHalf sets half ← M·half + rc homomorphically (scalar
// multiplications and additions only).
func (s *Server) evalAffineHalf(half []*bfv.Ciphertext, m *ff.Matrix, rc ff.Vec) error {
	t := len(half)
	out := make([]*bfv.Ciphertext, t)
	for i := 0; i < t; i++ {
		row := m.Row(i)
		var acc *bfv.Ciphertext
		for j := 0; j < t; j++ {
			if row[j] == 0 {
				continue
			}
			term := s.ctx.MulScalar(half[j], row[j])
			if acc == nil {
				acc = term
			} else {
				acc = s.ctx.Add(acc, term)
			}
		}
		if acc == nil {
			// All-zero row cannot occur for invertible matrices, but keep
			// the circuit total.
			acc = s.ctx.MulScalar(half[0], 0)
		}
		out[i] = s.ctx.AddPlain(acc, s.ctx.EncodeScalar(rc[i]))
	}
	copy(half, out)
	return nil
}

// evalMix sets (L, R) ← (2L + R, L + 2R) with additions only, mirroring
// the hardware's three-addition formulation.
func (s *Server) evalMix(state []*bfv.Ciphertext) {
	t := len(state) / 2
	for i := 0; i < t; i++ {
		sum := s.ctx.Add(state[i], state[t+i])
		state[i] = s.ctx.Add(state[i], sum)
		state[t+i] = s.ctx.Add(state[t+i], sum)
	}
}

// evalFeistel applies x[j] += x[j-1]² from the top index down.
func (s *Server) evalFeistel(state []*bfv.Ciphertext) error {
	for j := len(state) - 1; j >= 1; j-- {
		sq, err := s.ctx.Mul(state[j-1], state[j-1], s.keys.RLK)
		if err != nil {
			return err
		}
		state[j] = s.ctx.Add(state[j], sq)
	}
	return nil
}

// evalCube applies x ← x³ elementwise (square, then multiply).
func (s *Server) evalCube(state []*bfv.Ciphertext) error {
	for j := range state {
		sq, err := s.ctx.Mul(state[j], state[j], s.keys.RLK)
		if err != nil {
			return err
		}
		cube, err := s.ctx.Mul(sq, state[j], s.keys.RLK)
		if err != nil {
			return err
		}
		state[j] = cube
	}
	return nil
}
