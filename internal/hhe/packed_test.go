package hhe

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/pasta"
)

func packedSetup(t *testing.T, size, rounds int) (*Client, *PackedServer, Params) {
	t.Helper()
	par, err := NewToyParams(size, rounds)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "packed-test")
	client, err := NewClient(par, key, []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := client.PackedEvalKeys()
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewPackedServer(par, client.Context(), keys)
	if err != nil {
		t.Fatal(err)
	}
	return client, server, par
}

// TestPackedKeystreamMatchesPlain: the packed (diagonal-method, rotation-
// based) evaluation must reproduce the plain PASTA keystream exactly.
func TestPackedKeystreamMatchesPlain(t *testing.T) {
	client, server, par := packedSetup(t, 4, 2)
	ct, err := server.EvalKeystream(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.DecryptPacked(ct, par.Pasta.T)
	if err != nil {
		t.Fatal(err)
	}
	cipher, _ := pasta.NewCipher(par.Pasta, pasta.KeyFromSeed(par.Pasta, "packed-test"))
	want := cipher.KeyStream(5, 0)
	if !got.Equal(want) {
		t.Fatalf("packed keystream %v != plain %v", got, want)
	}
}

// TestPackedTranscipherEndToEnd: the full packed protocol round trip.
func TestPackedTranscipherEndToEnd(t *testing.T) {
	client, server, _ := packedSetup(t, 4, 2)
	msg := ff.Vec{111, 22222, 3, 65000}
	symCt, err := client.EncryptBlock(8, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	fheCt, err := server.Transcipher(8, 0, symCt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.DecryptPacked(fheCt, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(msg) {
		t.Fatalf("packed transcipher %v != %v", got, msg)
	}
}

// TestPackedMatchesScalarServer: both evaluation strategies implement the
// same circuit.
func TestPackedMatchesScalarServer(t *testing.T) {
	par, err := NewToyParams(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "both")
	client, err := NewClient(par, key, []byte{4})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewServer(par, client.Context(), client.EvalKeys())
	if err != nil {
		t.Fatal(err)
	}
	pkeys, err := client.PackedEvalKeys()
	if err != nil {
		t.Fatal(err)
	}
	packed, err := NewPackedServer(par, client.Context(), pkeys)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := scalar.EvalKeystream(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	scalarKS := client.DecryptResult(sc)

	pc, err := packed.EvalKeystream(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	packedKS, err := client.DecryptPacked(pc, par.Pasta.T)
	if err != nil {
		t.Fatal(err)
	}
	if !scalarKS.Equal(packedKS) {
		t.Fatalf("scalar %v != packed %v", scalarKS, packedKS)
	}
}

func TestPackedValidation(t *testing.T) {
	_, server, par := packedSetup(t, 2, 1)
	if _, err := server.Transcipher(0, 0, ff.NewVec(par.Pasta.T+1)); err == nil {
		t.Fatal("oversized block accepted")
	}
}
