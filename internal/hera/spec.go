package hera

import (
	"fmt"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// CipherName is the registry and wire name of the HERA family.
const CipherName = "hera"

// DefaultRounds is the recommended round count (HERA-80/128 use 5).
const DefaultRounds = 5

// spec implements cipher.Spec for HERA.
type spec struct{}

func init() { cipher.Register(spec{}) }

func (spec) Name() string { return CipherName }

// Resolve maps wire-level params onto a HERA instance: Rounds (0 =
// DefaultRounds) over the resolved modulus. HERA has a fixed 4×4
// state, so Variant/T requests are rejected rather than ignored.
func (spec) Resolve(p cipher.Params) (cipher.Instance, error) {
	mod, err := p.Modulus()
	if err != nil {
		return cipher.Instance{}, err
	}
	if p.Variant != 0 {
		return cipher.Instance{}, fmt.Errorf("hera: has no variant %d (family has a single shape)", p.Variant)
	}
	if p.T != 0 && p.T != StateSize {
		return cipher.Instance{}, fmt.Errorf("hera: state size is fixed at %d (got t=%d)", StateSize, p.T)
	}
	rounds := p.Rounds
	if rounds == 0 {
		rounds = DefaultRounds
	}
	par, err := NewParams(rounds, mod)
	if err != nil {
		return cipher.Instance{}, err
	}
	return cipher.Instance{
		Spec:   spec{},
		Block:  StateSize,
		KeyLen: StateSize,
		Mod:    mod,
		Params: par,
		Label:  fmt.Sprintf("HERA(r=%d, %v)", par.Rounds, mod),
	}, nil
}

func (spec) NewRandomKey(inst cipher.Instance) (ff.Vec, error) {
	return cipher.RandomKey(CipherName, inst.Mod, inst.KeyLen)
}

// KeyFromSeed matches the historical hera.KeyFromSeed derivation
// ("hera-key:"+seed).
func (spec) KeyFromSeed(inst cipher.Instance, seed string) ff.Vec {
	return cipher.SeededKey(CipherName, inst.Mod, inst.KeyLen, seed)
}

func (spec) ValidateKey(inst cipher.Instance, key ff.Vec) error {
	return cipher.CheckKey(CipherName, inst.Mod, inst.KeyLen, key)
}

func (spec) NewEngine(inst cipher.Instance, key ff.Vec) (cipher.BlockEngine, error) {
	return NewCipher(inst.Params.(Params), Key(key))
}

// ProbeSubstrate: the cycle-accurate accelerator model has a HERA
// datapath; the SoC co-simulation has no HERA peripheral.
func (spec) ProbeSubstrate(substrate string, inst cipher.Instance) error {
	switch substrate {
	case cipher.SubstrateAccel:
		return nil
	case cipher.SubstrateSoC:
		return fmt.Errorf("the SoC has no hera peripheral")
	default:
		return fmt.Errorf("unknown substrate %q", substrate)
	}
}
