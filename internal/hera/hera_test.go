package hera

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/xof"
)

func testCipher(t *testing.T) *Cipher {
	t.Helper()
	par := MustParams(5, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "test"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	for _, mod := range []ff.Modulus{ff.P17, ff.P33, ff.P54} {
		par := MustParams(5, mod)
		c, err := NewCipher(par, KeyFromSeed(par, "rt"))
		if err != nil {
			t.Fatal(err)
		}
		msg := ff.NewVec(40) // 3 blocks, last partial
		for i := range msg {
			msg[i] = uint64(i*i+3) % mod.P()
		}
		ct, err := c.Encrypt(11, msg)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Equal(msg) {
			t.Fatal("ciphertext equals plaintext")
		}
		back, err := c.Decrypt(11, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(msg) {
			t.Fatalf("%v: roundtrip failed", mod)
		}
	}
}

func TestKeyStreamDeterministic(t *testing.T) {
	c := testCipher(t)
	if !c.KeyStream(5, 2).Equal(c.KeyStream(5, 2)) {
		t.Fatal("keystream not deterministic")
	}
	if c.KeyStream(5, 2).Equal(c.KeyStream(5, 3)) {
		t.Fatal("blocks not separated")
	}
	if c.KeyStream(5, 2).Equal(c.KeyStream(6, 2)) {
		t.Fatal("nonces not separated")
	}
}

func TestXOFDemand(t *testing.T) {
	par := MustParams(5, ff.P17)
	// (rounds+1)·16 = 96 — more than 6× below PASTA-4's 640.
	if got := par.XOFElements(); got != 96 {
		t.Fatalf("XOF demand = %d, want 96", got)
	}
	if par.MulCount() >= 1000 {
		t.Fatalf("mul count = %d, expected far below PASTA", par.MulCount())
	}
}

// TestMixColumnsInvertible: the circulant layer is a bijection; applying
// the matrix inverse recovers the state.
func TestMixLayersInvertible(t *testing.T) {
	mod := ff.P17
	s := xof.NewSampler(mod, 1, 1)
	state := s.Vector(StateSize, false)
	orig := state.Clone()

	// Build the 16×16 matrix of MixColumns by probing unit vectors, then
	// verify invertibility and invert the transformation.
	mat := ff.NewMatrix(StateSize)
	for j := 0; j < StateSize; j++ {
		probe := ff.NewVec(StateSize)
		probe[j] = 1
		MixColumns(mod, probe)
		for i := 0; i < StateSize; i++ {
			mat.Set(i, j, probe[i])
		}
	}
	inv, ok := mat.Inverse(mod)
	if !ok {
		t.Fatal("MixColumns is singular")
	}
	MixColumns(mod, state)
	back := ff.NewVec(StateSize)
	inv.MulVec(mod, back, state)
	if !back.Equal(orig) {
		t.Fatal("MixColumns inverse failed")
	}
}

func TestMixRowsPermutationOfMixColumns(t *testing.T) {
	// MixRows = T ∘ MixColumns ∘ T where T is the transpose; check via a
	// random state.
	mod := ff.P17
	s := xof.NewSampler(mod, 2, 2)
	state := s.Vector(StateSize, false)

	viaRows := state.Clone()
	MixRows(mod, viaRows)

	transposed := transpose(state)
	MixColumns(mod, transposed)
	want := transpose(transposed)
	if !viaRows.Equal(want) {
		t.Fatal("MixRows != Tᵀ∘MixColumns∘T")
	}
}

func transpose(v ff.Vec) ff.Vec {
	out := ff.NewVec(StateSize)
	for r := 0; r < StateDim; r++ {
		for c := 0; c < StateDim; c++ {
			out[c*StateDim+r] = v[r*StateDim+c]
		}
	}
	return out
}

func TestDiffusion(t *testing.T) {
	par := MustParams(5, ff.P17)
	k1 := KeyFromSeed(par, "d")
	k2 := Key(ff.Vec(k1).Clone())
	k2[3] = par.Mod.Add(k2[3], 1)
	c1, _ := NewCipher(par, k1)
	c2, _ := NewCipher(par, k2)
	a, b := c1.KeyStream(0, 0), c2.KeyStream(0, 0)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < StateSize-2 {
		t.Fatalf("only %d/%d elements changed", diff, StateSize)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewParams(0, ff.P17); err == nil {
		t.Fatal("rounds=0 accepted")
	}
	par := MustParams(4, ff.P17)
	if _, err := NewCipher(par, make(Key, 3)); err == nil {
		t.Fatal("short key accepted")
	}
	bad := KeyFromSeed(par, "x")
	bad[0] = par.Mod.P()
	if _, err := NewCipher(par, bad); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	c, _ := NewCipher(par, KeyFromSeed(par, "y"))
	if _, err := c.EncryptBlock(0, 0, ff.NewVec(17)); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := c.EncryptBlock(0, 0, ff.Vec{par.Mod.P()}); err == nil {
		t.Fatal("out-of-range message accepted")
	}
}

func TestNewRandomKey(t *testing.T) {
	par := MustParams(5, ff.P17)
	k, err := NewRandomKey(par)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(par); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKeyStream(b *testing.B) {
	par := MustParams(5, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.KeyStream(uint64(i), 0)
	}
}
