package hera

import (
	"testing"

	"repro/internal/ff"
)

// Regression tests: hera's public constructors must return errors for bad
// input rather than panic; only the Must* variants panic (kept for tests).

func TestNewCipherRejectsBadInput(t *testing.T) {
	good := MustParams(5, ff.P17)
	if _, err := NewCipher(Params{Rounds: 0, Mod: ff.P17}, KeyFromSeed(good, "x")); err == nil {
		t.Fatal("NewCipher accepted zero rounds")
	}
	if _, err := NewCipher(Params{Rounds: 5}, KeyFromSeed(good, "x")); err == nil {
		t.Fatal("NewCipher accepted an uninitialized modulus")
	}
	if _, err := NewCipher(good, Key(ff.NewVec(StateSize-1))); err == nil {
		t.Fatal("NewCipher accepted a short key")
	}
	bad := Key(ff.NewVec(StateSize))
	bad[3] = ff.P17.P() // out of range
	if _, err := NewCipher(good, bad); err == nil {
		t.Fatal("NewCipher accepted an out-of-range key element")
	}
}

func TestNewParamsRejectsBadModulus(t *testing.T) {
	// p ≡ 1 (mod 3): the cube S-box is not a bijection.
	m, err := ff.NewModulus(7681)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewParams(4, m); err == nil {
		t.Fatal("NewParams accepted p ≡ 1 (mod 3)")
	}
}

func TestMustParamsStillPanicsForTests(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParams did not panic on zero rounds")
		}
	}()
	MustParams(0, ff.P17)
}
