// Package hera implements a HERA-style HHE-enabling stream cipher
// (Cho et al., ASIACRYPT 2021 [10]) — the paper's Sec. VI names
// implementing "the other HHE enabling SE schemes" and comparing their
// hardware impact as future scope, which this package enables.
//
// Reconstruction note: this follows the published HERA structure — a
// 4×4 state over F_p, a randomized key schedule rk_i = k ⊙ rc_i with
// XOF-derived nonzero constants, rounds of MixColumns/MixRows with the
// circulant (2,3,1,1) matrix, the cube S-box, and a doubled linear layer
// in the finalization — with the same XOF/rejection-sampling conventions
// as our PASTA implementation. It is a faithful structural reconstruction
// for hardware-cost comparison, not a bit-compatible HERA test-vector
// implementation.
//
// The hardware-relevant contrast with PASTA: HERA's linear layers are
// *fixed* small-constant matrices (no per-block invertible matrix
// generation), so its XOF demand is only (r+1)·16 elements versus
// PASTA-4's 640 — which moves the bottleneck away from Keccak entirely.
package hera

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/ff"
	"repro/internal/xof"
)

// StateDim is the side of the square state (4×4 = 16 elements).
const StateDim = 4

// StateSize is the number of field elements in state, key and keystream.
const StateSize = StateDim * StateDim

// Params fixes a HERA instance.
type Params struct {
	Rounds int // HERA uses 4 or 5
	Mod    ff.Modulus
}

// NewParams validates and returns an instance description.
func NewParams(rounds int, mod ff.Modulus) (Params, error) {
	if rounds < 1 {
		return Params{}, fmt.Errorf("hera: rounds = %d too small", rounds)
	}
	if mod.P()%3 != 2 {
		return Params{}, fmt.Errorf("hera: p mod 3 = %d; cube S-box is not a bijection", mod.P()%3)
	}
	for _, d := range []uint64{5, 7} { // det(circ(2,3,1,1)) = -35
		if mod.P() == d {
			return Params{}, fmt.Errorf("hera: MixColumns matrix singular mod %d", d)
		}
	}
	return Params{Rounds: rounds, Mod: mod}, nil
}

// MustParams panics on error.
func MustParams(rounds int, mod ff.Modulus) Params {
	p, err := NewParams(rounds, mod)
	if err != nil {
		panic(err)
	}
	return p
}

// XOFElements returns the pseudo-random demand per block: one 16-element
// round-constant vector per ARK, rounds+1 ARKs.
func (p Params) XOFElements() int { return StateSize * (p.Rounds + 1) }

// MulCount returns the modular multiplications per keystream block:
// the key schedule (k ⊙ rc per ARK) plus two multiplications per cube
// (the MixColumns/MixRows constants 2 and 3 are shift-adds, not
// multiplier work — the key hardware difference from PASTA).
func (p Params) MulCount() int {
	ark := StateSize * (p.Rounds + 1)
	cubes := 2 * StateSize * p.Rounds
	return ark + cubes
}

// Key is the HERA secret key (16 elements).
type Key ff.Vec

// NewRandomKey samples a key from crypto/rand.
func NewRandomKey(p Params) (Key, error) {
	k := make(Key, StateSize)
	var buf [8]byte
	for i := range k {
		for {
			if _, err := rand.Read(buf[:]); err != nil {
				return nil, fmt.Errorf("hera: sampling key: %w", err)
			}
			v := binary.LittleEndian.Uint64(buf[:]) & p.Mod.Mask()
			if v < p.Mod.P() {
				k[i] = v
				break
			}
		}
	}
	return k, nil
}

// KeyFromSeed derives a deterministic key (tests/examples only).
func KeyFromSeed(p Params, seed string) Key {
	s := xof.NewSamplerBytes(p.Mod, []byte("hera-key:"+seed))
	return Key(s.Vector(StateSize, false))
}

// Validate checks key length and ranges.
func (k Key) Validate(p Params) error {
	if len(k) != StateSize {
		return fmt.Errorf("hera: key has %d elements, want %d", len(k), StateSize)
	}
	for i, v := range k {
		if v >= p.Mod.P() {
			return fmt.Errorf("hera: key element %d out of range", i)
		}
	}
	return nil
}

// Cipher is a keyed HERA instance.
type Cipher struct {
	par Params
	key Key
	// pool recycles *xof.Sampler values so KeyStreamInto is
	// allocation-free in steady state.
	pool sync.Pool
}

// NewCipher validates and builds the cipher.
func NewCipher(par Params, key Key) (*Cipher, error) {
	if _, err := NewParams(par.Rounds, par.Mod); err != nil {
		return nil, err
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	return &Cipher{par: par, key: Key(ff.Vec(key).Clone())}, nil
}

// Params returns the instance parameters.
func (c *Cipher) Params() Params { return c.par }

// KeyStream produces the 16-element keystream block for (nonce, block).
func (c *Cipher) KeyStream(nonce, block uint64) ff.Vec {
	out := ff.NewVec(StateSize)
	_ = c.KeyStreamInto(out, nonce, block)
	return out
}

// permute runs the keyed HERA permutation in place on state, drawing
// the randomized key schedule from s.
func (c *Cipher) permute(state ff.Vec, s *xof.Sampler) {
	m := c.par.Mod
	c.addRoundKey(state, s) // ARK_0
	for r := 1; r < c.par.Rounds; r++ {
		MixColumns(m, state)
		MixRows(m, state)
		Cube(m, state)
		c.addRoundKey(state, s) // ARK_r
	}
	// Finalization: doubled linear layer around the last cube.
	MixColumns(m, state)
	MixRows(m, state)
	Cube(m, state)
	MixColumns(m, state)
	MixRows(m, state)
	c.addRoundKey(state, s) // ARK_rounds... final
}

// KeyStreamInto writes the keystream block KS(nonce, block) into dst,
// which must have exactly StateSize elements — the same buffer-filling
// contract as pasta.Cipher.KeyStreamInto, so substrate-generic callers
// (internal/backend) can treat all cipher families uniformly. The
// permutation runs in place in dst with a pooled, reseeded sampler, so
// steady-state calls perform zero heap allocations (the BlockEngine
// contract of internal/cipher).
func (c *Cipher) KeyStreamInto(dst ff.Vec, nonce, block uint64) error {
	if len(dst) != StateSize {
		return fmt.Errorf("hera: KeyStreamInto dst has %d elements, want %d", len(dst), StateSize)
	}
	s, _ := c.pool.Get().(*xof.Sampler)
	if s == nil {
		s = xof.NewSampler(c.par.Mod, nonce, block)
	} else {
		s.Reseed(nonce, block)
	}
	copy(dst, c.key)
	c.permute(dst, s)
	c.pool.Put(s)
	return nil
}

// addRoundKey draws a nonzero 16-element constant vector and adds
// k ⊙ rc to the state (HERA's randomized key schedule).
func (c *Cipher) addRoundKey(state ff.Vec, s *xof.Sampler) {
	m := c.par.Mod
	for i := range state {
		rc := s.NextNonzero()
		state[i] = m.Add(state[i], m.Mul(c.key[i], rc))
	}
}

// EncryptBlock encrypts up to 16 elements.
func (c *Cipher) EncryptBlock(nonce, block uint64, msg ff.Vec) (ff.Vec, error) {
	if len(msg) > StateSize {
		return nil, fmt.Errorf("hera: block has %d elements, max %d", len(msg), StateSize)
	}
	ks := c.KeyStream(nonce, block)
	out := ff.NewVec(len(msg))
	for i := range msg {
		if msg[i] >= c.par.Mod.P() {
			return nil, fmt.Errorf("hera: message element %d out of range", i)
		}
		out[i] = c.par.Mod.Add(msg[i], ks[i])
	}
	return out, nil
}

// DecryptBlock inverts EncryptBlock.
func (c *Cipher) DecryptBlock(nonce, block uint64, ct ff.Vec) (ff.Vec, error) {
	if len(ct) > StateSize {
		return nil, fmt.Errorf("hera: block has %d elements, max %d", len(ct), StateSize)
	}
	ks := c.KeyStream(nonce, block)
	out := ff.NewVec(len(ct))
	for i := range ct {
		if ct[i] >= c.par.Mod.P() {
			return nil, fmt.Errorf("hera: ciphertext element %d out of range", i)
		}
		out[i] = c.par.Mod.Sub(ct[i], ks[i])
	}
	return out, nil
}

// Encrypt encrypts an arbitrary-length message block by block.
func (c *Cipher) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	return c.stream(nonce, msg, true)
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	return c.stream(nonce, ct, false)
}

func (c *Cipher) stream(nonce uint64, in ff.Vec, encrypt bool) (ff.Vec, error) {
	out := ff.NewVec(len(in))
	for block := 0; block*StateSize < len(in); block++ {
		lo, hi := block*StateSize, (block+1)*StateSize
		if hi > len(in) {
			hi = len(in)
		}
		var (
			chunk ff.Vec
			err   error
		)
		if encrypt {
			chunk, err = c.EncryptBlock(nonce, uint64(block), in[lo:hi])
		} else {
			chunk, err = c.DecryptBlock(nonce, uint64(block), in[lo:hi])
		}
		if err != nil {
			return nil, fmt.Errorf("hera: block %d: %w", block, err)
		}
		copy(out[lo:hi], chunk)
	}
	return out, nil
}

// MixColumns multiplies each state column by the circulant matrix
// circ(2, 3, 1, 1) — AES-like, computed with shift-adds only.
func MixColumns(m ff.Modulus, state ff.Vec) {
	for col := 0; col < StateDim; col++ {
		mixQuad(m, state, col, StateDim) // stride 4 walks a column
	}
}

// MixRows multiplies each state row by the same circulant matrix.
func MixRows(m ff.Modulus, state ff.Vec) {
	for row := 0; row < StateDim; row++ {
		mixQuad(m, state, row*StateDim, 1)
	}
}

// mixQuad applies circ(2,3,1,1) to the four elements at base, base+stride,
// base+2·stride, base+3·stride. 2x = x+x and 3x = 2x+x: additions only.
func mixQuad(m ff.Modulus, state ff.Vec, base, stride int) {
	a := state[base]
	b := state[base+stride]
	c := state[base+2*stride]
	d := state[base+3*stride]
	two := func(x uint64) uint64 { return m.Add(x, x) }
	three := func(x uint64) uint64 { return m.Add(m.Add(x, x), x) }
	state[base] = m.Add(m.Add(two(a), three(b)), m.Add(c, d))
	state[base+stride] = m.Add(m.Add(a, two(b)), m.Add(three(c), d))
	state[base+2*stride] = m.Add(m.Add(a, b), m.Add(two(c), three(d)))
	state[base+3*stride] = m.Add(m.Add(three(a), b), m.Add(c, two(d)))
}

// Cube applies x ← x³ elementwise.
func Cube(m ff.Modulus, state ff.Vec) {
	for i := range state {
		state[i] = m.Cube(state[i])
	}
}
