// Package masta implements a MASTA-style HHE-enabling stream cipher
// (Ha et al., "Masta: An HE-Friendly Cipher Using Modular Arithmetic",
// IEEE Access 2020) — PASTA's F_p sibling and the third cipher on the
// registry axis.
//
// Reconstruction note: like internal/hera, this is a faithful
// *structural* reconstruction using this repo's XOF and rejection
// sampling conventions, not a bit-compatible test-vector port. The
// shape is the published one: a t-element state initialized with the
// key, R rounds of (XOF-derived affine layer, elementwise cube S-box),
// one final affine layer, and a key feed-forward producing t keystream
// elements. Each affine layer draws a seed row that expands into an
// invertible t×t matrix via the same sequential PHOTON/LED recurrence
// PASTA uses (the generation hardware is shared on the accelerator),
// plus a round-constant vector.
//
// The hardware-relevant contrast with PASTA: MASTA keeps a single
// t-element state (no two-half split, no Mix), so per block it needs
// one matrix pipeline instead of two and outputs the whole state, at
// the cost of more rounds. XOF demand is 2t(R+1) elements versus
// PASTA's 4t(R+1).
package masta

import (
	"fmt"
	"sync"

	"repro/internal/ff"
	"repro/internal/xof"
)

// DefaultT is the default block/state size in field elements.
const DefaultT = 64

// DefaultRounds is the default round count (the MASTA-5 shape).
const DefaultRounds = 5

// Params fixes a MASTA instance.
type Params struct {
	T      int // state, key and keystream size in field elements
	Rounds int // S-box rounds R; affine layers = R + 1
	Mod    ff.Modulus
}

// NewParams validates and returns an instance description.
func NewParams(t, rounds int, mod ff.Modulus) (Params, error) {
	if t < 2 {
		return Params{}, fmt.Errorf("masta: t = %d too small", t)
	}
	if rounds < 1 {
		return Params{}, fmt.Errorf("masta: rounds = %d too small", rounds)
	}
	if mod.P() == 0 {
		return Params{}, fmt.Errorf("masta: modulus not initialized")
	}
	if mod.P()%3 != 2 {
		return Params{}, fmt.Errorf("masta: p mod 3 = %d; cube S-box is not a bijection", mod.P()%3)
	}
	return Params{T: t, Rounds: rounds, Mod: mod}, nil
}

// MustParams panics on error.
func MustParams(t, rounds int, mod ff.Modulus) Params {
	p, err := NewParams(t, rounds, mod)
	if err != nil {
		panic(err)
	}
	return p
}

// AffineLayers returns R + 1.
func (p Params) AffineLayers() int { return p.Rounds + 1 }

// XOFElements returns the pseudo-random demand per block: one t-element
// matrix seed row and one t-element round-constant vector per affine
// layer.
func (p Params) XOFElements() int { return 2 * p.T * p.AffineLayers() }

func (p Params) String() string {
	return fmt.Sprintf("MASTA-%d(t=%d, %v)", p.Rounds, p.T, p.Mod)
}

// Key is the MASTA secret key: t uniformly random field elements.
type Key ff.Vec

// NewRandomKey samples a key from crypto/rand.
func NewRandomKey(p Params) (Key, error) {
	k, err := randomKey(p.Mod, p.T)
	return Key(k), err
}

// KeyFromSeed derives a deterministic key from a seed string via
// SHAKE128 over "masta-key:"+seed (tests/examples only).
func KeyFromSeed(p Params, seed string) Key {
	s := xof.NewSamplerBytes(p.Mod, []byte("masta-key:"+seed))
	return Key(s.Vector(p.T, false))
}

// Validate checks key length and element ranges.
func (k Key) Validate(p Params) error {
	if len(k) != p.T {
		return fmt.Errorf("masta: key has %d elements, want %d", len(k), p.T)
	}
	for i, v := range k {
		if v >= p.Mod.P() {
			return fmt.Errorf("masta: key element %d = %d out of range for %v", i, v, p.Mod)
		}
	}
	return nil
}

// Cipher is a keyed MASTA instance. Like pasta.Cipher it is safe for
// concurrent use: params and key are read-only after construction and
// all scratch lives in a sync.Pool, so any number of goroutines may
// share one *Cipher.
type Cipher struct {
	par Params
	key Key
	// pool of *workspace; see engine.go.
	pool sync.Pool
}

// NewCipher validates and builds the cipher.
func NewCipher(par Params, key Key) (*Cipher, error) {
	if _, err := NewParams(par.T, par.Rounds, par.Mod); err != nil {
		return nil, err
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	return &Cipher{par: par, key: key}, nil
}

// Params returns the instance parameters.
func (c *Cipher) Params() Params { return c.par }

// Key returns a copy of the secret key.
func (c *Cipher) Key() Key { return Key(ff.Vec(c.key).Clone()) }

// KeyStream returns the keystream block KS(nonce, block), allocating
// the result. Hot paths use KeyStreamInto.
func (c *Cipher) KeyStream(nonce, block uint64) ff.Vec {
	out := ff.NewVec(c.par.T)
	_ = c.KeyStreamInto(out, nonce, block)
	return out
}

// EncryptBlock returns msg + KS(nonce, block) elementwise.
func (c *Cipher) EncryptBlock(nonce, block uint64, msg ff.Vec) (ff.Vec, error) {
	if len(msg) > c.par.T {
		return nil, fmt.Errorf("masta: block has %d elements, max %d", len(msg), c.par.T)
	}
	ks := c.KeyStream(nonce, block)
	out := ff.NewVec(len(msg))
	for i := range msg {
		out[i] = c.par.Mod.Add(msg[i], ks[i])
	}
	return out, nil
}

// DecryptBlock inverts EncryptBlock.
func (c *Cipher) DecryptBlock(nonce, block uint64, ct ff.Vec) (ff.Vec, error) {
	if len(ct) > c.par.T {
		return nil, fmt.Errorf("masta: block has %d elements, max %d", len(ct), c.par.T)
	}
	ks := c.KeyStream(nonce, block)
	out := ff.NewVec(len(ct))
	for i := range ct {
		out[i] = c.par.Mod.Sub(ct[i], ks[i])
	}
	return out, nil
}
