package masta

import (
	"fmt"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// CipherName is the registry and wire name of the MASTA family.
const CipherName = "masta"

// spec implements cipher.Spec for MASTA. MASTA has no hardware
// substrate in this repo (software-only), so the spec deliberately
// does NOT implement cipher.SubstrateProber — the registry's default
// "software-only" probe answer covers it, which is exactly what keeps
// accel/soc opens failing with ErrUnsupported.
type spec struct{}

func init() { cipher.Register(spec{}) }

func (spec) Name() string { return CipherName }

// Resolve maps wire-level params onto a MASTA instance. The family's
// public numbering is MASTA-R (rounds): Variant, when non-zero, names
// the round count, and must agree with Rounds if both are given. T
// overrides the state size (DefaultT otherwise).
func (spec) Resolve(p cipher.Params) (cipher.Instance, error) {
	mod, err := p.Modulus()
	if err != nil {
		return cipher.Instance{}, err
	}
	rounds := p.Rounds
	if p.Variant != 0 {
		if rounds != 0 && rounds != p.Variant {
			return cipher.Instance{}, fmt.Errorf("masta: variant %d and rounds %d disagree", p.Variant, rounds)
		}
		rounds = p.Variant
	}
	if rounds == 0 {
		rounds = DefaultRounds
	}
	t := p.T
	if t == 0 {
		t = DefaultT
	}
	par, err := NewParams(t, rounds, mod)
	if err != nil {
		return cipher.Instance{}, err
	}
	return cipher.Instance{
		Spec:   spec{},
		Block:  par.T,
		KeyLen: par.T,
		Mod:    mod,
		Params: par,
		Label:  par.String(),
	}, nil
}

func (spec) NewRandomKey(inst cipher.Instance) (ff.Vec, error) {
	return cipher.RandomKey(CipherName, inst.Mod, inst.KeyLen)
}

// KeyFromSeed matches KeyFromSeed's "masta-key:"+seed derivation.
func (spec) KeyFromSeed(inst cipher.Instance, seed string) ff.Vec {
	return cipher.SeededKey(CipherName, inst.Mod, inst.KeyLen, seed)
}

func (spec) ValidateKey(inst cipher.Instance, key ff.Vec) error {
	return cipher.CheckKey(CipherName, inst.Mod, inst.KeyLen, key)
}

func (spec) NewEngine(inst cipher.Instance, key ff.Vec) (cipher.BlockEngine, error) {
	return NewCipher(inst.Params.(Params), Key(key))
}
