package masta

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ff"
)

func modOrSkip(t *testing.T, w uint) ff.Modulus {
	m, ok := ff.StandardModuli[w]
	if !ok {
		t.Fatalf("no standard modulus for width %d", w)
	}
	return m
}

// Golden vectors produced by KeyStreamSequential (the naive reference)
// and pinned so both implementations are anchored against silent drift.
func TestGoldenVectors(t *testing.T) {
	par := MustParams(8, 3, modOrSkip(t, 17))
	key := KeyFromSeed(par, "golden")
	wantKey := ff.Vec{14267, 29567, 53601, 29312, 30673, 409, 31918, 24339}
	if !ff.Vec(key).Equal(wantKey) {
		t.Fatalf("key derivation drifted: got %v want %v", key, wantKey)
	}
	cases := []struct {
		nonce, block uint64
		want         ff.Vec
	}{
		{1, 0, ff.Vec{1773, 42884, 27933, 37073, 2768, 51311, 9872, 18035}},
		{1, 1, ff.Vec{56871, 65491, 2715, 49416, 19497, 43341, 22682, 48496}},
		{7, 9, ff.Vec{47662, 61721, 52182, 60108, 49527, 56148, 57916, 41419}},
	}
	c, err := NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if got := KeyStreamSequential(par, key, tc.nonce, tc.block); !got.Equal(tc.want) {
			t.Errorf("reference KS(%d,%d) = %v, want %v", tc.nonce, tc.block, got, tc.want)
		}
		if got := c.KeyStream(tc.nonce, tc.block); !got.Equal(tc.want) {
			t.Errorf("engine KS(%d,%d) = %v, want %v", tc.nonce, tc.block, got, tc.want)
		}
	}

	par60 := MustParams(4, 2, modOrSkip(t, 60))
	key60 := KeyFromSeed(par60, "golden")
	want60 := ff.Vec{460613857728831739, 228477030842030041, 553675711166221583, 458912430834497307}
	if got := KeyStreamSequential(par60, key60, 3, 5); !got.Equal(want60) {
		t.Errorf("reference KS60(3,5) = %v, want %v", got, want60)
	}
	c60, err := NewCipher(par60, key60)
	if err != nil {
		t.Fatal(err)
	}
	if got := c60.KeyStream(3, 5); !got.Equal(want60) {
		t.Errorf("engine KS60(3,5) = %v, want %v", got, want60)
	}
}

// The pooled engine must agree with the naive reference on every
// standard modulus and a spread of instance shapes.
func TestEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, w := range []uint{17, 33, 54, 60} {
		mod := modOrSkip(t, w)
		for _, shape := range []struct{ t, r int }{{2, 1}, {5, 2}, {16, 4}, {64, 5}} {
			par := MustParams(shape.t, shape.r, mod)
			key := KeyFromSeed(par, fmt.Sprintf("diff-%d-%d-%d", w, shape.t, shape.r))
			c, err := NewCipher(par, key)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				nonce, block := rng.Uint64(), rng.Uint64()%1024
				want := KeyStreamSequential(par, key, nonce, block)
				got := ff.NewVec(par.T)
				if err := c.KeyStreamInto(got, nonce, block); err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("w=%d t=%d r=%d KS(%d,%d): engine %v != reference %v",
						w, shape.t, shape.r, nonce, block, got, want)
				}
			}
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	par := MustParams(8, 3, modOrSkip(t, 17))
	key := KeyFromSeed(par, "roundtrip")
	c, err := NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	msg := ff.Vec{1, 2, 3, 65535, 0, 9999, 7, 8}
	ct, err := c.EncryptBlock(99, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Equal(msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt, err := c.DecryptBlock(99, 0, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(msg) {
		t.Fatalf("roundtrip: got %v want %v", pt, msg)
	}
}

func TestKeyValidation(t *testing.T) {
	par := MustParams(8, 3, modOrSkip(t, 17))
	if err := (Key{1, 2, 3}).Validate(par); err == nil {
		t.Error("short key accepted")
	}
	bad := make(Key, par.T)
	bad[3] = par.Mod.P()
	if err := bad.Validate(par); err == nil {
		t.Error("out-of-range key element accepted")
	}
	if _, err := NewCipher(par, Key{1}); err == nil {
		t.Error("NewCipher accepted bad key")
	}
	if _, err := NewParams(1, 1, par.Mod); err == nil {
		t.Error("t=1 accepted")
	}
	if _, err := NewParams(8, 0, par.Mod); err == nil {
		t.Error("rounds=0 accepted")
	}
}

// Steady-state keystream generation must not allocate: the acceptance
// bar shared with the PASTA engine.
func TestKeyStreamIntoZeroAllocs(t *testing.T) {
	par := MustParams(DefaultT, DefaultRounds, modOrSkip(t, 17))
	key := KeyFromSeed(par, "allocs")
	c, err := NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	dst := ff.NewVec(par.T)
	// Warm the pool.
	if err := c.KeyStreamInto(dst, 1, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.KeyStreamInto(dst, 1, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("KeyStreamInto allocates %.1f/op, want 0", allocs)
	}
}

func TestConcurrentKeyStream(t *testing.T) {
	par := MustParams(16, 3, modOrSkip(t, 17))
	key := KeyFromSeed(par, "concurrent")
	c, err := NewCipher(par, key)
	if err != nil {
		t.Fatal(err)
	}
	want := KeyStreamSequential(par, key, 5, 7)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			dst := ff.NewVec(par.T)
			for i := 0; i < 50; i++ {
				if err := c.KeyStreamInto(dst, 5, 7); err != nil {
					done <- err
					return
				}
				if !dst.Equal(want) {
					done <- fmt.Errorf("concurrent keystream mismatch")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkMastaKeystream tracks the software keystream rate on the
// default instance; wired into `make bench-json` → BENCH_pasta.json.
func BenchmarkMastaKeystream(b *testing.B) {
	par := MustParams(DefaultT, DefaultRounds, ff.StandardModuli[17])
	key := KeyFromSeed(par, "bench")
	c, err := NewCipher(par, key)
	if err != nil {
		b.Fatal(err)
	}
	dst := ff.NewVec(par.T)
	b.SetBytes(int64(par.T * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.KeyStreamInto(dst, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
