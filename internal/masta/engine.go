package masta

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"repro/internal/ff"
	"repro/internal/xof"
)

// The allocation-free keystream engine, following the pooled-workspace
// pattern of internal/pasta: every buffer one block needs — state,
// the per-layer seed and round-constant vectors, the ping-pong matrix
// row registers, and a reseedable sampler — lives in one pooled
// workspace, so the steady state touches the heap zero times per block.

// workspace bundles the per-block scratch.
type workspace struct {
	state   ff.Vec // t-element cipher state
	seed    ff.Vec // matrix seed row for the current affine layer
	rc      ff.Vec // round constants for the current affine layer
	out     ff.Vec // affine output accumulator
	rowA    ff.Vec // matrix row register (ping)
	rowB    ff.Vec // matrix row register (pong)
	sampler *xof.Sampler
}

func newWorkspace(par Params) *workspace {
	t := par.T
	return &workspace{
		state:   ff.NewVec(t),
		seed:    ff.NewVec(t),
		rc:      ff.NewVec(t),
		out:     ff.NewVec(t),
		rowA:    ff.NewVec(t),
		rowB:    ff.NewVec(t),
		sampler: xof.NewSampler(par.Mod, 0, 0),
	}
}

func (c *Cipher) getWorkspace() *workspace {
	ws, _ := c.pool.Get().(*workspace)
	if ws == nil {
		ws = newWorkspace(c.par)
	}
	return ws
}

func (c *Cipher) putWorkspace(ws *workspace) { c.pool.Put(ws) }

// nextRowInto advances the sequential invertible-matrix recurrence
// into next (which must not alias row):
//
//	next[0] = row[t-1]·seed[0]
//	next[j] = row[j-1] + row[t-1]·seed[j]   (j ≥ 1)
func nextRowInto(m ff.Modulus, seed, row, next ff.Vec) {
	t := len(row)
	last := row[t-1]
	next[0] = m.Mul(last, seed[0])
	for j := 1; j < t; j++ {
		next[j] = m.MulAdd(last, seed[j], row[j-1])
	}
}

// applyAffine computes state ← M(seed)·state + rc in place, streaming
// matrix rows through the two row registers and accumulating each
// row's products with 192-bit lazy reduction (one reduce per output
// element).
func (c *Cipher) applyAffine(ws *workspace) {
	m := c.par.Mod
	state, out := ws.state, ws.out
	row, next := ws.rowA, ws.rowB
	copy(row, ws.seed)
	out[0] = m.Add(ff.DotLazy(m, row, state), ws.rc[0])
	for i := 1; i < c.par.T; i++ {
		nextRowInto(m, ws.seed, row, next)
		row, next = next, row
		out[i] = m.Add(ff.DotLazy(m, row, state), ws.rc[i])
	}
	copy(state, out)
}

// sboxCube cubes every state element.
func (c *Cipher) sboxCube(ws *workspace) {
	m := c.par.Mod
	for i, v := range ws.state {
		ws.state[i] = m.Cube(v)
	}
}

// KeyStreamInto writes KS(nonce, block) into dst, which must have
// exactly t elements. Allocation-free in steady state.
func (c *Cipher) KeyStreamInto(dst ff.Vec, nonce, block uint64) error {
	if len(dst) != c.par.T {
		return fmt.Errorf("masta: KeyStreamInto dst has %d elements, want %d", len(dst), c.par.T)
	}
	ws := c.getWorkspace()
	ws.sampler.Reseed(nonce, block)
	copy(ws.state, c.key)
	for layer := 0; layer < c.par.AffineLayers(); layer++ {
		ws.sampler.VectorInto(ws.seed, true)
		ws.sampler.VectorInto(ws.rc, false)
		c.applyAffine(ws)
		if layer < c.par.Rounds {
			c.sboxCube(ws)
		}
	}
	m := c.par.Mod
	for i, v := range ws.state {
		dst[i] = m.Add(v, c.key[i])
	}
	c.putWorkspace(ws)
	return nil
}

// randomKey is the mask-and-reject crypto/rand sampler shared by
// NewRandomKey.
func randomKey(mod ff.Modulus, n int) (ff.Vec, error) {
	k := make(ff.Vec, n)
	var buf [8]byte
	for i := range k {
		for {
			if _, err := rand.Read(buf[:]); err != nil {
				return nil, fmt.Errorf("masta: sampling key: %w", err)
			}
			v := binary.LittleEndian.Uint64(buf[:]) & mod.Mask()
			if v < mod.P() {
				k[i] = v
				break
			}
		}
	}
	return k, nil
}
