package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/pasta"
	"repro/internal/wire"
)

// session is one tenant: a keyed backend.BlockCipher instance plus the
// state of its encryption stream. The stream is CTR-addressed keystream
// shared across requests: each accepted stream request is assigned the
// next element offsets, and requests smaller than a block are batched so
// one keystream block masks many requests.
//
// Stream invariants (guarded by mu):
//
//   - every element offset in [0, tail) is assigned to exactly one
//     request; [pos, tail) is pending, [0, pos) is flushed;
//   - at most one flush job is queued or running (flushQueued), so
//     flushes execute in stream order and the partial-block keystream
//     cache is single-writer;
//   - a dropped batch (overload on flush submission) still advances pos:
//     its keystream positions are consumed, never reused — a gap in the
//     stream is safe, keystream reuse is not;
//   - every request carries a strictly increasing counter checked
//     against a 64-wide anti-replay window (acceptCounter) before any
//     offset is assigned, so a replayed frame can never re-derive
//     keystream; the high-water mark survives park/resume;
//   - conn is the current owning connection; it changes only under mu
//     (resume re-attach), and every reply path captures it under mu —
//     in-flight jobs pin their admission-time conn instead, so a stale
//     reply can never land in a successor connection's id space.
type session struct {
	id       uint32
	srv      *Server
	cipher   backend.BlockCipher // nil for keyless (transcipher-only) sessions
	t        int
	mod      ff.Modulus
	bits     uint8
	scheme   string       // negotiated cipher family name (acks, fingerprint)
	pp       pasta.Params // pasta-native parameters, when hasPasta
	hasPasta bool         // the family resolved to a pasta instance: transcipher-capable
	keyless  bool         // opened without a symmetric key: transcipher only
	nonce    uint64       // stream nonce, fixed at SessionOpen
	keyFP    [32]byte     // SHA-256 of the symmetric key (the key itself is wiped)
	token    []byte       // resumption token minted at open
	limiter  *tokenBucket
	dispatch *obs.Counter

	mu          sync.Mutex
	conn        *conn
	closed      bool
	parked      bool // disconnected, awaiting resume inside ResumeWindow
	parkTimer   *time.Timer
	ctrHigh     uint64 // anti-replay high-water mark (counters start at 1)
	ctrWindow   uint64 // bitmap over [ctrHigh-63, ctrHigh], bit 0 = ctrHigh
	pending     []streamPending
	pos, tail   uint64 // element offsets: flushed / assigned
	flushQueued bool
	timer       *time.Timer
	timerArmed  bool
	ks          ff.Vec // keystream of block ksBlock, when ksValid
	ksBlock     uint64
	ksValid     bool
}

// streamPending is an accepted, unflushed stream request.
type streamPending struct {
	id  uint64
	off uint64
	msg ff.Vec
}

// openSession maps a wire.SessionOpen onto a backend.Config, opens the
// cipher on the server's substrate, and registers the session. The
// cipher axis is negotiated per tenant: m.Scheme names any registered
// cipher family (empty = the server's DefaultCipher) and the fixed
// parameter fields pass through as registry cipher.Params — no
// per-family interpretation happens here.
func openSession(c *conn, m *wire.SessionOpen) (*session, error) {
	srv := c.srv
	name := m.Scheme
	if name == "" {
		name = srv.cfg.DefaultCipher
	}
	if name == "" {
		name = backend.DefaultCipher
	}
	if len(m.CipherParams) > 0 {
		// No registered family defines extension parameters yet; reject
		// rather than silently negotiate an instance the client did not
		// ask for.
		return nil, fmt.Errorf("%w %q: unsupported cipher-params extension blob (%d bytes)",
			cipher.ErrUnknownCipher, name, len(m.CipherParams))
	}
	params := cipher.Params{
		Width:   uint(m.Width),
		Variant: int(m.Variant),
		Rounds:  int(m.Rounds),
		T:       int(m.T),
	}
	// Resolve the registry instance alongside the backend: the
	// transcipher tier needs the family-native pasta parameters, and a
	// keyless open has no backend cipher at all. A resolve failure here
	// is not fatal for keyed sessions — backend.Open re-resolves and
	// reports it properly.
	var pp pasta.Params
	hasPasta := false
	if spec, serr := cipher.Open(name); serr == nil {
		if inst, rerr := spec.Resolve(params); rerr == nil {
			if p, ok := inst.Params.(pasta.Params); ok {
				pp, hasPasta = p, true
			}
		}
	}
	if len(m.Key) == 0 {
		return openKeylessSession(c, m, name, params, pp, hasPasta)
	}
	cfg := backend.Config{
		Cipher:       name,
		CipherParams: params,
		Key:          ff.Vec(m.Key),
		Workers:      srv.cfg.BackendWorkers,
		AccelUnits:   srv.cfg.AccelUnits,
	}
	if srv.cfg.Backend == backend.NameAccel && cfg.AccelUnits > cfg.Workers {
		// An N-way accelerator farm needs N in-flight blocks to stay
		// busy; the farm units are modelled peripherals, not host
		// threads, so widening the cipher fan-out to match is free.
		cfg.Workers = cfg.AccelUnits
	}
	bc, err := backend.Open(srv.cfg.Backend, cfg)
	if err != nil {
		zeroKey(ff.Vec(m.Key))
		return nil, err
	}
	// The stream fingerprint is taken before the raw key is wiped: the
	// backend clones the key words it needs, so the decoded wire copy is
	// zeroed here and only the fingerprint outlives the open. The cipher
	// name and instance label are folded in, so the same key words under
	// different ciphers (or instances) name different keystreams.
	fp := keyFingerprint(m.Key, bc.Scheme(), instanceLabel(bc))
	zeroKey(ff.Vec(m.Key))
	sess := &session{
		srv:      srv,
		conn:     c,
		cipher:   bc,
		t:        bc.BlockSize(),
		mod:      bc.Modulus(),
		bits:     uint8(bc.Modulus().Bits()),
		scheme:   bc.Scheme(),
		pp:       pp,
		hasPasta: hasPasta,
		nonce:    m.Nonce,
		keyFP:    fp,
		dispatch: dispatchCounter(srv.cfg.Backend),
		ks:       ff.NewVec(bc.BlockSize()),
	}
	if srv.cfg.RatePerSec > 0 {
		sess.limiter = newTokenBucket(srv.cfg.RatePerSec, srv.cfg.RateBurst)
	}
	if err := srv.addSession(sess); err != nil {
		bc.Close()
		return nil, err
	}
	sess.token = srv.mintToken(sess.id, sess.keyFP, sess.nonce)
	return sess, nil
}

// openKeylessSession opens a transcipher-only session: the client holds
// BFV keys but no symmetric key (the paper's asymmetric deployment — a
// constrained edge device did the symmetric encryption; the analyst
// only ever sees homomorphic material). No backend cipher is opened, so
// encrypt/keystream/stream requests are rejected, and the session skips
// the (key, nonce) two-time-pad registry — it derives no keystream to
// collide on.
func openKeylessSession(c *conn, m *wire.SessionOpen, name string, params cipher.Params, pp pasta.Params, hasPasta bool) (*session, error) {
	srv := c.srv
	spec, err := cipher.Open(name)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Resolve(params)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", cipher.ErrUnknownCipher, name, err)
	}
	if !hasPasta {
		return nil, fmt.Errorf("%w: %q has no homomorphic decryption circuit (keyless sessions are transcipher-only)",
			cipher.ErrUnknownCipher, name)
	}
	sess := &session{
		srv:      srv,
		conn:     c,
		t:        inst.Block,
		mod:      inst.Mod,
		bits:     uint8(inst.Mod.Bits()),
		scheme:   spec.Name(),
		pp:       pp,
		hasPasta: true,
		keyless:  true,
		nonce:    m.Nonce,
		keyFP:    keyFingerprint(nil, spec.Name(), inst.Label),
		dispatch: dispatchCounter(srv.cfg.Backend),
	}
	if srv.cfg.RatePerSec > 0 {
		sess.limiter = newTokenBucket(srv.cfg.RatePerSec, srv.cfg.RateBurst)
	}
	if err := srv.addSession(sess); err != nil {
		return nil, err
	}
	sess.token = srv.mintToken(sess.id, sess.keyFP, sess.nonce)
	return sess, nil
}

// acceptCounter validates a request's anti-replay counter and consumes
// it. Counters start at 1 and must be fresh within a 64-wide sliding
// window below the high-water mark — wide enough for the reordering a
// pipelined client can produce (requests are numbered atomically but
// serialized onto the socket afterwards), while bounding state to two
// words. Rejected counters stay consumed; acceptance happens before any
// stream offset is assigned, so a replayed frame never touches keystream.
func (sess *session) acceptCounter(ctr uint64) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return ErrClosed
	}
	if ctr == 0 {
		return fmt.Errorf("%w: counter 0 (counters start at 1)", ErrReplay)
	}
	if ctr > sess.ctrHigh {
		if shift := ctr - sess.ctrHigh; shift >= 64 {
			sess.ctrWindow = 0
		} else {
			sess.ctrWindow <<= shift
		}
		sess.ctrWindow |= 1
		sess.ctrHigh = ctr
		return nil
	}
	d := sess.ctrHigh - ctr
	if d >= 64 {
		return fmt.Errorf("%w: counter %d is below the replay window (high %d)", ErrReplay, ctr, sess.ctrHigh)
	}
	if sess.ctrWindow&(1<<d) != 0 {
		return fmt.Errorf("%w: counter %d already consumed", ErrReplay, ctr)
	}
	sess.ctrWindow |= 1 << d
	return nil
}

// takeRate charges n elements against the session's rate budget.
func (sess *session) takeRate(n int) (ok bool, retry time.Duration) {
	if sess.limiter == nil {
		return true, 0
	}
	return sess.limiter.take(float64(n))
}

// close tears the session down: stops the batch timer, closes the
// cipher, and removes the session from the server table. Idempotent.
// Pending stream requests are dropped silently — close happens either on
// client request or when the connection is already gone.
func (sess *session) close() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closeLocked()
}

// closeLocked finishes a close with mu held (and releases it): callers
// that must couple the close decision to other session state — the park
// expiry racing a resume — take mu, decide, and fall through here.
func (sess *session) closeLocked() {
	sess.closed = true
	sess.pending = nil
	if sess.timer != nil {
		sess.timer.Stop()
	}
	if sess.parkTimer != nil {
		sess.parkTimer.Stop()
	}
	sess.mu.Unlock()
	if sess.cipher != nil {
		sess.cipher.Close()
	}
	sess.srv.tc.Drop(sess.id)
	sess.srv.dropSession(sess)
}

// park detaches the session from a dropped connection instead of
// closing it: pending batch failed (offsets stay consumed — the gap
// rule), batch timer stopped, and a one-shot expiry armed. A client
// presenting the session's resumption token inside ResumeWindow
// re-attaches; otherwise parkExpire evicts.
func (sess *session) park() {
	sess.mu.Lock()
	if sess.closed || sess.parked {
		sess.mu.Unlock()
		return
	}
	rc := sess.conn
	batch := sess.pending
	sess.pending = nil
	sess.pos = sess.tail // never reuse offsets assigned to the failed batch
	sess.ksValid = false
	sess.parked = true
	if sess.timerArmed {
		sess.timer.Stop()
		sess.timerArmed = false
	}
	if sess.parkTimer == nil {
		sess.parkTimer = time.AfterFunc(sess.srv.cfg.ResumeWindow, sess.parkExpire)
	} else {
		sess.parkTimer.Reset(sess.srv.cfg.ResumeWindow)
	}
	sess.mu.Unlock()
	sess.srv.m.parked.Inc()
	sess.failBatch(rc, batch, ErrClosed)
}

// parkExpire evicts a session whose ResumeWindow lapsed unclaimed. The
// parked check and the close commit share one critical section, so an
// expiry can never race a resume into closing a just-claimed session.
func (sess *session) parkExpire() {
	sess.mu.Lock()
	if sess.closed || !sess.parked {
		sess.mu.Unlock()
		return
	}
	sess.closeLocked()
	sess.srv.m.evicted.Inc()
}

// acceptStream assigns stream offsets to a validated message and decides
// whether to flush now (a full block of elements is pending) or arm the
// batch window. It returns the assigned offset, or a typed error the
// caller converts to a wire error code.
func (sess *session) acceptStream(id uint64, msg ff.Vec) (off uint64, err error) {
	if ok, retry := sess.takeRate(len(msg)); !ok {
		return 0, &rateError{retry: retry}
	}
	var dropped []streamPending
	var dropErr error
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return 0, ErrClosed
	}
	rc := sess.conn
	off = sess.tail
	sess.tail += uint64(len(msg))
	sess.pending = append(sess.pending, streamPending{id: id, off: off, msg: msg})
	if !sess.flushQueued {
		if sess.tail-sess.pos >= uint64(sess.t) {
			dropped, dropErr = sess.startFlushLocked()
		} else {
			sess.armTimerLocked()
		}
	}
	sess.mu.Unlock()
	sess.failBatch(rc, dropped, dropErr)
	return off, nil
}

// startFlushLocked submits a flush job for the pending batch; mu held.
// On submission failure (queue full, draining) the batch is dropped: its
// offsets stay consumed and the requests are failed by the caller via
// the returned slice.
func (sess *session) startFlushLocked() (dropped []streamPending, err error) {
	if sess.timerArmed {
		sess.timer.Stop()
		sess.timerArmed = false
	}
	sess.flushQueued = true
	j := getJob()
	j.kind, j.sess, j.enq = jobFlush, sess, time.Now()
	err = sess.srv.submit(j)
	if err == nil {
		return nil, nil
	}
	putJob(j)
	sess.flushQueued = false
	dropped = sess.pending
	sess.pending = nil
	sess.pos = sess.tail // the gap is permanent: never reuse keystream
	sess.ksValid = false
	return dropped, err
}

// armTimerLocked (re)arms the batch-window timer; mu held.
func (sess *session) armTimerLocked() {
	if sess.timerArmed {
		return
	}
	sess.timerArmed = true
	if sess.timer == nil {
		sess.timer = time.AfterFunc(sess.srv.cfg.BatchWindow, sess.flushDeadline)
	} else {
		sess.timer.Reset(sess.srv.cfg.BatchWindow)
	}
}

// flushDeadline fires when a partial batch has waited the full window.
func (sess *session) flushDeadline() {
	var dropped []streamPending
	var dropErr error
	sess.mu.Lock()
	rc := sess.conn
	sess.timerArmed = false
	if !sess.closed && !sess.flushQueued && len(sess.pending) > 0 {
		dropped, dropErr = sess.startFlushLocked()
	}
	sess.mu.Unlock()
	sess.failBatch(rc, dropped, dropErr)
}

// expireFlush fails a flush job that aged out in the scheduler queue:
// the pending batch is detached and failed, and — as with a dropped
// batch — its keystream offsets stay consumed; the gap is permanent.
func (sess *session) expireFlush(err error) {
	sess.mu.Lock()
	rc := sess.conn
	batch := sess.pending
	sess.pending = nil
	sess.pos = sess.tail
	sess.ksValid = false
	sess.flushQueued = false
	sess.mu.Unlock()
	sess.failBatch(rc, batch, err)
}

// runFlush executes one batch on a scheduler worker: it detaches the
// pending batch, generates exactly the keystream blocks the batch spans
// (reusing the cached partial block from the previous flush), masks
// every request, and replies. Single-flight is guaranteed by
// flushQueued, so the cache is only ever touched here.
func (sess *session) runFlush(ctx context.Context) {
	sess.mu.Lock()
	if sess.closed || len(sess.pending) == 0 {
		sess.flushQueued = false
		sess.mu.Unlock()
		return
	}
	// Replies for this batch go to the connection that owns the session
	// now; captured under mu so a concurrent resume cannot tear the read.
	rc := sess.conn
	batch := sess.pending
	sess.pending = nil
	start, end := sess.pos, sess.tail
	firstBlk := start / uint64(sess.t)
	lastBlk := (end - 1) / uint64(sess.t)
	var cached ff.Vec
	if sess.ksValid && sess.ksBlock == firstBlk {
		cached = sess.ks.Clone()
	}
	sess.mu.Unlock()

	t := uint64(sess.t)
	sess.dispatch.Inc()
	var ks ff.Vec
	var err error
	switch {
	case cached != nil && lastBlk == firstBlk:
		ks = cached
	case cached != nil:
		rest, kerr := sess.cipher.KeyStreamBlocks(ctx, sess.nonce, firstBlk+1, int(lastBlk-firstBlk))
		if kerr != nil {
			err = kerr
		} else {
			ks = append(cached, rest...)
		}
	default:
		ks, err = sess.cipher.KeyStreamBlocks(ctx, sess.nonce, firstBlk, int(lastBlk-firstBlk+1))
	}

	type reply struct {
		id  uint64
		off uint64
		ct  ff.Vec
	}
	var replies []reply
	if err == nil {
		replies = make([]reply, 0, len(batch))
		for _, p := range batch {
			ct := ff.NewVec(len(p.msg))
			for i := range p.msg {
				ct[i] = sess.mod.Add(p.msg[i], ks[p.off+uint64(i)-firstBlk*t])
			}
			replies = append(replies, reply{id: p.id, off: p.off, ct: ct})
		}
	}

	var dropped []streamPending
	var dropErr error
	sess.mu.Lock()
	rc2 := sess.conn // successor batches belong to the current owner
	if sess.pos < end {
		// A park while this flush was in flight already advanced pos to
		// tail; never rewind it — the generated keystream simply covers a
		// permanent gap, and masking above indexes absolute offsets.
		sess.pos = end
	}
	if err == nil && end%t != 0 {
		copy(sess.ks, ks[(lastBlk-firstBlk)*t:])
		sess.ksBlock = lastBlk
		sess.ksValid = true
	} else {
		sess.ksValid = false
	}
	sess.flushQueued = false
	if !sess.closed && len(sess.pending) > 0 {
		if sess.tail-sess.pos >= t {
			dropped, dropErr = sess.startFlushLocked()
		} else {
			sess.armTimerLocked()
		}
	}
	sess.mu.Unlock()

	if err != nil {
		sess.failBatch(rc, batch, err)
	} else {
		m := sess.srv.m
		m.batchFlushes.Inc()
		m.batchReqs.Observe(int64(len(batch)))
		m.batchElems.Observe(int64(end - start))
		for _, r := range replies {
			rc.sendData(sess, r.id, r.off, r.ct)
		}
	}
	sess.failBatch(rc2, dropped, dropErr)
}

// failBatch replies on c with an error for every request of a dropped
// or failed batch. c is the connection the batch was accepted on,
// captured under sess.mu by the caller.
func (sess *session) failBatch(c *conn, batch []streamPending, err error) {
	if len(batch) == 0 {
		return
	}
	for _, p := range batch {
		c.sendJobError(sess, p.id, err)
	}
}

// rateError carries the token-bucket refill hint to the wire error.
type rateError struct{ retry time.Duration }

func (e *rateError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrRateLimited, e.retry)
}

func (e *rateError) Is(target error) bool { return target == ErrRateLimited }

// tokenBucket is a classic leaky token bucket over element counts.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take withdraws n tokens if available; otherwise it reports how long
// until the bucket could cover n (requests larger than the burst get the
// hint for a full bucket — the operator should size RateBurst above the
// largest legitimate request).
func (b *tokenBucket) take(n float64) (ok bool, retry time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	if need > b.burst {
		need = b.burst
	}
	return false, time.Duration(need / b.rate * float64(time.Second))
}
