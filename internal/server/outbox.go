package server

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// outbox is the per-connection reply writer. Producers — the reader
// loop's error frames, scheduler workers, the batch timer — enqueue
// pre-encoded pooled frames; a single writer goroutine drains everything
// queued since its last wake-up into one vectored write (net.Buffers →
// writev), so a batch flush that masks N stream requests costs one
// syscall instead of N. This replaces the old mutex-serialized
// one-frame-one-write path and removes the per-reply lock convoy.
//
// Frame ownership follows DESIGN.md §9: enqueue transfers the *wire.Buf
// to the outbox, which releases it after the flush (or immediately when
// the outbox is already closed). Reply ordering is enqueue order, the
// same guarantee the write mutex used to provide.
type outbox struct {
	nc      net.Conn
	timeout time.Duration
	m       *metrics

	mu     sync.Mutex
	q      []*wire.Buf
	closed bool

	kick chan struct{} // cap 1: producer → writer wake-up
	done chan struct{} // closed when the writer has exited

	// Writer-owned scratch, reused across flushes: the spare queue slice
	// swapped in under mu, and the iovec slice handed to writev.
	spare []*wire.Buf
	iov   net.Buffers
}

func newOutbox(nc net.Conn, timeout time.Duration, m *metrics) *outbox {
	o := &outbox{
		nc:      nc,
		timeout: timeout,
		m:       m,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go o.writer()
	return o
}

// enqueue transfers b to the outbox for writing. When the outbox is
// already closed the frame is released and dropped — the peer is gone.
func (o *outbox) enqueue(b *wire.Buf) bool {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		b.Release()
		return false
	}
	o.q = append(o.q, b)
	o.mu.Unlock()
	select {
	case o.kick <- struct{}{}:
	default:
	}
	return true
}

// close stops accepting frames, lets the writer drain what is already
// queued, and waits for it to exit. Idempotent; safe to call after a
// writer-side failure.
func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	select {
	case o.kick <- struct{}{}:
	default:
	}
	<-o.done
}

func (o *outbox) writer() {
	defer close(o.done)
	for {
		o.mu.Lock()
		for len(o.q) == 0 {
			if o.closed {
				o.mu.Unlock()
				return
			}
			o.mu.Unlock()
			<-o.kick
			o.mu.Lock()
		}
		batch := o.q
		o.q = o.spare[:0]
		o.spare = batch
		o.mu.Unlock()

		if !o.flush(batch) {
			o.fail()
			return
		}
	}
}

// flush writes one batch with a single vectored write and releases every
// frame. The iovec slice is reused; net.Buffers.WriteTo consumes its
// receiver, so the writer keeps o.iov and hands WriteTo a reslice.
func (o *outbox) flush(batch []*wire.Buf) bool {
	o.iov = o.iov[:0]
	total := 0
	for _, b := range batch {
		o.iov = append(o.iov, b.B)
		total += len(b.B)
	}
	o.nc.SetWriteDeadline(time.Now().Add(o.timeout))
	iov := o.iov
	_, err := iov.WriteTo(o.nc)
	for i, b := range batch {
		b.Release()
		batch[i] = nil // don't pin released Bufs via the spare slice
	}
	o.m.writeFlushes.Inc()
	o.m.writeFrames.Add(int64(len(batch)))
	o.m.writeBytes.Add(int64(total))
	return err == nil
}

// fail marks the outbox closed after a write error and releases anything
// still queued; the transport is torn down so the reader exits too.
func (o *outbox) fail() {
	o.mu.Lock()
	o.closed = true
	q := o.q
	o.q = nil
	o.mu.Unlock()
	for _, b := range q {
		b.Release()
	}
	o.nc.Close()
}
