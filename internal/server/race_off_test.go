//go:build !race

package server

// raceEnabled mirrors the -race build tag: the churn test scales its
// session count down under the race detector, whose instrumentation
// makes each connection roughly an order of magnitude slower.
const raceEnabled = false
