package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
	"repro/internal/wire"
)

// startServer runs a server on a loopback listener and tears it down
// with the test. It returns the server and its dial address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after shutdown, want nil", err)
		}
	})
	return srv, ln.Addr().String()
}

// dialClient connects a protocol client and closes it with the test.
func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Timeout = 15 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}

// testKey derives a deterministic in-field key vector from a seed.
func testKey(n int, seed uint64, p uint64) []uint64 {
	key := make([]uint64, n)
	x := seed*2654435761 + 97
	for i := range key {
		x = x*6364136223846793005 + 1442695040888963407
		key[i] = x % p
	}
	return key
}

func testMsg(n int, seed uint64, p uint64) ff.Vec {
	return ff.Vec(testKey(n, seed^0xa5a5a5a5, p))
}

// pasta4Open is a standard PASTA-4 (t = 32, omega = 17) session open.
func pasta4Open(key []uint64, nonce uint64) wire.SessionOpen {
	return wire.SessionOpen{
		Variant: 4,
		Width:   17,
		Nonce:   nonce,
		Key:     key,
		EvalKey: []byte("opaque-fhe-key-registration-blob"),
	}
}

// toyOpen is a reduced PASTA instance (small t) for batching tests.
func toyOpen(t16 uint16, key []uint64, nonce uint64) wire.SessionOpen {
	return wire.SessionOpen{
		Variant: 3,
		Width:   17,
		Rounds:  1,
		T:       t16,
		Nonce:   nonce,
		Key:     key,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func vecsEqual(a, b ff.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestE2EConcurrentSessions is the acceptance test: 32 concurrent client
// sessions against one server must produce ciphertext bit-identical to
// the sequential hhe.Client oracle, on every execution backend.
func TestE2EConcurrentSessions(t *testing.T) {
	const (
		sessions  = 32
		keyCount  = 8
		msgLen    = 80 // 2.5 PASTA-4 blocks: exercises partial-block caching
		clientsN  = 8
		blockSize = 32
	)
	par, err := pasta.NewParams(pasta.Pasta4, ff.P17)
	if err != nil {
		t.Fatal(err)
	}
	p := par.Mod.P()

	// Sequential oracles: one hhe.Client per key, symmetric side on the
	// software cipher. The serving tier must match these bit for bit.
	oracles := make([]*hhe.Client, keyCount)
	keys := make([][]uint64, keyCount)
	for k := 0; k < keyCount; k++ {
		keys[k] = testKey(2*par.T, uint64(k)+1, p)
		oracles[k] = newOracle(t, par, keys[k])
	}

	for _, name := range []string{backend.NameSoftware, backend.NameAccel, backend.NameSoC} {
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t, Config{Backend: name, Workers: 8, QueueBound: 512})
			clients := make([]*Client, clientsN)
			for i := range clients {
				clients[i] = dialClient(t, addr)
			}

			var wg sync.WaitGroup
			errCh := make(chan error, sessions)
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if err := runSessionCheck(clients[i%clientsN], oracles[i%keyCount],
						keys[i%keyCount], uint64(1000+i), msgLen, blockSize); err != nil {
						errCh <- fmt.Errorf("session %d: %w", i, err)
					}
				}(i)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

func newOracle(t *testing.T, par pasta.Params, key []uint64) *hhe.Client {
	t.Helper()
	hp, err := hheParamsFor(par)
	if err != nil {
		t.Fatal(err)
	}
	c, err := hhe.NewClient(hp, pasta.Key(key), []byte("server-e2e-oracle"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runSessionCheck drives one session through the three request kinds and
// compares every response against the oracle.
func runSessionCheck(c *Client, oracle *hhe.Client, key []uint64, nonce uint64, msgLen, t int) error {
	sess, err := c.OpenSession(pasta4Open(key, nonce))
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer sess.Close()
	if sess.BlockSize != t {
		return fmt.Errorf("block size %d, want %d", sess.BlockSize, t)
	}
	p := sess.Modulus
	msg := testMsg(msgLen, nonce, p)

	// One-shot encrypt with a request-scoped nonce.
	ct, err := sess.Encrypt(nonce+7, msg)
	if err != nil {
		return fmt.Errorf("encrypt: %w", err)
	}
	want, err := oracle.Encrypt(nonce+7, msg)
	if err != nil {
		return fmt.Errorf("oracle encrypt: %w", err)
	}
	if !vecsEqual(ct, want) {
		return fmt.Errorf("encrypt mismatch vs oracle")
	}

	// Raw keystream fetch.
	ks, err := sess.Keystream(nonce+7, 0, 2)
	if err != nil {
		return fmt.Errorf("keystream: %w", err)
	}
	wantKS, err := oracle.PrecomputeKeystream(nonce+7, 2)
	if err != nil {
		return fmt.Errorf("oracle keystream: %w", err)
	}
	if !vecsEqual(ks, wantKS) {
		return fmt.Errorf("keystream mismatch vs oracle")
	}

	// Chunked stream encryption: uneven chunks must concatenate to the
	// same ciphertext as one sequential encryption under the stream nonce.
	chunks := []ff.Vec{msg[:5], msg[5:16], msg[16:46], msg[46:]}
	cts, offsets, err := sess.EncryptChunks(chunks)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	var stream ff.Vec
	off := uint64(0)
	for i, chunk := range chunks {
		if offsets[i] != off {
			return fmt.Errorf("chunk %d at offset %d, want %d", i, offsets[i], off)
		}
		off += uint64(len(chunk))
		stream = append(stream, cts[i]...)
	}
	wantStream, err := oracle.Encrypt(nonce, msg)
	if err != nil {
		return fmt.Errorf("oracle stream: %w", err)
	}
	if !vecsEqual(stream, wantStream) {
		return fmt.Errorf("stream mismatch vs oracle")
	}
	return nil
}

// TestStreamBatchFlushOnFullBlock pins the full-block flush trigger: with
// an effectively infinite batch window, chunks that fill a keystream
// block must still flush immediately.
func TestStreamBatchFlushOnFullBlock(t *testing.T) {
	_, addr := startServer(t, Config{BatchWindow: time.Hour})
	c := dialClient(t, addr)
	c.Timeout = 5 * time.Second

	const blk = 4
	key := testKey(2*blk, 3, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(blk, key, 42))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if sess.BlockSize != blk {
		t.Fatalf("block size %d, want %d", sess.BlockSize, blk)
	}
	msg := testMsg(2*blk, 9, sess.Modulus)

	// 1 + 3 elements = exactly one block; then 4 more = another block.
	// If the timer were the only trigger, these would hang for an hour.
	cts, offsets, err := sess.EncryptChunks([]ff.Vec{msg[:1], msg[1:4], msg[4:]})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	want := oracleEncrypt(t, blk, key, 42, msg)
	var got ff.Vec
	for _, ct := range cts {
		got = append(got, ct...)
	}
	if !vecsEqual(got, want) {
		t.Fatalf("stream ciphertext mismatch: got %v want %v (offsets %v)", got, want, offsets)
	}
}

// TestStreamBatchFlushOnDeadline pins the batch-window trigger: a chunk
// smaller than a block can only be flushed by the window timer.
func TestStreamBatchFlushOnDeadline(t *testing.T) {
	_, addr := startServer(t, Config{BatchWindow: 20 * time.Millisecond})
	c := dialClient(t, addr)
	c.Timeout = 5 * time.Second

	const blk = 8
	key := testKey(2*blk, 4, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(blk, key, 43))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	msg := testMsg(3, 10, sess.Modulus)
	ct, off, err := sess.EncryptChunk(msg)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if off != 0 {
		t.Fatalf("offset %d, want 0", off)
	}
	want := oracleEncrypt(t, blk, key, 43, msg)
	if !vecsEqual(ct, want) {
		t.Fatalf("deadline-flushed ciphertext mismatch: got %v want %v", ct, want)
	}

	// A second partial chunk continues the stream from offset 3 using the
	// cached partial-block keystream.
	msg2 := testMsg(2, 11, sess.Modulus)
	ct2, off2, err := sess.EncryptChunk(msg2)
	if err != nil {
		t.Fatalf("stream 2: %v", err)
	}
	if off2 != 3 {
		t.Fatalf("offset %d, want 3", off2)
	}
	full := append(msg.Clone(), msg2...)
	wantFull := oracleEncrypt(t, blk, key, 43, full)
	if !vecsEqual(ct2, wantFull[3:]) {
		t.Fatalf("continued stream mismatch: got %v want %v", ct2, wantFull[3:])
	}
}

// oracleEncrypt is the sequential reference for toy instances: the
// software cipher driven directly.
func oracleEncrypt(t *testing.T, blk int, key []uint64, nonce uint64, msg ff.Vec) ff.Vec {
	t.Helper()
	par, err := pasta.ToyParams(blk, 1, ff.P17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.Open(backend.NameSoftware, backend.Config{
		CipherParams: cipher.Params{T: par.T, Rounds: par.Rounds, Mod: par.Mod},
		Key:          ff.Vec(key),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ct, err := b.Encrypt(context.Background(), nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestSessionEvictionOnDisconnect: killing the transport must evict every
// session the connection owns.
func TestSessionEvictionOnDisconnect(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dialClient(t, addr)
	key := testKey(8, 5, ff.P17.P())
	for i := 0; i < 3; i++ {
		if _, err := c.OpenSession(toyOpen(4, key, uint64(i))); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if n := srv.SessionCount(); n != 3 {
		t.Fatalf("SessionCount = %d, want 3", n)
	}
	c.Close() // abrupt: no SessionClose frames
	waitFor(t, 5*time.Second, "session eviction", func() bool {
		return srv.SessionCount() == 0
	})
}

// TestOverloadRejection: with one worker, a one-slot queue, and a slow
// backend, a flood must produce immediate typed overload rejections with
// retry hints — never hangs.
func TestOverloadRejection(t *testing.T) {
	registerSlowBackend(t)
	_, addr := startServer(t, Config{
		Backend: slowBackendName, Workers: 1, QueueBound: 1,
	})
	c := dialClient(t, addr)
	key := testKey(8, 6, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(4, key, 1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const flood = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	var overloaded, ok int
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sess.Keystream(1, 0, 1)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				overloaded++
				var re *RemoteError
				if !errors.As(err, &re) || re.RetryAfter <= 0 {
					t.Errorf("overload rejection without retry hint: %v", err)
				}
			default:
				t.Errorf("unexpected error under flood: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request succeeded under flood")
	}
	if overloaded == 0 {
		t.Errorf("no overload rejection across %d requests (ok = %d)", flood, ok)
	}
}

// TestRateLimit: the per-session token bucket rejects requests beyond
// the element budget with a refill hint.
func TestRateLimit(t *testing.T) {
	_, addr := startServer(t, Config{RatePerSec: 8, RateBurst: 8})
	c := dialClient(t, addr)
	key := testKey(8, 7, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(4, key, 1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	msg := testMsg(8, 12, sess.Modulus)
	if _, err := sess.Encrypt(1, msg); err != nil {
		t.Fatalf("first request should fit the burst: %v", err)
	}
	_, err = sess.Encrypt(2, msg)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second request: got %v, want ErrRateLimited", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.RetryAfter <= 0 {
		t.Fatalf("rate rejection without retry hint: %v", err)
	}
	if retry, retryable := IsRetryable(err); !retryable || retry <= 0 {
		t.Fatalf("IsRetryable(%v) = %v, %v", err, retry, retryable)
	}
}

// TestSessionLimit: MaxSessions bounds the tenant table.
func TestSessionLimit(t *testing.T) {
	_, addr := startServer(t, Config{MaxSessions: 2})
	c := dialClient(t, addr)
	key := testKey(8, 8, ff.P17.P())
	for i := 0; i < 2; i++ {
		if _, err := c.OpenSession(toyOpen(4, key, uint64(i))); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, err := c.OpenSession(toyOpen(4, key, 9)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third open: got %v, want ErrOverloaded", err)
	}
}

// TestBadRequestRejections: malformed and out-of-contract requests are
// answered (not dropped) and do not take the connection down.
func TestBadRequestRejections(t *testing.T) {
	_, addr := startServer(t, Config{MaxRequestElems: 16})
	c := dialClient(t, addr)
	key := testKey(8, 13, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(4, key, 1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Unknown session id.
	ghost := &Session{c: c, ID: sess.ID + 99, BlockSize: sess.BlockSize,
		Modulus: sess.Modulus, Bits: sess.Bits}
	var re *RemoteError
	if _, err := ghost.Encrypt(1, testMsg(4, 1, sess.Modulus)); !errors.As(err, &re) ||
		re.Code != wire.CodeUnknownSession {
		t.Fatalf("ghost session: got %v, want CodeUnknownSession", err)
	}

	// Oversized request.
	if _, err := sess.Encrypt(1, testMsg(17, 2, sess.Modulus)); !errors.As(err, &re) ||
		re.Code != wire.CodeBadRequest {
		t.Fatalf("oversized: got %v, want CodeBadRequest", err)
	}

	// Out-of-field element.
	bad := ff.Vec{sess.Modulus, 0, 1}
	if _, err := sess.Encrypt(1, bad); !errors.As(err, &re) ||
		re.Code != wire.CodeBadRequest {
		t.Fatalf("out-of-field: got %v, want CodeBadRequest", err)
	}

	// The connection survived all of it.
	if _, err := sess.Encrypt(3, testMsg(4, 3, sess.Modulus)); err != nil {
		t.Fatalf("connection should have survived bad requests: %v", err)
	}
}

// TestUnknownVariantAndBackend: session opens that cannot be served fail
// with typed errors but keep the connection usable.
func TestUnknownVariantAndBackend(t *testing.T) {
	if _, err := New(Config{Backend: "fpga-bridge"}); err == nil {
		t.Fatal("New accepted an unregistered backend")
	}
	_, addr := startServer(t, Config{})
	c := dialClient(t, addr)
	open := toyOpen(4, testKey(8, 14, ff.P17.P()), 1)
	open.Variant = 9
	if _, err := c.OpenSession(open); err == nil {
		t.Fatal("OpenSession accepted an unknown variant")
	}
	// Connection still works.
	if _, err := c.OpenSession(toyOpen(4, testKey(8, 14, ff.P17.P()), 1)); err != nil {
		t.Fatalf("open after rejected open: %v", err)
	}
}

// TestShutdownDrains: queued work completes (or is rejected, never
// dropped silently) across a graceful shutdown, and no goroutines leak.
func TestShutdownDrains(t *testing.T) {
	registerSlowBackend(t)
	baseline := runtime.NumGoroutine()

	srv, err := New(Config{Backend: slowBackendName, Workers: 1, QueueBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(8, 15, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(4, key, 1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Queue several slow jobs, then shut down while they are in flight.
	const inflight = 4
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i uint64) {
			_, err := sess.Keystream(1, i, 1)
			results <- err
		}(uint64(i))
	}
	time.Sleep(20 * time.Millisecond) // let the requests reach the queue

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after shutdown, want nil", err)
	}
	for i := 0; i < inflight; i++ {
		err := <-results
		if err != nil && !errors.Is(err, ErrShuttingDown) && !errors.Is(err, ErrClosed) &&
			!errors.Is(err, ErrOverloaded) {
			t.Errorf("in-flight request: got %v, want success or a typed rejection", err)
		}
	}
	// New work is refused.
	if _, err := c.OpenSession(toyOpen(4, key, 2)); err == nil {
		t.Error("OpenSession succeeded after shutdown")
	}
	c.Close()

	// Goroutine-leak assertion: everything the server spawned is gone.
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestDoubleShutdownAndServeAfterShutdown: lifecycle misuse is inert.
func TestDoubleShutdownAndServeAfterShutdown(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	waitFor(t, 2*time.Second, "listener", func() bool { return srv.Addr() != nil })
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln2); err == nil {
		t.Fatal("Serve accepted a listener after shutdown")
	}
}
