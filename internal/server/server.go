// Package server is the HHE edge serving tier: a stdlib-only TCP
// service that exposes the Fig. 1 protocol as a multi-tenant API over
// the execution-backend layer (internal/backend).
//
// A client opens a session — symmetric key material plus the opaque FHE
// registration blob destined for the compute tier — and then streams
// encrypt and keystream requests. Requests are executed by a scheduler:
//
//   - a bounded global queue feeds a pool of workers; each session owns
//     a backend.BlockCipher instance (software instances fan out over
//     the cipher's own worker pool, accelerator/SoC instances serialize
//     internally like the single peripheral they model);
//   - stream requests smaller than a keystream block are batched per
//     session and flushed either when a full block of elements has
//     accumulated or when the batch window expires, so the per-block
//     keystream cost is amortized across small requests;
//   - when the queue is full the request is rejected immediately with a
//     typed overload error carrying a Retry-After hint — backpressure,
//     not latency;
//   - per-session token buckets bound the element rate, per-request
//     deadlines bound queue residency, and Shutdown drains queued work
//     before closing connections.
//
// Every stage reports into internal/obs (see metrics.go), so the
// `hheserver -metrics` snapshot and /debug/vars endpoint cover accepted
// and active sessions, queue depth, batch occupancy, request latency,
// and per-backend dispatch counts out of the box.
package server

import (
	"context"
	"crypto/rand"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/ff"
	"repro/internal/transcipher"
)

// Typed serving-tier failures. The server returns them locally (submit,
// session open) and the client library maps wire error codes back onto
// them, so errors.Is works identically on both ends.
var (
	// ErrOverloaded reports a full scheduler queue or session table; the
	// caller should retry after the hinted delay.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrRateLimited reports an exhausted per-session rate budget.
	ErrRateLimited = errors.New("server: rate limited")
	// ErrShuttingDown reports a server that is draining.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrClosed reports use of a closed client or session.
	ErrClosed = errors.New("server: connection closed")
	// ErrReplay reports a request counter that was already consumed or
	// fell behind the anti-replay window; the request is rejected before
	// any keystream offset is assigned.
	ErrReplay = errors.New("server: replayed or stale request counter")
	// ErrDuplicateNonce reports a SessionOpen whose (key, nonce) pair is
	// already bound to a live session — accepting it would derive the
	// same keystream twice (a two-time pad).
	ErrDuplicateNonce = errors.New("server: (key, nonce) already in use by a live session")
	// ErrBadResume reports an invalid, expired, or already-claimed
	// session-resumption token.
	ErrBadResume = errors.New("server: invalid resumption token")
	// ErrUnknownCipher reports a SessionOpen naming a cipher family that
	// is not registered on this server, or one the configured execution
	// substrate cannot run. The rejection is per-request: the connection
	// stays up and the client may retry with a supported cipher.
	ErrUnknownCipher = errors.New("server: unknown or unsupported cipher")

	// ErrNoEvalKeys reports a Transcipher request on a session whose
	// eval-key upload has not completed. Aliases the transcipher tier's
	// sentinel so errors.Is matches on both sides of the wire.
	ErrNoEvalKeys = transcipher.ErrNoEvalKeys
	// ErrTranscipherBudget reports a Transcipher request rejected by the
	// tier's cost-model admission; the wire error carries a Retry-After
	// hint estimating the backlog drain.
	ErrTranscipherBudget = transcipher.ErrBudget
)

// Config tunes a Server. The zero value serves PASTA sessions on the
// software backend with sensible bounds.
type Config struct {
	// Backend is the execution substrate every session runs on
	// ("software", "accel", "soc"; default "software"). The operator
	// picks the substrate; clients pick cipher shape and keys.
	Backend string

	// DefaultCipher is the cipher family assumed when a SessionOpen
	// does not name one ("" = backend.DefaultCipher, i.e. "pasta").
	// Clients can always negotiate any registered family per session;
	// this only fills the empty wire field.
	DefaultCipher string

	// Workers is the scheduler pool size; ≤ 0 means GOMAXPROCS.
	Workers int

	// BackendWorkers bounds each session cipher's internal fan-out.
	// Default 1: cross-session parallelism comes from the scheduler
	// pool, so a single bulk request cannot oversubscribe the host.
	BackendWorkers int

	// AccelUnits sizes each accel-backend session's accelerator farm
	// (≤ 0 or 1 = single modelled peripheral). With N > 1 units a
	// session's cipher fans bulk requests across N cloned accelerator
	// instances, so one client can keep the whole farm busy; the farm
	// units are modelled hardware, not host threads, so this does not
	// oversubscribe the scheduler pool the way BackendWorkers would.
	AccelUnits int

	// QueueBound caps queued jobs; submissions beyond it are rejected
	// with ErrOverloaded. Default 256.
	QueueBound int

	// BatchWindow is how long a partial stream batch may wait for more
	// elements before it is flushed anyway. Default 2ms.
	BatchWindow time.Duration

	// MaxSessions caps live sessions across all connections. Default 1024.
	MaxSessions int

	// MaxRequestElems caps the elements a single request may carry or
	// demand (encrypt/stream length, keystream count × block size).
	// Default 65536.
	MaxRequestElems int

	// RatePerSec, when > 0, bounds each session to that many elements
	// per second, enforced by a token bucket of RateBurst capacity.
	RatePerSec float64

	// RateBurst is the token-bucket capacity in elements; ≤ 0 derives
	// one second's worth of rate.
	RateBurst float64

	// RequestTimeout bounds a request from acceptance to completion;
	// jobs that age out in the queue fail with a deadline error.
	// Default 10s.
	RequestTimeout time.Duration

	// IdleTimeout is the per-connection read deadline. Default 2m.
	IdleTimeout time.Duration

	// WriteTimeout bounds a single response write. Default 10s.
	WriteTimeout time.Duration

	// RetryAfter is the hint attached to overload rejections. Default 100ms.
	RetryAfter time.Duration

	// MaxPayload bounds wire frames; 0 means wire.DefaultMaxPayload.
	MaxPayload uint32

	// TLS, when non-nil, wraps the accept path in crypto/tls so key
	// material and resumption tokens never cross the wire in plaintext.
	// The zero value serves plaintext TCP (tests, loopback demos).
	TLS *tls.Config

	// ResumeWindow, when > 0, parks a session for that long after its
	// connection drops instead of evicting it: a client presenting the
	// session's resumption token re-attaches without re-uploading key
	// blobs, keeping its stream position and replay high-water mark.
	// 0 (the default) evicts on disconnect, as before.
	ResumeWindow time.Duration

	// TranscipherWorkers sizes the transcipher tier's dedicated heavy
	// pool — segregated from the Workers pool above so a multi-second
	// homomorphic circuit evaluation can never head-of-line-block the
	// µs-scale keystream path. ≤ 0 means 1.
	TranscipherWorkers int

	// TranscipherQueue bounds pending transcipher jobs. Default 16.
	TranscipherQueue int

	// TranscipherBudget caps the transcipher tier's estimated eval
	// backlog; requests pricing past it are rejected with
	// CodeTranscipherBudget and a drain-time Retry-After. Default 30s.
	TranscipherBudget time.Duration

	// TranscipherCacheBlocks sizes the per-session Enc(KS) block cache
	// (keystream evaluation is payload-independent, so a cache hit
	// reduces a repeat block to one homomorphic subtraction). Default 32.
	TranscipherCacheBlocks int

	// MaxEvalKeysBytes caps a session's assembled eval-key upload;
	// 0 means 256 MiB.
	MaxEvalKeysBytes uint64
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = backend.NameSoftware
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BackendWorkers <= 0 {
		c.BackendWorkers = 1
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxRequestElems <= 0 {
		c.MaxRequestElems = 1 << 16
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = c.RatePerSec
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 100 * time.Millisecond
	}
	return c
}

// jobKind discriminates scheduler jobs.
type jobKind uint8

const (
	jobEncrypt jobKind = iota + 1
	jobKeystream
	jobFlush
)

// job is one unit of scheduled work. Encrypt/keystream jobs carry their
// request inline; flush jobs re-read the owning session's pending batch
// when they run. Jobs are pooled: msg and ct are reusable element
// scratch that survives recycling, so the steady-state request path
// performs no per-job allocation.
type job struct {
	kind  jobKind
	sess  *session
	conn  *conn  // reply target, pinned at admission (the session may re-attach elsewhere)
	id    uint64 // request id (0 for flush)
	nonce uint64
	first uint64
	count int // keystream blocks
	msg   ff.Vec
	ct    ff.Vec // worker-filled result scratch
	enq   time.Time
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

func getJob() *job { return jobPool.Get().(*job) }

// putJob recycles a job, dropping references but keeping the msg/ct
// capacity. Callers must be done with both scratch vectors: replies are
// fully serialized into the frame buffer before the worker releases the
// job.
func putJob(j *job) {
	j.kind, j.sess, j.conn = 0, nil, nil
	j.id, j.nonce, j.first, j.count = 0, 0, 0, 0
	jobPool.Put(j)
}

// resizeVec returns v resized to n elements, reallocating only when the
// capacity does not cover n.
func resizeVec(v ff.Vec, n int) ff.Vec {
	if cap(v) >= n {
		return v[:n]
	}
	return ff.NewVec(n)
}

// Server is the serving tier. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg Config
	m   *metrics

	// tc hosts the per-session homomorphic transcipher engines on its
	// own heavy pool, segregated from the scheduler queue above so
	// circuit evaluations never block the keystream path.
	tc *transcipher.Service

	// runCtx cancels in-flight backend work on forced shutdown.
	runCtx    context.Context
	runCancel context.CancelFunc

	// qmu orders submissions against queue close: submit holds RLock,
	// Shutdown takes Lock before closing, so a send can never race a
	// close. draining is checked under the same lock.
	qmu      sync.RWMutex
	queue    chan *job
	draining bool
	depth    atomic.Int64

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	mu        sync.Mutex
	ln        net.Listener
	conns     map[*conn]struct{}
	sessions  map[uint32]*session
	streams   map[streamKey]uint32 // live (key fingerprint, nonce) → session id
	nextSess  uint32
	serving   bool
	shutdown  bool
	latencyNS atomic.Int64 // EWMA-ish last-request latency, for retry hints

	// resumeSecret keys the HMAC over resumption tokens; drawn once per
	// server from crypto/rand, never serialized.
	resumeSecret [32]byte
}

// streamKey identifies one keystream: a symmetric key fingerprint plus
// the stream nonce. Two live sessions sharing a streamKey would derive
// identical keystream — a two-time pad — so opens are rejected against
// this registry.
type streamKey struct {
	fp    [32]byte
	nonce uint64
}

// New validates the configuration (the backend name must be registered)
// and returns a stopped server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	known := false
	for _, n := range backend.Names() {
		if n == cfg.Backend {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("server: unknown backend %q (have %v)", cfg.Backend, backend.Names())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		m:         newMetrics(),
		runCtx:    ctx,
		runCancel: cancel,
		queue:     make(chan *job, cfg.QueueBound),
		conns:     map[*conn]struct{}{},
		sessions:  map[uint32]*session{},
		streams:   map[streamKey]uint32{},
	}
	if _, err := rand.Read(s.resumeSecret[:]); err != nil {
		cancel()
		return nil, fmt.Errorf("server: resumption secret: %w", err)
	}
	s.tc = transcipher.New(transcipher.Config{
		Workers:        cfg.TranscipherWorkers,
		Queue:          cfg.TranscipherQueue,
		Budget:         cfg.TranscipherBudget,
		CacheBlocks:    cfg.TranscipherCacheBlocks,
		MaxUploadBytes: cfg.MaxEvalKeysBytes,
	})
	return s, nil
}

// Backend returns the substrate name sessions run on.
func (s *Server) Backend() string { return s.cfg.Backend }

// Addr returns the bound listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// SessionCount returns the number of live sessions (for tests and ops).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// QueueDepth returns the current scheduler queue depth.
func (s *Server) QueueDepth() int { return int(s.depth.Load()) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve starts the worker pool and accepts connections on ln until the
// listener fails or Shutdown closes it; a clean shutdown returns nil.
// With Config.TLS set, ln is wrapped in a TLS listener here, so both
// Serve and ListenAndServe speak TLS without double-wrapping.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.TLS != nil {
		ln = tls.NewListener(ln, s.cfg.TLS)
	}
	s.mu.Lock()
	if s.serving || s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already served or shut down")
	}
	s.serving = true
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.shutdown
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.m.connsTotal.Inc()
		s.m.connsActive.Set(int64(s.connCount()))
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			c.serve()
		}()
	}
}

func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Shutdown gracefully stops the server: it closes the listener, rejects
// new work with ErrShuttingDown, drains the scheduler queue, then closes
// connections and session backends. If ctx expires first, in-flight
// backend work is cancelled and connections are torn down immediately;
// ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}

	// Stop admitting work, then close the queue so idle workers exit.
	// Submitters hold qmu.RLock while sending, so the close cannot race
	// an in-flight send.
	s.qmu.Lock()
	s.draining = true
	close(s.queue)
	s.qmu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.runCancel() // abort in-flight backend work
		<-drained
	}

	// Drain the transcipher tier while connections are still up, so
	// in-flight circuit evaluations can deliver their replies.
	s.tc.Close()

	// Queue is drained; now tear down connections and sessions.
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	s.connWG.Wait()
	s.runCancel()
	return err
}

// submit enqueues a job without blocking. A full queue is backpressure:
// the caller gets ErrOverloaded and the client a Retry-After hint.
func (s *Server) submit(j *job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining {
		return ErrShuttingDown
	}
	select {
	case s.queue <- j:
		s.m.queueDepth.Set(s.depth.Add(1))
		return nil
	default:
		return ErrOverloaded
	}
}

// retryAfter is the delay hint attached to overload rejections: the
// configured floor, or the last observed request latency scaled by the
// queue bound when that is larger — a crude but self-adjusting estimate
// of when a queue slot will be free.
func (s *Server) retryAfter() time.Duration {
	hint := s.cfg.RetryAfter
	if last := time.Duration(s.latencyNS.Load()); last > 0 {
		if est := last * 2; est > hint {
			hint = est
		}
	}
	return hint
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.m.queueDepth.Set(s.depth.Add(-1))
		s.run(j)
	}
}

// run executes one job. The per-request deadline is enforced at
// dequeue: a job that aged out in the queue is failed without touching
// the backend (a per-job context.WithDeadline here used to cost two
// allocations and a timer per request; queue residency is where the
// budget is actually spent, and in-flight backend work stays bounded by
// runCtx plus the substrate's own block-granular cancellation checks).
func (s *Server) run(j *job) {
	defer putJob(j)
	sess := j.sess
	if time.Since(j.enq) > s.cfg.RequestTimeout {
		switch j.kind {
		case jobFlush:
			sess.expireFlush(context.DeadlineExceeded)
		default:
			j.conn.sendJobError(sess, j.id, context.DeadlineExceeded)
		}
		s.observeLatency(j.enq)
		return
	}

	// Replies go to j.conn, the connection that admitted the request: a
	// session that detached and resumed elsewhere mid-flight must not
	// leak a stale reply into the new connection's request-id space.
	switch j.kind {
	case jobFlush:
		sess.runFlush(s.runCtx)
	case jobEncrypt:
		sess.dispatch.Inc()
		j.ct = resizeVec(j.ct, len(j.msg))
		if err := encryptInto(s.runCtx, sess.cipher, j.ct, j.nonce, j.msg); err != nil {
			j.conn.sendJobError(sess, j.id, err)
		} else {
			j.conn.sendData(sess, j.id, 0, j.ct)
		}
	case jobKeystream:
		sess.dispatch.Inc()
		j.ct = resizeVec(j.ct, j.count*sess.t)
		if err := keystreamInto(s.runCtx, sess.cipher, j.ct, j.nonce, j.first, j.count); err != nil {
			j.conn.sendJobError(sess, j.id, err)
		} else {
			j.conn.sendData(sess, j.id, 0, j.ct)
		}
	}
	s.observeLatency(j.enq)
}

func (s *Server) observeLatency(enq time.Time) {
	lat := time.Since(enq)
	s.m.requestNS.Observe(lat.Nanoseconds())
	s.latencyNS.Store(lat.Nanoseconds())
}

// encryptInto dispatches to the cipher's allocation-free path when it
// has one; wrapped ciphers that don't forward backend.IntoCipher fall
// back to the allocating method.
func encryptInto(ctx context.Context, cipher backend.BlockCipher, dst ff.Vec, nonce uint64, msg ff.Vec) error {
	if ic, ok := cipher.(backend.IntoCipher); ok {
		return ic.EncryptInto(ctx, dst, nonce, msg)
	}
	ct, err := cipher.Encrypt(ctx, nonce, msg)
	if err != nil {
		return err
	}
	copy(dst, ct)
	return nil
}

// keystreamInto is the bulk-keystream analogue of encryptInto.
func keystreamInto(ctx context.Context, cipher backend.BlockCipher, dst ff.Vec, nonce, first uint64, count int) error {
	if ic, ok := cipher.(backend.IntoCipher); ok {
		return ic.KeyStreamBlocksInto(ctx, dst, nonce, first, count)
	}
	ks, err := cipher.KeyStreamBlocks(ctx, nonce, first, count)
	if err != nil {
		return err
	}
	copy(dst, ks)
	return nil
}

// addSession registers a freshly opened session, enforcing MaxSessions
// and rejecting (key, nonce) pairs already bound to a live session —
// two sessions on one streamKey would derive identical keystream. The
// check and the insert happen under one lock, so concurrent opens of
// the same pair cannot both succeed.
func (s *Server) addSession(sess *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return ErrShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return ErrOverloaded
	}
	// Keyless (transcipher-only) sessions derive no keystream, so the
	// two-time-pad registry does not apply to them.
	key := streamKey{fp: sess.keyFP, nonce: sess.nonce}
	if !sess.keyless {
		if owner, dup := s.streams[key]; dup {
			s.m.rejectedDupNonce.Inc()
			return fmt.Errorf("%w (session %d)", ErrDuplicateNonce, owner)
		}
	}
	s.nextSess++
	sess.id = s.nextSess
	s.sessions[sess.id] = sess
	if !sess.keyless {
		s.streams[key] = sess.id
	}
	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Set(int64(len(s.sessions)))
	return nil
}

// dropSession removes a session from the server and stream-registry
// tables (the session's own close handles cipher teardown).
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sess.id]; ok {
		delete(s.sessions, sess.id)
		key := streamKey{fp: sess.keyFP, nonce: sess.nonce}
		if !sess.keyless && s.streams[key] == sess.id {
			delete(s.streams, key)
		}
		s.m.sessionsActive.Set(int64(len(s.sessions)))
	}
}

// dropConn removes a closed connection from the server table.
func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	n := len(s.conns)
	s.mu.Unlock()
	s.m.connsActive.Set(int64(n))
}
