package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/ff"
)

// startBenchServer boots a server on loopback TCP and registers its
// shutdown with the benchmark.
func startBenchServer(b *testing.B, cfg Config) net.Addr {
	b.Helper()
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	})
	return ln.Addr()
}

// BenchmarkServerThroughput measures end-to-end serving throughput:
// framed request over loopback TCP, scheduler dispatch, software PASTA
// keystream, masked response. Bytes/op counts plaintext payload moved.
// allocs/op is the whole-stack budget (client encode, server decode,
// dispatch, reply, client decode) — `make bench-guard` holds it to the
// committed bound.
func BenchmarkServerThroughput(b *testing.B) {
	addr := startBenchServer(b, Config{Workers: 0, QueueBound: 1024})

	const msgLen = 128 // four PASTA-4 blocks per request
	var nextSess atomic.Uint64
	b.SetBytes(msgLen * 8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := Dial(addr.String())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		id := nextSess.Add(1)
		sess, err := c.OpenSession(pasta4Open(testKey(64, id, ff.P17.P()), id))
		if err != nil {
			b.Error(err)
			return
		}
		msg := testMsg(msgLen, id, sess.Modulus)
		nonce := uint64(0)
		for pb.Next() {
			nonce++
			if _, err := sess.Encrypt(nonce, msg); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServerThroughputParallel sweeps the concurrent-session count
// (each session its own connection, key, and request loop) and reports
// aggregate MB/s and elems/s. The goroutine count is pinned to the
// session count — unlike RunParallel, which scales with GOMAXPROCS —
// so the sweep exercises real multi-tenant contention on the scheduler
// queue, the frame-buffer pool, and the per-connection outboxes.
func BenchmarkServerThroughputParallel(b *testing.B) {
	for _, sessions := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchSessions(b, sessions, Config{Workers: 0, QueueBound: 1024, MaxSessions: 2048})
		})
	}
	// Accel-backed serving: every session runs the cycle-accurate
	// cryptoprocessor model (event-driven stepping). The units sweep is
	// the farm-scaling experiment — with AccelUnits > 1 each session's
	// cipher fans its blocks across N modelled peripherals, so the
	// units=4 row should show multi-unit throughput scaling over units=1.
	for _, units := range []int{1, 4} {
		b.Run(fmt.Sprintf("accel/units=%d/sessions=4", units), func(b *testing.B) {
			benchSessions(b, 4, Config{
				Backend: backend.NameAccel, AccelUnits: units,
				Workers: 0, QueueBound: 1024, MaxSessions: 2048,
			})
		})
	}
}

// benchSessions drives b.N encrypt requests across the given number of
// live sessions, claiming work from a shared counter.
func benchSessions(b *testing.B, sessions int, cfg Config) {
	b.Helper()
	addr := startBenchServer(b, cfg)

	const msgLen = 128
	type tenant struct {
		c    *Client
		sess *Session
		msg  ff.Vec
	}
	tenants := make([]tenant, sessions)
	for i := range tenants {
		c, err := Dial(addr.String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		id := uint64(i + 1)
		sess, err := c.OpenSession(pasta4Open(testKey(64, id, ff.P17.P()), id))
		if err != nil {
			b.Fatal(err)
		}
		tenants[i] = tenant{c: c, sess: sess, msg: testMsg(msgLen, id, sess.Modulus)}
	}

	b.SetBytes(msgLen * 8)
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for i := range tenants {
		wg.Add(1)
		go func(tn tenant) {
			defer wg.Done()
			nonce := uint64(0)
			for next.Add(1) <= int64(b.N) {
				nonce++
				if _, err := tn.sess.Encrypt(nonce, tn.msg); err != nil {
					b.Error(err)
					return
				}
			}
		}(tenants[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*msgLen/s, "elems/s")
	}
}

// nullBackendName is a registered benchmark-only substrate whose
// keystream is free (all zeros), isolating the serving-tier overhead —
// framing, scheduling, pooling, socket I/O — from cipher time. On a
// single-core host the PASTA-4 software kernel dominates end-to-end
// throughput (~450µs per 32-element block), so this is the benchmark
// that actually measures the request pipeline.
const nullBackendName = "nullbench"

var registerNullOnce sync.Once

func registerNullBackend() {
	registerNullOnce.Do(func() {
		backend.Register(nullBackendName, func(cfg backend.Config) (backend.BlockCipher, error) {
			return &nullCipher{t: 32, mod: ff.P17}, nil
		})
	})
}

// nullCipher implements backend.BlockCipher and backend.IntoCipher with
// a zero keystream: Encrypt is a copy, keystream is a clear.
type nullCipher struct {
	t   int
	mod ff.Modulus
}

func (n *nullCipher) Name() string         { return nullBackendName }
func (n *nullCipher) Scheme() string       { return backend.SchemePasta }
func (n *nullCipher) BlockSize() int       { return n.t }
func (n *nullCipher) Modulus() ff.Modulus  { return n.mod }
func (n *nullCipher) Stats() backend.Stats { return backend.Stats{Backend: nullBackendName} }
func (n *nullCipher) Close() error         { return nil }

func (n *nullCipher) KeyStreamInto(ctx context.Context, dst ff.Vec, nonce, block uint64) error {
	clear(dst)
	return nil
}

func (n *nullCipher) KeyStreamBlocks(ctx context.Context, nonce, first uint64, count int) (ff.Vec, error) {
	return ff.NewVec(count * n.t), nil
}

func (n *nullCipher) KeyStreamBlocksInto(ctx context.Context, dst ff.Vec, nonce, first uint64, count int) error {
	clear(dst)
	return nil
}

func (n *nullCipher) Encrypt(ctx context.Context, nonce uint64, msg ff.Vec) (ff.Vec, error) {
	out := ff.NewVec(len(msg))
	copy(out, msg)
	return out, nil
}

func (n *nullCipher) EncryptInto(ctx context.Context, dst ff.Vec, nonce uint64, msg ff.Vec) error {
	copy(dst, msg)
	return nil
}

func (n *nullCipher) Decrypt(ctx context.Context, nonce uint64, ct ff.Vec) (ff.Vec, error) {
	out := ff.NewVec(len(ct))
	copy(out, ct)
	return out, nil
}

// BenchmarkServerOverhead is BenchmarkServerThroughput on the free
// cipher: pure serving-tier cost per request round trip.
func BenchmarkServerOverhead(b *testing.B) {
	registerNullBackend()
	addr := startBenchServer(b, Config{Backend: nullBackendName, Workers: 0, QueueBound: 1024})

	c, err := Dial(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess, err := c.OpenSession(pasta4Open(testKey(64, 1, ff.P17.P()), 1))
	if err != nil {
		b.Fatal(err)
	}
	const msgLen = 128
	msg := testMsg(msgLen, 1, sess.Modulus)
	b.SetBytes(msgLen * 8)
	b.ResetTimer()
	nonce := uint64(0)
	for i := 0; i < b.N; i++ {
		nonce++
		if _, err := sess.Encrypt(nonce, msg); err != nil {
			b.Fatal(err)
		}
	}
}
