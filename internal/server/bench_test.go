package server

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ff"
)

// BenchmarkServerThroughput measures end-to-end serving throughput:
// framed request over loopback TCP, scheduler dispatch, software PASTA
// keystream, masked response. Bytes/op counts plaintext payload moved.
func BenchmarkServerThroughput(b *testing.B) {
	srv, err := New(Config{Workers: 0, QueueBound: 1024})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	const msgLen = 128 // four PASTA-4 blocks per request
	var nextSess atomic.Uint64
	b.SetBytes(msgLen * 8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := Dial(ln.Addr().String())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		id := nextSess.Add(1)
		sess, err := c.OpenSession(pasta4Open(testKey(64, id, ff.P17.P()), id))
		if err != nil {
			b.Error(err)
			return
		}
		msg := testMsg(msgLen, id, sess.Modulus)
		nonce := uint64(0)
		for pb.Next() {
			nonce++
			if _, err := sess.Encrypt(nonce, msg); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
