package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
	"testing"
)

// hheParamsFor couples a PASTA instance with a matching toy BFV instance
// so the hhe.Client oracle can be built over standard cipher parameters.
func hheParamsFor(par pasta.Params) (hhe.Params, error) {
	bp, err := bfv.NewParams(1024, 55, 4, par.Mod.P())
	if err != nil {
		return hhe.Params{}, err
	}
	return hhe.Params{Pasta: par, BFV: bp}, nil
}

// slowBackendName is a registered test-only substrate that executes on
// the software cipher after a fixed context-aware delay, so scheduler
// tests can hold the single worker busy deterministically.
const slowBackendName = "slowtest"

const slowDelay = 40 * time.Millisecond

var registerSlowOnce sync.Once

func registerSlowBackend(t *testing.T) {
	t.Helper()
	registerSlowOnce.Do(func() {
		backend.Register(slowBackendName, func(cfg backend.Config) (backend.BlockCipher, error) {
			inner, err := backend.Open(backend.NameSoftware, cfg)
			if err != nil {
				return nil, err
			}
			return &slowCipher{BlockCipher: inner}, nil
		})
	})
}

type slowCipher struct {
	backend.BlockCipher
}

func (s *slowCipher) stall(ctx context.Context) error {
	select {
	case <-time.After(slowDelay):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *slowCipher) KeyStreamInto(ctx context.Context, dst ff.Vec, nonce, block uint64) error {
	if err := s.stall(ctx); err != nil {
		return err
	}
	return s.BlockCipher.KeyStreamInto(ctx, dst, nonce, block)
}

func (s *slowCipher) KeyStreamBlocks(ctx context.Context, nonce, first uint64, count int) (ff.Vec, error) {
	if err := s.stall(ctx); err != nil {
		return nil, err
	}
	return s.BlockCipher.KeyStreamBlocks(ctx, nonce, first, count)
}

func (s *slowCipher) Encrypt(ctx context.Context, nonce uint64, msg ff.Vec) (ff.Vec, error) {
	if err := s.stall(ctx); err != nil {
		return nil, err
	}
	return s.BlockCipher.Encrypt(ctx, nonce, msg)
}

func (s *slowCipher) Decrypt(ctx context.Context, nonce uint64, ct ff.Vec) (ff.Vec, error) {
	if err := s.stall(ctx); err != nil {
		return nil, err
	}
	return s.BlockCipher.Decrypt(ctx, nonce, ct)
}
