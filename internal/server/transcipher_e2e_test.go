package server

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
	"repro/internal/wire"
)

// netFixture is the asymmetric-deployment cast: an edge-side hhe client
// holding the symmetric key and BFV secret key, its serialized eval-key
// blob, and a local PackedServer oracle built from the SAME blob (every
// EvalKeysBlob call draws fresh key-encryption randomness, so only a
// server built from the uploaded bytes is byte-comparable).
type netFixture struct {
	par    hhe.Params
	client *hhe.Client
	blob   []byte
	oracle *hhe.PackedServer
}

func newNetFixture(t testing.TB) *netFixture {
	t.Helper()
	par, err := hhe.NewToyParams(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "net-transcipher")
	client, err := hhe.NewClient(par, key, []byte{33})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := client.EvalKeysBlob()
	if err != nil {
		t.Fatal(err)
	}
	bp, ctx, keys, err := hhe.UnmarshalPackedEvalKeys(blob)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := hhe.NewPackedServer(hhe.Params{Pasta: par.Pasta, BFV: bp}, ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	return &netFixture{par: par, client: client, blob: blob, oracle: oracle}
}

// keylessToyOpen matches newNetFixture's pasta instance (ToyParams(4, 2,
// P17)) with no symmetric key: a transcipher-only session.
func keylessToyOpen(nonce uint64) wire.SessionOpen {
	return wire.SessionOpen{Width: 17, Rounds: 2, T: 4, Nonce: nonce}
}

// TestTranscipherE2E is the tentpole acceptance test: a client holding
// only BFV key material enrolls over real TCP, transciphers two blocks,
// and the networked replies are bit-identical to the local PackedServer
// oracle; decrypting them recovers the messages.
func TestTranscipherE2E(t *testing.T) {
	fx := newNetFixture(t)
	_, addr := startServer(t, Config{TranscipherBudget: time.Hour})
	c := dialClient(t, addr)

	sess, err := c.OpenSession(keylessToyOpen(801))
	if err != nil {
		t.Fatalf("keyless open: %v", err)
	}
	if sess.Cipher != "pasta" || sess.BlockSize != 4 {
		t.Fatalf("keyless ack: cipher %q block %d, want pasta/4", sess.Cipher, sess.BlockSize)
	}

	// Keystream-deriving requests must be refused: there is no key.
	if _, err := sess.Keystream(1, 0, 1); err == nil {
		t.Fatal("keyless session served keystream")
	}
	// Transcipher before enrollment maps to the typed sentinel.
	msg0, msg1 := ff.Vec{11, 22, 33, 44}, ff.Vec{5, 6, 7, 65000}
	sym0, err := fx.client.EncryptBlock(7, 0, msg0)
	if err != nil {
		t.Fatal(err)
	}
	sym1, err := fx.client.EncryptBlock(7, 1, msg1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Transcipher(7, 0, sym0); !errors.Is(err, ErrNoEvalKeys) {
		t.Fatalf("pre-enrollment transcipher: got %v, want ErrNoEvalKeys", err)
	}

	// Enroll in deliberately small chunks to exercise the resumable
	// framing end to end (the final ack must wait for the engine build).
	if err := sess.uploadEvalKeys(fx.blob, uint64(len(fx.blob))/5+1); err != nil {
		t.Fatalf("UploadEvalKeys: %v", err)
	}

	symCt := append(append(ff.Vec{}, sym0...), sym1...)
	cts, err := sess.Transcipher(7, 0, symCt)
	if err != nil {
		t.Fatalf("Transcipher: %v", err)
	}
	if len(cts) != 2 {
		t.Fatalf("got %d ciphertexts, want 2", len(cts))
	}

	ctx := fx.oracle.Context()
	for i, tc := range []struct {
		msg ff.Vec
		sym ff.Vec
	}{{msg0, sym0}, {msg1, sym1}} {
		wantCt, err := fx.oracle.Transcipher(7, uint64(i), tc.sym)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wantCt.MarshalBinary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cts[i], want) {
			t.Fatalf("block %d: networked reply is not bit-identical to the local oracle", i)
		}
		ct, err := ctx.UnmarshalCiphertext(cts[i])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := fx.client.DecryptPacked(ct, len(tc.msg))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(tc.msg) {
			t.Fatalf("block %d decrypts to %v, want %v", i, dec, tc.msg)
		}
	}

	// A repeat request serves Enc(KS) from the cache — still the exact
	// same bytes.
	again, err := sess.Transcipher(7, 0, symCt)
	if err != nil {
		t.Fatalf("cached Transcipher: %v", err)
	}
	for i := range cts {
		if !bytes.Equal(cts[i], again[i]) {
			t.Fatalf("block %d: cache-hit reply differs from cold evaluation", i)
		}
	}
}

// TestTranscipherDoesNotBlockKeystream: with the heavy pool busy on a
// multi-block circuit evaluation, concurrent keystream sessions must
// keep their µs-scale latency — the pools are segregated, so the only
// coupling is the shared host CPU.
func TestTranscipherDoesNotBlockKeystream(t *testing.T) {
	fx := newNetFixture(t)
	_, addr := startServer(t, Config{TranscipherBudget: time.Hour})
	c := dialClient(t, addr)

	heavy, err := c.OpenSession(keylessToyOpen(901))
	if err != nil {
		t.Fatal(err)
	}
	if err := heavy.UploadEvalKeys(fx.blob); err != nil {
		t.Fatal(err)
	}
	const blocks = 4
	symCt := make(ff.Vec, 0, blocks*4)
	for b := uint64(0); b < blocks; b++ {
		sym, err := fx.client.EncryptBlock(9, b, ff.Vec{1, 2, 3, uint64(b)})
		if err != nil {
			t.Fatal(err)
		}
		symCt = append(symCt, sym...)
	}

	ks, err := c.OpenSession(toyOpen(4, testKey(8, 41, ff.P17.P()), 902))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := heavy.Transcipher(9, 0, symCt)
		done <- err
	}()

	// Hammer the latency-sensitive path while the circuit runs. The
	// bound is loose (CI hosts jitter) but far below a single packed
	// circuit evaluation, so a shared queue would trip it immediately.
	var wg sync.WaitGroup
	var worst atomic64Duration
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				start := time.Now()
				if _, err := ks.Keystream(uint64(w), uint64(i), 1); err != nil {
					t.Errorf("keystream under transcipher load: %v", err)
					return
				}
				worst.maxOf(time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("background transcipher: %v", err)
	}
	if w := worst.load(); w > 2*time.Second {
		t.Fatalf("worst keystream latency %v under transcipher load", w)
	}
	t.Logf("worst keystream latency under %d-block transcipher: %v", blocks, worst.load())
}

// atomic64Duration tracks a running max latency across goroutines.
type atomic64Duration struct {
	mu sync.Mutex
	d  time.Duration
}

func (a *atomic64Duration) maxOf(d time.Duration) {
	a.mu.Lock()
	if d > a.d {
		a.d = d
	}
	a.mu.Unlock()
}

func (a *atomic64Duration) load() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}
