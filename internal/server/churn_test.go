package server

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

// testTLSPair builds an in-memory loopback certificate: the server
// config serves it, the client config trusts it. No files — the PEM
// flag path is covered by cmd/hheserver's TestTLSSmoke.
func testTLSPair(t *testing.T) (serverCfg, clientCfg *tls.Config) {
	t.Helper()
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "server-churn-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	serverCfg = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: priv, Leaf: leaf}},
		MinVersion:   tls.VersionTLS12,
	}
	return serverCfg, &tls.Config{RootCAs: pool}
}

// TestChurnReconnectStorm is the PR's acceptance test: a large
// population of short-lived sessions over TLS, every one interrupted
// mid-stream by an abrupt disconnect and resumed by token on a fresh
// connection — with replay probes woven through the storm — must
// produce ciphertext bit-identical to the sequential hhe.Client oracle
// on both the software and accelerator backends.
func TestChurnReconnectStorm(t *testing.T) {
	total := 10000
	if raceEnabled {
		total = 1500
	}
	if testing.Short() {
		total = 300
	}
	const (
		keyCount = 8
		blk      = 4  // toy PASTA block: keeps 10k sessions affordable
		msgLen   = 12 // 6 elements before the disconnect, 6 after
		cut      = 6
		workers  = 16
		perConn  = 8 // sessions opened per connection in the storm
	)
	par, err := pasta.ToyParams(blk, 1, ff.P17)
	if err != nil {
		t.Fatal(err)
	}
	p := par.Mod.P()
	hp, err := hheParamsFor(par)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]uint64, keyCount)
	oracles := make([]*hhe.Client, keyCount)
	for k := range keys {
		keys[k] = testKey(2*blk, uint64(k)+31, p)
		oracles[k], err = hhe.NewClient(hp, pasta.Key(keys[k]), []byte("churn-oracle"))
		if err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	for _, name := range []string{backend.NameSoftware, backend.NameAccel} {
		sessions := total
		if name == backend.NameAccel {
			sessions = total / 10 // the modelled accelerator is cycle-accurate, so slower
		}
		t.Run(fmt.Sprintf("%s/%d", name, sessions), func(t *testing.T) {
			serverTLS, clientTLS := testTLSPair(t)
			_, addr := startServer(t, Config{
				Backend:      name,
				TLS:          serverTLS,
				ResumeWindow: time.Minute,
				QueueBound:   1024,
			})

			var next atomic.Uint64
			var replaysCaught atomic.Uint64
			errCh := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						base := int(next.Add(perConn)) - perConn
						if base >= sessions {
							return
						}
						n := perConn
						if base+n > sessions {
							n = sessions - base
						}
						if err := churnBatch(addr, clientTLS, p, oracles, keys, base, n, cut, msgLen, &replaysCaught); err != nil {
							errCh <- fmt.Errorf("sessions %d..%d: %w", base, base+n-1, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			if replaysCaught.Load() == 0 {
				t.Error("no replay probe was rejected during the storm")
			}
		})
	}

	// Everything the storm spawned — conns, parked-session timers,
	// outbox flushers — must be gone once the servers shut down.
	waitFor(t, 10*time.Second, "goroutines to drain after the storm", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// churnBatch drives n sessions through one reconnect cycle: open over
// TLS, stream the first part, lose the connection abruptly, resume by
// token on a new connection, stream the rest, and check the assembled
// ciphertext against the oracle.
func churnBatch(addr string, clientTLS *tls.Config, p uint64, oracles []*hhe.Client,
	keys [][]uint64, base, n, cut, msgLen int, replaysCaught *atomic.Uint64) error {
	type half struct {
		token []byte
		msg   ff.Vec
		want  ff.Vec
		ct    ff.Vec
		tail  uint64
	}
	states := make([]half, n)

	c, err := DialTLS(addr, clientTLS)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	for i := 0; i < n; i++ {
		idx := base + i
		k := idx % len(keys)
		nonce := uint64(1000 + idx)
		st := &states[i]
		st.msg = testMsg(msgLen, nonce, p)
		if st.want, err = oracles[k].Encrypt(nonce, st.msg); err != nil {
			c.Close()
			return fmt.Errorf("oracle %d: %w", idx, err)
		}
		sess, err := c.OpenSession(toyOpen(4, keys[k], nonce))
		if err != nil {
			c.Close()
			return fmt.Errorf("open %d: %w", idx, err)
		}
		if len(sess.Token) == 0 {
			c.Close()
			return fmt.Errorf("open %d: no resumption token", idx)
		}
		ct, off, err := sess.EncryptChunk(st.msg[:cut])
		if err != nil {
			c.Close()
			return fmt.Errorf("part1 %d: %w", idx, err)
		}
		if off != 0 {
			c.Close()
			return fmt.Errorf("part1 %d at offset %d, want 0", idx, off)
		}
		st.ct = ct
		st.token = sess.Token
		st.tail = uint64(cut)
	}
	// The storm: drop the connection with every session mid-stream.
	c.Close()

	c2, err := DialTLS(addr, clientTLS)
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	defer c2.Close()
	for i := 0; i < n; i++ {
		idx := base + i
		st := &states[i]
		// The server parks the sessions asynchronously as it notices the
		// dead connection; until then the token is refused.
		var sess *Session
		deadline := time.Now().Add(15 * time.Second)
		for {
			sess, err = c2.ResumeSession(st.token)
			if err == nil || !errors.Is(err, ErrBadResume) || time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("resume %d: %w", idx, err)
		}
		if sess.Tail != st.tail {
			return fmt.Errorf("resume %d: tail %d, want %d", idx, sess.Tail, st.tail)
		}
		if idx%16 == 0 {
			// Replay probe: reusing a consumed counter on the resumed
			// session must be rejected without disturbing the stream.
			mark := sess.ctr.Load()
			sess.ctr.Store(mark - 1)
			if _, _, err := sess.EncryptChunk(st.msg[:1]); !errors.Is(err, ErrReplay) {
				return fmt.Errorf("replay probe %d: got %v, want ErrReplay", idx, err)
			}
			sess.ctr.Store(mark)
			replaysCaught.Add(1)
		}
		ct, off, err := sess.EncryptChunk(st.msg[cut:])
		if err != nil {
			return fmt.Errorf("part2 %d: %w", idx, err)
		}
		if off != st.tail {
			return fmt.Errorf("part2 %d at offset %d, want %d", idx, off, st.tail)
		}
		got := append(st.ct.Clone(), ct...)
		if !vecsEqual(got, st.want) {
			return fmt.Errorf("session %d: ciphertext diverged from oracle across resume:\n got %v\nwant %v", idx, got, st.want)
		}
		if err := sess.Close(); err != nil {
			return fmt.Errorf("close %d: %w", idx, err)
		}
	}
	return nil
}
