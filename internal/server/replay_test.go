package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TestReplayCapturedFrame is the two-time-pad regression at the byte
// level: a captured Encrypt frame resent verbatim (same counter, same
// nonce, same payload) must be rejected with CodeReplay, never answered
// with the identical keystream again. The server is torn down inside
// the test so the goroutine-leak assertion covers the replay path.
func TestReplayCapturedFrame(t *testing.T) {
	baseline := runtime.NumGoroutine()
	replays := obs.Default().Counter("server.requests.rejected.replay")
	replaysBefore := replays.Value()

	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(15 * time.Second))
	codec := wire.NewCodec(nc)

	key := testKey(8, 21, ff.P17.P())
	open := toyOpen(4, key, 77)
	open.ID = 1
	if err := codec.WriteFrame(wire.TypeSessionOpen, open.Encode()); err != nil {
		t.Fatalf("open: %v", err)
	}
	typ, payload, err := codec.ReadFrame()
	if err != nil || typ != wire.TypeSessionAck {
		t.Fatalf("open reply: %v %v", typ, err)
	}
	ack, err := wire.DecodeSessionAck(payload)
	if err != nil {
		t.Fatal(err)
	}

	msg := testMsg(4, 5, ff.P17.P())
	frame, err := wire.AppendEncryptFrame(nil, ack.Session, 2, 1, 9, msg, ack.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("first send: %v", err)
	}
	typ, payload, err = codec.ReadFrame()
	if err != nil || typ != wire.TypeData {
		t.Fatalf("first send reply: %v, %v, want data", typ, err)
	}
	var first wire.Data
	if err := wire.DecodeDataInto(&first, payload); err != nil {
		t.Fatal(err)
	}
	ct, err := first.Vec()
	if err != nil {
		t.Fatal(err)
	}
	want := oracleEncrypt(t, 4, key, 9, msg)
	if !vecsEqual(ct, want) {
		t.Fatalf("first encrypt: got %v want %v", ct, want)
	}

	// The byte-identical replay.
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("replay send: %v", err)
	}
	typ, payload, err = codec.ReadFrame()
	if err != nil || typ != wire.TypeError {
		t.Fatalf("replay reply: %v, %v, want error", typ, err)
	}
	if em, err := wire.DecodeErrorMsg(payload); err != nil || em.Code != wire.CodeReplay {
		t.Fatalf("replay rejection: %+v, %v, want CodeReplay", em, err)
	}
	if got := replays.Value() - replaysBefore; got < 1 {
		t.Errorf("server.requests.rejected.replay advanced by %d, want >= 1", got)
	}

	// A fresh counter still works: the rejection poisoned nothing.
	frame2, err := wire.AppendEncryptFrame(nil, ack.Session, 3, 2, 9, msg, ack.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame2); err != nil {
		t.Fatalf("post-replay send: %v", err)
	}
	if typ, _, err = codec.ReadFrame(); err != nil || typ != wire.TypeData {
		t.Fatalf("post-replay reply: %v, %v, want data", typ, err)
	}

	nc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after shutdown", err)
	}
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestReplayDoesNotConsumeOffsets pins the interaction between the
// anti-replay window and the stream cursor: rejected requests — a
// consumed counter and an out-of-window stale counter — must be turned
// away before any stream offset is assigned, so the offsets of the
// surviving requests stay contiguous and the assembled ciphertext still
// matches the sequential oracle.
func TestReplayDoesNotConsumeOffsets(t *testing.T) {
	_, addr := startServer(t, Config{BatchWindow: 2 * time.Millisecond})
	c := dialClient(t, addr)

	const blk = 4
	key := testKey(2*blk, 22, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(blk, key, 78))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	msg := testMsg(3*blk, 6, sess.Modulus)

	ct0, off0, err := sess.EncryptChunk(msg[:blk])
	if err != nil {
		t.Fatalf("chunk 0: %v", err)
	}
	if off0 != 0 {
		t.Fatalf("chunk 0 at offset %d, want 0", off0)
	}

	// Replay: rewind the client's counter so the next request reuses the
	// consumed value. The request must fail without touching the stream.
	mark := sess.ctr.Load()
	sess.ctr.Store(mark - 1)
	if _, _, err := sess.EncryptChunk(msg[:1]); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed counter: got %v, want ErrReplay", err)
	}
	sess.ctr.Store(mark)

	ct1, off1, err := sess.EncryptChunk(msg[blk : 2*blk])
	if err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	if off1 != uint64(blk) {
		t.Fatalf("chunk 1 at offset %d, want %d — the rejected replay consumed stream offsets", off1, blk)
	}

	// Out-of-window stale counter: push the high-water mark far ahead,
	// then present a counter more than 64 below it.
	sess.ctr.Store(mark + 200)
	if _, err := sess.Keystream(78, 5, 1); err != nil {
		t.Fatalf("advancing keystream: %v", err)
	}
	high := sess.ctr.Load()
	sess.ctr.Store(high - 100)
	if _, _, err := sess.EncryptChunk(msg[:1]); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale counter: got %v, want ErrReplay", err)
	}
	sess.ctr.Store(high)

	ct2, off2, err := sess.EncryptChunk(msg[2*blk:])
	if err != nil {
		t.Fatalf("chunk 2: %v", err)
	}
	if off2 != uint64(2*blk) {
		t.Fatalf("chunk 2 at offset %d, want %d — the stale rejection consumed stream offsets", off2, 2*blk)
	}

	var got ff.Vec
	got = append(got, ct0...)
	got = append(got, ct1...)
	got = append(got, ct2...)
	want := oracleEncrypt(t, blk, key, 78, msg)
	if !vecsEqual(got, want) {
		t.Fatalf("stream ciphertext diverged from oracle after rejections: got %v want %v", got, want)
	}
}

// TestDuplicateNonceRejected: a second live session under the same
// (key fingerprint, stream nonce) pair would share a keystream — the
// open must be refused with the typed wire error. Closing the owner
// frees the pair.
func TestDuplicateNonceRejected(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialClient(t, addr)

	key := testKey(8, 23, ff.P17.P())
	sess, err := c.OpenSession(toyOpen(4, key, 400))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	if _, err := c.OpenSession(toyOpen(4, key, 400)); !errors.Is(err, ErrDuplicateNonce) {
		t.Fatalf("duplicate (key, nonce) open: got %v, want ErrDuplicateNonce", err)
	}
	// Same key under a fresh nonce, and the same nonce under a different
	// key, are both fine — only the exact pair is a reuse hazard.
	s2, err := c.OpenSession(toyOpen(4, key, 401))
	if err != nil {
		t.Fatalf("same key, fresh nonce: %v", err)
	}
	defer s2.Close()
	key2 := testKey(8, 24, ff.P17.P())
	s3, err := c.OpenSession(toyOpen(4, key2, 400))
	if err != nil {
		t.Fatalf("fresh key, same nonce: %v", err)
	}
	defer s3.Close()

	// Retiring the owner releases the pair for a legitimate re-open.
	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var reopened *Session
	waitFor(t, 5*time.Second, "the (key, nonce) pair to be released", func() bool {
		reopened, err = c.OpenSession(toyOpen(4, key, 400))
		return err == nil
	})
	reopened.Close()
}

// TestOpenSessionWipesKeyCopy: the decoded wire copy of the symmetric
// key must be zeroed once the backend cipher has cloned what it needs —
// the fingerprint, not the key, is what outlives the open.
func TestOpenSessionWipesKeyCopy(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})

	key := testKey(8, 25, ff.P17.P())
	wireCopy := append([]uint64(nil), key...)
	m := toyOpen(4, wireCopy, 500)
	sess, err := openSession(&conn{srv: srv}, &m)
	if err != nil {
		t.Fatalf("openSession: %v", err)
	}
	defer sess.close()

	for i, w := range wireCopy {
		if w != 0 {
			t.Fatalf("decoded key word %d = %d after open, want 0 (wiped)", i, w)
		}
	}
	if sess.keyFP != keyFingerprint(key, sess.cipher.Scheme(), instanceLabel(sess.cipher)) {
		t.Fatal("session fingerprint does not match the original key")
	}
	if len(sess.token) != resumeTokenLen {
		t.Fatalf("token length %d, want %d", len(sess.token), resumeTokenLen)
	}
}
