//go:build race

package server

// raceEnabled mirrors the -race build tag; see race_off_test.go.
const raceEnabled = true
