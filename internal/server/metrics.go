package server

import (
	"sync"

	"repro/internal/obs"
)

// metrics are the serving-tier instruments, resolved once from the
// process-wide obs registry so `hheserver -metrics`/`-debug-addr` (and
// every test) sees them under the same names:
//
//	server.conns.active / server.conns.total
//	server.sessions.active / server.sessions.total / server.sessions.evicted
//	server.sessions.parked / server.sessions.resumed /
//	  server.sessions.rejected.duplicate_nonce / server.sessions.rejected.bad_resume /
//	  server.sessions.rejected.unknown_cipher
//	server.queue.depth
//	server.requests.total / server.requests.rejected.overload /
//	  server.requests.rejected.rate / server.requests.rejected.draining /
//	  server.requests.rejected.replay / server.requests.errors
//	server.request_ns      (accept→response latency histogram)
//	server.batch.flushes / server.batch.requests / server.batch.elements
//	server.write.flushes / server.write.frames / server.write.bytes
//	  (vectored reply writes: frames÷flushes is the coalescing ratio)
//	server.dispatch.<backend>   (jobs executed per substrate)
//
// The shared frame-buffer pool reports alongside these as wire.pool.get
// / wire.pool.miss / wire.pool.oversize (hits = get − miss − oversize).
type metrics struct {
	connsActive    *obs.Gauge
	connsTotal     *obs.Counter
	sessionsActive *obs.Gauge
	sessionsTotal  *obs.Counter
	evicted        *obs.Counter
	parked         *obs.Counter
	resumed        *obs.Counter

	queueDepth *obs.Gauge

	requests          *obs.Counter
	rejectedOverload  *obs.Counter
	rejectedRate      *obs.Counter
	rejectedDraining  *obs.Counter
	rejectedReplay    *obs.Counter
	rejectedDupNonce  *obs.Counter
	rejectedBadResume *obs.Counter
	rejectedCipher    *obs.Counter
	requestErrors     *obs.Counter

	requestNS    *obs.Histogram
	batchFlushes *obs.Counter
	batchReqs    *obs.Histogram
	batchElems   *obs.Histogram

	writeFlushes *obs.Counter
	writeFrames  *obs.Counter
	writeBytes   *obs.Counter
}

func newMetrics() *metrics {
	r := obs.Default()
	return &metrics{
		connsActive:       r.Gauge("server.conns.active"),
		connsTotal:        r.Counter("server.conns.total"),
		sessionsActive:    r.Gauge("server.sessions.active"),
		sessionsTotal:     r.Counter("server.sessions.total"),
		evicted:           r.Counter("server.sessions.evicted"),
		parked:            r.Counter("server.sessions.parked"),
		resumed:           r.Counter("server.sessions.resumed"),
		queueDepth:        r.Gauge("server.queue.depth"),
		requests:          r.Counter("server.requests.total"),
		rejectedOverload:  r.Counter("server.requests.rejected.overload"),
		rejectedRate:      r.Counter("server.requests.rejected.rate"),
		rejectedDraining:  r.Counter("server.requests.rejected.draining"),
		rejectedReplay:    r.Counter("server.requests.rejected.replay"),
		rejectedDupNonce:  r.Counter("server.sessions.rejected.duplicate_nonce"),
		rejectedBadResume: r.Counter("server.sessions.rejected.bad_resume"),
		rejectedCipher:    r.Counter("server.sessions.rejected.unknown_cipher"),
		requestErrors:     r.Counter("server.requests.errors"),
		requestNS:         r.Histogram("server.request_ns"),
		batchFlushes:      r.Counter("server.batch.flushes"),
		batchReqs:         r.Histogram("server.batch.requests"),
		batchElems:        r.Histogram("server.batch.elements"),
		writeFlushes:      r.Counter("server.write.flushes"),
		writeFrames:       r.Counter("server.write.frames"),
		writeBytes:        r.Counter("server.write.bytes"),
	}
}

// dispatchCounters caches the per-backend dispatch counters (the name
// set is small and stable, so one lock-guarded map resolved per session
// open is fine — job execution uses the cached handle).
var (
	dispatchMu  sync.Mutex
	dispatchFor = map[string]*obs.Counter{}
)

func dispatchCounter(backendName string) *obs.Counter {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	c, ok := dispatchFor[backendName]
	if !ok {
		c = obs.Default().Counter("server.dispatch." + backendName)
		dispatchFor[backendName] = c
	}
	return c
}
