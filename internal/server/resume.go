package server

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/ff"
)

// Session-resumption tokens let a reconnecting client re-attach to a
// parked session without re-uploading its key and EvalKey blobs. A token
// is a bearer credential:
//
//	token = session id (4 bytes LE) || HMAC-SHA256(secret, id || keyFP || nonce)
//
// where secret is a per-process random key drawn at server construction,
// keyFP is the SHA-256 fingerprint of the session's symmetric key, and
// nonce is the session's stream nonce. Binding the key fingerprint and
// nonce into the MAC means a token only ever re-attaches to the exact
// cipher stream it was minted for; binding the session id keeps lookup
// O(1). Tokens are minted over TLS and verified with hmac.Equal, and the
// replay-counter high-water mark survives the reconnect, so a resumed
// session cannot be replayed into keystream reuse. See DESIGN.md §9 for
// what tokens do and do not protect.

// resumeTokenLen is the fixed wire length of a resumption token.
const resumeTokenLen = 4 + sha256.Size

// keyFingerprint hashes the cipher name, the resolved instance label,
// and the little-endian encoding of the symmetric key words, with
// length framing so no two (scheme, label, key) triples collide by
// concatenation. The fingerprint — never the key — is kept on the
// session after the backend cipher is constructed; it indexes the
// duplicate-nonce registry and is bound into resumption-token MACs.
// Folding the cipher identity in means the same key words and nonce
// under two different ciphers (or two instances of one family) name
// two different keystreams — which they are: only an exact
// (scheme, instance, key, nonce) collision risks a two-time pad.
func keyFingerprint(key []uint64, scheme, label string) [32]byte {
	h := sha256.New()
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(len(scheme)))
	h.Write(w[:])
	h.Write([]byte(scheme))
	binary.LittleEndian.PutUint64(w[:], uint64(len(label)))
	h.Write(w[:])
	h.Write([]byte(label))
	for _, k := range key {
		binary.LittleEndian.PutUint64(w[:], k)
		h.Write(w[:])
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// instanceLabel extracts the resolved cipher-instance label from a
// backend (backend.base exposes it); wrapped ciphers without one
// contribute an empty label.
func instanceLabel(bc interface{ Scheme() string }) string {
	if l, ok := bc.(interface{ InstanceLabel() string }); ok {
		return l.InstanceLabel()
	}
	return ""
}

// mintToken builds the resumption token for a session.
func (s *Server) mintToken(id uint32, keyFP [32]byte, nonce uint64) []byte {
	mac := hmac.New(sha256.New, s.resumeSecret[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], id)
	binary.LittleEndian.PutUint64(hdr[4:], nonce)
	mac.Write(hdr[:4])
	mac.Write(keyFP[:])
	mac.Write(hdr[4:])
	token := make([]byte, 4, resumeTokenLen)
	binary.LittleEndian.PutUint32(token, id)
	return mac.Sum(token)
}

// resumeSession verifies a token and re-attaches the parked session it
// names to conn c. The session keeps its cipher, stream position, and
// replay high-water mark; only the owning connection changes.
func (s *Server) resumeSession(c *conn, token []byte) (*session, error) {
	if len(token) != resumeTokenLen {
		return nil, fmt.Errorf("%w: token is %d bytes, want %d", ErrBadResume, len(token), resumeTokenLen)
	}
	id := binary.LittleEndian.Uint32(token)
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("%w: no such session", ErrBadResume)
	}
	// The MAC binds id, key fingerprint, and nonce; a forged or stale
	// token fails here without touching session state.
	if !hmac.Equal(token, s.mintToken(id, sess.keyFP, sess.nonce)) {
		return nil, fmt.Errorf("%w: bad token", ErrBadResume)
	}
	sess.mu.Lock()
	if sess.closed || !sess.parked {
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: session is not resumable", ErrBadResume)
	}
	sess.parked = false
	if sess.parkTimer != nil {
		sess.parkTimer.Stop()
	}
	sess.conn = c
	sess.mu.Unlock()
	s.m.resumed.Inc()
	return sess, nil
}

// zeroKey wipes key material in place.
func zeroKey(key ff.Vec) {
	for i := range key {
		key[i] = 0
	}
}
