package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ff"
	"repro/internal/wire"
)

// RemoteError is a server-side rejection surfaced to a client call. It
// matches the serving-tier sentinels through errors.Is, so
// errors.Is(err, server.ErrOverloaded) works on both ends of the wire.
type RemoteError struct {
	Code       uint16
	RetryAfter time.Duration
	Msg        string
}

func (e *RemoteError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (retry after %v): %s",
			wire.CodeString(e.Code), e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("server: %s: %s", wire.CodeString(e.Code), e.Msg)
}

// Is maps protocol codes onto the package sentinels.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case wire.CodeOverloaded:
		return target == ErrOverloaded
	case wire.CodeRateLimited:
		return target == ErrRateLimited
	case wire.CodeShuttingDown:
		return target == ErrShuttingDown
	}
	return false
}

// Client is the library side of the protocol: it multiplexes concurrent
// requests over one connection, correlating responses by request id. All
// methods are safe for concurrent use.
type Client struct {
	nc    net.Conn
	codec *wire.Codec
	wmu   sync.Mutex

	// Timeout bounds each call's wait for its response (default 30s).
	Timeout time.Duration

	mu     sync.Mutex
	calls  map[uint64]chan callResult
	closed bool
	cause  error

	nextID  atomic.Uint64
	done    chan struct{}
	readerW sync.WaitGroup
}

type callResult struct {
	ack  *wire.SessionAck
	data *wire.Data
	err  error
}

// Dial connects to an hheserver.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		codec:   wire.NewCodec(nc),
		Timeout: 30 * time.Second,
		calls:   map[uint64]chan callResult{},
		done:    make(chan struct{}),
	}
	c.readerW.Add(1)
	go c.readLoop()
	return c
}

// Close tears the connection down and fails outstanding calls. It waits
// for the demultiplexer goroutine to exit.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.readerW.Wait()
	return err
}

func (c *Client) readLoop() {
	defer c.readerW.Done()
	for {
		t, payload, err := c.codec.ReadFrame()
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		switch t {
		case wire.TypeSessionAck:
			m, err := wire.DecodeSessionAck(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(m.ID, callResult{ack: m})
		case wire.TypeData:
			m, err := wire.DecodeData(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(m.ID, callResult{data: m})
		case wire.TypeError:
			m, err := wire.DecodeErrorMsg(payload)
			if err != nil {
				c.fail(err)
				return
			}
			remote := &RemoteError{Code: m.Code, Msg: m.Msg,
				RetryAfter: time.Duration(m.RetryAfterMillis) * time.Millisecond}
			if m.ID == 0 {
				// Connection-level fault: the server is about to hang up.
				c.fail(remote)
				return
			}
			c.deliver(m.ID, callResult{err: remote})
		default:
			c.fail(fmt.Errorf("%w: unexpected %v frame from server", wire.ErrBadMessage, t))
			return
		}
	}
}

// deliver routes a response to its waiting call; unclaimed responses
// (caller timed out) are dropped.
func (c *Client) deliver(id uint64, res callResult) {
	c.mu.Lock()
	ch := c.calls[id]
	delete(c.calls, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}

// fail poisons the client: every outstanding and future call returns the
// cause.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	calls := c.calls
	c.calls = map[uint64]chan callResult{}
	c.mu.Unlock()
	close(c.done)
	for _, ch := range calls {
		ch <- callResult{err: cause}
	}
}

// register reserves a response slot for a request id.
func (c *Client) register(id uint64) (chan callResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, c.cause
	}
	ch := make(chan callResult, 1)
	c.calls[id] = ch
	return ch, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
}

// send writes one frame under the write lock.
func (c *Client) send(t wire.Type, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
		return err
	}
	return c.codec.WriteFrame(t, payload)
}

// await blocks for a registered call's response.
func (c *Client) await(id uint64, ch chan callResult) (callResult, error) {
	timer := time.NewTimer(c.Timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res, res.err
	case <-c.done:
		c.mu.Lock()
		cause := c.cause
		c.mu.Unlock()
		return callResult{}, cause
	case <-timer.C:
		c.unregister(id)
		return callResult{}, fmt.Errorf("server: request %d timed out after %v", id, c.Timeout)
	}
}

// call performs one synchronous request/response exchange.
func (c *Client) call(t wire.Type, payload []byte, id uint64) (callResult, error) {
	ch, err := c.register(id)
	if err != nil {
		return callResult{}, err
	}
	if err := c.send(t, payload); err != nil {
		c.unregister(id)
		return callResult{}, err
	}
	return c.await(id, ch)
}

// OpenSession registers a session. The open's ID field is assigned by
// the client; T, Nonce, Key, etc. describe the cipher instance (see
// wire.SessionOpen).
func (c *Client) OpenSession(open wire.SessionOpen) (*Session, error) {
	open.ID = c.nextID.Add(1)
	res, err := c.call(wire.TypeSessionOpen, open.Encode(), open.ID)
	if err != nil {
		return nil, err
	}
	if res.ack == nil {
		return nil, fmt.Errorf("server: session open got no ack")
	}
	return &Session{
		c:         c,
		ID:        res.ack.Session,
		BlockSize: int(res.ack.BlockSize),
		Modulus:   res.ack.Modulus,
		Bits:      res.ack.Bits,
		Nonce:     open.Nonce,
	}, nil
}

// Session is a live server-side cipher instance addressed by id.
type Session struct {
	c         *Client
	ID        uint32
	BlockSize int    // t, elements per keystream block
	Modulus   uint64 // field prime p
	Bits      uint8  // wire packing width
	Nonce     uint64 // stream nonce fixed at open
}

// Encrypt encrypts msg with block counters from 0 — the semantics of
// backend.BlockCipher.Encrypt and the sequential hhe client.
func (s *Session) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	id := s.c.nextID.Add(1)
	count, packed, err := wire.PackVec(msg, s.Bits)
	if err != nil {
		return nil, err
	}
	req := &wire.EncryptReq{Session: s.ID, ID: id, Nonce: nonce,
		Count: count, Bits: s.Bits, Packed: packed}
	res, err := s.c.call(wire.TypeEncrypt, req.Encode(), id)
	if err != nil {
		return nil, err
	}
	return res.data.Vec()
}

// Keystream fetches count keystream blocks [first, first+count).
func (s *Session) Keystream(nonce, first uint64, count int) (ff.Vec, error) {
	id := s.c.nextID.Add(1)
	req := &wire.KeystreamReq{Session: s.ID, ID: id, Nonce: nonce,
		First: first, Count: uint32(count)}
	res, err := s.c.call(wire.TypeKeystream, req.Encode(), id)
	if err != nil {
		return nil, err
	}
	return res.data.Vec()
}

// EncryptChunk appends one chunk to the session's encryption stream and
// returns the ciphertext with its assigned stream offset.
func (s *Session) EncryptChunk(chunk ff.Vec) (ct ff.Vec, offset uint64, err error) {
	cts, offs, err := s.EncryptChunks([]ff.Vec{chunk})
	if err != nil {
		return nil, 0, err
	}
	return cts[0], offs[0], nil
}

// EncryptChunks pipelines chunks into the session's encryption stream:
// all requests go out before any response is awaited, so the server's
// batcher can coalesce small chunks into full keystream blocks. Results
// are returned in submission order with their stream offsets. The first
// failed chunk aborts collection and returns its error.
func (s *Session) EncryptChunks(chunks []ff.Vec) (cts []ff.Vec, offsets []uint64, err error) {
	ids := make([]uint64, len(chunks))
	chans := make([]chan callResult, len(chunks))
	for i, chunk := range chunks {
		id := s.c.nextID.Add(1)
		ids[i] = id
		count, packed, perr := wire.PackVec(chunk, s.Bits)
		if perr != nil {
			err = perr
		} else {
			var ch chan callResult
			if ch, err = s.c.register(id); err == nil {
				req := &wire.StreamReq{Session: s.ID, ID: id,
					Count: count, Bits: s.Bits, Packed: packed}
				if err = s.c.send(wire.TypeStream, req.Encode()); err != nil {
					s.c.unregister(id)
				} else {
					chans[i] = ch
				}
			}
		}
		if err != nil {
			break
		}
	}
	cts = make([]ff.Vec, 0, len(chunks))
	offsets = make([]uint64, 0, len(chunks))
	for i, ch := range chans {
		if ch == nil {
			break
		}
		res, aerr := s.c.await(ids[i], ch)
		if aerr != nil {
			if err == nil {
				err = aerr
			}
			continue // drain remaining registered calls
		}
		if err != nil {
			continue
		}
		v, verr := res.data.Vec()
		if verr != nil {
			err = verr
			continue
		}
		cts = append(cts, v)
		offsets = append(offsets, res.data.Offset)
	}
	if err != nil {
		return nil, nil, err
	}
	return cts, offsets, nil
}

// Close retires the session on the server (fire-and-forget).
func (s *Session) Close() error {
	m := &wire.SessionClose{Session: s.ID}
	return s.c.send(wire.TypeSessionClose, m.Encode())
}

// Unwrap-friendly helper: IsRetryable reports whether err is a transient
// rejection (overload or rate limit) and how long to wait.
func IsRetryable(err error) (retry time.Duration, ok bool) {
	var re *RemoteError
	if errors.As(err, &re) &&
		(re.Code == wire.CodeOverloaded || re.Code == wire.CodeRateLimited) {
		return re.RetryAfter, true
	}
	return 0, false
}
