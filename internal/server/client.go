package server

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ff"
	"repro/internal/wire"
)

// RemoteError is a server-side rejection surfaced to a client call. It
// matches the serving-tier sentinels through errors.Is, so
// errors.Is(err, server.ErrOverloaded) works on both ends of the wire.
type RemoteError struct {
	Code       uint16
	RetryAfter time.Duration
	Msg        string
}

func (e *RemoteError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (retry after %v): %s",
			wire.CodeString(e.Code), e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("server: %s: %s", wire.CodeString(e.Code), e.Msg)
}

// Is maps protocol codes onto the package sentinels.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case wire.CodeOverloaded:
		return target == ErrOverloaded
	case wire.CodeRateLimited:
		return target == ErrRateLimited
	case wire.CodeShuttingDown:
		return target == ErrShuttingDown
	case wire.CodeReplay:
		return target == ErrReplay
	case wire.CodeDuplicateNonce:
		return target == ErrDuplicateNonce
	case wire.CodeBadResume:
		return target == ErrBadResume
	case wire.CodeUnknownCipher:
		return target == ErrUnknownCipher
	case wire.CodeNoEvalKeys:
		return target == ErrNoEvalKeys
	case wire.CodeTranscipherBudget:
		return target == ErrTranscipherBudget
	}
	return false
}

// Client is the library side of the protocol: it multiplexes concurrent
// requests over one connection, correlating responses by request id. All
// methods are safe for concurrent use.
//
// The call hot path is pooled end to end: requests are encoded straight
// into pooled frame buffers, data responses hand their pooled read
// buffer to the waiting caller (the decoded Data aliases it; see
// DESIGN.md §9), and the per-call response channels and timers are
// recycled.
type Client struct {
	nc    net.Conn
	codec *wire.Codec
	wmu   sync.Mutex

	// Timeout bounds each call's wait for its response (default 30s).
	Timeout time.Duration

	mu     sync.Mutex
	calls  map[uint64]chan callResult
	closed bool
	cause  error

	nextID  atomic.Uint64
	done    chan struct{}
	readerW sync.WaitGroup
}

// callResult is one demultiplexed response. data is held by value; its
// Packed field aliases buf, which the receiving caller must release
// after extracting the vector.
type callResult struct {
	ack   *wire.SessionAck
	ekAck *wire.EvalKeysAck
	data  wire.Data
	buf   *wire.Buf
	err   error
}

// release returns the response's frame buffer to the pool; the caller
// must not touch res.data.Packed afterwards. Safe on results without a
// buffer.
func (r *callResult) release() {
	if r.buf != nil {
		r.buf.Release()
		r.buf = nil
	}
}

// Per-call response channels and timeout timers are recycled. A channel
// is pooled only by the caller that received its value (so a pooled
// channel is always empty); abandoned channels — timeouts, poisoned
// clients — are left to the GC.
var (
	callChanPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}
	timerPool    sync.Pool
)

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// Dial connects to an hheserver over plaintext TCP.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// DialTLS connects to a TLS-wrapped hheserver. cfg follows crypto/tls
// conventions (nil means defaults with full verification against the
// system roots; set RootCAs/Certificates for private PKI or mTLS).
func DialTLS(addr string, cfg *tls.Config) (*Client, error) {
	nc, err := tls.Dial("tcp", addr, cfg)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		codec:   wire.NewCodec(nc),
		Timeout: 30 * time.Second,
		calls:   map[uint64]chan callResult{},
		done:    make(chan struct{}),
	}
	c.readerW.Add(1)
	go c.readLoop()
	return c
}

// Close tears the connection down and fails outstanding calls. It waits
// for the demultiplexer goroutine to exit.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.readerW.Wait()
	return err
}

// readLoop reads frames into a pooled buffer. Data responses transfer
// the buffer to the waiting caller (the next frame gets a fresh one);
// control frames are decoded on the spot and the buffer is reused.
func (c *Client) readLoop() {
	defer c.readerW.Done()
	buf := wire.GetBuf(0)
	defer func() { buf.Release() }()
	for {
		t, payload, err := c.codec.ReadFrameInto(buf.B)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		buf.B = payload
		switch t {
		case wire.TypeSessionAck:
			m, err := wire.DecodeSessionAck(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(m.ID, callResult{ack: m})
		case wire.TypeEvalKeysAck:
			m, err := wire.DecodeEvalKeysAck(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(m.ID, callResult{ekAck: m})
		case wire.TypeData:
			var res callResult
			if err := wire.DecodeDataInto(&res.data, payload); err != nil {
				c.fail(err)
				return
			}
			res.buf = buf
			c.deliver(res.data.ID, res)
			buf = wire.GetBuf(0)
		case wire.TypeError:
			m, err := wire.DecodeErrorMsg(payload)
			if err != nil {
				c.fail(err)
				return
			}
			remote := &RemoteError{Code: m.Code, Msg: m.Msg,
				RetryAfter: time.Duration(m.RetryAfterMillis) * time.Millisecond}
			if m.ID == 0 {
				// Connection-level fault: the server is about to hang up.
				c.fail(remote)
				return
			}
			c.deliver(m.ID, callResult{err: remote})
		default:
			c.fail(fmt.Errorf("%w: unexpected %v frame from server", wire.ErrBadMessage, t))
			return
		}
	}
}

// deliver routes a response to its waiting call; unclaimed responses
// (caller timed out) are dropped and their buffer released.
func (c *Client) deliver(id uint64, res callResult) {
	c.mu.Lock()
	ch := c.calls[id]
	delete(c.calls, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	} else {
		res.release()
	}
}

// fail poisons the client: every outstanding and future call returns the
// cause.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	calls := c.calls
	c.calls = map[uint64]chan callResult{}
	c.mu.Unlock()
	close(c.done)
	for _, ch := range calls {
		ch <- callResult{err: cause}
	}
}

// register reserves a response slot for a request id.
func (c *Client) register(id uint64) (chan callResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, c.cause
	}
	ch := callChanPool.Get().(chan callResult)
	c.calls[id] = ch
	return ch, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
}

// sendBuf writes one pre-encoded frame under the write lock and
// releases it. wipe zeroes the frame bytes before the buffer returns to
// the shared pool — required for frames carrying key material, since
// pooled buffers are recycled across connections in this process.
func (c *Client) sendBuf(b *wire.Buf, wipe bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	defer func() {
		if wipe {
			clear(b.B)
		}
		b.Release()
	}()
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
		return err
	}
	_, err := c.nc.Write(b.B)
	return err
}

// sendMsg encodes m into a pooled frame and writes it.
func (c *Client) sendMsg(t wire.Type, m wire.Message) error {
	return c.sendMsgWipe(t, m, false)
}

func (c *Client) sendMsgWipe(t wire.Type, m wire.Message, wipe bool) error {
	b := wire.GetBuf(0)
	var err error
	b.B, err = wire.AppendMessageFrame(b.B, t, m)
	if err != nil {
		if wipe {
			clear(b.B)
		}
		b.Release()
		return err
	}
	return c.sendBuf(b, wipe)
}

// await blocks for a registered call's response. On success the caller
// owns res (release after use); the response channel is recycled only
// on this path, so pooled channels are always empty.
func (c *Client) await(id uint64, ch chan callResult) (callResult, error) {
	timer := getTimer(c.Timeout)
	select {
	case res := <-ch:
		putTimer(timer)
		callChanPool.Put(ch)
		return res, res.err
	case <-c.done:
		putTimer(timer)
		c.mu.Lock()
		cause := c.cause
		c.mu.Unlock()
		return callResult{}, cause
	case <-timer.C:
		putTimer(timer)
		c.unregister(id)
		return callResult{}, fmt.Errorf("server: request %d timed out after %v", id, c.Timeout)
	}
}

// call performs one synchronous request/response exchange.
func (c *Client) call(t wire.Type, m wire.Message, id uint64) (callResult, error) {
	return c.callWipe(t, m, id, false)
}

func (c *Client) callWipe(t wire.Type, m wire.Message, id uint64, wipe bool) (callResult, error) {
	ch, err := c.register(id)
	if err != nil {
		return callResult{}, err
	}
	if err := c.sendMsgWipe(t, m, wipe); err != nil {
		c.unregister(id)
		return callResult{}, err
	}
	return c.await(id, ch)
}

// OpenSession registers a session. The open's ID field is assigned by
// the client; T, Nonce, Key, etc. describe the cipher instance (see
// wire.SessionOpen). The pooled frame buffer that carried the key is
// wiped before recycling; the caller's open.Key slice is left intact.
func (c *Client) OpenSession(open wire.SessionOpen) (*Session, error) {
	open.ID = c.nextID.Add(1)
	res, err := c.callWipe(wire.TypeSessionOpen, &open, open.ID, true)
	if err != nil {
		res.release()
		return nil, err
	}
	defer res.release()
	if res.ack == nil {
		return nil, fmt.Errorf("server: session open got no ack")
	}
	return &Session{
		c:         c,
		ID:        res.ack.Session,
		Cipher:    res.ack.Cipher,
		BlockSize: int(res.ack.BlockSize),
		Modulus:   res.ack.Modulus,
		Bits:      res.ack.Bits,
		Nonce:     open.Nonce,
		Token:     append([]byte(nil), res.ack.Resume...),
	}, nil
}

// ResumeSession re-attaches to a parked session using the resumption
// token a previous OpenSession (or ResumeSession) returned — no key or
// EvalKey re-upload. The session resumes with its server-side stream
// position (Tail) and replay high-water mark; request counters continue
// from the acknowledged mark, so the resumed session is replay-protected
// across the reconnect.
func (c *Client) ResumeSession(token []byte) (*Session, error) {
	id := c.nextID.Add(1)
	open := wire.SessionOpen{ID: id, Resume: token}
	res, err := c.call(wire.TypeSessionOpen, &open, id)
	if err != nil {
		res.release()
		return nil, err
	}
	defer res.release()
	if res.ack == nil {
		return nil, fmt.Errorf("server: session resume got no ack")
	}
	s := &Session{
		c:         c,
		ID:        res.ack.Session,
		Cipher:    res.ack.Cipher,
		BlockSize: int(res.ack.BlockSize),
		Modulus:   res.ack.Modulus,
		Bits:      res.ack.Bits,
		Token:     append([]byte(nil), res.ack.Resume...),
		Tail:      res.ack.Tail,
	}
	s.ctr.Store(res.ack.Counter)
	return s, nil
}

// Session is a live server-side cipher instance addressed by id.
type Session struct {
	c         *Client
	ID        uint32
	Cipher    string // negotiated cipher family name, echoed by the server
	BlockSize int    // t, elements per keystream block
	Modulus   uint64 // field prime p
	Bits      uint8  // wire packing width
	Nonce     uint64 // stream nonce fixed at open (zero on a resumed handle)
	Token     []byte // resumption token; valid for ResumeSession after a disconnect
	Tail      uint64 // next stream element offset at resume (0 on a fresh open)

	// ctr numbers requests for the server's anti-replay window; seeded
	// from the acknowledged high-water mark on resume.
	ctr atomic.Uint64
}

// Encrypt encrypts msg with block counters from 0 — the semantics of
// backend.BlockCipher.Encrypt and the sequential hhe client. The
// request frame is packed in place into a pooled buffer; the only
// allocation on the call path is the returned ciphertext vector.
func (s *Session) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	id := s.c.nextID.Add(1)
	ch, err := s.c.register(id)
	if err != nil {
		return nil, err
	}
	b := wire.GetBuf(wire.HeaderSize + 37 + ff.PackedSize(len(msg), uint(s.Bits)))
	if b.B, err = wire.AppendEncryptFrame(b.B, s.ID, id, s.ctr.Add(1), nonce, msg, s.Bits); err != nil {
		b.Release()
		s.c.unregister(id)
		return nil, err
	}
	if err := s.c.sendBuf(b, false); err != nil {
		s.c.unregister(id)
		return nil, err
	}
	res, err := s.c.await(id, ch)
	if err != nil {
		res.release()
		return nil, err
	}
	v, verr := res.data.Vec()
	res.release()
	return v, verr
}

// Keystream fetches count keystream blocks [first, first+count).
func (s *Session) Keystream(nonce, first uint64, count int) (ff.Vec, error) {
	id := s.c.nextID.Add(1)
	req := &wire.KeystreamReq{Session: s.ID, ID: id, Counter: s.ctr.Add(1),
		Nonce: nonce, First: first, Count: uint32(count)}
	res, err := s.c.call(wire.TypeKeystream, req, id)
	if err != nil {
		res.release()
		return nil, err
	}
	v, verr := res.data.Vec()
	res.release()
	return v, verr
}

// EncryptChunk appends one chunk to the session's encryption stream and
// returns the ciphertext with its assigned stream offset.
func (s *Session) EncryptChunk(chunk ff.Vec) (ct ff.Vec, offset uint64, err error) {
	cts, offs, err := s.EncryptChunks([]ff.Vec{chunk})
	if err != nil {
		return nil, 0, err
	}
	return cts[0], offs[0], nil
}

// EncryptChunks pipelines chunks into the session's encryption stream:
// all requests go out before any response is awaited, so the server's
// batcher can coalesce small chunks into full keystream blocks. Results
// are returned in submission order with their stream offsets. The first
// failed chunk aborts collection and returns its error.
func (s *Session) EncryptChunks(chunks []ff.Vec) (cts []ff.Vec, offsets []uint64, err error) {
	ids := make([]uint64, len(chunks))
	chans := make([]chan callResult, len(chunks))
	for i, chunk := range chunks {
		id := s.c.nextID.Add(1)
		ids[i] = id
		var ch chan callResult
		if ch, err = s.c.register(id); err == nil {
			b := wire.GetBuf(wire.HeaderSize + 29 + ff.PackedSize(len(chunk), uint(s.Bits)))
			if b.B, err = wire.AppendStreamFrame(b.B, s.ID, id, s.ctr.Add(1), chunk, s.Bits); err != nil {
				b.Release()
				s.c.unregister(id)
			} else if err = s.c.sendBuf(b, false); err != nil {
				s.c.unregister(id)
			} else {
				chans[i] = ch
			}
		}
		if err != nil {
			break
		}
	}
	cts = make([]ff.Vec, 0, len(chunks))
	offsets = make([]uint64, 0, len(chunks))
	for i, ch := range chans {
		if ch == nil {
			break
		}
		res, aerr := s.c.await(ids[i], ch)
		if aerr != nil {
			res.release()
			if err == nil {
				err = aerr
			}
			continue // drain remaining registered calls
		}
		if err != nil {
			res.release()
			continue
		}
		v, verr := res.data.Vec()
		offset := res.data.Offset
		res.release()
		if verr != nil {
			err = verr
			continue
		}
		cts = append(cts, v)
		offsets = append(offsets, offset)
	}
	if err != nil {
		return nil, nil, err
	}
	return cts, offsets, nil
}

// UploadEvalKeys enrolls the session in the transcipher tier: it
// uploads the packed eval-key blob (hhe.Client.EvalKeysBlob) in
// resumable chunks, following the server's acknowledged high-water mark
// so a retried or partially delivered chunk never stalls the upload,
// and returns once the server acks Complete — the engine is built and
// Transcipher requests will be served. A session opened without a
// symmetric key (wire.SessionOpen with an empty Key) may still enroll;
// that is the paper's asymmetric deployment, where the uploader holds
// only BFV key material.
func (s *Session) UploadEvalKeys(blob []byte) error {
	return s.uploadEvalKeys(blob, wire.MaxEvalKeysChunk)
}

func (s *Session) uploadEvalKeys(blob []byte, chunkSize uint64) error {
	total := uint64(len(blob))
	if total == 0 {
		return fmt.Errorf("server: empty eval-key blob")
	}
	var off uint64
	for {
		end := min(off+chunkSize, total)
		id := s.c.nextID.Add(1)
		m := &wire.EvalKeysChunk{
			Session: s.ID,
			ID:      id,
			Counter: s.ctr.Add(1),
			Offset:  off,
			Total:   total,
			Chunk:   blob[off:end],
		}
		res, err := s.c.call(wire.TypeEvalKeys, m, id)
		if err != nil {
			res.release()
			return err
		}
		ack := res.ekAck
		res.release()
		if ack == nil {
			return fmt.Errorf("server: eval-key chunk got no ack")
		}
		if ack.Complete {
			return nil
		}
		if ack.Received >= total {
			// Every byte is there but the engine did not come up; the
			// server reports build failures as errors, so this is a
			// protocol violation.
			return fmt.Errorf("server: eval-key upload fully received but not complete")
		}
		if ack.Received < off {
			return fmt.Errorf("server: eval-key ack went backwards (%d < %d)", ack.Received, off)
		}
		off = ack.Received
	}
}

// Transcipher asks the server to homomorphically decrypt symCt — a
// whole number of symmetric ciphertext blocks covering block indices
// [first, first+len(symCt)/t) of nonce — under the session's uploaded
// eval keys. It returns one serialized BFV ciphertext per block
// (bfv.Context.UnmarshalCiphertext on the client's own context, then
// hhe.Client.DecryptPacked). UploadEvalKeys must have completed.
func (s *Session) Transcipher(nonce, first uint64, symCt ff.Vec) ([][]byte, error) {
	if s.BlockSize <= 0 || len(symCt) == 0 || len(symCt)%s.BlockSize != 0 {
		return nil, fmt.Errorf("server: %d elements is not a whole number of %d-element blocks",
			len(symCt), s.BlockSize)
	}
	nblocks := len(symCt) / s.BlockSize
	count, packed, err := wire.PackVec(symCt, s.Bits)
	if err != nil {
		return nil, err
	}
	id := s.c.nextID.Add(1)
	req := &wire.TranscipherReq{
		Session: s.ID,
		ID:      id,
		Counter: s.ctr.Add(1),
		Nonce:   nonce,
		First:   first,
		Count:   count,
		Bits:    s.Bits,
		Packed:  packed,
	}
	res, err := s.c.call(wire.TypeTranscipher, req, id)
	if err != nil {
		res.release()
		return nil, err
	}
	defer res.release()
	blob := res.data.Packed
	if res.data.Bits != 8 || len(blob)%nblocks != 0 {
		return nil, fmt.Errorf("server: malformed transcipher reply (%d bytes at %d bits for %d blocks)",
			len(blob), res.data.Bits, nblocks)
	}
	// The reply aliases the pooled frame buffer; copy each ciphertext
	// out before release.
	sz := len(blob) / nblocks
	out := make([][]byte, nblocks)
	for i := range out {
		out[i] = append([]byte(nil), blob[i*sz:(i+1)*sz]...)
	}
	return out, nil
}

// Close retires the session on the server (fire-and-forget).
func (s *Session) Close() error {
	return s.c.sendMsg(wire.TypeSessionClose, &wire.SessionClose{Session: s.ID})
}

// Unwrap-friendly helper: IsRetryable reports whether err is a transient
// rejection (overload or rate limit) and how long to wait.
func IsRetryable(err error) (retry time.Duration, ok bool) {
	var re *RemoteError
	if errors.As(err, &re) &&
		(re.Code == wire.CodeOverloaded || re.Code == wire.CodeRateLimited) {
		return re.RetryAfter, true
	}
	return 0, false
}
