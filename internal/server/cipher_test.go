package server

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/wire"
)

// These tests pin the per-tenant cipher negotiation added in protocol
// version 3: sessions pick any registered cipher family per SessionOpen,
// rejections are typed per-request errors (the connection survives),
// and the duplicate-nonce registry distinguishes ciphers.

// openFor builds a SessionOpen for one registered cipher family on its
// family defaults (PASTA runs the reduced PASTA-4 instance), with a
// deterministic seeded key, and returns the open plus the resolved
// instance and key for oracle construction.
func openFor(t *testing.T, cipherName, seed string, nonce uint64) (wire.SessionOpen, cipher.Instance, ff.Vec) {
	t.Helper()
	spec, err := cipher.Open(cipherName)
	if err != nil {
		t.Fatalf("cipher.Open(%q): %v", cipherName, err)
	}
	p := cipher.Params{}
	var variant uint8
	if cipherName == "pasta" {
		p.Variant, variant = 4, 4
	}
	inst, err := spec.Resolve(p)
	if err != nil {
		t.Fatalf("resolve %q: %v", cipherName, err)
	}
	key := spec.KeyFromSeed(inst, seed)
	return wire.SessionOpen{
		Scheme:  cipherName,
		Variant: variant,
		Nonce:   nonce,
		Key:     append([]uint64(nil), key...),
	}, inst, key
}

// oracleKeystream computes want = KS[first, first+count) directly from
// the cipher family's software engine — independent of the backend and
// serving layers under test.
func oracleKeystream(t *testing.T, inst cipher.Instance, key ff.Vec, nonce, first uint64, count int) ff.Vec {
	t.Helper()
	eng, err := inst.Spec.NewEngine(inst, key)
	if err != nil {
		t.Fatal(err)
	}
	out := ff.NewVec(count * inst.Block)
	for b := 0; b < count; b++ {
		if err := eng.KeyStreamInto(out[b*inst.Block:(b+1)*inst.Block], nonce, first+uint64(b)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestMixedCipherSessions is the negotiation acceptance test: 32
// concurrent tenants interleaving PASTA, HERA, and MASTA sessions on
// one server, every response bit-identical to the tenant's own cipher
// oracle. One server, one backend, three keystream designs in flight at
// once.
func TestMixedCipherSessions(t *testing.T) {
	const sessions = 32
	families := []string{"pasta", "hera", "masta"}
	_, addr := startServer(t, Config{Workers: 8, QueueBound: 512})
	const clientsN = 4
	clients := make([]*Client, clientsN)
	for i := range clients {
		clients[i] = dialClient(t, addr)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cn := families[i%len(families)]
			nonce := uint64(9000 + i)
			open, inst, key := openFor(t, cn, fmt.Sprintf("tenant-%d", i%6), nonce)
			sess, err := clients[i%clientsN].OpenSession(open)
			if err != nil {
				errCh <- fmt.Errorf("session %d (%s): open: %w", i, cn, err)
				return
			}
			defer sess.Close()
			if sess.Cipher != cn {
				errCh <- fmt.Errorf("session %d: ack echoed cipher %q, want %q", i, sess.Cipher, cn)
				return
			}
			if sess.BlockSize != inst.Block || sess.Modulus != inst.Mod.P() {
				errCh <- fmt.Errorf("session %d (%s): negotiated geometry %d/%d, want %d/%d",
					i, cn, sess.BlockSize, sess.Modulus, inst.Block, inst.Mod.P())
				return
			}

			// Raw keystream blocks against the family oracle.
			const first, count = 2, 3
			ks, err := sess.Keystream(nonce+1, first, count)
			if err != nil {
				errCh <- fmt.Errorf("session %d (%s): keystream: %w", i, cn, err)
				return
			}
			want := oracleKeystream(t, inst, key, nonce+1, first, count)
			if !vecsEqual(ks, want) {
				errCh <- fmt.Errorf("session %d (%s): keystream diverged from the %s oracle", i, cn, cn)
				return
			}

			// One-shot encrypt: additive masking over the oracle keystream,
			// with a partial last block.
			msg := testMsg(inst.Block+inst.Block/2, nonce, inst.Mod.P())
			ct, err := sess.Encrypt(nonce+7, msg)
			if err != nil {
				errCh <- fmt.Errorf("session %d (%s): encrypt: %w", i, cn, err)
				return
			}
			oks := oracleKeystream(t, inst, key, nonce+7, 0, 2)
			for j := range msg {
				if ct[j] != inst.Mod.Add(msg[j], oks[j]) {
					errCh <- fmt.Errorf("session %d (%s): ciphertext diverged at %d", i, cn, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestSameKeyNonceDifferentCiphers pins the cipher-aware duplicate-nonce
// registry: PASTA-4 and MASTA both use 64-element keys, so the same key
// words under the same nonce are representable in both families — but
// they derive different keystreams, so both sessions must be admitted.
// Only an exact (cipher, instance, key, nonce) collision is keystream
// reuse, and that one must still be refused.
func TestSameKeyNonceDifferentCiphers(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialClient(t, addr)

	key := testKey(64, 77, ff.P17.P())
	const nonce = 4242
	pastaOpen := wire.SessionOpen{Scheme: "pasta", Variant: 4, Nonce: nonce,
		Key: append([]uint64(nil), key...)}
	mastaOpen := wire.SessionOpen{Scheme: "masta", Nonce: nonce,
		Key: append([]uint64(nil), key...)}

	s1, err := c.OpenSession(pastaOpen)
	if err != nil {
		t.Fatalf("pasta open: %v", err)
	}
	defer s1.Close()
	s2, err := c.OpenSession(mastaOpen)
	if err != nil {
		t.Fatalf("masta open with the same (key, nonce) was refused: %v", err)
	}
	defer s2.Close()

	// The true reuse hazard — same cipher, key, and nonce — stays refused.
	dup := wire.SessionOpen{Scheme: "masta", Nonce: nonce, Key: append([]uint64(nil), key...)}
	if _, err := c.OpenSession(dup); !errors.Is(err, ErrDuplicateNonce) {
		t.Fatalf("exact (cipher, key, nonce) duplicate: got %v, want ErrDuplicateNonce", err)
	}
}

// TestUnknownCipherNegotiation: an unregistered cipher name fails the
// open with the typed unknown-cipher wire code (no Retry-After, names
// listed) and the connection survives to negotiate a supported cipher —
// with no goroutine left behind by the failed opens.
func TestUnknownCipherNegotiation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, addr := startServer(t, Config{})
	c := dialClient(t, addr)

	key := testKey(8, 14, ff.P17.P())
	open := toyOpen(4, append([]uint64(nil), key...), 600)
	open.Scheme = "rasta"
	_, err := c.OpenSession(open)
	if err == nil {
		t.Fatal("OpenSession accepted an unregistered cipher")
	}
	if !errors.Is(err, ErrUnknownCipher) {
		t.Fatalf("unknown cipher: got %v, want ErrUnknownCipher", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown cipher did not surface a RemoteError: %v", err)
	}
	if re.Code != wire.CodeUnknownCipher {
		t.Fatalf("wire code %d (%s), want %d (unknown-cipher)", re.Code, wire.CodeString(re.Code), wire.CodeUnknownCipher)
	}
	if re.RetryAfter != 0 {
		t.Fatalf("unknown cipher carried Retry-After %v; the rejection is permanent", re.RetryAfter)
	}
	for _, cn := range cipher.Names() {
		if !strings.Contains(re.Msg, cn) {
			t.Fatalf("rejection %q does not list registered cipher %q", re.Msg, cn)
		}
	}

	// Same connection, supported cipher: negotiation proceeds.
	sess, err := c.OpenSession(toyOpen(4, append([]uint64(nil), key...), 601))
	if err != nil {
		t.Fatalf("open after rejected cipher: %v", err)
	}
	sess.Close()
	c.Close()

	waitFor(t, 5*time.Second, "goroutines to drain after rejected opens", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestSoftwareOnlyCipherOnSoCBackend: a registered cipher the configured
// substrate cannot run is a per-request unknown-cipher rejection without
// a Retry-After hint — the server config will not change on retry — and
// the connection stays usable for ciphers the substrate does support.
func TestSoftwareOnlyCipherOnSoCBackend(t *testing.T) {
	baseline := runtime.NumGoroutine()
	_, addr := startServer(t, Config{Backend: backend.NameSoC})
	c := dialClient(t, addr)

	open, _, _ := openFor(t, "masta", "soc-tenant", 700)
	_, err := c.OpenSession(open)
	if err == nil {
		t.Fatal("soc server accepted the software-only masta cipher")
	}
	if !errors.Is(err, ErrUnknownCipher) {
		t.Fatalf("unsupported cipher on soc: got %v, want ErrUnknownCipher", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeUnknownCipher {
		t.Fatalf("unsupported cipher did not map to the unknown-cipher code: %v", err)
	}
	if re.RetryAfter != 0 {
		t.Fatalf("unsupported cipher carried Retry-After %v, want none", re.RetryAfter)
	}

	// PASTA runs on the SoC; the connection is still good.
	sess, err := c.OpenSession(pasta4Open(testKey(64, 31, ff.P17.P()), 701))
	if err != nil {
		t.Fatalf("pasta open on soc after masta rejection: %v", err)
	}
	sess.Close()
	c.Close()

	waitFor(t, 5*time.Second, "goroutines to drain after unsupported-cipher opens", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}
