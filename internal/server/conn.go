package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ff"
	"repro/internal/wire"
)

// conn is one accepted connection: a frame reader goroutine plus
// mutex-serialized frame writes (scheduler workers and the batch timer
// reply concurrently with the reader's own error frames). Sessions are
// connection-scoped: a session id is only addressable from the
// connection that opened it, and a disconnect evicts every session the
// connection owns.
type conn struct {
	srv   *Server
	nc    net.Conn
	codec *wire.Codec
	wmu   sync.Mutex

	mu       sync.Mutex
	sessions map[uint32]*session
	closing  bool
}

func newConn(s *Server, nc net.Conn) *conn {
	codec := wire.NewCodec(nc)
	codec.MaxPayload = s.cfg.MaxPayload
	return &conn{srv: s, nc: nc, codec: codec, sessions: map[uint32]*session{}}
}

// serve is the reader loop; it returns when the peer disconnects, the
// protocol is violated, or the server tears the connection down.
func (c *conn) serve() {
	defer c.teardown(true)
	for {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout)); err != nil {
			return
		}
		t, payload, err := c.codec.ReadFrame()
		if err != nil {
			// Tell the peer why, when the failure is a protocol error
			// rather than a dead transport.
			if errors.Is(err, wire.ErrBadMagic) || errors.Is(err, wire.ErrBadVersion) ||
				errors.Is(err, wire.ErrBadType) || errors.Is(err, wire.ErrTooLarge) {
				c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
			}
			return
		}
		if !c.handle(t, payload) {
			return
		}
	}
}

// teardown closes the transport and evicts every session owned by the
// connection. evict counts disconnect-triggered session teardown in the
// metrics (an explicit SessionClose does not pass through here).
func (c *conn) teardown(evict bool) {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return
	}
	c.closing = true
	owned := make([]*session, 0, len(c.sessions))
	for _, sess := range c.sessions {
		owned = append(owned, sess)
	}
	c.sessions = map[uint32]*session{}
	c.mu.Unlock()

	c.nc.Close()
	for _, sess := range owned {
		sess.close()
		if evict {
			c.srv.m.evicted.Inc()
		}
	}
	c.srv.dropConn(c)
}

// close is the server-initiated teardown (shutdown path).
func (c *conn) close() { c.teardown(false) }

// handle dispatches one frame; a false return closes the connection.
func (c *conn) handle(t wire.Type, payload []byte) bool {
	switch t {
	case wire.TypeSessionOpen:
		return c.handleOpen(payload)
	case wire.TypeSessionClose:
		m, err := wire.DecodeSessionClose(payload)
		if err != nil {
			c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
			return false
		}
		if sess := c.detachSession(m.Session); sess != nil {
			sess.close()
		}
		return true
	case wire.TypeEncrypt:
		return c.handleEncrypt(payload)
	case wire.TypeKeystream:
		return c.handleKeystream(payload)
	case wire.TypeStream:
		return c.handleStream(payload)
	default:
		// Server-bound connections must only carry requests.
		c.sendError(0, 0, wire.CodeBadRequest, 0,
			fmt.Sprintf("unexpected %v frame", t))
		return false
	}
}

func (c *conn) handleOpen(payload []byte) bool {
	m, err := wire.DecodeSessionOpen(payload)
	if err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess, err := openSession(c, m)
	if err != nil {
		code, retry := c.errCode(err)
		c.sendError(0, m.ID, code, retry, err.Error())
		return true
	}
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		sess.close()
		return false
	}
	c.sessions[sess.id] = sess
	c.mu.Unlock()
	ack := &wire.SessionAck{
		ID:        m.ID,
		Session:   sess.id,
		BlockSize: uint32(sess.t),
		Modulus:   sess.mod.P(),
		Bits:      sess.bits,
	}
	return c.send(wire.TypeSessionAck, ack.Encode())
}

// lookup resolves a request's session or replies with an error.
func (c *conn) lookup(session uint32, id uint64) *session {
	c.mu.Lock()
	sess := c.sessions[session]
	c.mu.Unlock()
	if sess == nil {
		c.sendError(session, id, wire.CodeUnknownSession, 0,
			fmt.Sprintf("session %d is not open on this connection", session))
	}
	return sess
}

// detachSession removes a session from the connection table.
func (c *conn) detachSession(id uint32) *session {
	c.mu.Lock()
	defer c.mu.Unlock()
	sess := c.sessions[id]
	delete(c.sessions, id)
	return sess
}

// admit runs the request-admission gate shared by encrypt and keystream:
// size bound, rate budget, queue submission. It replies on rejection.
func (c *conn) admit(sess *session, id uint64, elems int, j *job) bool {
	c.srv.m.requests.Inc()
	if elems > c.srv.cfg.MaxRequestElems {
		c.sendError(sess.id, id, wire.CodeBadRequest, 0,
			fmt.Sprintf("request for %d elements exceeds the %d-element bound",
				elems, c.srv.cfg.MaxRequestElems))
		return true
	}
	if ok, retry := sess.takeRate(elems); !ok {
		c.srv.m.rejectedRate.Inc()
		c.sendError(sess.id, id, wire.CodeRateLimited, retry, "rate limit exceeded")
		return true
	}
	if err := c.srv.submit(j); err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, id, code, retry, err.Error())
	}
	return true
}

func (c *conn) handleEncrypt(payload []byte) bool {
	m, err := wire.DecodeEncryptReq(payload)
	if err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	msg, err := m.Vec()
	if err != nil {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0, err.Error())
		return true
	}
	if !c.checkRange(sess, m.ID, msg) {
		return true
	}
	return c.admit(sess, m.ID, len(msg), &job{
		kind: jobEncrypt, sess: sess, id: m.ID, nonce: m.Nonce, msg: msg, enq: time.Now(),
	})
}

func (c *conn) handleKeystream(payload []byte) bool {
	m, err := wire.DecodeKeystreamReq(payload)
	if err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	elems := int(m.Count) * sess.t
	return c.admit(sess, m.ID, elems, &job{
		kind: jobKeystream, sess: sess, id: m.ID, nonce: m.Nonce,
		first: m.First, count: int(m.Count), enq: time.Now(),
	})
}

func (c *conn) handleStream(payload []byte) bool {
	m, err := wire.DecodeStreamReq(payload)
	if err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	msg, err := m.Vec()
	if err != nil || len(msg) == 0 {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0, "empty or malformed stream payload")
		return true
	}
	c.srv.m.requests.Inc()
	if len(msg) > c.srv.cfg.MaxRequestElems {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("request for %d elements exceeds the %d-element bound",
				len(msg), c.srv.cfg.MaxRequestElems))
		return true
	}
	if !c.checkRange(sess, m.ID, msg) {
		return true
	}
	if _, err := sess.acceptStream(m.ID, msg); err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, m.ID, code, retry, err.Error())
	}
	return true
}

// checkRange rejects out-of-field elements before they reach a backend.
func (c *conn) checkRange(sess *session, id uint64, msg ff.Vec) bool {
	p := sess.mod.P()
	for i, v := range msg {
		if v >= p {
			c.sendError(sess.id, id, wire.CodeBadRequest, 0,
				fmt.Sprintf("element %d = %d out of range for p = %d", i, v, p))
			return false
		}
	}
	return true
}

// errCode maps serving-tier and backend errors onto wire codes and
// retry hints, counting rejections.
func (c *conn) errCode(err error) (code uint16, retry time.Duration) {
	m := c.srv.m
	switch {
	case errors.Is(err, ErrOverloaded):
		m.rejectedOverload.Inc()
		return wire.CodeOverloaded, c.srv.retryAfter()
	case errors.Is(err, ErrRateLimited):
		m.rejectedRate.Inc()
		var re *rateError
		if errors.As(err, &re) {
			return wire.CodeRateLimited, re.retry
		}
		return wire.CodeRateLimited, c.srv.cfg.RetryAfter
	case errors.Is(err, ErrShuttingDown), errors.Is(err, context.Canceled):
		m.rejectedDraining.Inc()
		return wire.CodeShuttingDown, 0
	case errors.Is(err, context.DeadlineExceeded):
		m.requestErrors.Inc()
		return wire.CodeDeadline, 0
	case errors.Is(err, ErrClosed):
		m.requestErrors.Inc()
		return wire.CodeUnknownSession, 0
	default:
		m.requestErrors.Inc()
		return wire.CodeInternal, 0
	}
}

// sendData replies to a request with a packed vector.
func (c *conn) sendData(sess *session, id, offset uint64, v ff.Vec) {
	count, packed, err := wire.PackVec(v, sess.bits)
	if err != nil {
		// Field elements always fit the modulus width; this is a bug.
		c.sendError(sess.id, id, wire.CodeInternal, 0, err.Error())
		return
	}
	m := &wire.Data{Session: sess.id, ID: id, Offset: offset,
		Count: count, Bits: sess.bits, Packed: packed}
	c.send(wire.TypeData, m.Encode())
}

// sendJobError replies to a failed job, classifying the cause.
func (c *conn) sendJobError(sess *session, id uint64, err error) {
	code, retry := c.errCode(err)
	c.sendError(sess.id, id, code, retry, err.Error())
}

// sendError emits a TypeError frame.
func (c *conn) sendError(session uint32, id uint64, code uint16, retry time.Duration, msg string) {
	m := &wire.ErrorMsg{Session: session, ID: id, Code: code,
		RetryAfterMillis: uint32(retry.Milliseconds()), Msg: msg}
	c.send(wire.TypeError, m.Encode())
}

// send writes one frame under the write lock and deadline.
func (c *conn) send(t wire.Type, payload []byte) bool {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout)); err != nil {
		return false
	}
	return c.codec.WriteFrame(t, payload) == nil
}
