package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/transcipher"
	"repro/internal/wire"
)

// conn is one accepted connection: a frame reader goroutine plus an
// outbox writer goroutine (scheduler workers and the batch timer reply
// concurrently with the reader's own error frames; the outbox coalesces
// everything queued into vectored writes). Sessions are
// connection-scoped: a session id is only addressable from the
// connection that opened it, and a disconnect evicts every session the
// connection owns.
//
// The read path is allocation-free in steady state: frames are read
// into a connection-owned scratch buffer (ReadFrameInto), decoded into
// stack-allocated messages (DecodeInto), and unpacked straight into the
// pooled job's reusable element scratch.
type conn struct {
	srv   *Server
	nc    net.Conn
	codec *wire.Codec
	out   *outbox

	readBuf []byte // reader-owned frame payload scratch

	mu       sync.Mutex
	sessions map[uint32]*session
	closing  bool
}

func newConn(s *Server, nc net.Conn) *conn {
	codec := wire.NewCodec(nc)
	codec.MaxPayload = s.cfg.MaxPayload
	return &conn{
		srv:      s,
		nc:       nc,
		codec:    codec,
		out:      newOutbox(nc, s.cfg.WriteTimeout, s.m),
		sessions: map[uint32]*session{},
	}
}

// serve is the reader loop; it returns when the peer disconnects, the
// protocol is violated, or the server tears the connection down.
func (c *conn) serve() {
	defer c.teardown(true)
	for {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout)); err != nil {
			return
		}
		t, payload, err := c.codec.ReadFrameInto(c.readBuf)
		if err != nil {
			// Tell the peer why, when the failure is a protocol error
			// rather than a dead transport.
			if errors.Is(err, wire.ErrBadMagic) || errors.Is(err, wire.ErrBadVersion) ||
				errors.Is(err, wire.ErrBadType) || errors.Is(err, wire.ErrTooLarge) {
				c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
			}
			return
		}
		c.readBuf = payload // keep the (possibly grown) scratch
		if !c.handle(t, payload) {
			return
		}
	}
}

// teardown detaches every session owned by the connection, drains the
// outbox (so error frames queued just before exit still reach the
// peer), and closes the transport. On a client disconnect (evict=true)
// with a ResumeWindow configured, sessions park instead of closing —
// their resumption tokens stay valid for the window; without one, or on
// server-initiated teardown, they are evicted as before (an explicit
// SessionClose does not pass through here).
func (c *conn) teardown(evict bool) {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return
	}
	c.closing = true
	owned := make([]*session, 0, len(c.sessions))
	for _, sess := range c.sessions {
		owned = append(owned, sess)
	}
	c.sessions = map[uint32]*session{}
	c.mu.Unlock()

	park := evict && c.srv.cfg.ResumeWindow > 0
	for _, sess := range owned {
		if park {
			sess.park()
			continue
		}
		sess.close()
		if evict {
			c.srv.m.evicted.Inc()
		}
	}
	c.out.close()
	c.nc.Close()
	c.srv.dropConn(c)
}

// close is the server-initiated teardown (shutdown path).
func (c *conn) close() { c.teardown(false) }

// handle dispatches one frame; a false return closes the connection.
// payload aliases the connection read scratch and must not be retained
// past the call.
func (c *conn) handle(t wire.Type, payload []byte) bool {
	switch t {
	case wire.TypeSessionOpen:
		return c.handleOpen(payload)
	case wire.TypeSessionClose:
		m, err := wire.DecodeSessionClose(payload)
		if err != nil {
			c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
			return false
		}
		if sess := c.detachSession(m.Session); sess != nil {
			sess.close()
		}
		return true
	case wire.TypeEncrypt:
		return c.handleEncrypt(payload)
	case wire.TypeKeystream:
		return c.handleKeystream(payload)
	case wire.TypeStream:
		return c.handleStream(payload)
	case wire.TypeEvalKeys:
		return c.handleEvalKeys(payload)
	case wire.TypeTranscipher:
		return c.handleTranscipher(payload)
	default:
		// Server-bound connections must only carry requests.
		c.sendError(0, 0, wire.CodeBadRequest, 0,
			fmt.Sprintf("unexpected %v frame", t))
		return false
	}
}

func (c *conn) handleOpen(payload []byte) bool {
	m, err := wire.DecodeSessionOpen(payload)
	// The frame scratch carried the raw key words; wipe them before the
	// buffer is reused for later frames (the decoded copy is wiped by
	// openSession once the backend cipher holds its own clone).
	clear(payload)
	if err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	if len(m.Resume) > 0 {
		return c.handleResume(m)
	}
	sess, err := openSession(c, m)
	if err != nil {
		code, retry := c.errCode(err)
		c.sendError(0, m.ID, code, retry, err.Error())
		return true
	}
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		sess.close()
		return false
	}
	c.sessions[sess.id] = sess
	c.mu.Unlock()
	ack := &wire.SessionAck{
		ID:        m.ID,
		Session:   sess.id,
		Cipher:    sess.scheme,
		BlockSize: uint32(sess.t),
		Modulus:   sess.mod.P(),
		Bits:      sess.bits,
		Resume:    sess.token,
	}
	return c.sendMsg(wire.TypeSessionAck, ack)
}

// handleResume re-attaches a parked session named by a resumption
// token. The ack echoes the replay high-water mark and the next stream
// offset, so the client can renumber its requests and account for the
// keystream gap left by its in-flight batch at disconnect.
func (c *conn) handleResume(m *wire.SessionOpen) bool {
	sess, err := c.srv.resumeSession(c, m.Resume)
	if err != nil {
		code, retry := c.errCode(err)
		c.sendError(0, m.ID, code, retry, err.Error())
		return true
	}
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		sess.park() // back to the parked state; the token stays valid
		return false
	}
	c.sessions[sess.id] = sess
	c.mu.Unlock()
	sess.mu.Lock()
	ctrHigh, tail := sess.ctrHigh, sess.tail
	sess.mu.Unlock()
	ack := &wire.SessionAck{
		ID:        m.ID,
		Session:   sess.id,
		Cipher:    sess.scheme,
		BlockSize: uint32(sess.t),
		Modulus:   sess.mod.P(),
		Bits:      sess.bits,
		Counter:   ctrHigh,
		Tail:      tail,
		Resume:    sess.token,
	}
	return c.sendMsg(wire.TypeSessionAck, ack)
}

// lookup resolves a request's session or replies with an error.
func (c *conn) lookup(session uint32, id uint64) *session {
	c.mu.Lock()
	sess := c.sessions[session]
	c.mu.Unlock()
	if sess == nil {
		c.sendError(session, id, wire.CodeUnknownSession, 0,
			fmt.Sprintf("session %d is not open on this connection", session))
	}
	return sess
}

// detachSession removes a session from the connection table.
func (c *conn) detachSession(id uint32) *session {
	c.mu.Lock()
	defer c.mu.Unlock()
	sess := c.sessions[id]
	delete(c.sessions, id)
	return sess
}

// admit runs the request-admission gate shared by encrypt and keystream:
// size bound, rate budget, queue submission. It replies on rejection and
// owns j until it is submitted (rejected jobs go back to the pool).
func (c *conn) admit(sess *session, id uint64, elems int, j *job) bool {
	c.srv.m.requests.Inc()
	if elems > c.srv.cfg.MaxRequestElems {
		putJob(j)
		c.sendError(sess.id, id, wire.CodeBadRequest, 0,
			fmt.Sprintf("request for %d elements exceeds the %d-element bound",
				elems, c.srv.cfg.MaxRequestElems))
		return true
	}
	if ok, retry := sess.takeRate(elems); !ok {
		putJob(j)
		c.srv.m.rejectedRate.Inc()
		c.sendError(sess.id, id, wire.CodeRateLimited, retry, "rate limit exceeded")
		return true
	}
	if err := c.srv.submit(j); err != nil {
		putJob(j)
		code, retry := c.errCode(err)
		c.sendError(sess.id, id, code, retry, err.Error())
	}
	return true
}

func (c *conn) handleEncrypt(payload []byte) bool {
	var m wire.EncryptReq
	if err := wire.DecodeEncryptReqInto(&m, payload); err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	if !c.checkCounter(sess, m.ID, m.Counter) || !c.checkKeyed(sess, m.ID) {
		return true
	}
	j := getJob()
	j.kind, j.sess, j.conn, j.id, j.nonce = jobEncrypt, sess, c, m.ID, m.Nonce
	j.enq = time.Now()
	j.msg = resizeVec(j.msg, int(m.Count))
	if err := m.VecInto(j.msg); err != nil {
		putJob(j)
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0, err.Error())
		return true
	}
	if !c.checkRange(sess, m.ID, j.msg) {
		putJob(j)
		return true
	}
	return c.admit(sess, m.ID, len(j.msg), j)
}

func (c *conn) handleKeystream(payload []byte) bool {
	var m wire.KeystreamReq
	if err := wire.DecodeKeystreamReqInto(&m, payload); err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	if !c.checkCounter(sess, m.ID, m.Counter) || !c.checkKeyed(sess, m.ID) {
		return true
	}
	j := getJob()
	j.kind, j.sess, j.conn, j.id, j.nonce = jobKeystream, sess, c, m.ID, m.Nonce
	j.first, j.count = m.First, int(m.Count)
	j.enq = time.Now()
	return c.admit(sess, m.ID, int(m.Count)*sess.t, j)
}

func (c *conn) handleStream(payload []byte) bool {
	var m wire.StreamReq
	if err := wire.DecodeStreamReqInto(&m, payload); err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	if !c.checkCounter(sess, m.ID, m.Counter) || !c.checkKeyed(sess, m.ID) {
		return true
	}
	// Stream payloads outlive the frame (they sit in the batch until the
	// flush), so this path allocates the message copy.
	msg, err := m.Vec()
	if err != nil || len(msg) == 0 {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0, "empty or malformed stream payload")
		return true
	}
	c.srv.m.requests.Inc()
	if len(msg) > c.srv.cfg.MaxRequestElems {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("request for %d elements exceeds the %d-element bound",
				len(msg), c.srv.cfg.MaxRequestElems))
		return true
	}
	if !c.checkRange(sess, m.ID, msg) {
		return true
	}
	if _, err := sess.acceptStream(m.ID, msg); err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, m.ID, code, retry, err.Error())
	}
	return true
}

// handleEvalKeys ingests one chunk of a session's eval-key upload. The
// ack for a non-final chunk is sent inline; the chunk that completes
// the blob defers its ack until the transcipher tier has built the
// evaluation engine on the heavy pool, so a Complete ack is a service
// guarantee, not a receipt.
func (c *conn) handleEvalKeys(payload []byte) bool {
	var m wire.EvalKeysChunk
	if err := wire.DecodeEvalKeysChunkInto(&m, payload); err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	if !c.checkCounter(sess, m.ID, m.Counter) {
		return true
	}
	c.srv.m.requests.Inc()
	if !sess.hasPasta {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("cipher %q has no homomorphic decryption circuit", sess.scheme))
		return true
	}
	// m.Chunk aliases the frame scratch; AcceptChunk copies it into the
	// enrollment accumulator before returning, so no retention here.
	id := m.ID
	st, deferred, err := c.srv.tc.AcceptChunk(sess.id, sess.pp, m.Offset, m.Total, m.Chunk,
		func(st transcipher.UploadState, err error) {
			if err != nil {
				// The assembled blob failed to parse or build: the upload
				// itself is at fault, not the server.
				c.sendError(sess.id, id, wire.CodeBadRequest, 0, err.Error())
				return
			}
			c.sendEvalKeysAck(sess, id, st)
		})
	if err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, m.ID, code, retry, err.Error())
		return true
	}
	if !deferred {
		c.sendEvalKeysAck(sess, m.ID, st)
	}
	return true
}

func (c *conn) sendEvalKeysAck(sess *session, id uint64, st transcipher.UploadState) {
	c.sendMsg(wire.TypeEvalKeysAck, &wire.EvalKeysAck{
		Session:  sess.id,
		ID:       id,
		Received: st.Received,
		Total:    st.Total,
		Complete: st.Ready,
	})
}

// handleTranscipher admits a homomorphic-decryption request into the
// transcipher tier. Validation runs on the reader; the circuit runs on
// the tier's heavy pool and replies through the outbox from there.
func (c *conn) handleTranscipher(payload []byte) bool {
	var m wire.TranscipherReq
	if err := wire.DecodeTranscipherReqInto(&m, payload); err != nil {
		c.sendError(0, 0, wire.CodeBadRequest, 0, err.Error())
		return false
	}
	sess := c.lookup(m.Session, m.ID)
	if sess == nil {
		return true
	}
	if !c.checkCounter(sess, m.ID, m.Counter) {
		return true
	}
	c.srv.m.requests.Inc()
	if m.Bits != sess.bits {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("payload packed at %d bits, session modulus needs %d", m.Bits, sess.bits))
		return true
	}
	t := uint64(sess.t)
	if m.Count == 0 || uint64(m.Count)%t != 0 {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("%d elements is not a whole number of %d-element blocks", m.Count, t))
		return true
	}
	nblocks := uint64(m.Count) / t
	if nblocks > wire.MaxTranscipherBlocks {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0,
			fmt.Sprintf("%d blocks exceeds the %d-block bound", nblocks, wire.MaxTranscipherBlocks))
		return true
	}
	if ok, retry := sess.takeRate(int(m.Count)); !ok {
		c.srv.m.rejectedRate.Inc()
		c.sendError(sess.id, m.ID, wire.CodeRateLimited, retry, "rate limit exceeded")
		return true
	}
	// The symmetric ciphertext outlives the frame (it rides to the heavy
	// pool), so this path allocates the element copy.
	v, err := m.Vec()
	if err != nil {
		c.sendError(sess.id, m.ID, wire.CodeBadRequest, 0, err.Error())
		return true
	}
	if !c.checkRange(sess, m.ID, v) {
		return true
	}
	blocks := make([]ff.Vec, nblocks)
	for i := range blocks {
		blocks[i] = v[uint64(i)*t : uint64(i+1)*t]
	}
	id, first := m.ID, m.First
	err = c.srv.tc.Transcipher(sess.id, m.Nonce, m.First, blocks, func(out []byte, err error) {
		if err != nil {
			c.sendJobError(sess, id, err)
			return
		}
		c.sendTranscipherData(sess, id, first, out)
	})
	if err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, m.ID, code, retry, err.Error())
	}
	return true
}

// sendTranscipherData replies with the concatenated serialized BFV
// ciphertexts, one per requested block, using the Data frame's byte
// convention (Bits = 8, Count = byte length, Offset echoes First).
func (c *conn) sendTranscipherData(sess *session, id, first uint64, blob []byte) {
	if len(blob) > wire.MaxVecElems {
		c.sendError(sess.id, id, wire.CodeInternal, 0,
			fmt.Sprintf("transcipher reply of %d bytes exceeds the frame vector bound", len(blob)))
		return
	}
	c.sendMsg(wire.TypeData, &wire.Data{
		Session: sess.id,
		ID:      id,
		Offset:  first,
		Count:   uint32(len(blob)),
		Bits:    8,
		Packed:  blob,
	})
}

// checkKeyed rejects keystream-deriving requests on keyless
// (transcipher-only) sessions, which have no symmetric cipher.
func (c *conn) checkKeyed(sess *session, id uint64) bool {
	if sess.cipher == nil {
		c.sendError(sess.id, id, wire.CodeBadRequest, 0,
			"transcipher-only session has no symmetric cipher (opened without a key)")
		return false
	}
	return true
}

// checkCounter runs the anti-replay gate: the request's counter must be
// fresh in the session's window, checked before rate, size, or offset
// handling so a replayed frame consumes nothing but the reader's time.
func (c *conn) checkCounter(sess *session, id uint64, ctr uint64) bool {
	if err := sess.acceptCounter(ctr); err != nil {
		code, retry := c.errCode(err)
		c.sendError(sess.id, id, code, retry, err.Error())
		return false
	}
	return true
}

// checkRange rejects out-of-field elements before they reach a backend.
func (c *conn) checkRange(sess *session, id uint64, msg ff.Vec) bool {
	p := sess.mod.P()
	for i, v := range msg {
		if v >= p {
			c.sendError(sess.id, id, wire.CodeBadRequest, 0,
				fmt.Sprintf("element %d = %d out of range for p = %d", i, v, p))
			return false
		}
	}
	return true
}

// errCode maps serving-tier and backend errors onto wire codes and
// retry hints, counting rejections.
func (c *conn) errCode(err error) (code uint16, retry time.Duration) {
	m := c.srv.m
	switch {
	case errors.Is(err, ErrOverloaded):
		m.rejectedOverload.Inc()
		return wire.CodeOverloaded, c.srv.retryAfter()
	case errors.Is(err, ErrRateLimited):
		m.rejectedRate.Inc()
		var re *rateError
		if errors.As(err, &re) {
			return wire.CodeRateLimited, re.retry
		}
		return wire.CodeRateLimited, c.srv.cfg.RetryAfter
	case errors.Is(err, ErrShuttingDown), errors.Is(err, context.Canceled):
		m.rejectedDraining.Inc()
		return wire.CodeShuttingDown, 0
	case errors.Is(err, context.DeadlineExceeded):
		m.requestErrors.Inc()
		return wire.CodeDeadline, 0
	case errors.Is(err, ErrReplay):
		m.rejectedReplay.Inc()
		return wire.CodeReplay, 0
	case errors.Is(err, ErrDuplicateNonce):
		// Counted at the registry check, where the owning session is known.
		return wire.CodeDuplicateNonce, 0
	case errors.Is(err, ErrBadResume):
		m.rejectedBadResume.Inc()
		return wire.CodeBadResume, 0
	case errors.Is(err, cipher.ErrUnknownCipher), errors.Is(err, backend.ErrUnsupported):
		// Unknown cipher name, or a registered cipher the configured
		// substrate cannot run. Permanent for this server configuration:
		// no Retry-After hint, and the connection stays up so the client
		// can renegotiate with a supported cipher.
		m.rejectedCipher.Inc()
		return wire.CodeUnknownCipher, 0
	case errors.Is(err, ErrNoEvalKeys):
		m.requestErrors.Inc()
		return wire.CodeNoEvalKeys, 0
	case errors.Is(err, ErrTranscipherBudget):
		m.rejectedOverload.Inc()
		var be *transcipher.BudgetError
		if errors.As(err, &be) {
			return wire.CodeTranscipherBudget, be.Retry
		}
		return wire.CodeTranscipherBudget, c.srv.cfg.RetryAfter
	case errors.Is(err, transcipher.ErrUpload):
		m.requestErrors.Inc()
		return wire.CodeBadRequest, 0
	case errors.Is(err, transcipher.ErrClosed):
		m.rejectedDraining.Inc()
		return wire.CodeShuttingDown, 0
	case errors.Is(err, ErrClosed):
		m.requestErrors.Inc()
		return wire.CodeUnknownSession, 0
	default:
		m.requestErrors.Inc()
		return wire.CodeInternal, 0
	}
}

// sendData replies to a request with a packed vector: the frame is
// built directly into a pooled buffer (no intermediate message or
// payload allocation) and handed to the outbox. v is fully copied into
// the frame before sendData returns, so callers may reuse it.
func (c *conn) sendData(sess *session, id, offset uint64, v ff.Vec) {
	b := wire.GetBuf(wire.HeaderSize + 29 + ff.PackedSize(len(v), uint(sess.bits)))
	var err error
	b.B, err = wire.AppendDataFrame(b.B, sess.id, id, offset, v, sess.bits)
	if err != nil {
		// Field elements always fit the modulus width; this is a bug.
		b.Release()
		c.sendError(sess.id, id, wire.CodeInternal, 0, err.Error())
		return
	}
	c.out.enqueue(b)
}

// sendJobError replies to a failed job, classifying the cause.
func (c *conn) sendJobError(sess *session, id uint64, err error) {
	code, retry := c.errCode(err)
	c.sendError(sess.id, id, code, retry, err.Error())
}

// sendError emits a TypeError frame.
func (c *conn) sendError(session uint32, id uint64, code uint16, retry time.Duration, msg string) {
	m := &wire.ErrorMsg{Session: session, ID: id, Code: code,
		RetryAfterMillis: uint32(retry.Milliseconds()), Msg: msg}
	c.sendMsg(wire.TypeError, m)
}

// sendMsg encodes m into a pooled frame and queues it on the outbox.
func (c *conn) sendMsg(t wire.Type, m wire.Message) bool {
	b := wire.GetBuf(0)
	var err error
	b.B, err = wire.AppendMessageFrame(b.B, t, m)
	if err != nil {
		b.Release()
		return false
	}
	return c.out.enqueue(b)
}
