// Package core is the top-level API of the reproduction: it wires the
// PASTA cipher (the paper's workload), the cycle-accurate cryptoprocessor
// model (the paper's contribution), the calibrated area model, and the
// RISC-V SoC co-simulation behind one façade, so downstream users can
// encrypt data and obtain the paper's performance/area characterization
// without touching the individual substrates.
package core

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
	"repro/internal/soc"
)

// Config selects a cryptoprocessor configuration.
type Config struct {
	Variant pasta.Variant // Pasta3 or Pasta4
	Width   uint          // modulus bit width: 17, 33, 54 or 60
}

// DefaultConfig is the paper's headline configuration: PASTA-4, ω = 17.
var DefaultConfig = Config{Variant: pasta.Pasta4, Width: 17}

// System bundles a keyed cipher with its hardware models.
type System struct {
	params pasta.Params
	cipher *pasta.Cipher
	accel  *hw.Accelerator
}

// NewSystem builds a System for the configuration and key. A nil key
// samples a fresh random one.
func NewSystem(cfg Config, key pasta.Key) (*System, error) {
	mod, ok := ff.StandardModuli[cfg.Width]
	if !ok {
		return nil, fmt.Errorf("core: unsupported modulus width %d (have 17, 33, 54, 60)", cfg.Width)
	}
	par, err := pasta.NewParams(cfg.Variant, mod)
	if err != nil {
		return nil, err
	}
	if key == nil {
		key, err = pasta.NewRandomKey(par)
		if err != nil {
			return nil, err
		}
	}
	cipher, err := pasta.NewCipher(par, key)
	if err != nil {
		return nil, err
	}
	accel, err := hw.NewAccelerator(par, key)
	if err != nil {
		return nil, err
	}
	return &System{params: par, cipher: cipher, accel: accel}, nil
}

// Params exposes the underlying PASTA parameters.
func (s *System) Params() pasta.Params { return s.params }

// Encrypt encrypts msg with the software reference implementation.
func (s *System) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	return s.cipher.Encrypt(nonce, msg)
}

// Decrypt inverts Encrypt.
func (s *System) Decrypt(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	return s.cipher.Decrypt(nonce, ct)
}

// CycleReport characterizes one encryption on the modeled hardware.
type CycleReport struct {
	CyclesPerBlock int64
	Blocks         int
	TotalCycles    int64
	FPGAMicros     float64 // Artix-7 @ 75 MHz
	ASICMicros     float64 // 28nm/7nm @ 1 GHz
	SoCMicros      float64 // RISC-V SoC @ 100 MHz (accelerator time only)
}

// EncryptAccelerated encrypts msg on the cycle-accurate cryptoprocessor
// model, returning both the ciphertext (bit-identical to Encrypt) and the
// modeled timing on the paper's three platforms.
func (s *System) EncryptAccelerated(nonce uint64, msg ff.Vec) (ff.Vec, CycleReport, error) {
	t := s.params.T
	out := ff.NewVec(len(msg))
	var rep CycleReport
	for block := 0; block*t < len(msg); block++ {
		lo, hi := block*t, (block+1)*t
		if hi > len(msg) {
			hi = len(msg)
		}
		res, err := s.accel.EncryptBlock(nonce, uint64(block), msg[lo:hi])
		if err != nil {
			return nil, CycleReport{}, err
		}
		copy(out[lo:hi], res.Ciphertext)
		rep.TotalCycles += res.Stats.Cycles
		rep.Blocks++
	}
	if rep.Blocks > 0 {
		rep.CyclesPerBlock = rep.TotalCycles / int64(rep.Blocks)
	}
	rep.FPGAMicros = hw.Microseconds(rep.TotalCycles, hw.FPGAHz)
	rep.ASICMicros = hw.Microseconds(rep.TotalCycles, hw.ASICHz)
	rep.SoCMicros = hw.Microseconds(rep.TotalCycles, hw.RISCVHz)
	return out, rep, nil
}

// EncryptOnSoC runs the full RISC-V SoC co-simulation (core + driver +
// peripheral) for msg, returning the ciphertext and SoC statistics.
// Available for configurations whose elements fit the 32-bit bus.
func (s *System) EncryptOnSoC(nonce uint64, msg ff.Vec) (ff.Vec, soc.RunStats, error) {
	return soc.EncryptBlocks(s.params, s.cipher.Key(), nonce, msg)
}

// AreaReport characterizes the configuration's silicon/FPGA cost.
type AreaReport struct {
	FPGA      area.FPGA
	ASIC28mm2 float64
	ASIC7mm2  float64
	MaxPowerW float64
}

// Area returns the calibrated area model's estimate for this System.
func (s *System) Area() (AreaReport, error) {
	cfg := area.Config{T: s.params.T, W: s.params.Mod.Bits()}
	a28, err := area.ASICmm2(cfg, area.Node28nm)
	if err != nil {
		return AreaReport{}, err
	}
	a7, err := area.ASICmm2(cfg, area.Node7nm)
	if err != nil {
		return AreaReport{}, err
	}
	return AreaReport{
		FPGA:      area.Resources(cfg),
		ASIC28mm2: a28,
		ASIC7mm2:  a7,
		MaxPowerW: area.MaxPowerWatts,
	}, nil
}

// EnergyReport returns the modeled per-block energy across the paper's
// platforms for this configuration (one block of t elements at the
// calibrated power models).
func (s *System) EnergyReport(cyclesPerBlock int64) ([]area.EnergyReport, error) {
	return area.Energies(cyclesPerBlock, s.params.T)
}
