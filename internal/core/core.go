// Package core is the top-level API of the reproduction: a thin façade
// over the execution-backend registry (internal/backend). A System keys
// one PASTA instance and lazily opens the named substrates — "software"
// (reference cipher), "accel" (cycle-accurate cryptoprocessor model),
// "soc" (RISC-V co-simulation) — so downstream users can encrypt data on
// any of them and obtain the paper's performance/area characterization
// without touching the individual substrates.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/cipher"
	"repro/internal/ff"
	"repro/internal/hw"
	"repro/internal/hw/area"
	"repro/internal/pasta"
	"repro/internal/soc"
)

// Config selects a cryptoprocessor configuration.
type Config struct {
	Variant pasta.Variant // Pasta3 or Pasta4
	Width   uint          // modulus bit width: 17, 33, 54 or 60
}

// DefaultConfig is the paper's headline configuration: PASTA-4, ω = 17.
var DefaultConfig = Config{Variant: pasta.Pasta4, Width: 17}

// System binds a configuration and key to the backend registry. Backends
// are opened on first use and cached; all of them share the same key, so
// ciphertexts are interchangeable across substrates (the cross-backend
// differential suite proves bit-identity).
type System struct {
	params pasta.Params
	key    pasta.Key

	mu       sync.Mutex
	backends map[string]backend.BlockCipher
}

// NewSystem builds a System for the configuration and key. A nil key
// samples a fresh random one.
func NewSystem(cfg Config, key pasta.Key) (*System, error) {
	mod, ok := ff.StandardModuli[cfg.Width]
	if !ok {
		return nil, fmt.Errorf("core: unsupported modulus width %d (have 17, 33, 54, 60)", cfg.Width)
	}
	par, err := pasta.NewParams(cfg.Variant, mod)
	if err != nil {
		return nil, err
	}
	if key == nil {
		key, err = pasta.NewRandomKey(par)
		if err != nil {
			return nil, err
		}
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	s := &System{
		params:   par,
		key:      pasta.Key(ff.Vec(key).Clone()),
		backends: make(map[string]backend.BlockCipher),
	}
	// Open the software backend eagerly: it validates the full
	// configuration and is the substrate every other call compares
	// against.
	if _, err := s.Backend(backend.NameSoftware); err != nil {
		return nil, err
	}
	return s, nil
}

// Params exposes the underlying PASTA parameters.
func (s *System) Params() pasta.Params { return s.params }

// Backend returns the named substrate for this System's key, opening it
// on first use. Names are those of the backend registry ("software",
// "accel", "soc", plus anything registered by the embedder).
func (s *System) Backend(name string) (backend.BlockCipher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.backends[name]; ok {
		return b, nil
	}
	num := 3
	if s.params.Variant == pasta.Pasta4 {
		num = 4
	}
	b, err := backend.Open(name, backend.Config{
		CipherParams: cipher.Params{Variant: num, Width: s.params.Mod.Bits()},
		Key:          ff.Vec(s.key),
	})
	if err != nil {
		return nil, err
	}
	s.backends[name] = b
	return b, nil
}

// Close closes every opened backend.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.backends {
		b.Close()
	}
	return nil
}

// Stats returns the cumulative counters of every backend opened so far.
func (s *System) Stats() []backend.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]backend.Stats, 0, len(s.backends))
	for _, name := range backend.Names() {
		if b, ok := s.backends[name]; ok {
			out = append(out, b.Stats())
		}
	}
	return out
}

// Encrypt encrypts msg with the software reference implementation.
func (s *System) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	b, err := s.Backend(backend.NameSoftware)
	if err != nil {
		return nil, err
	}
	return b.Encrypt(context.Background(), nonce, msg)
}

// Decrypt inverts Encrypt.
func (s *System) Decrypt(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	b, err := s.Backend(backend.NameSoftware)
	if err != nil {
		return nil, err
	}
	return b.Decrypt(context.Background(), nonce, ct)
}

// CycleReport characterizes one encryption on the modeled hardware.
type CycleReport struct {
	CyclesPerBlock int64
	Blocks         int
	TotalCycles    int64
	FPGAMicros     float64 // Artix-7 @ 75 MHz
	ASICMicros     float64 // 28nm/7nm @ 1 GHz
	SoCMicros      float64 // RISC-V SoC @ 100 MHz (accelerator time only)
}

// EncryptAccelerated encrypts msg on the cycle-accurate cryptoprocessor
// model, returning both the ciphertext (bit-identical to Encrypt) and the
// modeled timing on the paper's three platforms. The report is derived
// from the accel backend's Stats() delta across the call.
func (s *System) EncryptAccelerated(nonce uint64, msg ff.Vec) (ff.Vec, CycleReport, error) {
	b, err := s.Backend(backend.NameAccel)
	if err != nil {
		return nil, CycleReport{}, err
	}
	before := b.Stats()
	out, err := b.Encrypt(context.Background(), nonce, msg)
	if err != nil {
		return nil, CycleReport{}, err
	}
	after := b.Stats()
	rep := CycleReport{
		Blocks:      int(after.Blocks - before.Blocks),
		TotalCycles: after.AccelCycles - before.AccelCycles,
	}
	if rep.Blocks > 0 {
		rep.CyclesPerBlock = rep.TotalCycles / int64(rep.Blocks)
	}
	rep.FPGAMicros = hw.Microseconds(rep.TotalCycles, hw.FPGAHz)
	rep.ASICMicros = hw.Microseconds(rep.TotalCycles, hw.ASICHz)
	rep.SoCMicros = hw.Microseconds(rep.TotalCycles, hw.RISCVHz)
	return out, rep, nil
}

// EncryptOnSoC runs the full RISC-V SoC co-simulation (core + driver +
// peripheral) for msg, returning the ciphertext and SoC statistics
// reconstructed from the soc backend's Stats() delta: core/accelerator
// cycles, blocks, and wall-clock at 100 MHz. Driver-level detail
// (retired instructions, per-block rdcycle samples, WFI cycles) lives in
// internal/soc, which cmd/socsim uses directly. Available for
// configurations whose elements fit the 32-bit bus.
func (s *System) EncryptOnSoC(nonce uint64, msg ff.Vec) (ff.Vec, soc.RunStats, error) {
	b, err := s.Backend(backend.NameSoC)
	if err != nil {
		return nil, soc.RunStats{}, err
	}
	before := b.Stats()
	out, err := b.Encrypt(context.Background(), nonce, msg)
	if err != nil {
		return nil, soc.RunStats{}, err
	}
	after := b.Stats()
	stats := soc.RunStats{
		CoreCycles:  after.CoreCycles - before.CoreCycles,
		AccelCycles: after.AccelCycles - before.AccelCycles,
		Blocks:      after.Blocks - before.Blocks,
	}
	stats.Microseconds = hw.Microseconds(stats.CoreCycles, hw.RISCVHz)
	return out, stats, nil
}

// AreaReport characterizes the configuration's silicon/FPGA cost.
type AreaReport struct {
	FPGA      area.FPGA
	ASIC28mm2 float64
	ASIC7mm2  float64
	MaxPowerW float64
}

// Area returns the calibrated area model's estimate for this System.
func (s *System) Area() (AreaReport, error) {
	cfg := area.Config{T: s.params.T, W: s.params.Mod.Bits()}
	a28, err := area.ASICmm2(cfg, area.Node28nm)
	if err != nil {
		return AreaReport{}, err
	}
	a7, err := area.ASICmm2(cfg, area.Node7nm)
	if err != nil {
		return AreaReport{}, err
	}
	return AreaReport{
		FPGA:      area.Resources(cfg),
		ASIC28mm2: a28,
		ASIC7mm2:  a7,
		MaxPowerW: area.MaxPowerWatts,
	}, nil
}

// EnergyReport returns the modeled per-block energy across the paper's
// platforms for this configuration (one block of t elements at the
// calibrated power models).
func (s *System) EnergyReport(cyclesPerBlock int64) ([]area.EnergyReport, error) {
	return area.Energies(cyclesPerBlock, s.params.T)
}
