package core

import (
	"errors"
	"testing"

	"repro/internal/backend"
	"repro/internal/ff"
	"repro/internal/pasta"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	par := pasta.MustParams(pasta.Pasta4, ff.P17)
	s, err := NewSystem(DefaultConfig, pasta.KeyFromSeed(par, "core"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSoftwareRoundTrip(t *testing.T) {
	s := newSystem(t)
	msg := ff.Vec{1, 2, 3, 4, 5}
	ct, err := s.Encrypt(10, msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Decrypt(10, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(msg) {
		t.Fatal("roundtrip failed")
	}
}

func TestAcceleratedMatchesSoftware(t *testing.T) {
	s := newSystem(t)
	msg := ff.NewVec(70) // 3 blocks, last partial
	for i := range msg {
		msg[i] = uint64(i * 13)
	}
	want, err := s.Encrypt(4, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.EncryptAccelerated(4, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("accelerated ciphertext differs from software")
	}
	if rep.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3", rep.Blocks)
	}
	if rep.CyclesPerBlock < 1400 || rep.CyclesPerBlock > 1900 {
		t.Fatalf("cycles/block = %d, want ≈1,600", rep.CyclesPerBlock)
	}
	if rep.ASICMicros >= rep.FPGAMicros {
		t.Fatal("ASIC slower than FPGA?")
	}
}

func TestSoCPathMatches(t *testing.T) {
	s := newSystem(t)
	msg := ff.NewVec(32)
	for i := range msg {
		msg[i] = uint64(i)
	}
	want, err := s.Encrypt(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := s.EncryptOnSoC(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("SoC ciphertext differs")
	}
	if stats.Blocks != 1 {
		t.Fatalf("blocks = %d", stats.Blocks)
	}
}

func TestAreaReport(t *testing.T) {
	s := newSystem(t)
	a, err := s.Area()
	if err != nil {
		t.Fatal(err)
	}
	if a.FPGA.DSP != 64 {
		t.Errorf("DSP = %d, want 64 (Table I)", a.FPGA.DSP)
	}
	if a.ASIC28mm2 < 0.2 || a.ASIC28mm2 > 0.3 {
		t.Errorf("28nm area = %.3f, want ≈0.24", a.ASIC28mm2)
	}
	if a.ASIC7mm2 >= a.ASIC28mm2 {
		t.Error("7nm not smaller than 28nm")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Variant: pasta.Pasta4, Width: 19}, nil); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := NewSystem(Config{Variant: pasta.Toy, Width: 17}, nil); err == nil {
		t.Fatal("toy variant accepted by NewSystem")
	}
	// nil key samples a fresh one.
	s, err := NewSystem(DefaultConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encrypt(1, ff.Vec{1}); err != nil {
		t.Fatal(err)
	}
}

func TestBackendAccessorAndStats(t *testing.T) {
	s := newSystem(t)
	defer s.Close()
	sw, err := s.Backend(backend.NameSoftware)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Backend(backend.NameSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if sw != again {
		t.Fatal("Backend did not cache the opened instance")
	}
	if _, err := s.Backend("no-such-substrate"); !errors.Is(err, backend.ErrUnknownBackend) {
		t.Fatalf("want ErrUnknownBackend, got %v", err)
	}
	if _, _, err := s.EncryptAccelerated(3, ff.NewVec(5)); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if len(stats) != 2 { // software (eager) + accel
		t.Fatalf("stats for %d backends, want 2", len(stats))
	}
	var accel backend.Stats
	for _, st := range stats {
		if st.Backend == backend.NameAccel {
			accel = st
		}
	}
	if accel.Blocks != 1 || accel.AccelCycles == 0 {
		t.Fatalf("accel stats not accounted: %+v", accel)
	}
}

func TestEnergyReport(t *testing.T) {
	s := newSystem(t)
	rows, err := s.EnergyReport(1591)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].BlockUJ <= 0 {
		t.Fatal("nonpositive energy")
	}
	if _, err := s.EnergyReport(0); err != nil {
		t.Fatal(err) // zero cycles is fine (zero energy), only elements must be positive
	}
}
